#!/usr/bin/env python3
"""scap_callgraph — whole-program hot-path purity analysis (DESIGN.md §14).

scap_analyzer.py checks functions one at a time; this tool checks the
*transitive closure*. It extracts the intra-project call graph — member
calls, overload resolution (clang frontend), constructor calls, calls
through std::unique_ptr, and FunctionRef / std::function callback
registration sites — anchors on functions annotated SCAP_HOT
(src/base/hotpath.hpp), and reports every forbidden operation reachable
from a hot root with its full witness call chain:

    kernel::ScapKernel::handle_batch -> kernel::SegmentStore::insert
        -> std::map::emplace

Rules (registry: tools/scap_rules.py)
-------------------------------------
hot-alloc      operator new (non-placement), malloc/calloc/realloc,
               std::make_unique/make_shared, allocating members of std
               containers (push_back/insert/emplace/resize/..., map
               operator[]) reachable from a SCAP_HOT root.
hot-mutex      base::Mutex / std::mutex acquisition or CondVar wait
               reachable from a SCAP_HOT root. base::SerialDomain /
               SerialGuard are zero-cost capabilities, never flagged.
hot-syscall    blocking syscalls and stdio (read/write/fopen/printf/
               sleep/poll/..., std::this_thread::yield/sleep_*).
hot-throw      throw expressions (stack unwind on the datapath).
hot-recursion  direct or mutual recursion cycles inside the hot closure
               (unbounded stack on attacker-controlled input).
hot-cold-call  calls from the hot closure into SCAP_COLD functions.
stale-waiver   a waiver naming one of the rules above that no longer
               suppresses anything (waivers rot silently otherwise).

Model
-----
* Traversal starts at SCAP_HOT functions and never descends into
  SCAP_COLD ones; the hot->cold edge itself is the finding (rule
  hot-cold-call) unless waivered — that is how amortized maintenance is
  admitted deliberately.
* Lambdas are charged to their lexical enclosing function. A handler
  that must be followed through a FunctionRef / std::function invocation
  site therefore needs to be a *named* function: named callables whose
  address is taken anywhere in scope code form the callback pool, and
  every call through a FunctionRef/std::function-typed value fans out to
  the whole pool.
* Implicitly-defined special members (copy/move ctors and assignments)
  are treated as opaque; a container copy hidden behind `=` is the
  runtime interposer test's job (tests/scap/steady_state_alloc_test.cpp).

Waivers share scap_lint.py syntax: `// scap-lint: allow(<rule>) <reason>`
on the line of (or the line above) either the forbidden operation or any
call edge on the witness chain; an edge waiver cuts traversal for that
rule past that edge. Every waiver that suppresses nothing is reported as
stale-waiver, so the set of waivers is always exactly the set of
accepted debts.

Frontends
---------
--frontend clang   libclang over build/compile_commands.json (falling
                   back to default flags), sharing scap_analyzer.py's
                   loader and exit-77-when-absent convention. Precise:
                   real overload resolution, templates, canonical types.
--frontend text    a structural scanner (namespace/class tracking,
                   declared-type receiver resolution) that needs no
                   toolchain. Best-effort but deliberately tuned to
                   produce the same graph on this codebase and on the
                   fixtures, so the gate runs even where libclang is
                   not installable.
--frontend auto    clang when libclang loads, else text (default).

Usage: scap_callgraph.py [--root DIR | --fixtures DIR] [--frontend F]
                         [--json] [--list-rules] [--dump-graph]
Exit status: 0 clean, 1 findings, 2 error, 77 (--frontend clang only)
libclang unavailable.
"""

import argparse
import json
import os
import re
import sys
from collections import deque

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import scap_lint    # shared waiver syntax + helpers
import scap_rules   # the single rule registry

EXIT_SKIP = 77

RULES = scap_rules.rules_for("callgraph")

# ---------------------------------------------------------------------------
# Forbidden-operation tables (DESIGN.md §14). Both frontends classify
# against these by *name*, so witness-chain labels agree between them.
# ---------------------------------------------------------------------------

MALLOC_FUNCS = {"malloc", "calloc", "realloc", "strdup", "aligned_alloc",
                "posix_memalign"}

SYSCALL_FUNCS = {
    "read", "write", "pread", "pwrite", "recv", "send", "recvfrom", "sendto",
    "recvmsg", "sendmsg", "open", "fopen", "fclose", "fread", "fwrite",
    "fseek", "fflush", "fprintf", "printf", "vprintf", "fputs", "fputc",
    "puts", "getline", "sleep", "usleep", "nanosleep", "poll", "select",
    "epoll_wait", "ioctl", "sched_yield", "syscall",
}
SLEEPY_QUALIFIED = {"std::this_thread::yield", "std::this_thread::sleep_for",
                    "std::this_thread::sleep_until"}

# Members of std containers that may allocate. operator[] is restricted to
# the map types (vector/deque operator[] is plain indexing).
ALLOC_METHODS = {"push_back", "emplace_back", "emplace", "emplace_hint",
                 "try_emplace", "insert", "insert_or_assign", "assign",
                 "append", "resize", "reserve", "push_front", "push"}
MAP_TYPES = {"std::map", "std::multimap", "std::unordered_map",
             "std::unordered_multimap"}
STD_CONTAINERS = MAP_TYPES | {
    "std::vector", "std::deque", "std::list", "std::forward_list",
    "std::set", "std::multiset", "std::unordered_set",
    "std::unordered_multiset", "std::string", "std::basic_string",
    "std::queue", "std::stack", "std::priority_queue", "std::function",
}
ALLOC_FREE_FUNCS = {"make_unique", "make_shared"}  # under std::

# Wrapper templates looked *through* when resolving a receiver's type.
WRAPPERS = {"std::unique_ptr", "std::shared_ptr", "std::optional",
            "std::atomic", "std::reference_wrapper"}
ELEMENT_CONTAINERS = {"std::vector", "std::array", "std::deque",
                      "std::span"}  # x[i] yields the first template arg

CALLBACK_TYPE_RE = re.compile(r"\b(FunctionRef|std::function)\s*<")

CHECK_RULES = ("hot-alloc", "hot-mutex", "hot-syscall", "hot-throw",
               "hot-cold-call")


def norm_std(name):
    """Canonicalize a std qualified name across library internals so both
    frontends (and libstdc++/libc++) emit identical chain labels."""
    name = name.replace("::__cxx11::", "::").replace("::__1::", "::")
    name = name.replace("std::basic_string", "std::string")
    return name


def canon(name):
    """Canonical node name: project root namespace stripped, template
    arguments removed, whitespace collapsed."""
    name = re.sub(r"\s+", "", name)
    name = strip_template_args(name)
    if name.startswith("scap::"):
        name = name[len("scap::"):]
    return norm_std(name)


def strip_template_args(s):
    out = []
    depth = 0
    for c in s:
        if c == "<":
            depth += 1
        elif c == ">":
            if depth:
                depth -= 1
                continue
        if depth == 0:
            out.append(c)
    return "".join(out)


# ---------------------------------------------------------------------------
# Graph IR — both frontends produce exactly this.
# ---------------------------------------------------------------------------

class Op:
    """A forbidden operation inside a function body."""

    def __init__(self, rule, label, file, line):
        self.rule = rule
        self.label = label
        self.file = file
        self.line = line


class Edge:
    def __init__(self, target, file, line, kind="call"):
        self.target = target      # canonical node name; ignored for callback
        self.file = file
        self.line = line
        self.kind = kind          # "call" | "callback" (fans out to pool)


class Node:
    def __init__(self, name, file, line):
        self.name = name
        self.file = file
        self.line = line
        self.hot = False
        self.cold = False
        self.edges = []
        self.ops = []

    def add_edge(self, target, file, line, kind="call"):
        self.edges.append(Edge(target, file, line, kind))

    def add_op(self, rule, label, file, line):
        self.ops.append(Op(rule, label, file, line))


class Graph:
    def __init__(self):
        self.nodes = {}          # canonical name -> Node
        self.pool = set()        # named callables bound as callbacks
        self.raw_lines = {}      # rel path -> raw source lines (waivers)

    def node(self, name, file, line):
        n = self.nodes.get(name)
        if n is None:
            n = Node(name, file, line)
            self.nodes[name] = n
        return n


# ---------------------------------------------------------------------------
# Text frontend
# ---------------------------------------------------------------------------

CONTROL_KEYWORDS = {
    "if", "for", "while", "switch", "catch", "return", "do", "else", "new",
    "delete", "throw", "sizeof", "alignof", "decltype", "noexcept",
    "static_assert", "case", "goto", "try", "asm", "co_return", "co_await",
    "co_yield", "operator", "default", "break", "continue", "using",
    "namespace", "typedef", "friend", "template", "public", "private",
    "protected", "static", "const", "constexpr", "inline", "explicit",
    "virtual", "typename", "class", "struct", "union", "enum", "extern",
    "auto", "void", "this",
}

CAST_PREFIXES = {"static_cast", "reinterpret_cast", "const_cast",
                 "dynamic_cast"}

# A (possibly chained) callee: `a.b->c(`, `ns::fn(`, `x(`. Subscripts are
# rewritten to `@` before matching (element unwrap markers).
CALL_CHAIN_RE = re.compile(
    r"(?<![\w.:])([A-Za-z_][A-Za-z0-9_@]*"
    r"(?:(?:\.|->|::)~?[A-Za-z_][A-Za-z0-9_@]*)*)"
    r"\s*(?:<[^;()<>]{0,100}>)?\s*\(")

LOCAL_DECL_RE = re.compile(
    r"^\s*((?:const\s+|volatile\s+|static\s+|constexpr\s+)*"
    r"[A-Za-z_][\w:]*(?:\s*<[^;{}]*>)?(?:\s*(?:const\b|[&*]))*)"
    r"\s+([A-Za-z_]\w*)\s*(?=[;({=\[]|$)")

POOL_REF_RE = re.compile(
    r"(&\s*)?(?<![\w.>])([A-Za-z_]\w*(?:::[A-Za-z_]\w*)*)\b(?!\s*[(<\w])")

NEW_RE = re.compile(r"\bnew\b(\s*\()?")
SUBSCRIPT_OPEN_RE = re.compile(r"([A-Za-z_]\w*)\s*\[")


def strip_code(text):
    """Blank comments, string/char literals and preprocessor directives,
    preserving line structure, so structural scanning sees only code."""
    out = []
    i, n = 0, len(text)
    NORMAL, LINECMT, BLKCMT, STR, CHR, PREPROC = range(6)
    state = NORMAL
    line_has_code = False
    while i < n:
        c = text[i]
        if c == "\n":
            if state == LINECMT:
                state = NORMAL
            if state == PREPROC:
                if out and out[-1] == " " and text[i - 1] == "\\":
                    pass  # line continuation stays in the directive
                else:
                    state = NORMAL
            out.append("\n")
            line_has_code = False
            i += 1
            continue
        if state == NORMAL:
            if c == "#" and not line_has_code:
                state = PREPROC
                out.append(" ")
            elif c == "/" and i + 1 < n and text[i + 1] == "/":
                state = LINECMT
                out.append("  ")
                i += 1
            elif c == "/" and i + 1 < n and text[i + 1] == "*":
                state = BLKCMT
                out.append("  ")
                i += 1
            elif c == '"':
                state = STR
                out.append(" ")
            elif c == "'":
                # C++14 digit separator (0x5ca9'f10a, 1'000'000): an
                # apostrophe sandwiched between alphanumerics is part of a
                # numeric literal, not a char-literal delimiter — treating
                # it as one desynchronizes the stripper for the rest of
                # the file.
                if (0 < i < n - 1 and text[i - 1].isalnum()
                        and text[i + 1].isalnum()):
                    out.append(c)
                    line_has_code = True
                else:
                    state = CHR
                    out.append(" ")
            else:
                out.append(c)
                if not c.isspace():
                    line_has_code = True
        elif state in (LINECMT, PREPROC):
            out.append(" ")
        elif state == BLKCMT:
            if c == "*" and i + 1 < n and text[i + 1] == "/":
                state = NORMAL
                out.append("  ")
                i += 1
            else:
                out.append(" ")
        elif state in (STR, CHR):
            if c == "\\":
                out.append("  ")
                i += 1
            else:
                out.append(" ")
                if (state == STR and c == '"') or (state == CHR and c == "'"):
                    state = NORMAL
        i += 1
    return "".join(out)


def find_toplevel(s, ch, openers="(<[{", closers=")>]}"):
    """Index of the first `ch` at bracket depth 0, or -1. `<` is treated as
    a bracket (statements here are declarations, not expressions)."""
    depth = 0
    for i, c in enumerate(s):
        if depth == 0 and c == ch:
            return i
        if c in openers:
            depth += 1
        elif c in closers:
            depth = max(0, depth - 1)
    return -1


def match_paren(s, start):
    depth = 0
    for i in range(start, len(s)):
        if s[i] == "(":
            depth += 1
        elif s[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


def split_toplevel(s, sep=","):
    parts = []
    depth = 0
    cur = []
    for c in s:
        if c in "(<[{":
            depth += 1
        elif c in ")>]}":
            depth -= 1
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def strip_template_prefix(s):
    s = s.strip()
    while s.startswith("template"):
        j = s.find("<")
        if j < 0:
            break
        depth = 0
        k = j
        while k < len(s):
            if s[k] == "<":
                depth += 1
            elif s[k] == ">":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        s = s[k + 1:].strip()
    return s


CLASS_NAME_RE = re.compile(
    r"(?:class|struct|union)\s+"
    r"(?:\[\[[^\]]*\]\]\s*|alignas\s*\([^)]*\)\s*|"
    r"SCAP_[A-Z_]+\s*(?:\([^()]*\)\s*)?)*"
    r"([A-Za-z_]\w*)")

OPERATOR_RE = re.compile(r"\boperator\s*([^\s(]*)$")
NAME_TAIL_RE = re.compile(
    r"(~?[A-Za-z_][A-Za-z0-9_]*(?:::~?[A-Za-z_][A-Za-z0-9_]*)*)$")


def parse_func_sig(stmt):
    """(name, params_text) if `stmt` reads as a function signature whose
    body would follow, else None."""
    s = strip_template_prefix(stmt)
    pos = find_toplevel(s, "(")
    if pos < 0:
        return None
    prefix = s[:pos].rstrip()
    mo = OPERATOR_RE.search(prefix)
    if mo is not None:
        sym = mo.group(1)
        if sym == "":  # operator() — params are the *next* paren group
            close = match_paren(s, pos)
            if close < 0:
                return None
            pos2 = s.find("(", close + 1)
            if pos2 < 0:
                return None
            name, pos = "operator()", pos2
        else:
            name = "operator" + sym
        qual = NAME_TAIL_RE.search(
            strip_template_args(prefix[:mo.start()]).rstrip())
        if qual:
            name = qual.group(1) + "::" + name
    else:
        m = NAME_TAIL_RE.search(strip_template_args(prefix).rstrip())
        if m is None:
            return None
        name = m.group(1)
        last = name.split("::")[-1].lstrip("~")
        if last in CONTROL_KEYWORDS or last.startswith("SCAP_"):
            return None
    close = match_paren(s, pos)
    params = s[pos + 1:close] if close > pos else ""
    return name, params


FIELD_DECL_RE = re.compile(
    r"^(?:(?:static|mutable|constexpr|const|inline|volatile)\s+)*"
    r"([A-Za-z_][\w:]*(?:\s*<.*>)?(?:\s*(?:const\b|[&*]))*)"
    r"\s+([A-Za-z_]\w*)\s*(\[[^\]]*\]\s*)?(?:=[^;]*)?$")

USING_ALIAS_RE = re.compile(r"^using\s+([A-Za-z_]\w*)\s*=\s*(.+)$")

SCAP_MACRO_RE = re.compile(r"\bSCAP_(?!HOT\b|COLD\b)[A-Z_]+\s*(\([^()]*\))?")
ATTR_RE = re.compile(r"\[\[[^\]]*\]\]")


class Scope:
    def __init__(self, kind, name="", qual=""):
        self.kind = kind    # namespace | class | enum | extern | block
        self.name = name
        self.qual = qual    # canonical, class scopes only


class TextFrontend:
    """Structural scanner: builds the Graph from raw source. Knowingly
    approximate (see module docstring); tuned for this codebase's idiom
    and exercised against the clang frontend by the fixtures."""

    def __init__(self, root):
        self.root = root
        self.graph = Graph()
        self.marks = {}            # qual name -> [hot, cold]
        self.class_fields = {}     # class qual -> {field: type str}
        self.class_methods = {}    # class qual -> set(method last names)
        self.classes = {}          # short name -> set of canonical quals
        self.aliases = {}          # alias short name -> type str
        self.bodies = []           # (node name, rel, code, start_off, line)
        self._code = {}            # rel -> stripped code text

    # -- pass A+B: structure ------------------------------------------------

    def add_file(self, rel, text):
        self.graph.raw_lines[rel] = text.splitlines()
        code = strip_code(text)
        self._code[rel] = code
        self._scan_structure(rel, code)

    def _scan_structure(self, rel, code):
        scopes = []
        stmt = []
        stmt_line = 1
        stmt_paren = 0
        stmt_brace = 0
        line = 1
        func = None   # dict while inside a function definition body
        i = 0
        n = len(code)
        while i < n:
            c = code[i]
            if c == "\n":
                line += 1
                stmt.append(" ")
                i += 1
                continue
            if func is not None:
                if c == "{":
                    func["depth"] += 1
                elif c == "}":
                    func["depth"] -= 1
                    if func["depth"] == 0:
                        self.bodies.append(
                            (func["name"], rel,
                             code[func["body_off"] + 1:i],
                             func["body_line"], func["params"]))
                        func = None
                        stmt = []
                        stmt_paren = stmt_brace = 0
                        stmt_line = line
                i += 1
                continue
            if c == "(":
                stmt_paren += 1
            elif c == ")":
                stmt_paren = max(0, stmt_paren - 1)
            if c == "{":
                text_so_far = "".join(stmt)
                if (stmt_paren > 0 or stmt_brace > 0
                        or self._is_initializer_brace(text_so_far, scopes)):
                    stmt_brace += 1
                    stmt.append(c)
                    i += 1
                    continue
                kind = self._classify(text_so_far, scopes, rel, stmt_line)
                if kind is not None and kind[0] == "function":
                    name, params, hot, cold = kind[1]
                    qual = self._qualify(scopes, name)
                    node = self.graph.node(qual, rel, stmt_line)
                    self._mark(qual, hot, cold)
                    self._note_method(scopes, name)
                    func = {"name": qual, "depth": 1, "body_off": i,
                            "body_line": line, "params": params}
                else:
                    scopes.append(kind[1] if kind else Scope("block"))
                stmt = []
                stmt_paren = 0
                stmt_line = line
            elif c == "}":
                if stmt_brace > 0:
                    stmt_brace -= 1
                    stmt.append(c)
                else:
                    if scopes:
                        scopes.pop()
                    stmt = []
                    stmt_paren = 0
                    stmt_line = line
            elif c == ";" and stmt_brace == 0:
                self._decl_stmt("".join(stmt), scopes, rel, stmt_line)
                stmt = []
                stmt_paren = 0
                stmt_line = line
            else:
                if not stmt and not c.isspace():
                    stmt_line = line
                stmt.append(c)
            i += 1

    def _is_initializer_brace(self, stmt, scopes):
        """A `{` that belongs to an initializer (field/var brace-init,
        `= {...}`), not to a new scope."""
        s = stmt.strip()
        s = re.sub(r"\b(?:public|private|protected)\s*:", " ", s).strip()
        if not s:
            return False
        if find_toplevel(s, "=") >= 0:
            return True
        first = s.split()[0] if s.split() else ""
        first = first.split("<")[0]
        if first in ("namespace", "class", "struct", "union", "enum",
                     "extern", "template", "inline", "typedef"):
            return False
        # `Type name` with no parameter list: a brace-initialized variable.
        return find_toplevel(s, "(") < 0 and bool(re.search(r"[\w>]$", s))

    def _classify(self, stmt, scopes, rel, line):
        s = stmt.strip()
        s = re.sub(r"\b(?:public|private|protected)\s*:", " ", s).strip()
        if not s:
            return ("block", Scope("block"))
        m = re.match(r"(?:inline\s+)?namespace\s*([A-Za-z_][\w:]*)?\s*$", s)
        if m:
            return ("namespace", Scope("namespace", m.group(1) or ""))
        st = strip_template_prefix(s)
        toks = st.split()
        t0 = toks[0] if toks else ""
        if t0 == "extern":
            return ("extern", Scope("extern"))
        if t0 == "enum" or (t0 == "typedef" and "enum" in toks[:3]):
            return ("enum", Scope("enum"))
        if t0 in ("class", "struct", "union"):
            cm = CLASS_NAME_RE.search(st)
            name = cm.group(1) if cm else ""
            qual = self._qualify(scopes, name) if name else ""
            if name:
                self.classes.setdefault(name, set()).add(qual)
                self.class_fields.setdefault(qual, {})
                self.class_methods.setdefault(qual, set())
            return ("class", Scope("class", name, qual))
        sig = parse_func_sig(st)
        if sig is not None:
            hot = bool(re.search(r"\bSCAP_HOT\b", s))
            cold = bool(re.search(r"\bSCAP_COLD\b", s))
            return ("function", (sig[0], sig[1], hot, cold))
        return ("block", Scope("block"))

    def _qualify(self, scopes, name):
        parts = []
        for sc in scopes:
            if sc.kind in ("namespace", "class") and sc.name:
                parts.extend(p for p in sc.name.split("::") if p)
        return canon("::".join(parts + [name]))

    def _cur_class(self, scopes):
        for sc in reversed(scopes):
            if sc.kind == "class":
                return sc.qual
            if sc.kind == "namespace":
                return None
        return None

    def _mark(self, qual, hot, cold):
        if hot or cold:
            m = self.marks.setdefault(qual, [False, False])
            m[0] = m[0] or hot
            m[1] = m[1] or cold

    def _note_method(self, scopes, name):
        cls = self._cur_class(scopes)
        if cls is not None and "::" not in name:
            self.class_methods.setdefault(cls, set()).add(
                name.lstrip("~"))

    def _decl_stmt(self, stmt, scopes, rel, line):
        s = stmt.strip()
        s = re.sub(r"\b(?:public|private|protected)\s*:", " ", s).strip()
        if not s:
            return
        s = ATTR_RE.sub(" ", s)
        s = SCAP_MACRO_RE.sub(" ", s).strip()
        um = USING_ALIAS_RE.match(s)
        if um:
            self.aliases[um.group(1)] = um.group(2).strip()
            return
        first = s.split()[0].split("<")[0] if s.split() else ""
        if first in ("using", "typedef", "friend", "namespace", "return",
                     "static_assert", "extern", "enum"):
            return
        hot = bool(re.search(r"\bSCAP_HOT\b", s))
        cold = bool(re.search(r"\bSCAP_COLD\b", s))
        body = strip_template_prefix(s)
        if find_toplevel(body, "(") >= 0:
            sig = parse_func_sig(body)
            if sig is not None:
                self._mark(self._qualify(scopes, sig[0]), hot, cold)
                self._note_method(scopes, sig[0])
            return
        cls = self._cur_class(scopes)
        if cls is None or first in ("class", "struct", "union"):
            return
        body = re.sub(r"^\s*(?:SCAP_HOT|SCAP_COLD)\s+", "", body)
        fm = FIELD_DECL_RE.match(body)
        if fm:
            self.class_fields.setdefault(cls, {})[fm.group(2)] = \
                fm.group(1).strip()

    # -- type resolution ----------------------------------------------------

    def _clean_type(self, t):
        t = t.strip()
        t = re.sub(r"\b(?:const|volatile|struct|class|typename)\b", " ", t)
        t = t.replace("&", " ").replace("*", " ").strip()
        return re.sub(r"\s+", " ", t)

    def _outer(self, t):
        m = re.match(r"\s*([A-Za-z_][\w:]*)", t)
        return m.group(1) if m else ""

    def _first_targ(self, t):
        j = t.find("<")
        if j < 0:
            return None
        depth = 0
        for k in range(j, len(t)):
            if t[k] == "<":
                depth += 1
            elif t[k] == ">":
                depth -= 1
                if depth == 0:
                    inner = t[j + 1:k]
                    return split_toplevel(inner)[0].strip()
        return None

    def resolve_type(self, t, depth=0):
        """-> ('class', canonical) | ('std', outer) | ('callable', t)
        | (None, None)."""
        if t is None or depth > 6:
            return (None, None)
        t = self._clean_type(t)
        if not t or t == "auto":
            return (None, None)
        if CALLBACK_TYPE_RE.search(t):
            return ("callable", t)
        outer = self._outer(t)
        al = self.aliases.get(outer.split("::")[-1])
        if al is not None and al != t:
            return self.resolve_type(al, depth + 1)
        co = canon(outer)
        if co in WRAPPERS:
            return self.resolve_type(self._first_targ(t), depth + 1)
        if co.startswith("std::"):
            return ("std", co)
        if co in self.class_fields:
            return ("class", co)
        short = co.split("::")[-1]
        cands = self.classes.get(short, set())
        match = [q for q in cands if q == co or q.endswith("::" + co)]
        if len(match) == 1:
            return ("class", match[0])
        if len(cands) == 1:
            return ("class", next(iter(cands)))
        return (None, None)

    def _elem_type(self, t):
        """Element type for `x[i]` when x is a known sequence container."""
        if t is None:
            return None
        co = canon(self._outer(self._clean_type(t)))
        if co in ELEMENT_CONTAINERS:
            return self._first_targ(self._clean_type(t))
        return t  # raw pointer/array decay: keep the declared type

    # -- pass C: bodies -----------------------------------------------------

    def finish(self):
        # Marks collected from declarations apply to definition nodes.
        for qual, (hot, cold) in self.marks.items():
            node = self.graph.nodes.get(qual)
            if node is not None:
                node.hot = node.hot or hot
                node.cold = node.cold or cold
        self._free_by_last = {}
        self._all_by_last = {}
        class_prefixes = set(self.class_fields)
        for name in self.graph.nodes:
            last = name.split("::")[-1]
            self._all_by_last.setdefault(last, []).append(name)
            prefix = "::".join(name.split("::")[:-1])
            if prefix not in class_prefixes:
                self._free_by_last.setdefault(last, []).append(name)
        for name, rel, body, line0, params in self.bodies:
            self._scan_body(self.graph.nodes[name], rel, body, line0, params)
        return self.graph

    def _parse_params(self, params):
        table = {}
        for p in split_toplevel(params):
            p = p.strip()
            eq = find_toplevel(p, "=")
            if eq >= 0:
                p = p[:eq].rstrip()
            m = re.match(r"^(.*[\w>&*\]])[\s&*]+([A-Za-z_]\w*)$", p)
            if m:
                table[m.group(2)] = m.group(1).strip()
        return table

    def _scan_body(self, node, rel, body, line0, params):
        locals_ = self._parse_params(params)
        cur_class = None
        prefix = "::".join(node.name.split("::")[:-1])
        if prefix in self.class_fields:
            cur_class = prefix
        for off, raw_ln in enumerate(body.split("\n")):
            lineno = line0 + off
            ln = raw_ln
            # throw / new
            if re.search(r"\bthrow\b", ln):
                node.add_op("hot-throw", "throw", rel, lineno)
            for m in NEW_RE.finditer(ln):
                if not m.group(1):  # `new (...)` is placement: no heap
                    node.add_op("hot-alloc", "operator new", rel, lineno)
            # local declarations (incl. ctor-call edges for project types)
            self._scan_local_decl(node, ln, lineno, rel, locals_, cur_class)
            # map operator[] (subscript form never reaches the call regex)
            self._scan_subscripts(node, ln, lineno, rel, locals_, cur_class)
            # calls — subscripts collapsed to element-unwrap markers
            calls_ln = self._collapse_subscripts(ln)
            for m in CALL_CHAIN_RE.finditer(calls_ln):
                self._handle_call(node, m.group(1), rel, lineno, locals_,
                                  cur_class)
            self._scan_pool_refs(node, ln, locals_)

    def _scan_local_decl(self, node, ln, lineno, rel, locals_, cur_class):
        m = LOCAL_DECL_RE.match(ATTR_RE.sub(" ", ln))
        if not m:
            return
        tstr, name = m.group(1).strip(), m.group(2)
        first = tstr.split()[-1].split("<")[0].split("::")[0]
        if first in CONTROL_KEYWORDS and first != "auto":
            return
        if first == "auto" or tstr == "auto":
            tstr = self._infer_auto(ln, locals_, cur_class)
        locals_[name] = tstr
        kind, resolved = self.resolve_type(tstr)
        if kind == "class":
            ctor = resolved + "::" + resolved.split("::")[-1]
            if ctor in self.graph.nodes:
                node.add_edge(ctor, rel, lineno)

    def _infer_auto(self, ln, locals_, cur_class):
        m = re.search(r"=\s*[*&]?\s*([A-Za-z_][\w:.\[\]>-]*)", ln)
        if not m:
            return None
        expr = self._collapse_subscripts(m.group(1).rstrip(";"))
        t = self._resolve_chain_type(expr.split("."), locals_, cur_class)
        return t

    def _collapse_subscripts(self, ln):
        out = []
        depth = 0
        for c in ln:
            if c == "[":
                depth += 1
                if depth == 1:
                    out.append("@")
                continue
            if c == "]":
                depth = max(0, depth - 1)
                continue
            if depth == 0:
                out.append(c)
        return "".join(out).replace("->", ".")

    def _scan_subscripts(self, node, ln, lineno, rel, locals_, cur_class):
        for m in SUBSCRIPT_OPEN_RE.finditer(ln):
            t = self._lookup_var(m.group(1), locals_, cur_class)
            if t is None:
                continue
            kind, resolved = self.resolve_type(t)
            if kind == "std" and resolved in MAP_TYPES:
                node.add_op("hot-alloc", resolved + "::operator[]",
                            rel, lineno)

    def _lookup_var(self, name, locals_, cur_class):
        if name in locals_:
            return locals_[name]
        if cur_class is not None:
            f = self.class_fields.get(cur_class, {}).get(name)
            if f is not None:
                return f
        return None

    def _resolve_chain_type(self, parts, locals_, cur_class):
        """Declared type of `a.b.c` (with @ element markers), or None."""
        t = None
        for idx, part in enumerate(parts):
            sub = part.count("@")
            base = part.replace("@", "")
            if idx == 0:
                if base == "this":
                    t = cur_class
                else:
                    t = self._lookup_var(base, locals_, cur_class)
                if t is None:
                    return None
            else:
                kind, resolved = self.resolve_type(t)
                if kind != "class":
                    return None
                t = self.class_fields.get(resolved, {}).get(base)
                if t is None:
                    return None
            for _ in range(sub):
                t = self._elem_type(t)
        return t

    def _handle_call(self, node, chain, rel, lineno, locals_, cur_class):
        chain = chain.replace("->", ".")
        if "." in chain:
            parts = chain.split(".")
            method = parts[-1].replace("@", "")
            t = self._resolve_chain_type(parts[:-1], locals_, cur_class)
            if t is None:
                return
            kind, resolved = self.resolve_type(t)
            if kind == "class":
                field_t = self.class_fields.get(resolved, {}).get(method)
                if field_t is not None and \
                        CALLBACK_TYPE_RE.search(field_t):
                    node.add_edge("", rel, lineno, kind="callback")
                elif method in self.class_methods.get(resolved, set()):
                    node.add_edge(resolved + "::" + method, rel, lineno)
            elif kind == "std":
                self._std_member_op(node, resolved, method, rel, lineno)
            elif kind == "callable":
                node.add_edge("", rel, lineno, kind="callback")
            return
        # no receiver: qualified or bare
        full = chain.replace("@", "")
        last = full.split("::")[-1]
        if last in CONTROL_KEYWORDS or full.split("::")[0] in CAST_PREFIXES \
                or last.startswith("SCAP_"):
            return
        cfull = canon(full)
        if cfull in SLEEPY_QUALIFIED:
            node.add_op("hot-syscall", cfull, rel, lineno)
            return
        if cfull.startswith("std::"):
            if last in ALLOC_FREE_FUNCS:
                node.add_op("hot-alloc", "std::" + last, rel, lineno)
            return
        if "::" not in full:
            vt = self._lookup_var(full, locals_, cur_class)
            if vt is not None:
                if CALLBACK_TYPE_RE.search(vt):
                    node.add_edge("", rel, lineno, kind="callback")
                return  # a variable, not a function name
            if full in MALLOC_FUNCS:
                node.add_op("hot-alloc", full, rel, lineno)
                return
            if full in SYSCALL_FUNCS:
                node.add_op("hot-syscall", full, rel, lineno)
                return
        target = self._resolve_function(cfull, cur_class)
        if target is not None:
            node.add_edge(target, rel, lineno)

    def _std_member_op(self, node, container, method, rel, lineno):
        if container in STD_CONTAINERS and method in ALLOC_METHODS:
            node.add_op("hot-alloc", container + "::" + method, rel, lineno)
        elif container == "std::mutex" and method in ("lock", "try_lock"):
            node.add_op("hot-mutex", "std::mutex::lock", rel, lineno)
        elif container == "std::condition_variable" and \
                method in ("wait", "wait_for", "wait_until"):
            node.add_op("hot-mutex", "std::condition_variable::wait",
                        rel, lineno)

    def _resolve_function(self, name, cur_class):
        nodes = self.graph.nodes
        if name in nodes:
            return name
        if "::" in name:
            cands = [n for n in self._all_by_last.get(
                name.split("::")[-1], []) if n.endswith("::" + name)]
            if len(cands) == 1:
                return cands[0]
            return None
        if cur_class is not None:
            m = cur_class + "::" + name
            if m in nodes or name in self.class_methods.get(cur_class, set()):
                return m if m in nodes else None
        free = self._free_by_last.get(name, [])
        if len(free) == 1:
            return free[0]
        return None

    def _scan_pool_refs(self, node, ln, locals_):
        for m in POOL_REF_RE.finditer(ln):
            amp, name = m.group(1), m.group(2)
            if not amp:
                prev = ln[:m.start()].rstrip()[-1:]
                if prev not in ("(", ",", "="):
                    continue
            last = name.split("::")[-1]
            if last in CONTROL_KEYWORDS or name in locals_ or \
                    name.startswith("std::"):
                continue
            cn = canon(name)
            target = cn if cn in self.graph.nodes else None
            if target is None:
                cands = [x for x in self._all_by_last.get(last, [])
                         if x.endswith("::" + cn) or x == cn]
                if len(cands) == 1:
                    target = cands[0]
            if target is not None:
                self.graph.pool.add(target)


def build_text_graph(root, rel_files):
    fe = TextFrontend(root)
    for rel in rel_files:
        with open(os.path.join(root, rel), encoding="utf-8") as f:
            fe.add_file(rel, f.read())
    return fe.finish()


# ---------------------------------------------------------------------------
# Clang frontend
# ---------------------------------------------------------------------------

class ClangFrontend:
    FUNC_KINDS = None  # filled in __init__ (needs cindex)

    def __init__(self, cindex, root):
        self.cindex = cindex
        self.ck = cindex.CursorKind
        self.root = root
        self.graph = Graph()
        self.marks = {}
        self.FUNC_KINDS = (self.ck.FUNCTION_DECL, self.ck.CXX_METHOD,
                           self.ck.CONSTRUCTOR, self.ck.FUNCTION_TEMPLATE,
                           self.ck.CONVERSION_FUNCTION)

    def in_scope(self, loc):
        if loc.file is None:
            return None
        path = os.path.abspath(loc.file.name)
        if not path.startswith(self.root + os.sep) and path != self.root:
            return None
        return os.path.relpath(path, self.root).replace(os.sep, "/")

    def qualified(self, cursor):
        parts = []
        c = cursor
        while c is not None and c.kind != self.ck.TRANSLATION_UNIT:
            if c.kind not in (self.ck.LINKAGE_SPEC, self.ck.UNEXPOSED_DECL):
                if c.spelling:
                    parts.append(c.spelling)
            c = c.semantic_parent
        return canon("::".join(reversed(parts)))

    def annotations(self, cursor):
        hot = cold = False
        for ch in cursor.get_children():
            if ch.kind == self.ck.ANNOTATE_ATTR:
                if ch.spelling == "scap_hot":
                    hot = True
                elif ch.spelling == "scap_cold":
                    cold = True
        return hot, cold

    def is_global(self, decl):
        p = decl.semantic_parent
        while p is not None and p.kind in (self.ck.LINKAGE_SPEC,
                                           self.ck.UNEXPOSED_DECL):
            p = p.semantic_parent
        return p is None or p.kind == self.ck.TRANSLATION_UNIT

    def add_tu(self, tu):
        self.walk(tu.cursor, None, None)

    def walk(self, cursor, current, callee_ref):
        ck = self.ck
        rel = self.in_scope(cursor.location)
        next_callee = callee_ref
        if cursor.kind in self.FUNC_KINDS and rel is not None:
            hot, cold = self.annotations(cursor)
            qual = self.qualified(cursor)
            if qual and not qual.split("::")[-1].startswith("~"):
                if hot or cold:
                    m = self.marks.setdefault(qual, [False, False])
                    m[0] = m[0] or hot
                    m[1] = m[1] or cold
                if cursor.is_definition():
                    current = self.graph.node(qual, rel,
                                              cursor.location.line)
        elif cursor.kind == ck.LAMBDA_EXPR:
            pass  # lambda bodies are charged to the lexical encloser
        if current is not None and rel is not None:
            line = cursor.location.line
            if cursor.kind == ck.CXX_NEW_EXPR:
                if not self._is_placement_new(cursor):
                    current.add_op("hot-alloc", "operator new", rel, line)
            elif cursor.kind == ck.CXX_THROW_EXPR:
                current.add_op("hot-throw", "throw", rel, line)
            elif cursor.kind == ck.CALL_EXPR:
                ref = cursor.referenced
                self._classify_call(current, ref, rel, line)
                next_callee = ref
            elif cursor.kind == ck.DECL_REF_EXPR:
                ref = cursor.referenced
                if ref is not None and ref.kind in self.FUNC_KINDS:
                    same = (callee_ref is not None and
                            callee_ref.canonical == ref.canonical)
                    if not same and self.in_scope(ref.location) is not None:
                        self.graph.pool.add(self.qualified(ref))
        for ch in cursor.get_children():
            self.walk(ch, current, next_callee)

    def _is_placement_new(self, cursor):
        toks = [t.spelling for t in cursor.get_tokens()]
        for i, t in enumerate(toks):
            if t == "new":
                return i + 1 < len(toks) and toks[i + 1] == "("
        return False

    def _classify_call(self, current, ref, rel, line):
        ck = self.ck
        if ref is None or ref.kind == ck.DESTRUCTOR:
            return
        sp = ref.spelling
        qual = self.qualified(ref)
        parent = ref.semantic_parent
        pq = self.qualified(parent) if parent is not None else ""
        # external / std classification first: a fixture may *declare*
        # std/libc symbols locally, and those must still read as external.
        if sp in MALLOC_FUNCS and self.is_global(ref):
            current.add_op("hot-alloc", sp, rel, line)
            return
        if qual in SLEEPY_QUALIFIED:
            current.add_op("hot-syscall", qual, rel, line)
            return
        if sp in SYSCALL_FUNCS and self.is_global(ref):
            current.add_op("hot-syscall", sp, rel, line)
            return
        if qual.startswith("std::"):
            if pq in STD_CONTAINERS and sp in ALLOC_METHODS:
                current.add_op("hot-alloc", pq + "::" + sp, rel, line)
            elif pq in MAP_TYPES and sp == "operator[]":
                current.add_op("hot-alloc", pq + "::operator[]", rel, line)
            elif pq == "std::mutex" and sp in ("lock", "try_lock"):
                current.add_op("hot-mutex", "std::mutex::lock", rel, line)
            elif pq == "std::condition_variable" and \
                    sp in ("wait", "wait_for", "wait_until"):
                current.add_op("hot-mutex", "std::condition_variable::wait",
                               rel, line)
            elif sp in ALLOC_FREE_FUNCS:
                current.add_op("hot-alloc", "std::" + sp, rel, line)
            elif pq == "std::function" and sp == "operator()":
                current.add_edge("", rel, line, kind="callback")
            return
        if sp == "operator new" or qual == "operator new":
            current.add_op("hot-alloc", "operator new", rel, line)
            return
        if qual.endswith("FunctionRef::operator()"):
            current.add_edge("", rel, line, kind="callback")
            return
        if self.in_scope(ref.location) is not None and \
                ref.kind in self.FUNC_KINDS:
            current.add_edge(qual, rel, line)

    def finish(self):
        for qual, (hot, cold) in self.marks.items():
            node = self.graph.nodes.get(qual)
            if node is not None:
                node.hot = node.hot or hot
                node.cold = node.cold or cold
        return self.graph


def compile_args_for(cindex, root, rel):
    """Arguments for one TU: compile_commands.json when present, else the
    same defaults scap_analyzer uses."""
    db_dir = os.path.join(root, "build")
    if os.path.exists(os.path.join(db_dir, "compile_commands.json")):
        try:
            db = cindex.CompilationDatabase.fromDirectory(db_dir)
            cmds = db.getCompileCommands(os.path.join(root, rel))
            if cmds:
                args = []
                skip = False
                for a in list(cmds[0].arguments)[1:]:
                    if skip:
                        skip = False
                        continue
                    if a in ("-c", rel, os.path.join(root, rel)):
                        continue
                    if a == "-o":
                        skip = True
                        continue
                    args.append(a)
                return args
        except Exception:
            pass
    return ["-x", "c++", "-std=c++20", "-I", os.path.join(root, "src"),
            "-DSCAP_ENABLE_TRACE"]


def build_clang_graph(cindex, root, rel_files, fixture_mode):
    import scap_analyzer
    index = cindex.Index.create()
    fe = ClangFrontend(cindex, root)
    for rel in rel_files:
        path = os.path.join(root, rel)
        with open(path, encoding="utf-8") as f:
            fe.graph.raw_lines[rel] = f.read().splitlines()
    tus = [r for r in rel_files if r.endswith(".cpp")]
    for rel in tus:
        path = os.path.join(root, rel)
        if fixture_mode:
            args = ["-x", "c++", "-std=c++17", "-nostdinc++"]
        else:
            args = compile_args_for(cindex, root, rel)
        tu = scap_analyzer.parse_tu(cindex, index, path, args)
        if tu is None:
            return None
        fe.add_tu(tu)
    return fe.finish()


# ---------------------------------------------------------------------------
# Engine: closure, witness chains, waivers
# ---------------------------------------------------------------------------

class CgFinding:
    def __init__(self, file, line, rule, chain, message):
        self.file = file
        self.line = line
        self.rule = rule
        self.chain = chain
        self.message = message

    def __str__(self):
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"


def chain_str(chain):
    return " -> ".join(chain)


RULE_WHAT = {
    "hot-alloc": "allocation",
    "hot-mutex": "lock acquisition",
    "hot-syscall": "blocking syscall",
    "hot-throw": "throw",
}


def analyze_graph(graph, fixture_mode):
    findings = []
    used = set()   # (file, waiver line, rule) that suppressed something
    nodes = graph.nodes
    pool = sorted(graph.pool)

    def waiver_at(rel, line, rule):
        lines = graph.raw_lines.get(rel)
        if lines is None:
            return None
        for j in (line - 1, line - 2):
            if 0 <= j < len(lines):
                m = scap_lint.WAIVER_RE.search(lines[j])
                if m and m.group(1) == rule:
                    return j + 1
        return None

    def targets(edge):
        return pool if edge.kind == "callback" else [edge.target]

    def edge_key(e):
        return (e.kind, e.target, e.file, e.line)

    roots = sorted(n.name for n in nodes.values() if n.hot and not n.cold)
    for n in sorted(nodes.values(), key=lambda x: x.name):
        if n.hot and n.cold:
            findings.append(CgFinding(
                n.file, n.line, "hot-cold-call", [n.name],
                f"'{n.name}' is annotated both SCAP_HOT and SCAP_COLD"))

    seen_op = set()
    seen_cold = set()
    for rule in CHECK_RULES:
        parent = {r: None for r in roots}
        visited = set(roots)
        queue = deque(roots)

        def path(nm):
            out = []
            while nm is not None:
                out.append(nm)
                nm = parent[nm]
            return list(reversed(out))

        while queue:
            nm = queue.popleft()
            node = nodes[nm]
            if rule != "hot-cold-call":
                for op in node.ops:
                    if op.rule != rule:
                        continue
                    w = waiver_at(op.file, op.line, rule)
                    if w is not None:
                        used.add((op.file, w, rule))
                        continue
                    key = (rule, op.file, op.line, op.label)
                    if key in seen_op:
                        continue
                    seen_op.add(key)
                    ch = path(nm) + [op.label]
                    findings.append(CgFinding(
                        op.file, op.line, rule, ch,
                        f"{RULE_WHAT[rule]} reachable from SCAP_HOT root "
                        f"'{ch[0]}': {chain_str(ch)}"))
            for e in sorted(node.edges, key=edge_key):
                for t in targets(e):
                    tn = nodes.get(t)
                    if tn is None:
                        continue
                    if tn.cold:
                        if rule == "hot-cold-call":
                            w = waiver_at(e.file, e.line, rule)
                            if w is not None:
                                used.add((e.file, w, rule))
                                continue
                            key = (e.file, e.line, t)
                            if key in seen_cold:
                                continue
                            seen_cold.add(key)
                            ch = path(nm) + [t]
                            findings.append(CgFinding(
                                e.file, e.line, rule, ch,
                                f"hot closure calls SCAP_COLD '{t}': "
                                f"{chain_str(ch)}"))
                        continue
                    w = waiver_at(e.file, e.line, rule)
                    if w is not None:
                        used.add((e.file, w, rule))
                        continue
                    if t not in visited:
                        visited.add(t)
                        parent[t] = nm
                        queue.append(t)

    # hot-recursion: cycle detection over the (non-cold) hot closure.
    sys.setrecursionlimit(max(sys.getrecursionlimit(), 20000))
    color = {}
    reported = set()

    def dfs(nm, pathlist):
        color[nm] = 1
        node = nodes[nm]
        for e in sorted(node.edges, key=edge_key):
            for t in targets(e):
                tn = nodes.get(t)
                if tn is None or tn.cold:
                    continue
                c = color.get(t, 0)
                if c == 1:
                    w = waiver_at(e.file, e.line, "hot-recursion")
                    if w is not None:
                        used.add((e.file, w, "hot-recursion"))
                        continue
                    idx = pathlist.index(t)
                    key = tuple(sorted(set(pathlist[idx:])))
                    if key in reported:
                        continue
                    reported.add(key)
                    ch = pathlist + [t]
                    findings.append(CgFinding(
                        e.file, e.line, "hot-recursion", ch,
                        f"recursion cycle in the hot closure: "
                        f"{chain_str(ch)}"))
                elif c == 0:
                    dfs(t, pathlist + [t])
        color[nm] = 2

    for r in roots:
        if color.get(r, 0) == 0:
            dfs(r, [r])

    # stale-waiver (+ reasonless waivers in fixture mode; repo mode leaves
    # those to scap_lint so each violation has exactly one reporter).
    for rel in sorted(graph.raw_lines):
        for i, ln in enumerate(graph.raw_lines[rel]):
            m = scap_lint.WAIVER_RE.search(ln)
            if not m:
                continue
            rule, reason = m.group(1), m.group(2).strip()
            if fixture_mode and not reason:
                findings.append(CgFinding(rel, i + 1, "waiver", [],
                                          "waiver without a reason"))
            if scap_rules.owner_of(rule) == "callgraph" and \
                    (rel, i + 1, rule) not in used:
                findings.append(CgFinding(
                    rel, i + 1, "stale-waiver", [],
                    f"waiver for '{rule}' suppresses nothing — the finding "
                    "it excused is gone; remove the waiver"))
    return findings


def dump_graph(graph, out=sys.stdout):
    for name in sorted(graph.nodes):
        n = graph.nodes[name]
        mark = " [HOT]" if n.hot else (" [COLD]" if n.cold else "")
        print(f"{name}{mark}  ({n.file}:{n.line})", file=out)
        for e in sorted(n.edges, key=lambda e: (e.kind, e.target, e.line)):
            t = "<callback pool>" if e.kind == "callback" else e.target
            print(f"    -> {t}  ({e.file}:{e.line})", file=out)
        for op in sorted(n.ops, key=lambda o: (o.line, o.rule)):
            print(f"    !! {op.rule}: {op.label}  ({op.file}:{op.line})",
                  file=out)
    if graph.pool:
        print("callback pool: " + ", ".join(sorted(graph.pool)), file=out)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--fixtures", metavar="DIR",
                        help="analyze self-test fixtures in DIR (each .cpp "
                             "is its own program/graph)")
    parser.add_argument("--frontend", choices=("auto", "clang", "text"),
                        default="auto")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--dump-graph", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        print("\n".join(RULES + [scap_rules.STALE_WAIVER_RULE]))
        return 0

    cindex = None
    if args.frontend in ("auto", "clang"):
        import scap_analyzer
        cindex = scap_analyzer.load_cindex()
    if args.frontend == "clang" and cindex is None:
        print("scap_callgraph: libclang not available (install "
              "python3-clang + libclang or set SCAP_LIBCLANG; or use "
              "--frontend text); skipping", file=sys.stderr)
        return EXIT_SKIP
    frontend = "clang" if cindex is not None else "text"
    print(f"scap_callgraph: frontend={frontend}", file=sys.stderr)

    findings = []
    graphs = []
    if args.fixtures:
        root = os.path.abspath(args.fixtures)
        if not os.path.isdir(root):
            print(f"scap_callgraph: no such fixture dir: {root}",
                  file=sys.stderr)
            return 2
        files = [n for n in sorted(os.listdir(root)) if n.endswith(".cpp")]
        for rel in files:
            if frontend == "clang":
                graph = build_clang_graph(cindex, root, [rel],
                                          fixture_mode=True)
            else:
                graph = build_text_graph(root, [rel])
            if graph is None:
                return 2
            graphs.append(graph)
            findings.extend(analyze_graph(graph, fixture_mode=True))
    else:
        root = os.path.abspath(args.root)
        if not os.path.isdir(os.path.join(root, "src")):
            print(f"scap_callgraph: {root} does not look like the scap "
                  "repo", file=sys.stderr)
            return 2
        files = list(scap_lint.iter_source_files(root, "src"))
        if frontend == "clang":
            graph = build_clang_graph(cindex, root, files,
                                      fixture_mode=False)
        else:
            graph = build_text_graph(root, files)
        if graph is None:
            return 2
        graphs.append(graph)
        findings.extend(analyze_graph(graph, fixture_mode=False))

    if args.dump_graph:
        for g in graphs:
            dump_graph(g)

    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.chain))
    if args.json:
        print(json.dumps(
            [{"file": f.file, "line": f.line, "rule": f.rule,
              "chain": f.chain, "message": f.message} for f in findings],
            indent=2))
    else:
        for f in findings:
            print(f)
    if findings:
        print(f"scap_callgraph: {len(findings)} finding(s) "
              f"[frontend={frontend}]", file=sys.stderr)
        return 1
    if not args.json:
        print(f"scap_callgraph: clean [frontend={frontend}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
