#!/usr/bin/env python3
"""Run clang-tidy over the project's first-party sources.

Thin ctest wrapper around clang-tidy: reads compile_commands.json from the
build directory, keeps first-party translation units (src/, tools/, bench/,
examples/ — tests are gtest-macro heavy and excluded), and runs clang-tidy
with the checks from the repo's .clang-tidy.

Exit codes:
  0  — clean
  1  — clang-tidy reported diagnostics
  77 — clang-tidy is not installed (ctest SKIP_RETURN_CODE)
  2  — usage / environment error
"""

import argparse
import json
import shutil
import subprocess
import sys
from pathlib import Path

FIRST_PARTY = ("src/", "tools/", "bench/", "examples/")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build", required=True,
                        help="build directory containing compile_commands.json")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args()

    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("clang-tidy not found on PATH; skipping (exit 77)")
        return 77

    build = Path(args.build)
    ccdb = build / "compile_commands.json"
    if not ccdb.is_file():
        print(f"error: {ccdb} not found "
              "(configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        return 2

    root = Path(__file__).resolve().parent.parent
    entries = json.loads(ccdb.read_text())
    files = sorted({
        e["file"] for e in entries
        if any(str(Path(e["file"]).resolve().relative_to(root))
               .startswith(p) for p in FIRST_PARTY
               if Path(e["file"]).resolve().is_relative_to(root))
    })
    if not files:
        print("error: no first-party files in compile database",
              file=sys.stderr)
        return 2

    print(f"clang-tidy: {len(files)} translation units")
    failed = False
    for f in files:
        proc = subprocess.run(
            [tidy, "-p", str(build), "--quiet", "--warnings-as-errors=*", f],
            capture_output=True, text=True)
        if proc.returncode != 0:
            failed = True
            rel = Path(f).resolve()
            print(f"--- {rel} ---")
            sys.stdout.write(proc.stdout)
            sys.stderr.write(proc.stderr)
    if failed:
        print("clang-tidy: FAILED")
        return 1
    print("clang-tidy: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
