#!/usr/bin/env python3
"""Verify that every first-party C++ file satisfies the repo's .clang-format.

Exit codes:
  0  — all files formatted
  1  — at least one file would be reformatted
  77 — clang-format is not installed (ctest SKIP_RETURN_CODE)
"""

import shutil
import subprocess
import sys
from pathlib import Path

DIRS = ("src", "tests", "tools", "bench", "examples")
EXTS = {".cpp", ".hpp", ".h"}


def main() -> int:
    fmt = shutil.which("clang-format")
    if fmt is None:
        print("clang-format not found on PATH; skipping (exit 77)")
        return 77

    root = Path(__file__).resolve().parent.parent
    files = sorted(
        str(p) for d in DIRS for p in (root / d).rglob("*")
        if p.suffix in EXTS and p.is_file())
    if not files:
        print("error: no C++ sources found", file=sys.stderr)
        return 2

    proc = subprocess.run([fmt, "--dry-run", "--Werror", *files],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        print(f"clang-format: style violations (checked {len(files)} files)")
        return 1
    print(f"clang-format: {len(files)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
