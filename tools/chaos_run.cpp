// chaos_run — deterministic adversarial smoke harness (DESIGN.md §8).
//
// Drives a full inline Capture with the seeded AdversaryGen traffic mix
// (well-formed sessions + garbage + header mutations + SYN/frag floods)
// while a FaultScope fails allocation/insertion sites on a replayable
// schedule, then prints a deterministic report of every counter the run
// touched. The process exits non-zero if any hardening invariant breaks:
//
//   - the parse-error taxonomy must sum to pkts_invalid
//   - every injected fault must surface in a counter, not a crash
//   - with --check-reproducible, two runs of the same seed must produce
//     byte-identical reports (the bit-reproducibility acceptance gate)
//   - with --check-invariants, the kernel's full conservation suite
//     (ScapKernel::check_invariants: verdict-histogram conservation, pool
//     balance, PPL monotonicity) is evaluated every 1000 packets and after
//     the final flush; any violation fails the run
//
// With --workers N the same storm runs through the sharded datapath
// (KernelShards, DESIGN.md §12): conservation is then checked per shard and
// on the shard-aggregated stats. The single-threaded allocator fault points
// stay off in that mode (the per-point rng stream is not worker-safe), but
// --mc-faults arms the *keyed* sharded-datapath points (DESIGN.md §13):
// kRingPush forces admission sheds on a deterministic schedule, and
// kWorkerStall parks one shard's worker (shard seed % workers) so the
// watchdog must detect it and the degrade policy must shed its traffic
// while the other shards keep capturing. Keyed decisions are pure functions
// of (seed, point, shard, ordinal), so an --mc-faults run with FDIR off is
// bit-reproducible — with --check-reproducible, FDIR is disabled
// automatically in sharded mode (a worker's install command reaches the
// NIC when the producer next services the queue, so hardware drops race
// the packet stream exactly as on real hardware). --ring-high-wm /
// --ring-low-wm additionally enable watermark ring admission; occupancy is
// scheduling-dependent, so those runs gate on invariants, not on
// bit-reproducibility.
//
// Usage: chaos_run [--seed S] [--packets N] [--workers N] [--mc-faults]
//                  [--ring-high-wm PCT] [--ring-low-wm PCT]
//                  [--check-reproducible] [--check-invariants]
//                  [--trace-out FILE]
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>

#include "faultinject/adversary.hpp"
#include "faultinject/faultinject.hpp"
#include "kernel/stats_determinism.hpp"
#include "packet/headers.hpp"
#include "scap/capture.hpp"
#include "trace/export.hpp"

namespace {

using scap::Capture;
using scap::Parameter;
using scap::faultinject::AdversaryConfig;
using scap::faultinject::AdversaryGen;
using scap::faultinject::FaultInjector;
using scap::faultinject::FaultPoint;
using scap::faultinject::FaultScope;
using scap::faultinject::InjectionPlan;
using scap::faultinject::kNumFaultPoints;
using scap::kernel::KernelStats;

struct Options {
  std::uint64_t seed = 1;
  std::uint64_t packets = 20000;
  int workers = 0;  // 0 = inline; N = sharded datapath with N workers
  bool mc_faults = false;   // arm keyed ring/stall faults (sharded mode)
  int ring_high_wm = 0;     // watermark admission, % of ring capacity
  int ring_low_wm = 0;
  bool check_reproducible = false;
  bool check_invariants = false;
  std::string trace_out;  // write the binary trace here (empty = don't)
};

void append(std::string& out, const char* key, std::uint64_t value) {
  char line[96];
  std::snprintf(line, sizeof(line), "%s=%" PRIu64 "\n", key, value);
  out += line;
}

/// Run the adversarial scenario once; returns (report, ok). The report is a
/// pure function of the seed/packet count, so two calls with equal options
/// must return identical strings.
std::string run_once(const Options& opt, bool& ok) {
  ok = true;

  // Small memory so the adversarial load actually reaches the overload and
  // exhaustion paths it is meant to exercise. Exception: the sharded
  // bit-reproducibility gate runs unstarved — chunk memory is released on
  // worker batch boundaries, so under pressure the nomem/PPL-adaptive
  // verdicts depend on scheduling, not on the input trace (the same edge
  // the shard-conservation Exact suite removes). The starved sharded paths
  // stay covered by the watermark variant, which gates on the conservation
  // suite instead.
  const bool mc_repro = opt.workers > 0 && opt.check_reproducible;
  Capture cap("chaos0", mc_repro ? (64ull << 20) : 80 * 1024,
              scap::kernel::ReassemblyMode::kTcpStrict,
              /*need_pkts=*/false);
  cap.set_worker_threads(opt.workers);
  // Sharded FDIR commands drain through the MPSC queue on the producer's
  // schedule, so the hardware-dropped set races the packet stream; the
  // reproducibility gate needs it off in sharded mode.
  cap.set_use_fdir(!(opt.workers > 0 && opt.check_reproducible));
  if (opt.workers > 0) {
    if (opt.ring_high_wm > 0) {
      cap.set_parameter(Parameter::kRingHighWatermarkPct, opt.ring_high_wm);
      cap.set_parameter(Parameter::kRingLowWatermarkPct, opt.ring_low_wm);
    }
    if (opt.mc_faults) {
      // A parked worker must be detected within this (simulated) deadline
      // and degraded — the other shards keep capturing, its traffic lands
      // in ring_stall_shed_*.
      cap.set_parameter(Parameter::kStallTimeoutMs, 5);
      cap.set_parameter(Parameter::kStallPolicy, 1);  // degrade
    }
  }
  cap.set_defragment(true);
  // Cutoffs trip after two chunks -> FDIR installs (and their injected
  // faults), while streams still hold blocks long enough that memory
  // pressure sustains and the adaptive controller engages.
  cap.set_cutoff(16 * 1024);
  cap.set_parameter(Parameter::kChunkSize, 8 * 1024);
  cap.set_parameter(Parameter::kPriorityLevels, 4);
  // High base threshold: PPL itself sheds little, so sustained pressure
  // reaches the adaptive controller's enter band — the regime the
  // EWMA/hysteresis cutoff exists for.
  cap.set_parameter(Parameter::kBaseThresholdPercent, 80);
  // Adaptive overload control instead of a static cutoff.
  cap.set_parameter(Parameter::kAdaptiveCutoff, 64 * 1024);
  cap.set_parameter(Parameter::kAdaptiveMinCutoff, 4 * 1024);

  // Applications set priorities from the creation callback (paper §3.3);
  // spread streams across the priority ladder by client port (the server
  // port is 80 for the whole mix, which would pin everything to one level).
  cap.dispatch_creation([](scap::StreamView& sv) {
    sv.set_priority(static_cast<int>(sv.tuple().src_port % 4));
  });

  InjectionPlan plan;
  plan.seed = opt.seed;
  if (opt.workers == 0) {
    plan.at(FaultPoint::kRecordPoolAcquire).probability = 0.01;
    plan.at(FaultPoint::kChunkAlloc).probability = 0.02;
    plan.at(FaultPoint::kSegmentStoreInsert).probability = 0.02;
    plan.at(FaultPoint::kFdirAdd).probability = 0.05;
  } else if (opt.mc_faults) {
    // Keyed points only: their verdicts hash (seed, point, shard, ordinal),
    // so they are safe — and deterministic — under worker concurrency.
    plan.at(FaultPoint::kRingPush).probability = 0.01;
    plan.at(FaultPoint::kWorkerStall).every_n = 1;
    plan.at(FaultPoint::kWorkerStall).only_key =
        static_cast<std::int64_t>(opt.seed % static_cast<std::uint64_t>(
                                                 opt.workers));
  }
  FaultInjector injector(plan);

  AdversaryConfig acfg;
  acfg.seed = opt.seed;
  acfg.packets = opt.packets;
  // Spread the schedule over enough virtual time that the kernel's
  // per-second maintenance pass — which feeds the adaptive controller and
  // services FDIR timeouts — runs many times during the storm.
  acfg.spacing = scap::Duration::from_usec(1000);
  AdversaryGen gen(acfg);

  // Tracing is always on here: the per-type trace counts and histograms
  // below feed the reproducibility gate and the trace conservation laws
  // checked by --check-invariants.
  cap.enable_tracing(1 << 14);
  {
    // Inline mode arms the allocator points; sharded mode installs the
    // scope only for the keyed ring/stall points (--mc-faults), whose
    // decisions are interleaving-independent (see header comment). The
    // scope must be installed before start(): sharded workers consult
    // kWorkerStall at thread entry, and racing the installation would make
    // the victim set nondeterministic.
    std::optional<FaultScope> scope;
    if (opt.workers == 0 || opt.mc_faults) scope.emplace(injector);
    cap.start();
    for (std::uint64_t i = 0; i < opt.packets; ++i) {
      cap.inject(gen.next());
      if (opt.check_invariants && (i + 1) % 1000 == 0) {
        // In sharded mode this locks each shard at a batch boundary and
        // additionally checks conservation on the aggregated stats.
        const std::string v = cap.check_invariants();
        if (!v.empty()) {
          std::fprintf(stderr,
                       "INVARIANT VIOLATION after %" PRIu64 " packets: %s\n",
                       i + 1, v.c_str());
          ok = false;
        }
      }
    }
    cap.stop();  // flush inside the scope: teardown paths get faults too
  }
  if (opt.check_invariants) {
    const std::string v = cap.check_invariants();
    if (!v.empty()) {
      std::fprintf(stderr, "INVARIANT VIOLATION after flush: %s\n", v.c_str());
      ok = false;
    }
  }

  const scap::CaptureStats stats = cap.stats();
  const KernelStats& k = stats.kernel;

  std::string report;
  report += "chaos_run report\n";
  append(report, "seed", opt.seed);
  append(report, "packets", opt.packets);

  // Every KernelStats counter is dumped: a counter missing from this
  // report is invisible to the reproducibility gate. Which counters are
  // excluded under --check-reproducible is not decided here: append_stat
  // consults the determinism registry (kernel/stats_determinism.inc), so
  // reclassifying a field there is the one and only switch.
  const auto append_stat = [&](const char* name, std::uint64_t v) {
    if (opt.check_reproducible &&
        scap::kernel::stats_field_class(name) ==
            scap::kernel::StatDeterminism::kSchedulingDependent) {
      return;
    }
    append(report, name, v);
  };
  append_stat("pkts_seen", k.pkts_seen);
  append_stat("bytes_seen", k.bytes_seen);
  append_stat("pkts_stored", k.pkts_stored);
  append_stat("bytes_stored", k.bytes_stored);
  append_stat("pkts_control", k.pkts_control);
  append_stat("pkts_filtered", k.pkts_filtered);
  append_stat("pkts_ignored", k.pkts_ignored);
  append_stat("pkts_frag_held", k.pkts_frag_held);
  append_stat("pkts_buffered", k.pkts_buffered);
  append_stat("pkts_invalid", k.pkts_invalid);
  append_stat("pkts_cutoff", k.pkts_cutoff);
  append_stat("bytes_cutoff", k.bytes_cutoff);
  append_stat("pkts_dup", k.pkts_dup);
  append_stat("bytes_dup", k.bytes_dup);
  append_stat("pkts_ppl_dropped", k.pkts_ppl_dropped);
  append_stat("bytes_ppl_dropped", k.bytes_ppl_dropped);
  append_stat("pkts_nomem_dropped", k.pkts_nomem_dropped);
  append_stat("bytes_nomem_dropped", k.bytes_nomem_dropped);
  append_stat("pkts_norec_dropped", k.pkts_norec_dropped);
  append_stat("pkts_bad_checksum", k.pkts_bad_checksum);
  append_stat("reasm_alloc_failures", k.reasm_alloc_failures);
  append_stat("fdir_install_failures", k.fdir_install_failures);
  append_stat("fdir_installs", k.fdir_installs);
  append_stat("fdir_reinstalls", k.fdir_reinstalls);
  append_stat("fdir_removals", k.fdir_removals);
  append_stat("streams_created", k.streams_created);
  append_stat("streams_terminated", k.streams_terminated);
  append_stat("streams_evicted", k.streams_evicted);
  append_stat("streams_rebalanced", k.streams_rebalanced);
  // Sharded-datapath robustness counters (all zero inline). The occupancy
  // peak is registry-classified scheduling-dependent, so append_stat keeps
  // it out of the bit-reproducibility comparison.
  append_stat("ring_shed_pkts", k.ring_shed_pkts);
  append_stat("ring_shed_bytes", k.ring_shed_bytes);
  append_stat("ring_stall_shed_pkts", k.ring_stall_shed_pkts);
  append_stat("ring_stall_shed_bytes", k.ring_stall_shed_bytes);
  append_stat("worker_stalls", k.worker_stalls);
  append_stat("ring_occupancy_peak", k.ring_occupancy_peak);
  append_stat("streams_active", k.streams_active);
  append_stat("events_emitted", k.events_emitted);
  append_stat("chunks_delivered", k.chunks_delivered);
  append(report, "nic_dropped_by_filter", stats.nic_dropped_by_filter);

  // Record pool occupancy.
  append_stat("pool_capacity", k.pool_capacity);
  append_stat("pool_free", k.pool_free);
  append_stat("pool_slabs", k.pool_slabs);
  append_stat("pool_recycled", k.pool_recycled);

  // Final-verdict histogram (sums to pkts_seen — conservation law 1).
  for (std::size_t i = 0; i < scap::kernel::kNumVerdicts; ++i) {
    std::string key = "verdict.";
    key += scap::kernel::to_string(static_cast<scap::kernel::Verdict>(i));
    append(report, key.c_str(), k.verdicts[i]);
  }

  // Parse-error taxonomy.
  std::uint64_t taxonomy_sum = 0;
  for (std::size_t i = 0; i < scap::kNumDecodeErrors; ++i) {
    const auto err = static_cast<scap::DecodeError>(i);
    if (err == scap::DecodeError::kNone) continue;
    std::string key = "parse_error.";
    key += scap::to_string(err);
    append(report, key.c_str(), k.parse_errors[i]);
    taxonomy_sum += k.parse_errors[i];
  }

  // Adaptive overload controller.
  append_stat("ppl_effective_cutoff",
              static_cast<std::uint64_t>(k.ppl_effective_cutoff < 0
                                             ? 0
                                             : k.ppl_effective_cutoff));
  append_stat("ppl_overload_active", k.ppl_overload_active);
  append_stat("ppl_overload_entries", k.ppl_overload_entries);
  append_stat("ppl_overload_exits", k.ppl_overload_exits);
  append_stat("ppl_tightenings", k.ppl_tightenings);
  append_stat("ppl_relaxations", k.ppl_relaxations);

  // Fault injector: calls seen and failures injected per point.
  for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
    const auto p = static_cast<FaultPoint>(i);
    std::string key = "fault.";
    key += scap::faultinject::to_string(p);
    append(report, (key + ".calls").c_str(), injector.calls(p));
    append(report, (key + ".injected").c_str(), injector.injected(p));
  }

  // Trace layer: per-type event counts (wrap-independent) and the metric
  // histograms. All zero in SCAP_TRACE=OFF builds, deterministic otherwise,
  // so the reproducibility gate covers the tracer too.
  const scap::trace::Tracer* tracer = cap.tracer();
  append(report, "trace_events_recorded", stats.trace_events_recorded);
  append(report, "trace_events_dropped", stats.trace_events_dropped);
  // Per-type counts across every tracer: the capture-level one plus, in
  // sharded mode, each shard kernel's (workers are joined after stop(), so
  // direct access is safe).
  const auto recorded_of = [&cap, tracer](scap::trace::TraceEventType t) {
    std::uint64_t n = tracer != nullptr ? tracer->recorded_of(t) : 0;
    if (cap.shards() != nullptr) {
      for (int i = 0; i < cap.shards()->num_shards(); ++i) {
        const scap::trace::Tracer* st = cap.shards()->tracer(i);
        if (st != nullptr) n += st->recorded_of(t);
      }
      // Ring sheds and stall declarations are producer-side events; they
      // live on the shards' producer tracer, not on any shard kernel's.
      const scap::trace::Tracer* pt = cap.shards()->producer_tracer();
      if (pt != nullptr) n += pt->recorded_of(t);
    }
    return n;
  };
  for (std::size_t i = 0; i < scap::trace::kNumTraceEventTypes; ++i) {
    const auto t = static_cast<scap::trace::TraceEventType>(i);
    std::string key = "trace.";
    key += scap::trace::to_string(t);
    append(report, key.c_str(), recorded_of(t));
  }
  const struct {
    const char* name;
    const scap::trace::Log2Histogram* hist;
  } hists[] = {
      {"stream_size_bytes", &stats.metrics.stream_size_bytes},
      {"chunk_latency_us", &stats.metrics.chunk_latency_us},
      {"flow_probe_len", &stats.metrics.flow_probe_len},
      {"queue_occupancy", &stats.metrics.queue_occupancy},
  };
  for (const auto& h : hists) {
    const std::string key = std::string("hist.") + h.name;
    append(report, (key + ".total").c_str(), h.hist->total());
    // Sharded mode: registry-classified scheduling-dependent histograms
    // (queue occupancy measures consumer lag at each tick) keep their
    // deterministic sample *count* in the comparison but not the bucket
    // distribution.
    if (opt.workers > 0 && opt.check_reproducible &&
        scap::kernel::metric_hist_class(h.name) ==
            scap::kernel::StatDeterminism::kSchedulingDependent) {
      continue;
    }
    for (std::size_t b = 0; b < scap::trace::Log2Histogram::kBuckets; ++b) {
      if (h.hist->count(b) == 0) continue;
      append(report, (key + ".b" + std::to_string(b)).c_str(),
             h.hist->count(b));
    }
  }

  if (!opt.trace_out.empty() && tracer != nullptr) {
    std::ofstream trace_file(opt.trace_out, std::ios::binary);
    if (!trace_file) {
      std::fprintf(stderr, "cannot open %s\n", opt.trace_out.c_str());
      ok = false;
    } else {
      scap::trace::write_binary(*tracer, trace_file);
    }
  }

  // --- invariants ----------------------------------------------------------
  if (taxonomy_sum != k.pkts_invalid) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION: parse-error taxonomy sums to %" PRIu64
                 " but pkts_invalid=%" PRIu64 "\n",
                 taxonomy_sum, k.pkts_invalid);
    ok = false;
  }
  // Record-pool faults must surface as no-record drops. (Not an equality:
  // injected faults on the teardown/flush path have no packet to count.)
  if (injector.injected(FaultPoint::kRecordPoolAcquire) > 0 &&
      k.pkts_norec_dropped == 0) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION: record-pool faults injected but "
                 "pkts_norec_dropped=0\n");
    ok = false;
  }
  if (injector.injected(FaultPoint::kFdirAdd) > k.fdir_install_failures) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION: %" PRIu64
                 " FDIR faults injected but only %" PRIu64
                 " install failures counted\n",
                 injector.injected(FaultPoint::kFdirAdd),
                 k.fdir_install_failures);
    ok = false;
  }
  // Every forced admission fault must surface as a counted shed, and every
  // injected worker stall must have been detected by the watchdog.
  if (injector.injected(FaultPoint::kRingPush) > k.ring_shed_pkts) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION: %" PRIu64
                 " ring-push faults injected but only %" PRIu64
                 " packets shed\n",
                 injector.injected(FaultPoint::kRingPush), k.ring_shed_pkts);
    ok = false;
  }
  if (injector.injected(FaultPoint::kWorkerStall) > k.worker_stalls) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION: %" PRIu64
                 " worker stalls injected but only %" PRIu64
                 " detected by the watchdog\n",
                 injector.injected(FaultPoint::kWorkerStall),
                 k.worker_stalls);
    ok = false;
  }
  if (injector.injected(FaultPoint::kWorkerStall) > 0 &&
      k.ring_stall_shed_pkts == 0) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATION: a worker stalled but no traffic was "
                 "shed into ring_stall_shed_*\n");
    ok = false;
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opt.seed = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--packets") == 0 && i + 1 < argc) {
      opt.packets = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc) {
      opt.workers = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
    } else if (std::strcmp(argv[i], "--mc-faults") == 0) {
      opt.mc_faults = true;
    } else if (std::strcmp(argv[i], "--ring-high-wm") == 0 && i + 1 < argc) {
      opt.ring_high_wm = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
    } else if (std::strcmp(argv[i], "--ring-low-wm") == 0 && i + 1 < argc) {
      opt.ring_low_wm = static_cast<int>(std::strtol(argv[++i], nullptr, 0));
    } else if (std::strcmp(argv[i], "--check-reproducible") == 0) {
      opt.check_reproducible = true;
    } else if (std::strcmp(argv[i], "--check-invariants") == 0) {
      opt.check_invariants = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      opt.trace_out = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: chaos_run [--seed S] [--packets N] [--workers N] "
                   "[--mc-faults] [--ring-high-wm PCT] [--ring-low-wm PCT] "
                   "[--check-reproducible] [--check-invariants] "
                   "[--trace-out FILE]\n");
      return 2;
    }
  }

  bool ok = true;
  const std::string report = run_once(opt, ok);
  std::fputs(report.c_str(), stdout);

  if (opt.check_reproducible) {
    bool ok2 = true;
    const std::string again = run_once(opt, ok2);
    ok = ok && ok2;
    if (again != report) {
      std::fprintf(stderr,
                   "REPRODUCIBILITY VIOLATION: two runs with seed %" PRIu64
                   " produced different reports\n",
                   opt.seed);
      std::fputs(again.c_str(), stderr);
      return 1;
    }
    std::printf("reproducible=1\n");
  }
  return ok ? 0 : 1;
}
