#!/usr/bin/env python3
"""scap_lint — Scap-specific static checks (DESIGN.md §9).

Rules
-----
heap-hot-path
    No raw `new`/`new[]`, `malloc`/`calloc`/`realloc`, or
    `std::unordered_map` in kernel hot-path files. Fast-path memory must go
    through RecordPool (stream records), ChunkAllocator (chunk blocks) or
    the open-addressing FlowTable; ad-hoc heap traffic on the packet path
    is exactly what the PR-1 fast-path overhaul removed.

nondeterminism
    No `rand()`, `std::random_device`, `std::mt19937`, wall-clock reads
    (`system_clock` / `steady_clock` / `gettimeofday` / `time(nullptr)`)
    anywhere in src/. All randomness flows from the seeded scap::Rng and
    all time from the virtual scap::Timestamp, or bit-reproducible chaos
    runs are impossible.

counter-conservation
    Every counter declared in KernelStats (src/kernel/module.hpp) must be
    (a) written somewhere in src/kernel/ (incremented on the hot path or
    mirrored in stats()), (b) mirrored into the C API's scap_stats_t in
    src/scap/capi.cpp, and (c) dumped by tools/chaos_run.cpp. A counter
    added but not mirrored is the bug class the conservation checker
    exists for: it silently vanishes from every report that matters.

api-stats-mirror
    Every field of scap_stats_t (src/scap/scap.h) must be assigned in
    scap_get_stats (src/scap/capi.cpp) — the reverse direction of the
    mirror law.

trace-coverage
    Every enumerator of trace::TraceEventType (src/trace/trace.hpp) must
    have (a) an emit site somewhere in src/ outside src/trace/ — an event
    type nothing records is dead weight in the 32-byte record — and (b) a
    pretty-printer case in src/trace/export.cpp, or the golden/text/Chrome
    serializations silently print it payload-less.

Waivers: append `// scap-lint: allow(<rule>) <reason>` to the offending
line (or the line directly above it). Waivers without a reason are
themselves findings.

Usage: scap_lint.py [--root DIR] [--list-rules]
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

# Kernel hot-path files: everything a packet touches between handle_packet
# and event emission. Cold-path kernel files (defrag holds fragments across
# packets, events are queue plumbing) still obey nondeterminism rules but
# may use standard containers.
HOT_PATH_FILES = [
    "src/kernel/module.hpp",
    "src/kernel/module.cpp",
    "src/kernel/flow_table.hpp",
    "src/kernel/flow_table.cpp",
    "src/kernel/record_pool.hpp",
    "src/kernel/record_pool.cpp",
    "src/kernel/memory.hpp",
    "src/kernel/memory.cpp",
    "src/kernel/reassembly.hpp",
    "src/kernel/reassembly.cpp",
    "src/kernel/segment_store.hpp",
    "src/kernel/segment_store.cpp",
    "src/kernel/ppl.hpp",
    "src/kernel/ppl.cpp",
    "src/kernel/stream.hpp",
]

HEAP_PATTERNS = [
    (re.compile(r"\bnew\b(?!\s*\()"), "raw operator new"),
    (re.compile(r"\bnew\s*\("), "placement/raw operator new"),
    (re.compile(r"\b(?:malloc|calloc|realloc)\s*\("), "C heap allocation"),
    (re.compile(r"std::unordered_map\b"), "std::unordered_map"),
]

NONDET_PATTERNS = [
    (re.compile(r"\b(?:srand|rand)\s*\("), "libc rand()"),
    (re.compile(r"std::random_device\b"), "std::random_device"),
    (re.compile(r"std::(?:mt19937|mt19937_64|default_random_engine)\b"),
     "unseeded-by-policy std <random> engine"),
    (re.compile(
        r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)"),
     "wall-clock read"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime)\s*\("), "wall-clock read"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"), "wall-clock read"),
]

# Files allowed to talk about randomness sources (the seeded generator and
# its documentation live here).
NONDET_EXEMPT = ["src/base/rng.hpp"]

WAIVER_RE = re.compile(r"//\s*scap-lint:\s*allow\(([a-z-]+)\)\s*(.*)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line):
    """Blank out string/char literals and // comments so patterns match
    only code. Block comments are handled per-line by the caller."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def read_lines(path):
    with open(path, encoding="utf-8") as f:
        return f.read().splitlines()


def waivers_for(lines, idx, rule):
    """True if line idx (0-based) or the line above carries a waiver for
    `rule`."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = WAIVER_RE.search(lines[j])
        if m and m.group(1) == rule:
            return True
    return False


def scan_patterns(root, rel, patterns, rule, findings):
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        findings.append(Finding(rel, 0, rule, "file missing (rule expects it)"))
        return
    lines = read_lines(path)
    in_block_comment = False
    for i, raw in enumerate(lines):
        line = raw
        if in_block_comment:
            end = line.find("*/")
            if end < 0:
                continue
            line = line[end + 2:]
            in_block_comment = False
        # Strip /* ... */ spans that open (and possibly close) on this line.
        while True:
            start = line.find("/*")
            if start < 0:
                break
            end = line.find("*/", start + 2)
            if end < 0:
                line = line[:start]
                in_block_comment = True
                break
            line = line[:start] + " " * (end + 2 - start) + line[end + 2:]
        code = strip_comments_and_strings(line)
        for pattern, what in patterns:
            if pattern.search(code) and not waivers_for(lines, i, rule):
                findings.append(Finding(rel, i + 1, rule,
                                        f"{what} (forbidden here)"))


FIELD_RE = re.compile(
    r"^\s*std::u?int64_t\s+([a-z_][a-z0-9_]*)(?:\s*\[[^\]]*\])?\s*=?")


def parse_struct_fields(lines, struct_name):
    """Collect (name, line_no, declaration_line) for integer fields of
    `struct <name> {...}` — counters only, nested braces skipped."""
    fields = []
    in_struct = False
    depth = 0
    for i, line in enumerate(lines):
        if not in_struct:
            if re.search(r"\bstruct\s+" + struct_name + r"\b", line):
                in_struct = True
                depth = line.count("{") - line.count("}")
            continue
        depth += line.count("{") - line.count("}")
        if depth < 0 or (depth == 0 and "};" in line):
            break
        if depth > 1:
            continue  # nested scope (e.g. a member function body)
        m = FIELD_RE.match(line)
        if m:
            fields.append((m.group(1), i + 1, line))
    return fields


def word_in_file(root, rel, word):
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        return False
    pattern = re.compile(r"\b" + re.escape(word) + r"\b")
    lines = read_lines(path)
    for line in lines:
        if pattern.search(strip_comments_and_strings(line)):
            return True
    return False


def check_counter_conservation(root, findings):
    module_hpp = "src/kernel/module.hpp"
    path = os.path.join(root, module_hpp)
    if not os.path.exists(path):
        findings.append(Finding(module_hpp, 0, "counter-conservation",
                                "module.hpp not found"))
        return
    lines = read_lines(path)
    counters = parse_struct_fields(lines, "KernelStats")
    if not counters:
        findings.append(Finding(module_hpp, 0, "counter-conservation",
                                "could not parse KernelStats counters"))
        return

    kernel_sources = ["src/kernel/module.cpp", "src/kernel/module.hpp"]
    write_re_cache = {}
    for name, line_no, decl in counters:
        if waivers_for(lines, line_no - 1, "counter-conservation"):
            continue
        # (a) written somewhere in the kernel: ++x / x++ / x += / x = / x[.
        wrote = False
        write_re = write_re_cache.setdefault(
            name,
            re.compile(r"(\+\+\s*(?:stats_?\s*\.\s*)?" + re.escape(name) +
                       r"\b)|(\b" + re.escape(name) +
                       r"(?:\s*\[[^\]]*\])?\s*(?:\+\+|\+=|-=|=[^=]))"))
        for rel in kernel_sources:
            src_path = os.path.join(root, rel)
            if not os.path.exists(src_path):
                continue
            for i, src_line in enumerate(read_lines(src_path)):
                if rel == module_hpp and i + 1 == line_no:
                    continue  # the declaration itself
                if write_re.search(strip_comments_and_strings(src_line)):
                    wrote = True
                    break
            if wrote:
                break
        if not wrote:
            findings.append(Finding(
                module_hpp, line_no, "counter-conservation",
                f"KernelStats::{name} is declared but never written in "
                "src/kernel/ — dead counter or missing increment"))
        # (b) mirrored into the C API.
        if not word_in_file(root, "src/scap/capi.cpp", name):
            findings.append(Finding(
                module_hpp, line_no, "counter-conservation",
                f"KernelStats::{name} is not mirrored into scap_stats_t in "
                "src/scap/capi.cpp"))
        # (c) dumped by the chaos harness.
        if not word_in_file(root, "tools/chaos_run.cpp", name):
            findings.append(Finding(
                module_hpp, line_no, "counter-conservation",
                f"KernelStats::{name} is not dumped by tools/chaos_run.cpp — "
                "invisible to the reproducibility gate"))


def check_api_stats_mirror(root, findings):
    scap_h = "src/scap/scap.h"
    path = os.path.join(root, scap_h)
    if not os.path.exists(path):
        findings.append(Finding(scap_h, 0, "api-stats-mirror",
                                "scap.h not found"))
        return
    lines = read_lines(path)
    fields = parse_struct_fields(lines, "scap_stats_t")
    if not fields:
        findings.append(Finding(scap_h, 0, "api-stats-mirror",
                                "could not parse scap_stats_t"))
        return
    capi = os.path.join(root, "src/scap/capi.cpp")
    capi_lines = [strip_comments_and_strings(l) for l in read_lines(capi)]
    for name, line_no, _ in fields:
        assign = re.compile(r"stats->\s*" + re.escape(name) + r"\b")
        if not any(assign.search(l) for l in capi_lines):
            findings.append(Finding(
                scap_h, line_no, "api-stats-mirror",
                f"scap_stats_t::{name} is never assigned in scap_get_stats"))


def check_trace_coverage(root, findings):
    trace_hpp = "src/trace/trace.hpp"
    path = os.path.join(root, trace_hpp)
    if not os.path.exists(path):
        findings.append(Finding(trace_hpp, 0, "trace-coverage",
                                "trace.hpp not found"))
        return
    lines = read_lines(path)

    # Enumerators of `enum class TraceEventType`.
    enums = []
    in_enum = False
    for i, line in enumerate(lines):
        code = strip_comments_and_strings(line)
        if not in_enum:
            if re.search(r"enum\s+class\s+TraceEventType\b", code):
                in_enum = True
            continue
        if "}" in code:
            break
        m = re.match(r"\s*(k[A-Za-z0-9_]+)\s*(?:=[^,]*)?,?\s*$", code)
        if m:
            enums.append((m.group(1), i + 1))
    if not enums:
        findings.append(Finding(trace_hpp, 0, "trace-coverage",
                                "could not parse TraceEventType enumerators"))
        return

    # All code outside src/trace/ that could host an emit site, pre-stripped.
    emit_lines = []
    for rel in iter_source_files(root, "src"):
        if rel.replace(os.sep, "/").startswith("src/trace/"):
            continue
        for line in read_lines(os.path.join(root, rel)):
            emit_lines.append(strip_comments_and_strings(line))
    export_cpp = os.path.join(root, "src/trace/export.cpp")
    export_lines = ([strip_comments_and_strings(l) for l in
                     read_lines(export_cpp)]
                    if os.path.exists(export_cpp) else [])

    for name, line_no in enums:
        if waivers_for(lines, line_no - 1, "trace-coverage"):
            continue
        ref = re.compile(r"TraceEventType::" + re.escape(name) + r"\b")
        if not any(ref.search(l) for l in emit_lines):
            findings.append(Finding(
                trace_hpp, line_no, "trace-coverage",
                f"TraceEventType::{name} has no emit site in src/ outside "
                "src/trace/ — dead event type"))
        case_re = re.compile(r"case\s+TraceEventType::" + re.escape(name) +
                             r"\b")
        if not any(case_re.search(l) for l in export_lines):
            findings.append(Finding(
                trace_hpp, line_no, "trace-coverage",
                f"TraceEventType::{name} has no pretty-printer case in "
                "src/trace/export.cpp (format_event)"))


def iter_source_files(root, subdir):
    for dirpath, _, names in os.walk(os.path.join(root, subdir)):
        for n in sorted(names):
            if n.endswith((".cpp", ".hpp", ".h")):
                yield os.path.relpath(os.path.join(dirpath, n), root)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        print("heap-hot-path\nnondeterminism\ncounter-conservation\n"
              "api-stats-mirror\ntrace-coverage")
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"scap_lint: {root} does not look like the scap repo",
              file=sys.stderr)
        return 2

    findings = []
    for rel in HOT_PATH_FILES:
        scan_patterns(root, rel, HEAP_PATTERNS, "heap-hot-path", findings)
    for rel in iter_source_files(root, "src"):
        if rel.replace(os.sep, "/") in NONDET_EXEMPT:
            continue
        scan_patterns(root, rel, NONDET_PATTERNS, "nondeterminism", findings)
    check_counter_conservation(root, findings)
    check_api_stats_mirror(root, findings)
    check_trace_coverage(root, findings)

    # A waiver must say why, or it is itself a finding.
    for rel in list(iter_source_files(root, "src")) + \
            list(iter_source_files(root, "tools")):
        for i, line in enumerate(read_lines(os.path.join(root, rel))):
            m = WAIVER_RE.search(line)
            if m and not m.group(2).strip():
                findings.append(Finding(rel, i + 1, "waiver",
                                        "waiver without a reason"))

    for f in findings:
        print(f)
    if findings:
        print(f"scap_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("scap_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
