#!/usr/bin/env python3
"""scap_lint — Scap-specific static checks (DESIGN.md §9).

Rules
-----
api-stats-mirror
    Every field of scap_stats_t (src/scap/scap.h) must be assigned in
    scap_get_stats (src/scap/capi.cpp) — the reverse direction of the
    mirror law.

trace-coverage
    Every enumerator of trace::TraceEventType (src/trace/trace.hpp) must
    have (a) an emit site somewhere in src/ outside src/trace/ — an event
    type nothing records is dead weight in the 32-byte record — and (b) a
    pretty-printer case in src/trace/export.cpp, or the golden/text/Chrome
    serializations silently print it payload-less.

Waivers: append `// scap-lint: allow(<rule>) <reason>` to the offending
line (or the line directly above it). Waivers without a reason are
themselves findings.

The former regex rules heap-hot-path and counter-conservation were
promoted to tools/scap_analyzer.py, which checks the same invariants on
the clang AST (rules hot-path-alloc, counter-mirror) and therefore sees
through typedefs, `auto` and macros that regex cannot; the per-function
nondeterminism rule retired in turn into tools/scap_taint.py's transitive
taint rules (taint-wallclock/-rng/-ambient/…), which flag a
nondeterministic value only where it can reach observable output. This
file keeps only the rules where line-oriented text is the natural
representation, plus the helpers and waiver syntax the tools share.

Usage: scap_lint.py [--root DIR] [--list-rules]
Exit status: 0 clean, 1 findings, 2 usage/internal error.
"""

import argparse
import os
import re
import sys

# Kernel hot-path files: everything a packet touches between handle_packet
# and event emission. Cold-path kernel files (defrag holds fragments across
# packets, events are queue plumbing) still obey the determinism rules but
# may use standard containers. Consumed by tools/scap_analyzer.py
# (hot-path-alloc), which owns the allocation rule since it moved to the AST.
HOT_PATH_FILES = [
    "src/kernel/module.hpp",
    "src/kernel/module.cpp",
    "src/kernel/flow_table.hpp",
    "src/kernel/flow_table.cpp",
    "src/kernel/record_pool.hpp",
    "src/kernel/record_pool.cpp",
    "src/kernel/memory.hpp",
    "src/kernel/memory.cpp",
    "src/kernel/reassembly.hpp",
    "src/kernel/reassembly.cpp",
    "src/kernel/segment_store.hpp",
    "src/kernel/segment_store.cpp",
    "src/kernel/ppl.hpp",
    "src/kernel/ppl.cpp",
    "src/kernel/stream.hpp",
]


WAIVER_RE = re.compile(r"//\s*scap-lint:\s*allow\(([a-z-]+)\)\s*(.*)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(line):
    """Blank out string/char literals and // comments so patterns match
    only code. Block comments are handled per-line by the caller."""
    out = []
    i, n = 0, len(line)
    in_str = None
    while i < n:
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            out.append(" ")
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(" ")
            i += 1
            continue
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        out.append(c)
        i += 1
    return "".join(out)


def read_lines(path):
    with open(path, encoding="utf-8") as f:
        return f.read().splitlines()


def waiver_line_for(lines, idx, rule):
    """1-based line number of the waiver covering line idx (0-based) — on
    the line itself or the line above — or None. The line number feeds
    stale-waiver auditing: a waiver that never gets looked up this way
    suppresses nothing."""
    for j in (idx, idx - 1):
        if j < 0:
            continue
        m = WAIVER_RE.search(lines[j])
        if m and m.group(1) == rule:
            return j + 1
    return None


def waivers_for(lines, idx, rule):
    """True if line idx (0-based) or the line above carries a waiver for
    `rule`."""
    return waiver_line_for(lines, idx, rule) is not None


FIELD_RE = re.compile(
    r"^\s*std::u?int64_t\s+([a-z_][a-z0-9_]*)(?:\s*\[[^\]]*\])?\s*=?")


def parse_struct_fields(lines, struct_name):
    """Collect (name, line_no, declaration_line) for integer fields of
    `struct <name> {...}` — counters only, nested braces skipped."""
    fields = []
    in_struct = False
    depth = 0
    for i, line in enumerate(lines):
        if not in_struct:
            if re.search(r"\bstruct\s+" + struct_name + r"\b", line):
                in_struct = True
                depth = line.count("{") - line.count("}")
            continue
        depth += line.count("{") - line.count("}")
        if depth < 0 or (depth == 0 and "};" in line):
            break
        if depth > 1:
            continue  # nested scope (e.g. a member function body)
        m = FIELD_RE.match(line)
        if m:
            fields.append((m.group(1), i + 1, line))
    return fields


def word_in_file(root, rel, word):
    path = os.path.join(root, rel)
    if not os.path.exists(path):
        return False
    pattern = re.compile(r"\b" + re.escape(word) + r"\b")
    lines = read_lines(path)
    for line in lines:
        if pattern.search(strip_comments_and_strings(line)):
            return True
    return False


def check_api_stats_mirror(root, findings):
    scap_h = "src/scap/scap.h"
    path = os.path.join(root, scap_h)
    if not os.path.exists(path):
        findings.append(Finding(scap_h, 0, "api-stats-mirror",
                                "scap.h not found"))
        return
    lines = read_lines(path)
    fields = parse_struct_fields(lines, "scap_stats_t")
    if not fields:
        findings.append(Finding(scap_h, 0, "api-stats-mirror",
                                "could not parse scap_stats_t"))
        return
    capi = os.path.join(root, "src/scap/capi.cpp")
    capi_lines = [strip_comments_and_strings(l) for l in read_lines(capi)]
    for name, line_no, _ in fields:
        assign = re.compile(r"stats->\s*" + re.escape(name) + r"\b")
        if not any(assign.search(l) for l in capi_lines):
            findings.append(Finding(
                scap_h, line_no, "api-stats-mirror",
                f"scap_stats_t::{name} is never assigned in scap_get_stats"))


def check_trace_coverage(root, findings):
    trace_hpp = "src/trace/trace.hpp"
    path = os.path.join(root, trace_hpp)
    if not os.path.exists(path):
        findings.append(Finding(trace_hpp, 0, "trace-coverage",
                                "trace.hpp not found"))
        return
    lines = read_lines(path)

    # Enumerators of `enum class TraceEventType`.
    enums = []
    in_enum = False
    for i, line in enumerate(lines):
        code = strip_comments_and_strings(line)
        if not in_enum:
            if re.search(r"enum\s+class\s+TraceEventType\b", code):
                in_enum = True
            continue
        if "}" in code:
            break
        m = re.match(r"\s*(k[A-Za-z0-9_]+)\s*(?:=[^,]*)?,?\s*$", code)
        if m:
            enums.append((m.group(1), i + 1))
    if not enums:
        findings.append(Finding(trace_hpp, 0, "trace-coverage",
                                "could not parse TraceEventType enumerators"))
        return

    # All code outside src/trace/ that could host an emit site, pre-stripped.
    emit_lines = []
    for rel in iter_source_files(root, "src"):
        if rel.replace(os.sep, "/").startswith("src/trace/"):
            continue
        for line in read_lines(os.path.join(root, rel)):
            emit_lines.append(strip_comments_and_strings(line))
    export_cpp = os.path.join(root, "src/trace/export.cpp")
    export_lines = ([strip_comments_and_strings(l) for l in
                     read_lines(export_cpp)]
                    if os.path.exists(export_cpp) else [])

    for name, line_no in enums:
        if waivers_for(lines, line_no - 1, "trace-coverage"):
            continue
        ref = re.compile(r"TraceEventType::" + re.escape(name) + r"\b")
        if not any(ref.search(l) for l in emit_lines):
            findings.append(Finding(
                trace_hpp, line_no, "trace-coverage",
                f"TraceEventType::{name} has no emit site in src/ outside "
                "src/trace/ — dead event type"))
        case_re = re.compile(r"case\s+TraceEventType::" + re.escape(name) +
                             r"\b")
        if not any(case_re.search(l) for l in export_lines):
            findings.append(Finding(
                trace_hpp, line_no, "trace-coverage",
                f"TraceEventType::{name} has no pretty-printer case in "
                "src/trace/export.cpp (format_event)"))


def iter_source_files(root, subdir):
    for dirpath, _, names in os.walk(os.path.join(root, subdir)):
        for n in sorted(names):
            if n.endswith((".cpp", ".hpp", ".h")):
                yield os.path.relpath(os.path.join(dirpath, n), root)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        import scap_rules
        print("\n".join(scap_rules.rules_for("lint") +
                        [scap_rules.WAIVER_RULE]))
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(os.path.join(root, "src")):
        print(f"scap_lint: {root} does not look like the scap repo",
              file=sys.stderr)
        return 2

    findings = []
    # heap-hot-path and counter-conservation moved to tools/scap_analyzer.py
    # (AST rules hot-path-alloc / counter-mirror), and nondeterminism to
    # tools/scap_taint.py, so each violation is reported by exactly one tool.
    check_api_stats_mirror(root, findings)
    check_trace_coverage(root, findings)

    # A waiver must say why, or it is itself a finding.
    for rel in list(iter_source_files(root, "src")) + \
            list(iter_source_files(root, "tools")):
        for i, line in enumerate(read_lines(os.path.join(root, rel))):
            m = WAIVER_RE.search(line)
            if m and not m.group(2).strip():
                findings.append(Finding(rel, i + 1, "waiver",
                                        "waiver without a reason"))

    for f in findings:
        print(f)
    if findings:
        print(f"scap_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("scap_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
