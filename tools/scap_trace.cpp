// scap_trace — reader for the compact binary trace format ("SCTR") that
// scap_dump_trace / chaos_run --trace-out emit (DESIGN.md §10).
//
//   scap_trace summary  trace.sctr          header, per-type counts, hists
//   scap_trace events   trace.sctr [--limit N]
//   scap_trace streams  trace.sctr [--stream ID] [--limit N]
//   scap_trace chrome   trace.sctr --out trace.json
//
// `streams` groups the timeline by stream id and prints each stream's
// lifecycle (creation → chunks → termination) with relative timestamps —
// the per-stream view the paper's evaluation reasons about.
#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "trace/export.hpp"
#include "trace/trace.hpp"

namespace {

using scap::trace::BinaryTrace;
using scap::trace::Log2Histogram;
using scap::trace::Schema;
using scap::trace::TraceEvent;
using scap::trace::TraceEventType;

/// True for event types whose `stream` field names a stream.
bool stream_scoped(TraceEventType t) {
  switch (t) {
    case TraceEventType::kPacketVerdict:
    case TraceEventType::kStreamCreated:
    case TraceEventType::kChunkDelivered:
    case TraceEventType::kStreamTerminated:
    case TraceEventType::kFdirInstall:
    case TraceEventType::kFdirEvict:
    case TraceEventType::kNicSteer:
    case TraceEventType::kNicDrop:
    case TraceEventType::kEventDispatched:
      return true;
    case TraceEventType::kPplWatermark:
    case TraceEventType::kPplCutoffChange:
    case TraceEventType::kMaintenanceTick:
      return false;
  }
  return false;
}

bool load(const char* path, BinaryTrace* trace) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "scap_trace: cannot open %s\n", path);
    return false;
  }
  std::string error;
  if (!scap::trace::read_binary(in, trace, &error)) {
    std::fprintf(stderr, "scap_trace: %s: %s\n", path, error.c_str());
    return false;
  }
  return true;
}

void print_hist(const char* name, const Log2Histogram& hist) {
  std::printf("  %-18s total=%" PRIu64 "\n", name, hist.total());
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    if (hist.count(i) == 0) continue;
    const std::uint64_t lo = Log2Histogram::bucket_floor(i);
    if (i + 1 < Log2Histogram::kBuckets) {
      const std::uint64_t hi = Log2Histogram::bucket_floor(i + 1) - 1;
      std::printf("    [%10" PRIu64 ", %10" PRIu64 "] %" PRIu64 "\n", lo, hi,
                  hist.count(i));
    } else {
      std::printf("    [%10" PRIu64 ",        inf] %" PRIu64 "\n", lo,
                  hist.count(i));
    }
  }
}

int cmd_summary(const BinaryTrace& trace) {
  std::printf("cores=%u events=%zu dropped=%" PRIu64 "\n", trace.cores,
              trace.events.size(), trace.dropped);
  std::uint64_t by_type[scap::trace::kNumTraceEventTypes] = {};
  for (const TraceEvent& ev : trace.events) {
    ++by_type[static_cast<std::size_t>(ev.type)];
  }
  for (std::size_t i = 0; i < scap::trace::kNumTraceEventTypes; ++i) {
    if (by_type[i] == 0) continue;
    std::printf("  %-18s %" PRIu64 "\n",
                scap::trace::to_string(static_cast<TraceEventType>(i)),
                by_type[i]);
  }
  std::printf("histograms:\n");
  print_hist("stream_size_bytes", trace.metrics.stream_size_bytes);
  print_hist("chunk_latency_us", trace.metrics.chunk_latency_us);
  print_hist("flow_probe_len", trace.metrics.flow_probe_len);
  print_hist("queue_occupancy", trace.metrics.queue_occupancy);
  return 0;
}

int cmd_events(const BinaryTrace& trace, const Schema& schema,
               std::size_t limit) {
  std::size_t printed = 0;
  for (const TraceEvent& ev : trace.events) {
    if (printed++ >= limit) break;
    std::printf("%s\n", scap::trace::format_event(ev, schema).c_str());
  }
  if (trace.events.size() > printed) {
    std::printf("... %zu more (raise --limit)\n",
                trace.events.size() - printed);
  }
  return 0;
}

int cmd_streams(const BinaryTrace& trace, const Schema& schema,
                std::uint64_t only_stream, std::size_t limit) {
  // std::map: stream timelines print in id order, deterministically.
  std::map<std::uint64_t, std::vector<const TraceEvent*>> by_stream;
  for (const TraceEvent& ev : trace.events) {
    if (!stream_scoped(ev.type) || ev.stream == 0) continue;
    if (only_stream != 0 && ev.stream != only_stream) continue;
    by_stream[ev.stream].push_back(&ev);
  }
  if (by_stream.empty()) {
    std::printf("no stream-scoped events%s\n",
                only_stream != 0 ? " for that stream id" : "");
    return only_stream != 0 ? 1 : 0;
  }
  for (const auto& [id, events] : by_stream) {
    const std::int64_t t0 = events.front()->ts_ns;
    std::printf("stream %" PRIu64 " (%zu events, first at %" PRId64 " ns)\n",
                id, events.size(), t0);
    std::size_t printed = 0;
    for (const TraceEvent* ev : events) {
      if (printed++ >= limit) {
        std::printf("  ... %zu more\n", events.size() - limit);
        break;
      }
      std::printf("  +%-10" PRId64 " %s\n", ev->ts_ns - t0,
                  scap::trace::format_event(*ev, schema).c_str());
    }
  }
  return 0;
}

int cmd_chrome(const BinaryTrace& trace, const Schema& schema,
               const char* out_path) {
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "scap_trace: cannot open %s\n", out_path);
    return 1;
  }
  // Same shape as trace::write_chrome_json, fed from the loaded file.
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : trace.events) {
    if (!first) out << ',';
    first = false;
    out << "{\"name\":\"" << scap::trace::to_string(ev.type)
        << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
        << static_cast<int>(ev.core) << ",\"ts\":" << ev.ts_ns / 1000
        << ",\"args\":{\"detail\":\""
        << scap::trace::format_event(ev, schema) << "\"}}";
  }
  out << "]}\n";
  std::printf("wrote %zu events to %s\n", trace.events.size(), out_path);
  return out.good() ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: scap_trace <summary|events|streams|chrome> FILE\n"
               "                  [--stream ID] [--limit N] [--out FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const char* path = argv[2];
  std::uint64_t only_stream = 0;
  std::size_t limit = 50;
  const char* out_path = nullptr;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stream") == 0 && i + 1 < argc) {
      only_stream = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--limit") == 0 && i + 1 < argc) {
      limit = std::strtoull(argv[++i], nullptr, 0);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }

  BinaryTrace trace;
  if (!load(path, &trace)) return 1;
  const Schema& schema = scap::trace::kernel_schema();

  if (cmd == "summary") return cmd_summary(trace);
  if (cmd == "events") return cmd_events(trace, schema, limit);
  if (cmd == "streams") return cmd_streams(trace, schema, only_stream, limit);
  if (cmd == "chrome") {
    if (out_path == nullptr) return usage();
    return cmd_chrome(trace, schema, out_path);
  }
  return usage();
}
