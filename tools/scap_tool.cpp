// scap_tool — command-line front end for the library.
//
//   scap_tool gen <out.pcap> [--flows N] [--seed S] [--patterns]
//       Synthesize a campus-like workload and write it as a pcap file.
//
//   scap_tool info <trace.pcap>
//       Summarize a capture: packets, bytes, duration, protocol mix,
//       top flows.
//
//   scap_tool flows <trace.pcap> [--cutoff BYTES] [--filter EXPR]
//       Replay through Scap and print per-flow statistics (the §3.3.1
//       application, as a tool).
//
//   scap_tool streams <trace.pcap> [--filter EXPR] [--max N]
//       Replay through Scap and dump the first bytes of each reassembled
//       stream (printable characters; the classic "follow TCP stream").
//
//   scap_tool export <trace.pcap> --out <flows.ipfix>
//       Replay through Scap and export per-flow records as IPFIX (RFC 7011)
//       messages — what YAF-class flow meters produce.
//
//   scap_tool decode <flows.ipfix>
//       Print the flow records of an IPFIX file written by `export`.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "export/ipfix.hpp"
#include "flowgen/workload.hpp"
#include "match/corpus.hpp"
#include "packet/pcap.hpp"
#include "scap/capture.hpp"

#include <fstream>

namespace {

using namespace scap;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  scap_tool gen <out.pcap> [--flows N] [--seed S] "
               "[--patterns]\n"
               "  scap_tool info <trace.pcap>\n"
               "  scap_tool flows <trace.pcap> [--cutoff BYTES] "
               "[--filter EXPR]\n"
               "  scap_tool streams <trace.pcap> [--filter EXPR] [--max N]\n"
               "  scap_tool export <trace.pcap> --out <flows.ipfix>\n"
               "  scap_tool decode <flows.ipfix>\n");
  return 2;
}

/// Tiny flag parser: --name value or bare --name.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }
  std::string get(const std::string& name, const std::string& dflt) const {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i] == name) return tokens_[i + 1];
    }
    return dflt;
  }
  long get_long(const std::string& name, long dflt) const {
    const std::string v = get(name, "");
    return v.empty() ? dflt : std::stol(v);
  }
  bool has(const std::string& name) const {
    return std::find(tokens_.begin(), tokens_.end(), name) != tokens_.end();
  }

 private:
  std::vector<std::string> tokens_;
};

int cmd_gen(const std::string& out, const Args& args) {
  flowgen::WorkloadConfig cfg;
  cfg.flows = static_cast<std::size_t>(args.get_long("--flows", 500));
  cfg.seed = static_cast<std::uint64_t>(args.get_long("--seed", 42));
  if (args.has("--patterns")) {
    cfg.patterns = match::make_corpus({.pattern_count = 256});
    cfg.plant_probability = 0.2;
  }
  const flowgen::Trace trace = flowgen::build_trace(cfg);
  PcapWriter writer(out);
  for (const auto& pkt : trace.packets) writer.write(pkt);
  std::printf("wrote %llu packets (%.2f MB wire, %.2fs, %zu flows",
              static_cast<unsigned long long>(writer.packets_written()),
              static_cast<double>(trace.total_wire_bytes) / 1e6,
              trace.natural_duration_sec, trace.flows.size());
  if (!cfg.patterns.empty()) {
    std::printf(", %llu planted patterns",
                static_cast<unsigned long long>(trace.planted_matches));
  }
  std::printf(") to %s\n", out.c_str());
  return 0;
}

int cmd_info(const std::string& path) {
  PcapReader reader(path);
  std::uint64_t packets = 0, bytes = 0, tcp = 0, udp = 0, other = 0;
  std::uint64_t invalid = 0;
  Timestamp first, last;
  std::map<std::string, std::uint64_t> flow_bytes;
  while (auto pkt = reader.next()) {
    if (packets == 0) first = pkt->timestamp();
    last = pkt->timestamp();
    ++packets;
    bytes += pkt->wire_len();
    if (!pkt->valid()) {
      ++invalid;
      continue;
    }
    if (pkt->is_tcp()) {
      ++tcp;
    } else if (pkt->is_udp()) {
      ++udp;
    } else {
      ++other;
    }
    flow_bytes[to_string(pkt->tuple().canonical())] += pkt->wire_len();
  }
  const double dur = (last - first).sec();
  std::printf("%s:\n", path.c_str());
  std::printf("  packets : %llu (%llu tcp, %llu udp, %llu other, %llu "
              "undecodable)\n",
              static_cast<unsigned long long>(packets),
              static_cast<unsigned long long>(tcp),
              static_cast<unsigned long long>(udp),
              static_cast<unsigned long long>(other),
              static_cast<unsigned long long>(invalid));
  std::printf("  bytes   : %.2f MB over %.3f s (%.3f Gbit/s)\n",
              static_cast<double>(bytes) / 1e6, dur,
              dur > 0 ? static_cast<double>(bytes) * 8 / dur / 1e9 : 0.0);
  std::printf("  flows   : %zu\n", flow_bytes.size());
  std::vector<std::pair<std::uint64_t, std::string>> top;
  for (const auto& [k, v] : flow_bytes) top.emplace_back(v, k);
  std::sort(top.rbegin(), top.rend());
  std::printf("  top flows:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(5, top.size()); ++i) {
    std::printf("    %10.2f KB  %s\n",
                static_cast<double>(top[i].first) / 1e3,
                top[i].second.c_str());
  }
  return 0;
}

int cmd_flows(const std::string& path, const Args& args) {
  Capture cap("replay", 512 << 20, kernel::ReassemblyMode::kTcpFast, false);
  const long cutoff = args.get_long("--cutoff", 0);
  cap.set_cutoff(cutoff);
  const std::string filter = args.get("--filter", "");
  if (!filter.empty()) cap.set_filter(filter);

  std::printf("%-44s %12s %8s %10s %s\n", "flow", "bytes", "pkts",
              "duration", "status");
  cap.dispatch_termination([](StreamView& sd) {
    const char* status = "?";
    switch (sd.status()) {
      case kernel::StreamStatus::kActive: status = "active"; break;
      case kernel::StreamStatus::kClosedFin: status = "fin"; break;
      case kernel::StreamStatus::kClosedRst: status = "rst"; break;
      case kernel::StreamStatus::kClosedTimeout: status = "timeout"; break;
    }
    std::printf("%-44s %12llu %8llu %9.3fs %s\n",
                to_string(sd.tuple()).c_str(),
                static_cast<unsigned long long>(sd.stats().bytes),
                static_cast<unsigned long long>(sd.stats().pkts),
                (sd.stats().last_packet - sd.stats().first_packet).sec(),
                status);
  });
  cap.start();
  const std::uint64_t n = cap.replay_pcap(path);
  cap.stop();
  const CaptureStats st = cap.stats();
  std::printf("\n%llu packets, %llu streams, %llu dropped, %llu discarded\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(st.kernel.streams_created),
              static_cast<unsigned long long>(st.kernel.pkts_ppl_dropped +
                                              st.kernel.pkts_nomem_dropped),
              static_cast<unsigned long long>(st.kernel.pkts_cutoff));
  return 0;
}

int cmd_streams(const std::string& path, const Args& args) {
  Capture cap("replay", 512 << 20, kernel::ReassemblyMode::kTcpFast, false);
  const std::string filter = args.get("--filter", "");
  if (!filter.empty()) cap.set_filter(filter);
  const long max_streams = args.get_long("--max", 10);
  const long head = args.get_long("--head", 128);

  long shown = 0;
  cap.dispatch_data([&](StreamView& sd) {
    if (sd.stream_offset() != 0 || shown >= max_streams) return;
    ++shown;
    std::printf("=== %s (%zu bytes in first chunk)\n",
                to_string(sd.tuple()).c_str(), sd.data_len());
    const std::size_t n =
        std::min<std::size_t>(sd.data_len(), static_cast<std::size_t>(head));
    for (std::size_t i = 0; i < n; ++i) {
      const char c = static_cast<char>(sd.data()[i]);
      std::putchar((c >= 32 && c < 127) || c == '\n' ? c : '.');
    }
    std::printf("\n\n");
  });
  cap.start();
  cap.replay_pcap(path);
  cap.stop();
  return 0;
}

int cmd_export(const std::string& path, const Args& args) {
  const std::string out_path = args.get("--out", "flows.ipfix");
  Capture cap("replay", 512 << 20, kernel::ReassemblyMode::kTcpFast, false);
  cap.set_cutoff(0);  // statistics only

  std::vector<exporter::FlowRecord> records;
  Timestamp last_ts;
  cap.dispatch_termination([&](StreamView& sd) {
    exporter::FlowRecord rec;
    rec.tuple = sd.tuple();
    rec.bytes = sd.stats().bytes;
    rec.packets = sd.stats().pkts;
    rec.first_seen = sd.stats().first_packet;
    rec.last_seen = sd.stats().last_packet;
    records.push_back(rec);
    last_ts = sd.stats().last_packet;
  });
  cap.start();
  cap.replay_pcap(path);
  cap.stop();

  exporter::IpfixWriter writer;
  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  // Batch records per message (RFC-friendly sizes).
  std::size_t i = 0;
  std::size_t messages = 0;
  while (i < records.size()) {
    const std::size_t n = std::min<std::size_t>(100, records.size() - i);
    auto msg = writer.encode({records.data() + i, n}, last_ts);
    out.write(reinterpret_cast<const char*>(msg.data()),
              static_cast<std::streamsize>(msg.size()));
    i += n;
    ++messages;
  }
  if (records.empty()) {
    auto msg = writer.encode({}, last_ts);
    out.write(reinterpret_cast<const char*>(msg.data()),
              static_cast<std::streamsize>(msg.size()));
    messages = 1;
  }
  std::printf("exported %zu flow records in %zu IPFIX messages to %s\n",
              records.size(), messages, out_path.c_str());
  return 0;
}

int cmd_decode(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::vector<std::uint8_t> data((std::istreambuf_iterator<char>(in)),
                                 std::istreambuf_iterator<char>());
  exporter::IpfixReader reader;
  std::size_t off = 0;
  std::size_t total = 0;
  while (off + 16 <= data.size()) {
    const std::uint16_t len =
        static_cast<std::uint16_t>((data[off + 2] << 8) | data[off + 3]);
    if (len < 16 || off + len > data.size()) break;
    auto msg = reader.decode(
        std::span<const std::uint8_t>(data).subspan(off, len));
    if (!msg) {
      std::fprintf(stderr, "malformed message at offset %zu\n", off);
      return 1;
    }
    for (const auto& rec : msg->records) {
      std::printf("%-44s %12llu bytes %8llu pkts\n",
                  to_string(rec.tuple).c_str(),
                  static_cast<unsigned long long>(rec.bytes),
                  static_cast<unsigned long long>(rec.packets));
      ++total;
    }
    off += len;
  }
  std::printf("%zu records\n", total);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string target = argv[2];
  const Args args(argc, argv, 3);
  try {
    if (cmd == "gen") return cmd_gen(target, args);
    if (cmd == "info") return cmd_info(target);
    if (cmd == "flows") return cmd_flows(target, args);
    if (cmd == "streams") return cmd_streams(target, args);
    if (cmd == "export") return cmd_export(target, args);
    if (cmd == "decode") return cmd_decode(target);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scap_tool: %s\n", e.what());
    return 1;
  }
  return usage();
}
