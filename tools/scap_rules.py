"""scap_rules — the single rule registry for Scap's static-analysis tools.

Every rule any of the three checkers can emit is declared here exactly
once, tagged with the tool that owns it. The tools import this table for
their --list-rules output and for stale-waiver ownership (a waiver is only
"stale" to the tool that owns its rule); the self-tests import it to
validate fixture expectations (an expectation naming an unknown rule is a
harness bug, not a silently-never-matched line) and to require fixture
coverage per rule. Before this table, tools/scap_analyzer.py and
tests/analyzer/analyzer_selftest.py each hard-wired their own rule lists,
which could drift apart without any test noticing.

Tools
-----
lint       tools/scap_lint.py        line-oriented text rules
analyzer   tools/scap_analyzer.py    per-function libclang AST rules
callgraph  tools/scap_callgraph.py   whole-program hot-path purity rules
taint      tools/scap_taint.py       whole-program determinism taint rules

The pseudo-rules `waiver` (a waiver comment without a reason) and
`stale-waiver` (a waiver that no longer suppresses anything) are emitted
per-tool: each tool audits only waivers naming rules it owns, so every
waiver has exactly one auditor.
"""

from collections import namedtuple

Rule = namedtuple("Rule", ["name", "tool", "description"])

RULES = [
    # --- tools/scap_lint.py --------------------------------------------------
    Rule("api-stats-mirror", "lint",
         "every scap_stats_t field is assigned in scap_get_stats"),
    Rule("trace-coverage", "lint",
         "every TraceEventType has an emit site and a pretty-printer case"),

    # --- tools/scap_analyzer.py ----------------------------------------------
    Rule("hot-path-alloc", "analyzer",
         "no operator new / C heap / unordered_map in hot-path files"),
    Rule("switch-exhaustive", "analyzer",
         "switches over watched enums cover every enumerator, no default"),
    Rule("counter-mirror", "analyzer",
         "every KernelStats field is referenced, mirrored and dumped"),
    Rule("mutex-discipline", "analyzer",
         "no raw std::mutex/lock types outside src/base/mutex.hpp"),
    Rule("guard-coverage", "analyzer",
         "the pinned capability table's annotations are present"),
    Rule("spsc-discipline", "analyzer",
         "SPSC ring endpoints are called with serial-domain evidence"),

    # --- tools/scap_callgraph.py (whole-program purity, DESIGN.md §14) ------
    Rule("hot-alloc", "callgraph",
         "no allocation reachable from a SCAP_HOT root"),
    Rule("hot-mutex", "callgraph",
         "no base::Mutex/CondVar acquisition reachable from a SCAP_HOT root"),
    Rule("hot-syscall", "callgraph",
         "no blocking syscall/stdio reachable from a SCAP_HOT root"),
    Rule("hot-throw", "callgraph",
         "no throw expression reachable from a SCAP_HOT root"),
    Rule("hot-recursion", "callgraph",
         "no direct or mutual recursion inside the hot closure"),
    Rule("hot-cold-call", "callgraph",
         "no call from the hot closure into a SCAP_COLD function"),

    # --- tools/scap_taint.py (whole-program determinism, DESIGN.md §15) -----
    # The per-function `nondeterminism` analyzer rule retired into these:
    # taint tracking flags the *transitive* reach of a nondeterministic
    # value into observable output, not just its lexical occurrence.
    Rule("taint-wallclock", "taint",
         "no wall-clock read (outside base/clock) reaching an output"),
    Rule("taint-rng", "taint",
         "no unseeded randomness (outside base::Rng) reaching an output"),
    Rule("taint-ambient", "taint",
         "no getenv/thread-id/process-id value reaching an output"),
    Rule("taint-addr-order", "taint",
         "no pointer-address-derived value or unordered-container "
         "iteration order reaching an output"),
    Rule("taint-sched", "taint",
         "no scheduling-dependent channel read reaching a deterministic "
         "output"),
    Rule("stats-registry", "taint",
         "every KernelStats field / metrics histogram classified exactly "
         "once in stats_determinism.inc, SCHED rows witness-backed"),
]

# Pseudo-rules every tool may emit about waivers of its own rules.
WAIVER_RULE = "waiver"              # waiver without a reason
STALE_WAIVER_RULE = "stale-waiver"  # waiver that suppresses nothing


def rules_for(tool):
    """Rule names owned by `tool`, in registry order."""
    return [r.name for r in RULES if r.tool == tool]


def owner_of(rule):
    """The owning tool of `rule`, or None for unknown/pseudo rules."""
    for r in RULES:
        if r.name == rule:
            return r.tool
    return None


def all_rule_names():
    return [r.name for r in RULES] + [WAIVER_RULE, STALE_WAIVER_RULE]
