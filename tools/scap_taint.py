#!/usr/bin/env python3
"""scap_taint — whole-program determinism taint analysis (DESIGN.md §15).

Builds the same whole-program call graph as tools/scap_callgraph.py (clang
frontend when libclang is available, the text frontend otherwise — both see
identical raw source, so source/sink detection is frontend-independent by
construction) and tracks *taint* from nondeterministic sources to the
observable outputs the replay/repro suite compares.

Sources (function granularity, detected on comment-stripped source):

  taint-wallclock   wall-clock reads (time/gettimeofday/clock_gettime,
                    `*_clock::now`) outside src/base/clock — virtual time
                    is the only clock the datapath may consult
  taint-rng         unseeded randomness (the C rand family,
                    std::random_device) outside the seeded base::Rng
  taint-ambient     ambient process state: getenv, thread/process ids
  taint-addr-order  pointer->integer casts and std::unordered_* iteration —
                    values that depend on where the allocator put things
  taint-sched       scheduling-dependent cross-thread state: SPSC ring
                    occupancy (size_from_producer), worker heartbeats
                    (`processed`/`sleeping`), producer-observed
                    `occupancy_peak`, and watchdog state

Taint propagates strictly upward (callee -> caller, transitively): a
function that calls a tainted function is tainted. Sinks fire only inside
tainted functions:

  - writes to KernelStats fields, classified by the determinism registry
    (src/kernel/stats_determinism.inc): a tainted write to a
    kDeterministic field is a finding; to a kSchedulingDependent field it
    is the *witness* that justifies the classification; kShardGeometry
    fields are config-derived and silently permitted
  - SCAP_TRACE_EVENT / SCAP_TRACE_METRIC emission and metric samples
    (`metrics().<hist>.add`, classified like fields)
  - Verdict production (`return Verdict::…`, `….verdict = …`)
  - calls into the exporters (src/trace/export.cpp, src/export/ipfix.cpp)

A `// scap-lint: allow(<rule>) reason` on a *source* line (or the line
above) cuts propagation at that source; on a *sink* line it excuses that
one finding; on a *call* line it stops propagation through that call
edge — the discharge point for a callee whose taint drains entirely into
registry-classified scheduling-dependent fields. Waivers that suppress
nothing are reported stale.

The `stats-registry` rule machine-checks the registry itself: every
KernelStats field and every trace::MetricsRegistry histogram must be
classified exactly once, no row may go stale, and every
kSchedulingDependent field must be backed by at least one surviving
taint witness chain reaching a write of it. The registry is the single
source of truth both normalization consumers derive from
(tests/scap/shard_conservation_test.cpp normalized(), tools/chaos_run.cpp
reproducible-report filtering).

Fixture mode (--fixtures DIR): each .cpp is its own program. A fixture
containing `struct KernelStats` with a same-stem sibling `.inc` exercises
the registry checks; functions inside a namespace named `exporter` stand
in for the exporter files. Exit 77 only for an explicit `--frontend clang`
without libclang; the text frontend always runs.
"""

import argparse
import bisect
import json
import os
import re
import sys
from collections import deque

import scap_callgraph
import scap_lint
import scap_rules
from scap_callgraph import CgFinding, chain_str, strip_code

EXIT_SKIP = 77

RULES = ["taint-wallclock", "taint-rng", "taint-ambient",
         "taint-addr-order", "taint-sched", "stats-registry"]

RULE_WHAT = {
    "taint-wallclock": "wall-clock time",
    "taint-rng": "unseeded randomness",
    "taint-ambient": "ambient process state",
    "taint-addr-order": "address-order-dependent value",
    "taint-sched": "scheduling-dependent state",
}

EXPORTER_FILES = ("src/trace/export.cpp", "src/export/ipfix.cpp")

# ---------------------------------------------------------------------------
# Source detectors (applied to comment/string/preprocessor-stripped lines)
# ---------------------------------------------------------------------------

WALLCLOCK_RE = re.compile(
    r"(?<![\w.:>])[A-Za-z_]\w*_clock\s*::\s*now\s*\(|"
    r"(?<![\w.:>])(?:std\s*::\s*)?"
    r"(?:time|gettimeofday|clock_gettime|timespec_get|__rdtsc|_rdtsc)"
    r"\s*\(")
WALLCLOCK_EXEMPT = ("src/base/clock.hpp", "src/base/clock.cpp")

RNG_RE = re.compile(
    r"\bstd\s*::\s*random_device\b|"
    r"(?<![\w.:>])(?:std\s*::\s*)?"
    r"(?:rand|srand|random|srandom|drand48|lrand48|mrand48|srand48|rand_r)"
    r"\s*\(")
RNG_EXEMPT = ("src/base/rng.hpp", "src/base/rng.cpp")

AMBIENT_RE = re.compile(
    r"\bthis_thread\s*::\s*get_id\s*\(|"
    r"(?<![\w.:>])(?:std\s*::\s*)?"
    r"(?:getenv|secure_getenv|gettid|getpid|getppid|pthread_self|"
    r"sched_getcpu)\s*\(")

PTR_CAST_RE = re.compile(
    r"reinterpret_cast\s*<\s*(?:const\s+)?(?:std\s*::\s*)?"
    r"(?:u?intptr_t|size_t|u?int(?:32|64)_t|unsigned\s+long(?:\s+long)?)"
    r"\b[^>(]*>|"
    r"\bstd\s*::\s*hash\s*<\s*[^<>]*\*\s*>")

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*"
    r"<[^;]*>\s+([A-Za-z_]\w*)\s*[;={]")

# Scheduling-dependent channels, pinned by name (DESIGN.md §15): the SPSC
# ring occupancy probe, worker heartbeat atomics, the producer-observed
# occupancy peak, and watchdog bookkeeping. Producer-side shed tallies
# (shed_pkts et al.) are deliberately *not* channels: their decisions are
# keyed and interleaving-independent, a property chaos_smoke_mc gates
# dynamically via --check-reproducible. SpscRing head_/tail_ are excluded
# too — batch-boundary independence is the shard-conservation property.
SCHED_RE = re.compile(
    r"\bsize_from_producer\s*\(|"
    r"\b(?:occupancy_peak|processed|sleeping)\s*\.\s*"
    r"(?:load|store|fetch_add|fetch_sub|fetch_or|exchange|"
    r"compare_exchange_\w+)\s*\(|"
    r"\bwatchdog_\s*[\.\[]")


def _src_label(text):
    label = re.sub(r"\s+", "", text)
    if label.endswith("("):
        label += ")"
    return label


SOURCE_PATTERNS = [
    ("taint-wallclock", WALLCLOCK_RE, WALLCLOCK_EXEMPT),
    ("taint-rng", RNG_RE, RNG_EXEMPT),
    ("taint-ambient", AMBIENT_RE, ()),
    ("taint-addr-order", PTR_CAST_RE, ()),
    ("taint-sched", SCHED_RE, ()),
]

# ---------------------------------------------------------------------------
# Sink detectors
# ---------------------------------------------------------------------------

TRACE_RE = re.compile(r"\b(SCAP_TRACE_EVENT|SCAP_TRACE_METRIC)\s*\(")
METRIC_ADD_RE = re.compile(r"\bmetrics\s*\(\s*\)\s*\.\s*(\w+)\s*\.\s*add\s*\(")
VERDICT_RE = re.compile(r"\breturn\s+Verdict\s*::|(?:\.|->)\s*verdict\s*=(?![=])")

WRITE_OPS = r"(?:[+\-|&^]=|=(?![=])|\+\+|--)"


def stats_write_res(scalars, arrays):
    """Regexes matching receiver-qualified writes to KernelStats fields.
    A receiver is required so field *declarations* and bare locals never
    match; comparisons are excluded by the operator alternation."""
    res = []
    if scalars:
        alt = "|".join(sorted(scalars))
        res.append(re.compile(
            rf"(?:\w|\)|\])\s*(?:\.|->)\s*({alt})\s*{WRITE_OPS}"))
        res.append(re.compile(
            rf"(?:\+\+|--)\s*[\w.\[\]>-]*(?:\.|->)\s*({alt})\b"))
    if arrays:
        alt = "|".join(sorted(arrays))
        res.append(re.compile(
            rf"(?:\w|\)|\])\s*(?:\.|->)\s*({alt})\s*\[[^\]]*\]\s*{WRITE_OPS}"))
    return res


class Sink:
    def __init__(self, kind, label, file, line, name=None):
        self.kind = kind   # "stats" | "metric" | "trace" | "verdict" | "exporter"
        self.label = label
        self.file = file
        self.line = line
        self.name = name   # stats field / histogram name


class Source:
    def __init__(self, rule, label, file, line):
        self.rule = rule
        self.label = label
        self.file = file
        self.line = line


# ---------------------------------------------------------------------------
# Struct / registry parsing
# ---------------------------------------------------------------------------

# `std::` optional so hermetic fixtures can typedef uint64_t themselves.
FIELD_RE = re.compile(r"^\s*(?:std\s*::\s*)?u?int64_t\s+(\w+)\s*(\[)?")
HIST_RE = re.compile(r"^\s*Log2Histogram\s+(\w+)\s*;")
INC_ROW_RE = re.compile(
    r"^\s*(SCAP_STATS_FIELD|SCAP_STATS_ARRAY|SCAP_METRIC_HIST)\s*\(\s*"
    r"(\w+)\s*,\s*(\w+)\s*\)")
CLASSES = ("kDeterministic", "kShardGeometry", "kSchedulingDependent")


def parse_struct(stripped_lines, struct_name, member_re):
    """{member: line} for `struct <name> { ... };` in stripped lines, or
    None when the struct is absent."""
    decl = re.compile(rf"\bstruct\s+{struct_name}\b")
    start = None
    for i, ln in enumerate(stripped_lines):
        if decl.search(ln):
            start = i
            break
    if start is None:
        return None
    members = {}
    depth = 0
    opened = False
    for i in range(start, len(stripped_lines)):
        ln = stripped_lines[i]
        if opened and depth == 1:
            m = member_re.match(ln)
            if m:
                is_array = m.re.groups >= 2 and m.group(2) is not None
                members[m.group(1)] = (i + 1, is_array)
        for ch in ln:
            if ch == "{":
                depth += 1
                opened = True
            elif ch == "}":
                depth -= 1
                if opened and depth == 0:
                    return members
    return members


class Registry:
    """Parsed stats_determinism.inc: rows keyed by name per macro kind."""

    def __init__(self, rel):
        self.rel = rel
        self.fields = {}   # name -> (cls, is_array, line)
        self.hists = {}    # name -> (cls, line)
        self.dups = []     # (line, name)
        self.bad = []      # (line, name, cls)

    @staticmethod
    def load(path, rel):
        if not os.path.isfile(path):
            return None
        reg = Registry(rel)
        with open(path, encoding="utf-8") as f:
            for lineno, ln in enumerate(f, start=1):
                m = INC_ROW_RE.match(ln)
                if not m:
                    continue
                macro, name, cls = m.groups()
                if cls not in CLASSES:
                    reg.bad.append((lineno, name, cls))
                    continue
                table = reg.hists if macro == "SCAP_METRIC_HIST" else reg.fields
                if name in table:
                    reg.dups.append((lineno, name))
                    continue
                if macro == "SCAP_METRIC_HIST":
                    reg.hists[name] = (cls, lineno)
                else:
                    reg.fields[name] = (cls, macro == "SCAP_STATS_ARRAY",
                                        lineno)
        return reg

    def field_class(self, name):
        row = self.fields.get(name)
        return row[0] if row else "kDeterministic"

    def hist_class(self, name):
        row = self.hists.get(name)
        return row[0] if row else "kDeterministic"


# ---------------------------------------------------------------------------
# Analysis
# ---------------------------------------------------------------------------

def analyze_taint(graph, fixture_mode, root):
    findings = []
    used = set()   # (file, waiver line, rule) that suppressed something
    nodes = graph.nodes

    stripped = {}
    for rel, lines in graph.raw_lines.items():
        stripped[rel] = strip_code("\n".join(lines)).splitlines()

    def waiver_at(rel, line, rule):
        lines = graph.raw_lines.get(rel)
        if lines is None:
            return None
        for j in (line - 1, line - 2):
            if 0 <= j < len(lines):
                m = scap_lint.WAIVER_RE.search(lines[j])
                if m and m.group(1) == rule:
                    return j + 1
        return None

    # -- enclosing-function attribution (node start lines per file) ---------
    by_file = {}
    for n in nodes.values():
        by_file.setdefault(n.file, []).append((n.line, n.name))
    for lst in by_file.values():
        lst.sort()

    def enclosing(rel, line):
        lst = by_file.get(rel)
        if not lst:
            return None
        i = bisect.bisect_right(lst, (line, "￿")) - 1
        return lst[i][1] if i >= 0 else None

    # -- unordered-container iteration: names declared anywhere in scope ----
    unordered_names = set()
    for rel in stripped:
        text = "\n".join(stripped[rel])
        for m in UNORDERED_DECL_RE.finditer(text):
            unordered_names.add(m.group(1))
    unordered_use_re = None
    if unordered_names:
        alt = "|".join(re.escape(n) for n in sorted(unordered_names))
        unordered_use_re = re.compile(
            rf"for\s*\([^;)]*:\s*[&*]?\s*(?:this\s*->\s*)?({alt})\s*\)|"
            rf"\b({alt})\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")

    # -- KernelStats / MetricsRegistry / registry -----------------------------
    stats_file = None
    stats_fields = None
    for rel in sorted(stripped):
        parsed = parse_struct(stripped[rel], "KernelStats", FIELD_RE)
        if parsed is not None:
            stats_file, stats_fields = rel, parsed
            break
    hist_file = None
    hist_members = None
    for rel in sorted(stripped):
        parsed = parse_struct(stripped[rel], "MetricsRegistry", HIST_RE)
        if parsed is not None:
            hist_file, hist_members = rel, parsed
            break

    registry = None
    if fixture_mode:
        if stats_file is not None:
            stem = os.path.splitext(stats_file)[0]
            registry = Registry.load(os.path.join(root, stem + ".inc"),
                                     stem + ".inc")
    else:
        registry = Registry.load(
            os.path.join(root, "src/kernel/stats_determinism.inc"),
            "src/kernel/stats_determinism.inc")
        if registry is None:
            findings.append(CgFinding(
                "src/kernel/stats_determinism.inc", 1, "stats-registry", [],
                "determinism registry is missing"))
    reg = registry if registry is not None else Registry("<none>")

    # -- collect sources ----------------------------------------------------
    sources = {}   # node name -> [Source]

    def add_source(rule, label, rel, line):
        node = enclosing(rel, line)
        if node is None:
            return
        w = waiver_at(rel, line, rule)
        if w is not None:
            used.add((rel, w, rule))
            return
        sources.setdefault(node, []).append(Source(rule, label, rel, line))

    for rel in sorted(stripped):
        for i, ln in enumerate(stripped[rel], start=1):
            for rule, rx, exempt in SOURCE_PATTERNS:
                if rel in exempt:
                    continue
                for m in rx.finditer(ln):
                    add_source(rule, _src_label(m.group(0)), rel, i)
            if unordered_use_re is not None:
                for m in unordered_use_re.finditer(ln):
                    name = m.group(1) or m.group(2)
                    add_source("taint-addr-order",
                               f"unordered-iteration({name})", rel, i)

    # -- collect sinks ------------------------------------------------------
    sinks = {}     # node name -> [Sink]

    def add_sink(sink):
        node = enclosing(sink.file, sink.line)
        if node is not None:
            sinks.setdefault(node, []).append(sink)

    scalar_names = set()
    array_names = set()
    if stats_fields:
        for name, (_, is_array) in stats_fields.items():
            (array_names if is_array else scalar_names).add(name)
    write_res = stats_write_res(scalar_names, array_names)

    for rel in sorted(stripped):
        for i, ln in enumerate(stripped[rel], start=1):
            for m in TRACE_RE.finditer(ln):
                add_sink(Sink("trace", m.group(1), rel, i))
            for m in METRIC_ADD_RE.finditer(ln):
                add_sink(Sink("metric", f"metric({m.group(1)})", rel, i,
                              name=m.group(1)))
            for m in VERDICT_RE.finditer(ln):
                add_sink(Sink("verdict", "Verdict", rel, i))
            for rx in write_res:
                for m in rx.finditer(ln):
                    field = next(g for g in m.groups() if g)
                    add_sink(Sink("stats", f"KernelStats.{field}", rel, i,
                                  name=field))

    def is_exporter(node):
        if fixture_mode:
            return node.name.startswith("exporter::") or \
                "::exporter::" in node.name
        return node.file in EXPORTER_FILES

    for n in nodes.values():
        if is_exporter(n):
            sinks.setdefault(n.name, []).append(
                Sink("exporter", "exporter-output", n.file, n.line))
            continue
        for e in n.edges:
            if e.kind != "call":
                continue
            t = nodes.get(e.target)
            if t is not None and is_exporter(t):
                short = e.target.rsplit("::", 1)[-1]
                sinks.setdefault(n.name, []).append(
                    Sink("exporter", f"exporter-call({short})",
                         e.file, e.line))

    # -- propagate upward ---------------------------------------------------
    # rev[callee] = {(caller, call file, call line)}: the call site rides
    # along so a waiver on the call line can cut propagation through that
    # one edge.
    rev = {}
    for n in nodes.values():
        for e in n.edges:
            targets = sorted(graph.pool) if e.kind == "callback" \
                else [e.target]
            for t in targets:
                if t in nodes:
                    rev.setdefault(t, set()).add((n.name, e.file, e.line))

    candidates = {}    # (rule, file, line) -> (len, chain, message)
    witnesses = {}     # stats field name -> first witness chain

    def handle(src, chain_nodes, sink):
        chain = [f"src:{src.label}"] + chain_nodes + [f"sink:{sink.label}"]
        if sink.kind == "stats":
            cls = reg.field_class(sink.name)
            if cls == "kSchedulingDependent":
                witnesses.setdefault(sink.name, chain)
                return
            if cls == "kShardGeometry":
                return
        elif sink.kind == "metric":
            if reg.hist_class(sink.name) != "kDeterministic":
                return
        w = waiver_at(sink.file, sink.line, src.rule)
        if w is not None:
            used.add((sink.file, w, src.rule))
            return
        key = (src.rule, sink.file, sink.line)
        msg = (f"{RULE_WHAT[src.rule]} ({src.label}, {src.file}:{src.line}) "
               f"reaches {sink.label}")
        cand = (len(chain), chain, msg)
        if key not in candidates or cand < candidates[key]:
            candidates[key] = cand

    for start in sorted(sources):
        if start not in nodes:
            continue
        by_rule = {}
        for src in sources[start]:
            by_rule.setdefault(src.rule, []).append(src)
        for rule in sorted(by_rule):
            ops = sorted(by_rule[rule], key=lambda s: (s.file, s.line))
            parent = {start: None}
            order = [start]
            queue = deque([start])
            while queue:
                cur = queue.popleft()
                for caller, cfile, cline in sorted(rev.get(cur, ())):
                    if caller in parent:
                        continue
                    w = waiver_at(cfile, cline, rule)
                    if w is not None:
                        used.add((cfile, w, rule))
                        continue
                    parent[caller] = cur
                    order.append(caller)
                    queue.append(caller)
            for src in ops:
                for node in order:
                    for sink in sinks.get(node, ()):
                        path = []
                        nm = node
                        while nm is not None:
                            path.append(nm)
                            nm = parent[nm]
                        path.reverse()
                        handle(src, path, sink)

    for (rule, file, line), (_, chain, msg) in sorted(candidates.items()):
        findings.append(CgFinding(file, line, rule, chain,
                                  f"{msg}: {chain_str(chain)}"))

    # -- stats-registry: machine-check the registry itself ------------------
    if registry is not None:
        for lineno, name, cls in registry.bad:
            findings.append(CgFinding(
                registry.rel, lineno, "stats-registry", [],
                f"'{name}' has unknown determinism class '{cls}'"))
        for lineno, name in registry.dups:
            findings.append(CgFinding(
                registry.rel, lineno, "stats-registry", [],
                f"duplicate registry row for '{name}'"))
        if stats_fields is not None:
            for name, (lineno, is_array) in sorted(stats_fields.items()):
                row = registry.fields.get(name)
                if row is None:
                    findings.append(CgFinding(
                        stats_file, lineno, "stats-registry", [],
                        f"KernelStats field '{name}' is not classified in "
                        f"{registry.rel}"))
                elif row[1] != is_array:
                    want = "SCAP_STATS_ARRAY" if is_array \
                        else "SCAP_STATS_FIELD"
                    findings.append(CgFinding(
                        registry.rel, row[2], "stats-registry", [],
                        f"'{name}' is registered with the wrong macro "
                        f"(want {want})"))
            for name, (cls, _, lineno) in sorted(registry.fields.items()):
                if name not in stats_fields:
                    findings.append(CgFinding(
                        registry.rel, lineno, "stats-registry", [],
                        f"registry row '{name}' matches no KernelStats "
                        "field (stale)"))
                elif cls == "kSchedulingDependent" and name not in witnesses:
                    findings.append(CgFinding(
                        registry.rel, lineno, "stats-registry", [],
                        f"'{name}' is classified kSchedulingDependent but "
                        "no taint witness chain reaches a write of it"))
        if hist_members is not None:
            for name, (lineno, _) in sorted(hist_members.items()):
                if name not in registry.hists:
                    findings.append(CgFinding(
                        hist_file, lineno, "stats-registry", [],
                        f"MetricsRegistry histogram '{name}' is not "
                        f"classified in {registry.rel}"))
            for name, (_, lineno) in sorted(registry.hists.items()):
                if name not in hist_members:
                    findings.append(CgFinding(
                        registry.rel, lineno, "stats-registry", [],
                        f"registry row '{name}' matches no MetricsRegistry "
                        "histogram (stale)"))

    # -- stale-waiver audit (+ reasonless waivers in fixture mode) ----------
    for rel in sorted(graph.raw_lines):
        for i, ln in enumerate(graph.raw_lines[rel]):
            m = scap_lint.WAIVER_RE.search(ln)
            if not m:
                continue
            rule, reason = m.group(1), m.group(2).strip()
            if fixture_mode and not reason:
                findings.append(CgFinding(rel, i + 1, "waiver", [],
                                          "waiver without a reason"))
            if scap_rules.owner_of(rule) == "taint" and \
                    (rel, i + 1, rule) not in used:
                findings.append(CgFinding(
                    rel, i + 1, "stale-waiver", [],
                    f"waiver for '{rule}' suppresses nothing — the finding "
                    "it excused is gone; remove the waiver"))
    return findings


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--fixtures", metavar="DIR",
                        help="analyze self-test fixtures in DIR (each .cpp "
                             "is its own program/graph)")
    parser.add_argument("--frontend", choices=("auto", "clang", "text"),
                        default="auto")
    parser.add_argument("--json", action="store_true")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        print("\n".join(RULES + [scap_rules.STALE_WAIVER_RULE]))
        return 0

    cindex = None
    if args.frontend in ("auto", "clang"):
        import scap_analyzer
        cindex = scap_analyzer.load_cindex()
    if args.frontend == "clang" and cindex is None:
        print("scap_taint: libclang not available (install python3-clang + "
              "libclang or set SCAP_LIBCLANG; or use --frontend text); "
              "skipping", file=sys.stderr)
        return EXIT_SKIP
    frontend = "clang" if cindex is not None else "text"
    print(f"scap_taint: frontend={frontend}", file=sys.stderr)

    findings = []
    if args.fixtures:
        root = os.path.abspath(args.fixtures)
        if not os.path.isdir(root):
            print(f"scap_taint: no such fixture dir: {root}",
                  file=sys.stderr)
            return 2
        files = [n for n in sorted(os.listdir(root)) if n.endswith(".cpp")]
        for rel in files:
            if frontend == "clang":
                graph = scap_callgraph.build_clang_graph(
                    cindex, root, [rel], fixture_mode=True)
            else:
                graph = scap_callgraph.build_text_graph(root, [rel])
            if graph is None:
                return 2
            findings.extend(analyze_taint(graph, True, root))
    else:
        root = os.path.abspath(args.root)
        if not os.path.isdir(os.path.join(root, "src")):
            print(f"scap_taint: {root} does not look like the scap repo",
                  file=sys.stderr)
            return 2
        files = list(scap_lint.iter_source_files(root, "src"))
        if frontend == "clang":
            graph = scap_callgraph.build_clang_graph(
                cindex, root, files, fixture_mode=False)
        else:
            graph = scap_callgraph.build_text_graph(root, files)
        if graph is None:
            return 2
        findings.extend(analyze_taint(graph, False, root))

    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.chain))
    if args.json:
        print(json.dumps(
            [{"file": f.file, "line": f.line, "rule": f.rule,
              "chain": f.chain, "message": f.message} for f in findings],
            indent=2))
    else:
        for f in findings:
            print(f)
    if findings:
        print(f"scap_taint: {len(findings)} finding(s) "
              f"[frontend={frontend}]", file=sys.stderr)
        return 1
    if not args.json:
        print(f"scap_taint: clean [frontend={frontend}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
