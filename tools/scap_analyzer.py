#!/usr/bin/env python3
"""scap_analyzer — libclang AST analysis for Scap (DESIGN.md §11).

Supersedes the regex heuristics of scap_lint.py where regex is blind: these
rules see through typedefs, `auto`, macros and comments because they walk
the clang AST of every translation unit under src/.

Rules
-----
hot-path-alloc
    No operator new, C heap calls, or std::unordered_map-typed declarations
    in kernel hot-path files (scap_lint.HOT_PATH_FILES) — including through
    typedefs, type aliases and `auto`, which the old regex rule could not
    see. Fast-path memory goes through RecordPool, ChunkAllocator or the
    open-addressing FlowTable.

switch-exhaustive
    Every `switch` over Verdict, TraceEventType or DecodeError must cover
    every enumerator and carry no `default:` — a default silently swallows
    enumerators added later, defeating -Wswitch. (Sentinels like
    DecodeError::kCount are enumerators too and must appear.)

counter-mirror
    Every field of kernel::KernelStats (AST field decls, not regex) must be
    (a) referenced by kernel code, (b) mirrored in src/scap/capi.cpp
    (member references in scap_get_stats), and (c) dumped by
    tools/chaos_run.cpp. A counter added but not mirrored silently
    vanishes from every report that matters.

mutex-discipline
    No raw std::mutex / std::lock_guard / std::unique_lock /
    std::scoped_lock / std::condition_variable declarations in src/ outside
    the annotated wrappers in src/base/mutex.hpp. A raw mutex is invisible
    to the clang thread-safety analysis: nothing can be SCAP_GUARDED_BY it.

guard-coverage
    The pinned capability table below must hold: the named fields of
    Capture, ScapKernel and KernelShards carry their SCAP_GUARDED_BY /
    SCAP_PT_GUARDED_BY annotations. Deleting a single annotation (or
    renaming a guarded field without updating the table) is a finding.

spsc-discipline
    Calls to the single-threaded ends of the lock-free queues —
    SpscRing::try_push (producer), SpscRing::try_pop / pop_batch
    (consumer), MpscQueue::try_pop (consumer) — are only legal from code
    that provably holds the corresponding SerialDomain: the enclosing
    function must either declare SCAP_REQUIRES / SCAP_ASSERT_CAPABILITY
    on a serial domain or enter one with a base::SerialGuard in its body.
    MpscQueue::try_push is exempt (multi-producer by design). Structural,
    not flow-sensitive: it pins the discipline the thread-safety analysis
    enforces precisely, so a raw call from unannotated code is caught
    even in builds without -Wthread-safety.

Waivers share scap_lint.py syntax: `// scap-lint: allow(<rule>) <reason>`
on the offending line or the line above. In --fixtures mode, waivers
without a reason are findings (rule `waiver`); in repo mode scap_lint.py
already reports those, so this tool stays silent to keep every violation
reported exactly once. A waiver naming an analyzer-owned rule (see
tools/scap_rules.py) that no longer suppresses any finding is reported as
`stale-waiver` in both modes: dead waivers would silently bless the next
regression at that line, so they must be deleted when the code they
excused goes away.

Usage: scap_analyzer.py [--root DIR | --fixtures DIR] [--json] [--list-rules]
Exit status: 0 clean, 1 findings, 2 error, 77 libclang unavailable (skip).
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import scap_lint  # shared helpers + waiver syntax
import scap_rules  # the shared rule registry (ownership + --list-rules)

EXIT_SKIP = 77

RULES = scap_rules.rules_for("analyzer")

# Enums whose switches must stay exhaustive (qualified names).
WATCHED_ENUMS = (
    "scap::kernel::Verdict",
    "scap::trace::TraceEventType",
    "scap::DecodeError",
)

# The pinned capability table (DESIGN.md §11): class -> field -> annotation
# macro that must appear in the field's declaration.
REQUIRED_GUARDS = {
    "scap::Capture": {
        "nic_": "SCAP_PT_GUARDED_BY",
        "kernel_": "SCAP_PT_GUARDED_BY",
        "tracer_": "SCAP_PT_GUARDED_BY",
        # events_dispatched_ became a plain atomic in the sharded rework
        # (workers bump it outside any lock); the producer-side tick state
        # is pinned to the producer mutex instead.
        "last_tick_": "SCAP_GUARDED_BY",
        "rx_queues_": "SCAP_GUARDED_BY",
        # Ring admission / watchdog knobs: written by set_parameter before
        # start(), read when start() translates them to shard options.
        "ring_policy_": "SCAP_GUARDED_BY",
    },
    "scap::kernel::ScapKernel": {
        "nic_": "SCAP_PT_GUARDED_BY",
        "tracer_": "SCAP_PT_GUARDED_BY",
    },
    "scap::kernel::KernelShards": {
        "pushed_": "SCAP_GUARDED_BY",
        # Watchdog heartbeats + admission hysteresis are producer-private
        # state, pinned to the producer serial domain like the push counts.
        "watchdog_": "SCAP_GUARDED_BY",
    },
    "scap::kernel::KernelShards::Shard": {
        "snapshot": "SCAP_GUARDED_BY",
    },
}

# spsc-discipline: method -> which end of the queue it is. MpscQueue's
# try_push is deliberately absent (any thread may produce into an MPSC
# queue); everything listed requires serial-domain evidence.
SPSC_METHODS = {
    ("SpscRing", "try_push"),
    ("SpscRing", "try_pop"),
    ("SpscRing", "pop_batch"),
    ("MpscQueue", "try_pop"),
}
SPSC_EVIDENCE_RE = re.compile(
    r"\bSCAP_REQUIRES\b|\bSCAP_ASSERT_CAPABILITY\b"
    r"|\brequires_capability\b|\bassert_capability\b")

# Type spellings (canonical, so typedefs/auto are seen through).
MUTEX_TYPE_RE = re.compile(
    r"\bstd::(recursive_|timed_|shared_)?mutex\b"
    r"|\bstd::condition_variable(_any)?\b"
    r"|\bstd::(lock_guard|unique_lock|scoped_lock|shared_lock)<")
UNORDERED_MAP_RE = re.compile(r"\bstd::unordered_map<")


def load_cindex():
    """Import clang.cindex and make sure libclang actually loads.

    Returns the module or None. Honors SCAP_LIBCLANG (path to libclang.so),
    then falls back to common versioned sonames.
    """
    try:
        from clang import cindex
    except ImportError:
        return None
    override = os.environ.get("SCAP_LIBCLANG")
    if override:
        cindex.Config.set_library_file(override)
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        if override:
            return None
    candidates = []
    for ver in range(21, 13, -1):
        candidates += [
            f"/usr/lib/llvm-{ver}/lib/libclang.so.1",
            f"/usr/lib/llvm-{ver}/lib/libclang-{ver}.so.1",
            f"/usr/lib/x86_64-linux-gnu/libclang-{ver}.so.1",
        ]
    candidates.append("libclang.so")
    for path in candidates:
        if path.startswith("/") and not os.path.exists(path):
            continue
        try:
            cindex.Config.loaded = False
            cindex.Config.set_library_file(path)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    return None


class Analyzer:
    def __init__(self, cindex, root, fixture_mode):
        self.cindex = cindex
        self.ck = cindex.CursorKind
        self.root = root
        self.fixture_mode = fixture_mode
        self.findings = []
        self._seen = set()
        self._lines = {}
        self._text = {}
        self.used_waivers = set()    # (rel, waiver line, rule) that fired
        # counter-mirror state, filled during the walk.
        self.stats_fields = []       # (name, rel, line)
        self.kernel_refs = set()     # member spellings referenced in kernel
        self.capi_refs = set()       # member spellings referenced in capi.cpp
        self.mirror_refs = set()     # fixture mode: refs anywhere in file

    # --- plumbing ----------------------------------------------------------

    def rel(self, path):
        return os.path.relpath(path, self.root).replace(os.sep, "/")

    def lines(self, abspath):
        if abspath not in self._lines:
            self._lines[abspath] = scap_lint.read_lines(abspath)
        return self._lines[abspath]

    def text(self, abspath):
        if abspath not in self._text:
            with open(abspath, encoding="utf-8") as f:
                self._text[abspath] = f.read()
        return self._text[abspath]

    def add(self, abspath, line, rule, message):
        rel = self.rel(abspath)
        key = (rel, line, rule, message)
        if key in self._seen:
            return
        if line > 0:
            wline = scap_lint.waiver_line_for(self.lines(abspath),
                                              line - 1, rule)
            if wline is not None:
                self.used_waivers.add((rel, wline, rule))
                return
        self._seen.add(key)
        self.findings.append(scap_lint.Finding(rel, line, rule, message))

    def in_scope(self, cursor):
        """abspath of the cursor's file if it is ours to analyze."""
        loc = cursor.location
        if loc.file is None:
            return None
        path = os.path.abspath(loc.file.name)
        if self.fixture_mode:
            return path if path.startswith(self.root + os.sep) else None
        rel = self.rel(path)
        if rel.startswith("src/"):
            return path
        return None

    def qualified_name(self, cursor):
        parts = []
        c = cursor
        while c is not None and c.kind != self.ck.TRANSLATION_UNIT:
            if c.kind not in (self.ck.LINKAGE_SPEC, self.ck.UNEXPOSED_DECL):
                if c.spelling:
                    parts.append(c.spelling)
            c = c.semantic_parent
        return "::".join(reversed(parts))

    def decl_snippet(self, cursor, abspath):
        """Raw source of a declaration, from its extent start through the
        terminating ';' — annotation macros included, whichever side of the
        extent clang put them on."""
        text = self.text(abspath)
        start = cursor.extent.start.offset
        end = cursor.extent.end.offset
        semi = text.find(";", end)
        return text[start:semi + 1 if semi >= 0 else end]

    # --- rules -------------------------------------------------------------

    def hot_path_file(self, abspath):
        if self.fixture_mode:
            return True
        return self.rel(abspath) in scap_lint.HOT_PATH_FILES

    def check_alloc(self, cursor, abspath):
        if not self.hot_path_file(abspath):
            return
        line = cursor.location.line
        if cursor.kind == self.ck.CXX_NEW_EXPR:
            self.add(abspath, line, "hot-path-alloc",
                     "operator new on the hot path — use RecordPool/"
                     "ChunkAllocator")
        elif cursor.kind == self.ck.CALL_EXPR:
            ref = cursor.referenced
            if (ref is not None and ref.spelling in ("malloc", "calloc",
                                                     "realloc")
                    and self.is_global(ref)):
                self.add(abspath, line, "hot-path-alloc",
                         f"C heap allocation ({ref.spelling}) on the hot "
                         "path")
        elif cursor.kind in (self.ck.VAR_DECL, self.ck.FIELD_DECL):
            canon = cursor.type.get_canonical().spelling
            if UNORDERED_MAP_RE.search(canon):
                self.add(abspath, line, "hot-path-alloc",
                         "std::unordered_map on the hot path (declared type "
                         f"resolves to `{canon}`) — use the open-addressing "
                         "FlowTable")

    def is_global(self, decl):
        p = decl.semantic_parent
        while p is not None and p.kind in (self.ck.LINKAGE_SPEC,
                                           self.ck.UNEXPOSED_DECL):
            p = p.semantic_parent
        return p is None or p.kind == self.ck.TRANSLATION_UNIT

    def check_mutex(self, cursor, abspath):
        if not self.fixture_mode and \
                self.rel(abspath) == "src/base/mutex.hpp":
            return
        if cursor.kind not in (self.ck.VAR_DECL, self.ck.FIELD_DECL):
            return
        canon = cursor.type.get_canonical().spelling
        m = MUTEX_TYPE_RE.search(canon)
        if m:
            self.add(abspath, cursor.location.line, "mutex-discipline",
                     f"raw `{m.group(0).rstrip('<')}` declaration — use the "
                     "annotated base::Mutex/base::MutexLock/base::CondVar "
                     "(src/base/mutex.hpp) so fields can be "
                     "SCAP_GUARDED_BY it")

    def check_switch(self, cursor, abspath):
        children = list(cursor.get_children())
        if not children:
            return
        enum_decl = self._find_enum_decl(children[0])
        if enum_decl is None:
            return
        qual = self.qualified_name(enum_decl)
        if qual not in WATCHED_ENUMS:
            return
        enumerators = {c.spelling for c in enum_decl.get_children()
                       if c.kind == self.ck.ENUM_CONSTANT_DECL}
        covered = set()
        default_lines = []
        self._collect_cases(children[-1], covered, default_lines)
        for line in default_lines:
            self.add(abspath, line, "switch-exhaustive",
                     f"`default:` in a switch over {qual} swallows future "
                     "enumerators — enumerate every case instead")
        if not default_lines:
            missing = sorted(enumerators - covered)
            if missing:
                self.add(abspath, cursor.location.line, "switch-exhaustive",
                         f"switch over {qual} misses enumerator(s): "
                         + ", ".join(missing))

    def _find_enum_decl(self, cursor):
        t = cursor.type
        if t is not None and t.kind != self.cindex.TypeKind.INVALID:
            decl = t.get_canonical().get_declaration()
            if decl is not None and decl.kind == self.ck.ENUM_DECL:
                return decl
        for ch in cursor.get_children():
            found = self._find_enum_decl(ch)
            if found is not None:
                return found
        return None

    def _collect_cases(self, stmt, covered, default_lines):
        for ch in stmt.get_children():
            if ch.kind == self.ck.SWITCH_STMT:
                continue  # nested switch owns its own cases
            if ch.kind == self.ck.CASE_STMT:
                kids = list(ch.get_children())
                if kids:
                    self._case_label_enums(kids[0], covered)
            elif ch.kind == self.ck.DEFAULT_STMT:
                default_lines.append(ch.location.line)
            self._collect_cases(ch, covered, default_lines)

    def _case_label_enums(self, label_expr, covered):
        ref = label_expr.referenced
        if ref is not None and ref.kind == self.ck.ENUM_CONSTANT_DECL:
            covered.add(ref.spelling)
            return
        for ch in label_expr.get_children():
            self._case_label_enums(ch, covered)

    def note_counter_decls(self, cursor, abspath):
        if cursor.kind != self.ck.STRUCT_DECL or \
                cursor.spelling != "KernelStats":
            return
        if not cursor.is_definition():
            return
        for ch in cursor.get_children():
            if ch.kind == self.ck.FIELD_DECL:
                self.stats_fields.append(
                    (ch.spelling, os.path.abspath(ch.location.file.name),
                     ch.location.line))

    def note_member_refs(self, cursor, abspath):
        if cursor.kind != self.ck.MEMBER_REF_EXPR:
            return
        rel = self.rel(abspath)
        if self.fixture_mode:
            self.mirror_refs.add(cursor.spelling)
        elif rel.startswith("src/kernel/"):
            self.kernel_refs.add(cursor.spelling)
        elif rel == "src/scap/capi.cpp":
            self.capi_refs.add(cursor.spelling)

    def check_guards(self, cursor, abspath):
        if cursor.kind not in (self.ck.CLASS_DECL, self.ck.STRUCT_DECL):
            return
        if not cursor.is_definition():
            return
        table = REQUIRED_GUARDS.get(self.qualified_name(cursor))
        if table is None:
            return
        fields = {c.spelling: c for c in cursor.get_children()
                  if c.kind == self.ck.FIELD_DECL}
        for name, macro in table.items():
            fld = fields.get(name)
            if fld is None:
                self.add(abspath, cursor.location.line, "guard-coverage",
                         f"expected guarded field `{name}` not found in "
                         f"{cursor.spelling} — if it was renamed, update "
                         "the pinned table in tools/scap_analyzer.py")
                continue
            fpath = os.path.abspath(fld.location.file.name)
            if macro not in self.decl_snippet(fld, fpath):
                self.add(fpath, fld.location.line, "guard-coverage",
                         f"{cursor.spelling}::{name} must be declared "
                         f"{macro}(...) — see the capability table in "
                         "DESIGN.md §11")

    def check_spsc(self, cursor, abspath, enclosing_fn):
        if cursor.kind != self.ck.CALL_EXPR:
            return
        ref = cursor.referenced
        if ref is None:
            return
        cls = ref.semantic_parent
        if cls is None or (cls.spelling, ref.spelling) not in SPSC_METHODS:
            return
        if not self.fixture_mode and \
                self.rel(abspath) == "src/base/ring.hpp":
            return  # the queue implementation is its own serial context
        end = "producer" if ref.spelling == "try_push" else "consumer"
        line = cursor.location.line
        if enclosing_fn is None:
            self.add(abspath, line, "spsc-discipline",
                     f"{cls.spelling}::{ref.spelling}() outside any "
                     "function — the SPSC " + end + " end needs a "
                     "SerialDomain")
            return
        if not self._fn_has_serial_evidence(enclosing_fn):
            self.add(abspath, line, "spsc-discipline",
                     f"{cls.spelling}::{ref.spelling}() from a function "
                     "with no serial-domain evidence — annotate it "
                     "SCAP_REQUIRES(<" + end + " domain>) or enter the "
                     "domain with a base::SerialGuard in its body")

    def _fn_has_serial_evidence(self, fn):
        """True when `fn` declares a serial-domain capability (SCAP_REQUIRES
        / SCAP_ASSERT_CAPABILITY, or the raw clang attributes) or takes a
        base::SerialGuard somewhere in its body."""
        loc = fn.location
        if loc.file is None:
            return False
        text = self.text(os.path.abspath(loc.file.name))
        start = fn.extent.start.offset
        end = fn.extent.end.offset
        body_start = end
        for ch in fn.get_children():
            if ch.kind == self.ck.COMPOUND_STMT:
                body_start = ch.extent.start.offset
        if SPSC_EVIDENCE_RE.search(text[start:body_start]):
            return True
        return "SerialGuard" in text[body_start:end]

    # --- driver ------------------------------------------------------------

    def _is_function(self, cursor):
        return cursor.kind in (self.ck.FUNCTION_DECL, self.ck.CXX_METHOD,
                               self.ck.CONSTRUCTOR, self.ck.DESTRUCTOR,
                               self.ck.CONVERSION_FUNCTION,
                               self.ck.FUNCTION_TEMPLATE,
                               self.ck.LAMBDA_EXPR)

    def walk(self, cursor, enclosing_fn=None):
        abspath = self.in_scope(cursor)
        if abspath is not None:
            self.check_alloc(cursor, abspath)
            self.check_mutex(cursor, abspath)
            if cursor.kind == self.ck.SWITCH_STMT:
                self.check_switch(cursor, abspath)
            self.note_counter_decls(cursor, abspath)
            self.note_member_refs(cursor, abspath)
            self.check_guards(cursor, abspath)
            self.check_spsc(cursor, abspath, enclosing_fn)
        if self._is_function(cursor):
            enclosing_fn = cursor
        for ch in cursor.get_children():
            self.walk(ch, enclosing_fn)

    def finish_counter_mirror(self):
        """Cross-file half of counter-mirror, after every TU was walked."""
        seen = set()
        for name, abspath, line in self.stats_fields:
            if (name, line) in seen:
                continue
            seen.add((name, line))
            if self.fixture_mode:
                if name not in self.mirror_refs:
                    self.add(abspath, line, "counter-mirror",
                             f"KernelStats::{name} is never mirrored "
                             "(no member reference found)")
                continue
            if name not in self.kernel_refs:
                self.add(abspath, line, "counter-mirror",
                         f"KernelStats::{name} is never referenced by "
                         "kernel code — dead counter")
            if name not in self.capi_refs:
                self.add(abspath, line, "counter-mirror",
                         f"KernelStats::{name} is not mirrored into "
                         "scap_stats_t in src/scap/capi.cpp")
            if not scap_lint.word_in_file(self.root, "tools/chaos_run.cpp",
                                          name):
                self.add(abspath, line, "counter-mirror",
                         f"KernelStats::{name} is not dumped by "
                         "tools/chaos_run.cpp — invisible to the "
                         "reproducibility gate")

    def check_fixture_waivers(self, files):
        """Fixture mode only: a waiver must say why (rule `waiver`).
        Repo mode leaves this to scap_lint.py so each violation is
        reported exactly once."""
        for abspath in files:
            for i, line in enumerate(self.lines(abspath)):
                m = scap_lint.WAIVER_RE.search(line)
                if m and not m.group(2).strip():
                    rel = self.rel(abspath)
                    self.findings.append(scap_lint.Finding(
                        rel, i + 1, "waiver", "waiver without a reason"))

    def check_stale_waivers(self, files):
        """A waiver naming an analyzer-owned rule must still suppress a
        finding. add() records the (file, line, rule) of every waiver
        that fires; whatever is left over after the walk excuses nothing
        and must be deleted before it blesses an unrelated regression."""
        for abspath in files:
            rel = self.rel(abspath)
            for i, line in enumerate(self.lines(abspath)):
                m = scap_lint.WAIVER_RE.search(line)
                if not m:
                    continue
                rule = m.group(1)
                if scap_rules.owner_of(rule) != "analyzer":
                    continue  # audited by the tool that owns the rule
                if (rel, i + 1, rule) not in self.used_waivers:
                    self.findings.append(scap_lint.Finding(
                        rel, i + 1, "stale-waiver",
                        f"waiver for '{rule}' suppresses nothing — the "
                        "finding it excused is gone; remove the waiver"))


def parse_tu(cindex, index, path, args):
    try:
        tu = index.parse(path, args=args)
    except cindex.TranslationUnitLoadError as e:
        print(f"scap_analyzer: failed to parse {path}: {e}", file=sys.stderr)
        return None
    fatal = [d for d in tu.diagnostics if d.severity >= d.Fatal]
    if fatal:
        for d in fatal:
            print(f"scap_analyzer: {path}: {d.spelling}", file=sys.stderr)
        return None
    return tu


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--fixtures", metavar="DIR",
                        help="analyze self-test fixtures in DIR instead of "
                             "the repository")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable findings on stdout")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args()

    if args.list_rules:
        print("\n".join(RULES))
        return 0

    cindex = load_cindex()
    if cindex is None:
        print("scap_analyzer: libclang not available "
              "(pip-less environments: install python3-clang + libclang, or "
              "set SCAP_LIBCLANG); skipping", file=sys.stderr)
        return EXIT_SKIP

    index = cindex.Index.create()
    if args.fixtures:
        root = os.path.abspath(args.fixtures)
        if not os.path.isdir(root):
            print(f"scap_analyzer: no such fixture dir: {root}",
                  file=sys.stderr)
            return 2
        files = [os.path.join(root, n) for n in sorted(os.listdir(root))
                 if n.endswith(".cpp")]
        analyzer = Analyzer(cindex, root, fixture_mode=True)
        # Hermetic fixtures: no includes, no stdlib.
        parse_args = ["-x", "c++", "-std=c++17", "-nostdinc++"]
        for path in files:
            tu = parse_tu(cindex, index, path, parse_args)
            if tu is None:
                return 2
            analyzer.walk(tu.cursor)
        analyzer.finish_counter_mirror()
        analyzer.check_fixture_waivers(files)
        analyzer.check_stale_waivers(files)
    else:
        root = os.path.abspath(args.root)
        if not os.path.isdir(os.path.join(root, "src")):
            print(f"scap_analyzer: {root} does not look like the scap repo",
                  file=sys.stderr)
            return 2
        analyzer = Analyzer(cindex, root, fixture_mode=False)
        parse_args = ["-x", "c++", "-std=c++20", "-I",
                      os.path.join(root, "src"), "-DSCAP_ENABLE_TRACE"]
        tus = [rel for rel in scap_lint.iter_source_files(root, "src")
               if rel.endswith(".cpp")]
        for rel in tus:
            tu = parse_tu(cindex, index, os.path.join(root, rel), parse_args)
            if tu is None:
                return 2
            analyzer.walk(tu.cursor)
        analyzer.finish_counter_mirror()
        analyzer.check_stale_waivers(
            [os.path.join(root, rel)
             for rel in scap_lint.iter_source_files(root, "src")])

    findings = sorted(analyzer.findings,
                      key=lambda f: (f.path, f.line, f.rule))
    if args.json:
        print(json.dumps([{"file": f.path, "line": f.line, "rule": f.rule,
                           "message": f.message} for f in findings],
                         indent=2))
    else:
        for f in findings:
            print(f)
    if findings:
        print(f"scap_analyzer: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    if not args.json:
        print("scap_analyzer: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
