// NIDS-style pattern matching over reassembled streams (paper §3.3.2).
//
// Loads a set of attack signatures, captures a synthetic web-heavy
// workload with planted signatures, and reports every match with its
// stream and stream offset. Uses the C++ API (scap::Capture) with the
// chunk `overlap` option so patterns spanning chunk boundaries are found.
//
//   ./examples/pattern_match
#include <cstdio>

#include "flowgen/workload.hpp"
#include "match/aho_corasick.hpp"
#include "match/corpus.hpp"
#include "scap/capture.hpp"

int main() {
  using namespace scap;

  // Signatures: a generated corpus standing in for Snort VRT content
  // strings (see src/match/corpus.hpp).
  const std::vector<std::string> patterns =
      match::make_corpus({.pattern_count = 500});
  match::AhoCorasick automaton(patterns);

  // Workload with plantings so there is something to find.
  flowgen::WorkloadConfig cfg;
  cfg.flows = 150;
  cfg.seed = 99;
  cfg.patterns = patterns;
  cfg.plant_probability = 0.3;
  const flowgen::Trace trace = flowgen::build_trace(cfg);

  Capture cap("sim0", 256 << 20, kernel::ReassemblyMode::kTcpFast, false);
  cap.set_parameter(Parameter::kChunkSize, 16 * 1024);
  // Overlap of (max pattern length - 1) bytes guarantees cross-chunk hits.
  std::size_t max_len = 0;
  for (const auto& p : patterns) max_len = std::max(max_len, p.size());
  cap.set_parameter(Parameter::kOverlapSize,
                    static_cast<std::int64_t>(max_len - 1));

  std::uint64_t total_matches = 0;
  cap.dispatch_data([&](StreamView& sd) {
    automaton.scan(sd.data(), [&](std::size_t pattern, std::size_t end) {
      // Skip duplicate hits fully inside the repeated overlap prefix.
      if (end <= sd.overlap_len()) return;
      ++total_matches;
      if (total_matches <= 10) {
        std::printf("match: pattern #%-4zu in %s at stream offset %llu\n",
                    pattern, to_string(sd.tuple()).c_str(),
                    static_cast<unsigned long long>(sd.stream_offset() + end -
                                                    patterns[pattern].size()));
      }
    });
  });

  cap.start();
  for (const auto& pkt : trace.packets) cap.inject(pkt);
  cap.stop();

  std::printf("\n%llu matches found (%llu planted in the workload)\n",
              static_cast<unsigned long long>(total_matches),
              static_cast<unsigned long long>(trace.planted_matches));
  return total_matches == trace.planted_matches ? 0 : 1;
}
