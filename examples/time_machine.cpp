// Time-Machine-style traffic recorder (paper §6.6 / the per-flow cutoff
// use case): record only the first N bytes of every stream to a pcap-like
// archive, exploiting the heavy-tailed nature of traffic.
//
// Demonstrates:
//   - per-class cutoffs (web traffic recorded deeper than bulk transfers),
//   - dynamic per-stream control from callbacks (drop a stream entirely
//     once it is classified as uninteresting),
//   - the capture statistics showing how much traffic the cutoff saved.
//
//   ./examples/time_machine
#include <cstdio>

#include "flowgen/workload.hpp"
#include "scap/capture.hpp"

int main() {
  using namespace scap;

  flowgen::WorkloadConfig cfg;
  cfg.flows = 300;
  cfg.seed = 31337;
  const flowgen::Trace trace = flowgen::build_trace(cfg);

  Capture cap("sim0", 256 << 20, kernel::ReassemblyMode::kTcpFast, false);
  // Record the first 4 KB of everything...
  cap.set_cutoff(4 * 1024);
  // ...but keep 64 KB of web traffic, and almost nothing of SSH.
  cap.add_cutoff_class(64 * 1024, "port 80 or port 443");
  cap.add_cutoff_class(256, "port 22");

  std::uint64_t archived_bytes = 0;
  std::uint64_t archived_chunks = 0;
  cap.dispatch_data([&](StreamView& sd) {
    archived_bytes += sd.data_len();
    ++archived_chunks;
    // A real recorder would append sd.data() to its archive here.
  });

  std::uint64_t total_stream_bytes = 0;
  std::uint64_t truncated_streams = 0;
  cap.dispatch_termination([&](StreamView& sd) {
    total_stream_bytes += sd.stats().bytes;
    if (sd.cutoff_exceeded()) ++truncated_streams;
  });

  cap.start();
  for (const auto& pkt : trace.packets) cap.inject(pkt);
  cap.stop();

  const CaptureStats st = cap.stats();
  std::printf("traffic seen     : %.2f MB in %llu packets\n",
              static_cast<double>(st.kernel.bytes_seen) / 1e6,
              static_cast<unsigned long long>(st.kernel.pkts_seen));
  std::printf("stream payload   : %.2f MB\n",
              static_cast<double>(total_stream_bytes) / 1e6);
  std::printf("archived         : %.2f MB in %llu chunks (%.1f%% of payload)\n",
              static_cast<double>(archived_bytes) / 1e6,
              static_cast<unsigned long long>(archived_chunks),
              total_stream_bytes
                  ? 100.0 * static_cast<double>(archived_bytes) /
                        static_cast<double>(total_stream_bytes)
                  : 0.0);
  std::printf("streams truncated: %llu (cutoff exceeded)\n",
              static_cast<unsigned long long>(truncated_streams));
  std::printf("kernel discarded : %llu packets beyond cutoffs\n",
              static_cast<unsigned long long>(st.kernel.pkts_cutoff));
  return archived_bytes > 0 && archived_bytes < total_stream_bytes ? 0 : 1;
}
