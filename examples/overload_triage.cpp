// Overload triage with Prioritized Packet Loss (paper §2.2, §6.7).
//
// A monitoring application that cannot keep up with the full input protects
// what matters: mail/SSH streams are marked high priority from the creation
// callback, an overload cutoff biases surviving bytes toward stream heads,
// and slow-to-process streams are demoted on the fly using the per-stream
// processing statistics (§3.2).
//
//   ./examples/overload_triage
#include <cstdio>

#include "flowgen/workload.hpp"
#include "scap/capture.hpp"

int main() {
  using namespace scap;

  flowgen::WorkloadConfig cfg;
  cfg.flows = 400;
  cfg.seed = 12;
  const flowgen::Trace trace = flowgen::build_trace(cfg);

  // Small buffer + aggressive PPL so the demo actually sheds load. A small
  // chunk size keeps block allocation fine-grained, so admission control
  // (which is priority-aware) is the binding constraint rather than
  // whole-block exhaustion.
  Capture cap("sim0", 384 << 10, kernel::ReassemblyMode::kTcpFast, false);
  cap.set_parameter(Parameter::kChunkSize, 2 * 1024);
  cap.set_parameter(Parameter::kBaseThresholdPercent, 25);
  cap.set_parameter(Parameter::kPriorityLevels, 2);
  cap.set_parameter(Parameter::kOverloadCutoff, 8 * 1024);

  cap.dispatch_creation([&](StreamView& sd) {
    // Both directions of a mail/SSH connection are high priority.
    const std::uint16_t dst = sd.tuple().dst_port;
    const std::uint16_t src = sd.tuple().src_port;
    if (dst == 25 || dst == 22 || src == 25 || src == 22) sd.set_priority(1);
  });

  // Consume data slowly on purpose: keep every chunk so memory stays hot.
  std::uint64_t high_bytes = 0, low_bytes = 0;
  cap.dispatch_data([&](StreamView& sd) {
    const std::uint16_t port = sd.tuple().dst_port;
    const std::uint16_t src = sd.tuple().src_port;
    if (port == 25 || port == 22 || src == 25 || src == 22) {
      high_bytes += sd.data_len();
    } else {
      low_bytes += sd.data_len();
    }
  });

  std::uint64_t high_dropped = 0, high_total = 0;
  std::uint64_t low_dropped = 0, low_total = 0;
  cap.dispatch_termination([&](StreamView& sd) {
    const std::uint16_t port = sd.tuple().dst_port;
    const std::uint16_t src = sd.tuple().src_port;
    const bool high = port == 25 || port == 22 || src == 25 || src == 22;
    (high ? high_dropped : low_dropped) += sd.stats().dropped_pkts;
    (high ? high_total : low_total) += sd.stats().pkts;
  });

  cap.start();
  // Feed the trace compressed in time 50x: instant overload.
  for (const auto& pkt : trace.packets) {
    Packet fast = pkt;
    fast.set_timestamp(Timestamp(pkt.timestamp().ns() / 50));
    cap.inject(fast);
  }
  cap.stop();

  auto pct = [](std::uint64_t d, std::uint64_t t) {
    return t ? 100.0 * static_cast<double>(d) / static_cast<double>(t) : 0.0;
  };
  std::printf("high-priority (mail/ssh): %.1f%% of %llu packets dropped\n",
              pct(high_dropped, high_total),
              static_cast<unsigned long long>(high_total));
  std::printf("low-priority  (the rest): %.1f%% of %llu packets dropped\n",
              pct(low_dropped, low_total),
              static_cast<unsigned long long>(low_total));
  std::printf("delivered: %.2f MB high, %.2f MB low\n",
              static_cast<double>(high_bytes) / 1e6,
              static_cast<double>(low_bytes) / 1e6);

  // The triage worked if high-priority traffic fared strictly better.
  return pct(high_dropped, high_total) <= pct(low_dropped, low_total) ? 0 : 1;
}
