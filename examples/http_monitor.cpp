// HTTP transaction monitoring on top of reassembled streams — the paper's
// §1 motivation made concrete: "applications increasingly need to reason
// about higher-level entities such as HTTP headers".
//
// Each TCP stream direction feeds a streaming HTTP parser; the monitor
// logs request/response pairs (method, target, status, body sizes) and
// flags suspicious requests. Chunk boundaries are arbitrary — the parsers
// are incremental — and the per-stream state is dropped on termination.
//
//   ./examples/http_monitor
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "packet/craft.hpp"
#include "proto/http.hpp"
#include "scap/capture.hpp"

namespace {

using namespace scap;

/// Synthesizes a full HTTP session (handshake + request + response + FIN).
std::vector<Packet> http_session(std::uint16_t client_port,
                                 const std::string& request,
                                 const std::string& response,
                                 std::int64_t base_us) {
  std::vector<Packet> pkts;
  FiveTuple tuple{0x0a000001, 0xc0a80150, client_port, 80, kProtoTcp};
  std::uint32_t cseq = 1000, sseq = 9000;
  std::int64_t t = base_us;
  auto push = [&](TcpSegmentSpec spec) {
    pkts.push_back(make_tcp_packet(spec, Timestamp::from_usec(t)));
    t += 20;
  };
  TcpSegmentSpec syn;
  syn.tuple = tuple;
  syn.seq = cseq++;
  syn.flags = kTcpSyn;
  push(syn);
  TcpSegmentSpec synack;
  synack.tuple = tuple.reversed();
  synack.seq = sseq++;
  synack.ack = cseq;
  synack.flags = kTcpSyn | kTcpAck;
  push(synack);

  // Request, segmented into smallish pieces to exercise reassembly.
  for (std::size_t off = 0; off < request.size(); off += 333) {
    const std::string piece = request.substr(off, 333);
    TcpSegmentSpec d;
    d.tuple = tuple;
    d.seq = cseq;
    d.ack = sseq;
    d.flags = kTcpAck | kTcpPsh;
    d.payload = {reinterpret_cast<const std::uint8_t*>(piece.data()),
                 piece.size()};
    push(d);
    cseq += static_cast<std::uint32_t>(piece.size());
  }
  for (std::size_t off = 0; off < response.size(); off += 777) {
    const std::string piece = response.substr(off, 777);
    TcpSegmentSpec d;
    d.tuple = tuple.reversed();
    d.seq = sseq;
    d.ack = cseq;
    d.flags = kTcpAck | kTcpPsh;
    d.payload = {reinterpret_cast<const std::uint8_t*>(piece.data()),
                 piece.size()};
    push(d);
    sseq += static_cast<std::uint32_t>(piece.size());
  }
  TcpSegmentSpec fin;
  fin.tuple = tuple;
  fin.seq = cseq;
  fin.ack = sseq;
  fin.flags = kTcpFin | kTcpAck;
  push(fin);
  TcpSegmentSpec sfin;
  sfin.tuple = tuple.reversed();
  sfin.seq = sseq;
  sfin.ack = cseq + 1;
  sfin.flags = kTcpFin | kTcpAck;
  push(sfin);
  return pkts;
}

std::string request_of(const std::string& method, const std::string& target,
                       const std::string& body = "") {
  std::string r = method + " " + target + " HTTP/1.1\r\nHost: shop.example\r\n";
  if (!body.empty()) {
    r += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  r += "\r\n" + body;
  return r;
}

std::string response_of(int code, const std::string& body) {
  return "HTTP/1.1 " + std::to_string(code) + " X\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

}  // namespace

int main() {
  Capture cap("sim0", 64 << 20, kernel::ReassemblyMode::kTcpFast, false);
  cap.set_filter("tcp and port 80");
  cap.set_parameter(Parameter::kChunkSize, 512);  // force multi-chunk paths

  // One HttpConnection per TCP connection, keyed by the canonical tuple's
  // string form (both directions share it).
  std::unordered_map<std::string, proto::HttpConnection> connections;
  int transactions = 0, alerts = 0;

  auto parser_for = [&](StreamView& sd) -> proto::HttpParser& {
    auto& conn = connections[to_string(sd.tuple().canonical())];
    // The stream whose destination port is 80 carries requests.
    return sd.tuple().dst_port == 80 ? conn.client() : conn.server();
  };

  cap.dispatch_creation([&](StreamView& sd) {
    auto& parser = parser_for(sd);
    if (sd.tuple().dst_port == 80) {
      parser.on_request([&](const proto::HttpRequest& req) {
        std::printf("request : %s %s (%llu body bytes)\n", req.method.c_str(),
                    req.target.c_str(),
                    static_cast<unsigned long long>(req.body_bytes));
        if (req.target.find("../") != std::string::npos) {
          std::printf("  ALERT: path traversal attempt\n");
          ++alerts;
        }
      });
    } else {
      parser.on_response([&](const proto::HttpResponse& resp) {
        std::printf("response: %d (%llu body bytes)\n", resp.status_code,
                    static_cast<unsigned long long>(resp.body_bytes));
        ++transactions;
      });
    }
  });
  cap.dispatch_data([&](StreamView& sd) {
    // Feed the new bytes (skip the repeated overlap prefix, none here).
    parser_for(sd).feed(sd.data().subspan(sd.overlap_len()));
  });
  cap.dispatch_termination([&](StreamView& sd) {
    parser_for(sd).finish();
  });

  cap.start();
  std::int64_t t = 0;
  std::vector<std::vector<Packet>> sessions;
  sessions.push_back(http_session(
      40001, request_of("GET", "/catalog"), response_of(200, std::string(3000, 'c')), t));
  sessions.push_back(http_session(
      40002, request_of("POST", "/api/orders", R"({"item":42})"),
      response_of(201, "{\"ok\":true}"), t + 10));
  sessions.push_back(http_session(
      40003, request_of("GET", "/static/../../etc/passwd"),
      response_of(403, "forbidden"), t + 20));
  // Interleave the sessions' packets to stress per-stream state isolation.
  std::size_t max_len = 0;
  for (const auto& s : sessions) max_len = std::max(max_len, s.size());
  for (std::size_t i = 0; i < max_len; ++i) {
    for (const auto& s : sessions) {
      if (i < s.size()) cap.inject(s[i]);
    }
  }
  cap.stop();

  std::printf("\n%d transactions observed, %d alerts\n", transactions, alerts);
  return transactions == 3 && alerts == 1 ? 0 : 1;
}
