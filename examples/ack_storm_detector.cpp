// TCP-level attack detection with per-packet delivery (paper §3.2/§5.7).
//
// Stream chunks are great for content inspection, but some detections are
// inherently packet-level. This example uses scap_next_stream_packet-style
// delivery (need_pkts=1) to spot "ACK splitting" style misbehaviour
// (Savage et al.): a receiver ACKing in implausibly small increments to
// inflate the sender's congestion window. We approximate the signal as
// many tiny consecutive segments within one stream.
//
//   ./examples/ack_storm_detector
#include <cstdio>
#include <unordered_map>

#include "flowgen/workload.hpp"
#include "packet/craft.hpp"
#include "scap/capture.hpp"

int main() {
  using namespace scap;

  // Background traffic...
  flowgen::WorkloadConfig cfg;
  cfg.flows = 60;
  cfg.seed = 4;
  flowgen::Trace trace = flowgen::build_trace(cfg);

  // ...plus one misbehaving flow that dribbles 1-byte segments.
  const FiveTuple attacker{0x0a0a0a0a, 0xc0a80001, 6666, 80, kProtoTcp};
  {
    TcpSegmentSpec syn;
    syn.tuple = attacker;
    syn.seq = 100;
    syn.flags = kTcpSyn;
    trace.packets.push_back(make_tcp_packet(syn, Timestamp(0)));
    const std::uint8_t byte[1] = {0x41};
    for (std::uint32_t i = 0; i < 64; ++i) {
      TcpSegmentSpec d;
      d.tuple = attacker;
      d.seq = 101 + i;
      d.flags = kTcpAck | kTcpPsh;
      d.payload = std::span<const std::uint8_t>(byte);
      trace.packets.push_back(
          make_tcp_packet(d, Timestamp(1000 + i * 10)));
    }
  }

  Capture cap("sim0", 128 << 20, kernel::ReassemblyMode::kTcpFast,
              /*need_pkts=*/true);
  cap.set_parameter(Parameter::kChunkSize, 4 * 1024);

  struct Suspicion {
    std::uint32_t tiny_segments = 0;
    std::uint32_t total_segments = 0;
  };
  std::unordered_map<kernel::StreamId, Suspicion> table;
  std::vector<FiveTuple> flagged;

  cap.dispatch_data([&](StreamView& sd) {
    auto& s = table[sd.id()];
    while (const kernel::PacketRecord* rec = sd.next_packet()) {
      ++s.total_segments;
      if (rec->caplen <= 4) ++s.tiny_segments;
    }
    if (s.total_segments >= 32 &&
        s.tiny_segments * 10 >= s.total_segments * 9) {
      flagged.push_back(sd.tuple());
      sd.discard();  // stop wasting memory on the attacker
      table.erase(sd.id());
    }
  });

  cap.start();
  for (const auto& pkt : trace.packets) cap.inject(pkt);
  cap.stop();

  for (const auto& tuple : flagged) {
    std::printf("suspicious segment dribble: %s\n", to_string(tuple).c_str());
  }
  std::printf("%zu stream(s) flagged\n", flagged.size());

  // Exactly the attacker, nothing else.
  return flagged.size() == 1 && flagged[0] == attacker ? 0 : 1;
}
