// A miniature NIDS — the paper's flagship use case, assembled end-to-end
// from the library's public pieces:
//
//   * Snort-style rules parsed from text (src/match/rules)
//   * one Aho-Corasick automaton over all content patterns
//   * Scap streams with PER-STREAM streaming match state, so patterns
//     spanning chunk boundaries are still found without overlap copies
//   * alert attribution: a content hit only fires if the owning rule's
//     header matches the stream's 5-tuple
//
//   ./examples/mini_nids
#include <cstdio>
#include <string>
#include <unordered_map>
#include <vector>

#include "flowgen/workload.hpp"
#include "match/aho_corasick.hpp"
#include "match/rules.hpp"
#include "packet/craft.hpp"
#include "scap/capture.hpp"

namespace {

constexpr const char* kRules = R"(
# mini ruleset
alert tcp any any -> any 80 (msg:"path traversal"; content:"../../"; sid:1;)
alert tcp any any -> any 80 (msg:"shell exec attempt"; content:"/bin/sh"; sid:2;)
alert tcp any any -> any any (msg:"suspicious marker"; content:"|de ad be ef|"; sid:3;)
alert udp any any -> any 53 (msg:"dns tunnel tag"; content:"xfil."; sid:4;)
)";

using namespace scap;

std::vector<Packet> attack_session(std::uint16_t sport, std::uint16_t dport,
                                   std::uint8_t proto,
                                   const std::string& payload,
                                   std::int64_t base_us,
                                   std::size_t segment = 7) {
  std::vector<Packet> pkts;
  FiveTuple tuple{0x0a0000aa, 0xc0a80001, sport, dport, proto};
  std::int64_t t = base_us;
  if (proto == kProtoUdp) {
    pkts.push_back(make_udp_packet(
        tuple,
        {reinterpret_cast<const std::uint8_t*>(payload.data()),
         payload.size()},
        Timestamp::from_usec(t)));
    return pkts;
  }
  std::uint32_t seq = 5000;
  TcpSegmentSpec syn;
  syn.tuple = tuple;
  syn.seq = seq++;
  syn.flags = kTcpSyn;
  pkts.push_back(make_tcp_packet(syn, Timestamp::from_usec(t)));
  // Tiny segments on purpose: every pattern crosses chunk boundaries.
  for (std::size_t off = 0; off < payload.size(); off += segment) {
    const std::string piece = payload.substr(off, segment);
    TcpSegmentSpec d;
    d.tuple = tuple;
    d.seq = seq;
    d.flags = kTcpAck | kTcpPsh;
    d.payload = {reinterpret_cast<const std::uint8_t*>(piece.data()),
                 piece.size()};
    pkts.push_back(make_tcp_packet(d, Timestamp::from_usec(t += 15)));
    seq += static_cast<std::uint32_t>(piece.size());
  }
  TcpSegmentSpec fin;
  fin.tuple = tuple;
  fin.seq = seq;
  fin.flags = kTcpFin | kTcpAck;
  pkts.push_back(make_tcp_packet(fin, Timestamp::from_usec(t + 15)));
  return pkts;
}

}  // namespace

int main() {
  const match::RuleSet rules = match::parse_rules(kRules);
  if (!rules.errors.empty()) {
    for (const auto& e : rules.errors) {
      std::fprintf(stderr, "rule line %zu: %s\n", e.line, e.message.c_str());
    }
    return 1;
  }
  const auto owner = rules.pattern_owner();
  const match::AhoCorasick automaton(rules.patterns());
  std::printf("loaded %zu rules, %zu content patterns\n", rules.rules.size(),
              rules.patterns().size());

  Capture cap("sim0", 128 << 20, kernel::ReassemblyMode::kTcpFast, false);
  cap.set_parameter(Parameter::kChunkSize, 64);  // tiny: stress streaming

  // Per-stream automaton state: cross-chunk patterns match without any
  // overlap re-scanning.
  std::unordered_map<kernel::StreamId, std::uint32_t> match_state;
  int alerts = 0;
  std::vector<std::uint32_t> fired_sids;

  cap.dispatch_data([&](StreamView& sd) {
    auto [it, fresh] =
        match_state.try_emplace(sd.id(), match::AhoCorasick::root_state());
    automaton.scan_stream(
        it->second, sd.data().subspan(sd.overlap_len()),
        [&](std::size_t pattern, std::size_t) {
          const match::Rule& rule = rules.rules[owner[pattern]];
          if (!rule.matches_tuple(sd.tuple())) return;  // header mismatch
          ++alerts;
          fired_sids.push_back(rule.sid);
          std::printf("ALERT sid=%u \"%s\" on %s\n", rule.sid,
                      rule.msg.c_str(), to_string(sd.tuple()).c_str());
        });
  });
  cap.dispatch_termination(
      [&](StreamView& sd) { match_state.erase(sd.id()); });

  cap.start();
  // Benign background + three attacks (one on a non-matching port).
  flowgen::WorkloadConfig bg;
  bg.flows = 40;
  bg.seed = 2;
  for (const auto& pkt : flowgen::build_trace(bg).packets) cap.inject(pkt);
  for (const auto& pkt : attack_session(
           41000, 80, kProtoTcp, "GET /../../etc/shadow HTTP/1.1", 100)) {
    cap.inject(pkt);
  }
  for (const auto& pkt : attack_session(
           41001, 9999, kProtoTcp, "run ../../ now", 200)) {
    cap.inject(pkt);  // traversal content but port != 80: no alert (sid 1)
  }
  for (const auto& pkt :
       attack_session(41002, 53, kProtoUdp, "xfil.data.example", 300)) {
    cap.inject(pkt);
  }
  cap.stop();

  std::printf("%d alerts\n", alerts);
  // Expect exactly: sid 1 (traversal on port 80) and sid 4 (dns tag).
  const bool ok = alerts == 2 && fired_sids.size() == 2 &&
                  fired_sids[0] == 1 && fired_sids[1] == 4;
  return ok ? 0 : 1;
}
