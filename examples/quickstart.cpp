// Quickstart: the paper's flow-statistics exporter (§3.3.1), almost
// verbatim against the Table-1 C API.
//
// The program captures a small synthetic campus workload through a virtual
// interface, discards all stream data in the kernel (cutoff 0), and prints
// one line per terminated flow — src/dst endpoints, bytes, packets,
// duration — exactly what the paper's listing exports.
//
//   ./examples/quickstart [trace.pcap]
//
// With a pcap argument, the file is replayed instead of the synthetic
// workload (any tcpdump-format capture works).
#include <cstdio>

#include "flowgen/workload.hpp"
#include "packet/headers.hpp"
#include "scap/scap.h"
#include "scap/capture.hpp"

namespace {

// The paper's stream_close() callback: export per-flow statistics.
void stream_close(stream_t* sd) {
  const scap::FiveTuple& hdr = sd->tuple();
  const auto& stats = sd->stats();
  std::printf("%-21s -> %-21s  %10llu bytes  %6llu pkts  %8.3f s\n",
              (scap::ip_to_string(hdr.src_ip) + ":" +
               std::to_string(hdr.src_port))
                  .c_str(),
              (scap::ip_to_string(hdr.dst_ip) + ":" +
               std::to_string(hdr.dst_port))
                  .c_str(),
              static_cast<unsigned long long>(stats.bytes),
              static_cast<unsigned long long>(stats.pkts),
              (stats.last_packet - stats.first_packet).sec());
}

}  // namespace

int main(int argc, char** argv) {
  // scap_create / scap_set_cutoff / scap_dispatch_termination /
  // scap_start_capture — the paper's §3.3.1 listing.
  const std::string device =
      argc > 1 ? std::string("file:") + argv[1] : std::string("sim0");
  scap_t* sc = scap_create(device.c_str(), SCAP_DEFAULT, SCAP_TCP_FAST, 0);
  if (sc == nullptr) {
    std::fprintf(stderr, "scap_create failed\n");
    return 1;
  }
  scap_set_cutoff(sc, 0);  // flow statistics only: discard all stream data
  scap_dispatch_termination(sc, stream_close);

  std::printf("%-21s    %-21s  %16s  %11s  %10s\n", "src", "dst", "bytes",
              "packets", "duration");
  if (scap_start_capture(sc) != 0) {
    std::fprintf(stderr, "scap_start_capture failed (missing file?)\n");
    scap_close(sc);
    return 1;
  }

  if (argc <= 1) {
    // Virtual device: synthesize a small campus-like workload and feed it.
    scap::flowgen::WorkloadConfig cfg;
    cfg.flows = 40;
    cfg.seed = 7;
    const scap::flowgen::Trace trace = scap::flowgen::build_trace(cfg);
    for (const auto& pkt : trace.packets) scap_inject(sc, pkt);
    scap_flush(sc);
  }

  scap_stats_t stats{};
  scap_get_stats(sc, &stats);
  std::printf(
      "\ncapture summary: %llu packets seen, %llu streams, %llu dropped\n",
      static_cast<unsigned long long>(stats.pkts_seen),
      static_cast<unsigned long long>(stats.streams_created),
      static_cast<unsigned long long>(stats.pkts_dropped));
  scap_close(sc);
  return 0;
}
