file(REMOVE_RECURSE
  "CMakeFiles/scap_bench_common.dir/common/driver.cpp.o"
  "CMakeFiles/scap_bench_common.dir/common/driver.cpp.o.d"
  "libscap_bench_common.a"
  "libscap_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
