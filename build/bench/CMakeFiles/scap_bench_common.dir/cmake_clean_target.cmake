file(REMOVE_RECURSE
  "libscap_bench_common.a"
)
