# Empty dependencies file for scap_bench_common.
# This may be replaced when dependencies are built.
