file(REMOVE_RECURSE
  "CMakeFiles/fig06_pattern_matching.dir/fig06_pattern_matching.cpp.o"
  "CMakeFiles/fig06_pattern_matching.dir/fig06_pattern_matching.cpp.o.d"
  "fig06_pattern_matching"
  "fig06_pattern_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_pattern_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
