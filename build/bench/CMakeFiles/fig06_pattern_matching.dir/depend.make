# Empty dependencies file for fig06_pattern_matching.
# This may be replaced when dependencies are built.
