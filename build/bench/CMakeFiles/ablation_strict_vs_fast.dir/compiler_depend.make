# Empty compiler generated dependencies file for ablation_strict_vs_fast.
# This may be replaced when dependencies are built.
