file(REMOVE_RECURSE
  "CMakeFiles/ablation_strict_vs_fast.dir/ablation_strict_vs_fast.cpp.o"
  "CMakeFiles/ablation_strict_vs_fast.dir/ablation_strict_vs_fast.cpp.o.d"
  "ablation_strict_vs_fast"
  "ablation_strict_vs_fast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strict_vs_fast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
