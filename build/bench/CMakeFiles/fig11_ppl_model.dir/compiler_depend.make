# Empty compiler generated dependencies file for fig11_ppl_model.
# This may be replaced when dependencies are built.
