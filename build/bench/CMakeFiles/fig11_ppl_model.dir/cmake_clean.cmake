file(REMOVE_RECURSE
  "CMakeFiles/fig11_ppl_model.dir/fig11_ppl_model.cpp.o"
  "CMakeFiles/fig11_ppl_model.dir/fig11_ppl_model.cpp.o.d"
  "fig11_ppl_model"
  "fig11_ppl_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_ppl_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
