# Empty dependencies file for ablation_ppl_validation.
# This may be replaced when dependencies are built.
