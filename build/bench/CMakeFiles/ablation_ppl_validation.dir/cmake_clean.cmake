file(REMOVE_RECURSE
  "CMakeFiles/ablation_ppl_validation.dir/ablation_ppl_validation.cpp.o"
  "CMakeFiles/ablation_ppl_validation.dir/ablation_ppl_validation.cpp.o.d"
  "ablation_ppl_validation"
  "ablation_ppl_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ppl_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
