
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_ppl_validation.cpp" "bench/CMakeFiles/ablation_ppl_validation.dir/ablation_ppl_validation.cpp.o" "gcc" "bench/CMakeFiles/ablation_ppl_validation.dir/ablation_ppl_validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/scap_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/scap_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/scap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/scap_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/flowgen/CMakeFiles/scap_flowgen.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/scap_match.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/scap_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/scap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/scap_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/scap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
