file(REMOVE_RECURSE
  "CMakeFiles/fig04_stream_delivery.dir/fig04_stream_delivery.cpp.o"
  "CMakeFiles/fig04_stream_delivery.dir/fig04_stream_delivery.cpp.o.d"
  "fig04_stream_delivery"
  "fig04_stream_delivery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_stream_delivery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
