# Empty compiler generated dependencies file for fig04_stream_delivery.
# This may be replaced when dependencies are built.
