# Empty compiler generated dependencies file for fig03_flow_stats.
# This may be replaced when dependencies are built.
