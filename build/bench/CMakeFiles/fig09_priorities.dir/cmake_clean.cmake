file(REMOVE_RECURSE
  "CMakeFiles/fig09_priorities.dir/fig09_priorities.cpp.o"
  "CMakeFiles/fig09_priorities.dir/fig09_priorities.cpp.o.d"
  "fig09_priorities"
  "fig09_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
