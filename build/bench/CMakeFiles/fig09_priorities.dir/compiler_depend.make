# Empty compiler generated dependencies file for fig09_priorities.
# This may be replaced when dependencies are built.
