file(REMOVE_RECURSE
  "CMakeFiles/fig05_concurrent_streams.dir/fig05_concurrent_streams.cpp.o"
  "CMakeFiles/fig05_concurrent_streams.dir/fig05_concurrent_streams.cpp.o.d"
  "fig05_concurrent_streams"
  "fig05_concurrent_streams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_concurrent_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
