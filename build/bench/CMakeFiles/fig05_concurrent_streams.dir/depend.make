# Empty dependencies file for fig05_concurrent_streams.
# This may be replaced when dependencies are built.
