# Empty dependencies file for fig12_ppl_model_multi.
# This may be replaced when dependencies are built.
