file(REMOVE_RECURSE
  "CMakeFiles/fig12_ppl_model_multi.dir/fig12_ppl_model_multi.cpp.o"
  "CMakeFiles/fig12_ppl_model_multi.dir/fig12_ppl_model_multi.cpp.o.d"
  "fig12_ppl_model_multi"
  "fig12_ppl_model_multi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_ppl_model_multi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
