# Empty compiler generated dependencies file for fig08_cutoff.
# This may be replaced when dependencies are built.
