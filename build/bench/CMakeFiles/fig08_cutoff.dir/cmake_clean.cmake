file(REMOVE_RECURSE
  "CMakeFiles/fig08_cutoff.dir/fig08_cutoff.cpp.o"
  "CMakeFiles/fig08_cutoff.dir/fig08_cutoff.cpp.o.d"
  "fig08_cutoff"
  "fig08_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
