file(REMOVE_RECURSE
  "CMakeFiles/ablation_subzero.dir/ablation_subzero.cpp.o"
  "CMakeFiles/ablation_subzero.dir/ablation_subzero.cpp.o.d"
  "ablation_subzero"
  "ablation_subzero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_subzero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
