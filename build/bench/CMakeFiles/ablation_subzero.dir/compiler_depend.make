# Empty compiler generated dependencies file for ablation_subzero.
# This may be replaced when dependencies are built.
