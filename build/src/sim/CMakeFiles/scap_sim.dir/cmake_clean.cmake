file(REMOVE_RECURSE
  "CMakeFiles/scap_sim.dir/cache.cpp.o"
  "CMakeFiles/scap_sim.dir/cache.cpp.o.d"
  "CMakeFiles/scap_sim.dir/queue_server.cpp.o"
  "CMakeFiles/scap_sim.dir/queue_server.cpp.o.d"
  "libscap_sim.a"
  "libscap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
