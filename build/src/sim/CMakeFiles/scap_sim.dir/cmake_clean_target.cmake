file(REMOVE_RECURSE
  "libscap_sim.a"
)
