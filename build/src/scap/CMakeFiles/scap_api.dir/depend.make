# Empty dependencies file for scap_api.
# This may be replaced when dependencies are built.
