file(REMOVE_RECURSE
  "CMakeFiles/scap_api.dir/capi.cpp.o"
  "CMakeFiles/scap_api.dir/capi.cpp.o.d"
  "CMakeFiles/scap_api.dir/capture.cpp.o"
  "CMakeFiles/scap_api.dir/capture.cpp.o.d"
  "libscap_api.a"
  "libscap_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
