file(REMOVE_RECURSE
  "libscap_api.a"
)
