file(REMOVE_RECURSE
  "libscap_export.a"
)
