# Empty compiler generated dependencies file for scap_export.
# This may be replaced when dependencies are built.
