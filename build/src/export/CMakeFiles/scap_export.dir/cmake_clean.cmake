file(REMOVE_RECURSE
  "CMakeFiles/scap_export.dir/ipfix.cpp.o"
  "CMakeFiles/scap_export.dir/ipfix.cpp.o.d"
  "libscap_export.a"
  "libscap_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
