file(REMOVE_RECURSE
  "CMakeFiles/scap_match.dir/aho_corasick.cpp.o"
  "CMakeFiles/scap_match.dir/aho_corasick.cpp.o.d"
  "CMakeFiles/scap_match.dir/corpus.cpp.o"
  "CMakeFiles/scap_match.dir/corpus.cpp.o.d"
  "CMakeFiles/scap_match.dir/rules.cpp.o"
  "CMakeFiles/scap_match.dir/rules.cpp.o.d"
  "libscap_match.a"
  "libscap_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
