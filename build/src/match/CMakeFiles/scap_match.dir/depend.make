# Empty dependencies file for scap_match.
# This may be replaced when dependencies are built.
