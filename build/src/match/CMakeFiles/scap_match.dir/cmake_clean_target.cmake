file(REMOVE_RECURSE
  "libscap_match.a"
)
