file(REMOVE_RECURSE
  "libscap_proto.a"
)
