# Empty compiler generated dependencies file for scap_proto.
# This may be replaced when dependencies are built.
