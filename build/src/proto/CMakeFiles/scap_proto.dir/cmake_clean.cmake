file(REMOVE_RECURSE
  "CMakeFiles/scap_proto.dir/dns.cpp.o"
  "CMakeFiles/scap_proto.dir/dns.cpp.o.d"
  "CMakeFiles/scap_proto.dir/http.cpp.o"
  "CMakeFiles/scap_proto.dir/http.cpp.o.d"
  "libscap_proto.a"
  "libscap_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
