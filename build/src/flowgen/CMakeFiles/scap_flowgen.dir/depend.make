# Empty dependencies file for scap_flowgen.
# This may be replaced when dependencies are built.
