file(REMOVE_RECURSE
  "libscap_flowgen.a"
)
