
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flowgen/multiplex.cpp" "src/flowgen/CMakeFiles/scap_flowgen.dir/multiplex.cpp.o" "gcc" "src/flowgen/CMakeFiles/scap_flowgen.dir/multiplex.cpp.o.d"
  "/root/repo/src/flowgen/replay.cpp" "src/flowgen/CMakeFiles/scap_flowgen.dir/replay.cpp.o" "gcc" "src/flowgen/CMakeFiles/scap_flowgen.dir/replay.cpp.o.d"
  "/root/repo/src/flowgen/workload.cpp" "src/flowgen/CMakeFiles/scap_flowgen.dir/workload.cpp.o" "gcc" "src/flowgen/CMakeFiles/scap_flowgen.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/scap_base.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/scap_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
