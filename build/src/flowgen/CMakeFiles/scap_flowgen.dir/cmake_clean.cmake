file(REMOVE_RECURSE
  "CMakeFiles/scap_flowgen.dir/multiplex.cpp.o"
  "CMakeFiles/scap_flowgen.dir/multiplex.cpp.o.d"
  "CMakeFiles/scap_flowgen.dir/replay.cpp.o"
  "CMakeFiles/scap_flowgen.dir/replay.cpp.o.d"
  "CMakeFiles/scap_flowgen.dir/workload.cpp.o"
  "CMakeFiles/scap_flowgen.dir/workload.cpp.o.d"
  "libscap_flowgen.a"
  "libscap_flowgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_flowgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
