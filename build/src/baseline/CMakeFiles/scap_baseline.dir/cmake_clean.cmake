file(REMOVE_RECURSE
  "CMakeFiles/scap_baseline.dir/nids.cpp.o"
  "CMakeFiles/scap_baseline.dir/nids.cpp.o.d"
  "CMakeFiles/scap_baseline.dir/yaf.cpp.o"
  "CMakeFiles/scap_baseline.dir/yaf.cpp.o.d"
  "libscap_baseline.a"
  "libscap_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
