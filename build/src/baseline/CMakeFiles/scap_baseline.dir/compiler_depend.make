# Empty compiler generated dependencies file for scap_baseline.
# This may be replaced when dependencies are built.
