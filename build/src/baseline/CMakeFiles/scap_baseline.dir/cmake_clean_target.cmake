file(REMOVE_RECURSE
  "libscap_baseline.a"
)
