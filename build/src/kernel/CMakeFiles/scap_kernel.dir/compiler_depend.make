# Empty compiler generated dependencies file for scap_kernel.
# This may be replaced when dependencies are built.
