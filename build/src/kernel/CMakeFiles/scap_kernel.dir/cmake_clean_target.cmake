file(REMOVE_RECURSE
  "libscap_kernel.a"
)
