
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/defrag.cpp" "src/kernel/CMakeFiles/scap_kernel.dir/defrag.cpp.o" "gcc" "src/kernel/CMakeFiles/scap_kernel.dir/defrag.cpp.o.d"
  "/root/repo/src/kernel/flow_table.cpp" "src/kernel/CMakeFiles/scap_kernel.dir/flow_table.cpp.o" "gcc" "src/kernel/CMakeFiles/scap_kernel.dir/flow_table.cpp.o.d"
  "/root/repo/src/kernel/memory.cpp" "src/kernel/CMakeFiles/scap_kernel.dir/memory.cpp.o" "gcc" "src/kernel/CMakeFiles/scap_kernel.dir/memory.cpp.o.d"
  "/root/repo/src/kernel/module.cpp" "src/kernel/CMakeFiles/scap_kernel.dir/module.cpp.o" "gcc" "src/kernel/CMakeFiles/scap_kernel.dir/module.cpp.o.d"
  "/root/repo/src/kernel/ppl.cpp" "src/kernel/CMakeFiles/scap_kernel.dir/ppl.cpp.o" "gcc" "src/kernel/CMakeFiles/scap_kernel.dir/ppl.cpp.o.d"
  "/root/repo/src/kernel/reassembly.cpp" "src/kernel/CMakeFiles/scap_kernel.dir/reassembly.cpp.o" "gcc" "src/kernel/CMakeFiles/scap_kernel.dir/reassembly.cpp.o.d"
  "/root/repo/src/kernel/segment_store.cpp" "src/kernel/CMakeFiles/scap_kernel.dir/segment_store.cpp.o" "gcc" "src/kernel/CMakeFiles/scap_kernel.dir/segment_store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/scap_base.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/scap_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/scap_nic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
