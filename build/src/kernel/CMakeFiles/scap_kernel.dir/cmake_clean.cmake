file(REMOVE_RECURSE
  "CMakeFiles/scap_kernel.dir/defrag.cpp.o"
  "CMakeFiles/scap_kernel.dir/defrag.cpp.o.d"
  "CMakeFiles/scap_kernel.dir/flow_table.cpp.o"
  "CMakeFiles/scap_kernel.dir/flow_table.cpp.o.d"
  "CMakeFiles/scap_kernel.dir/memory.cpp.o"
  "CMakeFiles/scap_kernel.dir/memory.cpp.o.d"
  "CMakeFiles/scap_kernel.dir/module.cpp.o"
  "CMakeFiles/scap_kernel.dir/module.cpp.o.d"
  "CMakeFiles/scap_kernel.dir/ppl.cpp.o"
  "CMakeFiles/scap_kernel.dir/ppl.cpp.o.d"
  "CMakeFiles/scap_kernel.dir/reassembly.cpp.o"
  "CMakeFiles/scap_kernel.dir/reassembly.cpp.o.d"
  "CMakeFiles/scap_kernel.dir/segment_store.cpp.o"
  "CMakeFiles/scap_kernel.dir/segment_store.cpp.o.d"
  "libscap_kernel.a"
  "libscap_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
