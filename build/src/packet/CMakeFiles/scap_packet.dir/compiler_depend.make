# Empty compiler generated dependencies file for scap_packet.
# This may be replaced when dependencies are built.
