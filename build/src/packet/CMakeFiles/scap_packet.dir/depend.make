# Empty dependencies file for scap_packet.
# This may be replaced when dependencies are built.
