file(REMOVE_RECURSE
  "libscap_packet.a"
)
