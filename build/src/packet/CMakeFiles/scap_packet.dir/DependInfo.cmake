
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/packet/bpf.cpp" "src/packet/CMakeFiles/scap_packet.dir/bpf.cpp.o" "gcc" "src/packet/CMakeFiles/scap_packet.dir/bpf.cpp.o.d"
  "/root/repo/src/packet/checksum.cpp" "src/packet/CMakeFiles/scap_packet.dir/checksum.cpp.o" "gcc" "src/packet/CMakeFiles/scap_packet.dir/checksum.cpp.o.d"
  "/root/repo/src/packet/craft.cpp" "src/packet/CMakeFiles/scap_packet.dir/craft.cpp.o" "gcc" "src/packet/CMakeFiles/scap_packet.dir/craft.cpp.o.d"
  "/root/repo/src/packet/headers.cpp" "src/packet/CMakeFiles/scap_packet.dir/headers.cpp.o" "gcc" "src/packet/CMakeFiles/scap_packet.dir/headers.cpp.o.d"
  "/root/repo/src/packet/packet.cpp" "src/packet/CMakeFiles/scap_packet.dir/packet.cpp.o" "gcc" "src/packet/CMakeFiles/scap_packet.dir/packet.cpp.o.d"
  "/root/repo/src/packet/pcap.cpp" "src/packet/CMakeFiles/scap_packet.dir/pcap.cpp.o" "gcc" "src/packet/CMakeFiles/scap_packet.dir/pcap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/scap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
