file(REMOVE_RECURSE
  "CMakeFiles/scap_packet.dir/bpf.cpp.o"
  "CMakeFiles/scap_packet.dir/bpf.cpp.o.d"
  "CMakeFiles/scap_packet.dir/checksum.cpp.o"
  "CMakeFiles/scap_packet.dir/checksum.cpp.o.d"
  "CMakeFiles/scap_packet.dir/craft.cpp.o"
  "CMakeFiles/scap_packet.dir/craft.cpp.o.d"
  "CMakeFiles/scap_packet.dir/headers.cpp.o"
  "CMakeFiles/scap_packet.dir/headers.cpp.o.d"
  "CMakeFiles/scap_packet.dir/packet.cpp.o"
  "CMakeFiles/scap_packet.dir/packet.cpp.o.d"
  "CMakeFiles/scap_packet.dir/pcap.cpp.o"
  "CMakeFiles/scap_packet.dir/pcap.cpp.o.d"
  "libscap_packet.a"
  "libscap_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
