file(REMOVE_RECURSE
  "libscap_analysis.a"
)
