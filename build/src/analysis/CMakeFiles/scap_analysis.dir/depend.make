# Empty dependencies file for scap_analysis.
# This may be replaced when dependencies are built.
