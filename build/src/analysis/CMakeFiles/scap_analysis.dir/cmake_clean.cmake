file(REMOVE_RECURSE
  "CMakeFiles/scap_analysis.dir/queueing.cpp.o"
  "CMakeFiles/scap_analysis.dir/queueing.cpp.o.d"
  "libscap_analysis.a"
  "libscap_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
