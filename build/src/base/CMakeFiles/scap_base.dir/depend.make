# Empty dependencies file for scap_base.
# This may be replaced when dependencies are built.
