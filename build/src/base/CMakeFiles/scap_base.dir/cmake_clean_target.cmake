file(REMOVE_RECURSE
  "libscap_base.a"
)
