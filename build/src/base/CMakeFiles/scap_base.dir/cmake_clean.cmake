file(REMOVE_RECURSE
  "CMakeFiles/scap_base.dir/clock.cpp.o"
  "CMakeFiles/scap_base.dir/clock.cpp.o.d"
  "CMakeFiles/scap_base.dir/hash.cpp.o"
  "CMakeFiles/scap_base.dir/hash.cpp.o.d"
  "CMakeFiles/scap_base.dir/log.cpp.o"
  "CMakeFiles/scap_base.dir/log.cpp.o.d"
  "CMakeFiles/scap_base.dir/stats.cpp.o"
  "CMakeFiles/scap_base.dir/stats.cpp.o.d"
  "libscap_base.a"
  "libscap_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
