# Empty dependencies file for scap_nic.
# This may be replaced when dependencies are built.
