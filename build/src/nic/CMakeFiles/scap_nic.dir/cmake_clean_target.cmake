file(REMOVE_RECURSE
  "libscap_nic.a"
)
