file(REMOVE_RECURSE
  "CMakeFiles/scap_nic.dir/fdir.cpp.o"
  "CMakeFiles/scap_nic.dir/fdir.cpp.o.d"
  "CMakeFiles/scap_nic.dir/nic.cpp.o"
  "CMakeFiles/scap_nic.dir/nic.cpp.o.d"
  "CMakeFiles/scap_nic.dir/rss.cpp.o"
  "CMakeFiles/scap_nic.dir/rss.cpp.o.d"
  "libscap_nic.a"
  "libscap_nic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_nic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
