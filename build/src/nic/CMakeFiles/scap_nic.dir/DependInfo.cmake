
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nic/fdir.cpp" "src/nic/CMakeFiles/scap_nic.dir/fdir.cpp.o" "gcc" "src/nic/CMakeFiles/scap_nic.dir/fdir.cpp.o.d"
  "/root/repo/src/nic/nic.cpp" "src/nic/CMakeFiles/scap_nic.dir/nic.cpp.o" "gcc" "src/nic/CMakeFiles/scap_nic.dir/nic.cpp.o.d"
  "/root/repo/src/nic/rss.cpp" "src/nic/CMakeFiles/scap_nic.dir/rss.cpp.o" "gcc" "src/nic/CMakeFiles/scap_nic.dir/rss.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/scap_base.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/scap_packet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
