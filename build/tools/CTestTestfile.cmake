# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_gen "/root/repo/build/tools/scap_tool" "gen" "/root/repo/build/tools/tool_test.pcap" "--flows" "40" "--patterns")
set_tests_properties(tool_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_info "/root/repo/build/tools/scap_tool" "info" "/root/repo/build/tools/tool_test.pcap")
set_tests_properties(tool_info PROPERTIES  DEPENDS "tool_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_flows "/root/repo/build/tools/scap_tool" "flows" "/root/repo/build/tools/tool_test.pcap")
set_tests_properties(tool_flows PROPERTIES  DEPENDS "tool_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_streams "/root/repo/build/tools/scap_tool" "streams" "/root/repo/build/tools/tool_test.pcap")
set_tests_properties(tool_streams PROPERTIES  DEPENDS "tool_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_export "/root/repo/build/tools/scap_tool" "export" "/root/repo/build/tools/tool_test.pcap" "--out" "/root/repo/build/tools/tool_test.ipfix")
set_tests_properties(tool_export PROPERTIES  DEPENDS "tool_gen" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;14;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_decode "/root/repo/build/tools/scap_tool" "decode" "/root/repo/build/tools/tool_test.ipfix")
set_tests_properties(tool_decode PROPERTIES  DEPENDS "tool_export" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;17;add_test;/root/repo/tools/CMakeLists.txt;0;")
