file(REMOVE_RECURSE
  "CMakeFiles/scap_tool.dir/scap_tool.cpp.o"
  "CMakeFiles/scap_tool.dir/scap_tool.cpp.o.d"
  "scap_tool"
  "scap_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scap_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
