# Empty compiler generated dependencies file for scap_tool.
# This may be replaced when dependencies are built.
