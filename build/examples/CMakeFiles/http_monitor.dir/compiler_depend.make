# Empty compiler generated dependencies file for http_monitor.
# This may be replaced when dependencies are built.
