file(REMOVE_RECURSE
  "CMakeFiles/http_monitor.dir/http_monitor.cpp.o"
  "CMakeFiles/http_monitor.dir/http_monitor.cpp.o.d"
  "http_monitor"
  "http_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
