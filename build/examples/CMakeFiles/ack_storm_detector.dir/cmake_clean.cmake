file(REMOVE_RECURSE
  "CMakeFiles/ack_storm_detector.dir/ack_storm_detector.cpp.o"
  "CMakeFiles/ack_storm_detector.dir/ack_storm_detector.cpp.o.d"
  "ack_storm_detector"
  "ack_storm_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ack_storm_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
