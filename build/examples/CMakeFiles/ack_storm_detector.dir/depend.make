# Empty dependencies file for ack_storm_detector.
# This may be replaced when dependencies are built.
