# Empty dependencies file for overload_triage.
# This may be replaced when dependencies are built.
