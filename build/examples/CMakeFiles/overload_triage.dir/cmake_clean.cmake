file(REMOVE_RECURSE
  "CMakeFiles/overload_triage.dir/overload_triage.cpp.o"
  "CMakeFiles/overload_triage.dir/overload_triage.cpp.o.d"
  "overload_triage"
  "overload_triage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overload_triage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
