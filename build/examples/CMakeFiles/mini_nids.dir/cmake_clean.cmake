file(REMOVE_RECURSE
  "CMakeFiles/mini_nids.dir/mini_nids.cpp.o"
  "CMakeFiles/mini_nids.dir/mini_nids.cpp.o.d"
  "mini_nids"
  "mini_nids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mini_nids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
