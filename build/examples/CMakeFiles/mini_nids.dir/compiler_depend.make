# Empty compiler generated dependencies file for mini_nids.
# This may be replaced when dependencies are built.
