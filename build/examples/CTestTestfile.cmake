# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pattern_match "/root/repo/build/examples/pattern_match")
set_tests_properties(example_pattern_match PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_time_machine "/root/repo/build/examples/time_machine")
set_tests_properties(example_time_machine PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ack_storm_detector "/root/repo/build/examples/ack_storm_detector")
set_tests_properties(example_ack_storm_detector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_overload_triage "/root/repo/build/examples/overload_triage")
set_tests_properties(example_overload_triage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_http_monitor "/root/repo/build/examples/http_monitor")
set_tests_properties(example_http_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_mini_nids "/root/repo/build/examples/mini_nids")
set_tests_properties(example_mini_nids PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
