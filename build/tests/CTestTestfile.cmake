# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_base[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_nic[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_fragments[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_baseline[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_match[1]_include.cmake")
include("/root/repo/build/tests/test_flowgen[1]_include.cmake")
include("/root/repo/build/tests/test_scap[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_proto[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
