# Empty dependencies file for test_fragments.
# This may be replaced when dependencies are built.
