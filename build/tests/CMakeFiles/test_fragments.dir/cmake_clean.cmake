file(REMOVE_RECURSE
  "CMakeFiles/test_fragments.dir/packet/fragment_test.cpp.o"
  "CMakeFiles/test_fragments.dir/packet/fragment_test.cpp.o.d"
  "test_fragments"
  "test_fragments.pdb"
  "test_fragments[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fragments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
