file(REMOVE_RECURSE
  "CMakeFiles/test_kernel.dir/kernel/defrag_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/defrag_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/flow_table_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/flow_table_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/loadbalance_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/loadbalance_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/memory_invariant_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/memory_invariant_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/memory_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/memory_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/module_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/module_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/ppl_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/ppl_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/reassembly_property_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/reassembly_property_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/reassembly_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/reassembly_test.cpp.o.d"
  "CMakeFiles/test_kernel.dir/kernel/segment_store_test.cpp.o"
  "CMakeFiles/test_kernel.dir/kernel/segment_store_test.cpp.o.d"
  "test_kernel"
  "test_kernel.pdb"
  "test_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
