
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/kernel/defrag_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/defrag_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/defrag_test.cpp.o.d"
  "/root/repo/tests/kernel/flow_table_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/flow_table_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/flow_table_test.cpp.o.d"
  "/root/repo/tests/kernel/loadbalance_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/loadbalance_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/loadbalance_test.cpp.o.d"
  "/root/repo/tests/kernel/memory_invariant_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/memory_invariant_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/memory_invariant_test.cpp.o.d"
  "/root/repo/tests/kernel/memory_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/memory_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/memory_test.cpp.o.d"
  "/root/repo/tests/kernel/module_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/module_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/module_test.cpp.o.d"
  "/root/repo/tests/kernel/ppl_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/ppl_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/ppl_test.cpp.o.d"
  "/root/repo/tests/kernel/reassembly_property_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/reassembly_property_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/reassembly_property_test.cpp.o.d"
  "/root/repo/tests/kernel/reassembly_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/reassembly_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/reassembly_test.cpp.o.d"
  "/root/repo/tests/kernel/segment_store_test.cpp" "tests/CMakeFiles/test_kernel.dir/kernel/segment_store_test.cpp.o" "gcc" "tests/CMakeFiles/test_kernel.dir/kernel/segment_store_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/scap_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/nic/CMakeFiles/scap_nic.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/scap_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/scap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
