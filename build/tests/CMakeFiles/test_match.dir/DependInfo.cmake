
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/match/aho_corasick_test.cpp" "tests/CMakeFiles/test_match.dir/match/aho_corasick_test.cpp.o" "gcc" "tests/CMakeFiles/test_match.dir/match/aho_corasick_test.cpp.o.d"
  "/root/repo/tests/match/rules_test.cpp" "tests/CMakeFiles/test_match.dir/match/rules_test.cpp.o" "gcc" "tests/CMakeFiles/test_match.dir/match/rules_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/match/CMakeFiles/scap_match.dir/DependInfo.cmake"
  "/root/repo/build/src/packet/CMakeFiles/scap_packet.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/scap_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
