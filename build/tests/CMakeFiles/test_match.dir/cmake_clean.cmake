file(REMOVE_RECURSE
  "CMakeFiles/test_match.dir/match/aho_corasick_test.cpp.o"
  "CMakeFiles/test_match.dir/match/aho_corasick_test.cpp.o.d"
  "CMakeFiles/test_match.dir/match/rules_test.cpp.o"
  "CMakeFiles/test_match.dir/match/rules_test.cpp.o.d"
  "test_match"
  "test_match.pdb"
  "test_match[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
