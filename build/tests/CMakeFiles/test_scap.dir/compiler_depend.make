# Empty compiler generated dependencies file for test_scap.
# This may be replaced when dependencies are built.
