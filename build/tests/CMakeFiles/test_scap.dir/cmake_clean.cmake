file(REMOVE_RECURSE
  "CMakeFiles/test_scap.dir/scap/capi_test.cpp.o"
  "CMakeFiles/test_scap.dir/scap/capi_test.cpp.o.d"
  "CMakeFiles/test_scap.dir/scap/capture_features_test.cpp.o"
  "CMakeFiles/test_scap.dir/scap/capture_features_test.cpp.o.d"
  "CMakeFiles/test_scap.dir/scap/capture_test.cpp.o"
  "CMakeFiles/test_scap.dir/scap/capture_test.cpp.o.d"
  "CMakeFiles/test_scap.dir/scap/multiapp_test.cpp.o"
  "CMakeFiles/test_scap.dir/scap/multiapp_test.cpp.o.d"
  "test_scap"
  "test_scap.pdb"
  "test_scap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
