file(REMOVE_RECURSE
  "CMakeFiles/test_base.dir/base/clock_test.cpp.o"
  "CMakeFiles/test_base.dir/base/clock_test.cpp.o.d"
  "CMakeFiles/test_base.dir/base/hash_test.cpp.o"
  "CMakeFiles/test_base.dir/base/hash_test.cpp.o.d"
  "CMakeFiles/test_base.dir/base/ring_test.cpp.o"
  "CMakeFiles/test_base.dir/base/ring_test.cpp.o.d"
  "CMakeFiles/test_base.dir/base/rng_test.cpp.o"
  "CMakeFiles/test_base.dir/base/rng_test.cpp.o.d"
  "CMakeFiles/test_base.dir/base/stats_test.cpp.o"
  "CMakeFiles/test_base.dir/base/stats_test.cpp.o.d"
  "test_base"
  "test_base.pdb"
  "test_base[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
