// IPFIX (RFC 7011) flow-record export — the wire format tools like YAF
// emit. Minimal but real: message header, one template set describing our
// flow record layout with standard Information Elements, and data sets.
// The reader understands exactly what the writer produces (plus tolerant
// skipping of unknown sets), giving flow-export pipelines a round-trippable
// on-disk/off-box format.
//
// Record layout (template 256), all IANA standard IEs:
//   sourceIPv4Address(8)       uint32
//   destinationIPv4Address(12) uint32
//   sourceTransportPort(7)     uint16
//   destinationTransportPort(11) uint16
//   protocolIdentifier(4)      uint8
//   octetDeltaCount(1)         uint64
//   packetDeltaCount(2)        uint64
//   flowStartMilliseconds(152) uint64
//   flowEndMilliseconds(153)   uint64
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "base/clock.hpp"
#include "packet/headers.hpp"

namespace scap::exporter {

struct FlowRecord {
  FiveTuple tuple;
  std::uint64_t bytes = 0;
  std::uint64_t packets = 0;
  Timestamp first_seen;
  Timestamp last_seen;

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

/// Serializes flow records into IPFIX messages.
class IpfixWriter {
 public:
  explicit IpfixWriter(std::uint32_t observation_domain = 1)
      : domain_(observation_domain) {}

  /// Encode one message carrying the template set (first message only, or
  /// when `force_template`) and a data set with `records`.
  std::vector<std::uint8_t> encode(std::span<const FlowRecord> records,
                                   Timestamp export_time,
                                   bool force_template = false);

  std::uint32_t sequence() const { return sequence_; }

 private:
  std::uint32_t domain_;
  std::uint32_t sequence_ = 0;
  bool template_sent_ = false;
};

/// Parses IPFIX messages produced by IpfixWriter (and tolerates unknown
/// sets by skipping them).
class IpfixReader {
 public:
  struct Message {
    std::uint32_t export_time_sec = 0;
    std::uint32_t sequence = 0;
    std::uint32_t domain = 0;
    std::vector<FlowRecord> records;
  };

  /// Decode one message. Returns nullopt on malformed input.
  std::optional<Message> decode(std::span<const std::uint8_t> data);

  bool has_template() const { return record_length_ != 0; }

 private:
  std::uint16_t record_length_ = 0;  // learned from the template set
};

constexpr std::uint16_t kIpfixVersion = 10;
constexpr std::uint16_t kTemplateSetId = 2;
constexpr std::uint16_t kFlowTemplateId = 256;

}  // namespace scap::exporter
