#include "export/ipfix.hpp"

#include <cstring>

#include "base/bytes.hpp"

namespace scap::exporter {
namespace {

// (IE id, field length) pairs of template 256, in record order.
struct FieldSpec {
  std::uint16_t ie;
  std::uint16_t len;
};
constexpr FieldSpec kFields[] = {
    {8, 4},    // sourceIPv4Address
    {12, 4},   // destinationIPv4Address
    {7, 2},    // sourceTransportPort
    {11, 2},   // destinationTransportPort
    {4, 1},    // protocolIdentifier
    {1, 8},    // octetDeltaCount
    {2, 8},    // packetDeltaCount
    {152, 8},  // flowStartMilliseconds
    {153, 8},  // flowEndMilliseconds
};
constexpr std::uint16_t kRecordLen = 4 + 4 + 2 + 2 + 1 + 8 + 8 + 8 + 8;

void put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}
void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put16(out, static_cast<std::uint16_t>(v >> 16));
  put16(out, static_cast<std::uint16_t>(v));
}
void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put32(out, static_cast<std::uint32_t>(v >> 32));
  put32(out, static_cast<std::uint32_t>(v));
}

std::uint64_t get64(const std::uint8_t* p) {
  return (static_cast<std::uint64_t>(load_be32(p)) << 32) | load_be32(p + 4);
}

}  // namespace

std::vector<std::uint8_t> IpfixWriter::encode(
    std::span<const FlowRecord> records, Timestamp export_time,
    bool force_template) {
  std::vector<std::uint8_t> out;
  // Message header (length patched at the end).
  put16(out, kIpfixVersion);
  put16(out, 0);  // length placeholder
  put32(out, static_cast<std::uint32_t>(export_time.sec()));
  put32(out, sequence_);
  put32(out, domain_);

  if (!template_sent_ || force_template) {
    // Template set: header + one template record.
    const std::uint16_t set_len = static_cast<std::uint16_t>(
        4 + 4 + 4 * (sizeof(kFields) / sizeof(kFields[0])));
    put16(out, kTemplateSetId);
    put16(out, set_len);
    put16(out, kFlowTemplateId);
    put16(out, static_cast<std::uint16_t>(sizeof(kFields) /
                                          sizeof(kFields[0])));
    for (const FieldSpec& f : kFields) {
      put16(out, f.ie);
      put16(out, f.len);
    }
    template_sent_ = true;
  }

  if (!records.empty()) {
    put16(out, kFlowTemplateId);  // data set id = template id
    put16(out, static_cast<std::uint16_t>(4 + kRecordLen * records.size()));
    for (const FlowRecord& r : records) {
      put32(out, r.tuple.src_ip);
      put32(out, r.tuple.dst_ip);
      put16(out, r.tuple.src_port);
      put16(out, r.tuple.dst_port);
      out.push_back(r.tuple.protocol);
      put64(out, r.bytes);
      put64(out, r.packets);
      put64(out, static_cast<std::uint64_t>(r.first_seen.usec() / 1000));
      put64(out, static_cast<std::uint64_t>(r.last_seen.usec() / 1000));
    }
    sequence_ += static_cast<std::uint32_t>(records.size());
  }

  // Patch the message length.
  out[2] = static_cast<std::uint8_t>(out.size() >> 8);
  out[3] = static_cast<std::uint8_t>(out.size());
  return out;
}

std::optional<IpfixReader::Message> IpfixReader::decode(
    std::span<const std::uint8_t> data) {
  if (data.size() < 16) return std::nullopt;
  const std::uint8_t* p = data.data();
  if (load_be16(p) != kIpfixVersion) return std::nullopt;
  const std::uint16_t msg_len = load_be16(p + 2);
  if (msg_len < 16 || msg_len > data.size()) return std::nullopt;

  Message msg;
  msg.export_time_sec = load_be32(p + 4);
  msg.sequence = load_be32(p + 8);
  msg.domain = load_be32(p + 12);

  std::size_t off = 16;
  while (off + 4 <= msg_len) {
    const std::uint16_t set_id = load_be16(p + off);
    const std::uint16_t set_len = load_be16(p + off + 2);
    if (set_len < 4 || off + set_len > msg_len) return std::nullopt;

    if (set_id == kTemplateSetId) {
      // Validate it describes our template; learn the record length.
      std::size_t toff = off + 4;
      if (toff + 4 > off + set_len) return std::nullopt;
      const std::uint16_t tid = load_be16(p + toff);
      const std::uint16_t nfields = load_be16(p + toff + 2);
      toff += 4;
      std::uint16_t rec_len = 0;
      for (std::uint16_t f = 0; f < nfields; ++f) {
        if (toff + 4 > off + set_len) return std::nullopt;
        rec_len = static_cast<std::uint16_t>(rec_len +
                                             load_be16(p + toff + 2));
        toff += 4;
      }
      if (tid == kFlowTemplateId) record_length_ = rec_len;
    } else if (set_id == kFlowTemplateId) {
      if (record_length_ != kRecordLen) {
        return std::nullopt;  // data before (or with wrong) template
      }
      std::size_t roff = off + 4;
      while (roff + kRecordLen <= off + set_len) {
        const std::uint8_t* r = p + roff;
        FlowRecord rec;
        rec.tuple.src_ip = load_be32(r);
        rec.tuple.dst_ip = load_be32(r + 4);
        rec.tuple.src_port = load_be16(r + 8);
        rec.tuple.dst_port = load_be16(r + 10);
        rec.tuple.protocol = r[12];
        rec.bytes = get64(r + 13);
        rec.packets = get64(r + 21);
        rec.first_seen =
            Timestamp(static_cast<std::int64_t>(get64(r + 29)) * 1'000'000);
        rec.last_seen =
            Timestamp(static_cast<std::int64_t>(get64(r + 37)) * 1'000'000);
        msg.records.push_back(rec);
        roff += kRecordLen;
      }
    }
    // Unknown sets are skipped (forward compatibility).
    off += set_len;
  }
  return msg;
}

}  // namespace scap::exporter
