// scap::Capture — the user-level core of the Scap API (paper §3, Table 1).
//
// A Capture owns a simulated-or-real NIC and the Scap kernel datapath, and
// dispatches creation/data/termination events to user callbacks, mirroring
// the Scap stub of Figure 1.
//
// Two dispatch modes:
//   * inline (worker_threads == 0, the default): a single ScapKernel;
//     inject() processes the packet and synchronously runs every pending
//     callback on the calling thread. Fully deterministic — the mode benches
//     and tests use.
//   * sharded (worker_threads >= 1): start() builds a KernelShards layer —
//     one ScapKernel per worker core, each with private flow-table slabs,
//     chunk allocator, PPL state and trace ring — and feeds it through
//     lock-free SPSC rings. Symmetric RSS keeps both directions of a flow
//     on one shard, so the per-packet worker path takes no shared lock
//     (paper §4, DESIGN.md §12).
//
// Concurrency model in sharded mode (DESIGN.md §12): producer_mutex_ is the
// outer capability backing the shards' single-producer domain — it
// serializes inject()/inject_batch()/stop() end to end, including any spin
// on a full shard ring. kernel_mutex_ is the inner lock guarding only the
// producer-owned NIC and its tracer; its critical sections are bounded (RSS
// classification, FDIR servicing, stats snapshot), so a worker callback may
// call stats() — which takes kernel_mutex_ alone — without deadlocking
// against a producer waiting out a full ring. Inline mode claims both
// capabilities structurally (a single thread is trivially serialized). The
// clang thread-safety analysis checks all of this on every clang build
// (-Wthread-safety, errors under SCAP_WERROR).
//
// Packet sources: inject() for programmatic feeds, replay_pcap() for traces.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/hotpath.hpp"
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "kernel/module.hpp"
#include "kernel/shard.hpp"
#include "nic/nic.hpp"
#include "packet/packet.hpp"
#include "trace/trace.hpp"

namespace scap {

/// Tunables addressable through scap_set_parameter (paper Table 1).
enum class Parameter {
  kInactivityTimeoutMs,
  kChunkSize,
  kOverlapSize,
  kFlushTimeoutMs,
  kBaseThresholdPercent,  // PPL base threshold, 0-100
  kOverloadCutoff,
  kPriorityLevels,
  kAdaptiveCutoff,     // adaptive overload control: start cutoff (0 = off)
  kAdaptiveMinCutoff,  // adaptive overload control: tightening floor
  kWorkerThreads,      // sharded-mode worker count (0 = inline), pre-start
  kShardRingCapacity,  // per-shard SPSC ring slots, pre-start
  // Sharded-datapath robustness knobs (DESIGN.md §13), all pre-start:
  kRingHighWatermarkPct,  // ring admission high watermark, % of ring capacity
                          // (0 = watermark admission off, spin on full ring)
  kRingLowWatermarkPct,   // ring admission low watermark (hysteresis exit +
                          // PPL ladder base), % of ring capacity
  kStallTimeoutMs,        // worker watchdog deadline, simulated ms (0 = off)
  kStallPolicy,           // on stall: 0 = fatal (assert), 1 = degrade (shed)
};

class Capture;

/// The application's view of a stream inside a callback — the paper's
/// stream_t as handed to handlers. Wraps the event's immutable snapshot and
/// forwards per-stream control calls to the kernel that emitted the event
/// (in sharded mode that is the stream's shard kernel — flow affinity means
/// the stream lives there and nowhere else).
///
/// A StreamView only exists inside a dispatch callback, which always runs
/// with the owning kernel's serial domain held (a worker holds its shard's
/// batch lock; inline mode holds the capability structurally). The control
/// methods assert exactly that before re-entering the kernel — the C API
/// wrappers in capi.cpp cannot carry capability annotations across
/// extern "C".
class StreamView {
 public:
  StreamView(kernel::ScapKernel& k, kernel::Event& ev) : k_(k), ev_(ev) {}

  // --- identity (sd->hdr) --------------------------------------------------
  kernel::StreamId id() const { return ev_.stream.id; }
  const FiveTuple& tuple() const { return ev_.stream.tuple; }
  kernel::Direction direction() const { return ev_.stream.dir; }
  kernel::StreamId opposite_id() const { return ev_.stream.opposite; }

  // --- status (sd->status / sd->error) ------------------------------------
  kernel::StreamStatus status() const { return ev_.stream.status; }
  bool cutoff_exceeded() const { return ev_.stream.cutoff_exceeded; }
  std::uint32_t error() const { return ev_.stream.error_bits; }

  // --- statistics (sd->stats) ----------------------------------------------
  const kernel::StreamStats& stats() const { return ev_.stream.stats; }
  std::uint64_t chunks() const { return ev_.stream.chunks_delivered; }
  Duration processing_time() const { return ev_.stream.processing_time; }

  // --- chunk data (sd->data / sd->data_len) --------------------------------
  std::span<const std::uint8_t> data() const {
    return std::span<const std::uint8_t>(ev_.chunk.data);
  }
  std::size_t data_len() const { return ev_.chunk.data.size(); }
  std::uint32_t chunk_errors() const { return ev_.chunk.errors; }
  std::uint32_t overlap_len() const { return ev_.chunk.overlap_len; }
  std::uint64_t stream_offset() const { return ev_.chunk.stream_offset; }

  // --- per-stream control ---------------------------------------------------
  void discard();                       // scap_discard_stream
  void set_cutoff(std::int64_t bytes);  // scap_set_stream_cutoff
  void set_priority(int priority);      // scap_set_stream_priority
  bool set_parameter(Parameter p, std::int64_t value);
  void keep_chunk();                    // scap_keep_stream_chunk

  // --- packet delivery (scap_next_stream_packet) ---------------------------
  /// Next packet record of this chunk in capture order, or nullptr.
  const kernel::PacketRecord* next_packet();
  /// Payload bytes of a packet record within this chunk.
  std::span<const std::uint8_t> packet_payload(
      const kernel::PacketRecord& rec) const;
  void rewind_packets() { pkt_cursor_ = 0; }

 private:
  friend class Capture;

  /// Dispatch callbacks run with the kernel's serial domain held (see class
  /// comment); the control methods carry that structural fact into the
  /// analysis before re-entering the kernel.
  void assert_serial() const SCAP_ASSERT_CAPABILITY(k_.serial()) {}

  kernel::ScapKernel& k_;
  kernel::Event& ev_;
  std::size_t pkt_cursor_ = 0;
  bool keep_requested_ = false;
};

using StreamHandler = std::function<void(StreamView&)>;

struct CaptureStats {
  kernel::KernelStats kernel;
  std::uint64_t nic_dropped_by_filter = 0;
  std::uint64_t events_dispatched = 0;
  // Tracing (zero/empty when enable_tracing was not called).
  bool traced = false;
  std::uint64_t trace_events_recorded = 0;
  std::uint64_t trace_events_dropped = 0;  // lost to ring wrap
  trace::MetricsRegistry metrics;
};

class Capture {
 public:
  /// scap_create(device, memory_size, reassembly_mode, need_pkts).
  /// `device` is informational (the simulated NIC stands in for hardware).
  Capture(std::string device, std::uint64_t memory_size,
          kernel::ReassemblyMode mode, bool need_pkts);
  ~Capture();

  Capture(const Capture&) = delete;
  Capture& operator=(const Capture&) = delete;

  // --- configuration (before start) ----------------------------------------
  void set_filter(const std::string& bpf);                 // scap_set_filter
  void set_cutoff(std::int64_t bytes);                     // scap_set_cutoff
  void add_cutoff_direction(std::int64_t bytes, kernel::Direction dir);
  void add_cutoff_class(std::int64_t bytes, const std::string& bpf);
  void set_worker_threads(int n);
  bool set_parameter(Parameter p, std::int64_t value);
  void set_use_fdir(bool on) { config_.use_fdir = on; }
  void set_max_streams(std::size_t n) { config_.max_streams = n; }
  void set_overlap_policy(kernel::OverlapPolicy p) {
    config_.defaults.policy = p;
  }
  void set_defragment(bool on) { config_.defragment_ip = on; }
  /// Per-shard SPSC ring slots (sharded mode; rounded up to a power of
  /// two). Also reachable as Parameter::kShardRingCapacity.
  void set_shard_ring_capacity(std::size_t slots) {
    ring_capacity_ = slots > 0 ? slots : 1;
  }

  /// Turn on event tracing (DESIGN.md §10) with one fixed-capacity ring per
  /// core. Must be called before start(): the trace's conservation laws
  /// require the tracer to see every packet. In sharded mode each shard
  /// kernel gets its own single-ring tracer and the capture-level tracer
  /// (tracer()) carries only the producer-side NIC events; stats() presents
  /// the merged totals. With SCAP_TRACE=OFF builds the tracers still exist
  /// but the instrumentation sites compile to nothing, so the rings stay
  /// empty.
  void enable_tracing(std::size_t ring_capacity = 1 << 16);

  /// The capture-level tracer, or nullptr: the full per-core trace in
  /// inline mode, the NIC-event trace in sharded mode (per-shard kernel
  /// traces live on shards()->tracer(i)). The pointee is SCAP_PT_GUARDED_BY
  /// (kernel_mutex_): the producer records NIC events holding that mutex,
  /// so dereference only after stop(). The raw pointer returned here
  /// escapes the analysis — treat it as borrowed under the same rule.
  trace::Tracer* tracer() const { return tracer_.get(); }

  // --- handlers --------------------------------------------------------------
  void dispatch_creation(StreamHandler handler);
  void dispatch_data(StreamHandler handler);
  void dispatch_termination(StreamHandler handler);

  // --- multiple applications (§5.6) -----------------------------------------
  /// Attach an additional application sharing this capture. Stream
  /// reassembly runs once in the kernel; each application receives only the
  /// streams matching its BPF filter, through its own handlers. Requirement
  /// merging is best-effort as in the paper: the kernel keeps a stream if
  /// at least one application wants it. Returns the application index.
  /// When no application is attached, the dispatch_* handlers above act as
  /// the single implicit application receiving everything.
  struct AppHandlers {
    StreamHandler on_created;
    StreamHandler on_data;
    StreamHandler on_terminated;
  };
  int add_application(const std::string& bpf_filter, AppHandlers handlers);

  // --- capture lifecycle ------------------------------------------------------
  /// Instantiate NIC + kernel datapath and (in sharded mode) start the
  /// per-shard workers.
  void start() SCAP_EXCLUDES(kernel_mutex_, producer_mutex_);

  /// Feed one packet (timestamp taken from the packet). Inline mode returns
  /// the NIC/kernel outcome for instrumentation; sharded mode hands the
  /// packet to its shard's ring and returns a default outcome (processing
  /// is asynchronous — totals land in stats()).
  kernel::PacketOutcome inject(const Packet& pkt)
      SCAP_EXCLUDES(kernel_mutex_, producer_mutex_);

  /// Feed a batch of packets: each is received by the NIC in order, then
  /// processed per RSS queue through handle_batch (amortized maintenance
  /// check + flow-lookup prefetch) — inline mode batches per queue itself,
  /// sharded mode lets each shard's ring/pop_batch do it. Event callbacks
  /// run after the whole batch in inline mode; FDIR filters installed while
  /// processing a batch take effect from a later batch. Returns the
  /// aggregate outcome (inline; default-constructed when sharded).
  kernel::PacketOutcome inject_batch(std::span<const Packet> pkts)
      SCAP_EXCLUDES(kernel_mutex_, producer_mutex_);

  /// Replay a pcap file through the capture in inject_batch-sized batches.
  /// Returns packets injected. (inject()/inject_batch() are the *user-API*
  /// boundary, deliberately outside the SCAP_HOT closure: they throw on
  /// misuse and take the documented producer/kernel locks. The purity
  /// lattice anchors kernel-side — ScapKernel::handle_packet/handle_batch
  /// and the KernelShards submit/worker path, DESIGN.md §14.)
  SCAP_COLD std::uint64_t replay_pcap(const std::string& path)
      SCAP_EXCLUDES(kernel_mutex_, producer_mutex_);

  /// Dispatch pending events on the calling thread. Inline mode only (in
  /// sharded mode the workers dispatch as packets arrive; asserted).
  /// Returns events dispatched.
  std::size_t poll() SCAP_EXCLUDES(kernel_mutex_);

  /// Flush all remaining streams, dispatch final events, join workers.
  SCAP_COLD void stop() SCAP_EXCLUDES(kernel_mutex_, producer_mutex_);

  /// Snapshot of kernel + NIC + dispatch counters. Safe to call from a
  /// monitoring thread — and, in sharded mode, from inside a dispatch
  /// callback on a worker — while the capture runs: the sharded path reads
  /// the shards' post-batch snapshots and takes only kernel_mutex_ (bounded
  /// producer critical sections) for the NIC counters.
  CaptureStats stats() const SCAP_EXCLUDES(kernel_mutex_);

  /// Conservation suite over the whole datapath: the single kernel inline,
  /// or every shard plus the shard-aggregated stats in sharded mode.
  /// Returns "" when every law holds.
  std::string check_invariants() SCAP_EXCLUDES(kernel_mutex_);

  /// Direct kernel/NIC access for single-threaded drivers (tests, benches,
  /// chaos_run). These assert the serialization capabilities rather than
  /// take the lock — never call them while workers are live. kernel() is
  /// inline-mode only (sharded captures have one kernel per shard: use
  /// shards()).
  kernel::ScapKernel& kernel() {
    assert_serialized();
    return *kernel_;
  }
  bool has_kernel() const { return kernel_ != nullptr; }
  /// The sharded datapath, or nullptr in inline mode / before start().
  /// KernelShards is internally synchronized; see its own locking notes.
  kernel::KernelShards* shards() { return shards_.get(); }
  nic::Nic& nic() {
    assert_serialized();
    return *nic_;
  }
  const std::string& device() const { return device_; }
  int worker_threads() const { return worker_threads_; }
  bool started() const { return started_; }

 private:
  friend class StreamView;

  /// Claim kernel_mutex_ and the inline kernel's serial domain
  /// structurally: in inline mode a single thread does all processing.
  /// Zero runtime cost — the assertion exists for the thread-safety
  /// analysis. Sharded-mode code paths take the real locks instead.
  void assert_serialized() const
      SCAP_ASSERT_CAPABILITY(kernel_mutex_, kernel_->serial()) {}

  /// Dispatch one event from kernel `k`, recording kEventDispatched on
  /// `tracer` ring `trace_core` when tracing. Runs the user handlers, then
  /// returns the chunk accounting to `k`. Inline mode passes the capture
  /// kernel and tracer; the sharded drain hook passes the shard's.
  void dispatch_event_on(kernel::ScapKernel& k, trace::Tracer* tracer,
                         int trace_core, kernel::Event& ev)
      SCAP_REQUIRES(k.serial());
  void drain_core_inline(int core)
      SCAP_REQUIRES(kernel_mutex_, kernel_->serial());
  /// Counter snapshot under the capability; takes the kernel's SerialGuard
  /// internally once it knows kernel_ is non-null. Inline mode only.
  CaptureStats stats_locked() const SCAP_REQUIRES(kernel_mutex_);
  /// Sharded producer: push in-band maintenance markers for every
  /// expiry_interval boundary crossed up to `now` (before the packets that
  /// carry those timestamps — the ordering that makes shard expiry equal a
  /// single-core replay), and service the FDIR command queue + hardware
  /// filter expiry at the same cadence.
  void advance_ticks(Timestamp now)
      SCAP_REQUIRES(producer_mutex_, shards_->producer());

  std::string device_;
  kernel::KernelConfig config_;
  int worker_threads_ = 0;   // immutable once start() ran (branch selector)
  bool started_ = false;     // driver-thread only
  Timestamp last_ts_;        // driver/producer thread only

  StreamHandler on_created_;
  StreamHandler on_data_;
  StreamHandler on_terminated_;
  std::vector<AppHandlers> apps_;

  // The pointees are shared across threads in sharded mode; the pointers
  // themselves are written once in start() (before any worker exists) and
  // cleared never, so reading the pointer is always safe while every
  // dereference needs kernel_mutex_.
  std::unique_ptr<nic::Nic> nic_ SCAP_PT_GUARDED_BY(kernel_mutex_);
  std::unique_ptr<kernel::ScapKernel> kernel_ SCAP_PT_GUARDED_BY(kernel_mutex_);
  std::unique_ptr<trace::Tracer> tracer_ SCAP_PT_GUARDED_BY(kernel_mutex_);
  std::size_t trace_capacity_ = 0;  // 0 = tracing off
  std::size_t ring_capacity_ = 4096;  // per-shard SPSC ring slots
  std::vector<std::vector<Packet>> batch_buckets_;  // inline per-queue buckets

  // Sharded-mode machinery. shards_ is written once in start() and is
  // internally synchronized (per-shard locks + snapshots), so it carries no
  // guard annotation; the producer-only entry points require its
  // SerialDomain, which producer_mutex_ backs.
  std::unique_ptr<kernel::KernelShards> shards_;

  /// Sharded-datapath robustness policy (DESIGN.md §13), staged by
  /// set_parameter and translated into KernelShards::Options at start()
  /// (percentages become ring slots once the ring capacity is final).
  /// Guarded by producer_mutex_ — the same capability that orders every
  /// producer-side decision these knobs feed.
  struct RingPolicy {
    int high_watermark_pct = 0;  // 0 = watermark admission disabled
    int low_watermark_pct = 0;
    std::int64_t stall_timeout_ms = 0;  // 0 = watchdog disabled
    kernel::StallPolicy stall_policy = kernel::StallPolicy::kDegrade;
  };
  RingPolicy ring_policy_ SCAP_GUARDED_BY(producer_mutex_);
  mutable base::Mutex producer_mutex_;  // outer; never taken under kernel_mutex_
  mutable base::Mutex kernel_mutex_;    // inner; NIC + capture tracer
  Timestamp last_tick_ SCAP_GUARDED_BY(producer_mutex_);
  bool ticks_started_ SCAP_GUARDED_BY(producer_mutex_) = false;
  std::vector<int> rx_queues_ SCAP_GUARDED_BY(producer_mutex_);
  std::atomic<std::uint64_t> events_dispatched_{0};
};

}  // namespace scap
