// scap::Capture — the user-level core of the Scap API (paper §3, Table 1).
//
// A Capture owns a ScapKernel instance (the simulated kernel module) and a
// simulated-or-real NIC, and dispatches creation/data/termination events to
// user callbacks, mirroring the Scap stub of Figure 1.
//
// Two dispatch modes:
//   * inline (worker_threads == 0, the default): inject() processes the
//     packet and synchronously runs every pending callback on the calling
//     thread. Fully deterministic — the mode benches and tests use.
//   * threaded (worker_threads >= 1): start() spawns one worker per core;
//     the kernel enqueues events to the worker owning the stream's core and
//     wakes it, as the paper's per-core kernel/worker pairs do.
//
// Concurrency model (DESIGN.md §11): kernel_mutex_ is the capability that
// guards everything the workers and the producer share — the kernel (and
// through it the flow table, event queues and per-core trace rings), the
// NIC (workers install FDIR filters into it), and events_dispatched_. The
// kernel's own entry points additionally require its SerialDomain; in
// threaded mode a SerialGuard is taken right after the MutexLock, in inline
// mode assert_serialized() claims both capabilities structurally (a single
// thread is trivially serialized). The clang thread-safety analysis checks
// all of this on every clang build (-Wthread-safety, errors under
// SCAP_WERROR).
//
// Packet sources: inject() for programmatic feeds, replay_pcap() for traces.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "kernel/module.hpp"
#include "nic/nic.hpp"
#include "packet/packet.hpp"
#include "trace/trace.hpp"

namespace scap {

/// Tunables addressable through scap_set_parameter (paper Table 1).
enum class Parameter {
  kInactivityTimeoutMs,
  kChunkSize,
  kOverlapSize,
  kFlushTimeoutMs,
  kBaseThresholdPercent,  // PPL base threshold, 0-100
  kOverloadCutoff,
  kPriorityLevels,
  kAdaptiveCutoff,     // adaptive overload control: start cutoff (0 = off)
  kAdaptiveMinCutoff,  // adaptive overload control: tightening floor
};

class Capture;

/// The application's view of a stream inside a callback — the paper's
/// stream_t as handed to handlers. Wraps the event's immutable snapshot and
/// forwards per-stream control calls to the kernel.
///
/// A StreamView only exists inside a dispatch callback, which always runs
/// with the capture's kernel_mutex_ and the kernel's serial domain held
/// (worker threads take both; inline mode holds them structurally). The
/// control methods assert exactly that (Capture::assert_serialized) before
/// re-entering the kernel — the C API wrappers in capi.cpp cannot carry
/// capability annotations across extern "C".
class StreamView {
 public:
  StreamView(Capture& cap, kernel::Event& ev) : cap_(cap), ev_(ev) {}

  // --- identity (sd->hdr) --------------------------------------------------
  kernel::StreamId id() const { return ev_.stream.id; }
  const FiveTuple& tuple() const { return ev_.stream.tuple; }
  kernel::Direction direction() const { return ev_.stream.dir; }
  kernel::StreamId opposite_id() const { return ev_.stream.opposite; }

  // --- status (sd->status / sd->error) ------------------------------------
  kernel::StreamStatus status() const { return ev_.stream.status; }
  bool cutoff_exceeded() const { return ev_.stream.cutoff_exceeded; }
  std::uint32_t error() const { return ev_.stream.error_bits; }

  // --- statistics (sd->stats) ----------------------------------------------
  const kernel::StreamStats& stats() const { return ev_.stream.stats; }
  std::uint64_t chunks() const { return ev_.stream.chunks_delivered; }
  Duration processing_time() const { return ev_.stream.processing_time; }

  // --- chunk data (sd->data / sd->data_len) --------------------------------
  std::span<const std::uint8_t> data() const {
    return std::span<const std::uint8_t>(ev_.chunk.data);
  }
  std::size_t data_len() const { return ev_.chunk.data.size(); }
  std::uint32_t chunk_errors() const { return ev_.chunk.errors; }
  std::uint32_t overlap_len() const { return ev_.chunk.overlap_len; }
  std::uint64_t stream_offset() const { return ev_.chunk.stream_offset; }

  // --- per-stream control ---------------------------------------------------
  void discard();                       // scap_discard_stream
  void set_cutoff(std::int64_t bytes);  // scap_set_stream_cutoff
  void set_priority(int priority);      // scap_set_stream_priority
  bool set_parameter(Parameter p, std::int64_t value);
  void keep_chunk();                    // scap_keep_stream_chunk

  // --- packet delivery (scap_next_stream_packet) ---------------------------
  /// Next packet record of this chunk in capture order, or nullptr.
  const kernel::PacketRecord* next_packet();
  /// Payload bytes of a packet record within this chunk.
  std::span<const std::uint8_t> packet_payload(
      const kernel::PacketRecord& rec) const;
  void rewind_packets() { pkt_cursor_ = 0; }

 private:
  friend class Capture;

  // Dispatch callbacks run with both capabilities held (see class comment);
  // the control methods carry that structural fact into the analysis by
  // calling cap_.assert_serialized() before re-entering the kernel.
  Capture& cap_;
  kernel::Event& ev_;
  std::size_t pkt_cursor_ = 0;
  bool keep_requested_ = false;
};

using StreamHandler = std::function<void(StreamView&)>;

struct CaptureStats {
  kernel::KernelStats kernel;
  std::uint64_t nic_dropped_by_filter = 0;
  std::uint64_t events_dispatched = 0;
  // Tracing (zero/empty when enable_tracing was not called).
  bool traced = false;
  std::uint64_t trace_events_recorded = 0;
  std::uint64_t trace_events_dropped = 0;  // lost to ring wrap
  trace::MetricsRegistry metrics;
};

class Capture {
 public:
  /// scap_create(device, memory_size, reassembly_mode, need_pkts).
  /// `device` is informational (the simulated NIC stands in for hardware).
  Capture(std::string device, std::uint64_t memory_size,
          kernel::ReassemblyMode mode, bool need_pkts);
  ~Capture();

  Capture(const Capture&) = delete;
  Capture& operator=(const Capture&) = delete;

  // --- configuration (before start) ----------------------------------------
  void set_filter(const std::string& bpf);                 // scap_set_filter
  void set_cutoff(std::int64_t bytes);                     // scap_set_cutoff
  void add_cutoff_direction(std::int64_t bytes, kernel::Direction dir);
  void add_cutoff_class(std::int64_t bytes, const std::string& bpf);
  void set_worker_threads(int n);
  bool set_parameter(Parameter p, std::int64_t value);
  void set_use_fdir(bool on) { config_.use_fdir = on; }
  void set_max_streams(std::size_t n) { config_.max_streams = n; }
  void set_overlap_policy(kernel::OverlapPolicy p) {
    config_.defaults.policy = p;
  }
  void set_defragment(bool on) { config_.defragment_ip = on; }

  /// Turn on event tracing (DESIGN.md §10) with one fixed-capacity ring per
  /// core. Must be called before start(): the trace's conservation laws
  /// require the tracer to see every packet. With SCAP_TRACE=OFF builds the
  /// tracer still exists but the instrumentation sites compile to nothing,
  /// so the rings stay empty.
  void enable_tracing(std::size_t ring_capacity = 1 << 16);

  /// The attached tracer, or nullptr. The pointee is SCAP_PT_GUARDED_BY
  /// (kernel_mutex_): workers append to the per-core rings holding that
  /// mutex, so in threaded mode dereference only after stop() has joined
  /// them. The raw pointer returned here escapes the analysis — treat it
  /// as borrowed under the same rule.
  trace::Tracer* tracer() const { return tracer_.get(); }

  // --- handlers --------------------------------------------------------------
  void dispatch_creation(StreamHandler handler);
  void dispatch_data(StreamHandler handler);
  void dispatch_termination(StreamHandler handler);

  // --- multiple applications (§5.6) -----------------------------------------
  /// Attach an additional application sharing this capture. Stream
  /// reassembly runs once in the kernel; each application receives only the
  /// streams matching its BPF filter, through its own handlers. Requirement
  /// merging is best-effort as in the paper: the kernel keeps a stream if
  /// at least one application wants it. Returns the application index.
  /// When no application is attached, the dispatch_* handlers above act as
  /// the single implicit application receiving everything.
  struct AppHandlers {
    StreamHandler on_created;
    StreamHandler on_data;
    StreamHandler on_terminated;
  };
  int add_application(const std::string& bpf_filter, AppHandlers handlers);

  // --- capture lifecycle ------------------------------------------------------
  /// Instantiate NIC + kernel and (in threaded mode) start workers.
  void start() SCAP_EXCLUDES(kernel_mutex_);

  /// Feed one packet (timestamp taken from the packet). Returns the NIC/
  /// kernel outcome for instrumentation.
  kernel::PacketOutcome inject(const Packet& pkt)
      SCAP_EXCLUDES(kernel_mutex_);

  /// Feed a batch of packets: each is received by the NIC in order, then the
  /// kernel processes them per RSS queue through handle_batch (amortized
  /// maintenance check + flow-lookup prefetch). Event callbacks run after
  /// the whole batch in inline mode; FDIR filters installed while processing
  /// a batch take effect from the next batch. Returns the aggregate outcome
  /// (counters summed, verdict = last packet's).
  kernel::PacketOutcome inject_batch(std::span<const Packet> pkts)
      SCAP_EXCLUDES(kernel_mutex_);

  /// Replay a pcap file through the capture in inject_batch-sized batches.
  /// Returns packets injected.
  std::uint64_t replay_pcap(const std::string& path)
      SCAP_EXCLUDES(kernel_mutex_);

  /// Dispatch pending events on the calling thread. Inline mode only (in
  /// threaded mode the workers dispatch; calling poll() while workers are
  /// live is a hard error, asserted). Returns events dispatched.
  std::size_t poll() SCAP_EXCLUDES(kernel_mutex_);

  /// Flush all remaining streams, dispatch final events, join workers.
  void stop() SCAP_EXCLUDES(kernel_mutex_);

  /// Snapshot of kernel + NIC + dispatch counters. Safe to call from a
  /// monitoring thread while workers are live (takes kernel_mutex_ in
  /// threaded mode). Do not call from inside a dispatch callback in
  /// threaded mode: the worker already holds the mutex, and the
  /// SCAP_EXCLUDES annotation makes clang reject such a call path.
  CaptureStats stats() const SCAP_EXCLUDES(kernel_mutex_);

  /// Direct kernel/NIC access for single-threaded drivers (tests, benches,
  /// chaos_run). These assert the serialization capabilities rather than
  /// take the lock — never call them while workers are live.
  kernel::ScapKernel& kernel() {
    assert_serialized();
    return *kernel_;
  }
  bool has_kernel() const { return kernel_ != nullptr; }
  nic::Nic& nic() {
    assert_serialized();
    return *nic_;
  }
  const std::string& device() const { return device_; }
  int worker_threads() const { return worker_threads_; }
  bool started() const { return started_; }

 private:
  friend class StreamView;

  /// Claim kernel_mutex_ and the kernel's serial domain structurally: in
  /// inline mode a single thread does all processing, and after stop() the
  /// workers are joined. Zero runtime cost — the assertion exists for the
  /// thread-safety analysis. Threaded-mode code paths must take the real
  /// MutexLock + SerialGuard instead.
  void assert_serialized() const
      SCAP_ASSERT_CAPABILITY(kernel_mutex_, kernel_->serial()) {}

  void dispatch_event(kernel::Event& ev, int core)
      SCAP_REQUIRES(kernel_mutex_, kernel_->serial());
  void drain_core_inline(int core)
      SCAP_REQUIRES(kernel_mutex_, kernel_->serial());
  /// Counter snapshot under the capability; takes the kernel's SerialGuard
  /// internally once it knows kernel_ is non-null.
  CaptureStats stats_locked() const SCAP_REQUIRES(kernel_mutex_);
  void worker_main(int core, std::stop_token st)
      SCAP_EXCLUDES(kernel_mutex_);
  void wake_worker(int core);

  std::string device_;
  kernel::KernelConfig config_;
  int worker_threads_ = 0;   // immutable once start() ran (branch selector)
  bool started_ = false;     // driver-thread only
  Timestamp last_ts_;

  StreamHandler on_created_;
  StreamHandler on_data_;
  StreamHandler on_terminated_;
  std::vector<AppHandlers> apps_;

  // The pointees are shared with workers; the pointers themselves are
  // written once in start() (before any worker exists) and cleared only
  // after they are joined, so reading the pointer is always safe while
  // every dereference needs kernel_mutex_.
  std::unique_ptr<nic::Nic> nic_ SCAP_PT_GUARDED_BY(kernel_mutex_);
  std::unique_ptr<kernel::ScapKernel> kernel_ SCAP_PT_GUARDED_BY(kernel_mutex_);
  std::unique_ptr<trace::Tracer> tracer_ SCAP_PT_GUARDED_BY(kernel_mutex_);
  std::size_t trace_capacity_ = 0;  // 0 = tracing off
  std::vector<std::vector<Packet>> batch_buckets_;  // per-queue RSS buckets

  // Threaded mode machinery.
  mutable base::Mutex kernel_mutex_;
  std::vector<std::jthread> workers_;
  std::vector<std::unique_ptr<base::CondVar>> wakeups_;
  std::uint64_t events_dispatched_ SCAP_GUARDED_BY(kernel_mutex_) = 0;
};

}  // namespace scap
