// The Scap C API — the exact surface of Table 1 in the paper.
//
// This is a thin C-style veneer over scap::Capture so that the paper's code
// listings (§3.3) compile nearly verbatim. An application:
//
//   scap_t *sc = scap_create("file:trace.pcap", SCAP_DEFAULT,
//                            SCAP_TCP_FAST, 0);
//   scap_set_cutoff(sc, 0);
//   scap_dispatch_termination(sc, stream_close);
//   scap_start_capture(sc);   // replays the device/source to completion
//   scap_close(sc);
//
// Device strings:
//   "file:<path>"  — replay a pcap savefile through the capture
//   anything else  — a named virtual interface; feed it packets with
//                    scap_inject() (used by tests, examples and benches)
#pragma once

#include <cstddef>
#include <cstdint>

namespace scap {
class Capture;
class StreamView;
class Packet;
}  // namespace scap

// Opaque handles (C-style API; C++ linkage).
using scap_t = scap::Capture;
using stream_t = scap::StreamView;

// --- constants ---------------------------------------------------------------

constexpr std::int64_t SCAP_DEFAULT = 512ll * 1024 * 1024;  // memory_size

// Reassembly modes (scap_create).
constexpr int SCAP_TCP_FAST = 0;
constexpr int SCAP_TCP_STRICT = 1;
constexpr int SCAP_NONE = 2;

// Directions (scap_add_cutoff_direction).
constexpr int SCAP_DIR_ORIG = 0;
constexpr int SCAP_DIR_REPLY = 1;

// Parameters (scap_set_parameter / scap_set_stream_parameter).
constexpr int SCAP_PARAM_INACTIVITY_TIMEOUT_MS = 0;
constexpr int SCAP_PARAM_CHUNK_SIZE = 1;
constexpr int SCAP_PARAM_OVERLAP_SIZE = 2;
constexpr int SCAP_PARAM_FLUSH_TIMEOUT_MS = 3;
constexpr int SCAP_PARAM_BASE_THRESHOLD_PCT = 4;
constexpr int SCAP_PARAM_OVERLOAD_CUTOFF = 5;
constexpr int SCAP_PARAM_PRIORITY_LEVELS = 6;
// Adaptive overload control (extension, DESIGN.md §8): value > 0 enables
// the EWMA/hysteresis controller with that starting cutoff; 0 disables.
constexpr int SCAP_PARAM_ADAPTIVE_CUTOFF = 7;
constexpr int SCAP_PARAM_ADAPTIVE_MIN_CUTOFF = 8;
// Multi-core sharded datapath (DESIGN.md §12), pre-start only: worker
// count (0 = inline dispatch) and per-shard SPSC ring slots.
constexpr int SCAP_PARAM_WORKERS = 9;
constexpr int SCAP_PARAM_RING_CAPACITY = 10;
// Overload/failure robustness of the sharded datapath (DESIGN.md §13),
// pre-start only: watermark ring admission as a percentage of ring capacity
// (high = 0 disables admission shedding; low is the hysteresis exit and the
// base of the per-priority shed ladder), the worker-stall watchdog deadline
// in simulated milliseconds (0 disables), and the stall policy (0 = fatal
// assert, 1 = degrade: shed the stalled shard's traffic, keep the rest).
constexpr int SCAP_PARAM_RING_HIGH_WM = 11;
constexpr int SCAP_PARAM_RING_LOW_WM = 12;
constexpr int SCAP_PARAM_STALL_TIMEOUT = 13;
constexpr int SCAP_PARAM_STALL_POLICY = 14;

// Stream status values (scap_stream_status).
constexpr int SCAP_STREAM_ACTIVE = 0;
constexpr int SCAP_STREAM_CLOSED_FIN = 1;
constexpr int SCAP_STREAM_CLOSED_RST = 2;
constexpr int SCAP_STREAM_CLOSED_TIMEOUT = 3;

// --- structs -----------------------------------------------------------------

/// Packet header handed back by scap_next_stream_packet.
struct scap_pkthdr {
  std::int64_t ts_us;      // capture timestamp (microseconds)
  std::uint32_t caplen;    // payload bytes available
  std::uint32_t wirelen;   // payload bytes on the wire
  std::uint32_t seq;       // raw TCP sequence (0 for UDP)
  std::uint8_t tcp_flags;
};

// Fixed-size mirrors of the kernel's per-reason arrays. Sized generously so
// adding a decode-error reason or verdict does not break the C ABI; unused
// tail entries are zero.
constexpr std::size_t SCAP_MAX_PARSE_ERRORS = 16;
constexpr std::size_t SCAP_MAX_VERDICTS = 16;

// Trace export formats (scap_dump_trace).
constexpr int SCAP_TRACE_FORMAT_TEXT = 0;    // stable text (golden files)
constexpr int SCAP_TRACE_FORMAT_CHROME = 1;  // Chrome trace_event JSON
constexpr int SCAP_TRACE_FORMAT_BINARY = 2;  // compact "SCTR" (scap_trace)

/// Log2 histogram mirror (scap_get_stats): bucket 0 holds the value 0,
/// bucket i holds [2^(i-1), 2^i), the last bucket is the overflow
/// catch-all. Matches scap::trace::Log2Histogram::kBuckets (static_assert
/// in capi.cpp).
constexpr std::size_t SCAP_HIST_BUCKETS = 32;
struct scap_hist_t {
  std::uint64_t total;  // == sum of buckets (histogram conservation law)
  std::uint64_t buckets[SCAP_HIST_BUCKETS];
};

/// Aggregate statistics (scap_get_stats).
///
/// Every KernelStats counter is mirrored here — the counter-conservation
/// law (DESIGN.md §9) demands that a packet entering the kernel is visible
/// in exactly one bucket of this struct, and tools/scap_lint.py fails the
/// build if a kernel counter is added without its mirror.
struct scap_stats_t {
  std::uint64_t pkts_seen;
  std::uint64_t bytes_seen;
  std::uint64_t pkts_stored;
  std::uint64_t bytes_stored;
  std::uint64_t pkts_dropped;      // PPL + memory exhaustion
  std::uint64_t bytes_dropped;
  std::uint64_t pkts_discarded;    // cutoff + duplicates + filter
  std::uint64_t pkts_filtered_nic; // dropped at the NIC by FDIR (subzero)
  std::uint64_t streams_created;
  std::uint64_t streams_terminated;
  std::uint64_t streams_evicted;
  std::uint64_t pkts_parse_error;  // undecodable input (parse-error taxonomy)

  // --- full kernel counter mirror -------------------------------------------
  std::uint64_t pkts_control;      // TCP lifecycle / zero-payload datagrams
  std::uint64_t pkts_ignored;      // FIN/RST/pure-ACK of unknown flows
  std::uint64_t pkts_frag_held;    // IP fragments buffered by defrag
  std::uint64_t pkts_buffered;     // held out-of-order by reassembly
  std::uint64_t pkts_filtered;     // rejected by the socket BPF filter
  std::uint64_t pkts_cutoff;
  std::uint64_t bytes_cutoff;
  std::uint64_t pkts_dup;
  std::uint64_t bytes_dup;
  std::uint64_t pkts_ppl_dropped;
  std::uint64_t bytes_ppl_dropped;
  std::uint64_t pkts_nomem_dropped;
  std::uint64_t bytes_nomem_dropped;
  std::uint64_t pkts_norec_dropped;   // stream-record allocation failed
  std::uint64_t pkts_bad_checksum;
  std::uint64_t reasm_alloc_failures;
  std::uint64_t fdir_installs;
  std::uint64_t fdir_reinstalls;
  std::uint64_t fdir_removals;
  std::uint64_t fdir_install_failures;
  std::uint64_t streams_rebalanced;
  // Sharded datapath ring admission + worker watchdog (DESIGN.md §13); zero
  // in inline mode. ring_stall_shed_* is the subset of ring_shed_* caused
  // by a stalled (degraded) shard rather than watermark overload.
  std::uint64_t ring_shed_pkts;
  std::uint64_t ring_shed_bytes;
  std::uint64_t ring_stall_shed_pkts;
  std::uint64_t ring_stall_shed_bytes;
  std::uint64_t ring_occupancy_peak;
  std::uint64_t worker_stalls;
  std::uint64_t streams_active;
  std::uint64_t events_emitted;
  std::uint64_t chunks_delivered;  // data events carrying a chunk

  // Record-pool occupancy.
  std::uint64_t pool_capacity;
  std::uint64_t pool_free;
  std::uint64_t pool_slabs;
  std::uint64_t pool_recycled;

  // Adaptive overload controller.
  std::int64_t ppl_effective_cutoff;   // -1 = no cutoff active
  std::uint64_t ppl_overload_active;   // 0/1
  std::uint64_t ppl_overload_entries;
  std::uint64_t ppl_overload_exits;
  std::uint64_t ppl_tightenings;
  std::uint64_t ppl_relaxations;

  // Per-reason decode failures (sums to pkts_parse_error) and the
  // per-verdict packet histogram (sums to pkts_seen).
  std::uint64_t parse_errors[SCAP_MAX_PARSE_ERRORS];
  std::uint64_t verdicts[SCAP_MAX_VERDICTS];

  // --- tracing (zero unless scap_enable_trace was called) -------------------
  std::uint64_t trace_events_recorded;
  std::uint64_t trace_events_dropped;   // lost to trace-ring wrap
  scap_hist_t hist_stream_size_bytes;   // per terminated stream
  scap_hist_t hist_chunk_latency_us;    // first segment -> delivery
  scap_hist_t hist_flow_probe_len;      // flow-table slots probed per lookup
  scap_hist_t hist_queue_occupancy;     // event-queue depth at maintenance
};

// --- socket lifecycle ----------------------------------------------------------

scap_t* scap_create(const char* device, std::int64_t memory_size,
                    int reassembly_mode, int need_pkts);
void scap_close(scap_t* sc);

// --- configuration --------------------------------------------------------------

int scap_set_filter(scap_t* sc, const char* bpf_filter);
int scap_set_cutoff(scap_t* sc, std::int64_t cutoff);
int scap_add_cutoff_direction(scap_t* sc, std::int64_t cutoff, int direction);
int scap_add_cutoff_class(scap_t* sc, std::int64_t cutoff,
                          const char* bpf_filter);
int scap_set_worker_threads(scap_t* sc, int thread_num);
int scap_set_parameter(scap_t* sc, int parameter, std::int64_t value);

// --- handlers ---------------------------------------------------------------------

int scap_dispatch_creation(scap_t* sc, void (*handler)(stream_t* sd));
int scap_dispatch_data(scap_t* sc, void (*handler)(stream_t* sd));
int scap_dispatch_termination(scap_t* sc, void (*handler)(stream_t* sd));

// --- capture ----------------------------------------------------------------------

/// For "file:<path>" devices: replays the file to completion, dispatching
/// callbacks, then flushes. For virtual devices: prepares the capture;
/// feed it with scap_inject and finish with scap_flush.
int scap_start_capture(scap_t* sc);

/// Feed one packet into a virtual-device capture (extension; the kernel
/// module receives packets from the driver in the real system).
int scap_inject(scap_t* sc, const scap::Packet& pkt);

/// Flush remaining streams and dispatch their final events.
int scap_flush(scap_t* sc);

// --- per-stream operations (valid inside handlers) -----------------------------------

void scap_discard_stream(scap_t* sc, stream_t* sd);
int scap_set_stream_cutoff(scap_t* sc, stream_t* sd, std::int64_t cutoff);
int scap_set_stream_priority(scap_t* sc, stream_t* sd, int priority);
int scap_set_stream_parameter(scap_t* sc, stream_t* sd, int parameter,
                              std::int64_t value);
int scap_keep_stream_chunk(scap_t* sc, stream_t* sd);

/// Stream data access (sd->data / sd->data_len in the paper).
const std::uint8_t* scap_stream_data(const stream_t* sd);
std::size_t scap_stream_data_len(const stream_t* sd);
int scap_stream_status(const stream_t* sd);
std::uint32_t scap_stream_error(const stream_t* sd);

/// Per-packet delivery: returns payload pointer and fills `h`, or nullptr
/// when the chunk has no more packets.
const std::uint8_t* scap_next_stream_packet(stream_t* sd, scap_pkthdr* h);

// --- statistics -------------------------------------------------------------------

int scap_get_stats(scap_t* sc, scap_stats_t* stats);

// --- tracing (extension, DESIGN.md §10) --------------------------------------------

/// Enable per-core event tracing with `ring_capacity` retained events per
/// core. Must be called before scap_start_capture.
int scap_enable_trace(scap_t* sc, std::size_t ring_capacity);

/// Write the captured trace to `path` in one of the SCAP_TRACE_FORMAT_*
/// formats. Call after the capture has quiesced (scap_flush / replay done).
int scap_dump_trace(scap_t* sc, const char* path, int format);
