// The kernel-aware Schema for trace exporters. Lives here — above the
// kernel in the layering — because scap_trace itself must not link the
// kernel (export.hpp explains the function-pointer indirection).
#include "trace/export.hpp"

#include "kernel/events.hpp"
#include "kernel/module.hpp"
#include "kernel/stream.hpp"

namespace scap::trace {
namespace {

const char* verdict_name(std::uint16_t v) {
  if (v >= kernel::kNumVerdicts) return nullptr;
  return kernel::to_string(static_cast<kernel::Verdict>(v));
}

const char* status_name(std::uint16_t s) {
  switch (static_cast<kernel::StreamStatus>(s)) {
    case kernel::StreamStatus::kActive:
      return "active";
    case kernel::StreamStatus::kClosedFin:
      return "closed_fin";
    case kernel::StreamStatus::kClosedRst:
      return "closed_rst";
    case kernel::StreamStatus::kClosedTimeout:
      return "closed_timeout";
  }
  return nullptr;
}

const char* event_name(std::uint16_t e) {
  switch (static_cast<kernel::EventType>(e)) {
    case kernel::EventType::kCreated:
      return "created";
    case kernel::EventType::kData:
      return "data";
    case kernel::EventType::kTerminated:
      return "terminated";
  }
  return nullptr;
}

}  // namespace

const Schema& kernel_schema() {
  static const Schema schema{verdict_name, status_name, event_name};
  return schema;
}

}  // namespace scap::trace
