#include "scap/capture.hpp"

#include <stdexcept>

#include "base/assert.hpp"
#include "packet/pcap.hpp"

namespace scap {

// --- StreamView --------------------------------------------------------------
//
// Control methods run inside dispatch callbacks, which always hold
// kernel_mutex_ and the kernel's serial domain (see class comment in the
// header); cap_.assert_serialized() states that to the analysis.

void StreamView::discard() {
  cap_.assert_serialized();
  cap_.kernel_->discard_stream(id());
}

void StreamView::set_cutoff(std::int64_t bytes) {
  cap_.assert_serialized();
  cap_.kernel_->set_stream_cutoff(id(), bytes);
}

void StreamView::set_priority(int priority) {
  cap_.assert_serialized();
  cap_.kernel_->set_stream_priority(id(), priority);
}

bool StreamView::set_parameter(Parameter p, std::int64_t value) {
  cap_.assert_serialized();
  kernel::StreamRecord* rec = cap_.kernel_->find_stream(id());
  if (rec == nullptr) return false;
  switch (p) {
    case Parameter::kInactivityTimeoutMs:
      rec->params.inactivity_timeout = Duration::from_msec(value);
      return true;
    case Parameter::kChunkSize:
      rec->params.chunk_size = static_cast<std::uint32_t>(value);
      if (rec->reasm) {
        rec->reasm->builder().set_chunk_size(
            static_cast<std::uint32_t>(value));
      }
      return true;
    case Parameter::kOverlapSize:
      rec->params.overlap_size = static_cast<std::uint32_t>(value);
      if (rec->reasm) {
        rec->reasm->builder().set_overlap_size(
            static_cast<std::uint32_t>(value));
      }
      return true;
    case Parameter::kFlushTimeoutMs:
      rec->params.flush_timeout = Duration::from_msec(value);
      return true;
    default:
      return false;  // capture-wide parameters are not per-stream
  }
}

void StreamView::keep_chunk() { keep_requested_ = true; }

const kernel::PacketRecord* StreamView::next_packet() {
  if (pkt_cursor_ >= ev_.chunk.packets.size()) return nullptr;
  return &ev_.chunk.packets[pkt_cursor_++];
}

std::span<const std::uint8_t> StreamView::packet_payload(
    const kernel::PacketRecord& rec) const {
  if (rec.chunk_offset + rec.caplen > ev_.chunk.data.size()) return {};
  return std::span<const std::uint8_t>(ev_.chunk.data)
      .subspan(rec.chunk_offset, rec.caplen);
}

// --- Capture -------------------------------------------------------------------

Capture::Capture(std::string device, std::uint64_t memory_size,
                 kernel::ReassemblyMode mode, bool need_pkts)
    : device_(std::move(device)) {
  config_.memory_size = memory_size;
  config_.defaults.mode = mode;
  config_.need_pkts = need_pkts;
}

Capture::~Capture() {
  if (started_) stop();
}

void Capture::set_filter(const std::string& bpf) {
  config_.filter = BpfProgram::compile(bpf);
}

void Capture::set_cutoff(std::int64_t bytes) {
  config_.defaults.cutoff_bytes = bytes;
}

void Capture::add_cutoff_direction(std::int64_t bytes, kernel::Direction dir) {
  config_.cutoff_per_dir[static_cast<int>(dir)] = bytes;
}

void Capture::add_cutoff_class(std::int64_t bytes, const std::string& bpf) {
  kernel::CutoffClass cls;
  cls.filter = BpfProgram::compile(bpf);
  cls.cutoff_bytes = bytes;
  config_.cutoff_classes.push_back(std::move(cls));
}

void Capture::set_worker_threads(int n) {
  worker_threads_ = n < 0 ? 0 : n;
  config_.num_cores = worker_threads_ > 0 ? worker_threads_ : 1;
}

bool Capture::set_parameter(Parameter p, std::int64_t value) {
  switch (p) {
    case Parameter::kInactivityTimeoutMs:
      config_.defaults.inactivity_timeout = Duration::from_msec(value);
      return true;
    case Parameter::kChunkSize:
      config_.defaults.chunk_size = static_cast<std::uint32_t>(value);
      return true;
    case Parameter::kOverlapSize:
      config_.defaults.overlap_size = static_cast<std::uint32_t>(value);
      return true;
    case Parameter::kFlushTimeoutMs:
      config_.defaults.flush_timeout = Duration::from_msec(value);
      return true;
    case Parameter::kBaseThresholdPercent:
      config_.ppl.base_threshold = static_cast<double>(value) / 100.0;
      return true;
    case Parameter::kOverloadCutoff:
      config_.ppl.overload_cutoff = value;
      return true;
    case Parameter::kPriorityLevels:
      config_.ppl.priority_levels = static_cast<int>(value);
      return true;
    case Parameter::kAdaptiveCutoff:
      // value > 0 enables the EWMA/hysteresis controller with this starting
      // cutoff; 0 disables it (back to the static overload cutoff).
      config_.ppl.adaptive = value > 0;
      if (value > 0) config_.ppl.start_cutoff = value;
      return true;
    case Parameter::kAdaptiveMinCutoff:
      if (value <= 0) return false;
      config_.ppl.min_cutoff = value;
      return true;
  }
  return false;
}

int Capture::add_application(const std::string& bpf_filter,
                             AppHandlers handlers) {
  if (started_) throw std::logic_error("scap: capture already started");
  if (apps_.size() >= 64) throw std::length_error("scap: too many apps");
  config_.app_filters.push_back(BpfProgram::compile(bpf_filter));
  apps_.push_back(std::move(handlers));
  return static_cast<int>(apps_.size() - 1);
}

void Capture::dispatch_creation(StreamHandler handler) {
  on_created_ = std::move(handler);
}
void Capture::dispatch_data(StreamHandler handler) {
  on_data_ = std::move(handler);
}
void Capture::dispatch_termination(StreamHandler handler) {
  on_terminated_ = std::move(handler);
}

void Capture::enable_tracing(std::size_t ring_capacity) {
  if (started_) throw std::logic_error("scap: capture already started");
  trace_capacity_ = ring_capacity > 0 ? ring_capacity : 1;
}

void Capture::start() {
  if (started_) throw std::logic_error("scap: capture already started");
  const int cores = config_.num_cores;
  {
    // No worker exists yet, but construction dereferences the guarded
    // pointers (tracer attach); taking the uncontended lock once per
    // capture keeps the capability story uniform.
    base::MutexLock lock(kernel_mutex_);
    nic_ = std::make_unique<nic::Nic>(cores);
    kernel_ = std::make_unique<kernel::ScapKernel>(config_, nic_.get());
    if (trace_capacity_ > 0) {
      trace::TraceConfig tc;
      tc.ring_capacity = trace_capacity_;
      tc.cores = cores;
      tracer_ = std::make_unique<trace::Tracer>(tc);
      base::SerialGuard serial(kernel_->serial());
      kernel_->set_tracer(tracer_.get());
      nic_->set_tracer(tracer_.get());
    }
  }
  started_ = true;
  if (worker_threads_ > 0) {
    wakeups_.clear();
    for (int i = 0; i < worker_threads_; ++i) {
      wakeups_.push_back(std::make_unique<base::CondVar>());
    }
    for (int i = 0; i < worker_threads_; ++i) {
      workers_.emplace_back(
          [this, i](std::stop_token st) { worker_main(i, st); });
    }
  }
}

void Capture::dispatch_event(kernel::Event& ev, int core) {
#if defined(SCAP_ENABLE_TRACE)
  if (tracer_ != nullptr) {
    // Dispatch is traced at the stream's last packet time — the simulated
    // clock of the event's cause — so the trace stays a pure function of
    // the input, independent of worker scheduling.
    const Timestamp ts =
        ev.stream.stats.last_packet.ns() >= ev.stream.stats.first_packet.ns()
            ? ev.stream.stats.last_packet
            : ev.stream.stats.first_packet;
    tracer_->record(trace::TraceEventType::kEventDispatched, core, ts,
                    ev.stream.id, static_cast<std::uint16_t>(ev.type),
                    static_cast<std::uint32_t>(ev.chunk.data.size()));
  }
#else
  (void)core;
#endif
  StreamView view(*this, ev);
  if (apps_.empty()) {
    StreamHandler* handler = nullptr;
    switch (ev.type) {
      case kernel::EventType::kCreated: handler = &on_created_; break;
      case kernel::EventType::kData: handler = &on_data_; break;
      case kernel::EventType::kTerminated: handler = &on_terminated_; break;
    }
    if (handler && *handler) (*handler)(view);
  } else {
    // Shared capture: every application whose filter matched this stream
    // sees the same reassembled chunk — one kernel reassembly, N readers.
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      if ((ev.app_mask & (1ULL << i)) == 0) continue;
      StreamHandler* handler = nullptr;
      switch (ev.type) {
        case kernel::EventType::kCreated:
          handler = &apps_[i].on_created;
          break;
        case kernel::EventType::kData:
          handler = &apps_[i].on_data;
          break;
        case kernel::EventType::kTerminated:
          handler = &apps_[i].on_terminated;
          break;
      }
      view.rewind_packets();
      if (handler && *handler) (*handler)(view);
    }
  }
  ++events_dispatched_;
  if (ev.type == kernel::EventType::kData) {
    if (view.keep_requested_) {
      // scap_keep_stream_chunk: hand the chunk (and its accounting) back.
      const std::uint32_t alloc = ev.chunk_alloc;
      if (!kernel_->keep_stream_chunk(ev.stream.id, std::move(ev.chunk),
                                      alloc)) {
        kernel_->release_chunk(ev);  // stream vanished: just release
      }
      return;
    }
  }
  kernel_->release_chunk(ev);
}

void Capture::drain_core_inline(int core) {
  auto& q = kernel_->events(core);
  while (!q.empty()) {
    kernel::Event ev = q.pop();
    dispatch_event(ev, core);
  }
}

std::size_t Capture::poll() {
  // In threaded mode the workers own dispatch; polling from outside would
  // race them. stop() polls only after the workers are joined and cleared.
  SCAP_ASSERT(workers_.empty(), "poll() is inline-mode only");
  assert_serialized();
  const std::uint64_t before = events_dispatched_;
  for (int c = 0; c < config_.num_cores; ++c) drain_core_inline(c);
  return static_cast<std::size_t>(events_dispatched_ - before);
}

void Capture::wake_worker(int core) {
  if (core < static_cast<int>(wakeups_.size())) wakeups_[core]->notify_one();
}

void Capture::worker_main(int core, std::stop_token st) {
  base::MutexLock lock(kernel_mutex_);
  // Holding kernel_mutex_ is what grants the serial domain in threaded
  // mode: every producer-side kernel call takes the same pair.
  base::SerialGuard serial(kernel_->serial());
  auto& q = kernel_->events(core);
  while (!st.stop_requested() || !q.empty()) {
    if (q.empty()) {
      wakeups_[static_cast<std::size_t>(core)]->wait(
          lock, st, [&] { return !q.empty(); });
      if (q.empty()) continue;  // stop requested with empty queue
    }
    kernel::Event ev = q.pop();
    // Run the user callback outside the kernel lock unless it needs to call
    // back in — setters re-lock via recursive pattern is complex; keep the
    // lock (the paper serializes per core; we serialize per capture).
    dispatch_event(ev, core);
  }
}

kernel::PacketOutcome Capture::inject(const Packet& pkt) {
  if (!started_) throw std::logic_error("scap: capture not started");
  last_ts_ = pkt.timestamp();
  if (worker_threads_ > 0) {
    // The NIC is shared state in threaded mode: the kernel installs FDIR
    // filters into it under kernel_mutex_ (from worker callbacks), so the
    // producer's receive path must hold the same lock.
    kernel::PacketOutcome out;
    int queue;
    {
      base::MutexLock lock(kernel_mutex_);
      base::SerialGuard serial(kernel_->serial());
      const nic::RxResult rx = nic_->receive(pkt);
      if (rx.disposition == nic::RxDisposition::kDroppedByFilter) {
        return kernel::PacketOutcome{};  // subzero: never reached the host
      }
      out = kernel_->handle_packet(pkt, pkt.timestamp(), rx.queue);
      queue = rx.queue;
    }
    wake_worker(queue);
    return out;
  }
  assert_serialized();
  const nic::RxResult rx = nic_->receive(pkt);
  if (rx.disposition == nic::RxDisposition::kDroppedByFilter) {
    return kernel::PacketOutcome{};  // subzero: never reached the host
  }
  kernel::PacketOutcome out =
      kernel_->handle_packet(pkt, pkt.timestamp(), rx.queue);
  drain_core_inline(rx.queue);
  return out;
}

namespace {
void accumulate(kernel::PacketOutcome& total,
                const kernel::PacketOutcome& out) {
  total.verdict = out.verdict;
  total.stored_bytes += out.stored_bytes;
  total.events += out.events;
  total.created_stream = total.created_stream || out.created_stream;
  total.terminated_stream = total.terminated_stream || out.terminated_stream;
  total.fdir_updates += out.fdir_updates;
}
}  // namespace

kernel::PacketOutcome Capture::inject_batch(std::span<const Packet> pkts) {
  if (!started_) throw std::logic_error("scap: capture not started");
  kernel::PacketOutcome total;
  if (pkts.empty()) return total;
  last_ts_ = pkts.back().timestamp();
  // The NIC receives every packet, in order, before the kernel runs; the
  // RSS/FDIR verdict buckets each packet to its queue so the kernel sees one
  // contiguous batch per core.
  if (batch_buckets_.size() < static_cast<std::size_t>(config_.num_cores)) {
    batch_buckets_.resize(static_cast<std::size_t>(config_.num_cores));
  }
  if (worker_threads_ > 0) {
    {
      // Same shared-NIC rule as inject(): classification must not race with
      // worker-driven FDIR updates.
      base::MutexLock lock(kernel_mutex_);
      for (const Packet& pkt : pkts) {
        const nic::RxResult rx = nic_->receive(pkt);
        if (rx.disposition == nic::RxDisposition::kDroppedByFilter) continue;
        batch_buckets_[static_cast<std::size_t>(rx.queue)].push_back(pkt);
      }
    }
    for (std::size_t q = 0; q < batch_buckets_.size(); ++q) {
      auto& bucket = batch_buckets_[q];
      if (bucket.empty()) continue;
      const int core = static_cast<int>(q);
      {
        base::MutexLock lock(kernel_mutex_);
        base::SerialGuard serial(kernel_->serial());
        accumulate(total, kernel_->handle_batch(
                              bucket, bucket.front().timestamp(), core));
      }
      wake_worker(core);
      bucket.clear();
    }
    return total;
  }
  assert_serialized();
  for (const Packet& pkt : pkts) {
    const nic::RxResult rx = nic_->receive(pkt);
    if (rx.disposition == nic::RxDisposition::kDroppedByFilter) continue;
    batch_buckets_[static_cast<std::size_t>(rx.queue)].push_back(pkt);
  }
  for (std::size_t q = 0; q < batch_buckets_.size(); ++q) {
    auto& bucket = batch_buckets_[q];
    if (bucket.empty()) continue;
    const int core = static_cast<int>(q);
    accumulate(total,
               kernel_->handle_batch(bucket, bucket.front().timestamp(), core));
    drain_core_inline(core);
    bucket.clear();
  }
  return total;
}

std::uint64_t Capture::replay_pcap(const std::string& path) {
  constexpr std::size_t kBatch = 32;
  PcapReader reader(path);
  std::uint64_t n = 0;
  std::vector<Packet> batch;
  batch.reserve(kBatch);
  while (auto pkt = reader.next()) {
    batch.push_back(std::move(*pkt));
    ++n;
    if (batch.size() == kBatch) {
      inject_batch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) inject_batch(batch);
  return n;
}

void Capture::stop() {
  if (!started_) return;
  if (worker_threads_ > 0) {
    {
      base::MutexLock lock(kernel_mutex_);
      base::SerialGuard serial(kernel_->serial());
      kernel_->terminate_all(last_ts_);
    }
    for (auto& w : workers_) w.request_stop();
    for (auto& cv : wakeups_) cv->notify_all();
    workers_.clear();  // joins
    wakeups_.clear();
    // Drain anything the workers left behind (they are joined: poll's
    // inline-only assertion holds).
    poll();
    started_ = false;
    return;
  }
  assert_serialized();
  kernel_->terminate_all(last_ts_);
  for (int c = 0; c < config_.num_cores; ++c) drain_core_inline(c);
  started_ = false;
}

CaptureStats Capture::stats() const {
  // Branch on worker_threads_, which is immutable once the capture runs —
  // the previous workers_.empty() check read the vector unsynchronized
  // while stop() mutated it (caught by the thread-safety analysis during
  // annotation; ConcurrencySmoke.StatsInsideInlineCallback covers the
  // inline side).
  if (worker_threads_ > 0) {
    base::MutexLock lock(kernel_mutex_);
    return stats_locked();
  }
  assert_serialized();
  return stats_locked();
}

CaptureStats Capture::stats_locked() const {
  CaptureStats s;
  if (kernel_) {
    base::SerialGuard serial(kernel_->serial());
    s.kernel = kernel_->stats();
  }
  if (nic_) s.nic_dropped_by_filter = nic_->stats().dropped_by_filter;
  s.events_dispatched = events_dispatched_;
  if (tracer_) {
    s.traced = true;
    s.trace_events_recorded = tracer_->recorded();
    s.trace_events_dropped = tracer_->dropped();
    s.metrics = tracer_->metrics();
  }
  return s;
}

}  // namespace scap
