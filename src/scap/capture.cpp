#include "scap/capture.hpp"

#include <stdexcept>
#include <utility>

#include "base/assert.hpp"
#include "packet/pcap.hpp"

namespace scap {

// --- StreamView --------------------------------------------------------------
//
// Control methods run inside dispatch callbacks, which always hold the
// owning kernel's serial domain (see class comment in the header);
// assert_serial() states that to the analysis.

void StreamView::discard() {
  assert_serial();
  k_.discard_stream(id());
}

void StreamView::set_cutoff(std::int64_t bytes) {
  assert_serial();
  k_.set_stream_cutoff(id(), bytes);
}

void StreamView::set_priority(int priority) {
  assert_serial();
  k_.set_stream_priority(id(), priority);
}

bool StreamView::set_parameter(Parameter p, std::int64_t value) {
  assert_serial();
  kernel::StreamRecord* rec = k_.find_stream(id());
  if (rec == nullptr) return false;
  switch (p) {
    case Parameter::kInactivityTimeoutMs:
      rec->params.inactivity_timeout = Duration::from_msec(value);
      return true;
    case Parameter::kChunkSize:
      rec->params.chunk_size = static_cast<std::uint32_t>(value);
      if (rec->reasm) {
        rec->reasm->builder().set_chunk_size(
            static_cast<std::uint32_t>(value));
      }
      return true;
    case Parameter::kOverlapSize:
      rec->params.overlap_size = static_cast<std::uint32_t>(value);
      if (rec->reasm) {
        rec->reasm->builder().set_overlap_size(
            static_cast<std::uint32_t>(value));
      }
      return true;
    case Parameter::kFlushTimeoutMs:
      rec->params.flush_timeout = Duration::from_msec(value);
      return true;
    default:
      return false;  // capture-wide parameters are not per-stream
  }
}

void StreamView::keep_chunk() { keep_requested_ = true; }

const kernel::PacketRecord* StreamView::next_packet() {
  if (pkt_cursor_ >= ev_.chunk.packets.size()) return nullptr;
  return &ev_.chunk.packets[pkt_cursor_++];
}

std::span<const std::uint8_t> StreamView::packet_payload(
    const kernel::PacketRecord& rec) const {
  if (rec.chunk_offset + rec.caplen > ev_.chunk.data.size()) return {};
  return std::span<const std::uint8_t>(ev_.chunk.data)
      .subspan(rec.chunk_offset, rec.caplen);
}

// --- Capture -------------------------------------------------------------------

Capture::Capture(std::string device, std::uint64_t memory_size,
                 kernel::ReassemblyMode mode, bool need_pkts)
    : device_(std::move(device)) {
  config_.memory_size = memory_size;
  config_.defaults.mode = mode;
  config_.need_pkts = need_pkts;
}

Capture::~Capture() {
  if (started_) stop();
}

void Capture::set_filter(const std::string& bpf) {
  config_.filter = BpfProgram::compile(bpf);
}

void Capture::set_cutoff(std::int64_t bytes) {
  config_.defaults.cutoff_bytes = bytes;
}

void Capture::add_cutoff_direction(std::int64_t bytes, kernel::Direction dir) {
  config_.cutoff_per_dir[static_cast<int>(dir)] = bytes;
}

void Capture::add_cutoff_class(std::int64_t bytes, const std::string& bpf) {
  kernel::CutoffClass cls;
  cls.filter = BpfProgram::compile(bpf);
  cls.cutoff_bytes = bytes;
  config_.cutoff_classes.push_back(std::move(cls));
}

void Capture::set_worker_threads(int n) {
  worker_threads_ = n < 0 ? 0 : n;
  config_.num_cores = worker_threads_ > 0 ? worker_threads_ : 1;
}

bool Capture::set_parameter(Parameter p, std::int64_t value) {
  switch (p) {
    case Parameter::kInactivityTimeoutMs:
      config_.defaults.inactivity_timeout = Duration::from_msec(value);
      return true;
    case Parameter::kChunkSize:
      config_.defaults.chunk_size = static_cast<std::uint32_t>(value);
      return true;
    case Parameter::kOverlapSize:
      config_.defaults.overlap_size = static_cast<std::uint32_t>(value);
      return true;
    case Parameter::kFlushTimeoutMs:
      config_.defaults.flush_timeout = Duration::from_msec(value);
      return true;
    case Parameter::kBaseThresholdPercent:
      config_.ppl.base_threshold = static_cast<double>(value) / 100.0;
      return true;
    case Parameter::kOverloadCutoff:
      config_.ppl.overload_cutoff = value;
      return true;
    case Parameter::kPriorityLevels:
      config_.ppl.priority_levels = static_cast<int>(value);
      return true;
    case Parameter::kAdaptiveCutoff:
      // value > 0 enables the EWMA/hysteresis controller with this starting
      // cutoff; 0 disables it (back to the static overload cutoff).
      config_.ppl.adaptive = value > 0;
      if (value > 0) config_.ppl.start_cutoff = value;
      return true;
    case Parameter::kAdaptiveMinCutoff:
      if (value <= 0) return false;
      config_.ppl.min_cutoff = value;
      return true;
    case Parameter::kWorkerThreads:
      if (started_ || value < 0) return false;
      set_worker_threads(static_cast<int>(value));
      return true;
    case Parameter::kShardRingCapacity:
      if (started_ || value <= 0) return false;
      set_shard_ring_capacity(static_cast<std::size_t>(value));
      return true;
    case Parameter::kRingHighWatermarkPct:
      if (started_ || value < 0 || value > 100) return false;
      {
        base::MutexLock lock(producer_mutex_);
        ring_policy_.high_watermark_pct = static_cast<int>(value);
      }
      return true;
    case Parameter::kRingLowWatermarkPct:
      if (started_ || value < 0 || value > 100) return false;
      {
        base::MutexLock lock(producer_mutex_);
        ring_policy_.low_watermark_pct = static_cast<int>(value);
      }
      return true;
    case Parameter::kStallTimeoutMs:
      if (started_ || value < 0) return false;
      {
        base::MutexLock lock(producer_mutex_);
        ring_policy_.stall_timeout_ms = value;
      }
      return true;
    case Parameter::kStallPolicy:
      if (started_ || (value != 0 && value != 1)) return false;
      {
        base::MutexLock lock(producer_mutex_);
        ring_policy_.stall_policy = value == 0 ? kernel::StallPolicy::kFatal
                                               : kernel::StallPolicy::kDegrade;
      }
      return true;
  }
  return false;
}

int Capture::add_application(const std::string& bpf_filter,
                             AppHandlers handlers) {
  if (started_) throw std::logic_error("scap: capture already started");
  if (apps_.size() >= 64) throw std::length_error("scap: too many apps");
  config_.app_filters.push_back(BpfProgram::compile(bpf_filter));
  apps_.push_back(std::move(handlers));
  return static_cast<int>(apps_.size() - 1);
}

void Capture::dispatch_creation(StreamHandler handler) {
  on_created_ = std::move(handler);
}
void Capture::dispatch_data(StreamHandler handler) {
  on_data_ = std::move(handler);
}
void Capture::dispatch_termination(StreamHandler handler) {
  on_terminated_ = std::move(handler);
}

void Capture::enable_tracing(std::size_t ring_capacity) {
  if (started_) throw std::logic_error("scap: capture already started");
  trace_capacity_ = ring_capacity > 0 ? ring_capacity : 1;
}

void Capture::start() {
  if (started_) throw std::logic_error("scap: capture already started");
  if (worker_threads_ > 0) {
    {
      // The NIC (and its tracer) stay producer-owned: one RSS queue per
      // shard, same symmetric key as the shards' own steering, so a
      // packet's RX queue *is* its shard index.
      base::MutexLock lock(kernel_mutex_);
      nic_ = std::make_unique<nic::Nic>(worker_threads_);
      if (trace_capacity_ > 0) {
        trace::TraceConfig tc;
        tc.ring_capacity = trace_capacity_;
        tc.cores = worker_threads_;
        tracer_ = std::make_unique<trace::Tracer>(tc);
        nic_->set_tracer(tracer_.get());
      }
    }
    kernel::KernelShards::Options opts;
    opts.ring_capacity = ring_capacity_;
    {
      // Translate the staged percentages into slots of the ring's real
      // (power-of-two-rounded) capacity, so "high = 100%" means exactly
      // full and the hysteresis band is what the caller asked for.
      base::MutexLock plock(producer_mutex_);
      if (ring_policy_.high_watermark_pct > 0) {
        std::size_t cap = 1;
        while (cap < ring_capacity_) cap <<= 1;
        std::size_t high =
            cap * static_cast<std::size_t>(ring_policy_.high_watermark_pct) /
            100;
        if (high == 0) high = 1;
        std::size_t low =
            cap * static_cast<std::size_t>(ring_policy_.low_watermark_pct) /
            100;
        if (low > high) low = high;
        opts.ring_high_watermark = high;
        opts.ring_low_watermark = low;
      }
      opts.stall_timeout = Duration::from_msec(ring_policy_.stall_timeout_ms);
      opts.stall_policy = ring_policy_.stall_policy;
    }
    if (trace_capacity_ > 0) {
      trace::TraceConfig tc;
      tc.ring_capacity = trace_capacity_;
      opts.trace = tc;
    }
    shards_ = std::make_unique<kernel::KernelShards>(config_, worker_threads_,
                                                     opts);
    {
      base::MutexLock plock(producer_mutex_);
      base::SerialGuard prod(shards_->producer());
      shards_->start([this](int shard, kernel::ScapKernel& k) {
        // Worker-side event drain: the shard kernel is serialized by the
        // caller (batch lock); re-assert it for the analysis and dispatch
        // onto the shard's own tracer ring.
        base::SerialGuard serial(k.serial());
        auto& q = k.events(0);
        while (!q.empty()) {
          kernel::Event ev = q.pop();
          dispatch_event_on(k, shards_->tracer(shard), 0, ev);
        }
      });
    }
    started_ = true;
    return;
  }
  const int cores = config_.num_cores;
  {
    // No other thread exists in inline mode, but construction dereferences
    // the guarded pointers (tracer attach); taking the uncontended lock
    // once per capture keeps the capability story uniform.
    base::MutexLock lock(kernel_mutex_);
    nic_ = std::make_unique<nic::Nic>(cores);
    kernel_ = std::make_unique<kernel::ScapKernel>(config_, nic_.get());
    if (trace_capacity_ > 0) {
      trace::TraceConfig tc;
      tc.ring_capacity = trace_capacity_;
      tc.cores = cores;
      tracer_ = std::make_unique<trace::Tracer>(tc);
      base::SerialGuard serial(kernel_->serial());
      kernel_->set_tracer(tracer_.get());
      nic_->set_tracer(tracer_.get());
    }
  }
  started_ = true;
}

void Capture::dispatch_event_on(kernel::ScapKernel& k, trace::Tracer* tracer,
                                int trace_core, kernel::Event& ev) {
#if defined(SCAP_ENABLE_TRACE)
  if (tracer != nullptr) {
    // Dispatch is traced at the stream's last packet time — the simulated
    // clock of the event's cause — so the trace stays a pure function of
    // the input, independent of worker scheduling.
    const Timestamp ts =
        ev.stream.stats.last_packet.ns() >= ev.stream.stats.first_packet.ns()
            ? ev.stream.stats.last_packet
            : ev.stream.stats.first_packet;
    tracer->record(trace::TraceEventType::kEventDispatched, trace_core, ts,
                   ev.stream.id, static_cast<std::uint16_t>(ev.type),
                   static_cast<std::uint32_t>(ev.chunk.data.size()));
  }
#else
  (void)tracer;
  (void)trace_core;
#endif
  StreamView view(k, ev);
  if (apps_.empty()) {
    StreamHandler* handler = nullptr;
    switch (ev.type) {
      case kernel::EventType::kCreated: handler = &on_created_; break;
      case kernel::EventType::kData: handler = &on_data_; break;
      case kernel::EventType::kTerminated: handler = &on_terminated_; break;
    }
    if (handler && *handler) (*handler)(view);
  } else {
    // Shared capture: every application whose filter matched this stream
    // sees the same reassembled chunk — one kernel reassembly, N readers.
    for (std::size_t i = 0; i < apps_.size(); ++i) {
      if ((ev.app_mask & (1ULL << i)) == 0) continue;
      StreamHandler* handler = nullptr;
      switch (ev.type) {
        case kernel::EventType::kCreated:
          handler = &apps_[i].on_created;
          break;
        case kernel::EventType::kData:
          handler = &apps_[i].on_data;
          break;
        case kernel::EventType::kTerminated:
          handler = &apps_[i].on_terminated;
          break;
      }
      view.rewind_packets();
      if (handler && *handler) (*handler)(view);
    }
  }
  events_dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (ev.type == kernel::EventType::kData) {
    if (view.keep_requested_) {
      // scap_keep_stream_chunk: hand the chunk (and its accounting) back.
      const std::uint32_t alloc = ev.chunk_alloc;
      if (!k.keep_stream_chunk(ev.stream.id, std::move(ev.chunk), alloc)) {
        k.release_chunk(ev);  // stream vanished: just release
      }
      return;
    }
  }
  k.release_chunk(ev);
}

void Capture::drain_core_inline(int core) {
  auto& q = kernel_->events(core);
  while (!q.empty()) {
    kernel::Event ev = q.pop();
    dispatch_event_on(*kernel_, tracer_.get(), core, ev);
  }
}

std::size_t Capture::poll() {
  // In sharded mode the workers own dispatch; polling from outside would
  // race them (stop() drains the final events itself).
  SCAP_ASSERT(worker_threads_ == 0, "poll() is inline-mode only");
  assert_serialized();
  const std::uint64_t before =
      events_dispatched_.load(std::memory_order_relaxed);
  for (int c = 0; c < config_.num_cores; ++c) drain_core_inline(c);
  return static_cast<std::size_t>(
      events_dispatched_.load(std::memory_order_relaxed) - before);
}

void Capture::advance_ticks(Timestamp now) {
  bool ticked = false;
  if (!ticks_started_) {
    // Anchor the tick grid at the first packet's timestamp and push the
    // first marker immediately: every shard's last-maintenance clock is
    // then a pure function of the input timestamps, whatever the shard
    // count — the property the bit-for-bit conservation tests rely on.
    ticks_started_ = true;
    last_tick_ = now;
    shards_->tick_all(now);
    ticked = true;
  }
  const Duration interval = config_.expiry_interval;
  while (interval.ns() > 0 && now.ns() - last_tick_.ns() >= interval.ns()) {
    last_tick_ = last_tick_ + interval;
    shards_->tick_all(last_tick_);
    ticked = true;
  }
  if (ticked) {
    // Same cadence for the FDIR crossing: drain worker-enqueued commands
    // into the NIC and expire hardware filters.
    base::MutexLock lock(kernel_mutex_);
    shards_->service_fdir(*nic_, last_tick_);
  }
}

kernel::PacketOutcome Capture::inject(const Packet& pkt) {
  if (!started_) throw std::logic_error("scap: capture not started");
  if (worker_threads_ > 0) {
    base::MutexLock plock(producer_mutex_);
    base::SerialGuard prod(shards_->producer());
    last_ts_ = pkt.timestamp();
    advance_ticks(pkt.timestamp());
    nic::RxResult rx;
    {
      base::MutexLock lock(kernel_mutex_);
      rx = nic_->receive(pkt);
    }
    if (rx.disposition == nic::RxDisposition::kDroppedByFilter) {
      return kernel::PacketOutcome{};  // subzero: never reached the host
    }
    // RX queue == shard index (same symmetric RSS on both sides).
    shards_->submit_to(rx.queue, pkt);
    return kernel::PacketOutcome{};  // async: outcome lands in stats()
  }
  assert_serialized();
  last_ts_ = pkt.timestamp();
  const nic::RxResult rx = nic_->receive(pkt);
  if (rx.disposition == nic::RxDisposition::kDroppedByFilter) {
    return kernel::PacketOutcome{};  // subzero: never reached the host
  }
  kernel::PacketOutcome out =
      kernel_->handle_packet(pkt, pkt.timestamp(), rx.queue);
  drain_core_inline(rx.queue);
  return out;
}

namespace {
void accumulate(kernel::PacketOutcome& total,
                const kernel::PacketOutcome& out) {
  total.verdict = out.verdict;
  total.stored_bytes += out.stored_bytes;
  total.events += out.events;
  total.created_stream = total.created_stream || out.created_stream;
  total.terminated_stream = total.terminated_stream || out.terminated_stream;
  total.fdir_updates += out.fdir_updates;
}
}  // namespace

kernel::PacketOutcome Capture::inject_batch(std::span<const Packet> pkts) {
  if (!started_) throw std::logic_error("scap: capture not started");
  kernel::PacketOutcome total;
  if (pkts.empty()) return total;
  if (worker_threads_ > 0) {
    base::MutexLock plock(producer_mutex_);
    base::SerialGuard prod(shards_->producer());
    last_ts_ = pkts.back().timestamp();
    // Classify the whole batch under one bounded NIC critical section,
    // then hand off ring-side — never holding kernel_mutex_ across a
    // possible spin on a full shard ring.
    rx_queues_.clear();
    {
      base::MutexLock lock(kernel_mutex_);
      for (const Packet& pkt : pkts) {
        const nic::RxResult rx = nic_->receive(pkt);
        rx_queues_.push_back(
            rx.disposition == nic::RxDisposition::kDroppedByFilter
                ? -1
                : rx.queue);
      }
    }
    // Submit in arrival order (ticks interleave at the exact timestamp
    // boundaries); per-shard batching happens on the ring's consumer side.
    for (std::size_t i = 0; i < pkts.size(); ++i) {
      if (rx_queues_[i] < 0) continue;
      advance_ticks(pkts[i].timestamp());
      shards_->submit_to(rx_queues_[i], pkts[i]);
    }
    return total;  // async: outcome lands in stats()
  }
  assert_serialized();
  last_ts_ = pkts.back().timestamp();
  // The NIC receives every packet, in order, before the kernel runs; the
  // RSS/FDIR verdict buckets each packet to its queue so the kernel sees one
  // contiguous batch per core.
  if (batch_buckets_.size() < static_cast<std::size_t>(config_.num_cores)) {
    batch_buckets_.resize(static_cast<std::size_t>(config_.num_cores));
  }
  for (const Packet& pkt : pkts) {
    const nic::RxResult rx = nic_->receive(pkt);
    if (rx.disposition == nic::RxDisposition::kDroppedByFilter) continue;
    batch_buckets_[static_cast<std::size_t>(rx.queue)].push_back(pkt);
  }
  for (std::size_t q = 0; q < batch_buckets_.size(); ++q) {
    auto& bucket = batch_buckets_[q];
    if (bucket.empty()) continue;
    const int core = static_cast<int>(q);
    accumulate(total,
               kernel_->handle_batch(bucket, bucket.front().timestamp(), core));
    drain_core_inline(core);
    bucket.clear();
  }
  return total;
}

std::uint64_t Capture::replay_pcap(const std::string& path) {
  constexpr std::size_t kBatch = 32;
  PcapReader reader(path);
  std::uint64_t n = 0;
  std::vector<Packet> batch;
  batch.reserve(kBatch);
  while (auto pkt = reader.next()) {
    batch.push_back(std::move(*pkt));
    ++n;
    if (batch.size() == kBatch) {
      inject_batch(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) inject_batch(batch);
  return n;
}

void Capture::stop() {
  if (!started_) return;
  if (worker_threads_ > 0) {
    base::MutexLock plock(producer_mutex_);
    base::SerialGuard prod(shards_->producer());
    // Flush + join workers, terminate every shard's remaining streams and
    // run the final event drain (on this thread, via the drain hook).
    shards_->stop(last_ts_);
    {
      // Apply the termination-time FDIR removals the shards enqueued.
      base::MutexLock lock(kernel_mutex_);
      shards_->service_fdir(*nic_, last_ts_);
    }
    started_ = false;
    return;
  }
  assert_serialized();
  kernel_->terminate_all(last_ts_);
  for (int c = 0; c < config_.num_cores; ++c) drain_core_inline(c);
  started_ = false;
}

std::string Capture::check_invariants() {
  if (worker_threads_ > 0) {
    return shards_ != nullptr ? shards_->check_invariants() : std::string();
  }
  assert_serialized();
  return kernel_ != nullptr ? kernel_->check_invariants() : std::string();
}

CaptureStats Capture::stats() const {
  // Branch on worker_threads_, which is immutable once the capture runs —
  // a racy branch selector here (the old workers_.empty() read) was caught
  // by the thread-safety analysis during annotation;
  // ConcurrencySmoke.StatsInsideInlineCallback covers the inline side.
  if (worker_threads_ > 0) {
    CaptureStats s;
    if (shards_ != nullptr) {
      s.kernel = shards_->stats();
      if (trace_capacity_ > 0) {
        s.traced = true;
        s.trace_events_recorded = shards_->trace_recorded();
        s.trace_events_dropped = shards_->trace_dropped();
        s.metrics = shards_->trace_metrics();
      }
    }
    s.events_dispatched = events_dispatched_.load(std::memory_order_relaxed);
    base::MutexLock lock(kernel_mutex_);
    if (nic_) s.nic_dropped_by_filter = nic_->stats().dropped_by_filter;
    if (tracer_) {
      // Producer-side NIC events ride the capture-level tracer; fold them
      // into the merged view.
      s.trace_events_recorded += tracer_->recorded();
      s.trace_events_dropped += tracer_->dropped();
      s.metrics.merge(tracer_->metrics());
    }
    return s;
  }
  assert_serialized();
  return stats_locked();
}

CaptureStats Capture::stats_locked() const {
  CaptureStats s;
  if (kernel_) {
    base::SerialGuard serial(kernel_->serial());
    s.kernel = kernel_->stats();
  }
  if (nic_) s.nic_dropped_by_filter = nic_->stats().dropped_by_filter;
  s.events_dispatched = events_dispatched_.load(std::memory_order_relaxed);
  if (tracer_) {
    s.traced = true;
    s.trace_events_recorded = tracer_->recorded();
    s.trace_events_dropped = tracer_->dropped();
    s.metrics = tracer_->metrics();
  }
  return s;
}

}  // namespace scap
