#include "scap/scap.h"

#include <fstream>
#include <string>

#include "scap/capture.hpp"
#include "trace/export.hpp"

namespace {

scap::kernel::ReassemblyMode mode_of(int m) {
  switch (m) {
    case SCAP_TCP_STRICT: return scap::kernel::ReassemblyMode::kTcpStrict;
    case SCAP_NONE: return scap::kernel::ReassemblyMode::kNone;
    default: return scap::kernel::ReassemblyMode::kTcpFast;
  }
}

scap::Parameter param_of(int p) {
  switch (p) {
    case SCAP_PARAM_CHUNK_SIZE: return scap::Parameter::kChunkSize;
    case SCAP_PARAM_OVERLAP_SIZE: return scap::Parameter::kOverlapSize;
    case SCAP_PARAM_FLUSH_TIMEOUT_MS: return scap::Parameter::kFlushTimeoutMs;
    case SCAP_PARAM_BASE_THRESHOLD_PCT:
      return scap::Parameter::kBaseThresholdPercent;
    case SCAP_PARAM_OVERLOAD_CUTOFF: return scap::Parameter::kOverloadCutoff;
    case SCAP_PARAM_PRIORITY_LEVELS: return scap::Parameter::kPriorityLevels;
    case SCAP_PARAM_ADAPTIVE_CUTOFF: return scap::Parameter::kAdaptiveCutoff;
    case SCAP_PARAM_ADAPTIVE_MIN_CUTOFF:
      return scap::Parameter::kAdaptiveMinCutoff;
    case SCAP_PARAM_WORKERS: return scap::Parameter::kWorkerThreads;
    case SCAP_PARAM_RING_CAPACITY:
      return scap::Parameter::kShardRingCapacity;
    case SCAP_PARAM_RING_HIGH_WM:
      return scap::Parameter::kRingHighWatermarkPct;
    case SCAP_PARAM_RING_LOW_WM:
      return scap::Parameter::kRingLowWatermarkPct;
    case SCAP_PARAM_STALL_TIMEOUT:
      return scap::Parameter::kStallTimeoutMs;
    case SCAP_PARAM_STALL_POLICY:
      return scap::Parameter::kStallPolicy;
    default: return scap::Parameter::kInactivityTimeoutMs;
  }
}

bool is_file_device(const std::string& device) {
  return device.rfind("file:", 0) == 0;
}

void copy_hist(scap_hist_t& out, const scap::trace::Log2Histogram& in) {
  out.total = in.total();
  for (std::size_t i = 0; i < SCAP_HIST_BUCKETS; ++i) {
    out.buckets[i] = in.count(i);
  }
}

}  // namespace

scap_t* scap_create(const char* device, std::int64_t memory_size,
                    int reassembly_mode, int need_pkts) {
  try {
    return new scap::Capture(device ? device : "",
                             memory_size > 0
                                 ? static_cast<std::uint64_t>(memory_size)
                                 : static_cast<std::uint64_t>(SCAP_DEFAULT),
                             mode_of(reassembly_mode), need_pkts != 0);
  } catch (...) {
    return nullptr;
  }
}

void scap_close(scap_t* sc) {
  if (sc == nullptr) return;
  if (sc->started()) sc->stop();
  delete sc;
}

int scap_set_filter(scap_t* sc, const char* bpf_filter) {
  if (sc == nullptr || bpf_filter == nullptr) return -1;
  try {
    sc->set_filter(bpf_filter);
    return 0;
  } catch (...) {
    return -1;
  }
}

int scap_set_cutoff(scap_t* sc, std::int64_t cutoff) {
  if (sc == nullptr) return -1;
  sc->set_cutoff(cutoff);
  return 0;
}

int scap_add_cutoff_direction(scap_t* sc, std::int64_t cutoff, int direction) {
  if (sc == nullptr || direction < 0 || direction > 1) return -1;
  sc->add_cutoff_direction(cutoff,
                           static_cast<scap::kernel::Direction>(direction));
  return 0;
}

int scap_add_cutoff_class(scap_t* sc, std::int64_t cutoff,
                          const char* bpf_filter) {
  if (sc == nullptr || bpf_filter == nullptr) return -1;
  try {
    sc->add_cutoff_class(cutoff, bpf_filter);
    return 0;
  } catch (...) {
    return -1;
  }
}

int scap_set_worker_threads(scap_t* sc, int thread_num) {
  if (sc == nullptr || thread_num < 0) return -1;
  sc->set_worker_threads(thread_num);
  return 0;
}

int scap_set_parameter(scap_t* sc, int parameter, std::int64_t value) {
  if (sc == nullptr) return -1;
  return sc->set_parameter(param_of(parameter), value) ? 0 : -1;
}

namespace {
// Adapters from C function pointers to std::function handlers.
scap::StreamHandler wrap(void (*handler)(stream_t*)) {
  if (handler == nullptr) return nullptr;
  return [handler](scap::StreamView& sd) { handler(&sd); };
}
}  // namespace

int scap_dispatch_creation(scap_t* sc, void (*handler)(stream_t* sd)) {
  if (sc == nullptr) return -1;
  sc->dispatch_creation(wrap(handler));
  return 0;
}

int scap_dispatch_data(scap_t* sc, void (*handler)(stream_t* sd)) {
  if (sc == nullptr) return -1;
  sc->dispatch_data(wrap(handler));
  return 0;
}

int scap_dispatch_termination(scap_t* sc, void (*handler)(stream_t* sd)) {
  if (sc == nullptr) return -1;
  sc->dispatch_termination(wrap(handler));
  return 0;
}

int scap_start_capture(scap_t* sc) {
  if (sc == nullptr) return -1;
  try {
    sc->start();
    // File devices replay to completion and flush; virtual devices stay
    // open for scap_inject.
    if (is_file_device(sc->device())) {
      sc->replay_pcap(sc->device().substr(5));
      sc->stop();
    }
    return 0;
  } catch (...) {
    return -1;
  }
}

int scap_inject(scap_t* sc, const scap::Packet& pkt) {
  if (sc == nullptr) return -1;
  sc->inject(pkt);
  return 0;
}

int scap_flush(scap_t* sc) {
  if (sc == nullptr) return -1;
  sc->stop();
  return 0;
}

void scap_discard_stream(scap_t* sc, stream_t* sd) {
  if (sc == nullptr || sd == nullptr) return;
  sd->discard();
}

int scap_set_stream_cutoff(scap_t* sc, stream_t* sd, std::int64_t cutoff) {
  if (sc == nullptr || sd == nullptr) return -1;
  sd->set_cutoff(cutoff);
  return 0;
}

int scap_set_stream_priority(scap_t* sc, stream_t* sd, int priority) {
  if (sc == nullptr || sd == nullptr) return -1;
  sd->set_priority(priority);
  return 0;
}

int scap_set_stream_parameter(scap_t* sc, stream_t* sd, int parameter,
                              std::int64_t value) {
  if (sc == nullptr || sd == nullptr) return -1;
  return sd->set_parameter(param_of(parameter), value) ? 0 : -1;
}

int scap_keep_stream_chunk(scap_t* sc, stream_t* sd) {
  if (sc == nullptr || sd == nullptr) return -1;
  sd->keep_chunk();
  return 0;
}

const std::uint8_t* scap_stream_data(const stream_t* sd) {
  return sd == nullptr || sd->data().empty() ? nullptr : sd->data().data();
}

std::size_t scap_stream_data_len(const stream_t* sd) {
  return sd == nullptr ? 0 : sd->data_len();
}

int scap_stream_status(const stream_t* sd) {
  if (sd == nullptr) return -1;
  switch (sd->status()) {
    case scap::kernel::StreamStatus::kActive: return SCAP_STREAM_ACTIVE;
    case scap::kernel::StreamStatus::kClosedFin: return SCAP_STREAM_CLOSED_FIN;
    case scap::kernel::StreamStatus::kClosedRst: return SCAP_STREAM_CLOSED_RST;
    case scap::kernel::StreamStatus::kClosedTimeout:
      return SCAP_STREAM_CLOSED_TIMEOUT;
  }
  return -1;
}

std::uint32_t scap_stream_error(const stream_t* sd) {
  return sd == nullptr ? 0 : sd->error();
}

const std::uint8_t* scap_next_stream_packet(stream_t* sd, scap_pkthdr* h) {
  if (sd == nullptr) return nullptr;
  const scap::kernel::PacketRecord* rec = sd->next_packet();
  if (rec == nullptr) return nullptr;
  if (h != nullptr) {
    h->ts_us = rec->ts.usec();
    h->caplen = rec->caplen;
    h->wirelen = rec->wirelen;
    h->seq = rec->seq;
    h->tcp_flags = rec->tcp_flags;
  }
  auto payload = sd->packet_payload(*rec);
  return payload.empty() ? nullptr : payload.data();
}

int scap_get_stats(scap_t* sc, scap_stats_t* stats) {
  if (sc == nullptr || stats == nullptr) return -1;
  const scap::CaptureStats s = sc->stats();
  *stats = {};
  stats->pkts_seen = s.kernel.pkts_seen + s.nic_dropped_by_filter;
  stats->bytes_seen = s.kernel.bytes_seen;
  stats->pkts_stored = s.kernel.pkts_stored;
  stats->bytes_stored = s.kernel.bytes_stored;
  stats->pkts_dropped =
      s.kernel.pkts_ppl_dropped + s.kernel.pkts_nomem_dropped;
  stats->bytes_dropped =
      s.kernel.bytes_ppl_dropped + s.kernel.bytes_nomem_dropped;
  stats->pkts_discarded =
      s.kernel.pkts_cutoff + s.kernel.pkts_dup + s.kernel.pkts_filtered;
  stats->pkts_filtered_nic = s.nic_dropped_by_filter;
  stats->streams_created = s.kernel.streams_created;
  stats->streams_terminated = s.kernel.streams_terminated;
  stats->streams_evicted = s.kernel.streams_evicted;
  stats->pkts_parse_error = s.kernel.pkts_invalid;

  // Full kernel counter mirror (conservation law: see scap.h). scap_lint
  // cross-checks that every KernelStats counter appears here.
  stats->pkts_control = s.kernel.pkts_control;
  stats->pkts_ignored = s.kernel.pkts_ignored;
  stats->pkts_frag_held = s.kernel.pkts_frag_held;
  stats->pkts_buffered = s.kernel.pkts_buffered;
  stats->pkts_filtered = s.kernel.pkts_filtered;
  stats->pkts_cutoff = s.kernel.pkts_cutoff;
  stats->bytes_cutoff = s.kernel.bytes_cutoff;
  stats->pkts_dup = s.kernel.pkts_dup;
  stats->bytes_dup = s.kernel.bytes_dup;
  stats->pkts_ppl_dropped = s.kernel.pkts_ppl_dropped;
  stats->bytes_ppl_dropped = s.kernel.bytes_ppl_dropped;
  stats->pkts_nomem_dropped = s.kernel.pkts_nomem_dropped;
  stats->bytes_nomem_dropped = s.kernel.bytes_nomem_dropped;
  stats->pkts_norec_dropped = s.kernel.pkts_norec_dropped;
  stats->pkts_bad_checksum = s.kernel.pkts_bad_checksum;
  stats->reasm_alloc_failures = s.kernel.reasm_alloc_failures;
  stats->fdir_installs = s.kernel.fdir_installs;
  stats->fdir_reinstalls = s.kernel.fdir_reinstalls;
  stats->fdir_removals = s.kernel.fdir_removals;
  stats->fdir_install_failures = s.kernel.fdir_install_failures;
  stats->streams_rebalanced = s.kernel.streams_rebalanced;
  stats->ring_shed_pkts = s.kernel.ring_shed_pkts;
  stats->ring_shed_bytes = s.kernel.ring_shed_bytes;
  stats->ring_stall_shed_pkts = s.kernel.ring_stall_shed_pkts;
  stats->ring_stall_shed_bytes = s.kernel.ring_stall_shed_bytes;
  stats->ring_occupancy_peak = s.kernel.ring_occupancy_peak;
  stats->worker_stalls = s.kernel.worker_stalls;
  stats->streams_active = s.kernel.streams_active;
  stats->events_emitted = s.kernel.events_emitted;
  stats->chunks_delivered = s.kernel.chunks_delivered;
  stats->pool_capacity = s.kernel.pool_capacity;
  stats->pool_free = s.kernel.pool_free;
  stats->pool_slabs = s.kernel.pool_slabs;
  stats->pool_recycled = s.kernel.pool_recycled;
  stats->ppl_effective_cutoff = s.kernel.ppl_effective_cutoff;
  stats->ppl_overload_active = s.kernel.ppl_overload_active;
  stats->ppl_overload_entries = s.kernel.ppl_overload_entries;
  stats->ppl_overload_exits = s.kernel.ppl_overload_exits;
  stats->ppl_tightenings = s.kernel.ppl_tightenings;
  stats->ppl_relaxations = s.kernel.ppl_relaxations;
  for (std::size_t i = 0;
       i < scap::kNumDecodeErrors && i < SCAP_MAX_PARSE_ERRORS; ++i) {
    stats->parse_errors[i] = s.kernel.parse_errors[i];
  }
  for (std::size_t i = 0;
       i < scap::kernel::kNumVerdicts && i < SCAP_MAX_VERDICTS; ++i) {
    stats->verdicts[i] = s.kernel.verdicts[i];
  }

  // Trace metrics mirror. The C ABI histogram is a fixed array, so the
  // bucket counts must line up exactly with the C++ histogram.
  static_assert(SCAP_HIST_BUCKETS == scap::trace::Log2Histogram::kBuckets,
                "scap_hist_t must mirror trace::Log2Histogram bucket-for-bucket");
  stats->trace_events_recorded = s.trace_events_recorded;
  stats->trace_events_dropped = s.trace_events_dropped;
  copy_hist(stats->hist_stream_size_bytes, s.metrics.stream_size_bytes);
  copy_hist(stats->hist_chunk_latency_us, s.metrics.chunk_latency_us);
  copy_hist(stats->hist_flow_probe_len, s.metrics.flow_probe_len);
  copy_hist(stats->hist_queue_occupancy, s.metrics.queue_occupancy);
  return 0;
}

int scap_enable_trace(scap_t* sc, std::size_t ring_capacity) {
  if (sc == nullptr || ring_capacity == 0) return -1;
  try {
    sc->enable_tracing(ring_capacity);
    return 0;
  } catch (...) {
    return -1;  // capture already started
  }
}

int scap_dump_trace(scap_t* sc, const char* path, int format) {
  if (sc == nullptr || path == nullptr) return -1;
  scap::trace::Tracer* tracer = sc->tracer();
  if (tracer == nullptr) return -1;
  std::ofstream out(path, format == SCAP_TRACE_FORMAT_BINARY
                              ? std::ios::binary | std::ios::out
                              : std::ios::out);
  if (!out) return -1;
  const scap::trace::Schema& schema = scap::trace::kernel_schema();
  switch (format) {
    case SCAP_TRACE_FORMAT_TEXT:
      scap::trace::write_text(*tracer, schema, out);
      break;
    case SCAP_TRACE_FORMAT_CHROME:
      scap::trace::write_chrome_json(*tracer, schema, out);
      break;
    case SCAP_TRACE_FORMAT_BINARY:
      scap::trace::write_binary(*tracer, out);
      break;
    default:
      return -1;
  }
  return out.good() ? 0 : -1;
}
