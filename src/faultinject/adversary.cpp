#include "faultinject/adversary.hpp"

#include <algorithm>

#include "packet/checksum.hpp"
#include "packet/craft.hpp"

namespace scap::faultinject {

namespace {

/// Rewrite the IPv4 header checksum in a full Ethernet frame in place.
void fix_ip_checksum(std::vector<std::uint8_t>& frame) {
  if (frame.size() < kEthHeaderLen + 20) return;
  frame[kEthHeaderLen + 10] = 0;
  frame[kEthHeaderLen + 11] = 0;
  const std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(frame).subspan(kEthHeaderLen, 20));
  frame[kEthHeaderLen + 10] = static_cast<std::uint8_t>(csum >> 8);
  frame[kEthHeaderLen + 11] = static_cast<std::uint8_t>(csum & 0xff);
}

}  // namespace

AdversaryGen::AdversaryGen(const AdversaryConfig& config)
    : config_(config), rng_(config.seed) {
  sessions_.resize(std::max<std::size_t>(config_.sessions, 1));
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = sessions_[i];
    s.tuple.src_ip = 0x0a000000 + static_cast<std::uint32_t>(i + 1);
    s.tuple.dst_ip = 0x0a800001;
    s.tuple.src_port = static_cast<std::uint16_t>(20000 + i);
    s.tuple.dst_port = 80;
    s.tuple.protocol = kProtoTcp;
    s.seq = static_cast<std::uint32_t>(rng_.next_u32());
  }
}

Packet AdversaryGen::next() {
  const Timestamp ts =
      config_.start + Duration(config_.spacing.ns() *
                               static_cast<std::int64_t>(emitted_));
  ++emitted_;

  const AdversaryMix& m = config_.mix;
  const double total =
      m.session + m.garbage + m.mutated + m.syn_flood + m.frag_flood;
  double pick = rng_.uniform() * (total > 0 ? total : 1.0);
  if ((pick -= m.session) < 0) return make_session_packet(ts);
  if ((pick -= m.garbage) < 0) return make_garbage(ts);
  if ((pick -= m.mutated) < 0) return make_mutated(ts);
  if ((pick -= m.syn_flood) < 0) return make_syn_flood(ts);
  return make_frag_flood(ts);
}

std::vector<Packet> AdversaryGen::generate() {
  std::vector<Packet> out;
  out.reserve(config_.packets);
  for (std::uint64_t i = 0; i < config_.packets; ++i) out.push_back(next());
  return out;
}

Packet AdversaryGen::make_session_packet(Timestamp ts) {
  Session& s = sessions_[rng_.bounded(sessions_.size())];
  TcpSegmentSpec spec;
  spec.tuple = s.tuple;
  if (!s.open) {
    spec.seq = s.seq;
    spec.flags = kTcpSyn;
    s.seq += 1;  // SYN consumes one sequence number
    s.open = true;
    return make_tcp_packet(spec, ts);
  }
  // Occasionally close and let the session restart with fresh numbers.
  if (rng_.chance(0.02)) {
    spec.seq = s.seq;
    spec.flags = kTcpFin | kTcpAck;
    s.open = false;
    s.seq = static_cast<std::uint32_t>(rng_.next_u32());
    return make_tcp_packet(spec, ts);
  }
  std::vector<std::uint8_t> payload(config_.payload_bytes);
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.next_u64());
  spec.seq = s.seq;
  spec.flags = kTcpAck | kTcpPsh;
  spec.payload = payload;
  s.seq += static_cast<std::uint32_t>(payload.size());
  return make_tcp_packet(spec, ts);
}

Packet AdversaryGen::make_garbage(Timestamp ts) {
  // Anything from an empty runt to an oversized blob of random bytes. The
  // decoder must classify it, never crash on it.
  const std::size_t len = rng_.bounded(96) < 90 ? rng_.bounded(128)
                                                : 1400 + rng_.bounded(600);
  std::vector<std::uint8_t> frame(len);
  for (auto& b : frame) b = static_cast<std::uint8_t>(rng_.next_u64());
  return Packet::from_bytes(frame, ts);
}

Packet AdversaryGen::make_mutated(Timestamp ts) {
  // Start from a frame that would decode cleanly, then break one thing.
  TcpSegmentSpec spec;
  spec.tuple = sessions_[rng_.bounded(sessions_.size())].tuple;
  spec.seq = static_cast<std::uint32_t>(rng_.next_u32());
  spec.flags = kTcpAck;
  std::vector<std::uint8_t> payload(32 + rng_.bounded(200));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng_.next_u64());
  spec.payload = payload;
  std::vector<std::uint8_t> frame = build_tcp_frame(spec);

  switch (rng_.bounded(8)) {
    case 0:  // truncate mid-header
      frame.resize(rng_.bounded(kEthHeaderLen + 40));
      break;
    case 1:  // bad IP version
      frame[kEthHeaderLen] =
          static_cast<std::uint8_t>((rng_.bounded(15) << 4) | 5);
      fix_ip_checksum(frame);
      break;
    case 2:  // absurd IHL (claims options that are not there)
      frame[kEthHeaderLen] = 0x4f;
      fix_ip_checksum(frame);
      break;
    case 3: {  // absurd total_len (far past the frame, or inside the header)
      const std::uint16_t bogus = rng_.chance(0.5)
                                      ? static_cast<std::uint16_t>(0xffff)
                                      : static_cast<std::uint16_t>(
                                            rng_.bounded(20));
      frame[kEthHeaderLen + 2] = static_cast<std::uint8_t>(bogus >> 8);
      frame[kEthHeaderLen + 3] = static_cast<std::uint8_t>(bogus & 0xff);
      fix_ip_checksum(frame);
      break;
    }
    case 4:  // absurd TCP data offset
      frame[kEthHeaderLen + 20 + 12] =
          static_cast<std::uint8_t>(rng_.bounded(16) << 4);
      break;
    case 5:  // corrupt the IP checksum
      frame[kEthHeaderLen + 10] ^= 0xff;
      break;
    case 6:  // corrupt the TCP checksum
      frame[kEthHeaderLen + 20 + 16] ^= 0xff;
      break;
    default:  // flip a random byte anywhere in the frame
      frame[rng_.bounded(frame.size())] ^=
          static_cast<std::uint8_t>(1 + rng_.bounded(255));
      break;
  }
  return Packet::from_bytes(frame, ts);
}

Packet AdversaryGen::make_syn_flood(Timestamp ts) {
  // A brand-new spoofed tuple every packet: maximum flow-table churn.
  flood_ip_ += 1 + static_cast<std::uint32_t>(rng_.bounded(7));
  TcpSegmentSpec spec;
  spec.tuple.src_ip = flood_ip_;
  spec.tuple.dst_ip = 0x0a800001;
  spec.tuple.src_port = static_cast<std::uint16_t>(1024 + rng_.bounded(60000));
  spec.tuple.dst_port = 80;
  spec.tuple.protocol = kProtoTcp;
  spec.seq = static_cast<std::uint32_t>(rng_.next_u32());
  spec.flags = kTcpSyn;
  return make_tcp_packet(spec, ts);
}

Packet AdversaryGen::make_frag_flood(Timestamp ts) {
  // A non-first fragment whose head never arrives: each one parks bytes in
  // the defragmenter until its datagram times out.
  const std::size_t payload_len = 64 + rng_.bounded(512);
  std::vector<std::uint8_t> frame(kEthHeaderLen + 20 + payload_len);
  for (auto& b : frame) b = static_cast<std::uint8_t>(rng_.next_u64());
  EthHeader eth{};
  eth.ether_type = kEtherTypeIpv4;
  write_eth(frame, eth);
  Ipv4Header ip{};
  ip.version = 4;
  ip.ihl = 5;
  ip.total_len = static_cast<std::uint16_t>(20 + payload_len);
  ip.id = static_cast<std::uint16_t>(rng_.next_u32());
  // Offset 8..16KB in 8-byte units, MF set: the datagram can never complete.
  ip.frag_off = static_cast<std::uint16_t>(0x2000 | (1 + rng_.bounded(2048)));
  ip.ttl = 64;
  ip.protocol = kProtoUdp;
  ip.src_ip = 0x0b000001 + static_cast<std::uint32_t>(rng_.bounded(64));
  ip.dst_ip = 0x0a800001;
  write_ipv4(std::span<std::uint8_t>(frame).subspan(kEthHeaderLen), ip);
  fix_ip_checksum(frame);
  return Packet::from_bytes(frame, ts);
}

}  // namespace scap::faultinject
