// Adversarial traffic synthesis for the chaos harness (DESIGN.md §8).
//
// Produces a seeded, replayable packet schedule mixing cooperative TCP
// sessions with the hostile inputs a capture box on a real network sees:
//
//   - random garbage frames (nothing decodes)
//   - structured header mutations of well-formed frames: truncation,
//     IP version/IHL/total_len corruption, TCP data-offset corruption,
//     flipped checksum bytes, absurd length fields
//   - SYN floods from rotating spoofed sources (flow-table pressure)
//   - IPv4 fragment floods that never complete (defrag memory pressure)
//
// Every decision comes from one Rng seeded by AdversaryConfig::seed, so the
// same config replays byte-identically — the property chaos_run's
// --check-reproducible gate and the fuzz suites build on.
#pragma once

#include <cstdint>
#include <vector>

#include "base/clock.hpp"
#include "base/rng.hpp"
#include "packet/packet.hpp"

namespace scap::faultinject {

/// Relative mix weights; they need not sum to anything in particular.
struct AdversaryMix {
  double session = 6.0;     // next packet of a well-formed TCP session
  double garbage = 1.0;     // uniformly random bytes
  double mutated = 1.0;     // structured mutation of a well-formed frame
  double syn_flood = 1.0;   // spoofed SYN, new tuple every packet
  double frag_flood = 1.0;  // orphan IPv4 fragment, never completes
};

struct AdversaryConfig {
  std::uint64_t seed = 1;
  std::uint64_t packets = 10000;
  AdversaryMix mix;
  /// Concurrent well-formed sessions rotated round-robin-by-chance.
  std::size_t sessions = 32;
  /// Payload bytes per data segment of well-formed sessions.
  std::size_t payload_bytes = 512;
  /// Virtual-time spacing between consecutive packets.
  Duration spacing = Duration::from_usec(2);
  Timestamp start = Timestamp(0);
};

/// Seeded adversarial packet stream. generate() is a pure function of the
/// config: two generators with equal configs yield identical packets.
class AdversaryGen {
 public:
  explicit AdversaryGen(const AdversaryConfig& config);

  /// Produce the next packet of the schedule.
  Packet next();

  /// Produce the whole schedule (config.packets packets).
  std::vector<Packet> generate();

  const AdversaryConfig& config() const { return config_; }

 private:
  struct Session {
    FiveTuple tuple;
    std::uint32_t seq = 0;
    bool open = false;
  };

  Packet make_session_packet(Timestamp ts);
  Packet make_garbage(Timestamp ts);
  Packet make_mutated(Timestamp ts);
  Packet make_syn_flood(Timestamp ts);
  Packet make_frag_flood(Timestamp ts);

  AdversaryConfig config_;
  Rng rng_;
  std::vector<Session> sessions_;
  std::uint64_t emitted_ = 0;
  std::uint32_t flood_ip_ = 0xc0a80000;  // rotating spoofed source
};

}  // namespace scap::faultinject
