// Deterministic fault injection for the Scap datapath (DESIGN.md §8).
//
// The datapath's graceful-degradation promise — under overload and attack,
// shed the least-valuable bytes instead of crashing — is only as good as
// its failure paths, and failure paths are exactly the code normal traffic
// never exercises. This subsystem lets tests and the chaos harness
// (tools/chaos_run) fail chosen allocation/insertion sites on a seeded,
// replayable schedule:
//
//   kRecordPoolAcquire  — StreamRecord slab allocation (flow_table/create)
//   kChunkAlloc         — chunk-buffer block reservation (kernel/memory)
//   kSegmentStoreInsert — out-of-order/fragment buffering (reassembly, defrag)
//   kFdirAdd            — NIC filter-table installation (nic/fdir)
//   kRingPush           — sharded-ring admission (kernel/shard, forces a shed)
//   kWorkerStall        — shard worker parks before consuming (watchdog prey)
//   kWorkerDelay        — shard worker naps before a batch (schedule
//                         perturbation; output must stay bit-identical)
//
// Sites consult `should_fail(point)`; with no injector installed that is a
// single predictable-branch null check, so production paths pay nothing.
// Installation is process-global (mirroring the kernel's failslab/fail_page
// alloc fault injection) and scoped via RAII: single-threaded deterministic
// harnesses install a FaultScope, run, and read back per-point counters.
// Decisions are drawn from a per-point splitmix/xoshiro stream seeded from
// plan.seed ^ point, so the schedule depends only on (seed, per-point call
// ordinal) — identical runs make identical decisions, and one point's
// traffic does not perturb another's.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "base/rng.hpp"

namespace scap::faultinject {

enum class FaultPoint : std::uint8_t {
  kRecordPoolAcquire = 0,
  kChunkAlloc,
  kSegmentStoreInsert,
  kFdirAdd,
  kRingPush,
  kWorkerStall,
  kWorkerDelay,
  kCount,
};

constexpr std::size_t kNumFaultPoints =
    static_cast<std::size_t>(FaultPoint::kCount);

const char* to_string(FaultPoint p);

/// Seeded, replayable schedule of injected failures.
struct InjectionPlan {
  struct Point {
    /// Independent per-call failure probability (0 disables).
    double probability = 0.0;
    /// Fail every Nth call to the point, 1-based (0 disables). Combines
    /// with `probability` by OR. Keyed sites count per-key ordinals.
    std::uint64_t every_n = 0;
    /// Keyed sites only: restrict injection to one key (e.g. one shard).
    /// -1 (the default) injects at any key. Unkeyed `roll` ignores this.
    std::int64_t only_key = -1;
  };

  std::uint64_t seed = 1;
  std::array<Point, kNumFaultPoints> points{};

  Point& at(FaultPoint p) { return points[static_cast<std::size_t>(p)]; }
  const Point& at(FaultPoint p) const {
    return points[static_cast<std::size_t>(p)];
  }

  /// Convenience: the same probability at every point.
  static InjectionPlan uniform(std::uint64_t seed, double probability);
};

class FaultInjector {
 public:
  explicit FaultInjector(const InjectionPlan& plan);

  /// Decide whether the `calls()`-th invocation of `p` fails. Deterministic
  /// in (plan.seed, point, per-point call ordinal). Single-threaded sites
  /// only: the per-point rng stream is not synchronized.
  bool roll(FaultPoint p);

  /// Stateless keyed decision for sites reached from multiple threads
  /// (sharded-datapath points). The verdict is a pure function of
  /// (plan.seed, point, key, ordinal) — typically (shard, per-shard call
  /// ordinal, 1-based) — so it is identical no matter how producer and
  /// worker calls interleave. `every_n` matches ordinal % every_n == 0;
  /// `probability` hashes (seed, point, key, ordinal) into [0,1).
  bool roll_keyed(FaultPoint p, std::uint64_t key, std::uint64_t ordinal);

  std::uint64_t calls(FaultPoint p) const {
    return state_[static_cast<std::size_t>(p)].calls.load(
        std::memory_order_relaxed);
  }
  std::uint64_t injected(FaultPoint p) const {
    return state_[static_cast<std::size_t>(p)].injected.load(
        std::memory_order_relaxed);
  }
  std::uint64_t injected_total() const;

  const InjectionPlan& plan() const { return plan_; }

 private:
  struct PointState {
    Rng rng;
    // Atomic so keyed (multi-thread) sites can count alongside the
    // single-threaded rng path; plain relaxed tallies, no ordering implied.
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> injected{0};
  };

  InjectionPlan plan_;
  std::array<PointState, kNumFaultPoints> state_;
};

/// The process-global injector consulted by instrumented sites; nullptr
/// (the default) means every site succeeds.
FaultInjector* installed();

/// Hook called by instrumented allocation/insertion sites.
inline bool should_fail(FaultPoint p) {
  FaultInjector* inj = installed();
  return inj != nullptr && inj->roll(p);
}

/// Keyed hook for multi-threaded sites (see roll_keyed).
inline bool should_fail_keyed(FaultPoint p, std::uint64_t key,
                              std::uint64_t ordinal) {
  FaultInjector* inj = installed();
  return inj != nullptr && inj->roll_keyed(p, key, ordinal);
}

/// Whether an installed plan can ever fire `p`. Sites whose consult
/// cadence is itself scheduling-dependent (the per-batch kWorkerDelay
/// perturbation: batch count varies between correct runs) gate on this so
/// the per-point `calls` counters in an unarmed run stay reproducible —
/// chaos_run --check-reproducible bit-compares them.
inline bool armed(FaultPoint p) {
  FaultInjector* inj = installed();
  if (inj == nullptr) return false;
  const InjectionPlan::Point& cfg = inj->plan().at(p);
  return cfg.probability > 0.0 || cfg.every_n != 0;
}

/// RAII installation. Nested scopes restore the previous injector, so a
/// test can tighten the plan for one phase and fall back afterwards.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& injector);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace scap::faultinject
