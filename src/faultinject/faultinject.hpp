// Deterministic fault injection for the Scap datapath (DESIGN.md §8).
//
// The datapath's graceful-degradation promise — under overload and attack,
// shed the least-valuable bytes instead of crashing — is only as good as
// its failure paths, and failure paths are exactly the code normal traffic
// never exercises. This subsystem lets tests and the chaos harness
// (tools/chaos_run) fail chosen allocation/insertion sites on a seeded,
// replayable schedule:
//
//   kRecordPoolAcquire  — StreamRecord slab allocation (flow_table/create)
//   kChunkAlloc         — chunk-buffer block reservation (kernel/memory)
//   kSegmentStoreInsert — out-of-order/fragment buffering (reassembly, defrag)
//   kFdirAdd            — NIC filter-table installation (nic/fdir)
//
// Sites consult `should_fail(point)`; with no injector installed that is a
// single predictable-branch null check, so production paths pay nothing.
// Installation is process-global (mirroring the kernel's failslab/fail_page
// alloc fault injection) and scoped via RAII: single-threaded deterministic
// harnesses install a FaultScope, run, and read back per-point counters.
// Decisions are drawn from a per-point splitmix/xoshiro stream seeded from
// plan.seed ^ point, so the schedule depends only on (seed, per-point call
// ordinal) — identical runs make identical decisions, and one point's
// traffic does not perturb another's.
#pragma once

#include <array>
#include <cstdint>

#include "base/rng.hpp"

namespace scap::faultinject {

enum class FaultPoint : std::uint8_t {
  kRecordPoolAcquire = 0,
  kChunkAlloc,
  kSegmentStoreInsert,
  kFdirAdd,
  kCount,
};

constexpr std::size_t kNumFaultPoints =
    static_cast<std::size_t>(FaultPoint::kCount);

const char* to_string(FaultPoint p);

/// Seeded, replayable schedule of injected failures.
struct InjectionPlan {
  struct Point {
    /// Independent per-call failure probability (0 disables).
    double probability = 0.0;
    /// Fail every Nth call to the point, 1-based (0 disables). Combines
    /// with `probability` by OR.
    std::uint64_t every_n = 0;
  };

  std::uint64_t seed = 1;
  std::array<Point, kNumFaultPoints> points{};

  Point& at(FaultPoint p) { return points[static_cast<std::size_t>(p)]; }
  const Point& at(FaultPoint p) const {
    return points[static_cast<std::size_t>(p)];
  }

  /// Convenience: the same probability at every point.
  static InjectionPlan uniform(std::uint64_t seed, double probability);
};

class FaultInjector {
 public:
  explicit FaultInjector(const InjectionPlan& plan);

  /// Decide whether the `calls()`-th invocation of `p` fails. Deterministic
  /// in (plan.seed, point, per-point call ordinal).
  bool roll(FaultPoint p);

  std::uint64_t calls(FaultPoint p) const {
    return state_[static_cast<std::size_t>(p)].calls;
  }
  std::uint64_t injected(FaultPoint p) const {
    return state_[static_cast<std::size_t>(p)].injected;
  }
  std::uint64_t injected_total() const;

  const InjectionPlan& plan() const { return plan_; }

 private:
  struct PointState {
    Rng rng;
    std::uint64_t calls = 0;
    std::uint64_t injected = 0;
  };

  InjectionPlan plan_;
  std::array<PointState, kNumFaultPoints> state_;
};

/// The process-global injector consulted by instrumented sites; nullptr
/// (the default) means every site succeeds.
FaultInjector* installed();

/// Hook called by instrumented allocation/insertion sites.
inline bool should_fail(FaultPoint p) {
  FaultInjector* inj = installed();
  return inj != nullptr && inj->roll(p);
}

/// RAII installation. Nested scopes restore the previous injector, so a
/// test can tighten the plan for one phase and fall back afterwards.
class FaultScope {
 public:
  explicit FaultScope(FaultInjector& injector);
  ~FaultScope();

  FaultScope(const FaultScope&) = delete;
  FaultScope& operator=(const FaultScope&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace scap::faultinject
