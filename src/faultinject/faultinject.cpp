#include "faultinject/faultinject.hpp"

namespace scap::faultinject {

namespace {
FaultInjector* g_installed = nullptr;
}  // namespace

const char* to_string(FaultPoint p) {
  switch (p) {
    case FaultPoint::kRecordPoolAcquire: return "record_pool_acquire";
    case FaultPoint::kChunkAlloc: return "chunk_alloc";
    case FaultPoint::kSegmentStoreInsert: return "segment_store_insert";
    case FaultPoint::kFdirAdd: return "fdir_add";
    case FaultPoint::kRingPush: return "ring_push";
    case FaultPoint::kWorkerStall: return "worker_stall";
    case FaultPoint::kWorkerDelay: return "worker_delay";
    case FaultPoint::kCount: break;
  }
  return "unknown";
}

InjectionPlan InjectionPlan::uniform(std::uint64_t seed, double probability) {
  InjectionPlan plan;
  plan.seed = seed;
  for (auto& p : plan.points) p.probability = probability;
  return plan;
}

FaultInjector::FaultInjector(const InjectionPlan& plan) : plan_(plan) {
  for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
    // Per-point stream: decisions depend only on (seed, point, ordinal),
    // never on how calls to different points interleave.
    state_[i].rng.reseed(plan_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
  }
}

bool FaultInjector::roll(FaultPoint p) {
  PointState& st = state_[static_cast<std::size_t>(p)];
  const InjectionPlan::Point& cfg = plan_.at(p);
  const std::uint64_t call =
      st.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fail = false;
  if (cfg.every_n != 0 && call % cfg.every_n == 0) fail = true;
  // Always draw when a probability is configured so the decision for call k
  // does not depend on every_n hits before it.
  if (cfg.probability > 0.0 && st.rng.chance(cfg.probability)) fail = true;
  if (fail) st.injected.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

namespace {
// splitmix64 finalizer: keyed decisions hash (seed, point, key, ordinal)
// so they are independent of call interleaving across threads.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

bool FaultInjector::roll_keyed(FaultPoint p, std::uint64_t key,
                               std::uint64_t ordinal) {
  PointState& st = state_[static_cast<std::size_t>(p)];
  const InjectionPlan::Point& cfg = plan_.at(p);
  st.calls.fetch_add(1, std::memory_order_relaxed);
  if (cfg.only_key >= 0 && key != static_cast<std::uint64_t>(cfg.only_key)) {
    return false;
  }
  bool fail = false;
  if (cfg.every_n != 0 && ordinal % cfg.every_n == 0) fail = true;
  if (cfg.probability > 0.0) {
    std::uint64_t h = mix64(plan_.seed);
    h = mix64(h ^ (static_cast<std::uint64_t>(p) + 1));
    h = mix64(h ^ key);
    h = mix64(h ^ ordinal);
    const double draw =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform in [0,1)
    if (draw < cfg.probability) fail = true;
  }
  if (fail) st.injected.fetch_add(1, std::memory_order_relaxed);
  return fail;
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& st : state_) total += st.injected;
  return total;
}

FaultInjector* installed() { return g_installed; }

FaultScope::FaultScope(FaultInjector& injector) : previous_(g_installed) {
  g_installed = &injector;
}

FaultScope::~FaultScope() { g_installed = previous_; }

}  // namespace scap::faultinject
