// Analytic models of Prioritized Packet Loss (paper §7, Figs. 11-12).
//
// Fig. 11: the memory above base_threshold as an M/M/1/N queue; the loss
// probability for high-priority packets is the full-buffer probability
// (PASTA):  P_full = (1-ρ) ρ^N / (1 - ρ^{N+1}).
//
// Fig. 12: three priorities (low/medium/high) as a 2N-state birth-death
// chain: in states 1..N both medium (λ1) and high (λ2) arrivals enter;
// in states N+1..2N only high-priority arrivals do. Equations (2)-(3) of
// the paper give the stationary loss probabilities.
//
// A generic birth-death solver is included so the closed forms can be
// verified numerically (and used for ablations with other rate profiles).
#pragma once

#include <cstdint>
#include <vector>

namespace scap::analysis {

/// M/M/1/N loss probability (paper Eq. 1). rho = lambda/mu.
double mm1n_loss(double rho, int n);

/// Two-level PPL chain (paper Eqs. 2-3).
/// rho1 = (lambda1+lambda2)/mu — combined medium+high load;
/// rho2 = lambda2/mu           — high-priority load alone;
/// n    = region size in packet slots (the chain has 2n states).
struct TwoLevelLoss {
  double high;    // loss probability for high-priority packets (Eq. 2)
  double medium;  // loss probability for medium-priority packets (Eq. 3)
};
TwoLevelLoss two_level_loss(double rho1, double rho2, int n);

/// Stationary distribution of a birth-death chain with per-state birth
/// rates lambda[i] (i -> i+1, size K) and uniform death rate mu (i -> i-1).
/// Returns K+1 probabilities for states 0..K.
std::vector<double> birth_death_stationary(const std::vector<double>& lambda,
                                           double mu);

}  // namespace scap::analysis
