#include "analysis/queueing.hpp"

#include <cmath>

namespace scap::analysis {

double mm1n_loss(double rho, int n) {
  if (n <= 0) return 1.0;
  if (std::abs(rho - 1.0) < 1e-12) {
    // Degenerate ρ=1: uniform stationary distribution over N+1 states.
    return 1.0 / static_cast<double>(n + 1);
  }
  const double num = (1.0 - rho) * std::pow(rho, n);
  const double den = 1.0 - std::pow(rho, n + 1);
  return num / den;
}

TwoLevelLoss two_level_loss(double rho1, double rho2, int n) {
  TwoLevelLoss loss{1.0, 1.0};
  if (n <= 0) return loss;
  // p0 normalizes the 2N-state chain (paper's expression):
  //   p0 = 1 / ( (1-ρ1^{N+1})/(1-ρ1) + ρ1^N ρ2 (1-ρ2^N)/(1-ρ2) )
  // The first term covers states 0..N (geometric in ρ1), the second states
  // N+1..2N (geometric in ρ2 on top of state N's probability).
  const double geo1 = (1.0 - std::pow(rho1, n + 1)) / (1.0 - rho1);
  const double geo2 =
      std::pow(rho1, n) * rho2 * (1.0 - std::pow(rho2, n)) / (1.0 - rho2);
  const double p0 = 1.0 / (geo1 + geo2);

  // High-priority packets are lost only in the last state 2N:
  //   P_loss,high = ρ1^N ρ2^N p0   (paper Eq. 2).
  loss.high = std::pow(rho1, n) * std::pow(rho2, n) * p0;

  // Medium-priority packets are lost in states >= N:
  //   P_loss,medium = sum_{k=N}^{2N} p_k
  // The paper reports the M/M/1/N form (Eq. 3); we return the exact chain
  // tail, which matches Eq. 3 closely for the plotted regime.
  double tail = std::pow(rho1, n) * p0;  // state N
  for (int k = 1; k <= n; ++k) {
    tail += std::pow(rho1, n) * std::pow(rho2, k) * p0;
  }
  loss.medium = tail;
  return loss;
}

std::vector<double> birth_death_stationary(const std::vector<double>& lambda,
                                           double mu) {
  const std::size_t k = lambda.size();
  std::vector<double> pi(k + 1, 0.0);
  pi[0] = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    pi[i + 1] = pi[i] * lambda[i] / mu;
  }
  double sum = 0.0;
  for (double p : pi) sum += p;
  for (double& p : pi) p /= sum;
  return pi;
}

}  // namespace scap::analysis
