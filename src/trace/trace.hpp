// Event tracing ring for the capture datapath (ISSUE 4; DESIGN.md §10).
//
// The paper evaluates Scap almost entirely through measurement; this layer
// gives the reproduction a runtime timeline to measure with. Typed events
// (packet verdicts, stream lifecycle, chunk deliveries, PPL transitions,
// FDIR churn, maintenance ticks) land in fixed-capacity per-core rings with
// simulated-clock timestamps, so a run's event stream is a pure function of
// its seed — the property the golden-trace tests assert on.
//
// Cost model: tracing is compiled in when SCAP_ENABLE_TRACE is defined
// (cmake -DSCAP_TRACE=ON, the default). Instrumentation sites go through
// the SCAP_TRACE_EVENT / SCAP_TRACE_METRIC macros, which cost one null
// check + one 32-byte store when a tracer is attached, a predictable
// never-taken branch when not, and compile to nothing with SCAP_TRACE=OFF.
// record() never allocates: the rings are sized at construction and wrap,
// counting what they overwrite.
#pragma once

#include <cstdint>
#include <vector>

#include "base/clock.hpp"
#include "trace/metrics.hpp"

namespace scap::trace {

// Every event type must have an emit site in src/ and a pretty-printer case
// in src/trace/export.cpp — tools/scap_lint.py (rule trace-coverage) fails
// the lint suite otherwise, the same pattern as the counter-mirroring rule.
enum class TraceEventType : std::uint8_t {
  kPacketVerdict,     // a16 = Verdict, a32 = wire bytes, a64 = 0
  kStreamCreated,     // a16 = core, a32 = priority
  kChunkDelivered,    // a32 = chunk bytes, a64 = stream offset
  kStreamTerminated,  // a16 = StreamStatus, a64 = stream bytes
  kPplWatermark,      // a16 = 1 rising / 0 falling, a32 = occupancy permille
  kPplCutoffChange,   // a16 = overload flag, a64 = effective cutoff bytes
  kFdirInstall,       // a16 = 0 install / 1 reinstall / 2 rejected
  kFdirEvict,         // a16 = 0 removed / 1 timer expiry
  kNicSteer,          // a16 = queue, a32 = wire bytes
  kNicDrop,           // a32 = wire bytes (dropped at the NIC, subzero path)
  kMaintenanceTick,   // a32 = active streams, a64 = chunk bytes in use
  kEventDispatched,   // a16 = kernel EventType, a32 = chunk bytes
  kRingShed,          // core = shard; a16 = PPL priority, a32 = wire bytes,
                      // a64 = ring occupancy at the shed decision
  kWorkerStall,       // core = shard; a16 = StallPolicy, a32 = items
                      // outstanding in the shard ring at declaration
};

inline constexpr std::size_t kNumTraceEventTypes =
    static_cast<std::size_t>(TraceEventType::kWorkerStall) + 1;

/// Stable lowercase name (text serialization, scap_trace, Chrome export).
const char* to_string(TraceEventType t);

/// One trace record. 32 bytes, trivially copyable — the binary export
/// writes these verbatim (little-endian hosts only, like the pcap writer).
struct TraceEvent {
  std::int64_t ts_ns = 0;    // simulated-clock timestamp
  std::uint64_t stream = 0;  // StreamId, 0 = not stream-scoped
  std::uint64_t a64 = 0;     // type-specific (offsets, byte totals, cutoffs)
  std::uint32_t a32 = 0;     // type-specific (sizes, occupancy)
  std::uint16_t a16 = 0;     // type-specific (verdicts, statuses, flags)
  TraceEventType type = TraceEventType::kPacketVerdict;
  std::uint8_t core = 0;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

static_assert(sizeof(TraceEvent) == 32, "TraceEvent layout is part of the "
              "binary trace format; keep it packed");

/// Fixed-capacity ring of TraceEvents. Writes wrap and overwrite the oldest
/// entry once full; `recorded() - size()` events were lost to wrap. Single
/// writer per ring (the owning core), which is what keeps record() a plain
/// store — cross-core safety comes from each core writing only its own ring.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity)
      : events_(capacity > 0 ? capacity : 1) {}

  void push(const TraceEvent& ev) {
    events_[static_cast<std::size_t>(recorded_ % events_.size())] = ev;
    ++recorded_;
    ++by_type_[static_cast<std::size_t>(ev.type)];
  }

  std::size_t capacity() const { return events_.size(); }
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t dropped() const {
    return recorded_ > events_.size() ? recorded_ - events_.size() : 0;
  }
  std::size_t size() const {
    return recorded_ < events_.size() ? static_cast<std::size_t>(recorded_)
                                      : events_.size();
  }

  /// Events ever recorded of one type (wrap-independent).
  std::uint64_t recorded_of(TraceEventType t) const {
    return by_type_[static_cast<std::size_t>(t)];
  }

  /// The i-th oldest retained event (0 = oldest still in the ring).
  const TraceEvent& at(std::size_t i) const {
    const std::uint64_t first = recorded_ - size();
    return events_[static_cast<std::size_t>((first + i) % events_.size())];
  }

 private:
  std::vector<TraceEvent> events_;
  std::uint64_t recorded_ = 0;
  std::uint64_t by_type_[kNumTraceEventTypes] = {};
};

struct TraceConfig {
  std::size_t ring_capacity = 1 << 16;  // events retained per core
  int cores = 1;
};

/// Per-core rings + the metrics registry, attached to the kernel, NIC, PPL
/// controller and Capture behind a nullable pointer. The tracer itself
/// carries no locks: every pointer that reaches it in the capture pipeline
/// is SCAP_PT_GUARDED_BY a capability — Capture::tracer_ by kernel_mutex_,
/// ScapKernel::tracer_ by the kernel's SerialDomain — so the thread-safety
/// analysis proves each record() call is serialized instead of a comment
/// promising it (DESIGN.md §11). Single-threaded owners (tools, tests)
/// hold those capabilities structurally.
class Tracer {
 public:
  explicit Tracer(const TraceConfig& config);

  void record(TraceEventType type, int core, Timestamp ts,
              std::uint64_t stream = 0, std::uint16_t a16 = 0,
              std::uint32_t a32 = 0, std::uint64_t a64 = 0) {
    TraceEvent ev;
    ev.ts_ns = ts.ns();
    ev.stream = stream;
    ev.a64 = a64;
    ev.a32 = a32;
    ev.a16 = a16;
    ev.type = type;
    const auto c = core >= 0 && static_cast<std::size_t>(core) < rings_.size()
                       ? static_cast<std::size_t>(core)
                       : 0;
    ev.core = static_cast<std::uint8_t>(c);
    rings_[c].push(ev);
  }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  std::size_t cores() const { return rings_.size(); }
  const TraceRing& ring(std::size_t core) const { return rings_[core]; }

  /// Events ever recorded of one type, summed across rings.
  std::uint64_t recorded_of(TraceEventType t) const;
  std::uint64_t recorded() const;
  std::uint64_t dropped() const;

  /// All retained events, merged across rings into one timeline: ordered by
  /// timestamp, ties broken by core then by ring position — a total order,
  /// so two identical runs serialize identically.
  std::vector<TraceEvent> snapshot() const;

 private:
  std::vector<TraceRing> rings_;
  MetricsRegistry metrics_;
};

}  // namespace scap::trace

// Instrumentation macros: `tracer` is a (possibly null) Tracer*. With
// SCAP_TRACE=OFF both compile to nothing and the arguments are not
// evaluated, so hot paths carry zero tracing cost.
#if defined(SCAP_ENABLE_TRACE)
#define SCAP_TRACE_EVENT(tracer, ...)                       \
  do {                                                      \
    if ((tracer) != nullptr) (tracer)->record(__VA_ARGS__); \
  } while (0)
#define SCAP_TRACE_METRIC(tracer, hist, value)                    \
  do {                                                            \
    if ((tracer) != nullptr) (tracer)->metrics().hist.add(value); \
  } while (0)
#else
#define SCAP_TRACE_EVENT(tracer, ...) \
  do {                                \
  } while (0)
#define SCAP_TRACE_METRIC(tracer, hist, value) \
  do {                                         \
  } while (0)
#endif
