// Metrics registry for the observability layer (ISSUE 4; DESIGN.md §10).
//
// Fixed-bucket log2 histograms capture the distributions the paper reports
// only as aggregates: stream sizes (Fig. 3), chunk delivery latency
// (Fig. 4), flow-table probe lengths (cache behaviour, §5.2) and per-queue
// event backlog (multicore scaling, §5.4/§6). Buckets are powers of two —
// add() is a bit_width + two increments, cheap enough for the hot path —
// and the bucket count matches SCAP_HIST_BUCKETS so the whole histogram
// mirrors into scap_stats_t without translation.
//
// Conservation laws (tests/trace/histogram_test.cpp, wired into
// ScapKernel::check_invariants):
//   - sum(buckets) == total() at all times
//   - chunk_latency_us.total() == KernelStats::chunks_delivered
//   - stream_size_bytes.total() == KernelStats::streams_terminated
//   - merge() is associative and commutative (per-core registries fold)
#pragma once

#include <bit>
#include <cstdint>

namespace scap::trace {

/// Histogram over log2-spaced buckets: bucket 0 holds the value 0, bucket i
/// (i >= 1) holds values with bit_width i, i.e. [2^(i-1), 2^i). The last
/// bucket is the overflow catch-all for everything wider.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void add(std::uint64_t value) {
    ++counts_[bucket_of(value)];
    ++total_;
  }

  /// Bucket index a value lands in (exposed for tests and exporters).
  static std::size_t bucket_of(std::uint64_t value) {
    const std::size_t width = static_cast<std::size_t>(std::bit_width(value));
    return width < kBuckets ? width : kBuckets - 1;
  }

  /// Inclusive lower bound of a bucket (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_floor(std::size_t idx) {
    return idx == 0 ? 0 : std::uint64_t{1} << (idx - 1);
  }

  std::uint64_t total() const { return total_; }
  std::uint64_t count(std::size_t idx) const { return counts_[idx]; }
  const std::uint64_t* counts() const { return counts_; }

  /// Fold another histogram in (per-core registries -> one summary).
  void merge(const Log2Histogram& other) {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }

  void reset() { *this = Log2Histogram{}; }

  friend bool operator==(const Log2Histogram&,
                         const Log2Histogram&) = default;

 private:
  std::uint64_t counts_[kBuckets] = {};
  std::uint64_t total_ = 0;
};

/// The fixed set of distributions the tracer maintains. A plain struct, not
/// a name->histogram map: the hot path indexes members directly and the
/// registry stays allocation-free.
struct MetricsRegistry {
  Log2Histogram stream_size_bytes;   // per terminated stream: total bytes seen
  Log2Histogram chunk_latency_us;    // first segment -> delivery, microseconds
  Log2Histogram flow_probe_len;      // flow-table slots probed per lookup
  Log2Histogram queue_occupancy;     // event-queue depth at maintenance ticks

  void merge(const MetricsRegistry& other) {
    stream_size_bytes.merge(other.stream_size_bytes);
    chunk_latency_us.merge(other.chunk_latency_us);
    flow_probe_len.merge(other.flow_probe_len);
    queue_occupancy.merge(other.queue_occupancy);
  }

  friend bool operator==(const MetricsRegistry&,
                         const MetricsRegistry&) = default;
};

}  // namespace scap::trace
