// Trace exporters (ISSUE 4; DESIGN.md §10): a stable text serialization the
// golden-trace tests diff, a Chrome trace_event JSON export for
// chrome://tracing / Perfetto, and a compact binary format consumed by
// tools/scap_trace. scap_trace lives below the kernel in the dependency
// graph, so kernel enum names (Verdict, StreamStatus, EventType) arrive via
// the Schema function-pointer table instead of a link-time dependency.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace scap::trace {

/// Name lookups for type-specific event payloads. Null members fall back to
/// numeric printing, so the exporters work with a default Schema too.
struct Schema {
  const char* (*verdict_name)(std::uint16_t) = nullptr;  // kPacketVerdict a16
  const char* (*status_name)(std::uint16_t) = nullptr;   // kStreamTerminated
  const char* (*event_name)(std::uint16_t) = nullptr;    // kEventDispatched
};

/// The kernel-aware Schema used by chaos_run, capi and the tests. Defined in
/// src/scap/trace_schema.cpp (above the kernel in the layering).
const Schema& kernel_schema();

/// One event as one stable text line (no pointers, no locale, fixed field
/// order) — the unit the golden files are built from.
std::string format_event(const TraceEvent& ev, const Schema& schema);

/// Full text serialization: header (core count, event count, drop count)
/// followed by one format_event line per event in snapshot order.
void write_text(const Tracer& tracer, const Schema& schema, std::ostream& os);

/// Histogram summary block (also stable; appended to text dumps).
void write_histograms(const MetricsRegistry& metrics, std::ostream& os);

/// Chrome trace_event JSON (chrome://tracing, Perfetto). Instant events on
/// per-core rows; timestamps in microseconds as the format requires.
void write_chrome_json(const Tracer& tracer, const Schema& schema,
                       std::ostream& os);

// ---- compact binary format ("SCTR") ----
//
//   magic "SCTR" | u32 version=1 | u32 cores | u64 event count | u64 dropped
//   | events (32 bytes each, host little-endian, snapshot order)
//   | 4 histograms, each: u64 total + kBuckets u64 counts
//     (order: stream_size_bytes, chunk_latency_us, flow_probe_len,
//      queue_occupancy)

inline constexpr std::uint32_t kBinaryVersion = 1;

/// In-memory image of a binary trace file (what tools/scap_trace loads).
struct BinaryTrace {
  std::uint32_t cores = 0;
  std::uint64_t dropped = 0;
  std::vector<TraceEvent> events;
  MetricsRegistry metrics;
};

void write_binary(const Tracer& tracer, std::ostream& os);

/// Returns false (and fills `error`) on a truncated or foreign file.
bool read_binary(std::istream& is, BinaryTrace* out, std::string* error);

}  // namespace scap::trace
