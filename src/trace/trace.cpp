#include "trace/trace.hpp"

#include <algorithm>

namespace scap::trace {

const char* to_string(TraceEventType t) {
  switch (t) {
    case TraceEventType::kPacketVerdict:
      return "packet_verdict";
    case TraceEventType::kStreamCreated:
      return "stream_created";
    case TraceEventType::kChunkDelivered:
      return "chunk_delivered";
    case TraceEventType::kStreamTerminated:
      return "stream_terminated";
    case TraceEventType::kPplWatermark:
      return "ppl_watermark";
    case TraceEventType::kPplCutoffChange:
      return "ppl_cutoff_change";
    case TraceEventType::kFdirInstall:
      return "fdir_install";
    case TraceEventType::kFdirEvict:
      return "fdir_evict";
    case TraceEventType::kNicSteer:
      return "nic_steer";
    case TraceEventType::kNicDrop:
      return "nic_drop";
    case TraceEventType::kMaintenanceTick:
      return "maintenance_tick";
    case TraceEventType::kEventDispatched:
      return "event_dispatched";
    case TraceEventType::kRingShed:
      return "ring_shed";
    case TraceEventType::kWorkerStall:
      return "worker_stall";
  }
  return "unknown";
}

Tracer::Tracer(const TraceConfig& config) {
  const int cores = config.cores > 0 ? config.cores : 1;
  rings_.reserve(static_cast<std::size_t>(cores));
  for (int i = 0; i < cores; ++i) rings_.emplace_back(config.ring_capacity);
}

std::uint64_t Tracer::recorded_of(TraceEventType t) const {
  std::uint64_t sum = 0;
  for (const auto& ring : rings_) sum += ring.recorded_of(t);
  return sum;
}

std::uint64_t Tracer::recorded() const {
  std::uint64_t sum = 0;
  for (const auto& ring : rings_) sum += ring.recorded();
  return sum;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t sum = 0;
  for (const auto& ring : rings_) sum += ring.dropped();
  return sum;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<TraceEvent> merged;
  std::size_t n = 0;
  for (const auto& ring : rings_) n += ring.size();
  merged.reserve(n);
  // Tag each event with its ring position so the sort key (ts, core, seq)
  // is a total order: identical runs produce byte-identical snapshots.
  struct Keyed {
    TraceEvent ev;
    std::size_t seq;
  };
  std::vector<Keyed> keyed;
  keyed.reserve(n);
  for (const auto& ring : rings_) {
    for (std::size_t i = 0; i < ring.size(); ++i) {
      keyed.push_back({ring.at(i), i});
    }
  }
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const Keyed& a, const Keyed& b) {
                     if (a.ev.ts_ns != b.ev.ts_ns)
                       return a.ev.ts_ns < b.ev.ts_ns;
                     if (a.ev.core != b.ev.core) return a.ev.core < b.ev.core;
                     return a.seq < b.seq;
                   });
  for (const auto& k : keyed) merged.push_back(k.ev);
  return merged;
}

}  // namespace scap::trace
