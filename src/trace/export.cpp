#include "trace/export.hpp"

#include <cstring>
#include <ostream>
#include <istream>
#include <sstream>

namespace scap::trace {
namespace {

void append_name_or_number(std::string& out, const char* (*lookup)(std::uint16_t),
                           std::uint16_t value) {
  if (lookup != nullptr) {
    const char* name = lookup(value);
    if (name != nullptr) {
      out += name;
      return;
    }
  }
  out += std::to_string(value);
}

}  // namespace

std::string format_event(const TraceEvent& ev, const Schema& schema) {
  // Fixed field order, decimal only: this string is the golden-file format.
  std::string line;
  line.reserve(96);
  line += std::to_string(ev.ts_ns);
  line += " c";
  line += std::to_string(ev.core);
  line += ' ';
  line += to_string(ev.type);
  switch (ev.type) {
    case TraceEventType::kPacketVerdict:
      line += " stream=";
      line += std::to_string(ev.stream);
      line += " verdict=";
      append_name_or_number(line, schema.verdict_name, ev.a16);
      line += " wire_bytes=";
      line += std::to_string(ev.a32);
      break;
    case TraceEventType::kStreamCreated:
      line += " stream=";
      line += std::to_string(ev.stream);
      line += " core=";
      line += std::to_string(ev.a16);
      line += " priority=";
      line += std::to_string(ev.a32);
      break;
    case TraceEventType::kChunkDelivered:
      line += " stream=";
      line += std::to_string(ev.stream);
      line += " bytes=";
      line += std::to_string(ev.a32);
      line += " offset=";
      line += std::to_string(ev.a64);
      break;
    case TraceEventType::kStreamTerminated:
      line += " stream=";
      line += std::to_string(ev.stream);
      line += " status=";
      append_name_or_number(line, schema.status_name, ev.a16);
      line += " bytes=";
      line += std::to_string(ev.a64);
      break;
    case TraceEventType::kPplWatermark:
      line += ev.a16 != 0 ? " dir=rising" : " dir=falling";
      line += " occupancy_permille=";
      line += std::to_string(ev.a32);
      break;
    case TraceEventType::kPplCutoffChange:
      line += ev.a16 != 0 ? " overload=1" : " overload=0";
      line += " cutoff=";
      line += std::to_string(ev.a64);
      break;
    case TraceEventType::kFdirInstall:
      line += " stream=";
      line += std::to_string(ev.stream);
      line += ev.a16 == 0   ? " kind=install"
              : ev.a16 == 1 ? " kind=reinstall"
                            : " kind=rejected";
      break;
    case TraceEventType::kFdirEvict:
      line += " stream=";
      line += std::to_string(ev.stream);
      line += ev.a16 == 0 ? " kind=removed" : " kind=timeout";
      break;
    case TraceEventType::kNicSteer:
      line += " stream=";
      line += std::to_string(ev.stream);
      line += " queue=";
      line += std::to_string(ev.a16);
      line += " wire_bytes=";
      line += std::to_string(ev.a32);
      break;
    case TraceEventType::kNicDrop:
      line += " stream=";
      line += std::to_string(ev.stream);
      line += " wire_bytes=";
      line += std::to_string(ev.a32);
      break;
    case TraceEventType::kMaintenanceTick:
      line += " active_streams=";
      line += std::to_string(ev.a32);
      line += " chunk_bytes=";
      line += std::to_string(ev.a64);
      break;
    case TraceEventType::kEventDispatched:
      line += " stream=";
      line += std::to_string(ev.stream);
      line += " event=";
      append_name_or_number(line, schema.event_name, ev.a16);
      line += " bytes=";
      line += std::to_string(ev.a32);
      break;
    case TraceEventType::kRingShed:
      line += " priority=";
      line += std::to_string(ev.a16);
      line += " wire_bytes=";
      line += std::to_string(ev.a32);
      line += " occupancy=";
      line += std::to_string(ev.a64);
      break;
    case TraceEventType::kWorkerStall:
      line += ev.a16 == 0 ? " policy=fatal" : " policy=degrade";
      line += " outstanding=";
      line += std::to_string(ev.a32);
      break;
  }
  return line;
}

void write_text(const Tracer& tracer, const Schema& schema, std::ostream& os) {
  os << "scap-trace v" << kBinaryVersion << " cores=" << tracer.cores()
     << " events=" << tracer.recorded() << " dropped=" << tracer.dropped()
     << '\n';
  for (const TraceEvent& ev : tracer.snapshot()) {
    os << format_event(ev, schema) << '\n';
  }
}

void write_histograms(const MetricsRegistry& metrics, std::ostream& os) {
  struct Named {
    const char* name;
    const Log2Histogram* hist;
  };
  const Named named[] = {
      {"stream_size_bytes", &metrics.stream_size_bytes},
      {"chunk_latency_us", &metrics.chunk_latency_us},
      {"flow_probe_len", &metrics.flow_probe_len},
      {"queue_occupancy", &metrics.queue_occupancy},
  };
  for (const Named& h : named) {
    os << "hist " << h.name << " total=" << h.hist->total();
    for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
      if (h.hist->count(i) == 0) continue;
      os << " b" << i << "=" << h.hist->count(i);
    }
    os << '\n';
  }
}

void write_chrome_json(const Tracer& tracer, const Schema& schema,
                       std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : tracer.snapshot()) {
    if (!first) os << ',';
    first = false;
    // Instant events, microsecond timestamps, one "thread" per core.
    os << "{\"name\":\"" << to_string(ev.type) << "\",\"ph\":\"i\",\"s\":\"t\""
       << ",\"pid\":1,\"tid\":" << static_cast<int>(ev.core)
       << ",\"ts\":" << ev.ts_ns / 1000 << ",\"args\":{\"detail\":\"";
    // format_event output is decimal + [a-z_= ] only, so it embeds in a JSON
    // string without escaping.
    os << format_event(ev, schema) << "\"}}";
  }
  os << "]}";
  os << '\n';
}

namespace {

void write_u32(std::ostream& os, std::uint32_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}
bool read_u32(std::istream& is, std::uint32_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return is.good();
}
bool read_u64(std::istream& is, std::uint64_t* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return is.good();
}

void write_hist(std::ostream& os, const Log2Histogram& hist) {
  write_u64(os, hist.total());
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    write_u64(os, hist.count(i));
  }
}

bool read_hist(std::istream& is, Log2Histogram* hist) {
  std::uint64_t total = 0;
  if (!read_u64(is, &total)) return false;
  std::uint64_t remaining = total;
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    std::uint64_t count = 0;
    if (!read_u64(is, &count)) return false;
    // Rebuild via add() so the in-memory totals stay self-consistent.
    for (; count > 0 && remaining > 0; --count, --remaining) {
      hist->add(Log2Histogram::bucket_floor(i));
    }
    if (count != 0) return false;  // counts exceed the recorded total
  }
  return remaining == 0;
}

constexpr char kMagic[4] = {'S', 'C', 'T', 'R'};

}  // namespace

void write_binary(const Tracer& tracer, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  write_u32(os, kBinaryVersion);
  write_u32(os, static_cast<std::uint32_t>(tracer.cores()));
  const std::vector<TraceEvent> events = tracer.snapshot();
  write_u64(os, events.size());
  write_u64(os, tracer.dropped());
  for (const TraceEvent& ev : events) {
    os.write(reinterpret_cast<const char*>(&ev), sizeof(ev));
  }
  const MetricsRegistry& m = tracer.metrics();
  write_hist(os, m.stream_size_bytes);
  write_hist(os, m.chunk_latency_us);
  write_hist(os, m.flow_probe_len);
  write_hist(os, m.queue_occupancy);
}

bool read_binary(std::istream& is, BinaryTrace* out, std::string* error) {
  const auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  if (!is.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("not a scap trace file (bad magic)");
  }
  std::uint32_t version = 0;
  if (!read_u32(is, &version) || version != kBinaryVersion) {
    return fail("unsupported trace version");
  }
  std::uint64_t count = 0;
  if (!read_u32(is, &out->cores) || !read_u64(is, &count) ||
      !read_u64(is, &out->dropped)) {
    return fail("truncated header");
  }
  // 1B events at 32B each would be a 32GB file; anything claiming more is
  // corrupt, and the cap keeps a bad header from driving a huge reserve().
  if (count > (std::uint64_t{1} << 30)) return fail("implausible event count");
  out->events.resize(static_cast<std::size_t>(count));
  for (TraceEvent& ev : out->events) {
    is.read(reinterpret_cast<char*>(&ev), sizeof(ev));
    if (!is.good()) return fail("truncated event block");
    if (static_cast<std::size_t>(ev.type) >= kNumTraceEventTypes) {
      return fail("corrupt event type");
    }
  }
  if (!read_hist(is, &out->metrics.stream_size_bytes) ||
      !read_hist(is, &out->metrics.chunk_latency_us) ||
      !read_hist(is, &out->metrics.flow_probe_len) ||
      !read_hist(is, &out->metrics.queue_occupancy)) {
    return fail("truncated or inconsistent histogram block");
  }
  return true;
}

}  // namespace scap::trace
