// Flow-level distributions for the synthetic campus-trace workload.
//
// The paper's trace (46 GB, 1.49 M flows, 95.4 % TCP) has the heavy-tailed
// size mix typical of campus access links: most flows are small (web
// requests, DNS), a small fraction of elephants carries most of the bytes.
// That skew is the precondition for the cutoff experiments — "cutting the
// long tails of large flows" only saves work if tails dominate. We model
// flow sizes as a log-normal body with a Pareto tail.
#pragma once

#include <cstdint>

#include "base/rng.hpp"

namespace scap::flowgen {

struct FlowSizeModel {
  // Log-normal body: median ~ exp(mu) bytes.
  double body_mu = 8.2;      // median ~3.6 KB
  double body_sigma = 1.6;
  // Pareto tail: P(tail) of flows are elephants >= tail_xm bytes.
  double tail_probability = 0.04;
  double tail_xm = 200.0 * 1024;
  double tail_alpha = 1.2;   // infinite variance: genuinely heavy
  std::uint64_t min_bytes = 64;
  std::uint64_t max_bytes = 64ull * 1024 * 1024;  // cap ridiculous samples

  std::uint64_t sample(Rng& rng) const {
    double bytes = rng.chance(tail_probability)
                       ? rng.pareto(tail_xm, tail_alpha)
                       : rng.lognormal(body_mu, body_sigma);
    if (bytes < static_cast<double>(min_bytes)) {
      bytes = static_cast<double>(min_bytes);
    }
    if (bytes > static_cast<double>(max_bytes)) {
      bytes = static_cast<double>(max_bytes);
    }
    return static_cast<std::uint64_t>(bytes);
  }
};

/// Server-port mix for generated flows (campus-ish: web dominates).
struct PortMix {
  /// Returns a well-known destination port (TCP) for a new flow.
  std::uint16_t sample_tcp(Rng& rng) const {
    const double u = rng.uniform();
    if (u < 0.55) return 80;
    if (u < 0.75) return 443;
    if (u < 0.80) return 25;
    if (u < 0.85) return 22;
    if (u < 0.90) return 8080;
    return static_cast<std::uint16_t>(1024 + rng.bounded(50000));
  }
  std::uint16_t sample_udp(Rng& rng) const {
    const double u = rng.uniform();
    if (u < 0.6) return 53;
    if (u < 0.8) return 123;
    return static_cast<std::uint16_t>(1024 + rng.bounded(50000));
  }
};

}  // namespace scap::flowgen
