#include "flowgen/workload.hpp"

#include <algorithm>
#include <cmath>

#include "base/hash.hpp"
#include "flowgen/multiplex.hpp"
#include "packet/craft.hpp"

namespace scap::flowgen {
namespace {

// Filler alphabet deliberately excludes match::kPatternMarker ('#') so that
// ground-truth match counts are exact.
constexpr char kFillerAlphabet[] =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 .,;:/-_"
    "\r\n<>=\"'()&?!%+*";
constexpr std::size_t kFillerPoolSize = 1 << 20;

/// Shared deterministic filler pool; payload bytes are slices of it.
const std::vector<std::uint8_t>& filler_pool() {
  static const std::vector<std::uint8_t> pool = [] {
    std::vector<std::uint8_t> p(kFillerPoolSize);
    Rng rng(0xf111e7);
    for (auto& b : p) {
      b = static_cast<std::uint8_t>(
          kFillerAlphabet[rng.bounded(sizeof(kFillerAlphabet) - 1)]);
    }
    return p;
  }();
  return pool;
}

/// One planted pattern instance in a directional stream.
struct Plant {
  std::uint64_t offset;
  const std::string* pattern;
};

/// Fill `out` with the bytes of a directional stream at [off, off+len),
/// applying any plants that overlap the range.
void stream_bytes(std::uint64_t flow_salt, std::uint64_t off,
                  std::span<std::uint8_t> out,
                  const std::vector<Plant>& plants) {
  const auto& pool = filler_pool();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = pool[(flow_salt + off + i) % kFillerPoolSize];
  }
  for (const Plant& plant : plants) {
    const std::uint64_t p_lo = plant.offset;
    const std::uint64_t p_hi = plant.offset + plant.pattern->size();
    const std::uint64_t s_lo = off;
    const std::uint64_t s_hi = off + out.size();
    const std::uint64_t lo = std::max(p_lo, s_lo);
    const std::uint64_t hi = std::min(p_hi, s_hi);
    for (std::uint64_t pos = lo; pos < hi; ++pos) {
      out[pos - s_lo] =
          static_cast<std::uint8_t>((*plant.pattern)[pos - p_lo]);
    }
  }
}

struct PendingPacket {
  Timestamp ts;
  Packet pkt;
};

}  // namespace

Trace build_trace(const WorkloadConfig& config) {
  Rng rng(config.seed);
  Trace trace;
  trace.flows.reserve(config.flows);
  std::vector<PendingPacket> pending;

  for (std::size_t f = 0; f < config.flows; ++f) {
    FlowTruth truth;
    const bool tcp = rng.chance(config.tcp_fraction);
    truth.tcp = tcp;

    FiveTuple tuple;
    tuple.src_ip = 0x0a000000 + static_cast<std::uint32_t>(rng.bounded(1 << 16));
    tuple.dst_ip = 0xc0a80000 + static_cast<std::uint32_t>(rng.bounded(1 << 12));
    tuple.src_port = static_cast<std::uint16_t>(20000 + rng.bounded(40000));
    tuple.dst_port = tcp ? config.ports.sample_tcp(rng)
                         : config.ports.sample_udp(rng);
    tuple.protocol = tcp ? kProtoTcp : kProtoUdp;
    truth.tuple = tuple;

    const std::uint64_t size = config.sizes.sample(rng);
    // Per-flow throughput: log-uniform 2..50 Mbit/s, raised where needed so
    // no flow lasts longer than half the trace window — otherwise a few
    // elephants would trail far past the window and the trace's
    // instantaneous rate would be far from stationary (replay calibrates
    // against the MEAN rate).
    double mbps = 2.0 * std::pow(25.0, rng.uniform());
    const double max_flow_sec = config.duration_sec * 0.5;
    const double min_mbps =
        static_cast<double>(size) * 8.0 / (max_flow_sec * 1e6);
    if (mbps < min_mbps) mbps = min_mbps;
    const double sec_per_byte = 8.0 / (mbps * 1e6);
    // Arrival chosen so the flow finishes inside the window.
    const double flow_sec = static_cast<double>(size) * sec_per_byte;
    const double latest_start =
        std::max(0.1, config.duration_sec - flow_sec);
    Timestamp t = Timestamp::from_sec(rng.uniform() * latest_start);
    const std::uint64_t flow_salt = mix64(config.seed ^ (f * 0x9e37ULL));

    // Request/response split (TCP): small request, bulk response.
    const std::uint64_t request_bytes = std::max<std::uint64_t>(
        64, static_cast<std::uint64_t>(static_cast<double>(size) *
                                       config.request_fraction));
    const std::uint64_t response_bytes =
        size > request_bytes ? size - request_bytes : 64;

    // Pattern plants go into the server->client stream's head (TCP only:
    // the attack-signature workload is web traffic).
    std::vector<Plant> plants;
    if (tcp && !config.patterns.empty() &&
        rng.chance(config.plant_probability)) {
      const std::string& pat =
          config.patterns[rng.bounded(config.patterns.size())];
      if (response_bytes > pat.size()) {
        const std::uint64_t window =
            std::min<std::uint64_t>(config.plant_window,
                                    response_bytes - pat.size());
        plants.push_back({rng.bounded(window + 1), &pat});
        truth.planted_matches = 1;
        trace.planted_matches += 1;
      }
    }

    auto emit = [&](Packet pkt) {
      truth.packets++;
      trace.total_wire_bytes += pkt.wire_len();
      pending.push_back({pkt.timestamp(), std::move(pkt)});
    };

    if (tcp) {
      std::uint32_t cseq = static_cast<std::uint32_t>(rng.next_u32());
      std::uint32_t sseq = static_cast<std::uint32_t>(rng.next_u32());
      const Duration rtt_step = Duration::from_usec(50);

      TcpSegmentSpec spec;
      spec.tuple = tuple;
      spec.seq = cseq;
      spec.flags = kTcpSyn;
      emit(make_tcp_packet(spec, t));
      t = t + rtt_step;
      cseq += 1;

      spec = TcpSegmentSpec{};
      spec.tuple = tuple.reversed();
      spec.seq = sseq;
      spec.ack = cseq;
      spec.flags = kTcpSyn | kTcpAck;
      emit(make_tcp_packet(spec, t));
      t = t + rtt_step;
      sseq += 1;

      spec = TcpSegmentSpec{};
      spec.tuple = tuple;
      spec.seq = cseq;
      spec.ack = sseq;
      spec.flags = kTcpAck;
      emit(make_tcp_packet(spec, t));
      t = t + rtt_step;

      truth.client_bytes = request_bytes;
      truth.server_bytes = response_bytes;
      trace.total_payload_bytes += request_bytes + response_bytes;

      // Collect this flow's data packets so impairments can reorder them.
      std::vector<Packet> data_pkts;
      std::vector<std::uint8_t> buf;
      auto send_stream = [&](bool client, std::uint64_t total,
                             const std::vector<Plant>& stream_plants) {
        std::uint64_t off = 0;
        int segs_since_ack = 0;
        const std::uint64_t salt =
            client ? flow_salt : mix64(flow_salt ^ 0x5e55);
        while (off < total) {
          const auto len = static_cast<std::uint32_t>(
              std::min<std::uint64_t>(config.mss, total - off));
          buf.resize(len);
          stream_bytes(salt, off, buf, stream_plants);
          TcpSegmentSpec d;
          d.tuple = client ? tuple : tuple.reversed();
          d.seq = client ? cseq : sseq;
          d.ack = client ? sseq : cseq;
          d.flags = kTcpAck | kTcpPsh;
          d.payload = buf;
          data_pkts.push_back(make_tcp_packet(d, t));
          if (client) {
            cseq += len;
          } else {
            sseq += len;
          }
          off += len;
          t = t + Duration(static_cast<std::int64_t>(
                  (static_cast<double>(len) + 58.0) * sec_per_byte * 1e9));
          // Delayed ACK from the receiver every other segment — real
          // traffic is ~1/3 pure ACKs, and they are precisely what Scap's
          // FDIR filters drop before main memory.
          if (++segs_since_ack >= 2) {
            segs_since_ack = 0;
            TcpSegmentSpec a;
            a.tuple = client ? tuple.reversed() : tuple;
            a.seq = client ? sseq : cseq;
            a.ack = client ? cseq : sseq;
            a.flags = kTcpAck;
            data_pkts.push_back(make_tcp_packet(a, t));
            t = t + Duration(static_cast<std::int64_t>(
                    64.0 * sec_per_byte * 1e9));
          }
        }
      };
      send_stream(true, request_bytes, {});
      send_stream(false, response_bytes, plants);

      // Impairments: duplication and adjacent reordering.
      if (config.duplicate_probability > 0 || config.reorder_probability > 0) {
        std::vector<Packet> mutated;
        mutated.reserve(data_pkts.size() + 4);
        for (std::size_t i = 0; i < data_pkts.size(); ++i) {
          if (config.reorder_probability > 0 && i + 1 < data_pkts.size() &&
              rng.chance(config.reorder_probability)) {
            // Swap packet i and i+1 (timestamps swap with them so the
            // trace stays time-ordered).
            Packet a = data_pkts[i];
            Packet b = data_pkts[i + 1];
            const Timestamp ta = a.timestamp();
            a.set_timestamp(b.timestamp());
            b.set_timestamp(ta);
            mutated.push_back(std::move(b));
            mutated.push_back(std::move(a));
            ++i;
            continue;
          }
          mutated.push_back(data_pkts[i]);
          if (config.duplicate_probability > 0 &&
              rng.chance(config.duplicate_probability)) {
            mutated.push_back(data_pkts[i]);  // exact retransmission
          }
        }
        data_pkts = std::move(mutated);
      }
      for (auto& pkt : data_pkts) emit(std::move(pkt));

      // Closure: FIN (90%), RST (5%), or silent timeout (5%).
      const double close = rng.uniform();
      if (close < 0.90) {
        TcpSegmentSpec fin;
        fin.tuple = tuple;
        fin.seq = cseq;
        fin.ack = sseq;
        fin.flags = kTcpFin | kTcpAck;
        emit(make_tcp_packet(fin, t));
        TcpSegmentSpec sfin;
        sfin.tuple = tuple.reversed();
        sfin.seq = sseq;
        sfin.ack = cseq + 1;
        sfin.flags = kTcpFin | kTcpAck;
        emit(make_tcp_packet(sfin, t + Duration::from_usec(30)));
      } else if (close < 0.95) {
        TcpSegmentSpec rst;
        rst.tuple = tuple;
        rst.seq = cseq;
        rst.flags = kTcpRst;
        emit(make_tcp_packet(rst, t));
      }
    } else {
      // UDP: client->server datagrams only.
      truth.client_bytes = size;
      trace.total_payload_bytes += size;
      std::uint64_t off = 0;
      std::vector<std::uint8_t> buf;
      while (off < size) {
        const auto len = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(1400, size - off));
        buf.resize(len);
        stream_bytes(flow_salt, off, buf, {});
        emit(make_udp_packet(tuple, buf, t));
        off += len;
        t = t + Duration(static_cast<std::int64_t>(
                (static_cast<double>(len) + 46.0) * sec_per_byte * 1e9));
      }
    }
    trace.flows.push_back(truth);
  }

  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingPacket& a, const PendingPacket& b) {
                     return a.ts < b.ts;
                   });
  trace.packets.reserve(pending.size());
  for (auto& pp : pending) trace.packets.push_back(std::move(pp.pkt));
  if (!trace.packets.empty()) {
    trace.natural_duration_sec = trace.packets.back().timestamp().sec();
  }
  return trace;
}

Trace build_concurrent_trace(std::size_t concurrent,
                             std::uint32_t pkts_per_stream,
                             std::uint32_t payload_bytes,
                             std::uint64_t seed) {
  (void)seed;  // the multiplexed layout is fully deterministic
  Trace trace;
  ConcurrentPacketSource source(concurrent, pkts_per_stream, payload_bytes);
  trace.flows.reserve(concurrent);
  for (std::size_t i = 0; i < concurrent; ++i) {
    FlowTruth truth;
    truth.tuple = source.tuple_of(i);
    truth.client_bytes =
        static_cast<std::uint64_t>(pkts_per_stream) * payload_bytes;
    truth.packets = pkts_per_stream + 2;
    trace.flows.push_back(truth);
  }
  trace.total_payload_bytes =
      static_cast<std::uint64_t>(concurrent) * pkts_per_stream * payload_bytes;
  trace.packets.reserve(source.total_packets());
  while (auto pkt = source.next()) {
    trace.total_wire_bytes += pkt->wire_len();
    trace.packets.push_back(std::move(*pkt));
  }
  if (!trace.packets.empty()) {
    trace.natural_duration_sec = trace.packets.back().timestamp().sec();
  }
  return trace;
}

}  // namespace scap::flowgen
