#include "flowgen/replay.hpp"

namespace scap::flowgen {

void Replayer::for_each(FunctionRef<void(const Packet&)> fn) const {
  const double loop_span_sec =
      trace_.natural_duration_sec * scale_ +
      1e-6;  // tiny gap between loops so timestamps stay strictly ordered
  for (int loop = 0; loop < loops_; ++loop) {
    const double base_sec = loop_span_sec * loop;
    // Distinct /16 per loop keeps flows from colliding across loops.
    const std::uint32_t ip_offset = static_cast<std::uint32_t>(loop) << 16;
    for (const Packet& pkt : trace_.packets) {
      const Timestamp ts = Timestamp::from_sec(
          base_sec + pkt.timestamp().sec() * scale_);
      if (loop == 0) {
        Packet p = pkt;
        p.set_timestamp(ts);
        fn(p);
      } else {
        fn(pkt.remapped(ip_offset, ts));
      }
    }
  }
}

}  // namespace scap::flowgen
