// Synthetic workload builder: generates a timestamped packet trace with
// full TCP sessions, heavy-tailed sizes, plantable attack patterns, and
// per-flow ground truth — the stand-in for the paper's campus trace.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/clock.hpp"
#include "flowgen/distributions.hpp"
#include "packet/packet.hpp"

namespace scap::flowgen {

struct WorkloadConfig {
  std::uint64_t seed = 42;
  std::size_t flows = 2000;
  double tcp_fraction = 0.954;  // the paper's trace is 95.4% TCP
  FlowSizeModel sizes;
  PortMix ports;
  /// Natural duration over which flow arrivals spread (replay rescales).
  double duration_sec = 10.0;
  std::uint32_t mss = 1460;
  /// Fraction of request bytes (client->server) of each TCP flow's size.
  double request_fraction = 0.08;

  // Pattern planting (pattern-matching experiments). Every planted pattern
  // lands in the first `plant_window` bytes of the server->client stream —
  // web-attack signatures match near the start of HTTP requests/responses
  // (paper §6.5).
  std::vector<std::string> patterns;
  double plant_probability = 0.15;  // per flow
  std::uint32_t plant_window = 4 * 1024;

  // Generator-side impairment injection (for strict-mode tests).
  double reorder_probability = 0.0;   // per data packet: swap with next
  double duplicate_probability = 0.0; // per data packet: send twice
};

struct FlowTruth {
  FiveTuple tuple;              // client -> server
  std::uint64_t client_bytes = 0;
  std::uint64_t server_bytes = 0;
  std::uint32_t packets = 0;
  std::uint32_t planted_matches = 0;
  bool tcp = true;
};

struct Trace {
  std::vector<Packet> packets;  // timestamp-ordered
  std::vector<FlowTruth> flows;
  std::uint64_t total_wire_bytes = 0;
  std::uint64_t total_payload_bytes = 0;
  std::uint64_t planted_matches = 0;
  double natural_duration_sec = 0.0;

  /// Average rate of the trace when played at natural speed, Gbit/s.
  double natural_rate_gbps() const {
    return natural_duration_sec > 0
               ? static_cast<double>(total_wire_bytes) * 8 /
                     natural_duration_sec / 1e9
               : 0.0;
  }
};

/// Build a complete trace. Deterministic for a given config.
Trace build_trace(const WorkloadConfig& config);

/// Fig. 5 workload: `concurrent` interleaved TCP streams, each
/// `pkts_per_stream` data packets of `payload_bytes`, multiplexed so that
/// all of them are simultaneously open.
Trace build_concurrent_trace(std::size_t concurrent,
                             std::uint32_t pkts_per_stream = 100,
                             std::uint32_t payload_bytes = 1460,
                             std::uint64_t seed = 7);

}  // namespace scap::flowgen
