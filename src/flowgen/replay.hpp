// Open-loop trace replay at a target rate — the paper's tcpreplay stand-in.
//
// The evaluation replays one trace at rates from 0.25 to 6 Gbit/s; rate
// changes rescale packet timestamps, and looping the trace extends the
// experiment (the paper replays each trace part 10 times). Each loop
// iteration shifts all IP addresses so that its flows are distinct — the
// frame bytes are shared, so looping costs no extra memory.
#pragma once

#include <cstdint>

#include "base/function_ref.hpp"
#include "flowgen/workload.hpp"

namespace scap::flowgen {

class Replayer {
 public:
  /// Replays `trace` at `rate_gbps`, `loops` times back to back.
  Replayer(const Trace& trace, double rate_gbps, int loops = 1)
      : trace_(trace),
        loops_(loops > 0 ? loops : 1),
        scale_(compute_scale(trace, rate_gbps)),
        rate_gbps_(rate_gbps) {}

  /// Invoke `fn(packet)` for every replayed packet in time order. Packet
  /// timestamps are rescaled to the target rate.
  void for_each(FunctionRef<void(const Packet&)> fn) const;

  /// Total virtual duration of the full replay in seconds.
  double duration_sec() const {
    return static_cast<double>(trace_.total_wire_bytes) * 8 *
           static_cast<double>(loops_) / (rate_gbps_ * 1e9);
  }

  std::uint64_t total_packets() const {
    return static_cast<std::uint64_t>(trace_.packets.size()) *
           static_cast<std::uint64_t>(loops_);
  }

  double rate_gbps() const { return rate_gbps_; }
  int loops() const { return loops_; }

 private:
  static double compute_scale(const Trace& trace, double rate_gbps) {
    const double natural = trace.natural_rate_gbps();
    return natural > 0 && rate_gbps > 0 ? natural / rate_gbps : 1.0;
  }

  const Trace& trace_;
  int loops_;
  double scale_;
  double rate_gbps_;
};

}  // namespace scap::flowgen
