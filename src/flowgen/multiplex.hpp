// Streaming generator for the concurrent-streams experiment (paper §6.4 /
// Fig. 5): N interleaved TCP streams of `pkts_per_stream` packets each,
// multiplexed round-robin so that all N are simultaneously open.
//
// Materializing the full trace at N = 10^6..10^7 would need tens of GB, so
// this source stamps out packets on demand from three crafted templates
// (SYN, data, FIN), patching only per-packet metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "packet/packet.hpp"

namespace scap::flowgen {

class ConcurrentPacketSource {
 public:
  ConcurrentPacketSource(std::size_t concurrent,
                         std::uint32_t pkts_per_stream = 100,
                         std::uint32_t payload_bytes = 1460,
                         double rate_gbps = 1.0);

  /// Next packet of the multiplexed trace, or nullopt at the end.
  std::optional<Packet> next();

  std::uint64_t total_packets() const {
    return static_cast<std::uint64_t>(concurrent_) * (pkts_per_stream_ + 2);
  }
  std::size_t concurrent() const { return concurrent_; }
  std::uint64_t emitted() const { return emitted_; }

  FiveTuple tuple_of(std::size_t stream) const;

 private:
  enum class Phase { kSyn, kData, kFin, kDone };

  Packet stamp(const Packet& tmpl, std::size_t stream, std::uint32_t seq);

  std::size_t concurrent_;
  std::uint32_t pkts_per_stream_;
  std::uint32_t payload_bytes_;
  double sec_per_byte_;

  Packet syn_template_;
  Packet data_template_;
  Packet fin_template_;

  Phase phase_ = Phase::kSyn;
  std::size_t index_ = 0;     // stream index within the current pass
  std::uint32_t round_ = 0;   // data round
  std::uint64_t emitted_ = 0;
  std::int64_t ts_ns_ = 0;
  std::vector<std::uint32_t> seqs_;
};

}  // namespace scap::flowgen
