#include "flowgen/multiplex.hpp"

#include "packet/craft.hpp"

namespace scap::flowgen {

ConcurrentPacketSource::ConcurrentPacketSource(std::size_t concurrent,
                                               std::uint32_t pkts_per_stream,
                                               std::uint32_t payload_bytes,
                                               double rate_gbps)
    : concurrent_(concurrent ? concurrent : 1),
      pkts_per_stream_(pkts_per_stream),
      payload_bytes_(payload_bytes),
      sec_per_byte_(8.0 / (rate_gbps * 1e9)),
      seqs_(concurrent_, 1000) {
  const FiveTuple proto = tuple_of(0);
  TcpSegmentSpec syn;
  syn.tuple = proto;
  syn.flags = kTcpSyn;
  syn_template_ = make_tcp_packet(syn, Timestamp(0));

  std::vector<std::uint8_t> payload(payload_bytes_, 0x61);
  TcpSegmentSpec data;
  data.tuple = proto;
  data.flags = kTcpAck | kTcpPsh;
  data.payload = payload;
  data_template_ = make_tcp_packet(data, Timestamp(0));

  TcpSegmentSpec fin;
  fin.tuple = proto;
  fin.flags = kTcpFin | kTcpAck;
  fin_template_ = make_tcp_packet(fin, Timestamp(0));
}

FiveTuple ConcurrentPacketSource::tuple_of(std::size_t stream) const {
  FiveTuple t;
  t.src_ip = 0x0a000000 + static_cast<std::uint32_t>(stream / 50000);
  t.dst_ip = 0xc0a80001;
  t.src_port = static_cast<std::uint16_t>(1024 + (stream % 50000));
  t.dst_port = 80;
  t.protocol = kProtoTcp;
  return t;
}

Packet ConcurrentPacketSource::stamp(const Packet& tmpl, std::size_t stream,
                                     std::uint32_t seq) {
  const Packet p = tmpl.with_flow(tuple_of(stream), seq, Timestamp(ts_ns_));
  // Constant per-packet pacing at the data-packet interval, including for
  // the SYN/FIN phases: the experiment varies CONCURRENCY at a fixed rate
  // (paper §6.4); back-to-back minimum-size SYNs would instead turn the
  // ramp-up into a SYN flood and overload every system at any N.
  ts_ns_ += static_cast<std::int64_t>(
      static_cast<double>(data_template_.wire_len()) * sec_per_byte_ * 1e9);
  ++emitted_;
  return p;
}

std::optional<Packet> ConcurrentPacketSource::next() {
  switch (phase_) {
    case Phase::kSyn: {
      const std::size_t i = index_;
      Packet p = stamp(syn_template_, i, seqs_[i]);
      seqs_[i] += 1;
      if (++index_ >= concurrent_) {
        index_ = 0;
        phase_ = pkts_per_stream_ > 0 ? Phase::kData : Phase::kFin;
      }
      return p;
    }
    case Phase::kData: {
      const std::size_t i = index_;
      Packet p = stamp(data_template_, i, seqs_[i]);
      seqs_[i] += payload_bytes_;
      if (++index_ >= concurrent_) {
        index_ = 0;
        if (++round_ >= pkts_per_stream_) phase_ = Phase::kFin;
      }
      return p;
    }
    case Phase::kFin: {
      const std::size_t i = index_;
      Packet p = stamp(fin_template_, i, seqs_[i]);
      if (++index_ >= concurrent_) phase_ = Phase::kDone;
      return p;
    }
    case Phase::kDone:
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace scap::flowgen
