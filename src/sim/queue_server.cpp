#include "sim/queue_server.hpp"

namespace scap::sim {

void QueueServer::drain(scap::Timestamp now) {
  while (!queue_.empty() && queue_.front().completes <= now) {
    queued_bytes_ -= queue_.front().bytes;
    queue_.pop_front();
  }
}

bool QueueServer::offer(scap::Timestamp now, std::uint64_t bytes,
                        double cycles) {
  drain(now);
  if (queued_bytes_ + bytes > capacity_) {
    ++dropped_;
    dropped_bytes_ += bytes;
    return false;
  }
  const scap::Timestamp start = busy_until_ > now ? busy_until_ : now;
  const auto service = scap::Duration(
      static_cast<std::int64_t>(cycles / hz_ * 1e9));
  busy_until_ = start + service;
  busy_cycles_ += cycles;
  last_completion_ = busy_until_;
  queue_.push_back({busy_until_, bytes});
  queued_bytes_ += bytes;
  ++admitted_;
  admitted_bytes_ += bytes;
  return true;
}

void QueueServer::charge(scap::Timestamp now, double cycles) {
  const scap::Timestamp start = busy_until_ > now ? busy_until_ : now;
  const auto service = scap::Duration(
      static_cast<std::int64_t>(cycles / hz_ * 1e9));
  busy_until_ = start + service;
  busy_cycles_ += cycles;
  charged_cycles_ += cycles;
}

std::uint64_t QueueServer::backlog_bytes(scap::Timestamp now) {
  drain(now);
  return queued_bytes_;
}

void QueueServer::reset() {
  queue_.clear();
  queued_bytes_ = 0;
  busy_until_ = scap::Timestamp();
  last_completion_ = scap::Timestamp();
  admitted_ = dropped_ = 0;
  admitted_bytes_ = dropped_bytes_ = 0;
  busy_cycles_ = 0.0;
  charged_cycles_ = 0.0;
}

}  // namespace scap::sim
