// Cycle cost table — the calibration heart of the simulation substrate.
//
// The paper measures a real testbed (2.00 GHz Xeons, Intel 82599 10GbE). We
// replace wall-clock measurement with explicit cycle accounting: every
// datapath operation charges a cost from this table to either the softirq
// (kernel) or user context of a simulated core. A core supplies
// `core_hz` cycles per second of virtual time; work beyond that accumulates
// as backlog in the bounded queue feeding the core and eventually drops.
//
// Calibration targets (single core, ~800-byte average packets, mirroring the
// paper's campus trace) — chosen once and never tuned per experiment:
//
//   Libnids flow export / stream delivery saturates  ~2.0-2.5 Gbit/s
//   Snort Stream5 delivery saturates                 ~2.3-2.8 Gbit/s
//   YAF (96-byte snaplen, no reassembly) saturates   ~3.9-4.0 Gbit/s
//   Scap stream delivery stays loss-free through     ~5.5-6.0 Gbit/s
//   Pattern matching: Libnids/Snort ~0.75 Gbit/s, Scap ~1 Gbit/s per worker
//
// With the defaults below (avg packet ~1030B in the synthetic trace — data
// segments interleaved with delayed ACKs, like the campus mix):
//   YAF/packet      = deliver(2800) + flow(1200) + touch(96*1.2)  ≈ 4100
//                     -> saturates one 2GHz core near 4 Gbit/s
//   Libnids/packet  = deliver(2800) + flow(800) + reasm(1500) + copy(2/B)
//                     -> saturates near 2.4 Gbit/s
//   Snort/packet    = same with reasm(1100)     -> saturates near 2.6
//   Scap softirq/pkt= irq(2500) + flow(800) + reasm(400) + copy(2/B)
//   Scap user/chunk = event(2000) + touch(1.2/B) -> <60% CPU at 6 Gbit/s
//   Matching adds match_per_byte(14) wherever payload is scanned
//                     -> Scap ~1 Gbit/s per worker, baselines ~0.75.
#pragma once

#include <cstdint>

namespace scap::sim {

struct CostTable {
  // --- interrupt / kernel-side costs -------------------------------------
  /// NIC interrupt + driver receive path, charged per packet that reaches a
  /// host RX ring (softirq context). Packets dropped by FDIR at the NIC
  /// never pay this.
  double irq_per_packet = 2500.0;

  /// PF_PACKET-style copy of the captured frame into the shared capture
  /// ring (softirq context, per byte actually captured, i.e. post-snaplen).
  double ring_copy_per_byte = 2.0;

  /// Flow-table lookup + stream_t update (hash, timestamp, counters).
  /// Charged in softirq context for Scap, in user context for user-level
  /// reassembly libraries.
  double flow_update = 800.0;

  /// Scap in-kernel reassembly bookkeeping per packet (sequence tracking,
  /// hole list, chunk accounting) — cheaper than user-level reassembly
  /// because segments go straight to their stream buffer.
  double scap_reassembly_per_packet = 400.0;

  /// Copying payload bytes into a stream buffer (any context).
  double copy_per_byte = 2.0;

  /// Creating + enqueueing an event and waking the worker (softirq).
  double event_create = 500.0;

  /// Adding or removing one FDIR filter (driver MMIO; ~10us on real HW but
  /// amortized; charged in softirq context).
  double fdir_update = 2000.0;

  // --- user-side costs ----------------------------------------------------
  /// Per-packet overhead of a libpcap-style user-level delivery (poll
  /// wakeups, per-packet callback, ring bookkeeping).
  double pcap_deliver_per_packet = 2800.0;

  /// User-level TCP reassembly bookkeeping per packet (Libnids).
  double nids_reassembly_per_packet = 1500.0;

  /// User-level TCP reassembly bookkeeping per packet (Stream5 — slightly
  /// leaner than Libnids, matching the paper's relative ordering).
  double stream5_reassembly_per_packet = 1100.0;

  /// YAF per-packet flow-record update (no reassembly).
  double yaf_flow_update = 1200.0;

  /// Worker-thread event dispatch (poll, dequeue, callback invocation).
  double event_dispatch = 2000.0;

  /// Application touching delivered stream data (per byte) — the cost of
  /// reading a chunk out of the shared buffer even when doing "nothing".
  double user_touch_per_byte = 1.2;

  /// Aho-Corasick pattern matching per scanned byte.
  double match_per_byte = 14.0;

  // --- machine ------------------------------------------------------------
  /// Simulated core frequency (paper's sensor: 2.00 GHz Xeon).
  double core_hz = 2.0e9;

  /// Cores available for softirq spreading (paper's sensor: 2x quad-core).
  int num_cores = 8;
};

/// The one table used across experiments. Benches may copy and perturb it
/// only for explicitly-labelled sensitivity/ablation studies.
inline const CostTable& default_costs() {
  static const CostTable t{};
  return t;
}

}  // namespace scap::sim
