// Set-associative cache model for the locality experiment (paper Fig. 7).
//
// The paper measures L2 misses per packet with PAPI and attributes the 2x
// gap between Scap and the user-level libraries to where segment bytes live
// when the application finally reads them: Scap writes each segment directly
// into its stream's contiguous buffer (consumed together), while
// Libnids/Snort leave segments scattered at ring positions interleaved
// across thousands of flows. We reproduce the measurement by replaying the
// exact sequence of memory lines each datapath touches through a classic
// set-associative LRU cache.
#pragma once

#include <cstdint>
#include <vector>

namespace scap::sim {

class CacheModel {
 public:
  /// Defaults mirror the paper's sensor CPU: 6 MB unified L2, 64 B lines,
  /// 24-way (Xeon L5335-era shared L2).
  CacheModel(std::uint64_t size_bytes = 6 * 1024 * 1024,
             std::uint32_t line_bytes = 64, std::uint32_t ways = 24);

  /// Touch `len` bytes starting at `addr`; returns the number of misses.
  std::uint64_t access(std::uint64_t addr, std::uint64_t len);

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  void reset_counters() { hits_ = misses_ = 0; }

  std::uint32_t line_bytes() const { return line_bytes_; }
  std::uint32_t num_sets() const { return num_sets_; }

 private:
  bool touch_line(std::uint64_t line_addr);

  std::uint32_t line_bytes_;
  std::uint32_t ways_;
  std::uint32_t num_sets_;
  // tags_[set * ways + i]; lru_[set * ways + i] = age counter.
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint32_t> lru_;
  std::vector<std::uint8_t> valid_;
  std::uint32_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace scap::sim
