// Single-server FIFO queue with byte-bounded occupancy — the building block
// for every capacity-constrained stage in the pipeline (a core's softirq
// context, a user thread draining a capture ring, a worker draining an event
// queue).
//
// Work items arrive at virtual timestamps carrying (bytes, cycles). The
// server completes them in FIFO order at `hz` cycles per second. An item is
// REJECTED (dropped) when admitting it would push queued-but-unprocessed
// bytes past `capacity_bytes` — this is exactly the "ring buffer full, kernel
// drops the packet" condition of a real capture stack.
#pragma once

#include <cstdint>
#include <deque>

#include "base/clock.hpp"

namespace scap::sim {

class QueueServer {
 public:
  /// `capacity_bytes`: maximum queued (admitted but unfinished) bytes.
  /// `hz`: service rate in cycles per second of virtual time.
  QueueServer(std::uint64_t capacity_bytes, double hz)
      : capacity_(capacity_bytes), hz_(hz) {}

  /// Try to admit work arriving at time `now`. Returns true if admitted;
  /// false if the queue was full (the item is dropped and counted).
  /// `bytes` counts against queue occupancy; `cycles` is the service demand.
  bool offer(scap::Timestamp now, std::uint64_t bytes, double cycles);

  /// Charge service cycles without occupying queue space — used for work
  /// that shares the core but is never dropped here (e.g. colocated softirq
  /// load stealing cycles from a user thread).
  void charge(scap::Timestamp now, double cycles);

  /// Completion time of the most recently admitted item (server's horizon).
  scap::Timestamp busy_until() const { return busy_until_; }

  /// Virtual time at which the item admitted by the last successful offer()
  /// finishes service — when its output becomes available downstream.
  scap::Timestamp last_completion() const { return last_completion_; }

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t admitted_bytes() const { return admitted_bytes_; }
  std::uint64_t dropped_bytes() const { return dropped_bytes_; }
  double busy_cycles() const { return busy_cycles_; }
  /// Cycles stolen via charge() — e.g. colocated softirq load. Subtract
  /// from busy_cycles() to get this server's own work.
  double charged_cycles() const { return charged_cycles_; }

  /// Bytes currently queued (after draining completions up to `now`).
  std::uint64_t backlog_bytes(scap::Timestamp now);

  /// Utilization over [0, horizon]: busy cycles / available cycles.
  double utilization(scap::Timestamp horizon) const {
    const double avail = horizon.sec() * hz_;
    return avail > 0 ? busy_cycles_ / avail : 0.0;
  }

  void reset();

 private:
  void drain(scap::Timestamp now);

  struct InFlight {
    scap::Timestamp completes;
    std::uint64_t bytes;
  };

  std::uint64_t capacity_;
  double hz_;
  std::deque<InFlight> queue_;
  std::uint64_t queued_bytes_ = 0;
  scap::Timestamp busy_until_;
  scap::Timestamp last_completion_;
  std::uint64_t admitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t admitted_bytes_ = 0;
  std::uint64_t dropped_bytes_ = 0;
  double busy_cycles_ = 0.0;
  double charged_cycles_ = 0.0;
};

}  // namespace scap::sim
