#include "sim/cache.hpp"

namespace scap::sim {

namespace {
std::uint32_t round_up_pow2(std::uint32_t v) {
  std::uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}
}  // namespace

CacheModel::CacheModel(std::uint64_t size_bytes, std::uint32_t line_bytes,
                       std::uint32_t ways)
    : line_bytes_(line_bytes), ways_(ways) {
  const std::uint64_t lines = size_bytes / line_bytes;
  num_sets_ = round_up_pow2(static_cast<std::uint32_t>(lines / ways));
  if (num_sets_ == 0) num_sets_ = 1;
  tags_.assign(static_cast<std::size_t>(num_sets_) * ways_, 0);
  lru_.assign(static_cast<std::size_t>(num_sets_) * ways_, 0);
  valid_.assign(static_cast<std::size_t>(num_sets_) * ways_, 0);
}

bool CacheModel::touch_line(std::uint64_t line_addr) {
  const std::uint32_t set =
      static_cast<std::uint32_t>(line_addr & (num_sets_ - 1));
  const std::uint64_t tag = line_addr >> 1;  // keep full upper bits
  const std::size_t base = static_cast<std::size_t>(set) * ways_;
  ++tick_;
  std::size_t victim = base;
  std::uint32_t oldest = lru_[base];
  for (std::size_t i = base; i < base + ways_; ++i) {
    if (valid_[i] && tags_[i] == tag) {
      lru_[i] = tick_;
      return true;  // hit
    }
    if (!valid_[i]) {
      victim = i;
      oldest = 0;
    } else if (lru_[i] < oldest) {
      victim = i;
      oldest = lru_[i];
    }
  }
  tags_[victim] = tag;
  valid_[victim] = 1;
  lru_[victim] = tick_;
  return false;  // miss
}

std::uint64_t CacheModel::access(std::uint64_t addr, std::uint64_t len) {
  if (len == 0) return 0;
  const std::uint64_t first = addr / line_bytes_;
  const std::uint64_t last = (addr + len - 1) / line_bytes_;
  std::uint64_t miss_count = 0;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (touch_line(line)) {
      ++hits_;
    } else {
      ++misses_;
      ++miss_count;
    }
  }
  return miss_count;
}

}  // namespace scap::sim
