// Small statistics helpers shared by the simulator, benches, and reports.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace scap {

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  void reset() { *this = RunningStats{}; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bucket histogram over [0, upper); the last bucket catches overflow.
class Histogram {
 public:
  Histogram(double upper, std::size_t buckets)
      : upper_(upper), counts_(buckets + 1, 0) {}

  void add(double x) {
    if (x < 0) x = 0;
    auto idx = static_cast<std::size_t>(x / upper_ * static_cast<double>(counts_.size() - 1));
    if (idx >= counts_.size()) idx = counts_.size() - 1;
    ++counts_[idx];
    ++total_;
  }

  std::uint64_t total() const { return total_; }
  const std::vector<std::uint64_t>& buckets() const { return counts_; }

  /// Linear-interpolated quantile (q in [0,1]).
  double quantile(double q) const;

 private:
  double upper_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Percentage helper that is safe for zero denominators.
constexpr double pct(double num, double den) {
  return den > 0 ? 100.0 * num / den : 0.0;
}

}  // namespace scap
