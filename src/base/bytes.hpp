// Byte-order helpers for on-the-wire header encoding.
//
// All multi-byte protocol fields are big-endian on the wire; these helpers
// read/write them from byte buffers without alignment assumptions.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace scap {

inline std::uint16_t load_be16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

inline std::uint32_t load_be32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline void store_be16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xff);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[3] = static_cast<std::uint8_t>(v & 0xff);
}

inline std::uint32_t load_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

inline std::uint16_t load_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline void store_le16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

inline void store_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>((v >> 8) & 0xff);
  p[2] = static_cast<std::uint8_t>((v >> 16) & 0xff);
  p[3] = static_cast<std::uint8_t>((v >> 24) & 0xff);
}

}  // namespace scap
