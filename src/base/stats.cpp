#include "base/stats.hpp"

namespace scap {

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  const double bucket_width = upper_ / static_cast<double>(counts_.size() - 1);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (seen + counts_[i] >= target) {
      // Interpolate inside the bucket.
      double frac = counts_[i] ? static_cast<double>(target - seen) /
                                     static_cast<double>(counts_[i])
                               : 0.0;
      return (static_cast<double>(i) + frac) * bucket_width;
    }
    seen += counts_[i];
  }
  return upper_;
}

}  // namespace scap
