// Clang thread-safety capability annotations (DESIGN.md §11).
//
// These macros wrap the attributes behind `-Wthread-safety` so the compiler
// proves the lock discipline on every clang build instead of TSan catching
// schedules it happens to execute. On compilers without the attributes
// (gcc, MSVC) every macro expands to nothing, so the annotations are pure
// documentation there — the CI `analyze` job builds with a pinned clang and
// `-Wthread-safety -Wthread-safety-beta` promoted to errors.
//
// Vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   SCAP_CAPABILITY(name)    the class is a capability (base::Mutex)
//   SCAP_SCOPED_CAPABILITY   RAII object acquiring/releasing a capability
//   SCAP_GUARDED_BY(mu)      field may only be accessed while holding mu
//   SCAP_PT_GUARDED_BY(mu)   pointer field: the *pointee* requires mu
//   SCAP_REQUIRES(...)       function must be called with capability held
//   SCAP_ACQUIRE/RELEASE     function acquires/releases the capability
//   SCAP_TRY_ACQUIRE(b)      conditional acquire (returns b on success)
//   SCAP_EXCLUDES(...)       function must NOT be called holding it
//                            (self-deadlock documentation with teeth)
//   SCAP_ASSERT_CAPABILITY   run-time assertion that the capability is held;
//                            used where serialization is structural (inline
//                            dispatch mode) rather than a lock acquisition
//   SCAP_RETURN_CAPABILITY   accessor returning a reference to a capability
//   SCAP_NO_THREAD_SAFETY_ANALYSIS  opt a function out (last resort; every
//                            use needs a justifying comment)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define SCAP_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(SCAP_THREAD_ANNOTATION)
#define SCAP_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define SCAP_CAPABILITY(x) SCAP_THREAD_ANNOTATION(capability(x))
#define SCAP_SCOPED_CAPABILITY SCAP_THREAD_ANNOTATION(scoped_lockable)
#define SCAP_GUARDED_BY(x) SCAP_THREAD_ANNOTATION(guarded_by(x))
#define SCAP_PT_GUARDED_BY(x) SCAP_THREAD_ANNOTATION(pt_guarded_by(x))
#define SCAP_REQUIRES(...) \
  SCAP_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define SCAP_REQUIRES_SHARED(...) \
  SCAP_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define SCAP_ACQUIRE(...) \
  SCAP_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define SCAP_RELEASE(...) \
  SCAP_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define SCAP_TRY_ACQUIRE(...) \
  SCAP_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define SCAP_EXCLUDES(...) SCAP_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define SCAP_ASSERT_CAPABILITY(...) \
  SCAP_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
#define SCAP_RETURN_CAPABILITY(x) SCAP_THREAD_ANNOTATION(lock_returned(x))
#define SCAP_NO_THREAD_SAFETY_ANALYSIS \
  SCAP_THREAD_ANNOTATION(no_thread_safety_analysis)
