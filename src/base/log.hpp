// Minimal leveled logging. Benches and examples print results to stdout
// directly; the logger is for diagnostics and defaults to warnings only.
#pragma once

#include <cstdio>
#include <string>

namespace scap {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

template <typename... Args>
void logf(LogLevel level, const char* fmt, Args... args) {
  if (level < log_level()) return;
  char buf[1024];
  std::snprintf(buf, sizeof(buf), fmt, args...);
  log_message(level, buf);
}

#define SCAP_LOG_DEBUG(...) ::scap::logf(::scap::LogLevel::kDebug, __VA_ARGS__)
#define SCAP_LOG_INFO(...) ::scap::logf(::scap::LogLevel::kInfo, __VA_ARGS__)
#define SCAP_LOG_WARN(...) ::scap::logf(::scap::LogLevel::kWarn, __VA_ARGS__)
#define SCAP_LOG_ERROR(...) ::scap::logf(::scap::LogLevel::kError, __VA_ARGS__)

}  // namespace scap
