#include "base/clock.hpp"

// Header-only today; this TU anchors the library target.
