#include "base/assert.hpp"

#include <cstdio>
#include <cstdlib>

namespace scap {

void invariant_fail(const char* file, int line, const char* expr,
                    const char* message) {
  std::fprintf(stderr, "SCAP INVARIANT VIOLATION at %s:%d\n  check: %s\n  %s\n",
               file, line, expr, message);
  std::fflush(stderr);
  std::abort();
}

}  // namespace scap
