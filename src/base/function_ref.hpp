// FunctionRef — a lightweight, non-owning reference to a callable.
//
// The kernel fast path (flow-table eviction/expiry hooks, per-packet
// visitors) previously took `const std::function&` parameters; each call
// paid a type-erased dispatch through a potentially heap-backed wrapper,
// and constructing one from a capturing lambda could allocate. FunctionRef
// is two words (object pointer + trampoline pointer), never allocates, and
// inlines into a single indirect call.
//
// Lifetime rules: FunctionRef does NOT extend the lifetime of the callable
// it references. Passing a temporary lambda as a function argument is safe
// (the temporary lives until the full expression ends); storing a
// FunctionRef beyond the callable's lifetime is not.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

namespace scap {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Null reference: `operator bool` is false; calling is undefined.
  FunctionRef() = default;
  FunctionRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  /// Bind to any callable compatible with the signature. Non-owning.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return std::invoke(
              *static_cast<std::remove_reference_t<F>*>(obj),
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace scap
