// Virtual time for the simulation substrate.
//
// All timestamps in the capture pipeline are virtual: they advance with the
// generated traffic (a packet occupies len*8/rate seconds on the wire), not
// with the host's wall clock, so every experiment is deterministic and
// independent of the machine it runs on.
#pragma once

#include <cstdint>
#include <compare>

namespace scap {

/// A point in virtual time, in nanoseconds since the start of the experiment.
class Timestamp {
 public:
  constexpr Timestamp() = default;
  constexpr explicit Timestamp(std::int64_t ns) : ns_(ns) {}

  static constexpr Timestamp from_sec(double sec) {
    return Timestamp(static_cast<std::int64_t>(sec * 1e9));
  }
  static constexpr Timestamp from_usec(std::int64_t us) {
    return Timestamp(us * 1000);
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr std::int64_t usec() const { return ns_ / 1000; }
  constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr auto operator<=>(Timestamp, Timestamp) = default;

 private:
  std::int64_t ns_ = 0;
};

/// A span of virtual time.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}

  static constexpr Duration from_sec(double sec) {
    return Duration(static_cast<std::int64_t>(sec * 1e9));
  }
  static constexpr Duration from_msec(std::int64_t ms) {
    return Duration(ms * 1'000'000);
  }
  static constexpr Duration from_usec(std::int64_t us) {
    return Duration(us * 1000);
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double sec() const { return static_cast<double>(ns_) * 1e-9; }

  friend constexpr auto operator<=>(Duration, Duration) = default;

 private:
  std::int64_t ns_ = 0;
};

constexpr Timestamp operator+(Timestamp t, Duration d) {
  return Timestamp(t.ns() + d.ns());
}
constexpr Timestamp operator-(Timestamp t, Duration d) {
  return Timestamp(t.ns() - d.ns());
}
constexpr Duration operator-(Timestamp a, Timestamp b) {
  return Duration(a.ns() - b.ns());
}
constexpr Duration operator+(Duration a, Duration b) {
  return Duration(a.ns() + b.ns());
}
constexpr Duration operator*(Duration d, std::int64_t k) {
  return Duration(d.ns() * k);
}

/// Monotonic virtual clock owned by the simulation engine. Components that
/// need "now" (inactivity expiry, flush timeouts, FDIR filter timeouts) hold a
/// pointer to the engine's clock.
class VirtualClock {
 public:
  Timestamp now() const { return now_; }

  /// Advance to `t`; time never moves backwards.
  void advance_to(Timestamp t) {
    if (t > now_) now_ = t;
  }
  void advance(Duration d) { now_ = now_ + d; }
  void reset() { now_ = Timestamp(); }

 private:
  Timestamp now_;
};

}  // namespace scap
