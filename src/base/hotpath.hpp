// SCAP_HOT / SCAP_COLD — the datapath purity lattice (DESIGN.md §14).
//
// SCAP_HOT marks a function as a *root of the per-packet path*: everything
// transitively reachable from it must be allocation-, lock-, syscall-,
// throw- and recursion-free. SCAP_COLD marks a function as explicitly off
// that path: the analyzer never descends into it, and a call from the hot
// closure into a SCAP_COLD function is itself a finding (rule
// hot-cold-call) unless the call edge carries a reasoned waiver — which is
// how amortized work (maintenance ticks, per-batch snapshot publishes) is
// admitted deliberately instead of leaking in silently.
//
// The whole-program checker is tools/scap_callgraph.py: it extracts the
// intra-project call graph (member calls, FunctionRef/std::function
// callback registration, lambdas charged to their lexical owner), computes
// the transitive closure from every SCAP_HOT root, and reports each
// reachable forbidden operation with its full witness call chain, e.g.
//
//   handle_batch -> SegmentStore::insert -> std::map::emplace
//
// Placement: either side works, but put the macro at the FRONT of the
// declaration (attribute position), on the declaration the callers see:
//
//   SCAP_HOT PacketOutcome handle_packet(const Packet&, Timestamp, int);
//
// On clang the macro carries a [[clang::annotate]] attribute the libclang
// frontend reads; on other compilers it expands to nothing and the
// analyzer's text frontend finds the token itself, so the gate does not
// depend on which compiler built the tree.
#pragma once

#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif
