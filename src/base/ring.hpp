// Fixed-capacity ring buffer.
//
// Models every bounded queue in the pipeline: NIC RX descriptor rings, the
// PF_PACKET-style shared capture ring of the baselines, and the per-core
// event queues of the Scap kernel path. When a ring is full the producer
// drops — exactly the behaviour whose placement the paper's evaluation is
// about.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "base/hotpath.hpp"
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace scap {

template <typename T>
class Ring {
 public:
  explicit Ring(std::size_t capacity)
      : slots_(capacity > 0 ? capacity : 1) {}

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }

  /// Returns false (and counts a drop) when full.
  bool push(T value) {
    if (full()) {
      ++drops_;
      return false;
    }
    slots_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % slots_.size();
    ++size_;
    if (size_ > high_water_) high_water_ = size_;
    return true;
  }

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return value;
  }

  /// Peek without removing; undefined when empty (check empty() first).
  const T& front() const { return slots_[head_]; }

  std::uint64_t drops() const { return drops_; }
  std::size_t high_water() const { return high_water_; }
  void reset_counters() {
    drops_ = 0;
    high_water_ = size_;
  }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t drops_ = 0;
};

/// Destructive-interference padding. Fixed at 64 bytes (the line size on
/// every target we build for) rather than std::hardware_destructive_
/// interference_size, whose value shifts with -mtune and trips
/// -Winterference-size under SCAP_WERROR.
inline constexpr std::size_t kCacheLineSize = 64;

/// Lock-free single-producer/single-consumer ring (the shard ingest queue of
/// the multi-core datapath, DESIGN.md §12).
///
/// Classic Lamport queue with two refinements:
///   * head/tail live on their own cache lines (no producer/consumer
///     false sharing), and
///   * each side keeps a cached copy of the other side's index, so the
///     common case touches only its own line — the cross-core load happens
///     once per wrap-around, not once per element.
///
/// Single-writer discipline is a *capability*, not a comment: push sites
/// require the ring's producer SerialDomain and pop sites its consumer
/// SerialDomain (scap_analyzer.py rule spsc-discipline enforces this on
/// every call site; the clang thread-safety analysis proves the guard
/// chain on clang builds). The capacity is rounded up to a power of two so
/// index masking is a single AND.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// The producer-side serialization capability: exactly one thread may
  /// push, and it must hold (or structurally own) this domain.
  base::SerialDomain& producer() const SCAP_RETURN_CAPABILITY(producer_) {
    return producer_;
  }
  /// The consumer-side serialization capability (exactly one popper).
  base::SerialDomain& consumer() const SCAP_RETURN_CAPABILITY(consumer_) {
    return consumer_;
  }

  /// Producer: returns false when full (caller decides to retry or drop —
  /// the shard producer spins so no packet is ever lost to the handoff).
  /// On failure the value is NOT consumed: a retry loop can keep the same
  /// object and move it in once space frees up.
  SCAP_HOT bool try_push(T&& value) SCAP_REQUIRES(producer_) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;
    }
    slots_[static_cast<std::size_t>(tail) & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }
  SCAP_HOT bool try_push(const T& value) SCAP_REQUIRES(producer_) {
    // scap-lint: allow(hot-recursion) overload delegation (callgraph merges overloads by name)
    return try_push(T(value));
  }

  /// Consumer: pop one element.
  SCAP_HOT std::optional<T> try_pop() SCAP_REQUIRES(consumer_) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return std::nullopt;
    }
    T value = std::move(slots_[static_cast<std::size_t>(head) & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return value;
  }

  /// Consumer: pop up to out.size() elements in one acquire (the batched
  /// ingest handoff — one cross-core synchronization per batch, feeding
  /// ScapKernel::handle_batch's prefetching loop). Returns elements popped.
  SCAP_HOT std::size_t pop_batch(std::span<T> out) SCAP_REQUIRES(consumer_) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::uint64_t avail = cached_tail_ - head;
    if (avail == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      avail = cached_tail_ - head;
      if (avail == 0) return 0;
    }
    const std::size_t n =
        avail < out.size() ? static_cast<std::size_t>(avail) : out.size();
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = std::move(slots_[static_cast<std::size_t>(head + i) & mask_]);
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

  /// Producer-exact occupancy: refreshes the producer's cached head so the
  /// result is never an overestimate from the producer's point of view (the
  /// consumer can only shrink it concurrently). This is what watermark
  /// admission keys on — a stale-high reading would shed packets the ring
  /// could in fact hold.
  SCAP_HOT std::size_t size_from_producer() SCAP_REQUIRES(producer_) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    cached_head_ = head_.load(std::memory_order_acquire);
    return static_cast<std::size_t>(tail - cached_head_);
  }

  /// Racy size estimate (monitoring only; exact from either endpoint's own
  /// side of the queue).
  std::size_t size_approx() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }
  bool empty_approx() const { return size_approx() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  mutable base::SerialDomain producer_;
  mutable base::SerialDomain consumer_;

  // Producer line: owns tail_, caches head_.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
  // Consumer line: owns head_, caches tail_.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;
};

/// Bounded lock-free multi-producer queue (Vyukov's bounded MPMC algorithm,
/// used MPSC here): the FDIR command channel of the sharded datapath. Any
/// worker may enqueue from its shard context without taking a shared lock;
/// the single consumer (the NIC-owning producer thread, holding the queue's
/// consumer SerialDomain) drains and applies commands between batches.
/// try_push returns false when full — FDIR offload is an optimization, so
/// callers count the failure and carry on (software cutoff still enforces).
template <typename T>
class MpscQueue {
 public:
  explicit MpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
    for (std::size_t i = 0; i < cap; ++i) {
      slots_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  base::SerialDomain& consumer() const SCAP_RETURN_CAPABILITY(consumer_) {
    return consumer_;
  }

  /// Any thread. Returns false when the queue is full (the value is not
  /// consumed on failure).
  SCAP_HOT bool try_push(T&& value) {
    std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Slot& slot = slots_[static_cast<std::size_t>(tail) & mask_];
      const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
      const std::int64_t diff =
          static_cast<std::int64_t>(seq) - static_cast<std::int64_t>(tail);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(tail, tail + 1,
                                        std::memory_order_relaxed)) {
          slot.value = std::move(value);
          slot.seq.store(tail + 1, std::memory_order_release);
          return true;
        }
      } else if (diff < 0) {
        return false;  // full
      } else {
        tail = tail_.load(std::memory_order_relaxed);
      }
    }
  }
  SCAP_HOT bool try_push(const T& value) {
    // scap-lint: allow(hot-recursion) overload delegation (callgraph merges overloads by name)
    return try_push(T(value));
  }

  /// Single consumer only (holds the consumer SerialDomain).
  std::optional<T> try_pop() SCAP_REQUIRES(consumer_) {
    Slot& slot = slots_[static_cast<std::size_t>(head_) & mask_];
    const std::uint64_t seq = slot.seq.load(std::memory_order_acquire);
    if (static_cast<std::int64_t>(seq) -
            static_cast<std::int64_t>(head_ + 1) < 0) {
      return std::nullopt;  // empty
    }
    T value = std::move(slot.value);
    slot.seq.store(head_ + mask_ + 1, std::memory_order_release);
    ++head_;
    return value;
  }

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    T value{};
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  mutable base::SerialDomain consumer_;
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  alignas(kCacheLineSize) std::uint64_t head_ = 0;
};

}  // namespace scap
