// Fixed-capacity ring buffer.
//
// Models every bounded queue in the pipeline: NIC RX descriptor rings, the
// PF_PACKET-style shared capture ring of the baselines, and the per-core
// event queues of the Scap kernel path. When a ring is full the producer
// drops — exactly the behaviour whose placement the paper's evaluation is
// about.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace scap {

template <typename T>
class Ring {
 public:
  explicit Ring(std::size_t capacity)
      : slots_(capacity > 0 ? capacity : 1) {}

  std::size_t capacity() const { return slots_.size(); }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  bool full() const { return size_ == slots_.size(); }

  /// Returns false (and counts a drop) when full.
  bool push(T value) {
    if (full()) {
      ++drops_;
      return false;
    }
    slots_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % slots_.size();
    ++size_;
    if (size_ > high_water_) high_water_ = size_;
    return true;
  }

  std::optional<T> pop() {
    if (empty()) return std::nullopt;
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --size_;
    return value;
  }

  /// Peek without removing; undefined when empty (check empty() first).
  const T& front() const { return slots_[head_]; }

  std::uint64_t drops() const { return drops_; }
  std::size_t high_water() const { return high_water_; }
  void reset_counters() {
    drops_ = 0;
    high_water_ = size_;
  }

  void clear() {
    head_ = tail_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace scap
