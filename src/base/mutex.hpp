// Annotated synchronization primitives (DESIGN.md §11).
//
// The only mutexes allowed in src/ outside this file are these wrappers:
// scap_analyzer.py (rule mutex-discipline) flags any raw std::mutex,
// std::lock_guard, std::unique_lock or std::condition_variable declaration
// elsewhere, because a raw mutex is invisible to the clang thread-safety
// analysis — fields it guards cannot be annotated against it.
//
// SerialDomain is the capability for state that is serialized structurally
// rather than by a lock: the kernel's entry points require it, the capture
// acquires it together with kernel_mutex_ in threaded mode, and asserts it
// in inline mode where single-threadedness is the serialization.
#pragma once

#include <condition_variable>  // the one place raw primitives may live (the
                               // wrappers); mutex-discipline exempts this file
#include <mutex>

#include "base/thread_annotations.hpp"

namespace scap::base {

/// std::mutex with the capability annotation: fields can be declared
/// SCAP_GUARDED_BY / SCAP_PT_GUARDED_BY a base::Mutex and the clang analysis
/// will prove every access happens under it.
class SCAP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCAP_ACQUIRE() { mu_.lock(); }
  void unlock() SCAP_RELEASE() { mu_.unlock(); }
  bool try_lock() SCAP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock over base::Mutex. Exposes lock()/unlock() (BasicLockable) so a
/// CondVar can release and reacquire it inside wait(); the destructor only
/// unlocks if the lock is still held.
class SCAP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SCAP_ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_.lock();
  }
  ~MutexLock() SCAP_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void lock() SCAP_ACQUIRE() {
    mu_.lock();
    held_ = true;
  }
  void unlock() SCAP_RELEASE() {
    mu_.unlock();
    held_ = false;
  }

 private:
  Mutex& mu_;
  bool held_;
};

/// Condition variable paired with MutexLock. wait() must be called with the
/// lock held (it releases and reacquires it internally, like any condvar).
class CondVar {
 public:
  template <class Predicate>
  void wait(MutexLock& lock, Predicate pred) {
    cv_.wait(lock, pred);
  }
  /// std::jthread-aware wait: also wakes on stop_token cancellation.
  template <class StopToken, class Predicate>
  bool wait(MutexLock& lock, StopToken st, Predicate pred) {
    return cv_.wait(lock, st, pred);
  }
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

/// A capability with no runtime state: names a serialization domain that is
/// enforced by structure (one thread, or an external lock) instead of by
/// its own mutex. acquire()/release() compile to nothing — their only job
/// is to carry the annotations.
class SCAP_CAPABILITY("serial domain") SerialDomain {
 public:
  void acquire() SCAP_ACQUIRE() {}
  void release() SCAP_RELEASE() {}
};

/// RAII acquisition of a SerialDomain (zero runtime cost). The holder is
/// asserting "I am the serialization domain right now" — in the capture
/// that assertion is backed either by kernel_mutex_ or by inline mode's
/// single-threadedness.
class SCAP_SCOPED_CAPABILITY SerialGuard {
 public:
  explicit SerialGuard(SerialDomain& d) SCAP_ACQUIRE(d) : d_(d) {
    d_.acquire();
  }
  ~SerialGuard() SCAP_RELEASE() { d_.release(); }
  SerialGuard(const SerialGuard&) = delete;
  SerialGuard& operator=(const SerialGuard&) = delete;

 private:
  SerialDomain& d_;
};

}  // namespace scap::base
