#include "base/hash.hpp"

namespace scap {

std::uint64_t fnv1a(std::span<const std::byte> data, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

RssKey default_rss_key() {
  return RssKey{0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67,
                0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0, 0xd0, 0xca, 0x2b, 0xcb,
                0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30,
                0xf2, 0x0c, 0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa};
}

RssKey symmetric_rss_key(std::uint16_t lane) {
  RssKey key{};
  for (std::size_t i = 0; i < key.size(); i += 2) {
    key[i] = static_cast<std::uint8_t>(lane >> 8);
    key[i + 1] = static_cast<std::uint8_t>(lane & 0xff);
  }
  return key;
}

std::uint32_t toeplitz_hash(const RssKey& key, std::span<const std::uint8_t> input) {
  // The Toeplitz hash XORs, for every set bit of the input, a 32-bit window
  // of the key starting at that bit position.
  std::uint32_t result = 0;
  // Current 32-bit window of the key; starts at key bits [0, 32) and slides
  // left one bit per consumed input bit.
  std::uint32_t window = (static_cast<std::uint32_t>(key[0]) << 24) |
                         (static_cast<std::uint32_t>(key[1]) << 16) |
                         (static_cast<std::uint32_t>(key[2]) << 8) |
                         static_cast<std::uint32_t>(key[3]);
  std::size_t next_key_bit = 32;  // absolute bit index into the key
  for (std::uint8_t byte : input) {
    for (int bit = 7; bit >= 0; --bit) {
      if ((byte >> bit) & 1) result ^= window;
      std::uint32_t incoming = 0;
      if (next_key_bit < key.size() * 8) {
        incoming = (key[next_key_bit / 8] >> (7 - next_key_bit % 8)) & 1u;
      }
      window = (window << 1) | incoming;
      ++next_key_bit;
    }
  }
  return result;
}

}  // namespace scap
