// Hash functions used across the capture pipeline.
//
//  - fnv1a: flow-table bucket hashing (seeded, so an adversary cannot
//    precompute collisions — the paper picks a random hash function at
//    module-init time for the same reason, §5.2).
//  - Toeplitz: the RSS hash implemented by commodity NICs; used by the NIC
//    model to spread flows across RX queues. We also provide the
//    symmetric-seed variant of Woo & Park so both directions of a TCP
//    connection land on the same queue (paper §4.2).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "base/hotpath.hpp"

namespace scap {

/// Seeded FNV-1a over arbitrary bytes.
SCAP_HOT std::uint64_t fnv1a(std::span<const std::byte> data,
                             std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Convenience overload for trivially-copyable keys.
template <typename T>
std::uint64_t fnv1a_of(const T& value, std::uint64_t seed = 0xcbf29ce484222325ULL) {
  static_assert(std::is_trivially_copyable_v<T>);
  return fnv1a(std::as_bytes(std::span<const T, 1>(&value, 1)), seed);
}

/// 40-byte RSS key, as programmed into real NICs.
using RssKey = std::array<std::uint8_t, 40>;

/// Microsoft's default RSS key (the one most drivers ship with).
RssKey default_rss_key();

/// A symmetric RSS key: every 16-bit lane is identical, so swapping
/// (src ip, src port) with (dst ip, dst port) yields the same hash.
/// This is the Woo & Park construction the paper adopts in §4.2.
RssKey symmetric_rss_key(std::uint16_t lane = 0x6d5a);

/// Toeplitz hash over `input` with the given key. Input is at most 36 bytes
/// for the IPv4 4-tuple case; we support any input that fits the key window.
SCAP_HOT std::uint32_t toeplitz_hash(const RssKey& key,
                                     std::span<const std::uint8_t> input);

/// Mix a 64-bit value (splitmix64 finalizer); used to derive per-run seeds.
constexpr std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace scap
