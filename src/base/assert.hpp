// SCAP_ASSERT / SCAP_INVARIANT — the runtime leg of the correctness
// tooling layer (DESIGN.md §9).
//
// Both macros check a condition and abort with a source location when it
// fails. They are compiled in whenever SCAP_ENABLE_INVARIANTS is defined
// (CMake defines it for every build type except Release, so tests, the
// chaos harness and sanitizer builds all run with fatal invariants) and
// compile to nothing in Release builds — the condition expression is not
// evaluated, only type-checked via sizeof, so hot paths pay zero cost.
//
//   SCAP_ASSERT(cond, msg)         — programmer error (bad argument, broken
//                                    internal state). "This can't happen."
//   SCAP_INVARIANT(cond, msg)      — accounting law from the paper (counter
//                                    conservation, PPL monotonicity, pool
//                                    balance). Same mechanics, different
//                                    intent: a failure means a counter was
//                                    added or moved without its mirror.
//   SCAP_INVARIANT_REPORT(expr)    — expr yields a std::string describing
//                                    the first violated invariant ("" = all
//                                    hold); aborts printing the report.
#pragma once

#include <string>

namespace scap {

/// Print the failure and abort. Out of line so the macro expansion stays
/// small enough to inline around.
[[noreturn]] void invariant_fail(const char* file, int line,
                                 const char* expr, const char* message);

}  // namespace scap

#if defined(SCAP_ENABLE_INVARIANTS)

#define SCAP_ASSERT(cond, msg)                                \
  do {                                                        \
    if (!(cond)) {                                            \
      ::scap::invariant_fail(__FILE__, __LINE__, #cond, msg); \
    }                                                         \
  } while (false)

#define SCAP_INVARIANT(cond, msg) SCAP_ASSERT(cond, msg)

#define SCAP_INVARIANT_REPORT(expr)                                          \
  do {                                                                       \
    const std::string scap_invariant_report_ = (expr);                       \
    if (!scap_invariant_report_.empty()) {                                   \
      ::scap::invariant_fail(__FILE__, __LINE__, #expr,                      \
                             scap_invariant_report_.c_str());                \
    }                                                                        \
  } while (false)

#else  // Release: type-check the expression, never evaluate it.

#define SCAP_ASSERT(cond, msg) \
  do {                         \
    (void)sizeof((cond));      \
    (void)(msg);               \
  } while (false)

#define SCAP_INVARIANT(cond, msg) SCAP_ASSERT(cond, msg)

#define SCAP_INVARIANT_REPORT(expr) \
  do {                              \
    (void)sizeof((expr));           \
  } while (false)

#endif  // SCAP_ENABLE_INVARIANTS
