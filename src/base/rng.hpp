// Deterministic pseudo-random number generation for workload synthesis.
//
// We use splitmix64 for seeding and xoshiro256** for the stream: fast,
// reproducible across platforms, and good enough statistically for traffic
// generation (we are not doing cryptography).
#pragma once

#include <cstdint>
#include <cmath>
#include <numbers>

namespace scap {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5ca9'5ca9'5ca9'5ca9ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform over the full 64-bit range.
  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t v, int k) {
      return (v << k) | (v >> (64 - k));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint32_t next_u32() { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t bounded(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

  /// Exponential with given mean.
  double exponential(double mean) {
    double u = uniform();
    if (u >= 1.0) u = 0.9999999999;
    return -mean * std::log(1.0 - u);
  }

  /// Standard normal via Box-Muller.
  double normal(double mu = 0.0, double sigma = 1.0) {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0) u1 = 1e-12;
    double z = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * std::numbers::pi * u2);
    return mu + sigma * z;
  }

  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

  /// Pareto with scale xm and shape alpha (heavy tail for alpha <= 2).
  double pareto(double xm, double alpha) {
    double u = uniform();
    if (u >= 1.0) u = 0.9999999999;
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

 private:
  std::uint64_t state_[4] = {};
};

}  // namespace scap
