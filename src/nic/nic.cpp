#include "nic/nic.hpp"

namespace scap::nic {

RxResult Nic::receive(const Packet& pkt) {
  ++stats_.packets_seen;
  stats_.bytes_seen += pkt.wire_len();

  if (const FdirFilter* f = fdir_.match(pkt)) {
    if (f->action == FdirAction::kDrop) {
      ++stats_.dropped_by_filter;
      stats_.bytes_dropped_by_filter += pkt.wire_len();
      SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kNicDrop, 0,
                       pkt.timestamp(), 0, 0, pkt.wire_len());
      return {RxDisposition::kDroppedByFilter, 0};
    }
    ++stats_.steered;
    ++stats_.per_queue[static_cast<std::size_t>(f->queue)];
    SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kNicSteer, f->queue,
                     pkt.timestamp(), 0,
                     static_cast<std::uint16_t>(f->queue), pkt.wire_len());
    return {RxDisposition::kToQueue, f->queue};
  }

  const int q = rss_.queue_for(pkt);
  ++stats_.per_queue[static_cast<std::size_t>(q)];
  return {RxDisposition::kToQueue, q};
}

}  // namespace scap::nic
