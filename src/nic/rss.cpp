#include "nic/rss.hpp"

namespace scap::nic {

int RssEngine::queue_for(const FiveTuple& tuple) const {
  std::uint8_t input[12];
  input[0] = static_cast<std::uint8_t>(tuple.src_ip >> 24);
  input[1] = static_cast<std::uint8_t>(tuple.src_ip >> 16);
  input[2] = static_cast<std::uint8_t>(tuple.src_ip >> 8);
  input[3] = static_cast<std::uint8_t>(tuple.src_ip);
  input[4] = static_cast<std::uint8_t>(tuple.dst_ip >> 24);
  input[5] = static_cast<std::uint8_t>(tuple.dst_ip >> 16);
  input[6] = static_cast<std::uint8_t>(tuple.dst_ip >> 8);
  input[7] = static_cast<std::uint8_t>(tuple.dst_ip);
  input[8] = static_cast<std::uint8_t>(tuple.src_port >> 8);
  input[9] = static_cast<std::uint8_t>(tuple.src_port);
  input[10] = static_cast<std::uint8_t>(tuple.dst_port >> 8);
  input[11] = static_cast<std::uint8_t>(tuple.dst_port);
  const std::uint32_t hash = toeplitz_hash(key_, input);
  return static_cast<int>(hash % static_cast<std::uint32_t>(num_queues_));
}

int RssEngine::queue_for(const Packet& pkt) const {
  return queue_for(pkt.tuple());
}

}  // namespace scap::nic
