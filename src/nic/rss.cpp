#include "nic/rss.hpp"

namespace scap::nic {

int RssEngine::queue_for(const FiveTuple& tuple) const {
  // Canonicalize the 4-tuple before hashing: order the two endpoints so
  // both directions of a flow produce the same Toeplitz input. With the
  // symmetric key this was already direction-independent; canonicalizing
  // makes it so for *any* key, which is what the sharded kernel's flow
  // affinity rests on — a flow's packets must never cross shards
  // (DESIGN.md §12). Endpoints are ordered by (ip, port) lexicographically.
  std::uint32_t lo_ip = tuple.src_ip, hi_ip = tuple.dst_ip;
  std::uint16_t lo_port = tuple.src_port, hi_port = tuple.dst_port;
  if (hi_ip < lo_ip || (hi_ip == lo_ip && hi_port < lo_port)) {
    lo_ip = tuple.dst_ip;
    hi_ip = tuple.src_ip;
    lo_port = tuple.dst_port;
    hi_port = tuple.src_port;
  }
  std::uint8_t input[12];
  input[0] = static_cast<std::uint8_t>(lo_ip >> 24);
  input[1] = static_cast<std::uint8_t>(lo_ip >> 16);
  input[2] = static_cast<std::uint8_t>(lo_ip >> 8);
  input[3] = static_cast<std::uint8_t>(lo_ip);
  input[4] = static_cast<std::uint8_t>(hi_ip >> 24);
  input[5] = static_cast<std::uint8_t>(hi_ip >> 16);
  input[6] = static_cast<std::uint8_t>(hi_ip >> 8);
  input[7] = static_cast<std::uint8_t>(hi_ip);
  input[8] = static_cast<std::uint8_t>(lo_port >> 8);
  input[9] = static_cast<std::uint8_t>(lo_port);
  input[10] = static_cast<std::uint8_t>(hi_port >> 8);
  input[11] = static_cast<std::uint8_t>(hi_port);
  const std::uint32_t hash = toeplitz_hash(key_, input);
  return static_cast<int>(hash % static_cast<std::uint32_t>(num_queues_));
}

int RssEngine::queue_for(const Packet& pkt) const {
  // scap-lint: allow(hot-recursion) overload delegation (callgraph merges overloads by name)
  return queue_for(pkt.tuple());
}

}  // namespace scap::nic
