#include "nic/fdir.hpp"

#include "base/bytes.hpp"
#include "base/hash.hpp"
#include "faultinject/faultinject.hpp"

namespace scap::nic {

std::uint64_t FdirTable::tuple_key(const FiveTuple& t) {
  struct Key {
    std::uint32_t a, b;
    std::uint16_t c, d;
    std::uint8_t e;
    std::uint8_t pad[3];
  } key{t.src_ip, t.dst_ip, t.src_port, t.dst_port, t.protocol, {0, 0, 0}};
  return fnv1a_of(key);
}

std::uint64_t FdirTable::add(const FdirFilter& filter,
                             std::optional<FdirFilter>* evicted) {
  if (evicted) evicted->reset();
  // Injected hardware programming failure (a real ixgbe fdir_write can
  // fail): id 0 tells the caller the filter was NOT installed.
  if (faultinject::should_fail(faultinject::FaultPoint::kFdirAdd)) {
    ++add_failures_;
    return 0;
  }
  if (by_id_.size() >= capacity_) {
    // Evict the filter closest to expiry.
    auto soon = by_timeout_.begin();
    if (soon == by_timeout_.end()) {
      ++add_failures_;  // capacity 0: nothing to evict, nothing to install
      return 0;
    }
    auto it = by_id_.find(soon->second);
    if (evicted && it != by_id_.end()) *evicted = it->second.filter;
    if (it != by_id_.end()) erase_entry(it);
    ++evictions_;
  }
  const std::uint64_t id = next_id_++;
  auto timeout_it = by_timeout_.emplace(filter.expires.ns(), id);
  by_id_.emplace(id, Entry{filter, timeout_it});
  by_tuple_[tuple_key(filter.tuple)].push_back(id);
  return id;
}

void FdirTable::erase_entry(
    std::unordered_map<std::uint64_t, Entry>::iterator it) {
  const std::uint64_t id = it->first;
  by_timeout_.erase(it->second.timeout_it);
  auto& ids = by_tuple_[tuple_key(it->second.filter.tuple)];
  std::erase(ids, id);
  if (ids.empty()) by_tuple_.erase(tuple_key(it->second.filter.tuple));
  by_id_.erase(it);
}

bool FdirTable::remove(std::uint64_t id) {
  auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  erase_entry(it);
  return true;
}

std::size_t FdirTable::remove_tuple(const FiveTuple& tuple) {
  auto t = by_tuple_.find(tuple_key(tuple));
  if (t == by_tuple_.end()) return 0;
  // Copy: erase_entry mutates the by_tuple_ vector.
  const std::vector<std::uint64_t> ids = t->second;
  std::size_t removed = 0;
  for (std::uint64_t id : ids) {
    auto it = by_id_.find(id);
    if (it != by_id_.end() && it->second.filter.tuple == tuple) {
      erase_entry(it);
      ++removed;
    }
  }
  return removed;
}

const FdirFilter* FdirTable::match(const Packet& pkt) const {
  auto t = by_tuple_.find(tuple_key(pkt.tuple()));
  if (t == by_tuple_.end()) return nullptr;
  const auto frame = pkt.frame();
  for (std::uint64_t id : t->second) {
    auto it = by_id_.find(id);
    if (it == by_id_.end()) continue;
    const FdirFilter& f = it->second.filter;
    if (!(f.tuple == pkt.tuple())) continue;  // hash collision guard
    if (f.has_flex) {
      if (frame.size() < static_cast<std::size_t>(f.flex_offset) + 2) continue;
      const std::uint16_t halfword = load_be16(frame.data() + f.flex_offset);
      if ((halfword & f.flex_mask) != (f.flex_value & f.flex_mask)) continue;
    }
    return &f;
  }
  return nullptr;
}

std::vector<FdirFilter> FdirTable::expire(Timestamp now) {
  std::vector<FdirFilter> expired;
  while (!by_timeout_.empty() && by_timeout_.begin()->first <= now.ns()) {
    auto it = by_id_.find(by_timeout_.begin()->second);
    if (it == by_id_.end()) {
      by_timeout_.erase(by_timeout_.begin());
      continue;
    }
    expired.push_back(it->second.filter);
    erase_entry(it);
  }
  return expired;
}

std::vector<FdirFilter> make_cutoff_filters(const FiveTuple& tuple,
                                            Timestamp expires) {
  // Match the TCP flags byte (low 6 bits of the flags halfword: URG ACK PSH
  // RST SYN FIN). Two filters: flags == ACK, and flags == ACK|PSH. Anything
  // carrying SYN, FIN, or RST fails both matches and reaches the host.
  std::vector<FdirFilter> filters;
  for (std::uint16_t flags : {std::uint16_t{kTcpAck},
                              std::uint16_t{kTcpAck | kTcpPsh}}) {
    FdirFilter f;
    f.tuple = tuple;
    f.action = FdirAction::kDrop;
    f.has_flex = true;
    f.flex_offset = kTcpFlagsFlexOffset;
    f.flex_value = flags;
    f.flex_mask = 0x003f;  // the six flag bits
    f.expires = expires;
    // scap-lint: allow(hot-alloc) per-stream filter install (four filters per cutoff decision), not per packet (DESIGN.md §14 inventory)
    filters.push_back(f);
  }
  return filters;
}

}  // namespace scap::nic
