// The simulated network interface card.
//
// Combines RSS spreading with the FDIR filter table and classifies each
// arriving packet the way the 82599's receive pipeline does:
//
//   1. FDIR perfect-match filters are consulted first. A matching filter
//      either drops the packet at the NIC (it never reaches main memory —
//      the "subzero copy" path, counted but otherwise free for the host) or
//      steers it to an explicit queue (dynamic load balancing).
//   2. Otherwise RSS hashes the 4-tuple onto one of the RX queues.
//
// The NIC itself is a classifier + statistics block; queueing/backlog is
// modeled by the per-core QueueServer the caller feeds (see src/sim/).
#pragma once

#include <cstdint>
#include <vector>

#include "nic/fdir.hpp"
#include "nic/rss.hpp"
#include "trace/trace.hpp"

namespace scap::nic {

enum class RxDisposition : std::uint8_t {
  kDroppedByFilter,  // matched a drop filter; never touched host memory
  kToQueue,          // delivered to an RX queue (steered or RSS-hashed)
};

struct RxResult {
  RxDisposition disposition;
  int queue = 0;
};

struct NicStats {
  std::uint64_t packets_seen = 0;
  std::uint64_t bytes_seen = 0;
  std::uint64_t dropped_by_filter = 0;
  std::uint64_t bytes_dropped_by_filter = 0;
  std::uint64_t steered = 0;  // FDIR queue-steering hits
  std::vector<std::uint64_t> per_queue;
};

class Nic {
 public:
  Nic(int num_queues, RssKey key = symmetric_rss_key(),
      std::size_t fdir_capacity = 8192)
      : rss_(key, num_queues), fdir_(fdir_capacity) {
    stats_.per_queue.assign(static_cast<std::size_t>(num_queues), 0);
  }

  /// Classify one arriving packet.
  RxResult receive(const Packet& pkt);

  FdirTable& fdir() { return fdir_; }
  const FdirTable& fdir() const { return fdir_; }
  const RssEngine& rss() const { return rss_; }
  int num_queues() const { return rss_.num_queues(); }

  const NicStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = NicStats{};
    stats_.per_queue.assign(static_cast<std::size_t>(num_queues()), 0);
  }

  /// Attach the event tracer (kNicDrop for subzero-copy filter drops,
  /// kNicSteer for FDIR queue-steering hits; plain RSS stays untraced —
  /// it is every packet, and the kernel's verdict event already covers it).
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

 private:
  RssEngine rss_;
  FdirTable fdir_;
  NicStats stats_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace scap::nic
