// Flow Director (FDIR) filter table — the model of the Intel 82599's
// perfect-match filters (paper §2.1, §5.5).
//
// A filter matches a packet's 5-tuple plus an optional "flexible 2-byte
// tuple" anywhere in the first 64 bytes of the frame (the paper's modified
// driver points it at the TCP offset/reserved/flags bytes so that ACK and
// ACK|PSH data packets can be dropped while RST/FIN still reach the host).
// Matching packets are either dropped at the NIC — never reaching main
// memory, the "subzero copy" path — or steered to an explicit RX queue
// (dynamic load balancing).
//
// The table enforces the hardware capacity, keeps filters on a timeout list
// ordered by expiry (paper: re-installed filters get doubled timeouts so
// long flows are evicted only a logarithmic number of times), and evicts the
// soonest-to-expire filter when full.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/clock.hpp"
#include "packet/packet.hpp"

namespace scap::nic {

enum class FdirAction : std::uint8_t { kDrop, kToQueue };

struct FdirFilter {
  FiveTuple tuple;
  FdirAction action = FdirAction::kDrop;
  int queue = 0;  // for kToQueue

  // Flexible 2-byte match window (big-endian halfword at `flex_offset` into
  // the frame, masked). Offset must lie within the first 64 bytes.
  bool has_flex = false;
  std::uint8_t flex_offset = 0;
  std::uint16_t flex_value = 0;
  std::uint16_t flex_mask = 0xffff;

  Timestamp expires;  // absolute virtual time
};

class FdirTable {
 public:
  /// The 82599 supports 8K perfect-match filters (paper §2.1).
  explicit FdirTable(std::size_t capacity = 8192) : capacity_(capacity) {}

  /// Install a filter. If the table is full, the filter with the nearest
  /// expiry is evicted first (paper §5.5: "a filter with a small timeout is
  /// evicted, as it does not correspond to a long-lived stream").
  /// Returns the new filter's id, and reports any eviction via `evicted`.
  std::uint64_t add(const FdirFilter& filter,
                    std::optional<FdirFilter>* evicted = nullptr);

  /// Remove by id; returns false if unknown.
  bool remove(std::uint64_t id);

  /// Remove all filters for a tuple (both flex variants); returns count.
  std::size_t remove_tuple(const FiveTuple& tuple);

  /// First filter matching this packet, or nullptr.
  const FdirFilter* match(const Packet& pkt) const;

  /// Pop every filter whose timeout has passed. The owner decides whether
  /// to re-install (with a doubled timeout) when the stream turns out to be
  /// still alive.
  std::vector<FdirFilter> expire(Timestamp now);

  std::size_t size() const { return by_id_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t evictions() const { return evictions_; }
  /// Installs rejected with id 0 (capacity 0, or injected hardware error).
  std::uint64_t add_failures() const { return add_failures_; }

 private:
  struct Entry {
    FdirFilter filter;
    std::multimap<std::int64_t, std::uint64_t>::iterator timeout_it;
  };

  static std::uint64_t tuple_key(const FiveTuple& t);
  void erase_entry(std::unordered_map<std::uint64_t, Entry>::iterator it);

  std::size_t capacity_;
  std::uint64_t next_id_ = 1;
  std::uint64_t evictions_ = 0;
  std::uint64_t add_failures_ = 0;
  std::unordered_map<std::uint64_t, Entry> by_id_;
  // tuple key -> filter ids (usually 1-2 per tuple: ACK and ACK|PSH).
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> by_tuple_;
  // expiry ns -> id, ordered so expiry and eviction scan from the front.
  std::multimap<std::int64_t, std::uint64_t> by_timeout_;
};

/// Frame byte offset of the TCP offset/reserved/flags halfword for a frame
/// with no IP options (Ethernet 14 + IPv4 20 + TCP offset 12).
constexpr std::uint8_t kTcpFlagsFlexOffset = 14 + 20 + 12;

/// Build the paper's two data-packet-dropping filters for one stream
/// direction: one matching pure-ACK segments, one matching ACK|PSH
/// (paper §5.5). RST/FIN packets fall through to the host.
std::vector<FdirFilter> make_cutoff_filters(const FiveTuple& tuple,
                                            Timestamp expires);

}  // namespace scap::nic
