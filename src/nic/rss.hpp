// Receive-Side Scaling: maps a packet's 4-tuple to an RX queue with the
// Toeplitz hash, exactly as commodity NICs do. Scap programs a symmetric key
// (Woo & Park) so both directions of a TCP connection hash to the same queue
// and therefore to the same core (paper §4.2).
#pragma once

#include "base/hash.hpp"
#include "base/hotpath.hpp"
#include "packet/packet.hpp"

namespace scap::nic {

class RssEngine {
 public:
  RssEngine(RssKey key, int num_queues)
      : key_(key), num_queues_(num_queues > 0 ? num_queues : 1) {}

  /// Queue index for this packet. Non-IP / port-less packets hash on the
  /// address pair only (ports zero), as real hardware does for non-TCP/UDP.
  SCAP_HOT int queue_for(const Packet& pkt) const;

  /// Queue index for an explicit tuple (used when installing filters).
  SCAP_HOT int queue_for(const FiveTuple& tuple) const;

  int num_queues() const { return num_queues_; }

 private:
  RssKey key_;
  int num_queues_;
};

}  // namespace scap::nic
