#include "baseline/yaf.hpp"

namespace scap::baseline {

void YafEngine::export_record(const YafFlowRecord& rec) {
  ++flows_exported_;
  if (on_export_) on_export_(rec);
}

void YafEngine::expire_idle(Timestamp now) {
  if (now - last_expiry_scan_ < Duration::from_sec(1)) return;
  last_expiry_scan_ = now;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_seen >= config_.idle_timeout) {
      export_record(it->second);
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
}

void YafEngine::on_packet(const Packet& pkt, Timestamp now) {
  ++stats_.pkts_processed;
  expire_idle(now);
  if (!pkt.valid()) return;

  const FiveTuple canon = pkt.tuple().canonical();
  auto it = flows_.find(canon);
  if (it == flows_.end()) {
    YafFlowRecord rec;
    rec.tuple = canon;
    rec.first_seen = now;
    it = flows_.emplace(canon, rec).first;
    ++stats_.streams_tracked;
  }
  YafFlowRecord& rec = it->second;
  rec.packets++;
  rec.bytes += pkt.wire_len();
  rec.last_seen = now;
  stats_.payload_bytes += pkt.wire_payload_len();
  stats_.copy_bytes += std::min<std::uint32_t>(pkt.capture_len(),
                                               config_.snaplen);

  if (pkt.is_tcp() && (pkt.has_flag(kTcpFin) || pkt.has_flag(kTcpRst))) {
    export_record(rec);
    flows_.erase(it);
  }
}

void YafEngine::finish(Timestamp now) {
  (void)now;
  for (const auto& [key, rec] : flows_) export_record(rec);
  flows_.clear();
}

}  // namespace scap::baseline
