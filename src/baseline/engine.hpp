// Common interface for the user-level baseline engines the paper compares
// against (Libnids, Snort Stream5, YAF).
//
// A baseline engine is the *user-space* half of a libpcap-style stack: it
// receives whole packets (post-ring, post-snaplen) and does its own flow
// tracking / reassembly / export. The simulation driver charges its costs
// to the user-context CPU account; the engine itself implements the
// functional behaviour — which streams get tracked, what data gets
// delivered — so match counts and lost-stream counts are real.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "base/clock.hpp"
#include "packet/packet.hpp"

namespace scap::baseline {

struct EngineStats {
  std::uint64_t pkts_processed = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t bytes_delivered = 0;      // reassembled bytes handed out
  std::uint64_t copy_bytes = 0;           // bytes memcpy'd ring -> stream buf
  std::uint64_t streams_tracked = 0;      // flow entries created
  std::uint64_t streams_with_data = 0;    // streams that delivered >=1 byte
  std::uint64_t streams_rejected = 0;     // flow-table limit hit
  std::uint64_t pkts_untracked = 0;       // data with no tracked flow
  std::uint64_t pkts_discarded_cutoff = 0;
};

/// Chunk delivery: (tuple, reassembled bytes). Baselines deliver per-stream
/// chunks exactly like Scap, just from user space.
using ChunkFn =
    std::function<void(const FiveTuple&, std::span<const std::uint8_t>)>;

class Engine {
 public:
  virtual ~Engine() = default;

  /// Process one captured packet (already decoded, possibly snapped).
  virtual void on_packet(const Packet& pkt, Timestamp now) = 0;

  /// End of capture: flush everything that is still buffered.
  virtual void finish(Timestamp now) = 0;

  virtual const EngineStats& stats() const = 0;

  /// Snaplen this engine captures with (0 = full packets). The driver
  /// applies it before the ring copy, like a BPF snaplen would.
  virtual std::uint32_t snaplen() const { return 0; }
};

}  // namespace scap::baseline
