// Snort Stream5-style user-level reassembly (the paper's second baseline).
//
// Same architecture as Libnids — user-space reassembly over a shared
// capture ring — with Stream5's distinguishing features:
//   - target-based reassembly: the overlap policy is configurable per
//     engine (the paper's §2.3 points at Stream5 for this);
//   - a per-stream cutoff knob (the paper modified Stream5 to discard
//     packets of streams past a cutoff for the Fig. 8 experiment) — the
//     discard still happens in user space, AFTER the ring copy;
//   - sessions can also be picked up from a SYN|ACK.
// Cost-wise Stream5 is slightly leaner than Libnids (see sim/costs.hpp),
// matching the paper's relative ordering.
#pragma once

#include "baseline/nids.hpp"

namespace scap::baseline {

struct Stream5Config {
  std::size_t max_flows = 1 << 20;
  std::uint32_t chunk_size = 16 * 1024;
  std::int64_t cutoff_bytes = -1;
  Duration inactivity_timeout = Duration::from_sec(10);
  kernel::OverlapPolicy policy = kernel::OverlapPolicy::kBsd;
  kernel::ReassemblyMode mode = kernel::ReassemblyMode::kTcpFast;
};

class Stream5Engine : public NidsEngine {
 public:
  Stream5Engine(Stream5Config config, ChunkFn on_chunk)
      : NidsEngine(
            NidsConfig{
                .max_flows = config.max_flows,
                .chunk_size = config.chunk_size,
                .cutoff_bytes = config.cutoff_bytes,
                .inactivity_timeout = config.inactivity_timeout,
                .mode = config.mode,
            },
            std::move(on_chunk)),
        policy_(config.policy) {}

 protected:
  bool may_create(const Packet& pkt) const override {
    // Stream5 opens a session on SYN or SYN|ACK.
    return pkt.has_flag(kTcpSyn);
  }

  kernel::StreamParams stream_params() const override {
    kernel::StreamParams p = NidsEngine::stream_params();
    p.policy = policy_;
    return p;
  }

 private:
  kernel::OverlapPolicy policy_;
};

}  // namespace scap::baseline
