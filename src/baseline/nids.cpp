#include "baseline/nids.hpp"

namespace scap::baseline {

NidsEngine::NidsEngine(NidsConfig config, ChunkFn on_chunk)
    : config_(config), on_chunk_(std::move(on_chunk)) {}

NidsEngine::~NidsEngine() = default;

kernel::StreamParams NidsEngine::stream_params() const {
  kernel::StreamParams p;
  p.chunk_size = config_.chunk_size;
  p.mode = config_.mode;
  p.policy = kernel::OverlapPolicy::kLinux;  // Libnids emulates Linux
  p.inactivity_timeout = config_.inactivity_timeout;
  return p;
}

void NidsEngine::deliver(Connection& conn, HalfStream& half,
                         const FiveTuple& tuple,
                         kernel::TcpReassembler::Result&& result) {
  (void)conn;
  for (const auto& chunk : result.completed) {
    stats_.bytes_delivered += chunk.data.size();
    if (!half.delivered_any && !chunk.data.empty()) {
      half.delivered_any = true;
      ++stats_.streams_with_data;
    }
    if (on_chunk_) {
      on_chunk_(tuple, std::span<const std::uint8_t>(chunk.data));
    }
  }
}

void NidsEngine::close_connection(const FiveTuple& key, Connection& conn) {
  for (auto* half : {conn.client.get(), conn.server.get()}) {
    if (half == nullptr) continue;
    const FiveTuple tuple =
        half == conn.client.get() ? conn.client_tuple
                                  : conn.client_tuple.reversed();
    auto chunks = half->reasm.flush();
    for (const auto& chunk : chunks) {
      stats_.bytes_delivered += chunk.data.size();
      if (!half->delivered_any && !chunk.data.empty()) {
        half->delivered_any = true;
        ++stats_.streams_with_data;
      }
      if (on_chunk_) {
        on_chunk_(tuple, std::span<const std::uint8_t>(chunk.data));
      }
    }
  }
  flows_.erase(key);
}

void NidsEngine::expire_idle(Timestamp now) {
  // User-level libraries scan their whole table periodically.
  if (now - last_expiry_scan_ < Duration::from_sec(1)) return;
  last_expiry_scan_ = now;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (now - it->second.last_seen >= config_.inactivity_timeout) {
      FiveTuple key = it->first;
      ++it;
      auto found = flows_.find(key);
      if (found != flows_.end()) close_connection(key, found->second);
    } else {
      ++it;
    }
  }
}

void NidsEngine::on_packet(const Packet& pkt, Timestamp now) {
  ++stats_.pkts_processed;
  expire_idle(now);
  if (!pkt.valid() || !pkt.is_tcp()) return;

  const FiveTuple canon = pkt.tuple().canonical();
  auto it = flows_.find(canon);
  if (it == flows_.end()) {
    if (!may_create(pkt)) {
      // Mid-flow packet for an untracked connection: Libnids ignores it.
      if (pkt.payload_len() > 0) ++stats_.pkts_untracked;
      return;
    }
    if (flows_.size() >= config_.max_flows) {
      ++stats_.streams_rejected;
      return;
    }
    Connection conn;
    conn.client_tuple = pkt.tuple();
    conn.last_seen = now;
    it = flows_.emplace(canon, std::move(conn)).first;
    ++stats_.streams_tracked;
  }
  Connection& conn = it->second;
  conn.last_seen = now;

  const bool is_client = pkt.tuple() == conn.client_tuple;
  auto& half_ptr = is_client ? conn.client : conn.server;
  if (half_ptr == nullptr) {
    half_ptr = std::make_unique<HalfStream>(stream_params());
  }

  if (pkt.has_flag(kTcpSyn)) {
    half_ptr->reasm.on_syn(pkt.seq());
    if (pkt.has_flag(kTcpAck)) conn.established = true;
    return;
  }

  if (pkt.payload_len() > 0) {
    stats_.payload_bytes += pkt.payload_len();
    stats_.copy_bytes += pkt.payload_len();  // ring -> stream buffer copy
    if (config_.cutoff_bytes >= 0 &&
        half_ptr->bytes >= static_cast<std::uint64_t>(config_.cutoff_bytes)) {
      ++stats_.pkts_discarded_cutoff;
    } else {
      kernel::SegmentMeta meta;
      meta.ts = now;
      meta.seq_raw = pkt.seq();
      meta.tcp_flags = pkt.tcp_flags();
      meta.wire_payload = pkt.wire_payload_len();
      auto result = half_ptr->reasm.on_data(pkt.seq(), pkt.payload(), meta);
      half_ptr->bytes += result.accepted_bytes;
      deliver(conn, *half_ptr, pkt.tuple(), std::move(result));
    }
  }

  if (pkt.has_flag(kTcpFin) || pkt.has_flag(kTcpRst)) {
    close_connection(canon, conn);
  }
}

void NidsEngine::finish(Timestamp now) {
  (void)now;
  while (!flows_.empty()) {
    auto it = flows_.begin();
    FiveTuple key = it->first;
    close_connection(key, it->second);
  }
}

}  // namespace scap::baseline
