// Libnids-style user-level TCP reassembly (the paper's primary baseline).
//
// Behavioural model of Libnids 1.24:
//   - tracks only connections whose 3-way handshake it observed (a stream
//     whose SYN was lost in the capture ring is lost for good — the effect
//     behind Fig. 6c);
//   - static flow-table limit: when the table is full, new connections are
//     REJECTED rather than evicting old ones (the effect behind Fig. 5);
//   - emulates the Linux network stack, i.e. a fixed Linux overlap policy;
//   - copies every payload from the capture ring into per-stream buffers
//     (the extra memory copy of §6.3 — charged by the cost model).
#pragma once

#include <memory>
#include <unordered_map>

#include "base/hash.hpp"
#include "baseline/engine.hpp"
#include "kernel/reassembly.hpp"

namespace scap::baseline {

struct NidsConfig {
  std::size_t max_flows = 1 << 20;  // ~1M: the paper's "internal limit"
  std::uint32_t chunk_size = 16 * 1024;
  std::int64_t cutoff_bytes = -1;   // Libnids has none; kept for symmetry
  Duration inactivity_timeout = Duration::from_sec(10);
  kernel::ReassemblyMode mode = kernel::ReassemblyMode::kTcpFast;
};

class NidsEngine : public Engine {
 public:
  NidsEngine(NidsConfig config, ChunkFn on_chunk);
  ~NidsEngine() override;

  void on_packet(const Packet& pkt, Timestamp now) override;
  void finish(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }

  std::size_t tracked_now() const { return flows_.size(); }

 protected:
  struct HalfStream {
    kernel::TcpReassembler reasm;
    bool delivered_any = false;
    std::uint64_t bytes = 0;
    explicit HalfStream(const kernel::StreamParams& params)
        : reasm(params, false) {}
  };
  struct Connection {
    FiveTuple client_tuple;  // direction of the initial SYN
    bool established = false;
    Timestamp last_seen;
    std::unique_ptr<HalfStream> client;  // client -> server data
    std::unique_ptr<HalfStream> server;
  };

  struct TupleHash {
    std::size_t operator()(const FiveTuple& t) const {
      std::uint64_t h = mix64(0x11b41d5ULL ^ t.src_ip);
      h = mix64(h ^ t.dst_ip);
      h = mix64(h ^ (static_cast<std::uint64_t>(t.src_port) << 32) ^
                (static_cast<std::uint64_t>(t.dst_port) << 16) ^ t.protocol);
      return h;
    }
  };

  /// Whether a packet with no tracked connection may create one.
  virtual bool may_create(const Packet& pkt) const {
    // Libnids: only a bare SYN opens a connection.
    return pkt.has_flag(kTcpSyn) && !pkt.has_flag(kTcpAck);
  }

  virtual kernel::StreamParams stream_params() const;

  void deliver(Connection& conn, HalfStream& half, const FiveTuple& tuple,
               kernel::TcpReassembler::Result&& result);
  void expire_idle(Timestamp now);
  void close_connection(const FiveTuple& key, Connection& conn);

  NidsConfig config_;
  ChunkFn on_chunk_;
  EngineStats stats_;
  // Keyed by the canonical tuple (both directions map to one connection).
  std::unordered_map<FiveTuple, Connection, TupleHash> flows_;
  Timestamp last_expiry_scan_;
};

}  // namespace scap::baseline
