// YAF-style flow metering (the paper's flow-export baseline, §6.2).
//
// YAF receives packets through libpcap with a 96-byte snaplen, keeps flow
// records with byte/packet counters, and performs no reassembly. It still
// pays the full user-level delivery cost for every packet — the reason it
// saturates around 4 Gbit/s in Fig. 3 despite doing so little.
#pragma once

#include <functional>
#include <unordered_map>

#include "base/hash.hpp"
#include "baseline/engine.hpp"

namespace scap::baseline {

struct YafFlowRecord {
  FiveTuple tuple;  // canonical (bidirectional) key
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;  // wire bytes, both directions
  Timestamp first_seen;
  Timestamp last_seen;
};

/// Flow-export callback invoked when a record closes (FIN/RST/idle/flush).
using FlowExportFn = std::function<void(const YafFlowRecord&)>;

struct YafConfig {
  std::uint32_t snaplen = 96;  // YAF's default capture length
  Duration idle_timeout = Duration::from_sec(10);
};

class YafEngine : public Engine {
 public:
  YafEngine(YafConfig config, FlowExportFn on_export)
      : config_(config), on_export_(std::move(on_export)) {}

  void on_packet(const Packet& pkt, Timestamp now) override;
  void finish(Timestamp now) override;
  const EngineStats& stats() const override { return stats_; }
  std::uint32_t snaplen() const override { return config_.snaplen; }

  std::uint64_t flows_exported() const { return flows_exported_; }
  std::size_t tracked_now() const { return flows_.size(); }

 private:
  struct TupleHash {
    std::size_t operator()(const FiveTuple& t) const {
      std::uint64_t h = mix64(0x9af0ULL ^ t.src_ip);
      h = mix64(h ^ t.dst_ip);
      h = mix64(h ^ (static_cast<std::uint64_t>(t.src_port) << 32) ^
                (static_cast<std::uint64_t>(t.dst_port) << 16) ^ t.protocol);
      return h;
    }
  };

  void export_record(const YafFlowRecord& rec);
  void expire_idle(Timestamp now);

  YafConfig config_;
  FlowExportFn on_export_;
  EngineStats stats_;
  std::uint64_t flows_exported_ = 0;
  std::unordered_map<FiveTuple, YafFlowRecord, TupleHash> flows_;
  Timestamp last_expiry_scan_;
};

}  // namespace scap::baseline
