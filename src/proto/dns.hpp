// DNS message parsing for UDP streams (RFC 1035 subset).
//
// The UDP counterpart of the HTTP analyzer: monitoring applications that
// receive Scap's UDP streams (concatenated datagram payloads are NOT what
// DNS wants — use per-packet delivery or SCAP_NONE mode) decode each
// datagram into queries/responses. Handles name compression pointers with
// loop protection, multiple questions, and answer records with TTL/rdata
// extents.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace scap::proto {

enum class DnsType : std::uint16_t {
  kA = 1,
  kNs = 2,
  kCname = 5,
  kSoa = 6,
  kPtr = 12,
  kMx = 15,
  kTxt = 16,
  kAaaa = 28,
  kOther = 0,
};

struct DnsQuestion {
  std::string name;  // dotted, lower-case not applied (wire casing kept)
  std::uint16_t qtype = 0;
  std::uint16_t qclass = 0;
};

struct DnsAnswer {
  std::string name;
  std::uint16_t rtype = 0;
  std::uint16_t rclass = 0;
  std::uint32_t ttl = 0;
  std::vector<std::uint8_t> rdata;

  /// Dotted-quad string for A records, empty otherwise.
  std::string a_address() const;
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool is_response = false;
  std::uint8_t opcode = 0;
  std::uint8_t rcode = 0;
  bool recursion_desired = false;
  bool authoritative = false;
  bool truncated = false;
  std::vector<DnsQuestion> questions;
  std::vector<DnsAnswer> answers;
  std::uint16_t authority_count = 0;   // parsed counts only
  std::uint16_t additional_count = 0;
};

/// Parse one DNS datagram. Returns nullopt on malformed input (including
/// compression-pointer loops and truncated records).
std::optional<DnsMessage> parse_dns(std::span<const std::uint8_t> data);

}  // namespace scap::proto
