#include "proto/dns.hpp"

#include <cstdio>

#include "base/bytes.hpp"

namespace scap::proto {
namespace {

/// Decode a (possibly compressed) domain name starting at `off`.
/// Returns the name and advances `off` past its in-place encoding.
bool read_name(std::span<const std::uint8_t> msg, std::size_t& off,
               std::string* out) {
  std::string name;
  std::size_t pos = off;
  bool jumped = false;
  int hops = 0;
  while (true) {
    if (pos >= msg.size()) return false;
    const std::uint8_t len = msg[pos];
    if ((len & 0xc0) == 0xc0) {
      // Compression pointer.
      if (pos + 1 >= msg.size()) return false;
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3f) << 8) | msg[pos + 1];
      if (!jumped) off = pos + 2;
      jumped = true;
      if (++hops > 32) return false;  // pointer loop
      if (target >= pos) return false;  // only backward pointers are legal
      pos = target;
      continue;
    }
    if (len == 0) {
      if (!jumped) off = pos + 1;
      break;
    }
    if ((len & 0xc0) != 0) return false;  // reserved label types
    if (pos + 1 + len > msg.size()) return false;
    if (!name.empty()) name += '.';
    name.append(reinterpret_cast<const char*>(msg.data() + pos + 1), len);
    if (name.size() > 255) return false;
    pos += 1 + len;
  }
  *out = std::move(name);
  return true;
}

}  // namespace

std::string DnsAnswer::a_address() const {
  if (rtype != static_cast<std::uint16_t>(DnsType::kA) || rdata.size() != 4) {
    return {};
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", rdata[0], rdata[1], rdata[2],
                rdata[3]);
  return buf;
}

std::optional<DnsMessage> parse_dns(std::span<const std::uint8_t> data) {
  if (data.size() < 12) return std::nullopt;
  DnsMessage msg;
  msg.id = load_be16(data.data());
  const std::uint16_t flags = load_be16(data.data() + 2);
  msg.is_response = (flags & 0x8000) != 0;
  msg.opcode = static_cast<std::uint8_t>((flags >> 11) & 0x0f);
  msg.authoritative = (flags & 0x0400) != 0;
  msg.truncated = (flags & 0x0200) != 0;
  msg.recursion_desired = (flags & 0x0100) != 0;
  msg.rcode = static_cast<std::uint8_t>(flags & 0x0f);
  const std::uint16_t qdcount = load_be16(data.data() + 4);
  const std::uint16_t ancount = load_be16(data.data() + 6);
  msg.authority_count = load_be16(data.data() + 8);
  msg.additional_count = load_be16(data.data() + 10);

  // Sanity cap: a 512-64KB datagram cannot hold thousands of records.
  if (qdcount > 64 || ancount > 1024) return std::nullopt;

  std::size_t off = 12;
  for (std::uint16_t q = 0; q < qdcount; ++q) {
    DnsQuestion question;
    if (!read_name(data, off, &question.name)) return std::nullopt;
    if (off + 4 > data.size()) return std::nullopt;
    question.qtype = load_be16(data.data() + off);
    question.qclass = load_be16(data.data() + off + 2);
    off += 4;
    msg.questions.push_back(std::move(question));
  }
  for (std::uint16_t a = 0; a < ancount; ++a) {
    DnsAnswer answer;
    if (!read_name(data, off, &answer.name)) return std::nullopt;
    if (off + 10 > data.size()) return std::nullopt;
    answer.rtype = load_be16(data.data() + off);
    answer.rclass = load_be16(data.data() + off + 2);
    answer.ttl = load_be32(data.data() + off + 4);
    const std::uint16_t rdlen = load_be16(data.data() + off + 8);
    off += 10;
    if (off + rdlen > data.size()) return std::nullopt;
    answer.rdata.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                        data.begin() + static_cast<std::ptrdiff_t>(off + rdlen));
    off += rdlen;
    msg.answers.push_back(std::move(answer));
  }
  // Authority/additional sections are counted but not decoded.
  return msg;
}

}  // namespace scap::proto
