// Streaming HTTP/1.x analyzer over reassembled stream chunks.
//
// The paper's motivation (§1): "applications increasingly need to reason
// about higher-level entities and constructs such as TCP flows, HTTP
// headers, SQL arguments, email messages" — Scap delivers the transport
// stream; this module turns the client and server directions of a stream
// into parsed HTTP transactions.
//
// Design: a push parser. Feed it chunk bytes as they arrive (in either
// direction); it emits request/response events through callbacks. It is
// incremental (handles messages split across arbitrary chunk boundaries),
// bounded (header size limits against adversarial streams), and tolerant
// (a malformed message puts the direction into a skip-until-close state
// rather than corrupting later ones).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace scap::proto {

struct HttpHeader {
  std::string name;   // original casing preserved
  std::string value;
};

struct HttpRequest {
  std::string method;
  std::string target;
  std::string version;  // "HTTP/1.1"
  std::vector<HttpHeader> headers;
  std::uint64_t body_bytes = 0;

  /// Case-insensitive header lookup (first match).
  const std::string* header(const std::string& name) const;
};

struct HttpResponse {
  int status_code = 0;
  std::string reason;
  std::string version;
  std::vector<HttpHeader> headers;
  std::uint64_t body_bytes = 0;

  const std::string* header(const std::string& name) const;
};

struct HttpParserStats {
  std::uint64_t requests = 0;
  std::uint64_t responses = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t body_bytes = 0;
};

/// One direction of an HTTP connection (client->server parses requests,
/// server->client parses responses).
class HttpParser {
 public:
  enum class Role { kRequests, kResponses };

  struct Limits {
    std::size_t max_start_line = 8 * 1024;
    std::size_t max_header_bytes = 64 * 1024;
    std::size_t max_headers = 128;
  };

  using RequestFn = std::function<void(const HttpRequest&)>;
  using ResponseFn = std::function<void(const HttpResponse&)>;

  explicit HttpParser(Role role);  // default limits
  HttpParser(Role role, Limits limits);

  void on_request(RequestFn fn) { on_request_ = std::move(fn); }
  void on_response(ResponseFn fn) { on_response_ = std::move(fn); }

  /// Feed the next bytes of this direction's stream, in order.
  void feed(std::span<const std::uint8_t> data);

  /// Stream ended (FIN/RST/timeout): finalize any read-to-EOF body.
  void finish();

  const HttpParserStats& stats() const { return stats_; }
  bool in_error() const { return state_ == State::kError; }

 private:
  enum class State {
    kStartLine,
    kHeaders,
    kBodyFixed,     // Content-Length
    kBodyChunkedSize,
    kBodyChunkedData,
    kBodyChunkedTrailer,
    kBodyToEof,     // response without length framing
    kError,         // skip everything until close
  };

  void reset_message();
  bool parse_start_line(const std::string& line);
  bool parse_header_line(const std::string& line);
  void headers_complete();
  void emit_message();
  void fail();

  Role role_;
  Limits limits_;
  RequestFn on_request_;
  ResponseFn on_response_;
  HttpParserStats stats_;

  State state_ = State::kStartLine;
  std::string line_buf_;
  HttpRequest request_;
  HttpResponse response_;
  std::uint64_t body_remaining_ = 0;
  std::uint64_t header_bytes_ = 0;
  std::uint64_t chunk_remaining_ = 0;
};

/// Convenience: both directions of one HTTP connection.
class HttpConnection {
 public:
  HttpConnection() : client_(HttpParser::Role::kRequests),
                     server_(HttpParser::Role::kResponses) {}
  HttpParser& client() { return client_; }
  HttpParser& server() { return server_; }

 private:
  HttpParser client_;
  HttpParser server_;
};

}  // namespace scap::proto
