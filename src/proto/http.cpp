#include "proto/http.hpp"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace scap::proto {
namespace {

bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

const std::string* find_header(const std::vector<HttpHeader>& headers,
                               const std::string& name) {
  for (const auto& h : headers) {
    if (iequals(h.name, name)) return &h.value;
  }
  return nullptr;
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  return find_header(headers, name);
}

const std::string* HttpResponse::header(const std::string& name) const {
  return find_header(headers, name);
}

HttpParser::HttpParser(Role role) : HttpParser(role, Limits{}) {}

HttpParser::HttpParser(Role role, Limits limits)
    : role_(role), limits_(limits) {}

void HttpParser::reset_message() {
  request_ = HttpRequest{};
  response_ = HttpResponse{};
  body_remaining_ = 0;
  header_bytes_ = 0;
  chunk_remaining_ = 0;
  line_buf_.clear();
  state_ = State::kStartLine;
}

void HttpParser::fail() {
  ++stats_.parse_errors;
  state_ = State::kError;
}

bool HttpParser::parse_start_line(const std::string& raw) {
  const std::string line = trim(raw);
  if (line.empty()) return true;  // tolerate leading blank lines
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos) return false;
  if (role_ == Role::kRequests) {
    if (sp2 == std::string::npos) return false;
    request_.method = line.substr(0, sp1);
    request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    request_.version = line.substr(sp2 + 1);
    if (request_.version.rfind("HTTP/", 0) != 0) return false;
  } else {
    if (line.rfind("HTTP/", 0) != 0) return false;
    response_.version = line.substr(0, sp1);
    const std::string code = sp2 == std::string::npos
                                 ? line.substr(sp1 + 1)
                                 : line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (code.size() != 3 || !std::isdigit(static_cast<unsigned char>(code[0])))
      return false;
    response_.status_code = std::stoi(code);
    if (sp2 != std::string::npos) response_.reason = line.substr(sp2 + 1);
  }
  state_ = State::kHeaders;
  return true;
}

bool HttpParser::parse_header_line(const std::string& raw) {
  const std::string line = trim(raw);
  if (line.empty()) {
    headers_complete();
    return true;
  }
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) return false;
  auto& headers =
      role_ == Role::kRequests ? request_.headers : response_.headers;
  if (headers.size() >= limits_.max_headers) return false;
  HttpHeader h;
  h.name = trim(line.substr(0, colon));
  h.value = trim(line.substr(colon + 1));
  headers.push_back(std::move(h));
  return true;
}

void HttpParser::headers_complete() {
  header_bytes_ = 0;  // chunk-size lines get a fresh budget
  const auto& headers =
      role_ == Role::kRequests ? request_.headers : response_.headers;
  const std::string* te = find_header(headers, "Transfer-Encoding");
  const std::string* cl = find_header(headers, "Content-Length");

  if (te != nullptr && te->find("chunked") != std::string::npos) {
    state_ = State::kBodyChunkedSize;
    return;
  }
  if (cl != nullptr) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(cl->c_str(), &end, 10);
    if (end == cl->c_str() || errno != 0) {
      fail();
      return;
    }
    body_remaining_ = v;
    if (body_remaining_ == 0) {
      emit_message();
    } else {
      state_ = State::kBodyFixed;
    }
    return;
  }
  if (role_ == Role::kRequests) {
    // Requests without length framing have no body.
    emit_message();
  } else {
    // Responses without framing run to connection close.
    state_ = State::kBodyToEof;
  }
}

void HttpParser::emit_message() {
  if (role_ == Role::kRequests) {
    ++stats_.requests;
    if (on_request_) on_request_(request_);
  } else {
    ++stats_.responses;
    if (on_response_) on_response_(response_);
  }
  reset_message();
}

void HttpParser::feed(std::span<const std::uint8_t> data) {
  std::size_t i = 0;
  while (i < data.size()) {
    switch (state_) {
      case State::kError:
        return;  // skip until close

      case State::kStartLine:
      case State::kHeaders:
      case State::kBodyChunkedSize:
      case State::kBodyChunkedTrailer: {
        // Line-oriented states.
        const char c = static_cast<char>(data[i++]);
        ++header_bytes_;
        if (header_bytes_ > limits_.max_header_bytes ||
            line_buf_.size() > limits_.max_start_line) {
          fail();
          return;
        }
        if (c != '\n') {
          line_buf_ += c;
          break;
        }
        const std::string line = line_buf_;
        line_buf_.clear();
        if (state_ == State::kStartLine) {
          if (!parse_start_line(line)) {
            fail();
            return;
          }
        } else if (state_ == State::kHeaders) {
          if (!parse_header_line(line)) {
            fail();
            return;
          }
        } else if (state_ == State::kBodyChunkedSize) {
          const std::string t = trim(line);
          if (t.empty()) break;  // tolerate CRLF between chunks
          errno = 0;
          char* end = nullptr;
          const unsigned long long v = std::strtoull(t.c_str(), &end, 16);
          if (end == t.c_str() || errno != 0) {
            fail();
            return;
          }
          chunk_remaining_ = v;
          state_ = chunk_remaining_ == 0 ? State::kBodyChunkedTrailer
                                         : State::kBodyChunkedData;
        } else {  // kBodyChunkedTrailer
          if (trim(line).empty()) emit_message();
          // non-empty trailer lines are consumed silently
        }
        break;
      }

      case State::kBodyFixed: {
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(body_remaining_, data.size() - i));
        i += take;
        body_remaining_ -= take;
        stats_.body_bytes += take;
        if (role_ == Role::kRequests) {
          request_.body_bytes += take;
        } else {
          response_.body_bytes += take;
        }
        if (body_remaining_ == 0) emit_message();
        break;
      }

      case State::kBodyChunkedData: {
        const std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(chunk_remaining_, data.size() - i));
        i += take;
        chunk_remaining_ -= take;
        stats_.body_bytes += take;
        if (role_ == Role::kRequests) {
          request_.body_bytes += take;
        } else {
          response_.body_bytes += take;
        }
        if (chunk_remaining_ == 0) state_ = State::kBodyChunkedSize;
        break;
      }

      case State::kBodyToEof: {
        const std::size_t take = data.size() - i;
        i += take;
        stats_.body_bytes += take;
        response_.body_bytes += take;
        break;
      }
    }
  }
}

void HttpParser::finish() {
  if (state_ == State::kBodyToEof) {
    emit_message();
  }
}

}  // namespace scap::proto
