// RFC 1071 internet checksum, plus the TCP/UDP pseudo-header variants.
#pragma once

#include <cstdint>
#include <span>

namespace scap {

/// One's-complement sum over `data`, folded to 16 bits (not inverted).
std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                               std::uint32_t sum = 0);

/// Full internet checksum of a buffer (inverted, ready to store).
std::uint16_t internet_checksum(std::span<const std::uint8_t> data);

/// TCP/UDP checksum with the IPv4 pseudo-header.
/// `segment` covers the transport header + payload with the checksum field
/// zeroed (or its existing value, if verifying — a valid packet then yields 0).
std::uint16_t transport_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment);

}  // namespace scap
