// Packet crafting: builds complete, checksum-correct Ethernet/IPv4/TCP|UDP
// frames. Used by the traffic generator and by tests that need precise
// control over sequence numbers, flags, and payload bytes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "base/clock.hpp"
#include "packet/packet.hpp"

namespace scap {

struct TcpSegmentSpec {
  FiveTuple tuple;           // protocol field is ignored (forced to TCP)
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = kTcpAck;
  std::uint16_t window = 65535;
  std::span<const std::uint8_t> payload = {};
  std::uint8_t ttl = 64;
  std::uint16_t ip_id = 0;
};

/// Build a full Ethernet/IPv4/TCP frame.
std::vector<std::uint8_t> build_tcp_frame(const TcpSegmentSpec& spec);

/// Build a full Ethernet/IPv4/UDP frame.
std::vector<std::uint8_t> build_udp_frame(const FiveTuple& tuple,
                                          std::span<const std::uint8_t> payload,
                                          std::uint8_t ttl = 64);

/// Decode helper used pervasively in tests.
Packet make_tcp_packet(const TcpSegmentSpec& spec, Timestamp ts);
Packet make_udp_packet(const FiveTuple& tuple,
                       std::span<const std::uint8_t> payload, Timestamp ts);

/// Verify the IP header checksum and (for TCP/UDP) the transport checksum of
/// an unsnapped frame. Returns true when all present checksums are valid.
bool verify_checksums(std::span<const std::uint8_t> frame);

}  // namespace scap
