// From-scratch libpcap savefile (.pcap) reader and writer.
//
// Implements the classic tcpdump format: 24-byte global header with magic
// 0xa1b2c3d4 (microsecond timestamps), followed by per-packet record headers.
// The reader handles both byte orders and the nanosecond-magic variant
// (0xa1b23c4d); the writer emits native-endian microsecond files.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>

#include "packet/packet.hpp"

namespace scap {

constexpr std::uint32_t kPcapMagicUsec = 0xa1b2c3d4;
constexpr std::uint32_t kPcapMagicNsec = 0xa1b23c4d;
constexpr std::uint32_t kLinkTypeEthernet = 1;

class PcapWriter {
 public:
  /// Opens (truncates) `path` and writes the global header.
  /// Throws std::runtime_error on I/O failure.
  PcapWriter(const std::string& path, std::uint32_t snaplen = 65535);

  void write(const Packet& pkt);
  void write_raw(std::span<const std::uint8_t> frame, Timestamp ts,
                 std::uint32_t wire_len = 0);

  std::uint64_t packets_written() const { return count_; }

 private:
  std::ofstream out_;
  std::uint64_t count_ = 0;
};

class PcapReader {
 public:
  /// Throws std::runtime_error if the file cannot be opened or the magic is
  /// not a pcap magic.
  explicit PcapReader(const std::string& path);

  /// Next packet, or nullopt at EOF. Truncated trailing records are treated
  /// as EOF (real capture files are often cut mid-record).
  std::optional<Packet> next();

  std::uint32_t snaplen() const { return snaplen_; }
  std::uint32_t link_type() const { return link_type_; }
  std::uint64_t packets_read() const { return count_; }

 private:
  std::ifstream in_;
  bool swapped_ = false;
  bool nanosecond_ = false;
  std::uint32_t snaplen_ = 0;
  std::uint32_t link_type_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace scap
