// BPF-style filter expressions (the subset monitoring applications use with
// scap_set_filter / scap_add_cutoff_class).
//
// Grammar (classic tcpdump syntax):
//   expr      := and_expr ( "or" and_expr )*
//   and_expr  := unary ( "and" unary )*
//   unary     := "not" unary | "(" expr ")" | primitive
//   primitive := "tcp" | "udp" | "icmp" | "ip"
//             |  [dir] "host" IPV4
//             |  [dir] "net" IPV4 "/" PREFIX
//             |  [dir] "port" NUM
//             |  [dir] "portrange" NUM "-" NUM
//             |  "proto" NUM
//   dir       := "src" | "dst"
//
// Filters evaluate over decoded 5-tuples, which is what both the kernel
// datapath and the NIC-level classifier have available.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "packet/headers.hpp"

namespace scap {

class BpfProgram {
 public:
  BpfProgram() = default;  // empty program matches everything

  /// Compile an expression. Throws std::invalid_argument on syntax errors.
  static BpfProgram compile(const std::string& expression);

  bool matches(const FiveTuple& tuple) const;
  bool empty() const { return root_ == nullptr; }
  const std::string& source() const { return source_; }

  // Node is public only for the compiler/tests; treat as opaque.
  struct Node;

 private:
  std::shared_ptr<const Node> root_;
  std::string source_;
};

}  // namespace scap
