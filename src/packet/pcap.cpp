#include "packet/pcap.hpp"

#include <array>
#include <stdexcept>

#include "base/bytes.hpp"

namespace scap {
namespace {

std::uint32_t byteswap32(std::uint32_t v) {
  return ((v & 0x000000ffu) << 24) | ((v & 0x0000ff00u) << 8) |
         ((v & 0x00ff0000u) >> 8) | ((v & 0xff000000u) >> 24);
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path, std::uint32_t snaplen)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw std::runtime_error("pcap: cannot open for writing: " + path);
  std::array<std::uint8_t, 24> hdr{};
  store_le32(hdr.data(), kPcapMagicUsec);
  store_le16(hdr.data() + 4, 2);   // version major
  store_le16(hdr.data() + 6, 4);   // version minor
  store_le32(hdr.data() + 8, 0);   // thiszone
  store_le32(hdr.data() + 12, 0);  // sigfigs
  store_le32(hdr.data() + 16, snaplen);
  store_le32(hdr.data() + 20, kLinkTypeEthernet);
  out_.write(reinterpret_cast<const char*>(hdr.data()),
             static_cast<std::streamsize>(hdr.size()));
}

void PcapWriter::write(const Packet& pkt) {
  write_raw(pkt.frame(), pkt.timestamp(), pkt.wire_len());
}

void PcapWriter::write_raw(std::span<const std::uint8_t> frame, Timestamp ts,
                           std::uint32_t wire_len) {
  std::array<std::uint8_t, 16> rec{};
  const std::int64_t us = ts.usec();
  store_le32(rec.data(), static_cast<std::uint32_t>(us / 1'000'000));
  store_le32(rec.data() + 4, static_cast<std::uint32_t>(us % 1'000'000));
  store_le32(rec.data() + 8, static_cast<std::uint32_t>(frame.size()));
  store_le32(rec.data() + 12,
             wire_len ? wire_len : static_cast<std::uint32_t>(frame.size()));
  out_.write(reinterpret_cast<const char*>(rec.data()),
             static_cast<std::streamsize>(rec.size()));
  out_.write(reinterpret_cast<const char*>(frame.data()),
             static_cast<std::streamsize>(frame.size()));
  if (!out_) throw std::runtime_error("pcap: write failed");
  ++count_;
}

PcapReader::PcapReader(const std::string& path)
    : in_(path, std::ios::binary) {
  if (!in_) throw std::runtime_error("pcap: cannot open for reading: " + path);
  std::array<std::uint8_t, 24> hdr{};
  in_.read(reinterpret_cast<char*>(hdr.data()),
           static_cast<std::streamsize>(hdr.size()));
  if (in_.gcount() != static_cast<std::streamsize>(hdr.size())) {
    throw std::runtime_error("pcap: file too short for global header");
  }
  std::uint32_t magic = load_le32(hdr.data());
  if (magic == kPcapMagicUsec) {
    swapped_ = false;
  } else if (magic == kPcapMagicNsec) {
    swapped_ = false;
    nanosecond_ = true;
  } else if (byteswap32(magic) == kPcapMagicUsec) {
    swapped_ = true;
  } else if (byteswap32(magic) == kPcapMagicNsec) {
    swapped_ = true;
    nanosecond_ = true;
  } else {
    throw std::runtime_error("pcap: bad magic");
  }
  auto rd32 = [&](std::size_t off) {
    std::uint32_t v = load_le32(hdr.data() + off);
    return swapped_ ? byteswap32(v) : v;
  };
  snaplen_ = rd32(16);
  link_type_ = rd32(20);
}

std::optional<Packet> PcapReader::next() {
  std::array<std::uint8_t, 16> rec{};
  in_.read(reinterpret_cast<char*>(rec.data()),
           static_cast<std::streamsize>(rec.size()));
  if (in_.gcount() != static_cast<std::streamsize>(rec.size())) {
    return std::nullopt;  // EOF (possibly mid-record)
  }
  auto rd32 = [&](std::size_t off) {
    std::uint32_t v = load_le32(rec.data() + off);
    return swapped_ ? byteswap32(v) : v;
  };
  const std::uint32_t ts_sec = rd32(0);
  const std::uint32_t ts_frac = rd32(4);
  const std::uint32_t incl_len = rd32(8);
  const std::uint32_t orig_len = rd32(12);
  if (incl_len > 256 * 1024) {
    return std::nullopt;  // corrupt record; stop rather than allocate wildly
  }
  auto buf = std::make_shared<std::vector<std::uint8_t>>(incl_len);
  in_.read(reinterpret_cast<char*>(buf->data()),
           static_cast<std::streamsize>(incl_len));
  if (in_.gcount() != static_cast<std::streamsize>(incl_len)) {
    return std::nullopt;  // truncated final record
  }
  const std::int64_t ns =
      static_cast<std::int64_t>(ts_sec) * 1'000'000'000 +
      (nanosecond_ ? static_cast<std::int64_t>(ts_frac)
                   : static_cast<std::int64_t>(ts_frac) * 1000);
  ++count_;
  return Packet::decode(std::move(buf), Timestamp(ns), orig_len);
}

}  // namespace scap
