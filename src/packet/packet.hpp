// Packet representation used throughout the pipeline.
//
// A Packet couples an immutable, shared frame buffer with decoded metadata
// (5-tuple, TCP fields, payload window). Decoding happens once, when the
// packet is created; queues and pipeline stages then copy only the small
// metadata block plus a reference-counted pointer — mirroring how real
// capture stacks pass descriptors around, not frame bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "base/clock.hpp"
#include "packet/headers.hpp"

namespace scap {

using FrameBuffer = std::shared_ptr<const std::vector<std::uint8_t>>;

class Packet {
 public:
  Packet() = default;

  /// Decode a captured frame. `wire_len` is the original on-the-wire length
  /// (>= frame size when the capture was snapped); 0 means "frame size".
  static Packet decode(FrameBuffer frame, Timestamp ts, std::uint32_t wire_len = 0);

  /// Convenience: copy raw bytes into a new frame buffer and decode.
  static Packet from_bytes(std::span<const std::uint8_t> bytes, Timestamp ts,
                           std::uint32_t wire_len = 0);

  bool valid() const { return valid_; }
  /// Why decoding failed (kNone when valid()). Invalid packets map to
  /// exactly one taxonomy bucket.
  DecodeError decode_error() const { return decode_error_; }
  Timestamp timestamp() const { return ts_; }
  void set_timestamp(Timestamp ts) { ts_ = ts; }

  /// Original length on the wire (what rate/occupancy calculations use).
  std::uint32_t wire_len() const { return wire_len_; }
  /// Captured length (bytes actually present in the frame buffer).
  std::uint32_t capture_len() const {
    return frame_ ? static_cast<std::uint32_t>(frame_->size()) : 0;
  }

  const FiveTuple& tuple() const { return tuple_; }
  bool is_tcp() const { return tuple_.protocol == kProtoTcp; }
  bool is_udp() const { return tuple_.protocol == kProtoUdp; }

  // TCP-only fields (zero for non-TCP).
  std::uint8_t tcp_flags() const { return tcp_flags_; }
  std::uint32_t seq() const { return seq_; }
  std::uint32_t ack() const { return ack_; }
  bool has_flag(TcpFlag f) const { return (tcp_flags_ & f) != 0; }

  /// Transport payload present in the captured frame.
  std::span<const std::uint8_t> payload() const {
    if (!frame_ || payload_len_ == 0) return {};
    return std::span<const std::uint8_t>(*frame_).subspan(payload_off_, payload_len_);
  }
  std::uint32_t payload_len() const { return payload_len_; }
  /// Payload length on the wire (may exceed captured payload when snapped).
  std::uint32_t wire_payload_len() const { return wire_payload_len_; }

  std::span<const std::uint8_t> frame() const {
    if (!frame_) return {};
    return std::span<const std::uint8_t>(*frame_);
  }
  const FrameBuffer& frame_buffer() const { return frame_; }

  /// IP-fragmentation status (strict reassembly cares).
  bool is_ip_fragment() const { return ip_fragment_; }

  /// Re-create this packet truncated to `snaplen` captured bytes, keeping the
  /// original wire length (models snaplen-limited capture, e.g. YAF's 96B).
  Packet snapped(std::uint32_t snaplen) const;

  /// Copy of this packet with both IPs shifted by `ip_offset` and a new
  /// timestamp, sharing the same frame bytes. Used by the looped-trace
  /// replayer so every loop iteration contributes distinct flows without
  /// duplicating frame memory (header bytes intentionally stay stale: the
  /// pipeline keys on the decoded tuple).
  Packet remapped(std::uint32_t ip_offset, Timestamp ts) const;

  /// Copy of this packet with tuple, TCP sequence, and timestamp replaced,
  /// sharing the same frame bytes. Lets generators stamp out millions of
  /// metadata-distinct packets from one crafted template without allocating
  /// a frame per packet.
  Packet with_flow(const FiveTuple& tuple, std::uint32_t seq,
                   Timestamp ts) const;

 private:
  Timestamp ts_;
  FrameBuffer frame_;
  std::uint32_t wire_len_ = 0;
  FiveTuple tuple_;
  std::uint8_t tcp_flags_ = 0;
  std::uint32_t seq_ = 0;
  std::uint32_t ack_ = 0;
  std::uint16_t payload_off_ = 0;
  std::uint32_t payload_len_ = 0;
  std::uint32_t wire_payload_len_ = 0;
  bool valid_ = false;
  bool ip_fragment_ = false;
  DecodeError decode_error_ = DecodeError::kNone;
};

}  // namespace scap
