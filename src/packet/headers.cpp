#include "packet/headers.hpp"

#include <cstdio>
#include <cstring>

#include "base/bytes.hpp"

namespace scap {

std::string ip_to_string(std::uint32_t ip) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

std::string to_string(const FiveTuple& t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s:%u -> %s:%u/%u",
                ip_to_string(t.src_ip).c_str(), t.src_port,
                ip_to_string(t.dst_ip).c_str(), t.dst_port, t.protocol);
  return buf;
}

const char* to_string(DecodeError e) {
  switch (e) {
    case DecodeError::kNone: return "none";
    case DecodeError::kEthTruncated: return "eth_truncated";
    case DecodeError::kNonIpv4: return "non_ipv4";
    case DecodeError::kIpTruncated: return "ip_truncated";
    case DecodeError::kIpBadVersion: return "ip_bad_version";
    case DecodeError::kIpBadHeaderLen: return "ip_bad_header_len";
    case DecodeError::kIpBadTotalLen: return "ip_bad_total_len";
    case DecodeError::kTcpTruncated: return "tcp_truncated";
    case DecodeError::kTcpBadDataOff: return "tcp_bad_data_off";
    case DecodeError::kUdpTruncated: return "udp_truncated";
    case DecodeError::kUdpBadLength: return "udp_bad_length";
    case DecodeError::kCount: break;
  }
  return "unknown";
}

namespace {
/// Record the rejection reason and fail the parse in one expression.
inline std::nullopt_t reject(DecodeError* error, DecodeError reason) {
  if (error != nullptr) *error = reason;
  return std::nullopt;
}
}  // namespace

std::optional<EthHeader> parse_eth(std::span<const std::uint8_t> frame,
                                   DecodeError* error) {
  if (frame.size() < kEthHeaderLen) {
    return reject(error, DecodeError::kEthTruncated);
  }
  EthHeader h;
  std::memcpy(h.dst, frame.data(), 6);
  std::memcpy(h.src, frame.data() + 6, 6);
  h.ether_type = load_be16(frame.data() + 12);
  return h;
}

std::optional<Ipv4Header> parse_ipv4(std::span<const std::uint8_t> bytes,
                                     DecodeError* error) {
  if (bytes.size() < 20) return reject(error, DecodeError::kIpTruncated);
  const std::uint8_t* p = bytes.data();
  Ipv4Header h;
  h.version = p[0] >> 4;
  h.ihl = p[0] & 0x0f;
  if (h.version != 4) return reject(error, DecodeError::kIpBadVersion);
  if (h.ihl < 5) return reject(error, DecodeError::kIpBadHeaderLen);
  if (bytes.size() < h.header_len()) {
    return reject(error, DecodeError::kIpTruncated);
  }
  h.dscp_ecn = p[1];
  h.total_len = load_be16(p + 2);
  // A datagram that claims to end inside its own header cannot carry
  // anything; rejecting here keeps total_len >= header_len for all callers.
  // (A snapped capture is the opposite case — total_len beyond the captured
  // bytes — and stays valid.)
  if (h.total_len < h.header_len()) {
    return reject(error, DecodeError::kIpBadTotalLen);
  }
  h.id = load_be16(p + 4);
  h.frag_off = load_be16(p + 6);
  h.ttl = p[8];
  h.protocol = p[9];
  h.checksum = load_be16(p + 10);
  h.src_ip = load_be32(p + 12);
  h.dst_ip = load_be32(p + 16);
  return h;
}

std::optional<TcpHeader> parse_tcp(std::span<const std::uint8_t> bytes,
                                   DecodeError* error) {
  if (bytes.size() < 20) return reject(error, DecodeError::kTcpTruncated);
  const std::uint8_t* p = bytes.data();
  TcpHeader h;
  h.src_port = load_be16(p);
  h.dst_port = load_be16(p + 2);
  h.seq = load_be32(p + 4);
  h.ack = load_be32(p + 8);
  h.data_off = p[12] >> 4;
  if (h.data_off < 5) return reject(error, DecodeError::kTcpBadDataOff);
  if (bytes.size() < h.header_len()) {
    return reject(error, DecodeError::kTcpTruncated);
  }
  h.flags = p[13];
  h.window = load_be16(p + 14);
  h.checksum = load_be16(p + 16);
  h.urgent = load_be16(p + 18);
  return h;
}

std::optional<UdpHeader> parse_udp(std::span<const std::uint8_t> bytes,
                                   DecodeError* error) {
  if (bytes.size() < 8) return reject(error, DecodeError::kUdpTruncated);
  const std::uint8_t* p = bytes.data();
  UdpHeader h;
  h.src_port = load_be16(p);
  h.dst_port = load_be16(p + 2);
  h.length = load_be16(p + 4);
  if (h.length < 8) return reject(error, DecodeError::kUdpBadLength);
  h.checksum = load_be16(p + 6);
  return h;
}

void write_eth(std::span<std::uint8_t> out, const EthHeader& h) {
  std::memcpy(out.data(), h.dst, 6);
  std::memcpy(out.data() + 6, h.src, 6);
  store_be16(out.data() + 12, h.ether_type);
}

void write_ipv4(std::span<std::uint8_t> out, const Ipv4Header& h) {
  std::uint8_t* p = out.data();
  p[0] = static_cast<std::uint8_t>((h.version << 4) | (h.ihl & 0x0f));
  p[1] = h.dscp_ecn;
  store_be16(p + 2, h.total_len);
  store_be16(p + 4, h.id);
  store_be16(p + 6, h.frag_off);
  p[8] = h.ttl;
  p[9] = h.protocol;
  store_be16(p + 10, h.checksum);
  store_be32(p + 12, h.src_ip);
  store_be32(p + 16, h.dst_ip);
}

void write_tcp(std::span<std::uint8_t> out, const TcpHeader& h) {
  std::uint8_t* p = out.data();
  store_be16(p, h.src_port);
  store_be16(p + 2, h.dst_port);
  store_be32(p + 4, h.seq);
  store_be32(p + 8, h.ack);
  p[12] = static_cast<std::uint8_t>(h.data_off << 4);
  p[13] = h.flags;
  store_be16(p + 14, h.window);
  store_be16(p + 16, h.checksum);
  store_be16(p + 18, h.urgent);
}

void write_udp(std::span<std::uint8_t> out, const UdpHeader& h) {
  std::uint8_t* p = out.data();
  store_be16(p, h.src_port);
  store_be16(p + 2, h.dst_port);
  store_be16(p + 4, h.length);
  store_be16(p + 6, h.checksum);
}

}  // namespace scap
