#include "packet/bpf.hpp"

#include <cctype>
#include <stdexcept>
#include <vector>

namespace scap {

namespace {

enum class Dir { kEither, kSrc, kDst };

}  // namespace

struct BpfProgram::Node {
  enum class Kind {
    kAnd,
    kOr,
    kNot,
    kProto,      // value = IP protocol number
    kHost,       // value = IP, dir
    kNet,        // value = IP, value2 = mask, dir
    kPort,       // value = port, dir
    kPortRange,  // value = lo, value2 = hi, dir
    kIp,         // any IPv4 (always true here: we only decode IPv4)
  };
  Kind kind;
  std::uint32_t value = 0;
  std::uint32_t value2 = 0;
  Dir dir = Dir::kEither;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;

  bool eval(const FiveTuple& t) const {
    switch (kind) {
      case Kind::kAnd:
        return left->eval(t) && right->eval(t);
      case Kind::kOr:
        return left->eval(t) || right->eval(t);
      case Kind::kNot:
        return !left->eval(t);
      case Kind::kProto:
        return t.protocol == value;
      case Kind::kHost:
        switch (dir) {
          case Dir::kSrc: return t.src_ip == value;
          case Dir::kDst: return t.dst_ip == value;
          case Dir::kEither: return t.src_ip == value || t.dst_ip == value;
        }
        return false;
      case Kind::kNet:
        switch (dir) {
          case Dir::kSrc: return (t.src_ip & value2) == (value & value2);
          case Dir::kDst: return (t.dst_ip & value2) == (value & value2);
          case Dir::kEither:
            return (t.src_ip & value2) == (value & value2) ||
                   (t.dst_ip & value2) == (value & value2);
        }
        return false;
      case Kind::kPort:
        switch (dir) {
          case Dir::kSrc: return t.src_port == value;
          case Dir::kDst: return t.dst_port == value;
          case Dir::kEither: return t.src_port == value || t.dst_port == value;
        }
        return false;
      case Kind::kPortRange: {
        auto in = [&](std::uint16_t p) { return p >= value && p <= value2; };
        switch (dir) {
          case Dir::kSrc: return in(t.src_port);
          case Dir::kDst: return in(t.dst_port);
          case Dir::kEither: return in(t.src_port) || in(t.dst_port);
        }
        return false;
      }
      case Kind::kIp:
        return true;
    }
    return false;
  }
};

namespace {

using Node = BpfProgram::Node;
using NodePtr = std::shared_ptr<const Node>;

class Parser {
 public:
  explicit Parser(const std::string& text) { tokenize(text); }

  NodePtr parse() {
    if (tokens_.empty()) return nullptr;
    NodePtr root = parse_or();
    if (pos_ != tokens_.size()) {
      throw std::invalid_argument("bpf: trailing tokens after '" +
                                  tokens_[pos_ - 1] + "'");
    }
    return root;
  }

 private:
  void tokenize(const std::string& text) {
    std::size_t i = 0;
    while (i < text.size()) {
      if (std::isspace(static_cast<unsigned char>(text[i]))) {
        ++i;
        continue;
      }
      if (text[i] == '(' || text[i] == ')' || text[i] == '/' ||
          text[i] == '-') {
        tokens_.emplace_back(1, text[i]);
        ++i;
        continue;
      }
      std::size_t start = i;
      while (i < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[i])) &&
             text[i] != '(' && text[i] != ')' && text[i] != '/' &&
             text[i] != '-') {
        ++i;
      }
      tokens_.push_back(text.substr(start, i - start));
    }
  }

  bool at_end() const { return pos_ >= tokens_.size(); }
  const std::string& peek() const {
    static const std::string kEmpty;
    return at_end() ? kEmpty : tokens_[pos_];
  }
  std::string take() {
    if (at_end()) throw std::invalid_argument("bpf: unexpected end of filter");
    return tokens_[pos_++];
  }
  bool accept(const std::string& word) {
    if (!at_end() && tokens_[pos_] == word) {
      ++pos_;
      return true;
    }
    return false;
  }

  NodePtr parse_or() {
    NodePtr left = parse_and();
    while (accept("or") || accept("||")) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::kOr;
      node->left = left;
      node->right = parse_and();
      left = node;
    }
    return left;
  }

  NodePtr parse_and() {
    NodePtr left = parse_unary();
    while (accept("and") || accept("&&")) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::kAnd;
      node->left = left;
      node->right = parse_unary();
      left = node;
    }
    return left;
  }

  NodePtr parse_unary() {
    if (accept("not") || accept("!")) {
      auto node = std::make_shared<Node>();
      node->kind = Node::Kind::kNot;
      node->left = parse_unary();
      return node;
    }
    if (accept("(")) {
      NodePtr inner = parse_or();
      if (!accept(")")) throw std::invalid_argument("bpf: missing ')'");
      return inner;
    }
    return parse_primitive();
  }

  static std::uint32_t parse_ip(const std::string& s) {
    std::uint32_t parts[4];
    int part = 0;
    std::uint32_t cur = 0;
    bool have_digit = false;
    for (char ch : s) {
      if (ch == '.') {
        if (!have_digit || part >= 3) {
          throw std::invalid_argument("bpf: bad IPv4 address: " + s);
        }
        parts[part++] = cur;
        cur = 0;
        have_digit = false;
      } else if (std::isdigit(static_cast<unsigned char>(ch))) {
        cur = cur * 10 + static_cast<std::uint32_t>(ch - '0');
        if (cur > 255) throw std::invalid_argument("bpf: bad IPv4 octet: " + s);
        have_digit = true;
      } else {
        throw std::invalid_argument("bpf: bad IPv4 address: " + s);
      }
    }
    if (!have_digit || part != 3) {
      throw std::invalid_argument("bpf: bad IPv4 address: " + s);
    }
    parts[3] = cur;
    return (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3];
  }

  static std::uint32_t parse_num(const std::string& s, std::uint32_t max) {
    if (s.empty()) throw std::invalid_argument("bpf: expected a number");
    std::uint64_t v = 0;
    for (char ch : s) {
      if (!std::isdigit(static_cast<unsigned char>(ch))) {
        throw std::invalid_argument("bpf: bad number: " + s);
      }
      v = v * 10 + static_cast<std::uint64_t>(ch - '0');
      if (v > max) throw std::invalid_argument("bpf: number out of range: " + s);
    }
    return static_cast<std::uint32_t>(v);
  }

  NodePtr parse_primitive() {
    Dir dir = Dir::kEither;
    if (accept("src")) {
      dir = Dir::kSrc;
    } else if (accept("dst")) {
      dir = Dir::kDst;
    }

    const std::string word = take();
    auto node = std::make_shared<Node>();
    node->dir = dir;
    if (word == "tcp") {
      node->kind = Node::Kind::kProto;
      node->value = kProtoTcp;
    } else if (word == "udp") {
      node->kind = Node::Kind::kProto;
      node->value = kProtoUdp;
    } else if (word == "icmp") {
      node->kind = Node::Kind::kProto;
      node->value = kProtoIcmp;
    } else if (word == "ip") {
      node->kind = Node::Kind::kIp;
    } else if (word == "proto") {
      node->kind = Node::Kind::kProto;
      node->value = parse_num(take(), 255);
    } else if (word == "host") {
      node->kind = Node::Kind::kHost;
      node->value = parse_ip(take());
    } else if (word == "net") {
      node->kind = Node::Kind::kNet;
      node->value = parse_ip(take());
      if (!accept("/")) throw std::invalid_argument("bpf: net needs /prefix");
      const std::uint32_t prefix = parse_num(take(), 32);
      node->value2 =
          prefix == 0 ? 0 : (0xffffffffu << (32 - prefix)) & 0xffffffffu;
    } else if (word == "port") {
      node->kind = Node::Kind::kPort;
      node->value = parse_num(take(), 65535);
    } else if (word == "portrange") {
      node->kind = Node::Kind::kPortRange;
      node->value = parse_num(take(), 65535);
      if (!accept("-")) {
        throw std::invalid_argument("bpf: portrange needs lo-hi");
      }
      node->value2 = parse_num(take(), 65535);
      if (node->value2 < node->value) {
        throw std::invalid_argument("bpf: portrange hi < lo");
      }
    } else {
      throw std::invalid_argument("bpf: unknown primitive: " + word);
    }
    return node;
  }

  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

BpfProgram BpfProgram::compile(const std::string& expression) {
  BpfProgram p;
  p.root_ = Parser(expression).parse();
  p.source_ = expression;
  return p;
}

bool BpfProgram::matches(const FiveTuple& tuple) const {
  return root_ == nullptr || root_->eval(tuple);
}

}  // namespace scap
