#include "packet/checksum.hpp"

namespace scap {

std::uint32_t checksum_partial(std::span<const std::uint8_t> data,
                               std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i] << 8);  // odd byte, pad with 0
  }
  return sum;
}

namespace {
std::uint16_t fold(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}
}  // namespace

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) {
  return fold(checksum_partial(data));
}

std::uint16_t transport_checksum(std::uint32_t src_ip, std::uint32_t dst_ip,
                                 std::uint8_t protocol,
                                 std::span<const std::uint8_t> segment) {
  std::uint32_t sum = 0;
  sum += (src_ip >> 16) & 0xffff;
  sum += src_ip & 0xffff;
  sum += (dst_ip >> 16) & 0xffff;
  sum += dst_ip & 0xffff;
  sum += protocol;
  sum += static_cast<std::uint32_t>(segment.size());
  sum = checksum_partial(segment, sum);
  return fold(sum);
}

}  // namespace scap
