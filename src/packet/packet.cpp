#include "packet/packet.hpp"

#include <cstring>

namespace scap {

Packet Packet::decode(FrameBuffer frame, Timestamp ts, std::uint32_t wire_len) {
  Packet p;
  p.ts_ = ts;
  p.frame_ = std::move(frame);
  if (!p.frame_) {
    p.decode_error_ = DecodeError::kEthTruncated;
    return p;
  }
  const auto bytes = std::span<const std::uint8_t>(*p.frame_);
  p.wire_len_ = wire_len ? wire_len : static_cast<std::uint32_t>(bytes.size());

  const auto eth = parse_eth(bytes, &p.decode_error_);
  if (!eth) return p;
  if (eth->ether_type != kEtherTypeIpv4) {
    p.decode_error_ = DecodeError::kNonIpv4;
    return p;
  }
  const auto ip_bytes = bytes.subspan(kEthHeaderLen);
  const auto ip = parse_ipv4(ip_bytes, &p.decode_error_);
  if (!ip) return p;

  p.tuple_.src_ip = ip->src_ip;
  p.tuple_.dst_ip = ip->dst_ip;
  p.tuple_.protocol = ip->protocol;
  p.ip_fragment_ = ip->more_fragments() || ip->fragment_offset_bytes() != 0;

  // Transport parsing only applies to the first fragment.
  const std::size_t l4_off = kEthHeaderLen + ip->header_len();
  // Wire-level L3 payload length comes from the IP total_len field, so a
  // snapped capture still knows the true payload size.
  const std::size_t ip_payload_wire =
      ip->total_len > ip->header_len() ? ip->total_len - ip->header_len() : 0;
  if (ip->fragment_offset_bytes() != 0) {
    p.valid_ = true;  // valid IP, but no transport header to parse
    return p;
  }
  const auto l4 = bytes.size() > l4_off ? bytes.subspan(l4_off)
                                        : std::span<const std::uint8_t>{};

  if (ip->protocol == kProtoTcp) {
    const auto tcp = parse_tcp(l4, &p.decode_error_);
    if (!tcp) return p;
    p.tuple_.src_port = tcp->src_port;
    p.tuple_.dst_port = tcp->dst_port;
    p.tcp_flags_ = tcp->flags;
    p.seq_ = tcp->seq;
    p.ack_ = tcp->ack;
    const std::size_t pay_off = l4_off + tcp->header_len();
    p.payload_off_ = static_cast<std::uint16_t>(pay_off);
    p.payload_len_ = bytes.size() > pay_off
                         ? static_cast<std::uint32_t>(bytes.size() - pay_off)
                         : 0;
    p.wire_payload_len_ =
        ip_payload_wire > tcp->header_len()
            ? static_cast<std::uint32_t>(ip_payload_wire - tcp->header_len())
            : 0;
    // Captured payload can never exceed the wire payload (trailing pad).
    if (p.payload_len_ > p.wire_payload_len_) p.payload_len_ = p.wire_payload_len_;
    p.valid_ = true;
  } else if (ip->protocol == kProtoUdp) {
    const auto udp = parse_udp(l4, &p.decode_error_);
    if (!udp) return p;
    p.tuple_.src_port = udp->src_port;
    p.tuple_.dst_port = udp->dst_port;
    const std::size_t pay_off = l4_off + 8;
    p.payload_off_ = static_cast<std::uint16_t>(pay_off);
    p.payload_len_ = bytes.size() > pay_off
                         ? static_cast<std::uint32_t>(bytes.size() - pay_off)
                         : 0;
    p.wire_payload_len_ =
        udp->length > 8 ? static_cast<std::uint32_t>(udp->length - 8) : 0;
    if (p.payload_len_ > p.wire_payload_len_) p.payload_len_ = p.wire_payload_len_;
    p.valid_ = true;
  } else {
    // Other IP protocols: valid at the network layer, no ports.
    p.valid_ = true;
  }
  return p;
}

Packet Packet::from_bytes(std::span<const std::uint8_t> bytes, Timestamp ts,
                          std::uint32_t wire_len) {
  auto buf = std::make_shared<std::vector<std::uint8_t>>(bytes.begin(), bytes.end());
  return decode(std::move(buf), ts, wire_len);
}

Packet Packet::remapped(std::uint32_t ip_offset, Timestamp ts) const {
  Packet p = *this;
  p.ts_ = ts;
  p.tuple_.src_ip += ip_offset;
  p.tuple_.dst_ip += ip_offset;
  return p;
}

Packet Packet::with_flow(const FiveTuple& tuple, std::uint32_t seq,
                         Timestamp ts) const {
  Packet p = *this;
  p.tuple_ = tuple;
  p.seq_ = seq;
  p.ts_ = ts;
  return p;
}

Packet Packet::snapped(std::uint32_t snaplen) const {
  if (!frame_ || frame_->size() <= snaplen) return *this;
  auto buf = std::make_shared<std::vector<std::uint8_t>>(
      frame_->begin(), frame_->begin() + snaplen);
  return decode(std::move(buf), ts_, wire_len_);
}

}  // namespace scap
