#include "packet/craft.hpp"

#include <cstring>

#include "packet/checksum.hpp"

namespace scap {
namespace {

constexpr std::uint8_t kSrcMac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x01};
constexpr std::uint8_t kDstMac[6] = {0x02, 0x00, 0x00, 0x00, 0x00, 0x02};

void fill_eth(std::span<std::uint8_t> out) {
  EthHeader eth{};
  std::memcpy(eth.dst, kDstMac, 6);
  std::memcpy(eth.src, kSrcMac, 6);
  eth.ether_type = kEtherTypeIpv4;
  write_eth(out, eth);
}

void fill_ipv4(std::span<std::uint8_t> out, const FiveTuple& tuple,
               std::uint8_t protocol, std::size_t l4_len, std::uint8_t ttl,
               std::uint16_t ip_id) {
  Ipv4Header ip{};
  ip.version = 4;
  ip.ihl = 5;
  ip.total_len = static_cast<std::uint16_t>(20 + l4_len);
  ip.id = ip_id;
  ip.ttl = ttl;
  ip.protocol = protocol;
  ip.src_ip = tuple.src_ip;
  ip.dst_ip = tuple.dst_ip;
  write_ipv4(out, ip);
  const std::uint16_t csum = internet_checksum(out.first(20));
  out[10] = static_cast<std::uint8_t>(csum >> 8);
  out[11] = static_cast<std::uint8_t>(csum & 0xff);
}

}  // namespace

std::vector<std::uint8_t> build_tcp_frame(const TcpSegmentSpec& spec) {
  const std::size_t l4_len = 20 + spec.payload.size();
  std::vector<std::uint8_t> frame(kEthHeaderLen + 20 + l4_len);
  auto out = std::span<std::uint8_t>(frame);

  fill_eth(out);
  fill_ipv4(out.subspan(kEthHeaderLen), spec.tuple, kProtoTcp, l4_len,
            spec.ttl, spec.ip_id);

  TcpHeader tcp{};
  tcp.src_port = spec.tuple.src_port;
  tcp.dst_port = spec.tuple.dst_port;
  tcp.seq = spec.seq;
  tcp.ack = spec.ack;
  tcp.data_off = 5;
  tcp.flags = spec.flags;
  tcp.window = spec.window;
  auto l4 = out.subspan(kEthHeaderLen + 20);
  write_tcp(l4, tcp);
  if (!spec.payload.empty()) {
    std::memcpy(l4.data() + 20, spec.payload.data(), spec.payload.size());
  }
  const std::uint16_t csum = transport_checksum(
      spec.tuple.src_ip, spec.tuple.dst_ip, kProtoTcp, l4.first(l4_len));
  l4[16] = static_cast<std::uint8_t>(csum >> 8);
  l4[17] = static_cast<std::uint8_t>(csum & 0xff);
  return frame;
}

std::vector<std::uint8_t> build_udp_frame(const FiveTuple& tuple,
                                          std::span<const std::uint8_t> payload,
                                          std::uint8_t ttl) {
  const std::size_t l4_len = 8 + payload.size();
  std::vector<std::uint8_t> frame(kEthHeaderLen + 20 + l4_len);
  auto out = std::span<std::uint8_t>(frame);

  fill_eth(out);
  fill_ipv4(out.subspan(kEthHeaderLen), tuple, kProtoUdp, l4_len, ttl, 0);

  UdpHeader udp{};
  udp.src_port = tuple.src_port;
  udp.dst_port = tuple.dst_port;
  udp.length = static_cast<std::uint16_t>(l4_len);
  auto l4 = out.subspan(kEthHeaderLen + 20);
  write_udp(l4, udp);
  if (!payload.empty()) {
    std::memcpy(l4.data() + 8, payload.data(), payload.size());
  }
  const std::uint16_t csum = transport_checksum(tuple.src_ip, tuple.dst_ip,
                                                kProtoUdp, l4.first(l4_len));
  l4[6] = static_cast<std::uint8_t>(csum >> 8);
  l4[7] = static_cast<std::uint8_t>(csum & 0xff);
  return frame;
}

Packet make_tcp_packet(const TcpSegmentSpec& spec, Timestamp ts) {
  auto frame = build_tcp_frame(spec);
  return Packet::from_bytes(frame, ts);
}

Packet make_udp_packet(const FiveTuple& tuple,
                       std::span<const std::uint8_t> payload, Timestamp ts) {
  auto frame = build_udp_frame(tuple, payload);
  return Packet::from_bytes(frame, ts);
}

bool verify_checksums(std::span<const std::uint8_t> frame) {
  const auto eth = parse_eth(frame);
  if (!eth || eth->ether_type != kEtherTypeIpv4) return false;
  const auto ip_bytes = frame.subspan(kEthHeaderLen);
  const auto ip = parse_ipv4(ip_bytes);
  if (!ip) return false;
  if (internet_checksum(ip_bytes.first(ip->header_len())) != 0) return false;
  if (ip->fragment_offset_bytes() != 0 || ip->more_fragments()) {
    return true;  // transport checksum spans all fragments; skip
  }
  const std::size_t l4_len = ip->total_len - ip->header_len();
  const auto l4 = ip_bytes.subspan(ip->header_len());
  if (l4.size() < l4_len) return false;  // snapped; cannot verify
  if (ip->protocol == kProtoTcp || ip->protocol == kProtoUdp) {
    return transport_checksum(ip->src_ip, ip->dst_ip, ip->protocol,
                              l4.first(l4_len)) == 0;
  }
  return true;
}

}  // namespace scap
