// Protocol header definitions and parsing.
//
// We parse Ethernet II, IPv4, TCP, and UDP — the protocols the Scap paper's
// datapath handles. Parsing works on raw byte spans (no casts to packed
// structs; no alignment or endianness traps) and returns decoded host-order
// views.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace scap {

constexpr std::size_t kEthHeaderLen = 14;
constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;

constexpr std::uint8_t kProtoTcp = 6;
constexpr std::uint8_t kProtoUdp = 17;
constexpr std::uint8_t kProtoIcmp = 1;

/// TCP flag bits, as in the wire format's flags byte.
enum TcpFlag : std::uint8_t {
  kTcpFin = 0x01,
  kTcpSyn = 0x02,
  kTcpRst = 0x04,
  kTcpPsh = 0x08,
  kTcpAck = 0x10,
  kTcpUrg = 0x20,
};

struct EthHeader {
  std::uint8_t dst[6];
  std::uint8_t src[6];
  std::uint16_t ether_type;
};

struct Ipv4Header {
  std::uint8_t version;
  std::uint8_t ihl;          // header length in 32-bit words
  std::uint8_t dscp_ecn;
  std::uint16_t total_len;   // IP header + payload, bytes
  std::uint16_t id;
  std::uint16_t frag_off;    // flags (3 bits) + fragment offset (13 bits)
  std::uint8_t ttl;
  std::uint8_t protocol;
  std::uint16_t checksum;
  std::uint32_t src_ip;
  std::uint32_t dst_ip;

  std::size_t header_len() const { return static_cast<std::size_t>(ihl) * 4; }
  bool more_fragments() const { return (frag_off & 0x2000) != 0; }
  std::uint16_t fragment_offset_bytes() const {
    return static_cast<std::uint16_t>((frag_off & 0x1fff) * 8);
  }
};

struct TcpHeader {
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint32_t seq;
  std::uint32_t ack;
  std::uint8_t data_off;     // header length in 32-bit words
  std::uint8_t flags;
  std::uint16_t window;
  std::uint16_t checksum;
  std::uint16_t urgent;

  std::size_t header_len() const { return static_cast<std::size_t>(data_off) * 4; }
  bool has(TcpFlag f) const { return (flags & f) != 0; }
  bool syn() const { return has(kTcpSyn); }
  bool ack_flag() const { return has(kTcpAck); }
  bool fin() const { return has(kTcpFin); }
  bool rst() const { return has(kTcpRst); }
};

struct UdpHeader {
  std::uint16_t src_port;
  std::uint16_t dst_port;
  std::uint16_t length;      // UDP header + payload
  std::uint16_t checksum;
};

/// Canonical 5-tuple identifying a unidirectional flow.
struct FiveTuple {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  FiveTuple reversed() const {
    return FiveTuple{dst_ip, src_ip, dst_port, src_port, protocol};
  }

  /// Direction-independent canonical form (smaller endpoint first), used
  /// where both directions of a connection must map to the same entity.
  FiveTuple canonical() const {
    if (src_ip < dst_ip || (src_ip == dst_ip && src_port <= dst_port)) {
      return *this;
    }
    return reversed();
  }

  friend bool operator==(const FiveTuple&, const FiveTuple&) = default;
};

std::string to_string(const FiveTuple& t);

/// Format 32-bit IP as dotted quad.
std::string ip_to_string(std::uint32_t ip);

// --- Parsing --------------------------------------------------------------

/// Why a frame failed to decode. Every undecodable frame maps to exactly one
/// reason, so the kernel's per-reason counters sum to its invalid-packet
/// count — the property the malformed-input fuzz suite checks.
enum class DecodeError : std::uint8_t {
  kNone = 0,        // decoded fine
  kEthTruncated,    // frame shorter than the Ethernet header
  kNonIpv4,         // ether_type we do not handle (ARP, IPv6, ...)
  kIpTruncated,     // IPv4 header (or its options) past the captured bytes
  kIpBadVersion,    // version field != 4
  kIpBadHeaderLen,  // IHL < 5 words
  kIpBadTotalLen,   // total_len smaller than the IP header itself
  kTcpTruncated,    // TCP header (or its options) past the captured bytes
  kTcpBadDataOff,   // data offset < 5 words
  kUdpTruncated,    // UDP header past the captured bytes
  kUdpBadLength,    // UDP length field < 8 (cannot even hold the header)
  kCount,
};

constexpr std::size_t kNumDecodeErrors =
    static_cast<std::size_t>(DecodeError::kCount);

const char* to_string(DecodeError e);

// Parsers return nullopt on malformed input and, when `error` is non-null,
// report which taxonomy bucket the rejection belongs to.
std::optional<EthHeader> parse_eth(std::span<const std::uint8_t> frame,
                                   DecodeError* error = nullptr);
std::optional<Ipv4Header> parse_ipv4(std::span<const std::uint8_t> bytes,
                                     DecodeError* error = nullptr);
std::optional<TcpHeader> parse_tcp(std::span<const std::uint8_t> bytes,
                                   DecodeError* error = nullptr);
std::optional<UdpHeader> parse_udp(std::span<const std::uint8_t> bytes,
                                   DecodeError* error = nullptr);

// --- Serialization (used by the traffic generator) -------------------------

void write_eth(std::span<std::uint8_t> out, const EthHeader& h);
void write_ipv4(std::span<std::uint8_t> out, const Ipv4Header& h);
void write_tcp(std::span<std::uint8_t> out, const TcpHeader& h);
void write_udp(std::span<std::uint8_t> out, const UdpHeader& h);

}  // namespace scap
