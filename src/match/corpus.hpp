// Pattern corpus generation — a stand-in for the 2,120 content strings the
// paper extracts from the Snort VRT "web attack" rules.
//
// Patterns carry the marker byte '#', which the traffic generator's filler
// alphabet never produces, so every automaton match in a synthetic trace is
// a planted one and ground-truth match counts are exact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hpp"

namespace scap::match {

struct CorpusConfig {
  std::size_t pattern_count = 2120;  // the paper's VRT extraction
  std::size_t min_len = 6;
  std::size_t max_len = 24;
  std::uint64_t seed = 0xc0125;
};

/// Deterministic pseudo-attack patterns, e.g. "#ATK-x7f2kq9".
std::vector<std::string> make_corpus(const CorpusConfig& config = {});

/// The byte that appears in every pattern and never in generated filler.
constexpr char kPatternMarker = '#';

}  // namespace scap::match
