#include "match/aho_corasick.hpp"

#include <deque>
#include <map>

namespace scap::match {

void AhoCorasick::build(const std::vector<std::string>& patterns) {
  // Phase 1: byte trie with sparse children.
  struct TrieNode {
    std::map<std::uint8_t, std::uint32_t> children;
    std::uint32_t fail = 0;
    std::uint32_t out_head = kNoOutput;
  };
  std::vector<TrieNode> trie(1);
  pattern_lengths_.clear();
  out_links_.clear();

  for (const std::string& pat : patterns) {
    if (pat.empty()) continue;
    std::uint32_t node = 0;
    for (char ch : pat) {
      const auto byte = static_cast<std::uint8_t>(ch);
      auto it = trie[node].children.find(byte);
      if (it == trie[node].children.end()) {
        trie.push_back(TrieNode{});
        const auto next = static_cast<std::uint32_t>(trie.size() - 1);
        trie[node].children.emplace(byte, next);
        node = next;
      } else {
        node = it->second;
      }
    }
    const auto pattern_idx = static_cast<std::uint32_t>(pattern_lengths_.size());
    pattern_lengths_.push_back(static_cast<std::uint32_t>(pat.size()));
    out_links_.push_back({pattern_idx, trie[node].out_head});
    trie[node].out_head = static_cast<std::uint32_t>(out_links_.size() - 1);
  }

  // Phase 2: BFS failure links; merge output lists along failures.
  std::deque<std::uint32_t> queue;
  for (const auto& [byte, child] : trie[0].children) {
    trie[child].fail = 0;
    queue.push_back(child);
  }
  while (!queue.empty()) {
    const std::uint32_t node = queue.front();
    queue.pop_front();
    for (const auto& [byte, child] : trie[node].children) {
      // Follow failures until a node with this byte (dense table not yet
      // built, so walk the sparse trie).
      std::uint32_t f = trie[node].fail;
      while (f != 0 && !trie[f].children.contains(byte)) f = trie[f].fail;
      auto it = trie[f].children.find(byte);
      trie[child].fail = (it != trie[f].children.end() && it->second != child)
                             ? it->second
                             : 0;
      // Append the failure node's outputs to this node's chain.
      if (trie[trie[child].fail].out_head != kNoOutput) {
        if (trie[child].out_head == kNoOutput) {
          trie[child].out_head = trie[trie[child].fail].out_head;
        } else {
          // Walk to the tail and splice (chains are short in practice).
          std::uint32_t tail = trie[child].out_head;
          while (out_links_[tail].next != kNoOutput &&
                 out_links_[tail].next != trie[trie[child].fail].out_head) {
            tail = out_links_[tail].next;
          }
          if (out_links_[tail].next == kNoOutput) {
            out_links_[tail].next = trie[trie[child].fail].out_head;
          }
        }
      }
      queue.push_back(child);
    }
  }

  // Phase 3: dense goto table with failure transitions folded in.
  nodes_ = static_cast<std::uint32_t>(trie.size());
  goto_.assign(static_cast<std::size_t>(nodes_) * 256, 0);
  out_heads_.assign(nodes_, kNoOutput);
  for (std::uint32_t n = 0; n < nodes_; ++n) out_heads_[n] = trie[n].out_head;

  // Root transitions.
  for (const auto& [byte, child] : trie[0].children) {
    goto_[byte] = child;
  }
  // BFS again to fold failures into the dense table.
  std::deque<std::uint32_t> bfs;
  for (const auto& [byte, child] : trie[0].children) bfs.push_back(child);
  while (!bfs.empty()) {
    const std::uint32_t node = bfs.front();
    bfs.pop_front();
    for (int b = 0; b < 256; ++b) {
      const auto byte = static_cast<std::uint8_t>(b);
      auto it = trie[node].children.find(byte);
      if (it != trie[node].children.end()) {
        goto_[static_cast<std::size_t>(node) * 256 + b] = it->second;
      } else {
        goto_[static_cast<std::size_t>(node) * 256 + b] =
            goto_[static_cast<std::size_t>(trie[node].fail) * 256 + b];
      }
    }
    for (const auto& [byte, child] : trie[node].children) bfs.push_back(child);
  }
}

std::uint64_t AhoCorasick::scan_stream(std::uint32_t& state,
                                       std::span<const std::uint8_t> data,
                                       MatchFn on_match) const {
  if (nodes_ == 0) return 0;
  std::uint64_t matches = 0;
  std::uint32_t s = state;
  for (std::size_t i = 0; i < data.size(); ++i) {
    s = goto_[static_cast<std::size_t>(s) * 256 + data[i]];
    std::uint32_t link = out_heads_[s];
    while (link != kNoOutput) {
      ++matches;
      if (on_match) on_match(out_links_[link].pattern, i + 1);
      link = out_links_[link].next;
    }
  }
  state = s;
  return matches;
}

std::uint64_t AhoCorasick::scan(std::span<const std::uint8_t> data,
                                MatchFn on_match) const {
  std::uint32_t state = root_state();
  return scan_stream(state, data, on_match);
}

}  // namespace scap::match
