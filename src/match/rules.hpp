// Snort-style rule parsing (the subset needed to extract content patterns
// the way the paper does with the VRT "web attack" rule set, §6.5).
//
// Supported grammar (one rule per line; '#' comments):
//
//   <action> <proto> <src> <sport> -> <dst> <dport> (option; option; ...)
//
//   action : alert | log | pass
//   proto  : tcp | udp | ip
//   src/dst: any | IPv4 | IPv4/prefix | $VARIABLE (treated as any)
//   ports  : any | N | N:M | $VARIABLE
//   options: msg:"text"; content:"bytes"; sid:N; rev:N; nocase;
//            (unknown options are preserved but ignored)
//
// content strings support Snort's |AA BB| hex escapes. Each rule may carry
// several content options; match_patterns() flattens a rule set into the
// pattern list fed to the Aho-Corasick automaton, with a map back to rule
// sids so a match can be attributed to its rule.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "packet/headers.hpp"

namespace scap::match {

struct RuleContent {
  std::string bytes;   // decoded (hex escapes resolved)
  bool nocase = false;
};

struct Rule {
  std::string action;
  std::uint8_t protocol = 0;      // 0 = any IP
  std::uint32_t src_ip = 0;       // with src_mask; 0/0 = any
  std::uint32_t src_mask = 0;
  std::uint32_t dst_ip = 0;
  std::uint32_t dst_mask = 0;
  std::uint16_t sport_lo = 0, sport_hi = 65535;
  std::uint16_t dport_lo = 0, dport_hi = 65535;
  std::string msg;
  std::uint32_t sid = 0;
  std::uint32_t rev = 0;
  std::vector<RuleContent> contents;

  /// Does this rule's header match a flow tuple?
  bool matches_tuple(const FiveTuple& tuple) const;
};

struct RuleParseError {
  std::size_t line = 0;
  std::string message;
};

struct RuleSet {
  std::vector<Rule> rules;
  std::vector<RuleParseError> errors;

  /// All content patterns, for automaton construction.
  std::vector<std::string> patterns() const;
  /// patterns()[i] belongs to rules[pattern_owner()[i]].
  std::vector<std::size_t> pattern_owner() const;
};

/// Parse a rule file's contents (not a path). Bad lines are recorded in
/// `errors` and skipped; good lines still load.
RuleSet parse_rules(const std::string& text);

/// Render a rule back to (canonical) text.
std::string to_string(const Rule& rule);

}  // namespace scap::match
