#include "match/corpus.hpp"

#include <unordered_set>

namespace scap::match {

std::vector<std::string> make_corpus(const CorpusConfig& config) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyz0123456789";
  Rng rng(config.seed);
  std::vector<std::string> patterns;
  std::unordered_set<std::string> seen;
  patterns.reserve(config.pattern_count);
  while (patterns.size() < config.pattern_count) {
    const std::size_t len = static_cast<std::size_t>(
        rng.range(static_cast<std::int64_t>(config.min_len),
                  static_cast<std::int64_t>(config.max_len)));
    std::string pat;
    pat.reserve(len + 5);
    pat += kPatternMarker;
    pat += "ATK-";
    for (std::size_t i = pat.size(); i < len + 5; ++i) {
      pat += kAlphabet[rng.bounded(sizeof(kAlphabet) - 1)];
    }
    if (seen.insert(pat).second) patterns.push_back(std::move(pat));
  }
  return patterns;
}

}  // namespace scap::match
