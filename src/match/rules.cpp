#include "match/rules.hpp"

#include <cctype>
#include <sstream>

namespace scap::match {
namespace {

bool parse_ip_spec(const std::string& spec, std::uint32_t* ip,
                   std::uint32_t* mask) {
  if (spec == "any" || (!spec.empty() && spec[0] == '$')) {
    *ip = 0;
    *mask = 0;
    return true;
  }
  std::uint32_t parts[4] = {0, 0, 0, 0};
  int prefix = 32;
  int part = 0;
  std::uint32_t cur = 0;
  bool have_digit = false;
  std::size_t i = 0;
  for (; i < spec.size(); ++i) {
    const char ch = spec[i];
    if (ch == '.') {
      if (!have_digit || part >= 3) return false;
      parts[part++] = cur;
      cur = 0;
      have_digit = false;
    } else if (ch == '/') {
      break;
    } else if (std::isdigit(static_cast<unsigned char>(ch))) {
      cur = cur * 10 + static_cast<std::uint32_t>(ch - '0');
      if (cur > 255) return false;
      have_digit = true;
    } else {
      return false;
    }
  }
  if (!have_digit || part != 3) return false;
  parts[3] = cur;
  if (i < spec.size() && spec[i] == '/') {
    prefix = 0;
    for (++i; i < spec.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(spec[i]))) return false;
      prefix = prefix * 10 + (spec[i] - '0');
    }
    if (prefix > 32) return false;
  }
  *ip = (parts[0] << 24) | (parts[1] << 16) | (parts[2] << 8) | parts[3];
  *mask = prefix == 0 ? 0 : (0xffffffffu << (32 - prefix)) & 0xffffffffu;
  return true;
}

bool parse_port_spec(const std::string& spec, std::uint16_t* lo,
                     std::uint16_t* hi) {
  if (spec == "any" || (!spec.empty() && spec[0] == '$')) {
    *lo = 0;
    *hi = 65535;
    return true;
  }
  const std::size_t colon = spec.find(':');
  auto parse_num = [](const std::string& s, std::uint16_t dflt,
                      std::uint16_t* out) {
    if (s.empty()) {
      *out = dflt;
      return true;
    }
    std::uint32_t v = 0;
    for (char ch : s) {
      if (!std::isdigit(static_cast<unsigned char>(ch))) return false;
      v = v * 10 + static_cast<std::uint32_t>(ch - '0');
      if (v > 65535) return false;
    }
    *out = static_cast<std::uint16_t>(v);
    return true;
  };
  if (colon == std::string::npos) {
    if (!parse_num(spec, 0, lo)) return false;
    *hi = *lo;
    return true;
  }
  return parse_num(spec.substr(0, colon), 0, lo) &&
         parse_num(spec.substr(colon + 1), 65535, hi) && *lo <= *hi;
}

/// Decode a Snort content string: |41 42| hex blocks inside text.
std::optional<std::string> decode_content(const std::string& raw) {
  std::string out;
  bool in_hex = false;
  int nibble = -1;
  for (char ch : raw) {
    if (ch == '|') {
      if (in_hex && nibble != -1) return std::nullopt;  // odd hex digits
      in_hex = !in_hex;
      continue;
    }
    if (!in_hex) {
      out += ch;
      continue;
    }
    if (ch == ' ') continue;
    int v;
    if (ch >= '0' && ch <= '9') {
      v = ch - '0';
    } else if (ch >= 'a' && ch <= 'f') {
      v = ch - 'a' + 10;
    } else if (ch >= 'A' && ch <= 'F') {
      v = ch - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (nibble < 0) {
      nibble = v;
    } else {
      out += static_cast<char>((nibble << 4) | v);
      nibble = -1;
    }
  }
  if (in_hex) return std::nullopt;  // unterminated hex block
  return out;
}

/// Split the option block "key:value; key; ..." respecting quotes.
std::vector<std::string> split_options(const std::string& block) {
  std::vector<std::string> out;
  std::string cur;
  bool quoted = false;
  for (char ch : block) {
    if (ch == '"') quoted = !quoted;
    if (ch == ';' && !quoted) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string strip(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<std::string> quoted_value(const std::string& s) {
  const std::size_t open = s.find('"');
  const std::size_t close = s.rfind('"');
  if (open == std::string::npos || close <= open) return std::nullopt;
  return s.substr(open + 1, close - open - 1);
}

}  // namespace

bool Rule::matches_tuple(const FiveTuple& tuple) const {
  if (protocol != 0 && tuple.protocol != protocol) return false;
  if ((tuple.src_ip & src_mask) != (src_ip & src_mask)) return false;
  if ((tuple.dst_ip & dst_mask) != (dst_ip & dst_mask)) return false;
  if (tuple.src_port < sport_lo || tuple.src_port > sport_hi) return false;
  if (tuple.dst_port < dport_lo || tuple.dst_port > dport_hi) return false;
  return true;
}

RuleSet parse_rules(const std::string& text) {
  RuleSet set;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string body = strip(line);
    if (body.empty() || body[0] == '#') continue;

    auto fail = [&](const std::string& why) {
      set.errors.push_back({lineno, why});
    };

    const std::size_t paren = body.find('(');
    if (paren == std::string::npos || body.back() != ')') {
      fail("missing option block");
      continue;
    }
    std::istringstream head(body.substr(0, paren));
    Rule rule;
    std::string proto, src, sport, arrow, dst, dport;
    if (!(head >> rule.action >> proto >> src >> sport >> arrow >> dst >>
          dport)) {
      fail("malformed rule header");
      continue;
    }
    if (rule.action != "alert" && rule.action != "log" &&
        rule.action != "pass") {
      fail("unknown action: " + rule.action);
      continue;
    }
    if (arrow != "->") {
      fail("only '->' rules are supported");
      continue;
    }
    if (proto == "tcp") {
      rule.protocol = kProtoTcp;
    } else if (proto == "udp") {
      rule.protocol = kProtoUdp;
    } else if (proto == "ip") {
      rule.protocol = 0;
    } else {
      fail("unknown protocol: " + proto);
      continue;
    }
    if (!parse_ip_spec(src, &rule.src_ip, &rule.src_mask) ||
        !parse_ip_spec(dst, &rule.dst_ip, &rule.dst_mask)) {
      fail("bad address spec");
      continue;
    }
    if (!parse_port_spec(sport, &rule.sport_lo, &rule.sport_hi) ||
        !parse_port_spec(dport, &rule.dport_lo, &rule.dport_hi)) {
      fail("bad port spec");
      continue;
    }

    const std::string opts =
        body.substr(paren + 1, body.size() - paren - 2);
    bool ok = true;
    for (const std::string& raw_opt : split_options(opts)) {
      const std::string opt = strip(raw_opt);
      if (opt.empty()) continue;
      const std::size_t colon = opt.find(':');
      const std::string key =
          strip(colon == std::string::npos ? opt : opt.substr(0, colon));
      const std::string val =
          colon == std::string::npos ? "" : strip(opt.substr(colon + 1));
      if (key == "msg") {
        if (auto q = quoted_value(val)) rule.msg = *q;
      } else if (key == "content") {
        auto q = quoted_value(val);
        if (!q) {
          fail("content needs a quoted value");
          ok = false;
          break;
        }
        auto decoded = decode_content(*q);
        if (!decoded || decoded->empty()) {
          fail("bad content encoding");
          ok = false;
          break;
        }
        rule.contents.push_back({std::move(*decoded), false});
      } else if (key == "nocase") {
        if (!rule.contents.empty()) rule.contents.back().nocase = true;
      } else if (key == "sid") {
        rule.sid = static_cast<std::uint32_t>(std::strtoul(val.c_str(),
                                                           nullptr, 10));
      } else if (key == "rev") {
        rule.rev = static_cast<std::uint32_t>(std::strtoul(val.c_str(),
                                                           nullptr, 10));
      }
      // Unknown options ignored (Snort rules carry many).
    }
    if (ok) set.rules.push_back(std::move(rule));
  }
  return set;
}

std::vector<std::string> RuleSet::patterns() const {
  std::vector<std::string> out;
  for (const auto& rule : rules) {
    for (const auto& content : rule.contents) out.push_back(content.bytes);
  }
  return out;
}

std::vector<std::size_t> RuleSet::pattern_owner() const {
  std::vector<std::size_t> out;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    for (std::size_t c = 0; c < rules[r].contents.size(); ++c) {
      out.push_back(r);
    }
  }
  return out;
}

std::string to_string(const Rule& rule) {
  std::ostringstream out;
  out << rule.action << " "
      << (rule.protocol == kProtoTcp   ? "tcp"
          : rule.protocol == kProtoUdp ? "udp"
                                       : "ip")
      << " "
      << (rule.src_mask == 0 ? std::string("any") : ip_to_string(rule.src_ip))
      << " "
      << (rule.sport_lo == 0 && rule.sport_hi == 65535
              ? std::string("any")
              : std::to_string(rule.sport_lo))
      << " -> "
      << (rule.dst_mask == 0 ? std::string("any") : ip_to_string(rule.dst_ip))
      << " "
      << (rule.dport_lo == 0 && rule.dport_hi == 65535
              ? std::string("any")
              : std::to_string(rule.dport_lo))
      << " (msg:\"" << rule.msg << "\"; sid:" << rule.sid << ";)";
  return out.str();
}

}  // namespace scap::match
