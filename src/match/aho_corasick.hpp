// Aho-Corasick multi-pattern matching (paper §6.5 uses it for the NIDS-style
// workload with 2,120 Snort web-attack content strings).
//
// Dense goto tables per node (256-wide) built over a byte trie with BFS
// failure links, giving O(1) per scanned byte. Supports both whole-buffer
// scans and streaming scans that carry state across chunk boundaries (what
// the paper's `overlap` chunk option otherwise compensates for).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "base/function_ref.hpp"

namespace scap::match {

class AhoCorasick {
 public:
  /// Called on each match: (pattern index, end offset in the scanned data).
  /// Non-owning: the callable only needs to outlive the scan call.
  using MatchFn = FunctionRef<void(std::size_t, std::size_t)>;

  AhoCorasick() = default;
  explicit AhoCorasick(const std::vector<std::string>& patterns) {
    build(patterns);
  }

  /// (Re)build the automaton. Empty patterns are ignored.
  void build(const std::vector<std::string>& patterns);

  /// Scan a buffer from the root state; returns total matches.
  std::uint64_t scan(std::span<const std::uint8_t> data,
                     MatchFn on_match = nullptr) const;

  /// Streaming scan: `state` carries the automaton position across calls
  /// (initialize to root_state()). Returns matches in this piece.
  std::uint64_t scan_stream(std::uint32_t& state,
                            std::span<const std::uint8_t> data,
                            MatchFn on_match = nullptr) const;

  static constexpr std::uint32_t root_state() { return 0; }
  std::size_t pattern_count() const { return pattern_lengths_.size(); }
  std::size_t state_count() const { return nodes_; }

 private:
  std::uint32_t nodes_ = 0;
  // goto_[state * 256 + byte] = next state (failure links precomputed in).
  std::vector<std::uint32_t> goto_;
  // out_heads_[state] = index into out_lists_ (or kNoOutput).
  std::vector<std::uint32_t> out_heads_;
  // Flattened output lists: (pattern index, next index) chains.
  struct OutLink {
    std::uint32_t pattern;
    std::uint32_t next;
  };
  std::vector<OutLink> out_links_;
  std::vector<std::uint32_t> pattern_lengths_;

  static constexpr std::uint32_t kNoOutput = 0xffffffffu;
};

}  // namespace scap::match
