// IPv4 defragmentation (paper §2.3: strict-mode reassembly protects
// against "evasion attempts based on IP/TCP fragmentation" — which requires
// reassembling IP fragments before TCP segments).
//
// Fragments are keyed by (src, dst, protocol, IP id) and their payloads
// merged through the same SegmentStore used for TCP out-of-order data
// (fragment-overlap evasion resolves by the same target-based policy).
// A datagram completes when the final fragment (MF=0) has arrived and the
// byte range [0, total) is contiguous; incomplete datagrams expire after a
// timeout, and a memory cap bounds adversarial fragment floods.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/clock.hpp"
#include "base/hash.hpp"
#include "base/hotpath.hpp"
#include "kernel/segment_store.hpp"
#include "packet/packet.hpp"

namespace scap::kernel {

struct DefragStats {
  std::uint64_t fragments_seen = 0;
  std::uint64_t datagrams_completed = 0;
  std::uint64_t datagrams_expired = 0;
  std::uint64_t fragments_dropped_overload = 0;
  std::uint64_t fragments_dropped_alloc = 0;  // buffer allocation failed
  std::uint64_t overlap_conflicts = 0;
};

class IpDefragmenter {
 public:
  struct Config {
    Duration timeout = Duration::from_sec(30);
    std::uint64_t max_buffered_bytes = 4 * 1024 * 1024;
    std::uint32_t max_datagram_bytes = 65535;
    OverlapPolicy policy = OverlapPolicy::kBsd;
  };

  IpDefragmenter();  // default Config
  explicit IpDefragmenter(Config config) : config_(config) {}

  /// Feed one captured frame. For a non-fragment it is returned unchanged.
  /// For a fragment: nullopt until the datagram completes, then a packet
  /// carrying the fully reassembled IP payload (rebuilt as an unfragmented
  /// frame with the original headers).
  SCAP_HOT std::optional<Packet> feed(const Packet& pkt, Timestamp now);

  /// Expire incomplete datagrams older than the timeout.
  void expire(Timestamp now);

  const DefragStats& stats() const { return stats_; }
  std::size_t pending() const { return pending_.size(); }
  std::uint64_t buffered_bytes() const { return buffered_bytes_; }

 private:
  struct Key {
    std::uint32_t src_ip;
    std::uint32_t dst_ip;
    std::uint16_t ip_id;
    std::uint8_t protocol;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::uint64_t h = mix64(0xdef4a9ULL ^ k.src_ip);
      h = mix64(h ^ k.dst_ip);
      return mix64(h ^ (static_cast<std::uint64_t>(k.ip_id) << 8) ^
                   k.protocol);
    }
  };
  struct PendingDatagram {
    SegmentStore store;
    std::optional<std::uint32_t> total_len;  // set once MF=0 seen
    Timestamp first_seen;
    std::vector<std::uint8_t> ip_header;  // from the offset-0 fragment
  };

  std::optional<Packet> try_complete(const Key& key, PendingDatagram& dg,
                                     Timestamp ts);

  Config config_;
  DefragStats stats_;
  std::uint64_t buffered_bytes_ = 0;
  std::unordered_map<Key, PendingDatagram, KeyHash> pending_;
};

}  // namespace scap::kernel
