#include "kernel/module.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <iterator>
#include <numeric>

#include "base/assert.hpp"
#include "packet/craft.hpp"

namespace scap::kernel {

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kInvalid: return "invalid";
    case Verdict::kFragmentHeld: return "fragment_held";
    case Verdict::kFilteredBpf: return "filtered_bpf";
    case Verdict::kIgnored: return "ignored";
    case Verdict::kControl: return "control";
    case Verdict::kStored: return "stored";
    case Verdict::kCutoffDiscard: return "cutoff_discard";
    case Verdict::kDupDiscard: return "dup_discard";
    case Verdict::kPplDrop: return "ppl_drop";
    case Verdict::kNoMemDrop: return "nomem_drop";
    case Verdict::kNoRecordDrop: return "norec_drop";
    case Verdict::kChecksumDrop: return "checksum_drop";
    case Verdict::kBuffered: return "buffered";
  }
  return "unknown";
}

namespace {

std::string violation(const char* law, std::uint64_t lhs, std::uint64_t rhs) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "conservation violated: %s (%" PRIu64 " != %" PRIu64 ")", law,
                lhs, rhs);
  return buf;
}

}  // namespace

std::string KernelStats::check_conservation() const {
  // Law 1: every packet that entered landed in exactly one verdict bucket.
  const std::uint64_t verdict_sum =
      std::accumulate(verdicts, verdicts + kNumVerdicts, std::uint64_t{0});
  if (verdict_sum != pkts_seen) {
    return violation("pkts_seen == sum(verdicts)", pkts_seen, verdict_sum);
  }

  // Law 2: each delivery/drop scalar equals its verdict bucket — a counter
  // incremented without its verdict (or a verdict set without its counter)
  // breaks the pairing.
  struct Pair {
    Verdict v;
    std::uint64_t counter;
    const char* law;
  };
  const Pair pairs[] = {
      {Verdict::kInvalid, pkts_invalid, "verdicts[invalid] == pkts_invalid"},
      {Verdict::kFragmentHeld, pkts_frag_held,
       "verdicts[fragment_held] == pkts_frag_held"},
      {Verdict::kFilteredBpf, pkts_filtered,
       "verdicts[filtered_bpf] == pkts_filtered"},
      {Verdict::kIgnored, pkts_ignored, "verdicts[ignored] == pkts_ignored"},
      {Verdict::kControl, pkts_control, "verdicts[control] == pkts_control"},
      {Verdict::kStored, pkts_stored, "verdicts[stored] == pkts_stored"},
      {Verdict::kCutoffDiscard, pkts_cutoff,
       "verdicts[cutoff_discard] == pkts_cutoff"},
      {Verdict::kDupDiscard, pkts_dup, "verdicts[dup_discard] == pkts_dup"},
      {Verdict::kPplDrop, pkts_ppl_dropped,
       "verdicts[ppl_drop] == pkts_ppl_dropped"},
      {Verdict::kNoMemDrop, pkts_nomem_dropped,
       "verdicts[nomem_drop] == pkts_nomem_dropped"},
      {Verdict::kNoRecordDrop, pkts_norec_dropped,
       "verdicts[norec_drop] == pkts_norec_dropped"},
      {Verdict::kChecksumDrop, pkts_bad_checksum,
       "verdicts[checksum_drop] == pkts_bad_checksum"},
      {Verdict::kBuffered, pkts_buffered,
       "verdicts[buffered] == pkts_buffered"},
  };
  static_assert(std::size(pairs) == kNumVerdicts,
                "every Verdict needs a conservation pairing");
  for (const Pair& p : pairs) {
    const std::uint64_t bucket = verdicts[static_cast<std::size_t>(p.v)];
    if (bucket != p.counter) return violation(p.law, bucket, p.counter);
  }

  // Law 3: the parse-error taxonomy accounts for every invalid packet.
  const std::uint64_t taxonomy_sum = std::accumulate(
      parse_errors, parse_errors + kNumDecodeErrors, std::uint64_t{0});
  if (taxonomy_sum != pkts_invalid) {
    return violation("sum(parse_errors) == pkts_invalid", taxonomy_sum,
                     pkts_invalid);
  }

  // Law 4: stream lifecycle reconciles — every created stream is either
  // still live or was terminated (eviction and expiry both terminate).
  if (streams_created != streams_terminated + streams_active) {
    return violation("streams_created == streams_terminated + streams_active",
                     streams_created, streams_terminated + streams_active);
  }
  if (streams_evicted > streams_terminated) {
    return violation("streams_evicted <= streams_terminated", streams_evicted,
                     streams_terminated);
  }

  // Law 5: record-pool acquire/release balance — the records missing from
  // the freelist are exactly the live streams (slab records never leak).
  if (pool_capacity - pool_free != streams_active) {
    return violation("pool in-use == streams_active",
                     pool_capacity - pool_free, streams_active);
  }

  // Law 6: sub-counters stay within their parents.
  if (reasm_alloc_failures > pkts_nomem_dropped) {
    return violation("reasm_alloc_failures <= pkts_nomem_dropped",
                     reasm_alloc_failures, pkts_nomem_dropped);
  }
  if (bytes_stored > bytes_seen) {
    return violation("bytes_stored <= bytes_seen", bytes_stored, bytes_seen);
  }

  // Law 7: FDIR removals never outrun installs — every removed (or
  // expired) hardware filter was placed by a counted install, and each
  // counted install/reinstall places at most two filters (one per cutoff
  // flag combination, or both rebalance directions). Queue-mode apply-time
  // counting preserves this: a removal is only counted when a physically
  // present filter comes out of the table.
  if (fdir_removals > 2 * (fdir_installs + fdir_reinstalls)) {
    return violation("fdir_removals <= 2*(fdir_installs + fdir_reinstalls)",
                     fdir_removals, 2 * (fdir_installs + fdir_reinstalls));
  }

  // Law 8: stall sheds are a subset of ring sheds (ring_shed_* counts every
  // packet shed at admission, whatever the reason).
  if (ring_stall_shed_pkts > ring_shed_pkts) {
    return violation("ring_stall_shed_pkts <= ring_shed_pkts",
                     ring_stall_shed_pkts, ring_shed_pkts);
  }
  if (ring_stall_shed_bytes > ring_shed_bytes) {
    return violation("ring_stall_shed_bytes <= ring_shed_bytes",
                     ring_stall_shed_bytes, ring_shed_bytes);
  }
  return {};
}

std::string ScapKernel::check_invariants() const {
  // stats() mirrors pool occupancy, live-stream count and controller state
  // into the snapshot the conservation checker needs.
  std::string report = stats().check_conservation();
  if (!report.empty()) return report;

  // PPL priority monotonicity (paper §2.2): the watermark ladder must be
  // non-decreasing in priority and anchored in [base_threshold, 1]. With a
  // monotone ladder, admit() can never drop a higher-priority packet while
  // admitting a lower-priority one at the same occupancy and offset.
  const int levels = ppl_.config().priority_levels;
  double prev = ppl_.config().base_threshold;
  for (int p = 0; p < levels; ++p) {
    const double w = ppl_.watermark(p);
    if (w < prev) {
      return "ppl watermark ladder not monotone at priority " +
             std::to_string(p);
    }
    prev = w;
  }
  if (prev > 1.0 + 1e-9) return "ppl watermark ladder exceeds memory_size";

  // The adaptive controller may only tighten below the static start cutoff,
  // never below its floor (PPL drops stay priority-monotone because the
  // ladder itself is untouched; DESIGN.md §8).
  const PplControllerState& ctl = ppl_.controller();
  if (ctl.overload && ctl.effective_cutoff < ppl_.config().min_cutoff) {
    return "ppl adaptive cutoff fell below min_cutoff";
  }

#if defined(SCAP_ENABLE_TRACE)
  // Trace conservation (DESIGN.md §10): the tracer's per-type counts are
  // cumulative at record time (independent of ring wrap), so they must
  // track their kernel counters exactly — an emit site missing next to a
  // counter increment (or vice versa) shows up here. Requires the tracer
  // to have been attached before the first packet (set_tracer asserts it).
  if (tracer_ != nullptr) {
    struct TraceLaw {
      trace::TraceEventType type;
      std::uint64_t counter;
      const char* law;
    };
    const TraceLaw laws[] = {
        {trace::TraceEventType::kPacketVerdict, stats_.pkts_seen,
         "trace(packet_verdict) == pkts_seen"},
        {trace::TraceEventType::kStreamCreated, stats_.streams_created,
         "trace(stream_created) == streams_created"},
        {trace::TraceEventType::kStreamTerminated, stats_.streams_terminated,
         "trace(stream_terminated) == streams_terminated"},
        {trace::TraceEventType::kChunkDelivered, stats_.chunks_delivered,
         "trace(chunk_delivered) == chunks_delivered"},
    };
    for (const TraceLaw& l : laws) {
      const std::uint64_t recorded = tracer_->recorded_of(l.type);
      if (recorded != l.counter) return violation(l.law, recorded, l.counter);
    }
    const trace::MetricsRegistry& m = tracer_->metrics();
    if (m.chunk_latency_us.total() != stats_.chunks_delivered) {
      return violation("hist(chunk_latency_us) == chunks_delivered",
                       m.chunk_latency_us.total(), stats_.chunks_delivered);
    }
    if (m.stream_size_bytes.total() != stats_.streams_terminated) {
      return violation("hist(stream_size_bytes) == streams_terminated",
                       m.stream_size_bytes.total(),
                       stats_.streams_terminated);
    }
  }
#endif
  return {};
}

ScapKernel::ScapKernel(KernelConfig config, nic::Nic* nic)
    : config_(std::move(config)),
      nic_(nic),
      allocator_(config_.memory_size),
      table_(config_.max_streams, config_.flow_hash_seed),
      ppl_(config_.ppl),
      queues_(static_cast<std::size_t>(std::max(config_.num_cores, 1))),
      core_streams_(queues_.size(), 0),
      defrag_(IpDefragmenter::Config{.policy = config_.defaults.policy}) {}

void ScapKernel::maybe_rebalance(StreamRecord& rec, Timestamp now) {
  if (!config_.dynamic_load_balance || nic_ == nullptr) return;
  if (core_streams_.size() < 2) return;
  std::int64_t total = 0;
  for (std::int64_t n : core_streams_) total += n;
  if (total < static_cast<std::int64_t>(config_.imbalance_min_streams)) return;
  const auto core = static_cast<std::size_t>(rec.core);
  if (static_cast<double>(core_streams_[core]) <=
      config_.imbalance_threshold * static_cast<double>(total)) {
    return;
  }
  // Steer to the least-loaded core with a pair of FDIR filters (both
  // directions of the connection).
  std::size_t target = 0;
  for (std::size_t i = 1; i < core_streams_.size(); ++i) {
    if (core_streams_[i] < core_streams_[target]) target = i;
  }
  if (target == core) return;
  std::uint64_t installed_ids[2] = {0, 0};
  int installed = 0;
  for (const FiveTuple& tuple : {rec.tuple, rec.tuple.reversed()}) {
    nic::FdirFilter f;
    f.tuple = tuple;
    f.action = nic::FdirAction::kToQueue;
    f.queue = static_cast<int>(target);
    f.expires = now + rec.params.inactivity_timeout;
    const std::uint64_t id = nic_->fdir().add(f);
    if (id == 0) {
      // Steering filter rejected: abort the rebalance and undo the filters
      // installed so far, leaving the stream on its RSS core.
      ++stats_.fdir_install_failures;
      for (int i = 0; i < installed; ++i) {
        if (nic_->fdir().remove(installed_ids[i])) ++stats_.fdir_removals;
      }
      return;
    }
    installed_ids[installed++] = id;
    ++stats_.fdir_installs;
  }
  rec.core = static_cast<int>(target);
  rec.fdir_installed = true;  // termination removes the steering filters
  if (StreamRecord* opp = table_.by_id(rec.opposite)) {
    opp->core = static_cast<int>(target);
    opp->fdir_installed = true;
  }
  ++stats_.streams_rebalanced;
}

std::uint64_t ScapKernel::app_mask_for(const FiveTuple& tuple) const {
  if (config_.app_filters.empty()) return ~0ULL;
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < config_.app_filters.size() && i < 64; ++i) {
    if (config_.app_filters[i].matches(tuple)) mask |= 1ULL << i;
  }
  return mask;
}

StreamSnapshot ScapKernel::snapshot(const StreamRecord& rec) const {
  StreamSnapshot s;
  s.id = rec.id;
  s.tuple = rec.tuple;
  s.dir = rec.dir;
  s.opposite = rec.opposite;
  s.status = rec.status;
  s.cutoff_exceeded = rec.cutoff_exceeded;
  s.error_bits = rec.error_bits;
  s.stats = rec.stats;
  s.params = rec.params;
  s.chunks_delivered = rec.chunks_delivered;
  s.processing_time = rec.processing_time;
  return s;
}

void ScapKernel::resolve_params(StreamRecord& rec) {
  rec.params = config_.defaults;
  // Cutoff resolution: class > direction > default (per-stream API calls
  // override later).
  bool class_matched = false;
  for (const auto& cls : config_.cutoff_classes) {
    if (cls.filter.matches(rec.tuple)) {
      rec.params.cutoff_bytes = cls.cutoff_bytes;
      class_matched = true;
      break;
    }
  }
  if (!class_matched) {
    const auto d = static_cast<std::size_t>(rec.dir);
    if (config_.cutoff_per_dir[d] >= 0) {
      rec.params.cutoff_bytes = config_.cutoff_per_dir[d];
    }
  }
  for (const auto& cls : config_.priority_classes) {
    if (cls.filter.matches(rec.tuple)) {
      rec.params.priority = cls.priority;
      break;
    }
  }
}

void ScapKernel::emit_created(StreamRecord& rec) {
  if (!config_.creation_events) return;
  Event ev;
  ev.type = EventType::kCreated;
  ev.stream = snapshot(rec);
  ev.app_mask = app_mask_for(rec.tuple);
  queues_[static_cast<std::size_t>(rec.core)].push(std::move(ev));
  ++stats_.events_emitted;
}

void ScapKernel::emit_data(StreamRecord& rec, Chunk&& chunk,
                           bool transfer_block) {
#if defined(SCAP_ENABLE_TRACE)
  if (tracer_ != nullptr) {
    // Delivery happens at the stream's current packet time (last_access —
    // flush timeouts and terminations deliver at maintenance time, which
    // the caller has already folded into last_access for live streams).
    // Chunk latency is first contributing segment -> delivery, in µs.
    const std::int64_t lat_ns =
        chunk.first_ts.ns() > 0 ? (rec.last_access - chunk.first_ts).ns() : 0;
    tracer_->record(trace::TraceEventType::kChunkDelivered, rec.core,
                    rec.last_access, rec.id, 0,
                    static_cast<std::uint32_t>(chunk.data.size()),
                    chunk.stream_offset);
    tracer_->metrics().chunk_latency_us.add(
        lat_ns > 0 ? static_cast<std::uint64_t>(lat_ns) / 1000 : 0);
  }
#endif
  ++stats_.chunks_delivered;
  Event ev;
  ev.type = EventType::kData;
  ev.stream = snapshot(rec);
  ev.app_mask = app_mask_for(rec.tuple);
  if (transfer_block && rec.chunk_alloc != 0) {
    ev.chunk_addr = rec.chunk_addr;
    ev.chunk_alloc = rec.chunk_alloc;
    rec.chunk_addr = 0;
    rec.chunk_alloc = 0;
  } else {
    // The chunk's bytes exist but no open block maps to them (e.g. the
    // second chunk completed by one large packet): force-account it.
    const auto size = static_cast<std::uint32_t>(chunk.data.size());
    if (size > 0) {
      ev.chunk_addr = allocator_.allocate_forced(size);
      ev.chunk_alloc = size;
    }
  }
  // A kept chunk's accounting rides along with the merged delivery.
  if (rec.kept_alloc) {
    ev.chunk_alloc += rec.kept_alloc;
    rec.kept_alloc = 0;
  }
  ev.chunk = std::move(chunk);
  rec.chunks_delivered++;
  rec.last_flush = rec.last_access;
  queues_[static_cast<std::size_t>(rec.core)].push(std::move(ev));
  ++stats_.events_emitted;
}

void ScapKernel::emit_terminated(StreamRecord& rec) {
  SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kStreamTerminated,
                   rec.core, rec.last_access, rec.id,
                   static_cast<std::uint16_t>(rec.status), 0, rec.stats.bytes);
  SCAP_TRACE_METRIC(tracer_, stream_size_bytes, rec.stats.bytes);
  Event ev;
  ev.type = EventType::kTerminated;
  ev.stream = snapshot(rec);
  ev.app_mask = app_mask_for(rec.tuple);
  queues_[static_cast<std::size_t>(rec.core)].push(std::move(ev));
  ++stats_.events_emitted;
  ++stats_.streams_terminated;
}

void ScapKernel::ensure_block(StreamRecord& rec) {
  if (rec.chunk_alloc != 0) return;
  const std::uint32_t size = rec.params.chunk_size;
  if (auto addr = allocator_.allocate(size)) {
    rec.chunk_addr = *addr;
    rec.chunk_alloc = size;
  }
}

void ScapKernel::flush_chunks(StreamRecord& rec, std::uint32_t error_bits) {
  if (!rec.reasm) return;
  auto chunks = rec.reasm->flush(error_bits);
  bool first = true;
  for (auto& c : chunks) {
    emit_data(rec, std::move(c), first);
    first = false;
  }
}

void ScapKernel::install_fdir(StreamRecord& rec, Timestamp now, bool reinstall,
                              PacketOutcome& outcome) {
  if (!config_.use_fdir || (nic_ == nullptr && fdir_queue_ == nullptr)) return;
  if (rec.tuple.protocol != kProtoTcp) return;
  if (reinstall) {
    // Doubled timeout: long-lived flows are evicted only O(log) times.
    rec.fdir_timeout = rec.fdir_timeout + rec.fdir_timeout;
    if (fdir_queue_ == nullptr) ++stats_.fdir_reinstalls;
  } else {
    rec.fdir_timeout = config_.fdir_base_timeout;
    if (fdir_queue_ == nullptr) ++stats_.fdir_installs;
  }
  bool any_installed = false;
  if (fdir_queue_ != nullptr) {
    // Sharded mode: enqueue the install for the NIC-owning producer to
    // apply between batches. No shared lock, no NIC dereference here. The
    // install is counted at apply time by KernelShards::service_fdir —
    // counting here would overstate fdir_installs whenever the hardware
    // rejects the filter (the optimistic-count skew).
    FdirCommand cmd;
    cmd.kind = FdirCommand::Kind::kInstallCutoff;
    cmd.tuple = rec.tuple;
    cmd.expires = now + rec.fdir_timeout;
    cmd.reinstall = reinstall;
    if (fdir_queue_->try_push(cmd)) {
      any_installed = true;
      ++outcome.fdir_updates;
    } else {
      // Command queue full: enforcement stays in software, like a
      // hardware-rejected filter on the direct path.
      ++stats_.fdir_install_failures;
    }
  } else {
    for (const auto& f :
         nic::make_cutoff_filters(rec.tuple, now + rec.fdir_timeout)) {
      if (nic_->fdir().add(f) == 0) {
        // Hardware rejected the filter: enforcement stays in software (the
        // kernel-level cutoff still discards), and a later packet retries.
        ++stats_.fdir_install_failures;
        continue;
      }
      any_installed = true;
      ++outcome.fdir_updates;
    }
  }
  rec.fdir_installed = any_installed;
  SCAP_TRACE_EVENT(
      tracer_, trace::TraceEventType::kFdirInstall, rec.core, now, rec.id,
      static_cast<std::uint16_t>(any_installed ? (reinstall ? 1 : 0) : 2));
}

void ScapKernel::trigger_cutoff(StreamRecord& rec, Timestamp now,
                                PacketOutcome& outcome) {
  if (rec.cutoff_exceeded) return;
  rec.cutoff_exceeded = true;
  // Final data event for whatever the stream accumulated (paper §5.4: a
  // final chunk event is created when the cutoff is reached).
  flush_chunks(rec, 0);
  // Release the open block — no more data will be written.
  if (rec.chunk_alloc) {
    allocator_.release(rec.chunk_addr, rec.chunk_alloc);
    rec.chunk_addr = 0;
    rec.chunk_alloc = 0;
  }
  install_fdir(rec, now, /*reinstall=*/false, outcome);
}

void ScapKernel::terminate(StreamRecord& rec, StreamStatus status,
                           Timestamp now, PacketOutcome* outcome) {
  rec.status = status;
  flush_chunks(rec, 0);
  if (rec.chunk_alloc) {
    allocator_.release(rec.chunk_addr, rec.chunk_alloc);
    rec.chunk_addr = 0;
    rec.chunk_alloc = 0;
  }
  if (rec.kept_alloc) {
    allocator_.release(0, rec.kept_alloc);
    rec.kept_alloc = 0;
  }
  if (rec.fdir_installed && (nic_ != nullptr || fdir_queue_ != nullptr)) {
    if (fdir_queue_ != nullptr) {
      FdirCommand cmd;
      cmd.kind = FdirCommand::Kind::kRemove;
      cmd.tuple = rec.tuple;
      cmd.also_reversed = rec.opposite == kInvalidStreamId;
      // Removals are counted at apply time (service_fdir), when filters
      // actually come out of the table — not on enqueue.
      (void)fdir_queue_->try_push(cmd);
    } else {
      stats_.fdir_removals += nic_->fdir().remove_tuple(rec.tuple);
      // Steering filters are installed for both directions; if no opposite
      // record exists to clean up the reverse one, do it here.
      if (rec.opposite == kInvalidStreamId) {
        stats_.fdir_removals += nic_->fdir().remove_tuple(rec.tuple.reversed());
      }
    }
    rec.fdir_installed = false;
    SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kFdirEvict, rec.core,
                     now, rec.id, 0);
  }
  flush_watch_.erase(rec.id);
  auto& count = core_streams_[static_cast<std::size_t>(rec.core)];
  if (count > 0) --count;
  emit_terminated(rec);
  if (outcome) outcome->terminated_stream = true;
  table_.remove(rec);
}

StreamRecord* ScapKernel::lookup_or_create(const Packet& pkt, Timestamp now,
                                           int core,
                                           PacketOutcome& outcome) {
  StreamRecord* rec = table_.find(pkt.tuple());
  SCAP_TRACE_METRIC(tracer_, flow_probe_len, table_.last_probe_len());
  if (rec != nullptr) return rec;

  // Only create streams for packets that begin or carry a flow: SYN, any
  // payload, or a UDP/other-protocol packet. FIN/RST/pure-ACKs for unknown
  // streams are ignored.
  const bool tcp = pkt.is_tcp();
  if (tcp && pkt.payload_len() == 0 && !pkt.has_flag(kTcpSyn)) return nullptr;

  rec = table_.create(pkt.tuple(), now, [&](StreamRecord& victim) {
    // Record budget exhausted: the oldest stream makes way (paper §6.4).
    terminate(victim, StreamStatus::kClosedTimeout, now, nullptr);
    ++stats_.streams_evicted;
  });
  if (rec == nullptr) {
    // Record allocation failed (fault injection): the packet is dropped
    // with its own counter, not mistaken for an uninteresting control
    // packet.
    ++stats_.pkts_norec_dropped;
    outcome.verdict = Verdict::kNoRecordDrop;
    return nullptr;
  }

  rec->core = core;
  rec->stats.first_packet = now;

  // Direction + opposite linkage (must precede parameter resolution: the
  // per-direction cutoff depends on it).
  StreamRecord* opp = table_.find(pkt.tuple().reversed());
  if (opp != nullptr) {
    rec->dir = opp->dir == Direction::kOrig ? Direction::kReply
                                            : Direction::kOrig;
    rec->opposite = opp->id;
    opp->opposite = rec->id;
    rec->core = opp->core;  // both directions on one core (symmetric RSS)
  } else {
    rec->dir = Direction::kOrig;
  }

  resolve_params(*rec);
  // Pool-recycled records arrive with their previous reassembler attached;
  // reset it in place instead of paying a heap round trip.
  if (rec->reasm) {
    rec->reasm->reset(rec->params, config_.need_pkts);
  } else {
    // scap-lint: allow(hot-alloc) one reassembler per record slot, first use only — recycled records reset in place (ROADMAP item 2: move into the record pool slab)
    rec->reasm = std::make_unique<TcpReassembler>(
        rec->params, config_.need_pkts);
  }
  // scap-lint: allow(hot-alloc) flush-watch set grows only for streams configured with flush timeouts (DESIGN.md §14 inventory)
  if (rec->params.flush_timeout > Duration(0)) flush_watch_.insert(rec->id);

  maybe_rebalance(*rec, now);
  ++core_streams_[static_cast<std::size_t>(rec->core)];
  ++stats_.streams_created;
  // Traced here, not in emit_created: creation events are configurable but
  // the trace law count(stream_created) == streams_created is not.
  SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kStreamCreated, rec->core,
                   now, rec->id, static_cast<std::uint16_t>(rec->core),
                   static_cast<std::uint32_t>(rec->params.priority));
  outcome.created_stream = true;
  emit_created(*rec);
  return rec;
}

void ScapKernel::handle_payload(StreamRecord& rec, const Packet& pkt,
                                Timestamp now, PacketOutcome& outcome) {
  std::span<const std::uint8_t> payload = pkt.payload();
  rec.stats.pkts++;
  rec.stats.bytes += pkt.wire_payload_len();

  // A pending flush deadline fires before the new bytes are appended — the
  // asynchronous timer would have delivered the partial chunk already.
  if (rec.params.flush_timeout > Duration(0) && rec.reasm &&
      now - rec.last_flush >= rec.params.flush_timeout &&
      rec.reasm->builder().has_data()) {
    flush_chunks(rec, 0);
    rec.last_flush = now;
  }

  if (rec.discard_requested || rec.cutoff_exceeded) {
    rec.stats.discarded_pkts++;
    rec.stats.discarded_bytes += pkt.wire_payload_len();
    stats_.pkts_cutoff++;
    stats_.bytes_cutoff += pkt.wire_payload_len();
    outcome.verdict = Verdict::kCutoffDiscard;
    // NIC filter timed out but the stream still lives: re-install with a
    // doubled timeout (paper §5.5).
    if (rec.cutoff_exceeded && config_.use_fdir && nic_ != nullptr &&
        !rec.fdir_installed && !rec.discard_requested) {
      install_fdir(rec, now, /*reinstall=*/true, outcome);
    }
    return;
  }

  // Stream offset of this payload (cutoff & PPL decisions).
  std::uint64_t off = 0;
  if (pkt.is_tcp()) {
    off = rec.reasm->offset_of(pkt.seq()).value_or(0);
  } else {
    off = rec.reasm->stream_offset();
  }

  // Cutoff enforcement (paper §2.1).
  const std::int64_t cutoff = rec.params.cutoff_bytes;
  if (cutoff >= 0) {
    if (off >= static_cast<std::uint64_t>(cutoff)) {
      rec.stats.discarded_pkts++;
      rec.stats.discarded_bytes += pkt.wire_payload_len();
      stats_.pkts_cutoff++;
      stats_.bytes_cutoff += pkt.wire_payload_len();
      outcome.verdict = Verdict::kCutoffDiscard;
      trigger_cutoff(rec, now, outcome);
      return;
    }
    if (off + payload.size() > static_cast<std::uint64_t>(cutoff)) {
      // Deliver only the prefix up to the cutoff.
      payload = payload.first(static_cast<std::size_t>(
          static_cast<std::uint64_t>(cutoff) - off));
    }
  }

  // Prioritized packet loss (paper §2.2).
  const PplVerdict ppl =
      ppl_.admit(allocator_.used_fraction(), rec.params.priority, off);
  if (ppl != PplVerdict::kAdmit) {
    rec.stats.dropped_pkts++;
    rec.stats.dropped_bytes += pkt.wire_payload_len();
    stats_.pkts_ppl_dropped++;
    stats_.bytes_ppl_dropped += pkt.wire_payload_len();
    outcome.verdict = Verdict::kPplDrop;
    return;
  }

  ensure_block(rec);
  if (rec.chunk_alloc == 0) {
    // Chunk buffer exhausted and PPL admitted anyway (e.g. base threshold
    // 1.0): the packet is lost here, like a full ring.
    rec.stats.dropped_pkts++;
    rec.stats.dropped_bytes += pkt.wire_payload_len();
    stats_.pkts_nomem_dropped++;
    stats_.bytes_nomem_dropped += pkt.wire_payload_len();
    outcome.verdict = Verdict::kNoMemDrop;
    return;
  }

  SegmentMeta meta;
  meta.ts = now;
  meta.seq_raw = pkt.seq();
  meta.tcp_flags = pkt.tcp_flags();
  meta.wire_payload = pkt.wire_payload_len();

  TcpReassembler::Result result =
      pkt.is_tcp() ? rec.reasm->on_data(pkt.seq(), payload, meta)
                   : rec.reasm->on_datagram(payload, meta);

  rec.error_bits |= result.errors;
  if (result.alloc_failed) {
    // Out-of-order buffering failed to allocate: the segment is dropped
    // with its own counter; the stream survives (flagged kErrBufferOverflow
    // by the reassembler).
    rec.stats.dropped_pkts++;
    rec.stats.dropped_bytes += pkt.wire_payload_len();
    stats_.reasm_alloc_failures++;
    stats_.pkts_nomem_dropped++;
    stats_.bytes_nomem_dropped += pkt.wire_payload_len();
    outcome.verdict = Verdict::kNoMemDrop;
    return;
  }
  rec.stats.captured_bytes += result.accepted_bytes;
  rec.stats.discarded_bytes += result.dup_bytes;
  if (result.accepted_bytes > 0) {
    rec.stats.captured_pkts++;
    stats_.pkts_stored++;
    stats_.bytes_stored += result.accepted_bytes;
    outcome.verdict = Verdict::kStored;
    outcome.stored_bytes = result.accepted_bytes;
  } else if (result.dup_bytes > 0) {
    rec.stats.discarded_pkts++;
    stats_.pkts_dup++;
    stats_.bytes_dup += result.dup_bytes;
    outcome.verdict = Verdict::kDupDiscard;
  } else {
    // Nothing delivered and nothing duplicated: the reassembler holds the
    // segment out of order (or the payload was empty). Counted separately
    // from control packets so the conservation law stays exact.
    stats_.pkts_buffered++;
    outcome.verdict = Verdict::kBuffered;
  }

  bool first = true;
  for (auto& chunk : result.completed) {
    emit_data(rec, std::move(chunk), first);
    first = false;
  }
  if (!result.completed.empty() && rec.reasm->builder().has_data()) {
    ensure_block(rec);
  }

  // Cutoff reached exactly with this packet's bytes.
  if (cutoff >= 0 &&
      rec.reasm->stream_offset() >= static_cast<std::uint64_t>(cutoff)) {
    trigger_cutoff(rec, now, outcome);
  }

}

PacketOutcome ScapKernel::handle_packet(const Packet& pkt, Timestamp now,
                                        int core) {
  if (now - last_maintenance_ >= config_.expiry_interval) {
    // scap-lint: allow(hot-cold-call) amortized maintenance tick: at most once per expiry_interval, not per packet
    run_maintenance(now);
  }
  const PacketOutcome out = handle_one(pkt, now, core);
  ++stats_.verdicts[static_cast<std::size_t>(out.verdict)];
  SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kPacketVerdict, core, now,
                   out.stream_id, static_cast<std::uint16_t>(out.verdict),
                   pkt.wire_len());
  return out;
}

PacketOutcome ScapKernel::handle_batch(std::span<const Packet> pkts,
                                       Timestamp now, int core,
                                       std::span<PacketOutcome> outcomes) {
  // One maintenance-timer check per batch instead of per packet.
  if (now - last_maintenance_ >= config_.expiry_interval) {
    // scap-lint: allow(hot-cold-call) amortized maintenance tick: at most once per expiry_interval, not per batch element
    run_maintenance(now);
  }
  PacketOutcome total;
  for (std::size_t i = 0; i < pkts.size(); ++i) {
    // Pull the probe window for the lookup two packets ahead into cache
    // while this packet is processed.
    if (i + 2 < pkts.size() && pkts[i + 2].valid()) {
      table_.prefetch(table_.hash_of(pkts[i + 2].tuple()));
    }
    const PacketOutcome out = handle_one(pkts[i], pkts[i].timestamp(), core);
    ++stats_.verdicts[static_cast<std::size_t>(out.verdict)];
    SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kPacketVerdict, core,
                     pkts[i].timestamp(), out.stream_id,
                     static_cast<std::uint16_t>(out.verdict),
                     pkts[i].wire_len());
    if (!outcomes.empty()) outcomes[i] = out;
    total.verdict = out.verdict;
    total.stored_bytes += out.stored_bytes;
    total.events += out.events;
    total.created_stream = total.created_stream || out.created_stream;
    total.terminated_stream = total.terminated_stream || out.terminated_stream;
    total.fdir_updates += out.fdir_updates;
  }
  return total;
}

PacketOutcome ScapKernel::handle_one(const Packet& pkt, Timestamp now,
                                     int core) {
  PacketOutcome outcome;
  ++stats_.pkts_seen;
  stats_.bytes_seen += pkt.wire_len();

  if (!pkt.valid()) {
    ++stats_.pkts_invalid;
    ++stats_.parse_errors[static_cast<std::size_t>(pkt.decode_error())];
    outcome.verdict = Verdict::kInvalid;
    return outcome;
  }
  if (config_.verify_checksums && !verify_checksums(pkt.frame())) {
    ++stats_.pkts_bad_checksum;
    outcome.verdict = Verdict::kChecksumDrop;
    return outcome;
  }
  // IPv4 defragmentation before stream processing (§2.3).
  Packet reassembled_frag;
  const Packet* effective = &pkt;
  if (config_.defragment_ip && pkt.is_ip_fragment()) {
    auto done = defrag_.feed(pkt, now);
    if (!done.has_value()) {
      ++stats_.pkts_frag_held;
      outcome.verdict = Verdict::kFragmentHeld;
      return outcome;
    }
    reassembled_frag = std::move(*done);
    effective = &reassembled_frag;
    if (!effective->valid()) {
      ++stats_.pkts_invalid;
      ++stats_.parse_errors[static_cast<std::size_t>(
          effective->decode_error())];
      outcome.verdict = Verdict::kInvalid;
      return outcome;
    }
  }
  const Packet& pkt2 = *effective;
  return handle_decoded(pkt2, now, core, outcome);
}

PacketOutcome ScapKernel::handle_decoded(const Packet& pkt, Timestamp now,
                                         int core, PacketOutcome& outcome) {
  if (!config_.filter.matches(pkt.tuple())) {
    ++stats_.pkts_filtered;
    outcome.verdict = Verdict::kFilteredBpf;
    return outcome;
  }
  // Shared capture (§5.6): keep a stream only if at least one attached
  // application wants it.
  if (!config_.app_filters.empty() && app_mask_for(pkt.tuple()) == 0) {
    ++stats_.pkts_filtered;
    outcome.verdict = Verdict::kFilteredBpf;
    return outcome;
  }

  // A nullptr keeps whatever verdict lookup_or_create set (kNoRecordDrop on
  // allocation failure, the default kIgnored for FIN/RST of unknown flows).
  StreamRecord* rec = lookup_or_create(pkt, now, core, outcome);
  if (rec == nullptr) {
    if (outcome.verdict == Verdict::kIgnored) ++stats_.pkts_ignored;
    return outcome;
  }
  outcome.stream_id = rec->id;
  table_.touch(*rec, now);
  rec->stats.last_packet = now;

  if (pkt.is_tcp()) {
    // Handshake tracking.
    if (pkt.has_flag(kTcpSyn)) {
      rec->reasm->on_syn(pkt.seq());
      rec->handshake = pkt.has_flag(kTcpAck) ? HandshakeState::kSynAckSeen
                                             : HandshakeState::kSynSeen;
      rec->stats.pkts++;
      ++stats_.pkts_control;
      outcome.verdict = Verdict::kControl;
      return outcome;
    }
    if (rec->handshake == HandshakeState::kSynSeen &&
        pkt.has_flag(kTcpAck)) {
      StreamRecord* opp = table_.by_id(rec->opposite);
      if (opp && opp->handshake == HandshakeState::kSynAckSeen) {
        rec->handshake = HandshakeState::kEstablished;
        opp->handshake = HandshakeState::kEstablished;
      }
    }
    if (pkt.payload_len() > 0 &&
        rec->handshake == HandshakeState::kNone &&
        !(rec->error_bits & kErrIncompleteHandshake)) {
      rec->error_bits |= kErrIncompleteHandshake;
    }

    if (pkt.payload_len() > 0) {
      handle_payload(*rec, pkt, now, outcome);
    } else if (!pkt.has_flag(kTcpFin) && !pkt.has_flag(kTcpRst)) {
      rec->stats.pkts++;
      ++stats_.pkts_control;
      outcome.verdict = Verdict::kControl;
    }

    if (pkt.has_flag(kTcpRst) || pkt.has_flag(kTcpFin)) {
      if (pkt.payload_len() == 0) {
        rec->stats.pkts++;
        ++stats_.pkts_control;
      }
      if (outcome.verdict == Verdict::kIgnored) {
        outcome.verdict = Verdict::kControl;
      }
      // Flow statistics for NIC-offloaded streams: the FIN/RST sequence
      // number reveals how many bytes the NIC dropped (paper §5.5).
      if (rec->cutoff_exceeded) {
        if (auto total = rec->reasm->offset_of(pkt.seq())) {
          rec->stats.bytes = std::max(rec->stats.bytes, *total);
        }
      }
      const StreamStatus status = pkt.has_flag(kTcpRst)
                                      ? StreamStatus::kClosedRst
                                      : StreamStatus::kClosedFin;
      // RST kills both directions; FIN closes only this one.
      if (pkt.has_flag(kTcpRst)) {
        StreamRecord* opp = table_.by_id(rec->opposite);
        if (opp != nullptr) terminate(*opp, status, now, nullptr);
      }
      terminate(*rec, status, now, &outcome);
      return outcome;
    }
    return outcome;
  }

  // UDP and other IP protocols.
  if (pkt.payload_len() > 0 || !pkt.is_udp()) {
    if (rec->params.mode == ReassemblyMode::kNone || !pkt.is_udp()) {
      // Packet-oriented delivery: every packet becomes its own chunk.
      handle_payload(*rec, pkt, now, outcome);
      if (rec->reasm->builder().has_data()) flush_chunks(*rec, 0);
    } else {
      handle_payload(*rec, pkt, now, outcome);
    }
  } else {
    rec->stats.pkts++;
    // Zero-payload UDP keepalives previously set the control verdict
    // without the control counter — invisible to the accounting (found by
    // the conservation checker).
    ++stats_.pkts_control;
    outcome.verdict = Verdict::kControl;
  }
  return outcome;
}

void ScapKernel::run_maintenance(Timestamp now) {
  last_maintenance_ = now;

  SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kMaintenanceTick, 0, now,
                   0, 0, static_cast<std::uint32_t>(table_.size()),
                   allocator_.used());
#if defined(SCAP_ENABLE_TRACE)
  if (tracer_ != nullptr) {
    // Per-queue backlog distribution, sampled at the deterministic
    // maintenance cadence (one sample per queue per tick).
    for (const EventQueue& q : queues_) {
      tracer_->metrics().queue_occupancy.add(q.size());
    }
  }
#endif

  // Feed the adaptive overload controller one pressure sample per
  // maintenance tick: deterministic cadence, off the per-packet path.
  ppl_.observe(allocator_.used_fraction(), now);

  if (config_.defragment_ip) defrag_.expire(now);

  // Inactivity expiry, oldest first (paper §5.2).
  table_.expire_idle(now, [&](StreamRecord& rec) {
    rec.status = StreamStatus::kClosedTimeout;
    flush_chunks(rec, 0);
    if (rec.chunk_alloc) {
      allocator_.release(rec.chunk_addr, rec.chunk_alloc);
      rec.chunk_addr = 0;
      rec.chunk_alloc = 0;
    }
    if (rec.kept_alloc) {
      allocator_.release(0, rec.kept_alloc);
      rec.kept_alloc = 0;
    }
    if (rec.fdir_installed && (nic_ != nullptr || fdir_queue_ != nullptr)) {
      if (fdir_queue_ != nullptr) {
        FdirCommand cmd;
        cmd.kind = FdirCommand::Kind::kRemove;
        cmd.tuple = rec.tuple;
        // Counted at apply time by service_fdir, like every queue-mode
        // FDIR mutation.
        (void)fdir_queue_->try_push(cmd);
      } else {
        stats_.fdir_removals += nic_->fdir().remove_tuple(rec.tuple);
      }
      rec.fdir_installed = false;
      SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kFdirEvict, rec.core,
                       now, rec.id, 0);
    }
    flush_watch_.erase(rec.id);
    auto& count = core_streams_[static_cast<std::size_t>(rec.core)];
    if (count > 0) --count;
    emit_terminated(rec);
  });

  // FDIR filter timeouts (paper §5.5): the stream may still be alive; if a
  // packet shows up later the filter is re-installed with a doubled timeout.
  if (nic_ != nullptr && config_.use_fdir) {
    for (const auto& f : nic_->fdir().expire(now)) {
      StreamRecord* rec = table_.find(f.tuple);
      if (rec != nullptr) rec->fdir_installed = false;
      ++stats_.fdir_removals;
      SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kFdirEvict,
                       rec != nullptr ? rec->core : 0, now,
                       rec != nullptr ? rec->id : 0, 1);
    }
  }

  // Flush timeouts for streams that asked for timely delivery.
  if (!flush_watch_.empty()) {
    std::vector<StreamId> ids(flush_watch_.begin(), flush_watch_.end());
    for (StreamId id : ids) {
      StreamRecord* rec = table_.by_id(id);
      if (rec == nullptr) {
        flush_watch_.erase(id);
        continue;
      }
      if (now - rec->last_flush >= rec->params.flush_timeout &&
          rec->reasm->builder().has_data()) {
        flush_chunks(*rec, 0);
        rec->last_flush = now;
      }
    }
  }

  // Every maintenance tick re-proves the accounting laws (fatal in
  // Debug/test builds, compiled out in Release) — a mis-counted drop is
  // caught within one expiry interval of the packet that caused it.
  SCAP_INVARIANT_REPORT(check_invariants());
}

void ScapKernel::terminate_all(Timestamp now) {
  while (StreamRecord* rec = table_.oldest()) {
    terminate(*rec, StreamStatus::kClosedTimeout, now, nullptr);
  }
  SCAP_INVARIANT_REPORT(check_invariants());
}

bool ScapKernel::set_stream_cutoff(StreamId id, std::int64_t cutoff) {
  StreamRecord* rec = table_.by_id(id);
  if (rec == nullptr) return false;
  rec->params.cutoff_bytes = cutoff;
  return true;
}

bool ScapKernel::set_stream_priority(StreamId id, int priority) {
  StreamRecord* rec = table_.by_id(id);
  if (rec == nullptr) return false;
  rec->params.priority = priority;
  return true;
}

bool ScapKernel::keep_stream_chunk(StreamId id, Chunk&& chunk,
                                   std::uint32_t alloc) {
  StreamRecord* rec = table_.by_id(id);
  if (rec == nullptr || !rec->reasm) return false;
  rec->reasm->builder().retain(std::move(chunk));
  rec->kept_alloc += alloc;
  return true;
}

bool ScapKernel::discard_stream(StreamId id) {
  StreamRecord* rec = table_.by_id(id);
  if (rec == nullptr) return false;
  rec->discard_requested = true;
  if (rec->chunk_alloc) {
    allocator_.release(rec->chunk_addr, rec->chunk_alloc);
    rec->chunk_addr = 0;
    rec->chunk_alloc = 0;
  }
  return true;
}

}  // namespace scap::kernel
