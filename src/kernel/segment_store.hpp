// Out-of-order segment buffer with target-based overlap resolution.
//
// Strict-mode reassembly parks segments that arrive ahead of the expected
// sequence here until the hole before them fills. When segments overlap,
// which copy of a byte wins depends on the receiver OS the stream is
// destined to — the root of the NIDS evasion attacks of Ptacek & Newsham
// and Shankar & Paxson that target-based reassembly (paper §2.3) defends
// against. The store normalizes everything to disjoint intervals and
// reports when overlapping copies actually disagreed, so the stream can be
// flagged with kErrOverlapConflict.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "kernel/stream.hpp"

namespace scap::kernel {

class SegmentStore {
 public:
  struct InsertResult {
    std::uint64_t new_bytes = 0;   // bytes added to the store
    std::uint64_t dup_bytes = 0;   // bytes discarded as duplicates/losers
    bool conflict = false;         // an overlapped byte disagreed
    bool failed = false;           // allocation failed; nothing was stored
  };

  /// Insert `data` at stream offset `off`, resolving overlaps per `policy`.
  InsertResult insert(std::uint64_t off, std::span<const std::uint8_t> data,
                      OverlapPolicy policy);

  /// If a segment begins exactly at `off`, remove and return the maximal
  /// contiguous run starting there.
  std::optional<std::vector<std::uint8_t>> pop_contiguous(std::uint64_t off);

  /// Lowest buffered offset (for forced flushes), if any.
  std::optional<std::uint64_t> min_offset() const;

  /// Remove and return the first (lowest-offset) segment.
  std::optional<std::pair<std::uint64_t, std::vector<std::uint8_t>>> pop_front();

  std::uint64_t buffered_bytes() const { return bytes_; }
  bool empty() const { return segments_.empty(); }
  std::size_t segment_count() const { return segments_.size(); }
  void clear() {
    segments_.clear();
    bytes_ = 0;
  }

 private:
  // Disjoint, non-adjacent-merged intervals: offset -> bytes.
  std::map<std::uint64_t, std::vector<std::uint8_t>> segments_;
  std::uint64_t bytes_ = 0;
};

}  // namespace scap::kernel
