// Multi-core sharded kernel datapath (paper §4, DESIGN.md §12).
//
// The paper parallelizes Scap by steering flows to cores with symmetric RSS
// and running an independent stream-reassembly context per core. This layer
// is that structure: N worker shards, each owning a complete ScapKernel —
// its own flow-table slab pool, chunk allocator, PPL controller, event
// queue, and trace ring — fed from a single producer through per-shard
// lock-free SPSC rings. A flow's two directions hash to the same shard
// (RssEngine canonicalizes the 4-tuple), so no flow state is ever shared:
// the per-packet worker path takes no shared lock at all.
//
// Locking model (every lock here is per-shard and batch-granular):
//   * ring producer/consumer SerialDomains — structural single-writer
//     discipline on the SPSC handoff (spsc-discipline analyzer rule);
//   * Shard::mu — serializes entry into the shard kernel between the worker
//     (once per popped batch, never per packet) and quiescent-state callers
//     (stop(), check_invariants(), tests);
//   * Shard::snap_mu — guards a per-batch KernelStats snapshot so stats()
//     aggregation never touches a kernel mutex (callable from event
//     handlers without deadlock);
//   * FDIR programming crosses back to the NIC-owning producer through a
//     bounded MPSC command queue (FdirCommand), never a lock.
//
// Aggregation: every KernelStats conservation law is linear, so the
// shard-sum satisfies check_conservation whenever each shard does; stats()
// returns that sum (PPL cutoff/overload are combined, not summed).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "base/mutex.hpp"
#include "base/ring.hpp"
#include "base/thread_annotations.hpp"
#include "kernel/module.hpp"
#include "nic/rss.hpp"
#include "trace/trace.hpp"

namespace scap::kernel {

/// One slot on a shard's ingest ring: a packet, or an in-band maintenance
/// marker. Markers ride the same ring as packets so each shard observes
/// "tick at time T" at exactly the right point in its packet sequence —
/// that ordering is what makes shard-aggregated expiry accounting equal a
/// single-core replay (the shard-conservation tests assert it bit-for-bit).
struct ShardItem {
  enum class Kind : std::uint8_t { kPacket, kMaintenance };
  Kind kind = Kind::kPacket;
  Packet pkt;      // kPacket
  Timestamp ts{};  // kMaintenance: the tick's simulated time
};

/// N per-core ScapKernel instances behind SPSC ingest rings.
///
/// Thread roles: exactly one producer thread drives submit()/tick_all()/
/// flush()/service_fdir() (annotated SCAP_REQUIRES(producer())); start()
/// spawns one worker thread per shard; stats() may be called from any
/// thread, including event handlers running on workers.
class KernelShards {
 public:
  struct Options {
    /// Per-shard SPSC ring slots (rounded up to a power of two). The
    /// producer spins when a ring fills, so capacity trades producer
    /// stalls against memory — it never loses packets.
    std::size_t ring_capacity = 4096;
    /// Worker pop batch (feeds ScapKernel::handle_batch's prefetch loop).
    std::size_t batch_size = 32;
    /// Per-shard tracer config (single-ring; the shard kernel records on
    /// core 0 of its own tracer). Disabled when unset.
    std::optional<trace::TraceConfig> trace;
    /// FDIR command queue slots (created only when config.use_fdir).
    std::size_t fdir_queue_capacity = 1024;
  };

  /// Event-drain hook: called on the worker thread after every processed
  /// batch, and from stop() after terminate_all — always with the shard's
  /// kernel serialized (take a fresh SerialGuard on kernel.serial() inside
  /// the callback; it is a zero-cost re-assertion the analysis needs).
  /// When no hook is installed the shards drain their own event queues and
  /// release chunk accounting (benches, chaos_run).
  using DrainFn = std::function<void(int shard, ScapKernel& kernel)>;

  /// The shard configs are derived from `config`: memory_size and a
  /// nonzero max_streams are divided across shards, num_cores forced to 1,
  /// dynamic_load_balance off (cross-shard steering would break flow
  /// affinity — RSS affinity *is* the balance policy, paper §4.2).
  KernelShards(const KernelConfig& config, int num_shards);
  KernelShards(const KernelConfig& config, int num_shards, Options opts);
  ~KernelShards();

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Direct shard access for quiescent callers (tests after flush()/stop(),
  /// or under lock_shard()). The kernel's own serial() capability governs
  /// entry as usual.
  ScapKernel& kernel(int shard) { return shards_[idx(shard)]->kernel; }
  base::Mutex& shard_mutex(int shard) { return shards_[idx(shard)]->mu; }
  trace::Tracer* tracer(int shard) {
    return shards_[idx(shard)]->tracer.get();
  }
  FdirCommandQueue* fdir_queue() { return fdir_queue_.get(); }

  // --- producer side ------------------------------------------------------
  /// The single-producer capability: whoever holds it is the one thread
  /// feeding the rings (Capture backs it with its producer lock).
  base::SerialDomain& producer() const SCAP_RETURN_CAPABILITY(producer_) {
    return producer_;
  }

  /// Symmetric-RSS shard for this packet (both flow directions agree).
  int shard_for(const Packet& pkt) const { return rss_.queue_for(pkt); }

  /// Steer the packet to its flow's shard. Spins (never drops) when the
  /// ring is full — loss placement stays inside the kernels where the
  /// paper's accounting can see it.
  void submit(Packet pkt) SCAP_REQUIRES(producer_) {
    submit_to(shard_for(pkt), std::move(pkt));
  }
  void submit_to(int shard, Packet pkt) SCAP_REQUIRES(producer_);

  /// Push an in-band maintenance marker at simulated time `now` onto every
  /// shard. Call at a fixed cadence (and before submitting packets with
  /// timestamps >= now) to keep expiry deterministic across shard counts.
  void tick_all(Timestamp now) SCAP_REQUIRES(producer_);

  /// Block until every submitted item has been fully processed (rings
  /// empty and the in-flight worker batches retired).
  void flush() SCAP_REQUIRES(producer_);

  /// Apply queued FDIR commands to the producer-owned NIC and service
  /// hardware filter expiry. Workers only enqueue; this is the single
  /// consumer of the command queue.
  void service_fdir(nic::Nic& nic, Timestamp now) SCAP_REQUIRES(producer_);

  // --- lifecycle ----------------------------------------------------------
  /// Spawn one worker thread per shard. `drain` may be empty (self-drain).
  void start(DrainFn drain) SCAP_REQUIRES(producer_);

  /// Flush the rings, join the workers, then terminate_all() on every
  /// shard (on the calling thread) and run the final event drain. The
  /// producer must not submit afterwards. Idempotent.
  void stop(Timestamp now) SCAP_REQUIRES(producer_);
  bool running() const { return !workers_.empty(); }

  // --- aggregate views ----------------------------------------------------
  /// Shard-summed KernelStats, built from the per-batch snapshots (never
  /// blocks on a worker; safe from event handlers). Counters and
  /// histograms sum; ppl_effective_cutoff is the tightest active shard
  /// cutoff and ppl_overload_active is set when any shard is overloaded.
  KernelStats stats() const;

  /// Per-shard stats snapshot (same source as stats()).
  KernelStats shard_stats(int shard) const;

  /// Every shard's check_invariants() plus check_conservation on the
  /// aggregate. Quiescent callers only (locks each shard's kernel; do not
  /// call from an event handler). Returns "" when every law holds.
  std::string check_invariants() const;

  /// Sum of trace events recorded/dropped across the per-shard tracers,
  /// and the merge of their metric registries. Snapshot-based (updated
  /// once per worker batch), so reading them never races a recording
  /// worker.
  std::uint64_t trace_recorded() const;
  std::uint64_t trace_dropped() const;
  trace::MetricsRegistry trace_metrics() const;

 private:
  struct Shard {
    Shard(const KernelConfig& cfg, std::size_t ring_capacity);

    ScapKernel kernel;  // enter under mu + kernel.serial()
    SpscRing<ShardItem> ring;
    std::unique_ptr<trace::Tracer> tracer;

    /// Serializes kernel entry: the worker takes it once per batch; stop()
    /// and check_invariants() take it from other threads.
    base::Mutex mu;

    /// Post-batch snapshots (kernel counters + trace totals), so
    /// aggregation never waits on a batch and never reads state the
    /// worker is mutating.
    mutable base::Mutex snap_mu;
    KernelStats snapshot SCAP_GUARDED_BY(snap_mu);
    std::uint64_t snap_trace_recorded SCAP_GUARDED_BY(snap_mu) = 0;
    std::uint64_t snap_trace_dropped SCAP_GUARDED_BY(snap_mu) = 0;
    trace::MetricsRegistry snap_metrics SCAP_GUARDED_BY(snap_mu);

    /// Worker parking: the worker only sleeps on an empty ring; the
    /// producer takes wake_mu solely to publish the wakeup (never on the
    /// fast path while the worker is awake).
    base::Mutex wake_mu;
    base::CondVar wake_cv;
    std::atomic<bool> sleeping{false};

    /// Retired-item count (worker side); flush() compares against the
    /// producer's local pushed count.
    std::atomic<std::uint64_t> processed{0};
  };

  std::size_t idx(int shard) const {
    return static_cast<std::size_t>(shard);
  }
  void worker_main(std::stop_token st, int shard);
  /// One mutex + serial-domain entry per batch; scratch is the caller's
  /// reusable packet buffer (no per-batch allocation).
  void process_items(Shard& s, int shard, std::span<ShardItem> items,
                     std::vector<Packet>& scratch);
  void push_item(std::size_t shard, ShardItem item) SCAP_REQUIRES(producer_);
  /// Re-publish the shard's post-batch snapshot (kernel stats + trace
  /// totals) under snap_mu.
  void refresh_snapshot(Shard& s) SCAP_REQUIRES(s.kernel.serial());
  void drain_shard(int shard, ScapKernel& k) SCAP_REQUIRES(k.serial());
  void wake(Shard& s);

  Options opts_;
  nic::RssEngine rss_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<FdirCommandQueue> fdir_queue_;
  DrainFn drain_;
  std::vector<std::jthread> workers_;
  mutable base::SerialDomain producer_;
  /// Producer-local push counts per shard (single producer, no atomics).
  std::vector<std::uint64_t> pushed_ SCAP_GUARDED_BY(producer_);
  bool stopped_ SCAP_GUARDED_BY(producer_) = false;
};

}  // namespace scap::kernel
