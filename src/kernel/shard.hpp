// Multi-core sharded kernel datapath (paper §4, DESIGN.md §12).
//
// The paper parallelizes Scap by steering flows to cores with symmetric RSS
// and running an independent stream-reassembly context per core. This layer
// is that structure: N worker shards, each owning a complete ScapKernel —
// its own flow-table slab pool, chunk allocator, PPL controller, event
// queue, and trace ring — fed from a single producer through per-shard
// lock-free SPSC rings. A flow's two directions hash to the same shard
// (RssEngine canonicalizes the 4-tuple), so no flow state is ever shared:
// the per-packet worker path takes no shared lock at all.
//
// Locking model (every lock here is per-shard and batch-granular):
//   * ring producer/consumer SerialDomains — structural single-writer
//     discipline on the SPSC handoff (spsc-discipline analyzer rule);
//   * Shard::mu — serializes entry into the shard kernel between the worker
//     (once per popped batch, never per packet) and quiescent-state callers
//     (stop(), check_invariants(), tests);
//   * Shard::snap_mu — guards a per-batch KernelStats snapshot so stats()
//     aggregation never touches a kernel mutex (callable from event
//     handlers without deadlock);
//   * FDIR programming crosses back to the NIC-owning producer through a
//     bounded MPSC command queue (FdirCommand), never a lock.
//
// Aggregation: every KernelStats conservation law is linear, so the
// shard-sum satisfies check_conservation whenever each shard does; stats()
// returns that sum (PPL cutoff/overload are combined, not summed).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "base/hotpath.hpp"
#include "base/mutex.hpp"
#include "base/ring.hpp"
#include "base/thread_annotations.hpp"
#include "kernel/module.hpp"
#include "nic/rss.hpp"
#include "trace/trace.hpp"

namespace scap::kernel {

/// What the worker-stall watchdog does when a shard stops consuming
/// (DESIGN.md §13): fail fast, or isolate the dead shard and keep capturing.
enum class StallPolicy : std::uint8_t {
  kFatal,    // SCAP_ASSERT: abort within the deadline instead of hanging
  kDegrade,  // shed the shard's traffic (counted), others keep running
};

/// One slot on a shard's ingest ring: a packet, or an in-band maintenance
/// marker. Markers ride the same ring as packets so each shard observes
/// "tick at time T" at exactly the right point in its packet sequence —
/// that ordering is what makes shard-aggregated expiry accounting equal a
/// single-core replay (the shard-conservation tests assert it bit-for-bit).
struct ShardItem {
  enum class Kind : std::uint8_t { kPacket, kMaintenance };
  Kind kind = Kind::kPacket;
  Packet pkt;      // kPacket
  Timestamp ts{};  // kMaintenance: the tick's simulated time
};

/// N per-core ScapKernel instances behind SPSC ingest rings.
///
/// Thread roles: exactly one producer thread drives submit()/tick_all()/
/// flush()/service_fdir() (annotated SCAP_REQUIRES(producer())); start()
/// spawns one worker thread per shard; stats() may be called from any
/// thread, including event handlers running on workers.
class KernelShards {
 public:
  struct Options {
    /// Per-shard SPSC ring slots (rounded up to a power of two). The
    /// producer spins when a ring fills, so capacity trades producer
    /// stalls against memory — it never loses packets.
    std::size_t ring_capacity = 4096;
    /// Worker pop batch (feeds ScapKernel::handle_batch's prefetch loop).
    std::size_t batch_size = 32;
    /// Per-shard tracer config (single-ring; the shard kernel records on
    /// core 0 of its own tracer). Disabled when unset.
    std::optional<trace::TraceConfig> trace;
    /// FDIR command queue slots (created only when config.use_fdir).
    std::size_t fdir_queue_capacity = 1024;

    /// Watermark-based ring admission (DESIGN.md §13). 0 (the default)
    /// disables admission: the producer backpressures on a full ring and
    /// never sheds, the lossless PR-6 handoff. When high > 0 the producer
    /// sheds instead of blocking: occupancy at/above `ring_high_watermark`
    /// slots sheds every data packet for that shard; between low and high
    /// a ladder mirroring the PPL watermarks sheds by packet priority,
    /// lowest first (priority p is shed at occupancy >=
    /// low + (p+1)*(high-low)/levels). Hysteresis mirrors the adaptive
    /// controller: once high is crossed the shard sheds everything until
    /// occupancy falls back to `ring_low_watermark`.
    std::size_t ring_high_watermark = 0;
    std::size_t ring_low_watermark = 0;

    /// Worker-stall watchdog deadline in simulated time, checked from the
    /// producer's tick cadence: a shard with outstanding items whose
    /// consumption counter has not advanced for this long (and still does
    /// not advance within a bounded real-time grace of `stall_spin_limit`
    /// yields) is declared stalled. Zero (the default) disables.
    Duration stall_timeout = Duration(0);
    StallPolicy stall_policy = StallPolicy::kDegrade;
    /// Bounded real-time grace (yield iterations) granted to a suspect
    /// worker — and to full-ring backpressure when the watchdog is armed —
    /// before the stall policy fires. A healthy-but-starved worker makes
    /// progress as soon as the producer yields the CPU; a parked one never
    /// does, which keeps the verdict deterministic.
    std::size_t stall_spin_limit = std::size_t{1} << 20;
  };

  /// Event-drain hook: called on the worker thread after every processed
  /// batch and before every in-band maintenance tick (so the tick observes
  /// settled chunk accounting — a pure function of the ring prefix, never
  /// of batch boundaries), and from stop() after terminate_all — always with the shard's
  /// kernel serialized (take a fresh SerialGuard on kernel.serial() inside
  /// the callback; it is a zero-cost re-assertion the analysis needs).
  /// When no hook is installed the shards drain their own event queues and
  /// release chunk accounting (benches, chaos_run).
  using DrainFn = std::function<void(int shard, ScapKernel& kernel)>;

  /// The shard configs are derived from `config`: memory_size and a
  /// nonzero max_streams are divided across shards, num_cores forced to 1,
  /// dynamic_load_balance off (cross-shard steering would break flow
  /// affinity — RSS affinity *is* the balance policy, paper §4.2).
  KernelShards(const KernelConfig& config, int num_shards);
  KernelShards(const KernelConfig& config, int num_shards, Options opts);
  ~KernelShards();

  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// Direct shard access for quiescent callers (tests after flush()/stop(),
  /// or under lock_shard()). The kernel's own serial() capability governs
  /// entry as usual.
  ScapKernel& kernel(int shard) { return shards_[idx(shard)]->kernel; }
  base::Mutex& shard_mutex(int shard) { return shards_[idx(shard)]->mu; }
  trace::Tracer* tracer(int shard) {
    return shards_[idx(shard)]->tracer.get();
  }
  /// Producer-side tracer carrying kRingShed/kWorkerStall events (null when
  /// tracing is disabled). Quiescent readers only, like tracer(int).
  trace::Tracer* producer_tracer() { return producer_tracer_.get(); }
  FdirCommandQueue* fdir_queue() { return fdir_queue_.get(); }

  // --- producer side ------------------------------------------------------
  /// The single-producer capability: whoever holds it is the one thread
  /// feeding the rings (Capture backs it with its producer lock).
  base::SerialDomain& producer() const SCAP_RETURN_CAPABILITY(producer_) {
    return producer_;
  }

  /// Symmetric-RSS shard for this packet (both flow directions agree).
  int shard_for(const Packet& pkt) const { return rss_.queue_for(pkt); }

  /// Steer the packet to its flow's shard. With admission disabled
  /// (ring_high_watermark == 0) a full ring backpressures the producer and
  /// no packet is ever lost to the handoff; with admission enabled the
  /// producer sheds by PPL priority instead of blocking, and the shed is
  /// counted (ring_shed_*) so packet conservation stays exact.
  SCAP_HOT void submit(Packet pkt) SCAP_REQUIRES(producer_) {
    submit_to(shard_for(pkt), std::move(pkt));
  }
  SCAP_HOT void submit_to(int shard, Packet pkt) SCAP_REQUIRES(producer_);

  /// Push an in-band maintenance marker at simulated time `now` onto every
  /// shard. Call at a fixed cadence (and before submitting packets with
  /// timestamps >= now) to keep expiry deterministic across shard counts.
  /// This is also the watchdog heartbeat check: shards that stopped
  /// consuming are detected here (Options::stall_timeout).
  void tick_all(Timestamp now) SCAP_REQUIRES(producer_);

  /// Block until every submitted item has been fully processed (rings
  /// empty and the in-flight worker batches retired).
  SCAP_COLD void flush() SCAP_REQUIRES(producer_);

  /// Apply queued FDIR commands to the producer-owned NIC and service
  /// hardware filter expiry. Workers only enqueue; this is the single
  /// consumer of the command queue.
  SCAP_COLD void service_fdir(nic::Nic& nic, Timestamp now)
      SCAP_REQUIRES(producer_);

  // --- lifecycle ----------------------------------------------------------
  /// Spawn one worker thread per shard. `drain` may be empty (self-drain).
  void start(DrainFn drain) SCAP_REQUIRES(producer_);

  /// Flush the rings, join the workers, then terminate_all() on every
  /// shard (on the calling thread) and run the final event drain. The
  /// producer must not submit afterwards. Idempotent. Bounded even when a
  /// worker is dead: the flush wait is capped by the watchdog (when armed),
  /// join is bounded because a stalled worker parks on an interruptible
  /// wait, and any items its ring still holds are drained inline on the
  /// calling thread afterwards, so the in-flight accounting closes exactly
  /// (submitted == consumed + shed is asserted per shard).
  SCAP_COLD void stop(Timestamp now) SCAP_REQUIRES(producer_);
  bool running() const { return !workers_.empty(); }

  /// True once the watchdog declared this shard stalled under policy
  /// kDegrade; its subsequent traffic is shed into ring_stall_shed_*.
  bool degraded(int shard) const SCAP_REQUIRES(producer_) {
    return watchdog_[idx(shard)].degraded;
  }

  // --- aggregate views ----------------------------------------------------
  /// Shard-summed KernelStats, built from the per-batch snapshots (never
  /// blocks on a worker; safe from event handlers). Counters and
  /// histograms sum; ppl_effective_cutoff is the tightest active shard
  /// cutoff and ppl_overload_active is set when any shard is overloaded.
  KernelStats stats() const;

  /// Per-shard stats snapshot (same source as stats()).
  KernelStats shard_stats(int shard) const;

  /// Every shard's check_invariants() plus check_conservation on the
  /// aggregate. Quiescent callers only (locks each shard's kernel; do not
  /// call from an event handler). Returns "" when every law holds.
  SCAP_COLD std::string check_invariants() const;

  /// Sum of trace events recorded/dropped across the per-shard tracers,
  /// and the merge of their metric registries. Snapshot-based (updated
  /// once per worker batch), so reading them never races a recording
  /// worker.
  std::uint64_t trace_recorded() const;
  std::uint64_t trace_dropped() const;
  trace::MetricsRegistry trace_metrics() const;

 private:
  struct Shard {
    Shard(const KernelConfig& cfg, std::size_t ring_capacity);

    ScapKernel kernel;  // enter under mu + kernel.serial()
    SpscRing<ShardItem> ring;
    std::unique_ptr<trace::Tracer> tracer;

    /// Serializes kernel entry: the worker takes it once per batch; stop()
    /// and check_invariants() take it from other threads.
    base::Mutex mu;

    /// Post-batch snapshots (kernel counters + trace totals), so
    /// aggregation never waits on a batch and never reads state the
    /// worker is mutating.
    mutable base::Mutex snap_mu;
    KernelStats snapshot SCAP_GUARDED_BY(snap_mu);
    std::uint64_t snap_trace_recorded SCAP_GUARDED_BY(snap_mu) = 0;
    std::uint64_t snap_trace_dropped SCAP_GUARDED_BY(snap_mu) = 0;
    trace::MetricsRegistry snap_metrics SCAP_GUARDED_BY(snap_mu);

    /// Worker parking: the worker only sleeps on an empty ring; the
    /// producer takes wake_mu solely to publish the wakeup (never on the
    /// fast path while the worker is awake).
    base::Mutex wake_mu;
    base::CondVar wake_cv;
    std::atomic<bool> sleeping{false};

    /// Retired-item count (worker side); flush() compares against the
    /// producer's local pushed count and the watchdog reads it as the
    /// shard's heartbeat.
    std::atomic<std::uint64_t> processed{0};

    /// In-flight packet accounting + admission counters. Single writer
    /// each (producer or consumer as noted), relaxed tallies so stats()
    /// and invariant checks can fold them in from any thread.
    std::atomic<std::uint64_t> submitted_pkts{0};   // producer: ring pushes
    std::atomic<std::uint64_t> consumed_pkts{0};    // consumer: kernel entries
    std::atomic<std::uint64_t> shed_pkts{0};        // producer: admission shed
    std::atomic<std::uint64_t> shed_bytes{0};       // producer: wire bytes
    std::atomic<std::uint64_t> stall_shed_pkts{0};  // producer: degraded shed
    std::atomic<std::uint64_t> stall_shed_bytes{0};
    std::atomic<std::uint64_t> occupancy_peak{0};   // producer-observed max
  };

  /// Producer-private per-shard watchdog + admission state. `heartbeat` is
  /// the shard's `processed` value at the last observed progress (or idle)
  /// point, `last_progress` the simulated time of that observation.
  struct WatchdogState {
    std::uint64_t heartbeat = 0;
    Timestamp last_progress{};
    bool armed = false;     // first tick seeds the baseline instead of firing
    bool degraded = false;  // stall declared under StallPolicy::kDegrade
    bool shedding = false;  // admission hysteresis: high crossed, low not yet
    std::uint64_t admission_rolls = 0;  // kRingPush fault ordinal (1-based)
  };

  std::size_t idx(int shard) const {
    return static_cast<std::size_t>(shard);
  }
  void worker_main(std::stop_token st, int shard);
  /// One mutex + serial-domain entry per batch; scratch is the caller's
  /// reusable packet buffer (no per-batch allocation).
  SCAP_HOT void process_items(Shard& s, int shard, std::span<ShardItem> items,
                              std::vector<Packet>& scratch);
  SCAP_HOT void push_item(std::size_t shard, ShardItem item)
      SCAP_REQUIRES(producer_);
  /// Watermark-ladder admission for a data packet at ring occupancy `occ`.
  /// Returns true when the packet must be shed (does not count it).
  bool admission_sheds(std::size_t shard, const Packet& pkt, std::size_t occ)
      SCAP_REQUIRES(producer_);
  /// Count (and trace) one shed packet; `stall` routes it into the
  /// ring_stall_shed_* sub-counters as well.
  void shed_packet(std::size_t shard, const Packet& pkt, bool stall,
                   std::size_t occ) SCAP_REQUIRES(producer_);
  /// Heartbeat check over every shard, run from tick_all at simulated time
  /// `now`. Declares a stall per Options::stall_policy after the deadline
  /// plus a bounded real-time grace.
  void check_watchdog(Timestamp now) SCAP_REQUIRES(producer_);
  /// Fire the stall policy for one shard (SCAP_ASSERT or degraded mode).
  SCAP_COLD void declare_stall(std::size_t shard, Timestamp now)
      SCAP_REQUIRES(producer_);
  /// 0-based PPL priority of a packet, from config priority classes (first
  /// match wins) falling back to the stream default.
  int packet_priority(const Packet& pkt) const;
  /// Fold one shard's shed tallies into a stats snapshot. The shed
  /// decisions are keyed and interleaving-independent (chaos_smoke_mc
  /// gates that dynamically), so these folds are determinism-clean.
  static void fold_shard_shed(KernelStats& into, const Shard& s);
  /// Fold the producer-observed ring-depth peak — the one snapshot number
  /// that is genuinely scheduling-dependent. Kept separate from
  /// fold_shard_shed so the taint pass (tools/scap_taint.py) sees the
  /// schedule coupling drain into exactly one registry-classified field.
  static void fold_occupancy_peak(KernelStats& into, const Shard& s);
  /// Fold every producer-side counter (shed, stalls, apply-time FDIR) into
  /// an aggregate snapshot.
  void fold_producer_counters(KernelStats& into) const;
  /// Re-publish the shard's post-batch snapshot (kernel stats + trace
  /// totals) under snap_mu.
  SCAP_COLD void refresh_snapshot(Shard& s) SCAP_REQUIRES(s.kernel.serial());
  void drain_shard(int shard, ScapKernel& k) SCAP_REQUIRES(k.serial());
  void wake(Shard& s);

  Options opts_;
  nic::RssEngine rss_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<FdirCommandQueue> fdir_queue_;
  DrainFn drain_;
  std::vector<std::jthread> workers_;
  mutable base::SerialDomain producer_;
  /// Producer-local push counts per shard (single producer, no atomics).
  std::vector<std::uint64_t> pushed_ SCAP_GUARDED_BY(producer_);
  bool stopped_ SCAP_GUARDED_BY(producer_) = false;

  /// Per-shard watchdog heartbeats + admission hysteresis (producer-only).
  std::vector<WatchdogState> watchdog_ SCAP_GUARDED_BY(producer_);

  /// Admission priority inputs, copied from the capture config: the PPL
  /// ladder the ring watermarks mirror.
  std::vector<PriorityClass> priority_classes_;
  int default_priority_ = 0;
  int ppl_levels_ = 1;

  /// Producer-side tracer for admission/watchdog events (kRingShed,
  /// kWorkerStall) — shed packets never reach a shard kernel, so their
  /// events cannot ride the per-shard rings. Producer-only writes; the
  /// recorded/dropped totals are mirrored into the atomics below after
  /// each emit so aggregate readers never touch the ring.
  std::unique_ptr<trace::Tracer> producer_tracer_;
  std::atomic<std::uint64_t> producer_trace_recorded_{0};
  std::atomic<std::uint64_t> producer_trace_dropped_{0};

  /// Watchdog + apply-time FDIR accounting (single writer: the producer;
  /// folded into stats()/check_invariants from any thread). service_fdir
  /// counts installs/removals when they are actually applied to the NIC,
  /// so a hardware rejection can no longer overstate fdir_installs
  /// (the queue-mode counting-skew fix).
  std::atomic<std::uint64_t> worker_stalls_{0};
  std::atomic<std::uint64_t> fdir_applied_installs_{0};
  std::atomic<std::uint64_t> fdir_applied_reinstalls_{0};
  std::atomic<std::uint64_t> fdir_applied_removals_{0};
  std::atomic<std::uint64_t> fdir_apply_failures_{0};
};

}  // namespace scap::kernel
