#include "kernel/ppl.hpp"

namespace scap::kernel {

double Ppl::watermark(int priority) const {
  // 0-based priority p corresponds to 1-based level i = p+1; watermark_i =
  // base + i * (1 - base) / n.
  const int i = priority + 1;
  const int n = config_.priority_levels;
  const int level = i > n ? n : i;
  return config_.base_threshold +
         static_cast<double>(level) * (1.0 - config_.base_threshold) /
             static_cast<double>(n);
}

PplVerdict Ppl::admit(double used_fraction, int priority,
                      std::uint64_t stream_offset) const {
  if (used_fraction <= config_.base_threshold) return PplVerdict::kAdmit;
  const double upper = watermark(priority);
  if (used_fraction > upper) return PplVerdict::kDropPriority;
  // Below the band's lower watermark_{i-1} this priority is unconstrained.
  const double lower = priority > 0 ? watermark(priority - 1)
                                    : config_.base_threshold;
  if (used_fraction <= lower) return PplVerdict::kAdmit;
  // In this priority's overload band (watermark_{i-1}, watermark_i]:
  if (config_.overload_cutoff >= 0 &&
      stream_offset >= static_cast<std::uint64_t>(config_.overload_cutoff)) {
    return PplVerdict::kDropOverload;
  }
  return PplVerdict::kAdmit;
}

}  // namespace scap::kernel
