#include "kernel/ppl.hpp"

namespace scap::kernel {

double Ppl::watermark(int priority) const {
  // 0-based priority p corresponds to 1-based level i = p+1; watermark_i =
  // base + i * (1 - base) / n.
  const int i = priority + 1;
  const int n = config_.priority_levels;
  const int level = i > n ? n : i;
  return config_.base_threshold +
         static_cast<double>(level) * (1.0 - config_.base_threshold) /
             static_cast<double>(n);
}

PplVerdict Ppl::admit(double used_fraction, int priority,
                      std::uint64_t stream_offset) const {
  if (used_fraction <= config_.base_threshold) return PplVerdict::kAdmit;
  const double upper = watermark(priority);
  if (used_fraction > upper) return PplVerdict::kDropPriority;
  // Below the band's lower watermark_{i-1} this priority is unconstrained.
  const double lower = priority > 0 ? watermark(priority - 1)
                                    : config_.base_threshold;
  if (used_fraction <= lower) return PplVerdict::kAdmit;
  // In this priority's overload band (watermark_{i-1}, watermark_i]:
  const std::int64_t cutoff = effective_cutoff();
  if (cutoff >= 0 && stream_offset >= static_cast<std::uint64_t>(cutoff)) {
    return PplVerdict::kDropOverload;
  }
  return PplVerdict::kAdmit;
}

void Ppl::observe(double used_fraction, Timestamp now) {
  if (used_fraction < 0) used_fraction = 0;
  if (used_fraction > 1) used_fraction = 1;

  // Watermark-crossing events fire on the raw sample against the ladder's
  // anchor, adaptive or not — the trace marks when PPL *could* start
  // dropping, which is the base-threshold crossing.
  const bool above = used_fraction > config_.base_threshold;
  if (above != (prev_sample_ > config_.base_threshold)) {
    SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kPplWatermark, 0, now, 0,
                     static_cast<std::uint16_t>(above ? 1 : 0),
                     static_cast<std::uint32_t>(used_fraction * 1000.0));
  }
  prev_sample_ = used_fraction;

  if (!config_.adaptive) return;
  state_.pressure_ewma +=
      config_.ewma_alpha * (used_fraction - state_.pressure_ewma);

  if (!state_.overload) {
    if (state_.pressure_ewma >= config_.enter_fraction) {
      state_.overload = true;
      state_.effective_cutoff = config_.start_cutoff;
      ++state_.overload_entries;
      SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kPplCutoffChange, 0,
                       now, 0, 1, 0,
                       static_cast<std::uint64_t>(state_.effective_cutoff));
    }
    return;
  }

  if (state_.pressure_ewma >= config_.enter_fraction) {
    // Sustained pressure: tighten multiplicatively down to the floor.
    const auto next = static_cast<std::int64_t>(
        static_cast<double>(state_.effective_cutoff) * config_.tighten_factor);
    const std::int64_t clamped = next < config_.min_cutoff
                                     ? config_.min_cutoff
                                     : next;
    if (clamped < state_.effective_cutoff) {
      state_.effective_cutoff = clamped;
      ++state_.tightenings;
      SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kPplCutoffChange, 0,
                       now, 0, 1, 0,
                       static_cast<std::uint64_t>(state_.effective_cutoff));
    }
    return;
  }

  if (state_.pressure_ewma <= config_.exit_fraction) {
    // Pressure receded: relax stepwise; once the cutoff would pass its
    // starting point, leave overload entirely.
    const auto next = static_cast<std::int64_t>(
        static_cast<double>(state_.effective_cutoff) * config_.relax_factor);
    if (next > config_.start_cutoff) {
      state_.overload = false;
      state_.effective_cutoff = -1;
      ++state_.overload_exits;
      SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kPplCutoffChange, 0,
                       now, 0, 0, 0, 0);
    } else {
      state_.effective_cutoff = next;
      ++state_.relaxations;
      SCAP_TRACE_EVENT(tracer_, trace::TraceEventType::kPplCutoffChange, 0,
                       now, 0, 1, 0,
                       static_cast<std::uint64_t>(state_.effective_cutoff));
    }
    return;
  }

  // Hold band (exit_fraction, enter_fraction): freeze the cutoff. This is
  // the hysteresis that keeps the controller from flapping.
}

}  // namespace scap::kernel
