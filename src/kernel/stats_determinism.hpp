// Runtime/constexpr views over the KernelStats determinism registry
// (stats_determinism.inc, DESIGN.md §15). Callers that hold a field or
// histogram *name* — chaos_run's reproducibility report, test harnesses —
// look its class up here instead of maintaining their own exclusion lists.
#pragma once

#include <string_view>

namespace scap::kernel {

enum class StatDeterminism {
  kDeterministic,        // pure function of the input trace + config
  kShardGeometry,        // worker-count/allocation-pattern dependent
  kSchedulingDependent,  // thread-interleaving dependent at fixed config
};

/// Determinism class of a KernelStats field (scalar or array) by name.
/// Unknown names read as deterministic: a new field that never reaches the
/// registry is caught by the scap_taint.py stats-registry gate, not here.
constexpr StatDeterminism stats_field_class(std::string_view name) {
#define SCAP_STATS_FIELD(field, determinism) \
  if (name == #field) return StatDeterminism::determinism;
#define SCAP_STATS_ARRAY(field, determinism) \
  if (name == #field) return StatDeterminism::determinism;
#include "kernel/stats_determinism.inc"
  return StatDeterminism::kDeterministic;
}

/// Determinism class of a trace::MetricsRegistry histogram by name.
constexpr StatDeterminism metric_hist_class(std::string_view name) {
#define SCAP_METRIC_HIST(hist, determinism) \
  if (name == #hist) return StatDeterminism::determinism;
#include "kernel/stats_determinism.inc"
  return StatDeterminism::kDeterministic;
}

}  // namespace scap::kernel
