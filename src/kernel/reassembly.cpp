#include "kernel/reassembly.hpp"

#include <algorithm>
#include <cstring>

namespace scap::kernel {

// --- ChunkBuilder -----------------------------------------------------------

ChunkBuilder::ChunkBuilder(std::uint32_t chunk_size, std::uint32_t overlap_size,
                           bool record_packets)
    : chunk_size_(chunk_size ? chunk_size : 1),
      overlap_size_(overlap_size),
      record_packets_(record_packets) {}

void ChunkBuilder::reset(std::uint32_t chunk_size, std::uint32_t overlap_size,
                         bool record_packets) {
  chunk_size_ = chunk_size ? chunk_size : 1;
  overlap_size_ = overlap_size;
  record_packets_ = record_packets;
  // clear() keeps the vectors' capacity — the point of recycling.
  current_.data.clear();
  current_.packets.clear();
  current_.stream_offset = 0;
  current_.overlap_len = 0;
  current_.errors = 0;
  current_.first_ts = Timestamp();
  current_started_ = false;
  pending_errors_ = 0;
  retained_.reset();
}

Chunk ChunkBuilder::take_current() {
  Chunk out = std::move(current_);
  out.errors |= pending_errors_;
  pending_errors_ = 0;
  current_ = Chunk{};
  current_started_ = false;
  if (retained_) {
    // A kept chunk is delivered together with the one that just completed.
    Chunk merged = std::move(*retained_);
    retained_.reset();
    merged.errors |= out.errors;
    // scap-lint: allow(hot-alloc) kept-chunk merge (scap_keep_stream_chunk) copies into the retained buffer; ROADMAP item 2 worklist (DESIGN.md §14 inventory)
    merged.data.insert(merged.data.end(), out.data.begin(), out.data.end());
    const std::uint32_t shift =
        static_cast<std::uint32_t>(merged.data.size() - out.data.size());
    for (auto& rec : out.packets) {
      rec.chunk_offset += shift;
      // scap-lint: allow(hot-alloc) per-packet records of a kept chunk, only when need_pkts is on (DESIGN.md §14 inventory)
      merged.packets.push_back(rec);
    }
    return merged;
  }
  return out;
}

void ChunkBuilder::start_next(const Chunk& completed) {
  // Seed the next chunk with the overlap tail of the completed one.
  if (overlap_size_ == 0 || completed.data.empty()) return;
  const std::uint32_t tail =
      std::min<std::uint32_t>(overlap_size_,
                              static_cast<std::uint32_t>(completed.data.size()));
  // scap-lint: allow(hot-alloc) overlap carry into the next chunk's buffer, whose capacity is retained across chunks (DESIGN.md §14 inventory)
  current_.data.assign(completed.data.end() - tail, completed.data.end());
  current_.overlap_len = tail;
  current_.stream_offset =
      completed.stream_offset + completed.data.size() - tail;
  current_started_ = true;
}

std::vector<Chunk> ChunkBuilder::append(std::span<const std::uint8_t> data,
                                        const SegmentMeta& meta,
                                        std::uint64_t stream_off) {
  std::vector<Chunk> completed;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    if (!current_started_) {
      current_.stream_offset = stream_off + consumed;
      current_.first_ts = meta.ts;
      current_started_ = true;
    } else if (current_.first_ts.ns() == 0) {
      // Overlap-seeded chunks start with repeated bytes; the latency clock
      // starts with the first segment that contributes new data.
      current_.first_ts = meta.ts;
    }
    const std::uint32_t room =
        chunk_size_ > current_.data.size()
            ? chunk_size_ - static_cast<std::uint32_t>(current_.data.size())
            : 0;
    const std::size_t take = std::min<std::size_t>(room, data.size() - consumed);
    if (take > 0) {
      if (record_packets_) {
        PacketRecord rec;
        rec.ts = meta.ts;
        rec.chunk_offset = static_cast<std::uint32_t>(current_.data.size());
        rec.caplen = static_cast<std::uint32_t>(take);
        rec.wirelen = meta.wire_payload;
        rec.seq = meta.seq_raw + static_cast<std::uint32_t>(consumed);
        rec.tcp_flags = meta.tcp_flags;
        // scap-lint: allow(hot-alloc) per-packet record append (need_pkts); capacity retained across chunks, ROADMAP item 2 worklist (DESIGN.md §14 inventory)
        current_.packets.push_back(rec);
      }
      // scap-lint: allow(hot-alloc) THE chunk-payload copy (0.56-0.64 allocs/pkt on reassembly/pipeline): vector growth until chunk_size capacity is reached, then reused; ROADMAP item 2 worklist (DESIGN.md §14 inventory)
      current_.data.insert(current_.data.end(), data.begin() + consumed,
                           data.begin() + consumed + take);
      consumed += take;
    }
    if (current_.data.size() >= chunk_size_) {
      Chunk done = take_current();
      start_next(done);
      // scap-lint: allow(hot-alloc) completed-chunk handoff vector, one element per chunk_size bytes of payload (DESIGN.md §14 inventory)
      completed.push_back(std::move(done));
    }
  }
  return completed;
}

std::optional<Chunk> ChunkBuilder::flush() {
  if (!has_data()) {
    // Nothing buffered; still surface pending errors if a chunk-less error
    // needs reporting (caller decides what to do with nullopt).
    return std::nullopt;
  }
  // A pure-overlap chunk (only the repeated tail) carries no new bytes.
  if (current_.data.size() == current_.overlap_len && !retained_) {
    current_ = Chunk{};
    current_started_ = false;
    return std::nullopt;
  }
  Chunk done = take_current();
  // No overlap seeding after an explicit flush: the next data starts clean.
  return done;
}

void ChunkBuilder::retain(Chunk&& kept) { retained_ = std::move(kept); }

// --- TcpReassembler ---------------------------------------------------------

TcpReassembler::TcpReassembler(const StreamParams& params, bool record_packets,
                               std::uint64_t max_ooo_bytes)
    : mode_(params.mode),
      policy_(params.policy),
      max_ooo_bytes_(max_ooo_bytes),
      builder_(params.chunk_size, params.overlap_size, record_packets) {}

void TcpReassembler::reset(const StreamParams& params, bool record_packets,
                           std::uint64_t max_ooo_bytes) {
  mode_ = params.mode;
  policy_ = params.policy;
  max_ooo_bytes_ = max_ooo_bytes;
  builder_.reset(params.chunk_size, params.overlap_size, record_packets);
  ooo_.clear();
  have_base_ = false;
  base_raw_ = 0;
  next_off_ = 0;
}

void TcpReassembler::on_syn(std::uint32_t isn) {
  if (have_base_) return;  // retransmitted SYN
  base_raw_ = isn + 1;     // data begins one past the ISN
  have_base_ = true;
}

std::optional<std::uint64_t> TcpReassembler::offset_of(std::uint32_t seq) const {
  if (!have_base_) return std::nullopt;
  const std::uint32_t expected_raw =
      base_raw_ + static_cast<std::uint32_t>(next_off_);
  const auto delta = static_cast<std::int32_t>(seq - expected_raw);
  const std::int64_t off = static_cast<std::int64_t>(next_off_) + delta;
  return off < 0 ? 0 : static_cast<std::uint64_t>(off);
}

void TcpReassembler::deliver(std::span<const std::uint8_t> data,
                             const SegmentMeta& meta, Result& result) {
  auto done = builder_.append(data, meta, next_off_);
  result.accepted_bytes += data.size();
  next_off_ += data.size();
  // scap-lint: allow(hot-alloc) completed-chunk handoff, one element per finished chunk (DESIGN.md §14 inventory)
  for (auto& c : done) result.completed.push_back(std::move(c));
}

void TcpReassembler::drain_ooo(const SegmentMeta& meta, Result& result) {
  while (auto run = ooo_.pop_contiguous(next_off_)) {
    auto done = builder_.append(*run, meta, next_off_);
    next_off_ += run->size();
    // scap-lint: allow(hot-alloc) completed-chunk handoff when a hole fills (strict mode), per chunk not per packet (DESIGN.md §14 inventory)
    for (auto& c : done) result.completed.push_back(std::move(c));
  }
}

void TcpReassembler::force_deliver_ooo(const SegmentMeta& meta,
                                       Result& result) {
  // Adversarial hole-flood: fall back to best-effort, flagging the gap.
  while (ooo_.buffered_bytes() > max_ooo_bytes_ / 2) {
    auto seg = ooo_.pop_front();
    if (!seg) break;
    if (seg->first > next_off_) {
      builder_.flag_error(kErrHole);
      result.errors |= kErrHole;
      next_off_ = seg->first;
    }
    std::span<const std::uint8_t> bytes(seg->second);
    if (seg->first < next_off_) {
      const std::uint64_t skip = next_off_ - seg->first;
      if (skip >= bytes.size()) continue;
      bytes = bytes.subspan(skip);
    }
    auto done = builder_.append(bytes, meta, next_off_);
    next_off_ += bytes.size();
    // scap-lint: allow(hot-alloc) completed-chunk handoff on OOO-buffer overflow degrade, per chunk not per packet (DESIGN.md §14 inventory)
    for (auto& c : done) result.completed.push_back(std::move(c));
  }
}

TcpReassembler::Result TcpReassembler::on_data(
    std::uint32_t seq, std::span<const std::uint8_t> payload,
    const SegmentMeta& meta) {
  Result result;
  if (payload.empty()) return result;

  if (!have_base_) {
    // Mid-flow pickup: anchor stream offset 0 at this segment.
    base_raw_ = seq;
    have_base_ = true;
  }

  const std::uint32_t expected_raw =
      base_raw_ + static_cast<std::uint32_t>(next_off_);
  const auto delta = static_cast<std::int32_t>(seq - expected_raw);
  std::int64_t off = static_cast<std::int64_t>(next_off_) + delta;
  std::span<const std::uint8_t> data = payload;

  // Reject segments absurdly far from the window (likely corruption or an
  // injection attempt).
  constexpr std::int64_t kMaxJump = 1LL << 30;
  if (off < -kMaxJump || off > static_cast<std::int64_t>(next_off_) + kMaxJump) {
    result.errors |= kErrInvalidSeq;
    builder_.flag_error(kErrInvalidSeq);
    return result;
  }

  // Trim bytes that precede already-delivered data (retransmission or
  // overlap with delivered bytes: first copy wins — it is already out).
  if (off < static_cast<std::int64_t>(next_off_)) {
    const std::uint64_t skip = next_off_ - static_cast<std::uint64_t>(off);
    if (skip >= data.size()) {
      result.dup_bytes += data.size();
      return result;  // fully duplicate
    }
    result.dup_bytes += skip;
    data = data.subspan(skip);
    off = static_cast<std::int64_t>(next_off_);
  }

  const auto uoff = static_cast<std::uint64_t>(off);
  if (mode_ == ReassemblyMode::kTcpFast) {
    if (uoff > next_off_) {
      // Hole: write through without waiting (best-effort mode). The skipped
      // bytes are simply absent; flag the chunk.
      builder_.flag_error(kErrHole);
      result.errors |= kErrHole;
      next_off_ = uoff;
    }
    deliver(data, meta, result);
    return result;
  }

  // Strict mode.
  if (uoff == next_off_) {
    deliver(data, meta, result);
    drain_ooo(meta, result);
    return result;
  }
  auto ins = ooo_.insert(uoff, data, policy_);
  if (ins.failed) {
    // Buffer allocation failed: the segment is lost, leaving a hole the
    // stream's consumer learns about through the overflow flag. The store
    // itself is untouched, so already-buffered data stays deliverable.
    result.alloc_failed = true;
    result.errors |= kErrBufferOverflow;
    builder_.flag_error(kErrBufferOverflow);
    return result;
  }
  result.accepted_bytes += ins.new_bytes;
  result.dup_bytes += ins.dup_bytes;
  if (ins.conflict) {
    result.errors |= kErrOverlapConflict;
    builder_.flag_error(kErrOverlapConflict);
  }
  if (ooo_.buffered_bytes() > max_ooo_bytes_) {
    result.errors |= kErrBufferOverflow;
    builder_.flag_error(kErrBufferOverflow);
    force_deliver_ooo(meta, result);
  }
  return result;
}

TcpReassembler::Result TcpReassembler::on_datagram(
    std::span<const std::uint8_t> payload, const SegmentMeta& meta) {
  Result result;
  if (payload.empty()) return result;
  if (!have_base_) have_base_ = true;
  deliver(payload, meta, result);
  return result;
}

std::vector<Chunk> TcpReassembler::flush(std::uint32_t error_bits) {
  std::vector<Chunk> out;
  if (mode_ == ReassemblyMode::kTcpStrict && !ooo_.empty()) {
    // Deliver whatever is buffered, flagging holes.
    SegmentMeta meta{};
    while (auto seg = ooo_.pop_front()) {
      if (seg->first > next_off_) {
        builder_.flag_error(kErrHole);
        next_off_ = seg->first;
      }
      std::span<const std::uint8_t> bytes(seg->second);
      if (seg->first < next_off_) {
        const std::uint64_t skip = next_off_ - seg->first;
        if (skip >= bytes.size()) continue;
        bytes = bytes.subspan(skip);
      }
      auto done = builder_.append(bytes, meta, next_off_);
      next_off_ += bytes.size();
      // scap-lint: allow(hot-alloc) flush path: completed-chunk handoff, runs at termination/flush-timeout not per packet (DESIGN.md §14 inventory)
      for (auto& c : done) out.push_back(std::move(c));
    }
  }
  if (error_bits) builder_.flag_error(error_bits);
  // scap-lint: allow(hot-alloc) flush path: final partial chunk handoff (DESIGN.md §14 inventory)
  if (auto last = builder_.flush()) out.push_back(std::move(*last));
  return out;
}

}  // namespace scap::kernel
