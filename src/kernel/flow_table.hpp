// Flow table: directional stream records with LRU-ordered inactivity expiry
// (paper §5.2).
//
// Lookups use a seeded hash (a random seed per table instance, so attackers
// cannot precompute bucket collisions). The access list the paper describes
// — active streams sorted by last access, newest first — is the intrusive
// LRU here: packet arrival moves the record to the front; expiry walks from
// the tail. When the record budget is exhausted, the policy from §6.4
// applies: the oldest stream is evicted so that newer streams can always be
// tracked (no static limit like Libnids/Stream5).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "base/hash.hpp"
#include "kernel/reassembly.hpp"
#include "kernel/stream.hpp"

namespace scap::kernel {

/// Kernel-side record for one stream direction (the paper's stream_t).
struct StreamRecord {
  StreamId id = kInvalidStreamId;
  FiveTuple tuple;
  Direction dir = Direction::kOrig;
  StreamId opposite = kInvalidStreamId;
  StreamStatus status = StreamStatus::kActive;
  HandshakeState handshake = HandshakeState::kNone;
  std::uint32_t error_bits = 0;
  StreamStats stats;
  StreamParams params;
  std::unique_ptr<TcpReassembler> reasm;

  bool cutoff_exceeded = false;
  bool discard_requested = false;  // scap_discard_stream()
  bool fdir_installed = false;
  Duration fdir_timeout = Duration::from_sec(0);

  // Memory accounting: the open chunk's allocated block.
  std::uint64_t chunk_addr = 0;
  std::uint32_t chunk_alloc = 0;
  // Accounting carried by a kept chunk (scap_keep_stream_chunk).
  std::uint32_t kept_alloc = 0;

  // Worker-side bookkeeping mirrored into snapshots.
  std::uint64_t chunks_delivered = 0;
  Duration processing_time = Duration(0);

  int core = 0;
  Timestamp created_at;
  Timestamp last_access;
  Timestamp last_flush;  // last data-event emission (flush timeout basis)

  // Intrusive LRU links (front = most recently touched).
  StreamRecord* lru_prev = nullptr;
  StreamRecord* lru_next = nullptr;
};

class FlowTable {
 public:
  /// `max_records`: record budget; 0 means unlimited. `seed` randomizes the
  /// hash (defaults to a fixed value for reproducible experiments).
  explicit FlowTable(std::size_t max_records = 0,
                     std::uint64_t seed = 0x5ca9'f10a'7ab1'e000ULL);

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;
  ~FlowTable();

  /// Find the record for a directional tuple, or nullptr.
  StreamRecord* find(const FiveTuple& tuple);

  /// Create a record for a tuple. If the budget is exhausted, the least
  /// recently used record is evicted first and handed to `on_evict`.
  /// Returns nullptr only when max_records == capacity 0 edge cases.
  StreamRecord* create(const FiveTuple& tuple, Timestamp now,
                       const std::function<void(StreamRecord&)>& on_evict);

  StreamRecord* by_id(StreamId id);

  /// Move to the front of the access list and update last_access.
  void touch(StreamRecord& rec, Timestamp now);

  /// Remove a record (termination). Invalidates the pointer.
  void remove(StreamRecord& rec);

  /// Invoke `on_expire` for every record idle since before its own
  /// inactivity timeout, oldest first, and remove it afterwards.
  void expire_idle(Timestamp now,
                   const std::function<void(StreamRecord&)>& on_expire);

  std::size_t size() const { return by_tuple_.size(); }
  std::uint64_t created_total() const { return created_total_; }
  std::uint64_t evicted_total() const { return evicted_total_; }

  /// Oldest record (tail of the access list), or nullptr.
  StreamRecord* oldest() { return lru_tail_; }

 private:
  struct TupleHash {
    std::uint64_t seed;
    std::size_t operator()(const FiveTuple& t) const {
      // Field-wise hashing: hashing the struct's raw bytes would include
      // indeterminate padding.
      std::uint64_t h = mix64(seed ^ t.src_ip);
      h = mix64(h ^ t.dst_ip);
      h = mix64(h ^ (static_cast<std::uint64_t>(t.src_port) << 32) ^
                (static_cast<std::uint64_t>(t.dst_port) << 16) ^ t.protocol);
      return h;
    }
  };

  void lru_unlink(StreamRecord& rec);
  void lru_push_front(StreamRecord& rec);

  std::size_t max_records_;
  StreamId next_id_ = 1;
  std::uint64_t created_total_ = 0;
  std::uint64_t evicted_total_ = 0;
  std::unordered_map<FiveTuple, std::unique_ptr<StreamRecord>, TupleHash>
      by_tuple_;
  std::unordered_map<StreamId, StreamRecord*> by_id_;
  StreamRecord* lru_head_ = nullptr;
  StreamRecord* lru_tail_ = nullptr;
};

}  // namespace scap::kernel
