// Flow table: directional stream records with LRU-ordered inactivity expiry
// (paper §5.2).
//
// Layout (fast path, see DESIGN.md "Fast-path memory layout"): a single
// flat, power-of-two, linear-probing hash table keyed by FiveTuple. Each
// slot caches the key's 64-bit seeded hash next to the record pointer, so
// probing touches one contiguous array and compares 8-byte hashes before
// ever dereferencing a record. Deletion is tombstone-free: the probe window
// is repaired by backward shifting, so load never degrades over time. A
// second flat table indexes records by StreamId. The records themselves
// live in a slab-backed RecordPool (record_pool.hpp) — pointers handed out
// by find()/create() remain stable across table growth and are invalidated
// only by remove()/eviction/expiry of that same record.
//
// Lookups use a seeded hash (per-table seed, plumbed from KernelConfig so
// benches can randomize it; attackers cannot precompute bucket collisions —
// the paper picks a random hash function at module-init time for the same
// reason). The access list the paper describes — active streams sorted by
// last access, newest first — is the intrusive LRU here: packet arrival
// moves the record to the front; expiry walks from the tail. When the
// record budget is exhausted, the policy from §6.4 applies: the oldest
// stream is evicted so that newer streams can always be tracked (no static
// limit like Libnids/Stream5).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/function_ref.hpp"
#include "base/hash.hpp"
#include "base/hotpath.hpp"
#include "kernel/reassembly.hpp"
#include "kernel/stream.hpp"

namespace scap::kernel {

/// Kernel-side record for one stream direction (the paper's stream_t).
struct StreamRecord {
  StreamId id = kInvalidStreamId;
  FiveTuple tuple;
  std::uint64_t tuple_hash = 0;  // seeded hash of `tuple`, cached at create
  Direction dir = Direction::kOrig;
  StreamId opposite = kInvalidStreamId;
  StreamStatus status = StreamStatus::kActive;
  HandshakeState handshake = HandshakeState::kNone;
  std::uint32_t error_bits = 0;
  StreamStats stats;
  StreamParams params;
  std::unique_ptr<TcpReassembler> reasm;

  bool cutoff_exceeded = false;
  bool discard_requested = false;  // scap_discard_stream()
  bool fdir_installed = false;
  Duration fdir_timeout = Duration::from_sec(0);

  // Memory accounting: the open chunk's allocated block.
  std::uint64_t chunk_addr = 0;
  std::uint32_t chunk_alloc = 0;
  // Accounting carried by a kept chunk (scap_keep_stream_chunk).
  std::uint32_t kept_alloc = 0;

  // Worker-side bookkeeping mirrored into snapshots.
  std::uint64_t chunks_delivered = 0;
  Duration processing_time = Duration(0);

  int core = 0;
  Timestamp created_at;
  Timestamp last_access;
  Timestamp last_flush;  // last data-event emission (flush timeout basis)

  // Intrusive LRU links (front = most recently touched).
  StreamRecord* lru_prev = nullptr;
  StreamRecord* lru_next = nullptr;
};

/// Snapshot of RecordPool occupancy (mirrored into KernelStats).
struct RecordPoolStats {
  std::uint64_t capacity = 0;   // records across all slabs
  std::uint64_t free = 0;       // records on the freelist
  std::uint64_t slabs = 0;
  std::uint64_t acquired_total = 0;
  std::uint64_t recycled_total = 0;  // acquires served by a reused record
  std::uint64_t acquire_failures = 0;  // injected allocation failures
};

class RecordPool;

class FlowTable {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x5ca9'f10a'7ab1'e000ULL;

  /// `max_records`: record budget; 0 means unlimited. `seed` randomizes the
  /// hash (defaults to a fixed value for reproducible experiments).
  explicit FlowTable(std::size_t max_records = 0,
                     std::uint64_t seed = kDefaultSeed);

  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;
  ~FlowTable();

  /// Find the record for a directional tuple, or nullptr.
  SCAP_HOT StreamRecord* find(const FiveTuple& tuple);

  /// Create a record for a tuple. If the budget is exhausted, the least
  /// recently used record is evicted first and handed to `on_evict`.
  /// Always returns a valid record: with max_records > 0 an eviction victim
  /// necessarily exists once the budget is reached, and with max_records ==
  /// 0 the table grows without bound. (Creating a tuple that is already
  /// present inserts a second record for it; callers are expected to
  /// find() first, as the kernel's lookup_or_create does.)
  StreamRecord* create(const FiveTuple& tuple, Timestamp now,
                       FunctionRef<void(StreamRecord&)> on_evict);

  StreamRecord* by_id(StreamId id);

  /// Move to the front of the access list and update last_access.
  SCAP_HOT void touch(StreamRecord& rec, Timestamp now);

  /// Remove a record (termination). Invalidates the pointer.
  void remove(StreamRecord& rec);

  /// Invoke `on_expire` for every record idle since before its own
  /// inactivity timeout, oldest first, and remove it afterwards.
  void expire_idle(Timestamp now, FunctionRef<void(StreamRecord&)> on_expire);

  std::size_t size() const { return size_; }
  std::uint64_t created_total() const { return created_total_; }
  std::uint64_t evicted_total() const { return evicted_total_; }

  /// Oldest record (tail of the access list), or nullptr.
  StreamRecord* oldest() { return lru_tail_; }

  /// Seeded hash of a tuple — the value cached in slots and records.
  SCAP_HOT std::uint64_t hash_of(const FiveTuple& t) const {
    // Field-wise hashing: hashing the struct's raw bytes would include
    // indeterminate padding.
    std::uint64_t h = mix64(seed_ ^ t.src_ip);
    h = mix64(h ^ t.dst_ip);
    h = mix64(h ^ (static_cast<std::uint64_t>(t.src_port) << 32) ^
              (static_cast<std::uint64_t>(t.dst_port) << 16) ^ t.protocol);
    return h;
  }

  /// Prefetch the probe window for a tuple hash (batched ingest runs this
  /// a couple of packets ahead of the lookup).
  SCAP_HOT void prefetch(std::uint64_t hash) const {
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(&slots_[hash & mask_]);
#else
    (void)hash;
#endif
  }

  RecordPoolStats pool_stats() const;

  /// Slots inspected by the most recent find() — the probe-length sample
  /// the tracer's flow_probe_len histogram records (DESIGN.md §10). A
  /// direct hit or an immediately-empty slot both count as 1.
  std::size_t last_probe_len() const { return last_probe_len_; }

 private:
  struct Slot {
    StreamRecord* rec = nullptr;  // nullptr = empty
    std::uint64_t hash = 0;
  };

  void lru_unlink(StreamRecord& rec);
  void lru_push_front(StreamRecord& rec);

  void insert_slot(StreamRecord* rec, std::uint64_t hash);
  void erase_tuple_slot(std::size_t i);
  void grow_tuple_table();
  void insert_id(StreamRecord* rec);
  void erase_id(StreamId id);
  void grow_id_table();

  std::size_t max_records_;
  std::uint64_t seed_;
  StreamId next_id_ = 1;
  std::uint64_t created_total_ = 0;
  std::uint64_t evicted_total_ = 0;
  std::size_t size_ = 0;
  std::size_t last_probe_len_ = 0;

  // Tuple-keyed open-addressing table (linear probe, backward-shift erase).
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;

  // StreamId-keyed open-addressing side index. Records are keyed by their
  // own `id` field; empty = nullptr.
  std::vector<StreamRecord*> id_slots_;
  std::size_t id_mask_ = 0;
  std::size_t id_size_ = 0;

  std::unique_ptr<RecordPool> pool_;
  StreamRecord* lru_head_ = nullptr;
  StreamRecord* lru_tail_ = nullptr;
};

}  // namespace scap::kernel
