// Stream-level types: the kernel-side equivalent of the paper's stream_t.
//
// Each direction of a transport-layer connection is a Stream with its own
// record, reassembly state, statistics, and per-stream parameters; the two
// directions are linked through `opposite` (paper §3.2). Records live in the
// flow table (src/kernel/flow_table.hpp) and are referenced by id everywhere
// else so that user-level views can outlive kernel-side eviction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/clock.hpp"
#include "packet/headers.hpp"

namespace scap::kernel {

using StreamId = std::uint64_t;
constexpr StreamId kInvalidStreamId = 0;

/// Reassembly fidelity (paper §2.3).
enum class ReassemblyMode : std::uint8_t {
  kTcpStrict,  // in-order delivery, buffers out-of-order segments
  kTcpFast,    // best-effort: writes through holes, flags errors
  kNone,       // no reassembly: every packet delivered as its own chunk
};

/// Target-based overlap policy (paper §2.3; Novak & Sturges' Stream5 model).
/// Determines which copy of a byte wins when TCP segments overlap.
enum class OverlapPolicy : std::uint8_t {
  kFirst,    // first copy received wins (Windows, AIX)
  kLast,     // most recent copy wins (Solaris-style "last")
  kBsd,      // old data wins unless the new segment starts strictly before
             // the existing region (FreeBSD / classic BSD stacks)
  kLinux,    // old data wins for aligned overlaps; a new segment that starts
             // before the existing region wins for the whole overlap region
};

enum class StreamStatus : std::uint8_t {
  kActive,
  kClosedFin,      // saw FIN from this direction (and ACK'd)
  kClosedRst,
  kClosedTimeout,  // inactivity expiry
};

/// Reassembly error flags (stream_t.error in the paper).
enum StreamError : std::uint32_t {
  kErrNone = 0,
  kErrIncompleteHandshake = 1u << 0,  // data before a full 3-way handshake
  kErrInvalidSeq = 1u << 1,           // sequence outside any sane window
  kErrHole = 1u << 2,                 // fast mode wrote through a gap
  kErrOverlapConflict = 1u << 3,      // overlapping bytes disagreed
  kErrBufferOverflow = 1u << 4,       // strict mode OOO buffer exhausted
};

enum class Direction : std::uint8_t { kOrig = 0, kReply = 1 };

/// Per-stream counters (stream_t.stats).
struct StreamStats {
  std::uint64_t pkts = 0;             // all packets observed for the stream
  std::uint64_t bytes = 0;            // all payload bytes observed
  std::uint64_t captured_pkts = 0;    // stored into a chunk
  std::uint64_t captured_bytes = 0;
  std::uint64_t discarded_pkts = 0;   // dropped on purpose (cutoff, dup)
  std::uint64_t discarded_bytes = 0;
  std::uint64_t dropped_pkts = 0;     // lost to overload (PPL / no memory)
  std::uint64_t dropped_bytes = 0;
  Timestamp first_packet;
  Timestamp last_packet;
};

/// Per-stream tunables (settable through the API; defaults inherited from
/// the capture configuration).
struct StreamParams {
  std::int64_t cutoff_bytes = -1;     // -1: unlimited
  int priority = 0;                   // higher value = higher priority
  std::uint32_t chunk_size = 16 * 1024;
  std::uint32_t overlap_size = 0;
  Duration flush_timeout = Duration::from_msec(0);  // 0: no timeout flush
  Duration inactivity_timeout = Duration::from_sec(10);
  ReassemblyMode mode = ReassemblyMode::kTcpFast;
  OverlapPolicy policy = OverlapPolicy::kBsd;
};

/// Records one packet inside a chunk so that the original packets can be
/// re-delivered in capture order (paper §5.7, scap_next_stream_packet).
struct PacketRecord {
  Timestamp ts;
  std::uint32_t chunk_offset;  // where this packet's payload starts
  std::uint32_t caplen;        // payload bytes stored
  std::uint32_t wirelen;       // payload bytes on the wire
  std::uint32_t seq;           // raw TCP sequence (0 for UDP)
  std::uint8_t tcp_flags;
};

/// TCP connection-establishment tracking.
enum class HandshakeState : std::uint8_t {
  kNone,        // nothing seen (stream created from mid-flow data)
  kSynSeen,
  kSynAckSeen,
  kEstablished,
};

}  // namespace scap::kernel
