#include "kernel/segment_store.hpp"

#include <algorithm>
#include <cstring>

#include "faultinject/faultinject.hpp"

namespace scap::kernel {
namespace {

/// Does the new segment [noff, nend) win over an existing one starting at
/// eoff under this policy?
bool new_wins(OverlapPolicy policy, std::uint64_t noff, std::uint64_t nend,
              std::uint64_t eoff, std::uint64_t eend) {
  switch (policy) {
    case OverlapPolicy::kFirst:
      return false;
    case OverlapPolicy::kLast:
      return true;
    case OverlapPolicy::kBsd:
      // Classic BSD: data arriving with an earlier starting sequence than
      // the buffered segment replaces the overlap; otherwise the buffered
      // (first) copy is kept.
      return noff < eoff;
    case OverlapPolicy::kLinux:
      // Linux keeps the buffered copy unless the new segment both starts
      // before and fully engulfs it.
      return noff < eoff && nend >= eend;
  }
  return false;
}

}  // namespace

SegmentStore::InsertResult SegmentStore::insert(
    std::uint64_t off, std::span<const std::uint8_t> data,
    OverlapPolicy policy) {
  InsertResult result;
  if (data.empty()) return result;
  // Injected buffer-allocation failure: report it before touching the store
  // so a failed insert never leaves partial state behind.
  if (faultinject::should_fail(faultinject::FaultPoint::kSegmentStoreInsert)) {
    result.failed = true;
    return result;
  }
  const std::uint64_t end = off + data.size();

  // Collect every existing segment overlapping [off, end).
  struct Old {
    std::uint64_t off;
    std::vector<std::uint8_t> bytes;
  };
  std::vector<Old> overlapping;
  auto it = segments_.lower_bound(off);
  if (it != segments_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second.size() > off) it = prev;
  }
  while (it != segments_.end() && it->first < end) {
    // scap-lint: allow(hot-alloc) OOO overlap resolution buffers segments, bounded by max_ooo_bytes / max_buffered_bytes (DESIGN.md §14 inventory)
    overlapping.push_back({it->first, std::move(it->second)});
    bytes_ -= overlapping.back().bytes.size();
    it = segments_.erase(it);
  }

  if (overlapping.empty()) {
    bytes_ += data.size();
    result.new_bytes = data.size();
    // scap-lint: allow(hot-alloc) OOO segment buffering is the strict-mode trade-off, bounded by max_ooo_bytes; ROADMAP item 2 worklist (DESIGN.md §14 inventory)
    segments_.emplace(off, std::vector<std::uint8_t>(data.begin(), data.end()));
    return result;
  }

  // Merged region is contiguous: every old segment intersects [off, end).
  const std::uint64_t lo = std::min(off, overlapping.front().off);
  std::uint64_t hi = end;
  for (const auto& o : overlapping) {
    hi = std::max(hi, o.off + o.bytes.size());
  }
  std::vector<std::uint8_t> merged(hi - lo, 0);
  std::vector<std::uint8_t> occupied(hi - lo, 0);

  // Lay down the old segments first.
  for (const auto& o : overlapping) {
    std::memcpy(merged.data() + (o.off - lo), o.bytes.data(), o.bytes.size());
    std::fill(occupied.begin() + static_cast<std::ptrdiff_t>(o.off - lo),
              occupied.begin() +
                  static_cast<std::ptrdiff_t>(o.off - lo + o.bytes.size()),
              1);
  }

  // New data fills gaps unconditionally.
  for (std::uint64_t pos = off; pos < end; ++pos) {
    if (!occupied[pos - lo]) {
      merged[pos - lo] = data[pos - off];
      occupied[pos - lo] = 1;
      ++result.new_bytes;
    }
  }

  // Resolve each overlap region per policy; detect disagreement.
  for (const auto& o : overlapping) {
    const std::uint64_t ov_lo = std::max(off, o.off);
    const std::uint64_t ov_hi = std::min(end, o.off + o.bytes.size());
    if (ov_lo >= ov_hi) continue;
    const std::size_t len = ov_hi - ov_lo;
    result.dup_bytes += len;
    if (std::memcmp(o.bytes.data() + (ov_lo - o.off), data.data() + (ov_lo - off),
                    len) != 0) {
      result.conflict = true;
    }
    if (new_wins(policy, off, end, o.off, o.off + o.bytes.size())) {
      std::memcpy(merged.data() + (ov_lo - lo), data.data() + (ov_lo - off), len);
    }
  }

  bytes_ += merged.size();
  // scap-lint: allow(hot-alloc) re-inserting the merged overlap run, bounded by max_ooo_bytes (DESIGN.md §14 inventory)
  segments_.emplace(lo, std::move(merged));
  return result;
}

std::optional<std::vector<std::uint8_t>> SegmentStore::pop_contiguous(
    std::uint64_t off) {
  auto it = segments_.find(off);
  if (it == segments_.end()) return std::nullopt;
  std::vector<std::uint8_t> run = std::move(it->second);
  bytes_ -= run.size();
  it = segments_.erase(it);
  // Absorb directly adjacent successors.
  while (it != segments_.end() && it->first == off + run.size()) {
    bytes_ -= it->second.size();
    // scap-lint: allow(hot-alloc) coalescing adjacent OOO runs on hole fill, bounded by max_ooo_bytes (DESIGN.md §14 inventory)
    run.insert(run.end(), it->second.begin(), it->second.end());
    it = segments_.erase(it);
  }
  return run;
}

std::optional<std::uint64_t> SegmentStore::min_offset() const {
  if (segments_.empty()) return std::nullopt;
  return segments_.begin()->first;
}

std::optional<std::pair<std::uint64_t, std::vector<std::uint8_t>>>
SegmentStore::pop_front() {
  if (segments_.empty()) return std::nullopt;
  auto it = segments_.begin();
  std::pair<std::uint64_t, std::vector<std::uint8_t>> out{
      it->first, std::move(it->second)};
  bytes_ -= out.second.size();
  segments_.erase(it);
  return out;
}

}  // namespace scap::kernel
