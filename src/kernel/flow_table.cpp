#include "kernel/flow_table.hpp"

#include "kernel/record_pool.hpp"

namespace scap::kernel {

namespace {
constexpr std::size_t kMinCapacity = 64;
// Grow when size exceeds 7/8 of capacity... kept stricter at 0.7 so the
// expected probe length stays short even right before a resize.
constexpr double kMaxLoad = 0.7;

std::size_t next_pow2(std::size_t n) {
  std::size_t c = kMinCapacity;
  while (c < n) c <<= 1;
  return c;
}
}  // namespace

FlowTable::FlowTable(std::size_t max_records, std::uint64_t seed)
    : max_records_(max_records),
      seed_(seed),
      pool_(std::make_unique<RecordPool>()) {
  // Pre-size for the record budget when one is configured, so a budgeted
  // table never rehashes on the hot path.
  const std::size_t want =
      max_records ? next_pow2(max_records * 2) : kMinCapacity;
  slots_.assign(want, Slot{});
  mask_ = want - 1;
  id_slots_.assign(want, nullptr);
  id_mask_ = want - 1;
}

FlowTable::~FlowTable() = default;

RecordPoolStats FlowTable::pool_stats() const { return pool_->stats(); }

StreamRecord* FlowTable::find(const FiveTuple& tuple) {
  const std::uint64_t h = hash_of(tuple);
  std::size_t i = h & mask_;
  std::size_t probes = 1;
  while (slots_[i].rec != nullptr) {
    if (slots_[i].hash == h && slots_[i].rec->tuple == tuple) {
      last_probe_len_ = probes;
      return slots_[i].rec;
    }
    i = (i + 1) & mask_;
    ++probes;
  }
  last_probe_len_ = probes;
  return nullptr;
}

void FlowTable::insert_slot(StreamRecord* rec, std::uint64_t hash) {
  std::size_t i = hash & mask_;
  while (slots_[i].rec != nullptr) i = (i + 1) & mask_;
  slots_[i].rec = rec;
  slots_[i].hash = hash;
}

void FlowTable::grow_tuple_table() {
  std::vector<Slot> old = std::move(slots_);
  const std::size_t cap = (mask_ + 1) * 2;
  // scap-lint: allow(hot-alloc) doubling table growth, amortized O(1) per create and absent at steady-state flow counts (DESIGN.md §14 inventory)
  slots_.assign(cap, Slot{});
  mask_ = cap - 1;
  for (const Slot& s : old) {
    if (s.rec != nullptr) insert_slot(s.rec, s.hash);
  }
}

void FlowTable::erase_tuple_slot(std::size_t i) {
  // Tombstone-free deletion: backward-shift every entry in the probe window
  // that can legally occupy the hole (its ideal slot lies at or before it).
  std::size_t hole = i;
  std::size_t k = i;
  while (true) {
    k = (k + 1) & mask_;
    if (slots_[k].rec == nullptr) break;
    const std::size_t ideal = slots_[k].hash & mask_;
    // `hole` is on k's probe path iff the cyclic distance ideal->hole does
    // not exceed the distance ideal->k.
    if (((hole - ideal) & mask_) <= ((k - ideal) & mask_)) {
      slots_[hole] = slots_[k];
      hole = k;
    }
  }
  slots_[hole] = Slot{};
}

void FlowTable::insert_id(StreamRecord* rec) {
  std::size_t i = mix64(rec->id) & id_mask_;
  while (id_slots_[i] != nullptr) i = (i + 1) & id_mask_;
  id_slots_[i] = rec;
}

void FlowTable::grow_id_table() {
  std::vector<StreamRecord*> old = std::move(id_slots_);
  const std::size_t cap = (id_mask_ + 1) * 2;
  // scap-lint: allow(hot-alloc) doubling table growth, amortized O(1) per create and absent at steady-state flow counts (DESIGN.md §14 inventory)
  id_slots_.assign(cap, nullptr);
  id_mask_ = cap - 1;
  for (StreamRecord* rec : old) {
    if (rec != nullptr) insert_id(rec);
  }
}

void FlowTable::erase_id(StreamId id) {
  std::size_t i = mix64(id) & id_mask_;
  while (id_slots_[i] != nullptr) {
    if (id_slots_[i]->id == id) break;
    i = (i + 1) & id_mask_;
  }
  if (id_slots_[i] == nullptr) return;  // not present
  std::size_t hole = i;
  std::size_t k = i;
  while (true) {
    k = (k + 1) & id_mask_;
    if (id_slots_[k] == nullptr) break;
    const std::size_t ideal = mix64(id_slots_[k]->id) & id_mask_;
    if (((hole - ideal) & id_mask_) <= ((k - ideal) & id_mask_)) {
      id_slots_[hole] = id_slots_[k];
      hole = k;
    }
  }
  id_slots_[hole] = nullptr;
  --id_size_;
}

StreamRecord* FlowTable::by_id(StreamId id) {
  if (id == kInvalidStreamId) return nullptr;
  std::size_t i = mix64(id) & id_mask_;
  while (id_slots_[i] != nullptr) {
    if (id_slots_[i]->id == id) return id_slots_[i];
    i = (i + 1) & id_mask_;
  }
  return nullptr;
}

void FlowTable::lru_unlink(StreamRecord& rec) {
  if (rec.lru_prev) {
    rec.lru_prev->lru_next = rec.lru_next;
  } else if (lru_head_ == &rec) {
    lru_head_ = rec.lru_next;
  }
  if (rec.lru_next) {
    rec.lru_next->lru_prev = rec.lru_prev;
  } else if (lru_tail_ == &rec) {
    lru_tail_ = rec.lru_prev;
  }
  rec.lru_prev = rec.lru_next = nullptr;
}

void FlowTable::lru_push_front(StreamRecord& rec) {
  rec.lru_prev = nullptr;
  rec.lru_next = lru_head_;
  if (lru_head_) lru_head_->lru_prev = &rec;
  lru_head_ = &rec;
  if (!lru_tail_) lru_tail_ = &rec;
}

StreamRecord* FlowTable::create(const FiveTuple& tuple, Timestamp now,
                                FunctionRef<void(StreamRecord&)> on_evict) {
  if (max_records_ > 0 && size_ >= max_records_) {
    // Budget exhausted: evict the oldest stream so the new one can always
    // be tracked (paper §6.4).
    StreamRecord* victim = lru_tail_;
    if (victim == nullptr) return nullptr;  // max_records > 0 && empty: never
    const StreamId victim_id = victim->id;
    if (on_evict) on_evict(*victim);
    // The eviction hook may remove the victim itself (the kernel's hook
    // terminates the stream, which does); only remove it if still tracked.
    if (by_id(victim_id) == victim) remove(*victim);
    ++evicted_total_;
  }
  if (static_cast<double>(size_ + 1) >
      kMaxLoad * static_cast<double>(mask_ + 1)) {
    grow_tuple_table();
  }
  if (static_cast<double>(id_size_ + 1) >
      kMaxLoad * static_cast<double>(id_mask_ + 1)) {
    grow_id_table();
  }

  StreamRecord* rec = pool_->acquire();
  // Record allocation failed (fault injection): the stream cannot be
  // tracked. The table is unchanged — only (possibly) grown above.
  if (rec == nullptr) return nullptr;
  rec->id = next_id_++;
  rec->tuple = tuple;
  rec->tuple_hash = hash_of(tuple);
  rec->created_at = now;
  rec->last_access = now;
  rec->last_flush = now;
  insert_slot(rec, rec->tuple_hash);
  insert_id(rec);
  ++id_size_;
  ++size_;
  lru_push_front(*rec);
  ++created_total_;
  return rec;
}

void FlowTable::touch(StreamRecord& rec, Timestamp now) {
  rec.last_access = now;
  if (lru_head_ == &rec) return;
  lru_unlink(rec);
  lru_push_front(rec);
}

void FlowTable::remove(StreamRecord& rec) {
  lru_unlink(rec);
  erase_id(rec.id);
  // Unlink the opposite direction's back-pointer.
  if (rec.opposite != kInvalidStreamId) {
    if (StreamRecord* opp = by_id(rec.opposite)) {
      opp->opposite = kInvalidStreamId;
    }
  }
  // Locate this record's slot (not merely a record with an equal tuple:
  // duplicates are possible, so compare the pointer).
  std::size_t i = rec.tuple_hash & mask_;
  while (slots_[i].rec != &rec) i = (i + 1) & mask_;
  erase_tuple_slot(i);
  --size_;
  pool_->release(&rec);
}

void FlowTable::expire_idle(Timestamp now,
                            FunctionRef<void(StreamRecord&)> on_expire) {
  while (lru_tail_ != nullptr) {
    StreamRecord* rec = lru_tail_;
    if (now - rec->last_access < rec->params.inactivity_timeout) break;
    if (on_expire) on_expire(*rec);
    remove(*rec);
  }
}

}  // namespace scap::kernel
