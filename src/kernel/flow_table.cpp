#include "kernel/flow_table.hpp"

namespace scap::kernel {

FlowTable::FlowTable(std::size_t max_records, std::uint64_t seed)
    : max_records_(max_records), by_tuple_(16, TupleHash{seed}) {}

FlowTable::~FlowTable() = default;

StreamRecord* FlowTable::find(const FiveTuple& tuple) {
  auto it = by_tuple_.find(tuple);
  return it == by_tuple_.end() ? nullptr : it->second.get();
}

void FlowTable::lru_unlink(StreamRecord& rec) {
  if (rec.lru_prev) {
    rec.lru_prev->lru_next = rec.lru_next;
  } else if (lru_head_ == &rec) {
    lru_head_ = rec.lru_next;
  }
  if (rec.lru_next) {
    rec.lru_next->lru_prev = rec.lru_prev;
  } else if (lru_tail_ == &rec) {
    lru_tail_ = rec.lru_prev;
  }
  rec.lru_prev = rec.lru_next = nullptr;
}

void FlowTable::lru_push_front(StreamRecord& rec) {
  rec.lru_prev = nullptr;
  rec.lru_next = lru_head_;
  if (lru_head_) lru_head_->lru_prev = &rec;
  lru_head_ = &rec;
  if (!lru_tail_) lru_tail_ = &rec;
}

StreamRecord* FlowTable::create(
    const FiveTuple& tuple, Timestamp now,
    const std::function<void(StreamRecord&)>& on_evict) {
  if (max_records_ > 0 && by_tuple_.size() >= max_records_) {
    // Budget exhausted: evict the oldest stream so the new one can always
    // be tracked (paper §6.4).
    StreamRecord* victim = lru_tail_;
    if (victim == nullptr) return nullptr;
    if (on_evict) on_evict(*victim);
    remove(*victim);
    ++evicted_total_;
  }
  auto rec = std::make_unique<StreamRecord>();
  StreamRecord* raw = rec.get();
  raw->id = next_id_++;
  raw->tuple = tuple;
  raw->created_at = now;
  raw->last_access = now;
  raw->last_flush = now;
  by_tuple_.emplace(tuple, std::move(rec));
  by_id_.emplace(raw->id, raw);
  lru_push_front(*raw);
  ++created_total_;
  return raw;
}

StreamRecord* FlowTable::by_id(StreamId id) {
  auto it = by_id_.find(id);
  return it == by_id_.end() ? nullptr : it->second;
}

void FlowTable::touch(StreamRecord& rec, Timestamp now) {
  rec.last_access = now;
  if (lru_head_ == &rec) return;
  lru_unlink(rec);
  lru_push_front(rec);
}

void FlowTable::remove(StreamRecord& rec) {
  lru_unlink(rec);
  by_id_.erase(rec.id);
  // Unlink the opposite direction's back-pointer.
  if (rec.opposite != kInvalidStreamId) {
    if (StreamRecord* opp = by_id(rec.opposite)) {
      opp->opposite = kInvalidStreamId;
    }
  }
  by_tuple_.erase(rec.tuple);  // destroys rec
}

void FlowTable::expire_idle(
    Timestamp now, const std::function<void(StreamRecord&)>& on_expire) {
  while (lru_tail_ != nullptr) {
    StreamRecord* rec = lru_tail_;
    if (now - rec->last_access < rec->params.inactivity_timeout) break;
    if (on_expire) on_expire(*rec);
    remove(*rec);
  }
}

}  // namespace scap::kernel
