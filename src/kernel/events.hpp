// Events flowing from the kernel datapath to user-level worker threads
// (paper §5.4).
//
// Each event carries a snapshot of the stream's user-visible state — the
// paper keeps a second stream_t instance updated right before enqueueing an
// event to avoid races between the kernel and the application; the snapshot
// plays that role here. Data events additionally carry the completed chunk.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "kernel/reassembly.hpp"
#include "kernel/stream.hpp"

namespace scap::kernel {

/// User-visible stream state (the application's copy of stream_t).
struct StreamSnapshot {
  StreamId id = kInvalidStreamId;
  FiveTuple tuple;
  Direction dir = Direction::kOrig;
  StreamId opposite = kInvalidStreamId;
  StreamStatus status = StreamStatus::kActive;
  bool cutoff_exceeded = false;
  std::uint32_t error_bits = 0;
  StreamStats stats;
  StreamParams params;
  std::uint64_t chunks_delivered = 0;
  Duration processing_time = Duration(0);
};

enum class EventType : std::uint8_t { kCreated, kData, kTerminated };

struct Event {
  EventType type = EventType::kData;
  StreamSnapshot stream;
  Chunk chunk;  // data events only
  /// Allocator accounting the consumer must release after processing.
  std::uint64_t chunk_addr = 0;
  std::uint32_t chunk_alloc = 0;
  /// Which attached applications should see this event (bit per app).
  std::uint64_t app_mask = ~0ULL;
};

/// Per-core event queue. Unbounded by design: the real backpressure is the
/// shared chunk buffer — when workers fall behind, chunk memory stays
/// allocated and PPL starts dropping packets, which is the paper's overload
/// behaviour.
class EventQueue {
 public:
  void push(Event ev) {
    // scap-lint: allow(hot-alloc) deque growth is amortized and reaches steady state once consumers keep up; ROADMAP item 2 worklist (DESIGN.md §14 inventory)
    queue_.push_back(std::move(ev));
    if (queue_.size() > high_water_) high_water_ = queue_.size();
    ++pushed_;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

  Event pop() {
    Event ev = std::move(queue_.front());
    queue_.pop_front();
    return ev;
  }

  std::uint64_t pushed() const { return pushed_; }
  std::size_t high_water() const { return high_water_; }

 private:
  std::deque<Event> queue_;
  std::uint64_t pushed_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace scap::kernel
