#include "kernel/record_pool.hpp"

#include "faultinject/faultinject.hpp"

namespace scap::kernel {

RecordPool::RecordPool(std::size_t slab_records)
    : slab_records_(slab_records ? slab_records : 1) {
  grow();
}

void RecordPool::grow() {
  // scap-lint: allow(hot-alloc) slab growth: one allocation per slab_records new streams, zero once the pool covers the working set (DESIGN.md §14 inventory)
  auto slab = std::make_unique<StreamRecord[]>(slab_records_);
  // Reserve for the full pool so release() never reallocates the freelist,
  // even if every record comes back at once.
  // scap-lint: allow(hot-alloc) freelist reserve rides the amortized slab growth above
  free_.reserve((slabs_.size() + 1) * slab_records_);
  // Hand out low addresses first (freelist is popped from the back).
  for (std::size_t i = slab_records_; i-- > 0;) {
    // scap-lint: allow(hot-alloc) within reserved capacity (the reserve above covers the full pool)
    free_.push_back(&slab[i]);
  }
  // scap-lint: allow(hot-alloc) slab bookkeeping rides the amortized slab growth
  slabs_.push_back(std::move(slab));
}

StreamRecord* RecordPool::acquire() {
  // Injected slab-allocation failure (models a failed kmalloc of a new
  // slab): callers must treat nullptr as "stream cannot be tracked".
  if (faultinject::should_fail(faultinject::FaultPoint::kRecordPoolAcquire)) {
    ++acquire_failures_;
    return nullptr;
  }
  if (free_.empty()) grow();
  StreamRecord* rec = free_.back();
  free_.pop_back();
  ++acquired_total_;
  if (rec->reasm) ++recycled_total_;
  // Reset every field to its default, but keep the recycled reassembler
  // (with its grown internal buffers) for the caller to reset() and reuse.
  std::unique_ptr<TcpReassembler> reasm = std::move(rec->reasm);
  *rec = StreamRecord{};
  rec->reasm = std::move(reasm);
  return rec;
}

// scap-lint: allow(hot-alloc) push_back within reserved capacity: grow() reserves the full pool size up front
void RecordPool::release(StreamRecord* rec) { free_.push_back(rec); }

RecordPoolStats RecordPool::stats() const {
  RecordPoolStats s;
  s.capacity = slabs_.size() * slab_records_;
  s.free = free_.size();
  s.slabs = slabs_.size();
  s.acquired_total = acquired_total_;
  s.recycled_total = recycled_total_;
  s.acquire_failures = acquire_failures_;
  return s;
}

}  // namespace scap::kernel
