#include "kernel/record_pool.hpp"

#include "faultinject/faultinject.hpp"

namespace scap::kernel {

RecordPool::RecordPool(std::size_t slab_records)
    : slab_records_(slab_records ? slab_records : 1) {
  grow();
}

void RecordPool::grow() {
  // scap-lint: allow(hot-alloc) slab growth: one allocation per slab_records new streams, zero once the pool covers the working set (DESIGN.md §14 inventory)
  auto slab = std::make_unique<StreamRecord[]>(slab_records_);
  // Size the freelist backing store for the full pool up front, so the
  // refill below and release() are plain index assignments — the freelist
  // itself never performs a growth call on the per-stream path.
  // scap-lint: allow(hot-alloc) freelist resize rides the amortized slab growth above
  free_.resize((slabs_.size() + 1) * slab_records_);
  // Hand out low addresses first (the live stack is popped from the top).
  for (std::size_t i = slab_records_; i-- > 0;) {
    free_[free_count_++] = &slab[i];
  }
  // scap-lint: allow(hot-alloc) slab bookkeeping rides the amortized slab growth
  slabs_.push_back(std::move(slab));
}

StreamRecord* RecordPool::acquire() {
  // Injected slab-allocation failure (models a failed kmalloc of a new
  // slab): callers must treat nullptr as "stream cannot be tracked".
  if (faultinject::should_fail(faultinject::FaultPoint::kRecordPoolAcquire)) {
    ++acquire_failures_;
    return nullptr;
  }
  if (free_count_ == 0) grow();
  StreamRecord* rec = free_[--free_count_];
  ++acquired_total_;
  if (rec->reasm) ++recycled_total_;
  // Reset every field to its default, but keep the recycled reassembler
  // (with its grown internal buffers) for the caller to reset() and reuse.
  std::unique_ptr<TcpReassembler> reasm = std::move(rec->reasm);
  *rec = StreamRecord{};
  rec->reasm = std::move(reasm);
  return rec;
}

// Index assignment into storage grow() already sized for the full pool:
// a release can never outrun the capacity it was acquired from.
void RecordPool::release(StreamRecord* rec) { free_[free_count_++] = rec; }

RecordPoolStats RecordPool::stats() const {
  RecordPoolStats s;
  s.capacity = slabs_.size() * slab_records_;
  s.free = free_count_;
  s.slabs = slabs_.size();
  s.acquired_total = acquired_total_;
  s.recycled_total = recycled_total_;
  s.acquire_failures = acquire_failures_;
  return s;
}

}  // namespace scap::kernel
