// Chunk building and TCP stream reassembly (paper §2.3, §5.2).
//
// The reassembler turns a directional sequence of TCP segments into
// contiguous stream chunks:
//   - SCAP_TCP_FAST: best-effort. Data is written as it arrives; holes from
//     lost segments are skipped and flagged (kErrHole) instead of stalling
//     the stream — the overload-resilient mode the paper evaluates with.
//   - SCAP_TCP_STRICT: in-order delivery following the robust-reassembly
//     guidelines. Out-of-order segments are buffered in a SegmentStore and
//     released when the hole before them fills; overlap resolution follows
//     the stream's target-based OverlapPolicy. A bounded buffer protects
//     against adversarial hole-floods: on overflow the engine degrades to
//     best-effort delivery and flags kErrBufferOverflow.
//
// Chunks carry optional per-packet records so the original packets can be
// re-delivered in capture order (paper §5.7).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "base/hotpath.hpp"
#include "kernel/segment_store.hpp"
#include "kernel/stream.hpp"

namespace scap::kernel {

/// A contiguous piece of reassembled stream data, ready for delivery.
struct Chunk {
  std::vector<std::uint8_t> data;
  /// Stream offset of data[0] — including any overlap prefix repeated from
  /// the previous chunk.
  std::uint64_t stream_offset = 0;
  /// Leading bytes repeated from the previous chunk (pattern continuity).
  std::uint32_t overlap_len = 0;
  /// StreamError bits raised while assembling this chunk.
  std::uint32_t errors = 0;
  /// Arrival time of the first segment that contributed new bytes — the
  /// start of the chunk-latency interval the tracer measures (DESIGN.md
  /// §10); delivery time minus first_ts is the paper's per-chunk latency.
  Timestamp first_ts;
  std::vector<PacketRecord> packets;
};

/// Per-packet metadata threaded through to PacketRecords.
struct SegmentMeta {
  Timestamp ts;
  std::uint32_t seq_raw = 0;
  std::uint8_t tcp_flags = 0;
  std::uint32_t wire_payload = 0;
};

/// Accumulates delivered bytes into fixed-size chunks with overlap carry.
class ChunkBuilder {
 public:
  ChunkBuilder(std::uint32_t chunk_size, std::uint32_t overlap_size,
               bool record_packets);

  /// Reconfigure for a fresh stream, dropping all buffered state but
  /// keeping the current chunk's grown capacity (record-pool recycling).
  void reset(std::uint32_t chunk_size, std::uint32_t overlap_size,
             bool record_packets);

  /// Append delivered bytes; returns any chunks that filled up.
  std::vector<Chunk> append(std::span<const std::uint8_t> data,
                            const SegmentMeta& meta, std::uint64_t stream_off);

  /// Raise error bits on the chunk currently being built.
  void flag_error(std::uint32_t bits) { pending_errors_ |= bits; }

  /// Emit the current partial chunk (flush timeout, cutoff, termination).
  /// Returns nullopt when nothing is buffered.
  std::optional<Chunk> flush();

  /// Re-install a delivered chunk in front of future data
  /// (scap_keep_stream_chunk): the next completed chunk will contain it.
  void retain(Chunk&& kept);

  std::uint32_t buffered_len() const {
    return static_cast<std::uint32_t>(current_.data.size());
  }
  bool has_data() const { return !current_.data.empty() || retained_.has_value(); }
  std::uint32_t chunk_size() const { return chunk_size_; }
  void set_chunk_size(std::uint32_t s) { chunk_size_ = s ? s : 1; }
  void set_overlap_size(std::uint32_t s) { overlap_size_ = s; }

 private:
  Chunk take_current();
  void start_next(const Chunk& completed);

  std::uint32_t chunk_size_;
  std::uint32_t overlap_size_;
  bool record_packets_;
  Chunk current_;
  bool current_started_ = false;
  std::uint32_t pending_errors_ = 0;
  std::optional<Chunk> retained_;
};

/// One direction of a TCP (or UDP) stream.
class TcpReassembler {
 public:
  TcpReassembler(const StreamParams& params, bool record_packets,
                 std::uint64_t max_ooo_bytes = 256 * 1024);

  /// Reinitialize for a fresh stream (record-pool recycling): equivalent to
  /// destroying and reconstructing, but reuses grown internal buffers so
  /// steady-state stream churn allocates nothing.
  void reset(const StreamParams& params, bool record_packets,
             std::uint64_t max_ooo_bytes = 256 * 1024);

  struct Result {
    std::vector<Chunk> completed;
    std::uint64_t accepted_bytes = 0;  // written to a chunk or buffered
    std::uint64_t dup_bytes = 0;       // duplicate / overlap-losing bytes
    std::uint32_t errors = 0;          // error bits raised by this segment
    bool alloc_failed = false;         // segment lost to a failed allocation
  };

  /// Record the SYN's ISN: stream data starts at ISN+1.
  void on_syn(std::uint32_t isn);

  /// Process one data segment (TCP path).
  SCAP_HOT Result on_data(std::uint32_t seq,
                          std::span<const std::uint8_t> payload,
                          const SegmentMeta& meta);

  /// Process sequenced-less data (UDP path): straight append.
  SCAP_HOT Result on_datagram(std::span<const std::uint8_t> payload,
                              const SegmentMeta& meta);

  /// Flush buffered out-of-order data (strict mode) and the partial chunk.
  /// `error_bits` is OR-ed into the final chunk (e.g. at termination).
  /// May return multiple chunks when the out-of-order buffer held more than
  /// one chunk's worth of data.
  std::vector<Chunk> flush(std::uint32_t error_bits = 0);

  /// Highest stream offset delivered or skipped so far — the stream "size"
  /// used for cutoff decisions.
  std::uint64_t stream_offset() const { return next_off_; }

  /// Stream offset a raw TCP sequence number maps to (for PPL / cutoff
  /// decisions before reassembly). Returns nullopt before any base is known.
  std::optional<std::uint64_t> offset_of(std::uint32_t seq) const;

  ChunkBuilder& builder() { return builder_; }
  std::uint64_t ooo_buffered() const { return ooo_.buffered_bytes(); }

 private:
  void deliver(std::span<const std::uint8_t> data, const SegmentMeta& meta,
               Result& result);
  void drain_ooo(const SegmentMeta& meta, Result& result);
  void force_deliver_ooo(const SegmentMeta& meta, Result& result);

  ReassemblyMode mode_;
  OverlapPolicy policy_;
  std::uint64_t max_ooo_bytes_;
  ChunkBuilder builder_;
  SegmentStore ooo_;
  bool have_base_ = false;
  std::uint32_t base_raw_ = 0;  // raw seq of stream offset 0
  std::uint64_t next_off_ = 0;  // next expected stream offset
};

}  // namespace scap::kernel
