// Stream-buffer memory accounting (paper §5.3).
//
// The real Scap maps one large kernel buffer into user space and carves
// per-stream chunk blocks out of it with a custom allocator. Here the chunk
// *bytes* live in ordinary vectors owned by the streams/events, while this
// class provides (a) capacity accounting over the configured buffer size —
// the quantity PPL watches — and (b) stable virtual addresses for each
// block, which the cache-locality experiment replays through the cache
// model. Addresses are recycled through segregated per-size free lists, the
// behaviour of a real slab-style allocator.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>

namespace scap::kernel {

class ChunkAllocator {
 public:
  explicit ChunkAllocator(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Reserve `size` bytes; returns the block's virtual address, or nullopt
  /// when the buffer is exhausted.
  std::optional<std::uint64_t> allocate(std::uint32_t size);

  /// Reserve `size` bytes even when it overshoots capacity. Used for bytes
  /// that are already physically written (e.g. the tail of a packet that
  /// crossed a chunk boundary); PPL keeps the overshoot bounded to one
  /// chunk per stream.
  std::uint64_t allocate_forced(std::uint32_t size);

  /// Return a block. Address must come from allocate() with the same size.
  void release(std::uint64_t addr, std::uint32_t size);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  double used_fraction() const {
    return capacity_ ? static_cast<double>(used_) / static_cast<double>(capacity_) : 1.0;
  }

  std::uint64_t allocations() const { return allocations_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t high_water() const { return high_water_; }

 private:
  /// Distinct block sizes a run can recycle. Sizes are config-derived
  /// (chunk size plus the handful of partial-chunk tails PPL permits), so
  /// a small fixed table covers every real workload; past it, addresses of
  /// that size are simply not recycled (bump allocation still serves them)
  /// rather than growing the table on the per-chunk path.
  static constexpr std::size_t kMaxSizeClasses = 32;

  /// Recycled addresses retained per size class. Past this depth a
  /// released address is simply dropped and the size is served from the
  /// bump cursor again — addresses are virtual, so the only cost is a
  /// sparser layout for the cache-locality model, never real memory.
  static constexpr std::size_t kRecycleDepth = 128;

  struct SizeClass {
    std::uint32_t size = 0;
    std::size_t naddrs = 0;  // live entries in addrs (LIFO stack)
    std::array<std::uint64_t, kRecycleDepth> addrs;
  };

  /// Size class for `size`, creating it in the fixed table if room
  /// remains; nullptr once the table is full (no recycling then). The
  /// segregated classes live in a size-sorted flat array (binary search):
  /// allocation is a per-chunk operation, and a flat array beats hashing
  /// both in lookup cost and in determinism (no bucket-order dependence).
  SizeClass* free_list(std::uint32_t size);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t bump_ = 0;  // next fresh address
  std::uint64_t allocations_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t high_water_ = 0;
  std::array<SizeClass, kMaxSizeClasses> free_lists_;  // sorted by size
  std::size_t num_size_classes_ = 0;
};

}  // namespace scap::kernel
