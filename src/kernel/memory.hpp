// Stream-buffer memory accounting (paper §5.3).
//
// The real Scap maps one large kernel buffer into user space and carves
// per-stream chunk blocks out of it with a custom allocator. Here the chunk
// *bytes* live in ordinary vectors owned by the streams/events, while this
// class provides (a) capacity accounting over the configured buffer size —
// the quantity PPL watches — and (b) stable virtual addresses for each
// block, which the cache-locality experiment replays through the cache
// model. Addresses are recycled through segregated per-size free lists, the
// behaviour of a real slab-style allocator.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

namespace scap::kernel {

class ChunkAllocator {
 public:
  explicit ChunkAllocator(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// Reserve `size` bytes; returns the block's virtual address, or nullopt
  /// when the buffer is exhausted.
  std::optional<std::uint64_t> allocate(std::uint32_t size);

  /// Reserve `size` bytes even when it overshoots capacity. Used for bytes
  /// that are already physically written (e.g. the tail of a packet that
  /// crossed a chunk boundary); PPL keeps the overshoot bounded to one
  /// chunk per stream.
  std::uint64_t allocate_forced(std::uint32_t size);

  /// Return a block. Address must come from allocate() with the same size.
  void release(std::uint64_t addr, std::uint32_t size);

  std::uint64_t capacity() const { return capacity_; }
  std::uint64_t used() const { return used_; }
  double used_fraction() const {
    return capacity_ ? static_cast<double>(used_) / static_cast<double>(capacity_) : 1.0;
  }

  std::uint64_t allocations() const { return allocations_; }
  std::uint64_t failures() const { return failures_; }
  std::uint64_t high_water() const { return high_water_; }

 private:
  /// Free list for one block size, or a fresh one. The segregated lists
  /// live in a size-sorted flat vector (binary search): allocation is a
  /// per-chunk operation, and a flat array beats hashing both in lookup
  /// cost and in determinism (no bucket-order dependence).
  std::vector<std::uint64_t>& free_list(std::uint32_t size);

  std::uint64_t capacity_;
  std::uint64_t used_ = 0;
  std::uint64_t bump_ = 0;  // next fresh address
  std::uint64_t allocations_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t high_water_ = 0;
  std::vector<std::pair<std::uint32_t, std::vector<std::uint64_t>>>
      free_lists_;  // sorted by block size
};

}  // namespace scap::kernel
