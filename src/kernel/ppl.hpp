// Prioritized Packet Loss (paper §2.2, analyzed in §7).
//
// Memory admission control for data packets under overload. While used
// memory stays below base_threshold nothing is dropped. Above it, the
// remaining memory is divided into n regions (n = number of priority
// levels) by n+1 equally spaced watermarks, watermark_0 = base_threshold
// ... watermark_n = memory_size. A packet of priority level i (1-based,
// 1 = lowest) is:
//   - dropped outright when used memory exceeds watermark_i;
//   - subjected to the optional overload_cutoff when used memory lies in
//     (watermark_{i-1}, watermark_i]: bytes located beyond overload_cutoff
//     in their stream are dropped;
//   - admitted otherwise.
// TCP control packets (SYN/FIN/RST) are always admitted: they carry no
// payload, and the kernel needs them for stream lifecycle tracking
// (paper §6.5.1).
#pragma once

#include <cstdint>

namespace scap::kernel {

struct PplConfig {
  double base_threshold = 0.5;      // fraction of memory free of any drops
  int priority_levels = 1;          // n
  std::int64_t overload_cutoff = -1;  // bytes; -1 disables
};

enum class PplVerdict : std::uint8_t {
  kAdmit,
  kDropPriority,   // used memory above this priority's watermark
  kDropOverload,   // in the overload band and beyond overload_cutoff
};

class Ppl {
 public:
  explicit Ppl(PplConfig config) : config_(sanitize(config)) {}

  /// Decide for a data packet.
  /// `used_fraction`: current memory occupancy in [0,1].
  /// `priority`: 0-based level, 0 = lowest (mapped to the 1-based levels of
  ///             the analysis).
  /// `stream_offset`: byte offset of this packet's payload in its stream.
  PplVerdict admit(double used_fraction, int priority,
                   std::uint64_t stream_offset) const;

  /// Watermark for a 0-based priority level, as a memory fraction.
  double watermark(int priority) const;

  const PplConfig& config() const { return config_; }

 private:
  static PplConfig sanitize(PplConfig c) {
    if (c.priority_levels < 1) c.priority_levels = 1;
    if (c.base_threshold < 0) c.base_threshold = 0;
    if (c.base_threshold > 1) c.base_threshold = 1;
    return c;
  }

  PplConfig config_;
};

}  // namespace scap::kernel
