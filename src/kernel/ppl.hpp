// Prioritized Packet Loss (paper §2.2, analyzed in §7).
//
// Memory admission control for data packets under overload. While used
// memory stays below base_threshold nothing is dropped. Above it, the
// remaining memory is divided into n regions (n = number of priority
// levels) by n+1 equally spaced watermarks, watermark_0 = base_threshold
// ... watermark_n = memory_size. A packet of priority level i (1-based,
// 1 = lowest) is:
//   - dropped outright when used memory exceeds watermark_i;
//   - subjected to the optional overload_cutoff when used memory lies in
//     (watermark_{i-1}, watermark_i]: bytes located beyond overload_cutoff
//     in their stream are dropped;
//   - admitted otherwise.
// TCP control packets (SYN/FIN/RST) are always admitted: they carry no
// payload, and the kernel needs them for stream lifecycle tracking
// (paper §6.5.1).
//
// Adaptive overload control (DESIGN.md §8). The paper uses a static
// overload_cutoff; a fixed value either over-drops at light load or
// under-protects at heavy load, and reacting to the instantaneous occupancy
// oscillates (Braun et al.). When `adaptive` is on, the controller tracks an
// EWMA of memory pressure and drives the *effective* cutoff through a
// hysteresis state machine:
//   - EWMA >= enter_fraction: overload. The cutoff engages at start_cutoff
//     and tightens multiplicatively (tighten_factor, floored at min_cutoff)
//     while pressure stays at or above the enter threshold.
//   - EWMA <= exit_fraction: the cutoff relaxes multiplicatively
//     (relax_factor); once it would exceed start_cutoff the controller
//     leaves overload and the static overload_cutoff applies again.
//   - In between (the hold band) the cutoff is frozen — the hysteresis that
//     prevents enter/exit flapping around a single threshold.
// Only the in-band cutoff value ever changes; the watermark ladder is
// untouched, so the paper's invariant — a higher-priority packet is never
// dropped while a lower watermark is uncrossed — holds under adaptation.
#pragma once

#include <cstdint>

#include "base/clock.hpp"
#include "base/hotpath.hpp"
#include "trace/trace.hpp"

namespace scap::kernel {

struct PplConfig {
  double base_threshold = 0.5;      // fraction of memory free of any drops
  int priority_levels = 1;          // n
  std::int64_t overload_cutoff = -1;  // bytes; -1 disables

  // --- adaptive overload control ------------------------------------------
  bool adaptive = false;         // enable the EWMA + hysteresis controller
  double ewma_alpha = 0.3;       // weight of the newest pressure sample
  double enter_fraction = 0.85;  // EWMA at/above this: overload, tighten
  double exit_fraction = 0.70;   // EWMA at/below this: relax toward exit
  std::int64_t start_cutoff = 256 * 1024;  // cutoff applied on entry, bytes
  std::int64_t min_cutoff = 4 * 1024;      // tightening floor, bytes
  double tighten_factor = 0.5;   // cutoff multiplier per overloaded sample
  double relax_factor = 2.0;     // cutoff multiplier per relaxed sample
};

/// Observable state of the adaptive controller (mirrored into KernelStats).
struct PplControllerState {
  double pressure_ewma = 0.0;
  bool overload = false;               // inside the hysteresis overload state
  std::int64_t effective_cutoff = -1;  // cutoff applied while overloaded
  std::uint64_t overload_entries = 0;
  std::uint64_t overload_exits = 0;
  std::uint64_t tightenings = 0;
  std::uint64_t relaxations = 0;
};

enum class PplVerdict : std::uint8_t {
  kAdmit,
  kDropPriority,   // used memory above this priority's watermark
  kDropOverload,   // in the overload band and beyond overload_cutoff
};

class Ppl {
 public:
  explicit Ppl(PplConfig config) : config_(sanitize(config)) {}

  /// Decide for a data packet.
  /// `used_fraction`: current memory occupancy in [0,1].
  /// `priority`: 0-based level, 0 = lowest (mapped to the 1-based levels of
  ///             the analysis).
  /// `stream_offset`: byte offset of this packet's payload in its stream.
  SCAP_HOT PplVerdict admit(double used_fraction, int priority,
                            std::uint64_t stream_offset) const;

  /// Feed one memory-pressure sample to the adaptive controller (no-op when
  /// `adaptive` is off, except for watermark-crossing trace events). Called
  /// from the kernel's periodic maintenance pass, so the cadence is the
  /// deterministic expiry interval, not packet rate. `now` timestamps the
  /// trace events this sample produces.
  void observe(double used_fraction, Timestamp now = Timestamp());

  /// Attach the event tracer (kPplWatermark on base-threshold crossings,
  /// kPplCutoffChange on overload transitions and cutoff moves).
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// The overload cutoff admit() currently applies: the adapted value while
  /// the controller is in overload, the static configuration otherwise
  /// (-1 = no cutoff).
  std::int64_t effective_cutoff() const {
    return config_.adaptive && state_.overload ? state_.effective_cutoff
                                               : config_.overload_cutoff;
  }

  /// Watermark for a 0-based priority level, as a memory fraction.
  double watermark(int priority) const;

  const PplConfig& config() const { return config_; }
  const PplControllerState& controller() const { return state_; }

 private:
  static PplConfig sanitize(PplConfig c) {
    if (c.priority_levels < 1) c.priority_levels = 1;
    if (c.base_threshold < 0) c.base_threshold = 0;
    if (c.base_threshold > 1) c.base_threshold = 1;
    if (c.ewma_alpha <= 0) c.ewma_alpha = 0.3;
    if (c.ewma_alpha > 1) c.ewma_alpha = 1;
    if (c.enter_fraction < 0) c.enter_fraction = 0;
    if (c.enter_fraction > 1) c.enter_fraction = 1;
    if (c.exit_fraction < 0) c.exit_fraction = 0;
    if (c.exit_fraction > c.enter_fraction) c.exit_fraction = c.enter_fraction;
    if (c.min_cutoff < 1) c.min_cutoff = 1;
    if (c.start_cutoff < c.min_cutoff) c.start_cutoff = c.min_cutoff;
    if (!(c.tighten_factor > 0) || c.tighten_factor >= 1) {
      c.tighten_factor = 0.5;
    }
    if (c.relax_factor <= 1) c.relax_factor = 2.0;
    return c;
  }

  PplConfig config_;
  PplControllerState state_;
  trace::Tracer* tracer_ = nullptr;
  double prev_sample_ = 0.0;  // last raw occupancy sample (crossing detection)
};

}  // namespace scap::kernel
