#include "kernel/defrag.hpp"

#include <cstring>

#include "base/bytes.hpp"
#include "packet/checksum.hpp"
#include "packet/headers.hpp"

namespace scap::kernel {

IpDefragmenter::IpDefragmenter() : IpDefragmenter(Config{}) {}

std::optional<Packet> IpDefragmenter::try_complete(const Key& key,
                                                   PendingDatagram& dg,
                                                   Timestamp ts) {
  if (!dg.total_len.has_value() || dg.ip_header.empty()) return std::nullopt;
  const std::uint64_t before = dg.store.buffered_bytes();
  auto run = dg.store.pop_contiguous(0);
  if (!run.has_value()) return std::nullopt;
  if (run->size() < *dg.total_len) {
    // Contiguous prefix but the tail is still missing: put it back. If the
    // re-insert hits an injected allocation failure the prefix is lost like
    // any other dropped fragment; fix the byte accounting to match.
    auto back = dg.store.insert(0, *run, config_.policy);
    if (back.failed) {
      buffered_bytes_ -=
          std::min<std::uint64_t>(buffered_bytes_, run->size());
      ++stats_.fragments_dropped_alloc;
    }
    return std::nullopt;
  }
  run->resize(*dg.total_len);  // clip any overshoot from overlapping tails
  const std::uint64_t freed = before - dg.store.buffered_bytes();
  buffered_bytes_ -= std::min<std::uint64_t>(buffered_bytes_, freed);

  // Rebuild an unfragmented frame: Ethernet + original IP header (flags and
  // offset cleared, total_len fixed up) + reassembled payload.
  const std::size_t ip_hlen = dg.ip_header.size();
  std::vector<std::uint8_t> frame(kEthHeaderLen + ip_hlen + run->size());
  EthHeader eth{};
  eth.ether_type = kEtherTypeIpv4;
  write_eth(frame, eth);
  std::memcpy(frame.data() + kEthHeaderLen, dg.ip_header.data(), ip_hlen);
  std::uint8_t* ip = frame.data() + kEthHeaderLen;
  store_be16(ip + 2, static_cast<std::uint16_t>(ip_hlen + run->size()));
  store_be16(ip + 6, 0);   // clear MF + fragment offset
  store_be16(ip + 10, 0);  // recompute checksum
  const std::uint16_t csum = internet_checksum(
      std::span<const std::uint8_t>(ip, ip_hlen));
  ip[10] = static_cast<std::uint8_t>(csum >> 8);
  ip[11] = static_cast<std::uint8_t>(csum & 0xff);
  std::memcpy(frame.data() + kEthHeaderLen + ip_hlen, run->data(),
              run->size());

  (void)key;
  ++stats_.datagrams_completed;
  return Packet::from_bytes(frame, ts);
}

std::optional<Packet> IpDefragmenter::feed(const Packet& pkt, Timestamp now) {
  if (!pkt.valid() || !pkt.is_ip_fragment()) return pkt;
  ++stats_.fragments_seen;

  const auto frame = pkt.frame();
  const auto ip = parse_ipv4(frame.subspan(kEthHeaderLen));
  if (!ip) return std::nullopt;
  const std::size_t ip_hlen = ip->header_len();
  const std::size_t frag_data_off = kEthHeaderLen + ip_hlen;
  if (frame.size() <= frag_data_off) return std::nullopt;
  const auto data = frame.subspan(frag_data_off);
  const std::uint32_t frag_off = ip->fragment_offset_bytes();

  if (frag_off + data.size() > config_.max_datagram_bytes) {
    ++stats_.fragments_dropped_overload;
    return std::nullopt;  // teardrop-style overflow attempt
  }
  if (buffered_bytes_ + data.size() > config_.max_buffered_bytes) {
    ++stats_.fragments_dropped_overload;
    return std::nullopt;
  }

  const Key key{ip->src_ip, ip->dst_ip, ip->id, ip->protocol};
  // scap-lint: allow(hot-alloc) fragment buffering allocates by design, bounded by max_buffered_bytes (DESIGN.md §14 inventory)
  PendingDatagram& dg = pending_[key];
  if (dg.store.empty() && !dg.total_len.has_value()) {
    dg.first_seen = now;
  }
  if (frag_off == 0) {
    // scap-lint: allow(hot-alloc) copies the offset-0 IP header once per datagram, <= 60 bytes (DESIGN.md §14 inventory)
    dg.ip_header.assign(frame.begin() + kEthHeaderLen,
                        frame.begin() + static_cast<std::ptrdiff_t>(
                                            kEthHeaderLen + ip_hlen));
  }
  if (!ip->more_fragments()) {
    dg.total_len = frag_off + static_cast<std::uint32_t>(data.size());
  }
  const std::uint64_t before = dg.store.buffered_bytes();
  auto ins = dg.store.insert(frag_off, data, config_.policy);
  buffered_bytes_ += dg.store.buffered_bytes() - before;
  if (ins.failed) {
    // Allocation failed: this fragment is dropped; whatever the datagram
    // already buffered stays pending and may still complete or expire.
    ++stats_.fragments_dropped_alloc;
    return std::nullopt;
  }
  if (ins.conflict) ++stats_.overlap_conflicts;

  auto done = try_complete(key, dg, now);
  if (done.has_value()) pending_.erase(key);
  return done;
}

void IpDefragmenter::expire(Timestamp now) {
  // scap-lint: allow(taint-addr-order) per-entry effects commute: expiry only erases entries and bumps one counter; nothing is emitted in iteration order
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (now - it->second.first_seen >= config_.timeout) {
      buffered_bytes_ -= std::min<std::uint64_t>(
          buffered_bytes_, it->second.store.buffered_bytes());
      it = pending_.erase(it);
      ++stats_.datagrams_expired;
    } else {
      ++it;
    }
  }
}

}  // namespace scap::kernel
