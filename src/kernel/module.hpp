// The Scap kernel module (paper §4, §5): flow tracking, in-kernel TCP
// stream reassembly, cutoff enforcement with FDIR offload, prioritized
// packet loss, event generation, and inactivity expiry.
//
// This class is the software-interrupt handler of Figure 2: it consumes
// decoded packets (one instance may serve multiple simulated cores — the
// `core` argument selects the event queue, mirroring the per-core kernel
// threads) and produces creation/data/termination events carrying
// reassembled chunks. It performs no cycle accounting itself; the returned
// PacketOutcome tells the simulation driver exactly which operations
// happened so their costs can be charged in the right context.
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "base/assert.hpp"
#include "base/clock.hpp"
#include "base/hotpath.hpp"
#include "base/mutex.hpp"
#include "base/ring.hpp"
#include "kernel/defrag.hpp"
#include "kernel/events.hpp"
#include "kernel/flow_table.hpp"
#include "kernel/memory.hpp"
#include "kernel/ppl.hpp"
#include "nic/nic.hpp"
#include "packet/bpf.hpp"
#include "packet/packet.hpp"
#include "trace/trace.hpp"

namespace scap::kernel {

struct CutoffClass {
  BpfProgram filter;
  std::int64_t cutoff_bytes = -1;
};

struct PriorityClass {
  BpfProgram filter;
  int priority = 0;
};

struct KernelConfig {
  /// Shared stream-buffer size (chunk memory), paper's memory_size.
  std::uint64_t memory_size = 1ull << 30;

  /// Defaults inherited by new streams (mode, chunk size, cutoff, ...).
  StreamParams defaults;

  /// Keep per-packet records inside chunks (scap_next_stream_packet).
  bool need_pkts = false;

  PplConfig ppl;

  /// Offload cutoff enforcement to NIC FDIR filters when a NIC is attached.
  bool use_fdir = false;
  Duration fdir_base_timeout = Duration::from_sec(10);

  /// Dynamic load balancing (§2.4): when the core a new stream RSS-hashed
  /// to already holds more than `imbalance_threshold` of all active
  /// streams, steer the stream to the least-loaded core with FDIR filters.
  bool dynamic_load_balance = false;
  double imbalance_threshold = 0.25;
  std::size_t imbalance_min_streams = 64;  // don't rebalance tiny loads

  /// Flow-record budget; 0 = unlimited (grow until host memory).
  std::size_t max_streams = 0;

  /// Seed for the flow table's tuple hash. The default is fixed for
  /// reproducible experiments; randomize it (the paper picks a random hash
  /// at module-init time, §5.2) to defeat precomputed-collision attacks or
  /// to probe hash-collision resistance in benches.
  std::uint64_t flow_hash_seed = 0x5ca9'f10a'7ab1'e000ULL;

  /// How often the idle-stream / filter-timeout scan runs.
  Duration expiry_interval = Duration::from_sec(1);

  /// Drop packets whose IP/transport checksums fail verification (counted
  /// as pkts_bad_checksum). Off by default: trace replays and snapped
  /// captures legitimately carry unverifiable checksums.
  bool verify_checksums = false;

  /// Socket-level BPF filter (scap_set_filter); empty matches everything.
  BpfProgram filter;

  /// Per-direction cutoff overrides (scap_add_cutoff_direction); -1 unset.
  std::int64_t cutoff_per_dir[2] = {-1, -1};

  /// Per-traffic-class cutoffs (scap_add_cutoff_class), first match wins.
  std::vector<CutoffClass> cutoff_classes;

  /// Per-traffic-class priorities (applications normally set priorities
  /// from the creation callback; classes let configuration-only consumers
  /// such as the benches do the same declaratively). First match wins.
  std::vector<PriorityClass> priority_classes;

  /// Per-application BPF filters for shared capture (§5.6); empty = one
  /// implicit application receiving everything.
  std::vector<BpfProgram> app_filters;

  /// Emit kCreated events (flow-stats apps often only want termination).
  bool creation_events = true;

  /// Reassemble IPv4 fragments before stream processing (§2.3: strict-mode
  /// protection against IP-fragmentation evasion). Fragments are held until
  /// their datagram completes, then processed as one packet.
  bool defragment_ip = false;

  int num_cores = 1;
};

enum class Verdict : std::uint8_t {
  kInvalid,         // not a decodable IPv4 packet
  kFragmentHeld,    // IP fragment buffered, datagram not yet complete
  kFilteredBpf,     // rejected by the socket filter
  kIgnored,         // e.g. FIN/RST for an unknown stream
  kControl,         // TCP control packet consumed for stream lifecycle
  kStored,          // payload delivered to a chunk
  kCutoffDiscard,   // beyond stream cutoff (kernel-level discard)
  kDupDiscard,      // entirely duplicate segment
  kPplDrop,         // prioritized packet loss
  kNoMemDrop,       // chunk buffer exhausted
  kNoRecordDrop,    // stream-record allocation failed
  kChecksumDrop,    // checksum verification failed (verify_checksums)
  kBuffered,        // consumed without in-order delivery (OOO hold / empty)
};

inline constexpr std::size_t kNumVerdicts =
    static_cast<std::size_t>(Verdict::kBuffered) + 1;

/// Stable lowercase name for reports (chaos_run, conservation checker).
const char* to_string(Verdict v);

struct PacketOutcome {
  Verdict verdict = Verdict::kIgnored;
  std::uint64_t stored_bytes = 0;
  int events = 0;
  bool created_stream = false;
  bool terminated_stream = false;
  int fdir_updates = 0;
  /// Stream the packet resolved to (kInvalidStreamId when it never reached
  /// a record: invalid, filtered, ignored, held fragments, failed creates).
  StreamId stream_id = kInvalidStreamId;
};

struct KernelStats {
  std::uint64_t pkts_seen = 0;
  std::uint64_t bytes_seen = 0;
  std::uint64_t pkts_stored = 0;
  std::uint64_t bytes_stored = 0;
  std::uint64_t pkts_control = 0;
  std::uint64_t pkts_filtered = 0;
  std::uint64_t pkts_invalid = 0;
  std::uint64_t pkts_cutoff = 0;
  std::uint64_t bytes_cutoff = 0;
  std::uint64_t pkts_dup = 0;
  std::uint64_t bytes_dup = 0;
  std::uint64_t pkts_ppl_dropped = 0;
  std::uint64_t bytes_ppl_dropped = 0;
  std::uint64_t pkts_nomem_dropped = 0;
  std::uint64_t bytes_nomem_dropped = 0;
  std::uint64_t pkts_norec_dropped = 0;   // stream-record allocation failed
  std::uint64_t pkts_bad_checksum = 0;    // failed checksum verification
  std::uint64_t pkts_ignored = 0;         // FIN/RST/pure-ACK of unknown flows
  std::uint64_t pkts_frag_held = 0;       // IP fragments buffered by defrag
  std::uint64_t pkts_buffered = 0;        // held by reassembly, not delivered
  std::uint64_t reasm_alloc_failures = 0; // segments lost to failed buffering
  std::uint64_t fdir_install_failures = 0;  // NIC rejected a filter install
  std::uint64_t streams_created = 0;
  std::uint64_t streams_terminated = 0;
  std::uint64_t streams_evicted = 0;
  std::uint64_t events_emitted = 0;
  std::uint64_t chunks_delivered = 0;  // data events carrying a chunk
  std::uint64_t fdir_installs = 0;
  std::uint64_t fdir_reinstalls = 0;
  std::uint64_t fdir_removals = 0;
  std::uint64_t streams_rebalanced = 0;

  // Sharded-datapath ring admission + watchdog (DESIGN.md §13). Zero on a
  // single ScapKernel; KernelShards folds the producer-side tallies in.
  std::uint64_t ring_shed_pkts = 0;    // shed at ring admission (watermarks)
  std::uint64_t ring_shed_bytes = 0;   // wire bytes of those packets
  std::uint64_t ring_stall_shed_pkts = 0;   // subset shed for a dead shard
  std::uint64_t ring_stall_shed_bytes = 0;
  std::uint64_t ring_occupancy_peak = 0;  // max producer-observed ring depth
  std::uint64_t worker_stalls = 0;        // watchdog stall declarations

  // Per-reason decode failures (parse-error taxonomy, DESIGN.md §8),
  // indexed by DecodeError. Sums to pkts_invalid.
  std::uint64_t parse_errors[kNumDecodeErrors] = {};

  // Final-verdict histogram, indexed by Verdict; incremented exactly once
  // per packet entering the kernel. The conservation law (paper §3.4, §5;
  // DESIGN.md §9) is checked against it: pkts_seen == Σ verdicts, and every
  // per-verdict scalar above must equal its histogram bucket — a counter
  // bumped without its verdict (or vice versa) is a conservation bug.
  std::uint64_t verdicts[kNumVerdicts] = {};

  // Live streams (mirrored on read from the flow table).
  std::uint64_t streams_active = 0;

  // Record-pool occupancy (filled on read from the flow table's slab pool).
  std::uint64_t pool_capacity = 0;   // records across all slabs
  std::uint64_t pool_free = 0;       // records on the freelist
  std::uint64_t pool_slabs = 0;
  std::uint64_t pool_recycled = 0;   // creates served by a recycled record

  // Adaptive overload controller (mirrored on read from Ppl).
  std::int64_t ppl_effective_cutoff = -1;  // -1 = no cutoff active
  std::uint64_t ppl_overload_active = 0;   // 0/1: inside the overload state
  std::uint64_t ppl_overload_entries = 0;
  std::uint64_t ppl_overload_exits = 0;
  std::uint64_t ppl_tightenings = 0;
  std::uint64_t ppl_relaxations = 0;

  /// Verify the counter-conservation laws over this snapshot: every packet
  /// that entered the kernel landed in exactly one verdict bucket, each
  /// drop/delivery scalar matches its verdict histogram entry, the
  /// parse-error taxonomy sums to pkts_invalid, the record pool balances
  /// against live streams, and stream lifecycle counters reconcile.
  /// Returns "" when every law holds, else a description of the first
  /// violation. Pool/stream checks need the mirrored fields, so call this
  /// on the result of ScapKernel::stats() (or use check_invariants()).
  std::string check_conservation() const;

  // Whole-snapshot equality: the trace/replay cross-check asserts that a
  // traced and an untraced run of the same input agree on every counter.
  friend bool operator==(const KernelStats&, const KernelStats&) = default;
};

/// A deferred NIC-programming request from a sharded worker (DESIGN.md
/// §12). In the sharded datapath the NIC belongs to the producer thread;
/// worker shards must never touch it, so cutoff installs and filter
/// removals travel through a bounded MPSC queue instead of a shared lock.
/// The queue is lossy by design: FDIR offload is an optimization (the
/// kernel-level cutoff still discards in software), so a full queue counts
/// an install failure and the stream carries on unoffloaded.
struct FdirCommand {
  enum class Kind : std::uint8_t { kInstallCutoff, kRemove };
  Kind kind = Kind::kInstallCutoff;
  FiveTuple tuple{};
  /// kInstallCutoff: absolute filter expiry (now + the stream's
  /// doubling fdir_timeout).
  Timestamp expires{};
  /// kInstallCutoff: re-install after a filter timeout (doubled timeout),
  /// so apply-time counting lands in fdir_reinstalls, not fdir_installs.
  bool reinstall = false;
  /// kRemove: also drop the reverse-direction filter (set when no
  /// opposite-direction stream record remains to clean it up).
  bool also_reversed = false;
};

using FdirCommandQueue = MpscQueue<FdirCommand>;

class ScapKernel {
 public:
  explicit ScapKernel(KernelConfig config, nic::Nic* nic = nullptr);

  /// The kernel's serialization domain (DESIGN.md §11). Every entry point
  /// below is annotated SCAP_REQUIRES(serial_): callers must be the only
  /// execution context inside the kernel. The capture acquires it together
  /// with kernel_mutex_ in threaded mode (base::SerialGuard right after the
  /// MutexLock); single-threaded drivers (tests, chaos_run, benches)
  /// satisfy it trivially and are compiled without -Wthread-safety.
  base::SerialDomain& serial() const SCAP_RETURN_CAPABILITY(serial_) {
    return serial_;
  }

  /// Process one packet in softirq context on `core`.
  SCAP_HOT PacketOutcome handle_packet(const Packet& pkt, Timestamp now,
                                       int core = 0) SCAP_REQUIRES(serial_);

  /// Batched ingest: process `pkts` on `core`, amortizing the maintenance
  /// check (run once, at `now`) and prefetching each packet's flow-table
  /// probe window two packets ahead of its lookup. Each packet is processed
  /// at its own timestamp. When `outcomes` is non-empty it receives the
  /// per-packet outcome (outcomes.size() >= pkts.size()); the return value
  /// aggregates the batch (verdict = last packet's, counters summed).
  /// handle_batch({&pkt, 1}, now, core) is behaviourally identical to
  /// handle_packet(pkt, now, core) when now == pkt.timestamp().
  SCAP_HOT PacketOutcome handle_batch(std::span<const Packet> pkts,
                                      Timestamp now, int core = 0,
                                      std::span<PacketOutcome> outcomes = {})
      SCAP_REQUIRES(serial_);

  /// Run the periodic maintenance pass (inactivity expiry, FDIR timeout
  /// service, flush timeouts). Called automatically from handle_packet every
  /// expiry_interval; exposed for drivers that need explicit control.
  SCAP_COLD void run_maintenance(Timestamp now) SCAP_REQUIRES(serial_);

  /// Flush + terminate every remaining stream (end of capture).
  SCAP_COLD void terminate_all(Timestamp now) SCAP_REQUIRES(serial_);

  /// Event access (per core). The queues are the worker handoff point: in
  /// threaded mode workers pop them under the same serialization the
  /// producer pushes under (capture's kernel_mutex_ + this domain).
  EventQueue& events(int core) SCAP_REQUIRES(serial_) {
    return queues_[static_cast<std::size_t>(core)];
  }

  /// The consumer must release each data event's chunk accounting once the
  /// application is done with it.
  void release_chunk(const Event& ev) SCAP_REQUIRES(serial_) {
    if (ev.chunk_alloc) allocator_.release(ev.chunk_addr, ev.chunk_alloc);
  }

  // --- runtime control (backing for the Scap API) -------------------------
  StreamRecord* find_stream(StreamId id) SCAP_REQUIRES(serial_) {
    return table_.by_id(id);
  }
  bool set_stream_cutoff(StreamId id, std::int64_t cutoff)
      SCAP_REQUIRES(serial_);
  bool set_stream_priority(StreamId id, int priority) SCAP_REQUIRES(serial_);
  bool discard_stream(StreamId id) SCAP_REQUIRES(serial_);

  /// Re-attach a delivered chunk so the next delivery contains it too
  /// (scap_keep_stream_chunk). Transfers the chunk's memory accounting back
  /// to the stream; returns false if the stream no longer exists.
  bool keep_stream_chunk(StreamId id, Chunk&& chunk, std::uint32_t alloc)
      SCAP_REQUIRES(serial_);

  /// Check every kernel invariant (counter conservation, pool balance, PPL
  /// watermark monotonicity) against the current state. Returns "" when all
  /// hold, else the first violation. Always compiled; the SCAP_INVARIANT
  /// wiring in run_maintenance()/terminate_all() makes it fatal in
  /// Debug/test builds and a no-op in Release.
  SCAP_COLD std::string check_invariants() const SCAP_REQUIRES(serial_);

  /// Attach the event tracer (DESIGN.md §10). Must happen before the first
  /// packet: the tracer's event counts double as conservation counters
  /// (check_invariants proves count(packet_verdict) == pkts_seen etc.), so
  /// a mid-run attach would trip the next maintenance tick's invariant
  /// check. Also wires the PPL controller. Pass nullptr to detach is not
  /// supported for the same reason.
  void set_tracer(trace::Tracer* tracer) SCAP_REQUIRES(serial_) {
    SCAP_ASSERT(stats_.pkts_seen == 0,
                "tracer must attach before the first packet");
    tracer_ = tracer;
    ppl_.set_tracer(tracer);
  }
  trace::Tracer* tracer() const { return tracer_; }

  /// Route FDIR programming through a command queue instead of a direct
  /// NIC pointer (sharded mode: the kernel is a worker shard and must not
  /// touch the producer-owned NIC). Like set_tracer, wire before the first
  /// packet. With a queue attached the kernel enqueues install/remove
  /// commands (counting a full queue as fdir_install_failures) and never
  /// dereferences nic_ for filter work; hardware-side filter expiry is then
  /// the queue consumer's job, so the doubling-timeout *reinstall* path is
  /// inert in this mode — a deliberate simplification, see DESIGN.md §12.
  void set_fdir_queue(FdirCommandQueue* queue) SCAP_REQUIRES(serial_) {
    SCAP_ASSERT(stats_.pkts_seen == 0,
                "FDIR queue must attach before the first packet");
    fdir_queue_ = queue;
  }

  const KernelStats& stats() const SCAP_REQUIRES(serial_) {
    // Pool occupancy is owned by the flow table; mirror it on read so the
    // hot path never maintains these counters. Same for the adaptive
    // controller, whose state lives in Ppl.
    const RecordPoolStats pool = table_.pool_stats();
    stats_.pool_capacity = pool.capacity;
    stats_.pool_free = pool.free;
    stats_.pool_slabs = pool.slabs;
    stats_.pool_recycled = pool.recycled_total;
    stats_.streams_active = table_.size();
    const PplControllerState& ctl = ppl_.controller();
    stats_.ppl_effective_cutoff = ppl_.effective_cutoff();
    stats_.ppl_overload_active = ctl.overload ? 1 : 0;
    stats_.ppl_overload_entries = ctl.overload_entries;
    stats_.ppl_overload_exits = ctl.overload_exits;
    stats_.ppl_tightenings = ctl.tightenings;
    stats_.ppl_relaxations = ctl.relaxations;
    return stats_;
  }
  const KernelConfig& config() const { return config_; }
  ChunkAllocator& allocator() { return allocator_; }
  FlowTable& table() { return table_; }
  const Ppl& ppl() const { return ppl_; }
  nic::Nic* nic() { return nic_; }
  const IpDefragmenter& defragmenter() const { return defrag_; }

 private:
  /// handle_packet minus the maintenance-timer check (the batch path runs
  /// that once per batch).
  PacketOutcome handle_one(const Packet& pkt, Timestamp now, int core)
      SCAP_REQUIRES(serial_);

  StreamRecord* lookup_or_create(const Packet& pkt, Timestamp now, int core,
                                 PacketOutcome& outcome)
      SCAP_REQUIRES(serial_);
  void resolve_params(StreamRecord& rec) SCAP_REQUIRES(serial_);
  std::uint64_t app_mask_for(const FiveTuple& tuple) const;
  void emit_created(StreamRecord& rec) SCAP_REQUIRES(serial_);
  void emit_data(StreamRecord& rec, Chunk&& chunk, bool transfer_block)
      SCAP_REQUIRES(serial_);
  void emit_terminated(StreamRecord& rec) SCAP_REQUIRES(serial_);
  StreamSnapshot snapshot(const StreamRecord& rec) const;
  void ensure_block(StreamRecord& rec) SCAP_REQUIRES(serial_);
  void handle_payload(StreamRecord& rec, const Packet& pkt, Timestamp now,
                      PacketOutcome& outcome) SCAP_REQUIRES(serial_);
  void trigger_cutoff(StreamRecord& rec, Timestamp now,
                      PacketOutcome& outcome) SCAP_REQUIRES(serial_);
  void terminate(StreamRecord& rec, StreamStatus status, Timestamp now,
                 PacketOutcome* outcome) SCAP_REQUIRES(serial_);
  void install_fdir(StreamRecord& rec, Timestamp now, bool reinstall,
                    PacketOutcome& outcome) SCAP_REQUIRES(serial_);
  void flush_chunks(StreamRecord& rec, std::uint32_t error_bits)
      SCAP_REQUIRES(serial_);

  /// Steer a freshly created stream away from an overloaded core (§2.4).
  void maybe_rebalance(StreamRecord& rec, Timestamp now)
      SCAP_REQUIRES(serial_);

  /// Post-defragmentation continuation of handle_packet.
  PacketOutcome handle_decoded(const Packet& pkt, Timestamp now, int core,
                               PacketOutcome& outcome) SCAP_REQUIRES(serial_);

  KernelConfig config_;
  /// The serialization domain every entry point requires (see serial()).
  /// mutable so const observers (stats, check_invariants) can name it.
  mutable base::SerialDomain serial_;
  /// NIC pointee is FDIR/RSS state mutated by the kernel: only touch it
  /// from inside the serial domain. Reading the pointer itself (nic())
  /// is free — it is set once at construction.
  nic::Nic* nic_ SCAP_PT_GUARDED_BY(serial_);
  ChunkAllocator allocator_;
  FlowTable table_;
  Ppl ppl_;
  std::vector<EventQueue> queues_;
  // mutable: stats() mirrors pool occupancy into the struct on read.
  mutable KernelStats stats_;
  Timestamp last_maintenance_;
  // Ordered by StreamId on purpose: run_maintenance walks this set and the
  // resulting flush order is observable (chunk events, traces), so it must
  // be a function of stream identity, not of hash-bucket layout.
  std::set<StreamId> flush_watch_;  // streams with flush timeouts
  std::vector<std::int64_t> core_streams_;    // active streams per core
  IpDefragmenter defrag_;
  /// Per-core trace rings are recorded into from the serial domain only;
  /// the pointer is set once (set_tracer) before the first packet.
  trace::Tracer* tracer_ SCAP_PT_GUARDED_BY(serial_) = nullptr;
  /// Sharded-mode FDIR command channel (set_fdir_queue). The queue itself
  /// is MPSC-safe on the push side, so no guard beyond serial_ for the
  /// pointer; set once before the first packet.
  FdirCommandQueue* fdir_queue_ SCAP_PT_GUARDED_BY(serial_) = nullptr;
};

}  // namespace scap::kernel
