#include "kernel/memory.hpp"

#include "faultinject/faultinject.hpp"

namespace scap::kernel {

std::optional<std::uint64_t> ChunkAllocator::allocate(std::uint32_t size) {
  // Injected failure: indistinguishable from exhaustion to the caller, and
  // counted through the same failures() statistic.
  if (faultinject::should_fail(faultinject::FaultPoint::kChunkAlloc)) {
    ++failures_;
    return std::nullopt;
  }
  if (used_ + size > capacity_) {
    ++failures_;
    return std::nullopt;
  }
  used_ += size;
  if (used_ > high_water_) high_water_ = used_;
  ++allocations_;
  auto& fl = free_lists_[size];
  if (!fl.empty()) {
    const std::uint64_t addr = fl.back();
    fl.pop_back();
    return addr;
  }
  const std::uint64_t addr = bump_;
  bump_ += size;
  return addr;
}

std::uint64_t ChunkAllocator::allocate_forced(std::uint32_t size) {
  used_ += size;
  if (used_ > high_water_) high_water_ = used_;
  ++allocations_;
  auto& fl = free_lists_[size];
  if (!fl.empty()) {
    const std::uint64_t addr = fl.back();
    fl.pop_back();
    return addr;
  }
  const std::uint64_t addr = bump_;
  bump_ += size;
  return addr;
}

void ChunkAllocator::release(std::uint64_t addr, std::uint32_t size) {
  if (size == 0) return;
  used_ = used_ >= size ? used_ - size : 0;
  free_lists_[size].push_back(addr);
}

}  // namespace scap::kernel
