#include "kernel/memory.hpp"

#include <algorithm>

#include "faultinject/faultinject.hpp"

namespace scap::kernel {

std::vector<std::uint64_t>& ChunkAllocator::free_list(std::uint32_t size) {
  auto it = std::lower_bound(
      free_lists_.begin(), free_lists_.end(), size,
      [](const auto& entry, std::uint32_t s) { return entry.first < s; });
  if (it == free_lists_.end() || it->first != size) {
    // scap-lint: allow(hot-alloc) one free-list entry per distinct chunk size ever seen (a handful per config), never per packet (DESIGN.md §14 inventory)
    it = free_lists_.emplace(it, size, std::vector<std::uint64_t>{});
  }
  return it->second;
}

std::optional<std::uint64_t> ChunkAllocator::allocate(std::uint32_t size) {
  // Injected failure: indistinguishable from exhaustion to the caller, and
  // counted through the same failures() statistic.
  if (faultinject::should_fail(faultinject::FaultPoint::kChunkAlloc)) {
    ++failures_;
    return std::nullopt;
  }
  if (used_ + size > capacity_) {
    ++failures_;
    return std::nullopt;
  }
  used_ += size;
  if (used_ > high_water_) high_water_ = used_;
  ++allocations_;
  auto& fl = free_list(size);
  if (!fl.empty()) {
    const std::uint64_t addr = fl.back();
    fl.pop_back();
    return addr;
  }
  const std::uint64_t addr = bump_;
  bump_ += size;
  return addr;
}

std::uint64_t ChunkAllocator::allocate_forced(std::uint32_t size) {
  used_ += size;
  if (used_ > high_water_) high_water_ = used_;
  ++allocations_;
  auto& fl = free_list(size);
  if (!fl.empty()) {
    const std::uint64_t addr = fl.back();
    fl.pop_back();
    return addr;
  }
  const std::uint64_t addr = bump_;
  bump_ += size;
  return addr;
}

void ChunkAllocator::release(std::uint64_t addr, std::uint32_t size) {
  if (size == 0) return;
  used_ = used_ >= size ? used_ - size : 0;
  free_list(size).push_back(addr);
}

}  // namespace scap::kernel
