#include "kernel/memory.hpp"

#include <algorithm>

#include "faultinject/faultinject.hpp"

namespace scap::kernel {

ChunkAllocator::SizeClass* ChunkAllocator::free_list(std::uint32_t size) {
  SizeClass* first = free_lists_.data();
  SizeClass* last = first + num_size_classes_;
  SizeClass* it = std::lower_bound(
      first, last, size,
      [](const SizeClass& entry, std::uint32_t s) { return entry.size < s; });
  if (it != last && it->size == size) return it;
  if (num_size_classes_ == kMaxSizeClasses) return nullptr;
  // Open a new size class by shifting the sorted tail up one fixed-table
  // slot — element moves within the fixed array, no table growth.
  std::move_backward(it, last, last + 1);
  it->size = size;
  it->naddrs = 0;
  ++num_size_classes_;
  return it;
}

std::optional<std::uint64_t> ChunkAllocator::allocate(std::uint32_t size) {
  // Injected failure: indistinguishable from exhaustion to the caller, and
  // counted through the same failures() statistic.
  if (faultinject::should_fail(faultinject::FaultPoint::kChunkAlloc)) {
    ++failures_;
    return std::nullopt;
  }
  if (used_ + size > capacity_) {
    ++failures_;
    return std::nullopt;
  }
  used_ += size;
  if (used_ > high_water_) high_water_ = used_;
  ++allocations_;
  SizeClass* sc = free_list(size);
  if (sc != nullptr && sc->naddrs > 0) return sc->addrs[--sc->naddrs];
  const std::uint64_t addr = bump_;
  bump_ += size;
  return addr;
}

std::uint64_t ChunkAllocator::allocate_forced(std::uint32_t size) {
  used_ += size;
  if (used_ > high_water_) high_water_ = used_;
  ++allocations_;
  SizeClass* sc = free_list(size);
  if (sc != nullptr && sc->naddrs > 0) return sc->addrs[--sc->naddrs];
  const std::uint64_t addr = bump_;
  bump_ += size;
  return addr;
}

void ChunkAllocator::release(std::uint64_t addr, std::uint32_t size) {
  if (size == 0) return;
  used_ = used_ >= size ? used_ - size : 0;
  SizeClass* sc = free_list(size);
  if (sc != nullptr && sc->naddrs < kRecycleDepth) {
    sc->addrs[sc->naddrs++] = addr;
  }
}

}  // namespace scap::kernel
