// Slab allocator for StreamRecords (fast-path memory layout, DESIGN.md).
//
// Stream create/terminate is the second-hottest kernel operation after flow
// lookup; allocating each StreamRecord (plus its TcpReassembler) with
// operator new puts a malloc/free pair on that path and scatters records
// across the heap. The pool carves records out of fixed-size slabs and
// recycles them through a freelist, so steady-state stream churn performs
// zero heap allocations: a released record — including its reassembler and
// that reassembler's grown buffers — is handed back to the next create.
//
// Pointer stability: slabs are never freed while the pool lives, so a
// StreamRecord* stays valid from acquire() until release() regardless of
// how many records are created in between (the flow table relies on this
// across rehashes).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "kernel/flow_table.hpp"

namespace scap::kernel {

class RecordPool {
 public:
  /// `slab_records`: records per slab (one slab is allocated up front).
  explicit RecordPool(std::size_t slab_records = 1024);

  RecordPool(const RecordPool&) = delete;
  RecordPool& operator=(const RecordPool&) = delete;

  /// Take a record. All fields are value-initialized except `reasm`, which
  /// keeps the recycled record's reassembler instance (if any) so the
  /// caller can reset() it instead of reallocating. Allocates a new slab
  /// only when the freelist is empty.
  StreamRecord* acquire();

  /// Return a record to the freelist. The record's reassembler is kept
  /// alive for recycling; everything else becomes garbage.
  void release(StreamRecord* rec);

  RecordPoolStats stats() const;

 private:
  void grow();

  std::size_t slab_records_;
  std::vector<std::unique_ptr<StreamRecord[]>> slabs_;
  /// Freelist as an explicit stack over pre-sized storage: grow() resizes
  /// `free_` to the full pool, `free_count_` marks the live top. Pushes
  /// and pops are index assignments, so the per-stream path never grows a
  /// container.
  std::vector<StreamRecord*> free_;
  std::size_t free_count_ = 0;
  std::uint64_t acquired_total_ = 0;
  std::uint64_t recycled_total_ = 0;
  std::uint64_t acquire_failures_ = 0;  // injected allocation failures
};

}  // namespace scap::kernel
