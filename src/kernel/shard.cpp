#include "kernel/shard.hpp"

#include <algorithm>
#include <span>
#include <string>
#include <utility>

#include "base/assert.hpp"
#include "nic/fdir.hpp"

namespace scap::kernel {
namespace {

/// Derive one shard's config from the capture-wide config: private slabs
/// sized at an even split, single event queue, no cross-shard steering.
KernelConfig shard_config(const KernelConfig& base, int num_shards) {
  KernelConfig c = base;
  const auto n = static_cast<std::uint64_t>(num_shards);
  c.memory_size = std::max<std::uint64_t>(base.memory_size / n, 1);
  if (c.max_streams > 0) {
    c.max_streams = (c.max_streams + static_cast<std::size_t>(n) - 1) /
                    static_cast<std::size_t>(n);
  }
  c.num_cores = 1;
  // RSS flow affinity *is* the balance policy in sharded mode (paper §4.2);
  // FDIR-based steering to another core would move a flow off its shard.
  c.dynamic_load_balance = false;
  return c;
}

/// Shard-sum of KernelStats. Every conservation law over these counters is
/// linear, so the sum satisfies check_conservation whenever each addend
/// does. The two non-counter PPL fields combine instead: the aggregate
/// cutoff is the tightest active shard cutoff, and the aggregate is
/// overloaded when any shard is.
void accumulate(KernelStats& into, const KernelStats& s) {
  into.pkts_seen += s.pkts_seen;
  into.bytes_seen += s.bytes_seen;
  into.pkts_stored += s.pkts_stored;
  into.bytes_stored += s.bytes_stored;
  into.pkts_control += s.pkts_control;
  into.pkts_filtered += s.pkts_filtered;
  into.pkts_invalid += s.pkts_invalid;
  into.pkts_cutoff += s.pkts_cutoff;
  into.bytes_cutoff += s.bytes_cutoff;
  into.pkts_dup += s.pkts_dup;
  into.bytes_dup += s.bytes_dup;
  into.pkts_ppl_dropped += s.pkts_ppl_dropped;
  into.bytes_ppl_dropped += s.bytes_ppl_dropped;
  into.pkts_nomem_dropped += s.pkts_nomem_dropped;
  into.bytes_nomem_dropped += s.bytes_nomem_dropped;
  into.pkts_norec_dropped += s.pkts_norec_dropped;
  into.pkts_bad_checksum += s.pkts_bad_checksum;
  into.pkts_ignored += s.pkts_ignored;
  into.pkts_frag_held += s.pkts_frag_held;
  into.pkts_buffered += s.pkts_buffered;
  into.reasm_alloc_failures += s.reasm_alloc_failures;
  into.fdir_install_failures += s.fdir_install_failures;
  into.streams_created += s.streams_created;
  into.streams_terminated += s.streams_terminated;
  into.streams_evicted += s.streams_evicted;
  into.events_emitted += s.events_emitted;
  into.chunks_delivered += s.chunks_delivered;
  into.fdir_installs += s.fdir_installs;
  into.fdir_reinstalls += s.fdir_reinstalls;
  into.fdir_removals += s.fdir_removals;
  into.streams_rebalanced += s.streams_rebalanced;
  for (std::size_t i = 0; i < kNumDecodeErrors; ++i) {
    into.parse_errors[i] += s.parse_errors[i];
  }
  for (std::size_t i = 0; i < kNumVerdicts; ++i) {
    into.verdicts[i] += s.verdicts[i];
  }
  into.streams_active += s.streams_active;
  into.pool_capacity += s.pool_capacity;
  into.pool_free += s.pool_free;
  into.pool_slabs += s.pool_slabs;
  into.pool_recycled += s.pool_recycled;
  into.ppl_overload_entries += s.ppl_overload_entries;
  into.ppl_overload_exits += s.ppl_overload_exits;
  into.ppl_tightenings += s.ppl_tightenings;
  into.ppl_relaxations += s.ppl_relaxations;
  if (s.ppl_overload_active != 0) into.ppl_overload_active = 1;
  if (s.ppl_effective_cutoff >= 0 &&
      (into.ppl_effective_cutoff < 0 ||
       s.ppl_effective_cutoff < into.ppl_effective_cutoff)) {
    into.ppl_effective_cutoff = s.ppl_effective_cutoff;
  }
}

}  // namespace

KernelShards::Shard::Shard(const KernelConfig& cfg, std::size_t ring_capacity)
    : kernel(cfg, /*nic=*/nullptr), ring(ring_capacity) {}

KernelShards::KernelShards(const KernelConfig& config, int num_shards)
    : KernelShards(config, num_shards, Options()) {}

KernelShards::KernelShards(const KernelConfig& config, int num_shards,
                           Options opts)
    : opts_(opts),
      rss_(symmetric_rss_key(), num_shards > 0 ? num_shards : 1) {
  const int n = rss_.num_queues();
  if (config.use_fdir) {
    fdir_queue_ =
        std::make_unique<FdirCommandQueue>(opts_.fdir_queue_capacity);
  }
  const KernelConfig cfg = shard_config(config, n);
  shards_.reserve(static_cast<std::size_t>(n));
  pushed_.assign(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(cfg, opts_.ring_capacity));
    Shard& s = *shards_.back();
    if (opts_.trace.has_value()) {
      trace::TraceConfig tc = *opts_.trace;
      tc.cores = 1;  // the shard kernel records everything on its core 0
      s.tracer = std::make_unique<trace::Tracer>(tc);
    }
    base::MutexLock lock(s.mu);
    base::SerialGuard serial(s.kernel.serial());
    if (s.tracer != nullptr) s.kernel.set_tracer(s.tracer.get());
    if (fdir_queue_ != nullptr) s.kernel.set_fdir_queue(fdir_queue_.get());
    refresh_snapshot(s);
  }
}

KernelShards::~KernelShards() = default;

void KernelShards::wake(Shard& s) {
  // Empty critical section before notify: the worker either has not yet
  // evaluated its wait predicate (and will see the new ring state), or is
  // inside wait() and receives the notification — no missed-wakeup window.
  { base::MutexLock lock(s.wake_mu); }
  s.wake_cv.notify_one();
}

void KernelShards::submit_to(int shard, Packet pkt) {
  ShardItem item;
  item.kind = ShardItem::Kind::kPacket;
  item.pkt = std::move(pkt);
  push_item(idx(shard), std::move(item));
}

void KernelShards::tick_all(Timestamp now) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardItem item;
    item.kind = ShardItem::Kind::kMaintenance;
    item.ts = now;
    push_item(i, std::move(item));
  }
}

void KernelShards::push_item(std::size_t shard, ShardItem item) {
  Shard& s = *shards_[shard];
  base::SerialGuard prod(s.ring.producer());
  while (!s.ring.try_push(std::move(item))) {
    // Ring full: backpressure the producer (kick the worker, then yield)
    // rather than drop — loss must happen inside the kernels, where the
    // paper's verdict accounting can see it.
    wake(s);
    std::this_thread::yield();
  }
  ++pushed_[shard];
  if (s.sleeping.load(std::memory_order_relaxed)) wake(s);
}

void KernelShards::start(DrainFn drain) {
  SCAP_ASSERT(workers_.empty(), "shards already started");
  SCAP_ASSERT(!stopped_, "shards already stopped");
  drain_ = std::move(drain);
  workers_.reserve(shards_.size());
  for (int i = 0; i < num_shards(); ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token st) { worker_main(st, i); });
  }
}

void KernelShards::flush() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    if (workers_.empty()) {
      // No workers (pre-start or post-stop): the calling thread is the one
      // consumer and drains inline.
      base::SerialGuard consumer(s.ring.consumer());
      std::vector<ShardItem> buf(opts_.batch_size);
      std::vector<Packet> scratch;
      scratch.reserve(opts_.batch_size);
      for (;;) {
        const std::size_t n = s.ring.pop_batch(std::span<ShardItem>(buf));
        if (n == 0) break;
        process_items(s, static_cast<int>(i), {buf.data(), n}, scratch);
        s.processed.fetch_add(n, std::memory_order_release);
      }
    } else {
      while (s.processed.load(std::memory_order_acquire) < pushed_[i]) {
        wake(s);
        std::this_thread::yield();
      }
    }
  }
}

void KernelShards::service_fdir(nic::Nic& nic, Timestamp now) {
  if (fdir_queue_ == nullptr) return;
  base::SerialGuard consumer(fdir_queue_->consumer());
  while (auto cmd = fdir_queue_->try_pop()) {
    switch (cmd->kind) {
      case FdirCommand::Kind::kInstallCutoff:
        // The enqueuing shard already counted the install (and counts a
        // full queue as an install failure); a hardware rejection here is
        // invisible to it — the software cutoff still enforces, so the
        // only skew is an optimistic fdir_installs counter.
        for (const auto& f :
             nic::make_cutoff_filters(cmd->tuple, cmd->expires)) {
          nic.fdir().add(f);
        }
        break;
      case FdirCommand::Kind::kRemove:
        nic.fdir().remove_tuple(cmd->tuple);
        if (cmd->also_reversed) {
          nic.fdir().remove_tuple(cmd->tuple.reversed());
        }
        break;
    }
  }
  // Hardware filter timers: shard kernels cannot see the FDIR table, so
  // expiry is serviced here. The doubling-timeout reinstall path is inert
  // in queue mode (the shard's rec.fdir_installed stays set) — a
  // deliberate simplification, DESIGN.md §12.
  (void)nic.fdir().expire(now);
}

void KernelShards::stop(Timestamp now) {
  if (stopped_) return;
  stopped_ = true;
  if (!workers_.empty()) {
    flush();
    // jthread destruction requests stop and joins; the stop_token wakes
    // any worker parked in wait().
    workers_.clear();
  }
  for (int i = 0; i < num_shards(); ++i) {
    Shard& s = *shards_[idx(i)];
    base::MutexLock lock(s.mu);
    base::SerialGuard serial(s.kernel.serial());
    s.kernel.terminate_all(now);
    drain_shard(i, s.kernel);
    refresh_snapshot(s);
  }
}

void KernelShards::worker_main(std::stop_token st, int shard) {
  Shard& s = *shards_[idx(shard)];
  // This thread is the ring's one consumer for its whole lifetime.
  base::SerialGuard consumer(s.ring.consumer());
  std::vector<ShardItem> buf(opts_.batch_size);
  std::vector<Packet> scratch;
  scratch.reserve(opts_.batch_size);
  for (;;) {
    const std::size_t n = s.ring.pop_batch(std::span<ShardItem>(buf));
    if (n == 0) {
      if (st.stop_requested()) break;  // ring drained + stop => done
      base::MutexLock lock(s.wake_mu);
      s.sleeping.store(true, std::memory_order_relaxed);
      s.wake_cv.wait(lock, st, [&s] { return !s.ring.empty_approx(); });
      s.sleeping.store(false, std::memory_order_relaxed);
      continue;
    }
    process_items(s, shard, {buf.data(), n}, scratch);
    s.processed.fetch_add(n, std::memory_order_release);
  }
}

void KernelShards::process_items(Shard& s, int shard,
                                 std::span<ShardItem> items,
                                 std::vector<Packet>& scratch) {
  // One lock + one serial-domain entry per *batch* — the per-packet path
  // below is lock-free shard-private state.
  base::MutexLock lock(s.mu);
  base::SerialGuard serial(s.kernel.serial());
  std::size_t i = 0;
  while (i < items.size()) {
    if (items[i].kind == ShardItem::Kind::kMaintenance) {
      s.kernel.run_maintenance(items[i].ts);
      ++i;
      continue;
    }
    scratch.clear();
    while (i < items.size() && items[i].kind == ShardItem::Kind::kPacket) {
      scratch.push_back(std::move(items[i].pkt));
      ++i;
    }
    s.kernel.handle_batch(std::span<const Packet>(scratch),
                          scratch.back().timestamp(), /*core=*/0);
  }
  drain_shard(shard, s.kernel);
  refresh_snapshot(s);
}

void KernelShards::refresh_snapshot(Shard& s) {
  base::MutexLock snap(s.snap_mu);
  s.snapshot = s.kernel.stats();
  if (s.tracer != nullptr) {
    s.snap_trace_recorded = s.tracer->recorded();
    s.snap_trace_dropped = s.tracer->dropped();
    s.snap_metrics = s.tracer->metrics();
  }
}

void KernelShards::drain_shard(int shard, ScapKernel& k) {
  if (drain_) {
    drain_(shard, k);
    return;
  }
  // Self-drain (benches, chaos_run): consume the events and release their
  // chunk accounting so the allocator balances.
  EventQueue& q = k.events(0);
  while (!q.empty()) {
    Event ev = q.pop();
    k.release_chunk(ev);
  }
}

KernelStats KernelShards::stats() const {
  KernelStats total;
  for (const auto& sp : shards_) {
    base::MutexLock lock(sp->snap_mu);
    accumulate(total, sp->snapshot);
  }
  return total;
}

KernelStats KernelShards::shard_stats(int shard) const {
  Shard& s = *shards_[idx(shard)];
  base::MutexLock lock(s.snap_mu);
  return s.snapshot;
}

std::string KernelShards::check_invariants() const {
  KernelStats total;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    base::MutexLock lock(s.mu);
    base::SerialGuard serial(s.kernel.serial());
    std::string err = s.kernel.check_invariants();
    if (!err.empty()) {
      return "shard " + std::to_string(i) + ": " + err;
    }
    accumulate(total, s.kernel.stats());
  }
  std::string err = total.check_conservation();
  if (!err.empty()) return "shard aggregate: " + err;
  return {};
}

std::uint64_t KernelShards::trace_recorded() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    base::MutexLock lock(sp->snap_mu);
    total += sp->snap_trace_recorded;
  }
  return total;
}

std::uint64_t KernelShards::trace_dropped() const {
  std::uint64_t total = 0;
  for (const auto& sp : shards_) {
    base::MutexLock lock(sp->snap_mu);
    total += sp->snap_trace_dropped;
  }
  return total;
}

trace::MetricsRegistry KernelShards::trace_metrics() const {
  trace::MetricsRegistry total;
  for (const auto& sp : shards_) {
    base::MutexLock lock(sp->snap_mu);
    total.merge(sp->snap_metrics);
  }
  return total;
}

}  // namespace scap::kernel
