#include "kernel/shard.hpp"

#include <algorithm>
#include <chrono>
#include <span>
#include <string>
#include <utility>

#include "base/assert.hpp"
#include "faultinject/faultinject.hpp"
#include "nic/fdir.hpp"

namespace scap::kernel {
namespace {

std::string law_violation(const char* law, std::uint64_t lhs,
                          std::uint64_t rhs) {
  return std::string(law) + " violated: " + std::to_string(lhs) + " vs " +
         std::to_string(rhs);
}

/// Derive one shard's config from the capture-wide config: private slabs
/// sized at an even split, single event queue, no cross-shard steering.
KernelConfig shard_config(const KernelConfig& base, int num_shards) {
  KernelConfig c = base;
  const auto n = static_cast<std::uint64_t>(num_shards);
  c.memory_size = std::max<std::uint64_t>(base.memory_size / n, 1);
  if (c.max_streams > 0) {
    c.max_streams = (c.max_streams + static_cast<std::size_t>(n) - 1) /
                    static_cast<std::size_t>(n);
  }
  c.num_cores = 1;
  // RSS flow affinity *is* the balance policy in sharded mode (paper §4.2);
  // FDIR-based steering to another core would move a flow off its shard.
  c.dynamic_load_balance = false;
  return c;
}

/// Shard-sum of KernelStats. Every conservation law over these counters is
/// linear, so the sum satisfies check_conservation whenever each addend
/// does. The two non-counter PPL fields combine instead: the aggregate
/// cutoff is the tightest active shard cutoff, and the aggregate is
/// overloaded when any shard is.
void accumulate(KernelStats& into, const KernelStats& s) {
  into.pkts_seen += s.pkts_seen;
  into.bytes_seen += s.bytes_seen;
  into.pkts_stored += s.pkts_stored;
  into.bytes_stored += s.bytes_stored;
  into.pkts_control += s.pkts_control;
  into.pkts_filtered += s.pkts_filtered;
  into.pkts_invalid += s.pkts_invalid;
  into.pkts_cutoff += s.pkts_cutoff;
  into.bytes_cutoff += s.bytes_cutoff;
  into.pkts_dup += s.pkts_dup;
  into.bytes_dup += s.bytes_dup;
  into.pkts_ppl_dropped += s.pkts_ppl_dropped;
  into.bytes_ppl_dropped += s.bytes_ppl_dropped;
  into.pkts_nomem_dropped += s.pkts_nomem_dropped;
  into.bytes_nomem_dropped += s.bytes_nomem_dropped;
  into.pkts_norec_dropped += s.pkts_norec_dropped;
  into.pkts_bad_checksum += s.pkts_bad_checksum;
  into.pkts_ignored += s.pkts_ignored;
  into.pkts_frag_held += s.pkts_frag_held;
  into.pkts_buffered += s.pkts_buffered;
  into.reasm_alloc_failures += s.reasm_alloc_failures;
  into.fdir_install_failures += s.fdir_install_failures;
  into.streams_created += s.streams_created;
  into.streams_terminated += s.streams_terminated;
  into.streams_evicted += s.streams_evicted;
  into.events_emitted += s.events_emitted;
  into.chunks_delivered += s.chunks_delivered;
  into.fdir_installs += s.fdir_installs;
  into.fdir_reinstalls += s.fdir_reinstalls;
  into.fdir_removals += s.fdir_removals;
  into.streams_rebalanced += s.streams_rebalanced;
  for (std::size_t i = 0; i < kNumDecodeErrors; ++i) {
    into.parse_errors[i] += s.parse_errors[i];
  }
  for (std::size_t i = 0; i < kNumVerdicts; ++i) {
    into.verdicts[i] += s.verdicts[i];
  }
  into.streams_active += s.streams_active;
  into.pool_capacity += s.pool_capacity;
  into.pool_free += s.pool_free;
  into.pool_slabs += s.pool_slabs;
  into.pool_recycled += s.pool_recycled;
  into.ppl_overload_entries += s.ppl_overload_entries;
  into.ppl_overload_exits += s.ppl_overload_exits;
  into.ppl_tightenings += s.ppl_tightenings;
  into.ppl_relaxations += s.ppl_relaxations;
  into.ring_shed_pkts += s.ring_shed_pkts;
  into.ring_shed_bytes += s.ring_shed_bytes;
  into.ring_stall_shed_pkts += s.ring_stall_shed_pkts;
  into.ring_stall_shed_bytes += s.ring_stall_shed_bytes;
  into.worker_stalls += s.worker_stalls;
  if (s.ring_occupancy_peak > into.ring_occupancy_peak) {
    into.ring_occupancy_peak = s.ring_occupancy_peak;
  }
  if (s.ppl_overload_active != 0) into.ppl_overload_active = 1;
  if (s.ppl_effective_cutoff >= 0 &&
      (into.ppl_effective_cutoff < 0 ||
       s.ppl_effective_cutoff < into.ppl_effective_cutoff)) {
    into.ppl_effective_cutoff = s.ppl_effective_cutoff;
  }
}

}  // namespace

KernelShards::Shard::Shard(const KernelConfig& cfg, std::size_t ring_capacity)
    : kernel(cfg, /*nic=*/nullptr), ring(ring_capacity) {}

KernelShards::KernelShards(const KernelConfig& config, int num_shards)
    : KernelShards(config, num_shards, Options()) {}

KernelShards::KernelShards(const KernelConfig& config, int num_shards,
                           Options opts)
    : opts_(opts),
      rss_(symmetric_rss_key(), num_shards > 0 ? num_shards : 1) {
  const int n = rss_.num_queues();
  if (config.use_fdir) {
    fdir_queue_ =
        std::make_unique<FdirCommandQueue>(opts_.fdir_queue_capacity);
  }
  const KernelConfig cfg = shard_config(config, n);
  shards_.reserve(static_cast<std::size_t>(n));
  pushed_.assign(static_cast<std::size_t>(n), 0);
  watchdog_.assign(static_cast<std::size_t>(n), WatchdogState{});
  // Ring admission mirrors the kernel's PPL ladder, so it needs the same
  // priority inputs the per-shard kernels use.
  priority_classes_ = config.priority_classes;
  default_priority_ = config.defaults.priority;
  ppl_levels_ = config.ppl.priority_levels < 1 ? 1 : config.ppl.priority_levels;
  if (opts_.trace.has_value()) {
    trace::TraceConfig ptc = *opts_.trace;
    ptc.cores = 1;
    producer_tracer_ = std::make_unique<trace::Tracer>(ptc);
  }
  for (int i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(cfg, opts_.ring_capacity));
    Shard& s = *shards_.back();
    if (opts_.trace.has_value()) {
      trace::TraceConfig tc = *opts_.trace;
      tc.cores = 1;  // the shard kernel records everything on its core 0
      s.tracer = std::make_unique<trace::Tracer>(tc);
    }
    base::MutexLock lock(s.mu);
    base::SerialGuard serial(s.kernel.serial());
    if (s.tracer != nullptr) s.kernel.set_tracer(s.tracer.get());
    if (fdir_queue_ != nullptr) s.kernel.set_fdir_queue(fdir_queue_.get());
    refresh_snapshot(s);
  }
}

KernelShards::~KernelShards() = default;

void KernelShards::wake(Shard& s) {
  // Empty critical section before notify: the worker either has not yet
  // evaluated its wait predicate (and will see the new ring state), or is
  // inside wait() and receives the notification — no missed-wakeup window.
  { base::MutexLock lock(s.wake_mu); }
  s.wake_cv.notify_one();
}

void KernelShards::submit_to(int shard, Packet pkt) {
  ShardItem item;
  item.kind = ShardItem::Kind::kPacket;
  item.pkt = std::move(pkt);
  push_item(idx(shard), std::move(item));
}

void KernelShards::tick_all(Timestamp now) {
  // The tick cadence doubles as the watchdog heartbeat check: a shard that
  // stopped consuming is detected here, before more work is queued on it.
  check_watchdog(now);
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    ShardItem item;
    item.kind = ShardItem::Kind::kMaintenance;
    item.ts = now;
    push_item(i, std::move(item));
  }
}

int KernelShards::packet_priority(const Packet& pkt) const {
  for (const auto& cls : priority_classes_) {
    if (cls.filter.matches(pkt.tuple())) return cls.priority;
  }
  return default_priority_;
}

bool KernelShards::admission_sheds(std::size_t shard, const Packet& pkt,
                                   std::size_t occ) {
  WatchdogState& w = watchdog_[shard];
  const std::size_t high = opts_.ring_high_watermark;
  const std::size_t low = std::min(opts_.ring_low_watermark, high);
  if (w.shedding) {
    // Hysteresis, mirroring the adaptive controller's enter/exit band:
    // once high is crossed the shard sheds everything until occupancy has
    // drained back to the low watermark.
    if (occ > low) return true;
    w.shedding = false;
  }
  if (occ >= high) {
    w.shedding = true;
    return true;
  }
  if (occ < low) return false;
  // PPL-mirroring ladder over [low, high): priority p is shed once
  // occupancy reaches low + (p+1)*(high-low)/levels, so the lowest
  // priority goes first and the highest survives until high itself —
  // the paper's invariant, transplanted to ring slots.
  const auto levels = static_cast<std::size_t>(ppl_levels_);
  int prio = packet_priority(pkt);
  if (prio < 0) prio = 0;
  if (prio >= ppl_levels_) prio = ppl_levels_ - 1;
  const std::size_t wm =
      low + (static_cast<std::size_t>(prio) + 1) * (high - low) / levels;
  return occ >= wm;
}

void KernelShards::shed_packet(std::size_t shard, const Packet& pkt,
                               bool stall, std::size_t occ) {
  Shard& s = *shards_[shard];
  const std::uint64_t bytes = pkt.wire_len();
  s.shed_pkts.fetch_add(1, std::memory_order_relaxed);
  s.shed_bytes.fetch_add(bytes, std::memory_order_relaxed);
  if (stall) {
    s.stall_shed_pkts.fetch_add(1, std::memory_order_relaxed);
    s.stall_shed_bytes.fetch_add(bytes, std::memory_order_relaxed);
  }
  if (producer_tracer_ != nullptr) {
    int prio = packet_priority(pkt);
    if (prio < 0) prio = 0;
    SCAP_TRACE_EVENT(producer_tracer_.get(), trace::TraceEventType::kRingShed,
                     static_cast<int>(shard), pkt.timestamp(), 0,
                     static_cast<std::uint16_t>(prio),
                     static_cast<std::uint32_t>(bytes),
                     static_cast<std::uint64_t>(occ));
    producer_trace_recorded_.store(producer_tracer_->recorded(),
                                   std::memory_order_relaxed);
    producer_trace_dropped_.store(producer_tracer_->dropped(),
                                  std::memory_order_relaxed);
  }
}

void KernelShards::declare_stall(std::size_t shard, Timestamp now) {
  WatchdogState& w = watchdog_[shard];
  if (w.degraded) return;
  worker_stalls_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t done =
      shards_[shard]->processed.load(std::memory_order_acquire);
  const std::uint64_t outstanding =
      pushed_[shard] > done ? pushed_[shard] - done : 0;
  if (producer_tracer_ != nullptr) {
    // scap-lint: allow(taint-sched) intentional telemetry: the stall event reports worker liveness, which IS schedule state; keyed-stall runs stay reproducible (chaos_smoke_mc)
    SCAP_TRACE_EVENT(
        producer_tracer_.get(), trace::TraceEventType::kWorkerStall,
        static_cast<int>(shard), now, 0,
        static_cast<std::uint16_t>(opts_.stall_policy),
        static_cast<std::uint32_t>(outstanding));
    producer_trace_recorded_.store(producer_tracer_->recorded(),
                                   std::memory_order_relaxed);
    producer_trace_dropped_.store(producer_tracer_->dropped(),
                                  std::memory_order_relaxed);
  }
  if (opts_.stall_policy == StallPolicy::kFatal) {
    SCAP_ASSERT(false,
                "shard worker stalled past the watchdog deadline "
                "(StallPolicy::kFatal)");
  }
  // kDegrade — or a Release-build kFatal, where the assert is compiled
  // out: isolate the dead shard; the others keep capturing, and its
  // traffic is shed into ring_stall_shed_* from now on.
  w.degraded = true;
}

void KernelShards::check_watchdog(Timestamp now) {
  if (opts_.stall_timeout.ns() <= 0 || workers_.empty()) return;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    WatchdogState& w = watchdog_[i];
    if (w.degraded) continue;
    Shard& s = *shards_[i];
    const std::uint64_t items = s.processed.load(std::memory_order_acquire);
    const bool idle = items >= pushed_[i];
    if (!w.armed || items != w.heartbeat || idle) {
      // Progress (or nothing outstanding): reset the heartbeat baseline.
      // The first check only seeds it — tick timestamps are anchored at
      // the first packet's (arbitrary-epoch) time, so a zero-initialized
      // baseline must never count as elapsed time.
      w.armed = true;
      w.heartbeat = items;
      w.last_progress = now;
      continue;
    }
    if (now - w.last_progress < opts_.stall_timeout) continue;
    // Deadline passed with outstanding items and no progress. Grant a
    // bounded real-time grace: a starved-but-healthy worker advances as
    // soon as the producer yields the CPU; a parked one never does, which
    // keeps the verdict deterministic in simulated time.
    bool progressed = false;
    for (std::size_t spin = 0; spin < opts_.stall_spin_limit; ++spin) {
      wake(s);
      std::this_thread::yield();
      if (s.processed.load(std::memory_order_acquire) != items) {
        progressed = true;
        break;
      }
    }
    if (progressed) {
      w.heartbeat = s.processed.load(std::memory_order_acquire);
      w.last_progress = now;
      continue;
    }
    declare_stall(i, now);
  }
}

void KernelShards::push_item(std::size_t shard, ShardItem item) {
  Shard& s = *shards_[shard];
  WatchdogState& w = watchdog_[shard];
  const bool is_packet = item.kind == ShardItem::Kind::kPacket;
  if (w.degraded) {
    // Degraded shard: its worker is gone. Packets are shed (counted, so
    // conservation still balances); maintenance markers are dropped
    // silently — the dead shard's kernel is no longer ticked.
    if (is_packet) shed_packet(shard, item.pkt, /*stall=*/true, 0);
    return;
  }
  base::SerialGuard prod(s.ring.producer());
  const std::size_t occ = s.ring.size_from_producer();
  if (occ > s.occupancy_peak.load(std::memory_order_relaxed)) {
    s.occupancy_peak.store(occ, std::memory_order_relaxed);  // single writer
  }
  if (is_packet) {
    // Injected admission fault first (keyed on (shard, per-shard push
    // ordinal), so the decision is interleaving-independent): a forced
    // shed, exactly as if a watermark had been crossed. Consulted even
    // with admission disabled, so chaos runs can force deterministic
    // sheds without enabling the occupancy ladder.
    ++w.admission_rolls;
    if (faultinject::should_fail_keyed(faultinject::FaultPoint::kRingPush,
                                       shard, w.admission_rolls) ||
        (opts_.ring_high_watermark > 0 &&
         admission_sheds(shard, item.pkt, occ))) {
      shed_packet(shard, item.pkt, /*stall=*/false, occ);
      return;
    }
  }
  std::size_t spins = 0;
  const bool bounded = opts_.stall_timeout.ns() > 0 && !workers_.empty();
  while (!s.ring.try_push(std::move(item))) {
    // Ring full: backpressure the producer (kick the worker, then yield)
    // rather than drop — with admission off, loss must happen inside the
    // kernels, where the paper's verdict accounting can see it. When the
    // watchdog is armed the wait is bounded: a dead worker trips the stall
    // policy instead of livelocking the producer.
    wake(s);
    // scap-lint: allow(hot-syscall) bounded producer backoff on a full ring; the watchdog turns a dead worker into a stall verdict instead of a livelock
    std::this_thread::yield();
    if (bounded && ++spins >= opts_.stall_spin_limit) {
      // scap-lint: allow(hot-cold-call) fires once when the spin limit trips, never on the per-packet path
      declare_stall(shard, is_packet ? item.pkt.timestamp() : item.ts);
      if (is_packet) shed_packet(shard, item.pkt, /*stall=*/true, occ);
      return;
    }
  }
  ++pushed_[shard];
  if (is_packet) s.submitted_pkts.fetch_add(1, std::memory_order_relaxed);
  if (s.sleeping.load(std::memory_order_relaxed)) wake(s);
}

void KernelShards::start(DrainFn drain) {
  SCAP_ASSERT(workers_.empty(), "shards already started");
  SCAP_ASSERT(!stopped_, "shards already stopped");
  drain_ = std::move(drain);
  workers_.reserve(shards_.size());
  for (int i = 0; i < num_shards(); ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token st) { worker_main(st, i); });
  }
}

void KernelShards::flush() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    if (workers_.empty()) {
      // No workers (pre-start or post-stop): the calling thread is the one
      // consumer and drains inline.
      base::SerialGuard consumer(s.ring.consumer());
      std::vector<ShardItem> buf(opts_.batch_size);
      std::vector<Packet> scratch(opts_.batch_size);
      for (;;) {
        const std::size_t n = s.ring.pop_batch(std::span<ShardItem>(buf));
        if (n == 0) break;
        process_items(s, static_cast<int>(i), {buf.data(), n}, scratch);
        s.processed.fetch_add(n, std::memory_order_release);
      }
    } else {
      // Bounded when the watchdog is armed: a dead worker trips the stall
      // policy (degraded shards are skipped — their residue is drained
      // inline by stop() once the workers are joined).
      std::size_t spins = 0;
      const bool bounded = opts_.stall_timeout.ns() > 0;
      while (!watchdog_[i].degraded &&
             s.processed.load(std::memory_order_acquire) < pushed_[i]) {
        wake(s);
        std::this_thread::yield();
        if (bounded && ++spins >= opts_.stall_spin_limit) {
          declare_stall(i, watchdog_[i].last_progress);
        }
      }
    }
  }
}

void KernelShards::service_fdir(nic::Nic& nic, Timestamp now) {
  if (fdir_queue_ == nullptr) return;
  base::SerialGuard consumer(fdir_queue_->consumer());
  while (auto cmd = fdir_queue_->try_pop()) {
    switch (cmd->kind) {
      case FdirCommand::Kind::kInstallCutoff: {
        // Apply-time counting: the install is counted only when the
        // hardware actually accepts a filter, so a rejection lands in
        // fdir_install_failures instead of overstating fdir_installs (the
        // shard kernels no longer count at enqueue). The software cutoff
        // still enforces either way.
        int installed = 0;
        for (const auto& f :
             nic::make_cutoff_filters(cmd->tuple, cmd->expires)) {
          if (nic.fdir().add(f) != 0) ++installed;
        }
        if (installed > 0) {
          (cmd->reinstall ? fdir_applied_reinstalls_ : fdir_applied_installs_)
              .fetch_add(1, std::memory_order_relaxed);
        } else {
          fdir_apply_failures_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case FdirCommand::Kind::kRemove: {
        std::uint64_t removed = nic.fdir().remove_tuple(cmd->tuple);
        if (cmd->also_reversed) {
          removed += nic.fdir().remove_tuple(cmd->tuple.reversed());
        }
        fdir_applied_removals_.fetch_add(removed, std::memory_order_relaxed);
        break;
      }
    }
  }
  // Hardware filter timers: shard kernels cannot see the FDIR table, so
  // expiry is serviced here; expired filters count as removals so the
  // removal-conservation law stays exact. The doubling-timeout reinstall
  // path is inert in queue mode (the shard's rec.fdir_installed stays
  // set) — a deliberate simplification, DESIGN.md §12.
  fdir_applied_removals_.fetch_add(nic.fdir().expire(now).size(),
                                   std::memory_order_relaxed);
}

void KernelShards::stop(Timestamp now) {
  if (stopped_) return;
  stopped_ = true;
  if (!workers_.empty()) {
    flush();
    // jthread destruction requests stop and joins; the stop_token wakes
    // any worker parked in wait() — including a fault-stalled one, which
    // parks interruptibly — so the join is bounded.
    workers_.clear();
    // A degraded shard's ring may still hold items its dead worker never
    // consumed; this thread is now the one consumer, so drain them inline
    // (flush() takes the inline path once workers_ is empty). The shard
    // kernel is consistent — stalls land between batches, never inside
    // one — so the residue is processed normally and the in-flight
    // accounting closes.
    flush();
  }
  for (int i = 0; i < num_shards(); ++i) {
    Shard& s = *shards_[idx(i)];
    base::MutexLock lock(s.mu);
    base::SerialGuard serial(s.kernel.serial());
    s.kernel.terminate_all(now);
    drain_shard(i, s.kernel);
    refresh_snapshot(s);
  }
  // Bounded-drain postcondition: every packet handed to submit_to() was
  // either pushed and consumed, or shed and counted — nothing is in
  // flight after stop().
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    SCAP_INVARIANT(s.submitted_pkts.load(std::memory_order_relaxed) ==
                       s.consumed_pkts.load(std::memory_order_relaxed),
                   "ring in-flight accounting did not close at stop()");
  }
}

void KernelShards::worker_main(std::stop_token st, int shard) {
  Shard& s = *shards_[idx(shard)];
  if (faultinject::should_fail_keyed(faultinject::FaultPoint::kWorkerStall,
                                     static_cast<std::uint64_t>(shard), 1)) {
    // Injected dead worker (consulted once per worker, keyed by shard so
    // the victim set is deterministic): park until stop, consuming
    // nothing. The wait is stop_token-interruptible, so stop()'s join
    // stays bounded; the watchdog sees the flat heartbeat and fires.
    base::MutexLock lock(s.wake_mu);
    s.wake_cv.wait(lock, st, [] { return false; });
    return;
  }
  // This thread is the ring's one consumer for its whole lifetime.
  base::SerialGuard consumer(s.ring.consumer());
  std::vector<ShardItem> buf(opts_.batch_size);
  // Sized like buf and reused for every batch: process_items() writes
  // packet runs into it by index, so the worker loop never grows it.
  std::vector<Packet> scratch(opts_.batch_size);
  std::uint64_t batches = 0;
  for (;;) {
    const std::size_t n = s.ring.pop_batch(std::span<ShardItem>(buf));
    if (n == 0) {
      if (st.stop_requested()) break;  // ring drained + stop => done
      base::MutexLock lock(s.wake_mu);
      s.sleeping.store(true, std::memory_order_relaxed);
      s.wake_cv.wait(lock, st, [&s] { return !s.ring.empty_approx(); });
      s.sleeping.store(false, std::memory_order_relaxed);
      continue;
    }
    // armed() gate first: this consult runs once per *batch*, and batch
    // count is scheduling-dependent, so an unconditional roll would leak
    // schedule state into the injector's `calls` counter (which chaos_run
    // --check-reproducible bit-compares when the point is unarmed).
    if (faultinject::armed(faultinject::FaultPoint::kWorkerDelay) &&
        faultinject::should_fail_keyed(faultinject::FaultPoint::kWorkerDelay,
                                       static_cast<std::uint64_t>(shard),
                                       ++batches)) {
      // Injected scheduling perturbation: nap with the batch already popped
      // so producer-side occupancy, wakeups and batch boundaries all shift.
      // The determinism contract says none of that may change normalized
      // stats or golden traces (tests/scap/schedule_perturbation_test).
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    process_items(s, shard, {buf.data(), n}, scratch);
    s.processed.fetch_add(n, std::memory_order_release);
  }
}

void KernelShards::process_items(Shard& s, int shard,
                                 std::span<ShardItem> items,
                                 std::vector<Packet>& scratch) {
  // One lock + one serial-domain entry per *batch* — the per-packet path
  // below is lock-free shard-private state.
  // scap-lint: allow(hot-mutex) one batch-granular lock (worker vs stop/check_invariants), amortized over the whole batch — never per packet
  base::MutexLock lock(s.mu);
  base::SerialGuard serial(s.kernel.serial());
  std::size_t i = 0;
  std::uint64_t pkts = 0;
  while (i < items.size()) {
    if (items[i].kind == ShardItem::Kind::kMaintenance) {
      // Settle the event queue before the tick so everything it observes —
      // the maintenance_tick trace event's chunk_bytes, the PPL pressure
      // sample — is a pure function of the ring prefix, not of where the
      // scheduler happened to place the batch boundary
      // (tests/scap/schedule_perturbation_test pins this bit-for-bit).
      drain_shard(shard, s.kernel);
      // scap-lint: allow(hot-cold-call) in-band maintenance marker: one tick per maintenance interval rides the ring so expiry stays ordered with traffic
      s.kernel.run_maintenance(items[i].ts);
      ++i;
      continue;
    }
    // Move the packet run into the preconstructed scratch slots by index
    // (never a growth call): items fits one pop_batch, which is capped at
    // batch_size == scratch.size().
    std::size_t run = 0;
    while (i < items.size() && items[i].kind == ShardItem::Kind::kPacket) {
      scratch[run++] = std::move(items[i].pkt);
      ++i;
    }
    s.kernel.handle_batch(std::span<const Packet>(scratch.data(), run),
                          scratch[run - 1].timestamp(), /*core=*/0);
    pkts += run;
  }
  // Consumed-packet tally for the in-flight accounting (updated inside the
  // batch's mu section, so invariant checks that hold mu see a consistent
  // pair with the kernel's pkts_seen).
  if (pkts > 0) s.consumed_pkts.fetch_add(pkts, std::memory_order_relaxed);
  drain_shard(shard, s.kernel);
  // scap-lint: allow(hot-cold-call) per-batch snapshot publish so stats() never blocks on a worker; amortized over the batch
  refresh_snapshot(s);
}

void KernelShards::refresh_snapshot(Shard& s) {
  base::MutexLock snap(s.snap_mu);
  s.snapshot = s.kernel.stats();
  if (s.tracer != nullptr) {
    s.snap_trace_recorded = s.tracer->recorded();
    s.snap_trace_dropped = s.tracer->dropped();
    s.snap_metrics = s.tracer->metrics();
  }
}

void KernelShards::drain_shard(int shard, ScapKernel& k) {
  if (drain_) {
    drain_(shard, k);
    return;
  }
  // Self-drain (benches, chaos_run): consume the events and release their
  // chunk accounting so the allocator balances.
  EventQueue& q = k.events(0);
  while (!q.empty()) {
    Event ev = q.pop();
    k.release_chunk(ev);
  }
}

void KernelShards::fold_shard_shed(KernelStats& into, const Shard& s) {
  into.ring_shed_pkts += s.shed_pkts.load(std::memory_order_relaxed);
  into.ring_shed_bytes += s.shed_bytes.load(std::memory_order_relaxed);
  into.ring_stall_shed_pkts +=
      s.stall_shed_pkts.load(std::memory_order_relaxed);
  into.ring_stall_shed_bytes +=
      s.stall_shed_bytes.load(std::memory_order_relaxed);
}

void KernelShards::fold_occupancy_peak(KernelStats& into, const Shard& s) {
  // The taint witness chain stats_determinism.inc's ring_occupancy_peak
  // row requires starts at this load: a scheduling-dependent value,
  // folded into the one field classified kSchedulingDependent.
  const std::uint64_t peak = s.occupancy_peak.load(std::memory_order_relaxed);
  if (peak > into.ring_occupancy_peak) into.ring_occupancy_peak = peak;
}

void KernelShards::fold_producer_counters(KernelStats& into) const {
  for (const auto& sp : shards_) {
    fold_shard_shed(into, *sp);
    // scap-lint: allow(taint-sched) discharged: fold_occupancy_peak drains only into ring_occupancy_peak, registry-classified kSchedulingDependent
    fold_occupancy_peak(into, *sp);
  }
  into.worker_stalls += worker_stalls_.load(std::memory_order_relaxed);
  // Apply-time FDIR accounting (service_fdir): in queue mode the per-shard
  // kernels no longer count installs/removals, these producer-side tallies
  // are the authoritative ones.
  into.fdir_installs += fdir_applied_installs_.load(std::memory_order_relaxed);
  into.fdir_reinstalls +=
      fdir_applied_reinstalls_.load(std::memory_order_relaxed);
  into.fdir_removals += fdir_applied_removals_.load(std::memory_order_relaxed);
  into.fdir_install_failures +=
      fdir_apply_failures_.load(std::memory_order_relaxed);
}

KernelStats KernelShards::stats() const {
  KernelStats total;
  for (const auto& sp : shards_) {
    base::MutexLock lock(sp->snap_mu);
    accumulate(total, sp->snapshot);
  }
  fold_producer_counters(total);
  return total;
}

KernelStats KernelShards::shard_stats(int shard) const {
  Shard& s = *shards_[idx(shard)];
  KernelStats out;
  {
    base::MutexLock lock(s.snap_mu);
    out = s.snapshot;
  }
  fold_shard_shed(out, s);
  // scap-lint: allow(taint-sched) discharged: fold_occupancy_peak drains only into ring_occupancy_peak, registry-classified kSchedulingDependent
  fold_occupancy_peak(out, s);
  return out;
}

std::string KernelShards::check_invariants() const {
  KernelStats total;
  std::uint64_t submitted = 0;
  std::uint64_t consumed = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    base::MutexLock lock(s.mu);
    base::SerialGuard serial(s.kernel.serial());
    std::string err = s.kernel.check_invariants();
    if (!err.empty()) {
      return "shard " + std::to_string(i) + ": " + err;
    }
    accumulate(total, s.kernel.stats());
    // Per-shard ring conservation: the packets this kernel has seen are
    // exactly the ones its consumer retired (both read under s.mu, so the
    // pair is batch-consistent), and the consumer can never be ahead of
    // the producer.
    const std::uint64_t sub = s.submitted_pkts.load(std::memory_order_relaxed);
    const std::uint64_t con = s.consumed_pkts.load(std::memory_order_relaxed);
    if (s.kernel.stats().pkts_seen != con) {
      return "shard " + std::to_string(i) + ": " +
             law_violation("pkts_seen == ring consumed_pkts",
                           s.kernel.stats().pkts_seen, con);
    }
    if (con > sub) {
      return "shard " + std::to_string(i) + ": " +
             law_violation("ring consumed_pkts <= submitted_pkts", con, sub);
    }
    submitted += sub;
    consumed += con;
  }
  fold_producer_counters(total);
  // Aggregate ring conservation: in-flight items are non-negative — at
  // quiescence stop() asserts exact equality per shard.
  if (consumed > submitted) {
    return "shard aggregate: " +
           law_violation("ring consumed <= submitted", consumed, submitted);
  }
  std::string err = total.check_conservation();
  if (!err.empty()) return "shard aggregate: " + err;
#if defined(SCAP_ENABLE_TRACE)
  // Producer trace conservation: every shed packet and every declared
  // stall has exactly one event on the producer tracer.
  if (producer_tracer_ != nullptr) {
    const std::uint64_t shed_events =
        producer_tracer_->recorded_of(trace::TraceEventType::kRingShed);
    if (shed_events != total.ring_shed_pkts) {
      return "shard aggregate: " +
             law_violation("trace(ring_shed) == ring_shed_pkts", shed_events,
                           total.ring_shed_pkts);
    }
    const std::uint64_t stall_events =
        producer_tracer_->recorded_of(trace::TraceEventType::kWorkerStall);
    if (stall_events != total.worker_stalls) {
      return "shard aggregate: " +
             law_violation("trace(worker_stall) == worker_stalls",
                           stall_events, total.worker_stalls);
    }
  }
#endif
  return {};
}

std::uint64_t KernelShards::trace_recorded() const {
  std::uint64_t total = producer_trace_recorded_.load(std::memory_order_relaxed);
  for (const auto& sp : shards_) {
    base::MutexLock lock(sp->snap_mu);
    total += sp->snap_trace_recorded;
  }
  return total;
}

std::uint64_t KernelShards::trace_dropped() const {
  std::uint64_t total = producer_trace_dropped_.load(std::memory_order_relaxed);
  for (const auto& sp : shards_) {
    base::MutexLock lock(sp->snap_mu);
    total += sp->snap_trace_dropped;
  }
  return total;
}

trace::MetricsRegistry KernelShards::trace_metrics() const {
  trace::MetricsRegistry total;
  for (const auto& sp : shards_) {
    base::MutexLock lock(sp->snap_mu);
    total.merge(sp->snap_metrics);
  }
  return total;
}

}  // namespace scap::kernel
