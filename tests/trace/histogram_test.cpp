// Histogram laws (ISSUE 4 satellite; mirrored in ScapKernel's conservation
// suite): bucket sums equal totals, totals equal their matching KernelStats
// scalars, the overflow bucket catches wide values, and merge() is
// associative/commutative so per-core registries fold into one summary.

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "faultinject/adversary.hpp"
#include "scap/capture.hpp"
#include "trace/export.hpp"
#include "trace/metrics.hpp"

namespace scap::trace {
namespace {

std::uint64_t bucket_sum(const Log2Histogram& h) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) sum += h.count(i);
  return sum;
}

TEST(Log2HistogramTest, BucketBoundaries) {
  // Bucket 0 is exactly the value 0; bucket i >= 1 is [2^(i-1), 2^i).
  EXPECT_EQ(Log2Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(3), 2u);
  for (std::size_t i = 2; i < Log2Histogram::kBuckets - 1; ++i) {
    const std::uint64_t lo = Log2Histogram::bucket_floor(i);
    EXPECT_EQ(Log2Histogram::bucket_of(lo), i);
    EXPECT_EQ(Log2Histogram::bucket_of(2 * lo - 1), i);
    EXPECT_EQ(Log2Histogram::bucket_of(2 * lo), i + 1);
  }
}

TEST(Log2HistogramTest, OverflowBucketCatchesWideValues) {
  Log2Histogram h;
  const std::size_t last = Log2Histogram::kBuckets - 1;
  h.add(Log2Histogram::bucket_floor(last));      // 2^30: first overflow value
  h.add(std::uint64_t{1} << 40);
  h.add(~std::uint64_t{0});
  EXPECT_EQ(h.count(last), 3u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(bucket_sum(h), h.total());
}

TEST(Log2HistogramTest, SumOfBucketsEqualsTotal) {
  Log2Histogram h;
  // Deterministic spread: exercise every bucket several times.
  for (std::uint64_t v = 0; v < 10000; v += 7) h.add(v * v);
  EXPECT_EQ(bucket_sum(h), h.total());
  h.reset();
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(bucket_sum(h), 0u);
}

Log2Histogram filled(std::uint64_t from, std::uint64_t to) {
  Log2Histogram h;
  for (std::uint64_t v = from; v < to; ++v) h.add(v * 13);
  return h;
}

TEST(Log2HistogramTest, MergeIsAssociativeAndCommutative) {
  const Log2Histogram a = filled(0, 100);
  const Log2Histogram b = filled(50, 5000);
  const Log2Histogram c = filled(4000, 4100);

  Log2Histogram ab_c = a;   // (a + b) + c
  ab_c.merge(b);
  ab_c.merge(c);
  Log2Histogram bc = b;     // a + (b + c)
  bc.merge(c);
  Log2Histogram a_bc = a;
  a_bc.merge(bc);
  EXPECT_EQ(ab_c, a_bc);

  Log2Histogram ba = b;     // b + a == a + b
  ba.merge(a);
  Log2Histogram ab = a;
  ab.merge(b);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(bucket_sum(ab_c), ab_c.total());
}

TEST(MetricsRegistryTest, MergeFoldsEveryHistogram) {
  MetricsRegistry x, y;
  x.stream_size_bytes.add(100);
  x.flow_probe_len.add(1);
  y.stream_size_bytes.add(5000);
  y.chunk_latency_us.add(30);
  y.queue_occupancy.add(0);
  x.merge(y);
  EXPECT_EQ(x.stream_size_bytes.total(), 2u);
  EXPECT_EQ(x.chunk_latency_us.total(), 1u);
  EXPECT_EQ(x.flow_probe_len.total(), 1u);
  EXPECT_EQ(x.queue_occupancy.total(), 1u);
}

// The binary format must round-trip the histogram block exactly (the text
// and Chrome exports are lossy by design; "SCTR" is not).
TEST(BinaryFormatTest, RoundTripsEventsAndHistograms) {
  Tracer tracer(TraceConfig{.ring_capacity = 64, .cores = 2});
  tracer.record(TraceEventType::kPacketVerdict, 0, Timestamp(1000), 7, 2, 60);
  tracer.record(TraceEventType::kStreamCreated, 1, Timestamp(2000), 7, 1, 0);
  tracer.record(TraceEventType::kMaintenanceTick, 0, Timestamp(3000), 0, 0, 5,
                4096);
  tracer.metrics().stream_size_bytes.add(12345);
  tracer.metrics().chunk_latency_us.add(0);
  tracer.metrics().flow_probe_len.add(3);
  tracer.metrics().queue_occupancy.add(~std::uint64_t{0});  // overflow bucket

  std::stringstream buf;
  write_binary(tracer, buf);
  BinaryTrace loaded;
  std::string error;
  ASSERT_TRUE(read_binary(buf, &loaded, &error)) << error;
  EXPECT_EQ(loaded.cores, 2u);
  EXPECT_EQ(loaded.dropped, 0u);
  ASSERT_EQ(loaded.events.size(), 3u);
  EXPECT_EQ(loaded.events, tracer.snapshot());
  EXPECT_EQ(loaded.metrics, tracer.metrics());
}

TEST(BinaryFormatTest, RejectsForeignAndTruncatedFiles) {
  BinaryTrace out;
  std::string error;
  std::stringstream foreign("not a trace at all");
  EXPECT_FALSE(read_binary(foreign, &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);

  Tracer tracer(TraceConfig{.ring_capacity = 8, .cores = 1});
  tracer.record(TraceEventType::kNicDrop, 0, Timestamp(1), 0, 0, 60);
  std::stringstream buf;
  write_binary(tracer, buf);
  const std::string whole = buf.str();
  std::stringstream cut(whole.substr(0, whole.size() / 2));
  EXPECT_FALSE(read_binary(cut, &out, &error));
  EXPECT_FALSE(error.empty());
}

// Integration: after a real capture the histogram totals must equal their
// matching KernelStats scalars. ScapKernel::check_invariants enforces the
// same laws (fatal under SCAP_INVARIANT_REPORT), so this also guards the
// wiring of the conservation suite itself.
TEST(HistogramConservation, TotalsMatchKernelScalars) {
#if !defined(SCAP_ENABLE_TRACE)
  GTEST_SKIP() << "built with SCAP_TRACE=OFF; metrics are never populated";
#else
  Capture cap("hist0", 256 * 1024, kernel::ReassemblyMode::kTcpFast,
              /*need_pkts=*/false);
  cap.set_cutoff(32 * 1024);
  cap.enable_tracing(1 << 14);
  cap.start();

  faultinject::AdversaryConfig acfg;
  acfg.seed = 77;
  acfg.packets = 4000;
  acfg.spacing = Duration::from_usec(500);
  faultinject::AdversaryGen gen(acfg);
  for (std::uint64_t i = 0; i < acfg.packets; ++i) cap.inject(gen.next());
  cap.stop();

  const CaptureStats s = cap.stats();
  ASSERT_TRUE(s.traced);
  EXPECT_GT(s.kernel.chunks_delivered, 0u);
  EXPECT_EQ(s.metrics.chunk_latency_us.total(), s.kernel.chunks_delivered);
  EXPECT_EQ(s.metrics.stream_size_bytes.total(), s.kernel.streams_terminated);
  for (const Log2Histogram* h :
       {&s.metrics.stream_size_bytes, &s.metrics.chunk_latency_us,
        &s.metrics.flow_probe_len, &s.metrics.queue_occupancy}) {
    EXPECT_EQ(bucket_sum(*h), h->total());
  }
  EXPECT_EQ(cap.kernel().check_invariants(), "");
#endif
}

}  // namespace
}  // namespace scap::trace
