// Trace/replay cross-check (ISSUE 4 satellite): tracing must be a pure
// observer. The same pcap replayed through two identically configured
// Captures — one with tracing enabled, one without — must produce the same
// KernelStats snapshot (every counter, both per-verdict histograms) and the
// same number of dispatched events. A divergence means an instrumentation
// site leaked into the datapath's behaviour.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "faultinject/adversary.hpp"
#include "packet/pcap.hpp"
#include "scap/capture.hpp"

namespace scap {
namespace {

struct RunResult {
  kernel::KernelStats kernel;
  std::uint64_t events_dispatched = 0;
  std::uint64_t nic_dropped = 0;
};

RunResult replay(const std::string& path, bool traced) {
  Capture cap("replay0", 128 * 1024, kernel::ReassemblyMode::kTcpStrict,
              /*need_pkts=*/false);
  cap.set_use_fdir(true);
  cap.set_defragment(true);
  cap.set_cutoff(8 * 1024);
  cap.set_parameter(Parameter::kChunkSize, 4 * 1024);
  cap.set_parameter(Parameter::kAdaptiveCutoff, 64 * 1024);
  if (traced) cap.enable_tracing(1 << 14);
  cap.start();
  cap.replay_pcap(path);
  cap.stop();
  EXPECT_EQ(cap.kernel().check_invariants(), "");

  const CaptureStats s = cap.stats();
  return RunResult{s.kernel, s.events_dispatched, s.nic_dropped_by_filter};
}

TEST(TraceReplayCrossCheck, TracingIsAPureObserver) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "scap_trace_replay.pcap")
          .string();
  {
    PcapWriter w(path);
    faultinject::AdversaryConfig acfg;
    acfg.seed = 55;
    acfg.packets = 3000;
    acfg.spacing = Duration::from_usec(800);
    faultinject::AdversaryGen gen(acfg);
    for (std::uint64_t i = 0; i < acfg.packets; ++i) w.write(gen.next());
  }

  const RunResult off = replay(path, /*traced=*/false);
  const RunResult on = replay(path, /*traced=*/true);
  std::filesystem::remove(path);

  // The workload must have actually exercised the instrumented paths.
  ASSERT_GT(off.kernel.pkts_seen, 0u);
  ASSERT_GT(off.kernel.chunks_delivered, 0u);
  ASSERT_GT(off.kernel.streams_terminated, 0u);

  // Every counter — including both per-verdict histograms — is identical.
  EXPECT_EQ(on.kernel, off.kernel);
  EXPECT_EQ(on.events_dispatched, off.events_dispatched);
  EXPECT_EQ(on.nic_dropped, off.nic_dropped);
}

}  // namespace
}  // namespace scap
