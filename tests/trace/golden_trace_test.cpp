// Golden-trace differential tests (ISSUE 4 satellite).
//
// Three seeded AdversaryGen workloads run through an inline Capture with
// tracing on; the full text serialization (event timeline + histogram
// block) must match the committed files in tests/trace/golden/ byte for
// byte. Because every timestamp is simulated-clock and every ring is
// per-core, the serialization is a pure function of the seed — any diff
// means a behaviour change in the datapath, not noise.
//
// Regenerating after an intentional change (see tests/trace/golden/README):
//   SCAP_REGEN_GOLDEN=1 ./build/tests/test_trace --gtest_filter='GoldenTrace.*'
// then review the diff and commit the new files.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "faultinject/adversary.hpp"
#include "scap/capture.hpp"
#include "trace/export.hpp"

namespace scap {
namespace {

struct Workload {
  const char* name;  // golden file: <name>.txt
  std::uint64_t seed;
  std::uint64_t packets;
  void (*configure)(Capture&);
};

// Three regimes: a plain capture, the cutoff/FDIR offload path, and the
// memory-pressure path that drives PPL + the adaptive controller.
const Workload kWorkloads[] = {
    {"plain", 101, 400,
     [](Capture& cap) { cap.set_parameter(Parameter::kChunkSize, 4 * 1024); }},
    {"cutoff_fdir", 202, 400,
     [](Capture& cap) {
       cap.set_use_fdir(true);
       cap.set_cutoff(8 * 1024);
       cap.set_parameter(Parameter::kChunkSize, 4 * 1024);
     }},
    {"overload", 303, 600,
     [](Capture& cap) {
       cap.set_cutoff(16 * 1024);
       cap.set_parameter(Parameter::kChunkSize, 8 * 1024);
       cap.set_parameter(Parameter::kBaseThresholdPercent, 80);
       cap.set_parameter(Parameter::kAdaptiveCutoff, 64 * 1024);
       cap.set_parameter(Parameter::kAdaptiveMinCutoff, 4 * 1024);
     }},
};

std::string run_workload(const Workload& w) {
  // Small memory pool so the overload workload actually sheds load.
  Capture cap("golden0", 80 * 1024, kernel::ReassemblyMode::kTcpStrict,
              /*need_pkts=*/false);
  cap.set_defragment(true);
  w.configure(cap);
  cap.enable_tracing(1 << 16);  // large enough that nothing wraps
  cap.start();

  faultinject::AdversaryConfig acfg;
  acfg.seed = w.seed;
  acfg.packets = w.packets;
  acfg.spacing = Duration::from_usec(1000);
  faultinject::AdversaryGen gen(acfg);
  for (std::uint64_t i = 0; i < w.packets; ++i) cap.inject(gen.next());
  cap.stop();

  EXPECT_EQ(cap.kernel().check_invariants(), "");
  EXPECT_EQ(cap.tracer()->dropped(), 0u) << "ring wrapped; grow the capacity";

  std::ostringstream os;
  trace::write_text(*cap.tracer(), trace::kernel_schema(), os);
  trace::write_histograms(cap.tracer()->metrics(), os);
  return os.str();
}

std::string golden_path(const Workload& w) {
  return std::string(SCAP_TRACE_GOLDEN_DIR) + "/" + w.name + ".txt";
}

class GoldenTrace : public ::testing::TestWithParam<Workload> {};

TEST_P(GoldenTrace, MatchesCommittedSerialization) {
  const Workload& w = GetParam();
  const std::string once = run_workload(w);
  // Bit-identical across two runs of the same seed (the acceptance gate),
  // independent of whether tracing is compiled in.
  ASSERT_EQ(once, run_workload(w)) << "trace is not a function of the seed";

#if !defined(SCAP_ENABLE_TRACE)
  GTEST_SKIP() << "built with SCAP_TRACE=OFF; no timeline to diff";
#else
  if (std::getenv("SCAP_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(w), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path(w);
    out << once;
    return;
  }
  std::ifstream in(golden_path(w), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path(w)
                         << " (run with SCAP_REGEN_GOLDEN=1 to create)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(once, expected.str())
      << "trace diverged from the golden file; if the change is intentional, "
         "regenerate with SCAP_REGEN_GOLDEN=1 and review the diff";
#endif
}

INSTANTIATE_TEST_SUITE_P(Workloads, GoldenTrace,
                         ::testing::ValuesIn(kWorkloads),
                         [](const auto& param_info) {
                           return std::string(param_info.param.name);
                         });

}  // namespace
}  // namespace scap
