#include "nic/rss.hpp"

#include <gtest/gtest.h>

#include "packet/craft.hpp"

namespace scap::nic {
namespace {

TEST(RssEngine, SymmetricKeyMapsBothDirectionsToSameQueue) {
  RssEngine rss(symmetric_rss_key(), 8);
  for (std::uint32_t i = 0; i < 200; ++i) {
    FiveTuple fwd{0x0a000001 + i * 3, 0xc0a80001 + i * 11,
                  static_cast<std::uint16_t>(1024 + i),
                  static_cast<std::uint16_t>(80 + (i % 3)), kProtoTcp};
    EXPECT_EQ(rss.queue_for(fwd), rss.queue_for(fwd.reversed()))
        << "asymmetric mapping at i=" << i;
  }
}

TEST(RssEngine, SpreadsFlowsReasonablyEvenly) {
  RssEngine rss(symmetric_rss_key(), 8);
  std::vector<int> counts(8, 0);
  const int flows = 8000;
  for (int i = 0; i < flows; ++i) {
    FiveTuple t{0x0a000000 + static_cast<std::uint32_t>(i * 7919),
                0xc0a80000 + static_cast<std::uint32_t>(i * 104729),
                static_cast<std::uint16_t>(1024 + i * 13),
                static_cast<std::uint16_t>(80), kProtoTcp};
    counts[static_cast<std::size_t>(rss.queue_for(t))]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, flows / 8 / 2);
    EXPECT_LT(c, flows / 8 * 2);
  }
}

TEST(RssEngine, PacketAndTupleAgree) {
  RssEngine rss(symmetric_rss_key(), 4);
  TcpSegmentSpec spec;
  spec.tuple = {0x01020304, 0x05060708, 1111, 80, kProtoTcp};
  Packet p = make_tcp_packet(spec, Timestamp(0));
  EXPECT_EQ(rss.queue_for(p), rss.queue_for(spec.tuple));
}

TEST(RssEngine, SingleQueueAlwaysZero) {
  RssEngine rss(default_rss_key(), 1);
  FiveTuple t{1, 2, 3, 4, kProtoTcp};
  EXPECT_EQ(rss.queue_for(t), 0);
}

}  // namespace
}  // namespace scap::nic
