#include "nic/rss.hpp"

#include <gtest/gtest.h>

#include <random>

#include "packet/craft.hpp"

namespace scap::nic {
namespace {

TEST(RssEngine, SymmetricKeyMapsBothDirectionsToSameQueue) {
  RssEngine rss(symmetric_rss_key(), 8);
  for (std::uint32_t i = 0; i < 200; ++i) {
    FiveTuple fwd{0x0a000001 + i * 3, 0xc0a80001 + i * 11,
                  static_cast<std::uint16_t>(1024 + i),
                  static_cast<std::uint16_t>(80 + (i % 3)), kProtoTcp};
    EXPECT_EQ(rss.queue_for(fwd), rss.queue_for(fwd.reversed()))
        << "asymmetric mapping at i=" << i;
  }
}

// Property test for the canonicalized 4-tuple: both directions of 10k
// random flows map to the same queue for every queue count 1-8, and with
// an arbitrary (non-symmetric) key — the symmetry must come from the
// canonicalization, not from a specially crafted key. This is the flow
// affinity the sharded kernel relies on: a flow's two directions must
// never land on different shards.
TEST(RssEngine, BothDirectionsSameQueueForEveryQueueCount) {
  std::mt19937 rng(0x5ca9u);
  std::uniform_int_distribution<std::uint32_t> ip;
  std::uniform_int_distribution<std::uint16_t> port;
  std::vector<FiveTuple> flows;
  flows.reserve(10000);
  for (int i = 0; i < 10000; ++i) {
    flows.push_back({ip(rng), ip(rng), port(rng), port(rng),
                     (i % 2) ? kProtoTcp : kProtoUdp});
  }
  for (int queues = 1; queues <= 8; ++queues) {
    RssEngine symmetric(symmetric_rss_key(), queues);
    RssEngine arbitrary(default_rss_key(), queues);
    for (const FiveTuple& fwd : flows) {
      const FiveTuple rev = fwd.reversed();
      ASSERT_EQ(symmetric.queue_for(fwd), symmetric.queue_for(rev))
          << "symmetric key, queues=" << queues;
      ASSERT_EQ(arbitrary.queue_for(fwd), arbitrary.queue_for(rev))
          << "arbitrary key, queues=" << queues;
    }
  }
}

TEST(RssEngine, SpreadsFlowsReasonablyEvenly) {
  RssEngine rss(symmetric_rss_key(), 8);
  std::vector<int> counts(8, 0);
  const int flows = 8000;
  for (int i = 0; i < flows; ++i) {
    FiveTuple t{0x0a000000 + static_cast<std::uint32_t>(i * 7919),
                0xc0a80000 + static_cast<std::uint32_t>(i * 104729),
                static_cast<std::uint16_t>(1024 + i * 13),
                static_cast<std::uint16_t>(80), kProtoTcp};
    counts[static_cast<std::size_t>(rss.queue_for(t))]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, flows / 8 / 2);
    EXPECT_LT(c, flows / 8 * 2);
  }
}

TEST(RssEngine, PacketAndTupleAgree) {
  RssEngine rss(symmetric_rss_key(), 4);
  TcpSegmentSpec spec;
  spec.tuple = {0x01020304, 0x05060708, 1111, 80, kProtoTcp};
  Packet p = make_tcp_packet(spec, Timestamp(0));
  EXPECT_EQ(rss.queue_for(p), rss.queue_for(spec.tuple));
}

TEST(RssEngine, SingleQueueAlwaysZero) {
  RssEngine rss(default_rss_key(), 1);
  FiveTuple t{1, 2, 3, 4, kProtoTcp};
  EXPECT_EQ(rss.queue_for(t), 0);
}

}  // namespace
}  // namespace scap::nic
