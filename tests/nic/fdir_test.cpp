#include "nic/fdir.hpp"

#include <gtest/gtest.h>

#include "packet/craft.hpp"

namespace scap::nic {
namespace {

FiveTuple tuple() { return {0x0a000001, 0x0a000002, 40000, 80, kProtoTcp}; }

Packet tcp_packet(std::uint8_t flags, const FiveTuple& t = tuple()) {
  TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  static const std::uint8_t data[100] = {};
  if (flags & kTcpAck) spec.payload = std::span<const std::uint8_t>(data);
  return make_tcp_packet(spec, Timestamp(0));
}

TEST(FdirTable, ExactTupleMatch) {
  FdirTable table;
  FdirFilter f;
  f.tuple = tuple();
  f.action = FdirAction::kDrop;
  f.expires = Timestamp::from_sec(10);
  table.add(f);

  EXPECT_NE(table.match(tcp_packet(kTcpAck)), nullptr);
  EXPECT_EQ(table.match(tcp_packet(kTcpAck, tuple().reversed())), nullptr);
}

TEST(FdirTable, CutoffFiltersDropDataButPassFinRst) {
  FdirTable table;
  for (const auto& f : make_cutoff_filters(tuple(), Timestamp::from_sec(10))) {
    table.add(f);
  }
  EXPECT_NE(table.match(tcp_packet(kTcpAck)), nullptr);
  EXPECT_NE(table.match(tcp_packet(kTcpAck | kTcpPsh)), nullptr);
  EXPECT_EQ(table.match(tcp_packet(kTcpAck | kTcpFin)), nullptr);
  EXPECT_EQ(table.match(tcp_packet(kTcpRst)), nullptr);
  EXPECT_EQ(table.match(tcp_packet(kTcpSyn)), nullptr);
  EXPECT_EQ(table.match(tcp_packet(kTcpSyn | kTcpAck)), nullptr);
}

TEST(FdirTable, RemoveById) {
  FdirTable table;
  FdirFilter f;
  f.tuple = tuple();
  f.expires = Timestamp::from_sec(1);
  std::uint64_t id = table.add(f);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_TRUE(table.remove(id));
  EXPECT_FALSE(table.remove(id));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.match(tcp_packet(kTcpAck)), nullptr);
}

TEST(FdirTable, RemoveTupleClearsBothCutoffFilters) {
  FdirTable table;
  for (const auto& f : make_cutoff_filters(tuple(), Timestamp::from_sec(10))) {
    table.add(f);
  }
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.remove_tuple(tuple()), 2u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FdirTable, ExpireReturnsTimedOutFilters) {
  FdirTable table;
  FdirFilter a;
  a.tuple = tuple();
  a.expires = Timestamp::from_sec(1);
  FdirFilter b;
  b.tuple = tuple().reversed();
  b.expires = Timestamp::from_sec(5);
  table.add(a);
  table.add(b);

  auto expired = table.expire(Timestamp::from_sec(2));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].tuple, tuple());
  EXPECT_EQ(table.size(), 1u);
  expired = table.expire(Timestamp::from_sec(10));
  EXPECT_EQ(expired.size(), 1u);
  EXPECT_EQ(table.size(), 0u);
}

TEST(FdirTable, EvictsSoonestExpiryWhenFull) {
  FdirTable table(2);
  FdirFilter f;
  f.tuple = tuple();
  f.expires = Timestamp::from_sec(100);
  table.add(f);
  FdirFilter g;
  g.tuple = {9, 9, 9, 9, kProtoTcp};
  g.expires = Timestamp::from_sec(1);  // shortest timeout: eviction victim
  table.add(g);

  FdirFilter h;
  h.tuple = {8, 8, 8, 8, kProtoTcp};
  h.expires = Timestamp::from_sec(50);
  std::optional<FdirFilter> evicted;
  table.add(h, &evicted);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->tuple, g.tuple);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.evictions(), 1u);
}

TEST(FdirTable, FlexMatchRespectsMask) {
  FdirTable table;
  FdirFilter f;
  f.tuple = tuple();
  f.has_flex = true;
  f.flex_offset = kTcpFlagsFlexOffset;
  f.flex_value = kTcpAck;
  f.flex_mask = 0x003f;
  f.expires = Timestamp::from_sec(10);
  table.add(f);
  // Pure ACK matches; ACK|PSH does not (PSH bit differs under the mask).
  EXPECT_NE(table.match(tcp_packet(kTcpAck)), nullptr);
  EXPECT_EQ(table.match(tcp_packet(kTcpAck | kTcpPsh)), nullptr);
}

TEST(FdirTable, SteeringFilterCarriesQueue) {
  FdirTable table;
  FdirFilter f;
  f.tuple = tuple();
  f.action = FdirAction::kToQueue;
  f.queue = 5;
  f.expires = Timestamp::from_sec(10);
  table.add(f);
  const FdirFilter* m = table.match(tcp_packet(kTcpAck));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->action, FdirAction::kToQueue);
  EXPECT_EQ(m->queue, 5);
}

}  // namespace
}  // namespace scap::nic
