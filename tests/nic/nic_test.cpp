#include "nic/nic.hpp"

#include <gtest/gtest.h>

#include "packet/craft.hpp"

namespace scap::nic {
namespace {

Packet tcp_packet(const FiveTuple& t, std::uint8_t flags = kTcpAck) {
  TcpSegmentSpec spec;
  spec.tuple = t;
  spec.flags = flags;
  return make_tcp_packet(spec, Timestamp(0));
}

TEST(Nic, RssDeliversToConsistentQueue) {
  Nic nic(4);
  FiveTuple t{0x0a000001, 0x0a000002, 40000, 80, kProtoTcp};
  auto r1 = nic.receive(tcp_packet(t));
  auto r2 = nic.receive(tcp_packet(t));
  EXPECT_EQ(r1.disposition, RxDisposition::kToQueue);
  EXPECT_EQ(r1.queue, r2.queue);
  // Both directions to the same queue (symmetric key).
  auto r3 = nic.receive(tcp_packet(t.reversed()));
  EXPECT_EQ(r3.queue, r1.queue);
  EXPECT_EQ(nic.stats().packets_seen, 3u);
}

TEST(Nic, DropFilterPreventsHostDelivery) {
  Nic nic(4);
  FiveTuple t{0x0a000001, 0x0a000002, 40000, 80, kProtoTcp};
  for (const auto& f : make_cutoff_filters(t, Timestamp::from_sec(10))) {
    nic.fdir().add(f);
  }
  auto r = nic.receive(tcp_packet(t, kTcpAck));
  EXPECT_EQ(r.disposition, RxDisposition::kDroppedByFilter);
  EXPECT_EQ(nic.stats().dropped_by_filter, 1u);
  // FIN escapes the filters and reaches a queue.
  auto fin = nic.receive(tcp_packet(t, kTcpAck | kTcpFin));
  EXPECT_EQ(fin.disposition, RxDisposition::kToQueue);
}

TEST(Nic, SteeringFilterOverridesRss) {
  Nic nic(8);
  FiveTuple t{0x0a000001, 0x0a000002, 40000, 80, kProtoTcp};
  int rss_queue = nic.receive(tcp_packet(t)).queue;
  int target = (rss_queue + 1) % 8;

  FdirFilter f;
  f.tuple = t;
  f.action = FdirAction::kToQueue;
  f.queue = target;
  f.expires = Timestamp::from_sec(10);
  nic.fdir().add(f);

  auto r = nic.receive(tcp_packet(t));
  EXPECT_EQ(r.queue, target);
  EXPECT_EQ(nic.stats().steered, 1u);
}

TEST(Nic, StatsAccumulateBytes) {
  Nic nic(2);
  FiveTuple t{1, 2, 3, 4, kProtoTcp};
  Packet p = tcp_packet(t);
  nic.receive(p);
  nic.receive(p);
  EXPECT_EQ(nic.stats().bytes_seen, 2ull * p.wire_len());
  nic.reset_stats();
  EXPECT_EQ(nic.stats().packets_seen, 0u);
  EXPECT_EQ(nic.stats().per_queue.size(), 2u);
}

}  // namespace
}  // namespace scap::nic
