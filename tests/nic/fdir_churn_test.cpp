// FDIR filter-table churn under exhaustion (DESIGN.md §8): a full table
// evicting, expiring and re-installing filters with doubled timeouts —
// the add/evict/re-install cycle the kernel's maintenance pass drives —
// plus injected hardware install failures.
#include "nic/fdir.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "faultinject/faultinject.hpp"

namespace scap::nic {
namespace {

using faultinject::FaultInjector;
using faultinject::FaultPoint;
using faultinject::FaultScope;
using faultinject::InjectionPlan;

FiveTuple tuple_n(std::uint32_t n) {
  return {0x0a000000 + n, 0x0a00ffff, static_cast<std::uint16_t>(10000 + n),
          80, kProtoTcp};
}

FdirFilter drop_filter(std::uint32_t n, Timestamp expires) {
  FdirFilter f;
  f.tuple = tuple_n(n);
  f.action = FdirAction::kDrop;
  f.expires = expires;
  return f;
}

TEST(FdirChurn, ExhaustionEvictsInExpiryOrder) {
  FdirTable table(4);
  for (std::uint32_t n = 0; n < 4; ++n) {
    ASSERT_NE(table.add(drop_filter(n, Timestamp::from_sec(10 + n))), 0u);
  }
  ASSERT_EQ(table.size(), 4u);

  // Each further add evicts exactly the soonest-to-expire survivor:
  // first the 10s filter, then the 11s one, and so on.
  for (std::uint32_t n = 4; n < 8; ++n) {
    std::optional<FdirFilter> evicted;
    ASSERT_NE(table.add(drop_filter(n, Timestamp::from_sec(100 + n)), &evicted),
              0u);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->expires, Timestamp::from_sec(10 + (n - 4)));
    EXPECT_EQ(table.size(), 4u);
  }
  EXPECT_EQ(table.evictions(), 4u);
  EXPECT_EQ(table.add_failures(), 0u);  // evictions are not failures
}

// The paper's re-install policy (§5.5): when a filter times out but its
// stream is still alive, it is re-installed with a doubled timeout, so a
// long-lived stream is evicted only O(log duration) times. Model a pool of
// long-lived streams churning through a small table and count per-stream
// expiry events.
TEST(FdirChurn, ReinstallDoublingKeepsChurnLogarithmic) {
  constexpr std::uint32_t kStreams = 16;
  const Duration base = Duration::from_sec(1);
  FdirTable table(kStreams);  // exactly enough: every expiry is real churn

  std::map<std::uint32_t, Duration> timeout;  // stream -> current timeout
  std::map<std::uint32_t, int> expiries;      // stream -> expiry count
  std::map<std::uint32_t, std::uint32_t> stream_of_ip;

  Timestamp now(0);
  for (std::uint32_t n = 0; n < kStreams; ++n) {
    timeout[n] = base;
    stream_of_ip[tuple_n(n).src_ip] = n;
    ASSERT_NE(table.add(drop_filter(n, now + base)), 0u);
  }

  // 1024 base-timeout intervals of virtual time, serviced every interval
  // the way the kernel's maintenance pass services the timeout list.
  const Timestamp end = Timestamp(0) + base * 1024;
  while (now < end) {
    now = now + base;
    for (const FdirFilter& expired : table.expire(now)) {
      const std::uint32_t n = stream_of_ip.at(expired.tuple.src_ip);
      ++expiries[n];
      timeout[n] = timeout[n] * 2;  // stream still alive: double and re-add
      ASSERT_NE(table.add(drop_filter(n, now + timeout[n])), 0u);
      ASSERT_LE(table.size(), table.capacity());
    }
  }

  // Doubling from 1s over 1024 intervals: expiries at 1,3,7,...,1023 —
  // exactly 10 per stream, never the ~1024 a fixed timeout would cost.
  for (std::uint32_t n = 0; n < kStreams; ++n) {
    EXPECT_EQ(expiries[n], 10) << "stream " << n;
  }
  EXPECT_EQ(table.size(), kStreams);
  EXPECT_EQ(table.evictions(), 0u);  // expiry service kept the table exact
}

TEST(FdirChurn, InjectedAddFailuresAreCountedNotInstalled) {
  FdirTable table(64);
  InjectionPlan plan;
  plan.at(FaultPoint::kFdirAdd).every_n = 2;  // every other add fails
  FaultInjector inj(plan);
  FaultScope scope(inj);

  std::uint32_t ok = 0, failed = 0;
  for (std::uint32_t n = 0; n < 32; ++n) {
    if (table.add(drop_filter(n, Timestamp::from_sec(10))) == 0) {
      ++failed;
    } else {
      ++ok;
    }
  }
  EXPECT_EQ(failed, 16u);
  EXPECT_EQ(ok, 16u);
  EXPECT_EQ(table.add_failures(), 16u);
  EXPECT_EQ(table.size(), 16u);
  EXPECT_EQ(inj.injected(FaultPoint::kFdirAdd), 16u);
}

TEST(FdirChurn, ZeroCapacityTableRejectsAndCounts) {
  FdirTable table(0);
  EXPECT_EQ(table.add(drop_filter(1, Timestamp::from_sec(10))), 0u);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.add_failures(), 1u);
}

// Exhaustion + injection together: the failure counter and the eviction
// counter stay disjoint, so an operator can tell "hardware rejected the
// install" apart from "the table was full and churned".
TEST(FdirChurn, EvictionsAndFailuresStayDisjoint) {
  FdirTable table(8);
  InjectionPlan plan;
  plan.at(FaultPoint::kFdirAdd).every_n = 3;
  FaultInjector inj(plan);
  FaultScope scope(inj);

  std::uint64_t installs = 0;
  for (std::uint32_t n = 0; n < 60; ++n) {
    if (table.add(drop_filter(n, Timestamp::from_sec(10 + n))) != 0) {
      ++installs;
    }
  }
  EXPECT_EQ(table.add_failures(), 20u);         // 60 / 3
  EXPECT_EQ(installs, 40u);
  EXPECT_EQ(table.size(), 8u);
  EXPECT_EQ(table.evictions(), installs - 8u);  // each overflow evicted one
}

}  // namespace
}  // namespace scap::nic
