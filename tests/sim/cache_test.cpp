#include "sim/cache.hpp"

#include <gtest/gtest.h>

namespace scap::sim {
namespace {

TEST(CacheModel, ColdMissThenHit) {
  CacheModel cache(64 * 1024, 64, 8);
  EXPECT_EQ(cache.access(0x1000, 64), 1u);
  EXPECT_EQ(cache.access(0x1000, 64), 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CacheModel, MultiLineAccessCountsEachLine) {
  CacheModel cache(64 * 1024, 64, 8);
  // 200 bytes starting mid-line touches 4 lines.
  EXPECT_EQ(cache.access(0x1020, 200), 4u);
}

TEST(CacheModel, LruEvictionWithinSet) {
  // Tiny direct-mapped-ish cache: 2 sets, 2 ways, 64B lines.
  CacheModel cache(4 * 64, 64, 2);
  ASSERT_EQ(cache.num_sets(), 2u);
  // Three distinct lines mapping to set 0 (line addresses 0, 2, 4).
  cache.access(0 * 64, 1);
  cache.access(2 * 64, 1);
  cache.access(4 * 64, 1);  // evicts line 0
  EXPECT_EQ(cache.access(0 * 64, 1), 1u);  // line 0 gone: miss
  EXPECT_EQ(cache.access(4 * 64, 1), 0u);  // line 4 resident
}

TEST(CacheModel, SequentialScanOfWorkingSetThatFits) {
  CacheModel cache(1 << 20, 64, 16);
  // First pass misses once per line; second pass all hits.
  const std::uint64_t total = 512 * 1024;
  std::uint64_t first = cache.access(0, total);
  EXPECT_EQ(first, total / 64);
  std::uint64_t second = cache.access(0, total);
  EXPECT_EQ(second, 0u);
}

TEST(CacheModel, ScatteredAccessesMissMoreThanContiguous) {
  // Model of the locality experiment: the same bytes, touched either
  // grouped per stream (contiguous) or interleaved across streams
  // (strided), re-read after the working set exceeds the cache.
  const std::uint64_t kCache = 256 * 1024;
  CacheModel contiguous(kCache, 64, 8);
  CacheModel scattered(kCache, 64, 8);

  // Write phase fills way beyond cache size.
  const int streams = 64;
  const int bytes_per_stream = 32 * 1024;
  // Contiguous: each stream's bytes adjacent; read back stream by stream
  // immediately after writing that stream.
  for (int s = 0; s < streams; ++s) {
    std::uint64_t base = static_cast<std::uint64_t>(s) * bytes_per_stream;
    contiguous.access(base, bytes_per_stream);   // write
    contiguous.access(base, bytes_per_stream);   // consume right away
  }
  // Scattered: segments interleaved round-robin (ring order), consumed only
  // after all writes (reassembled late).
  const int seg = 1024;
  for (int round = 0; round < bytes_per_stream / seg; ++round) {
    for (int s = 0; s < streams; ++s) {
      std::uint64_t addr =
          static_cast<std::uint64_t>(round * streams + s) * seg;
      scattered.access(addr, seg);
    }
  }
  for (int s = 0; s < streams; ++s) {
    for (int round = 0; round < bytes_per_stream / seg; ++round) {
      std::uint64_t addr =
          static_cast<std::uint64_t>(round * streams + s) * seg;
      scattered.access(addr, seg);
    }
  }
  EXPECT_LT(contiguous.misses(), scattered.misses());
}

}  // namespace
}  // namespace scap::sim
