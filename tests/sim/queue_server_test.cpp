#include "sim/queue_server.hpp"

#include <gtest/gtest.h>

namespace scap::sim {
namespace {

TEST(QueueServer, AdmitsWithinCapacity) {
  QueueServer qs(1000, 1e9);
  EXPECT_TRUE(qs.offer(Timestamp(0), 500, 100));
  EXPECT_TRUE(qs.offer(Timestamp(0), 500, 100));
  EXPECT_EQ(qs.admitted(), 2u);
  EXPECT_EQ(qs.dropped(), 0u);
}

TEST(QueueServer, DropsWhenQueueFull) {
  QueueServer qs(1000, 1e9);
  EXPECT_TRUE(qs.offer(Timestamp(0), 600, 1e6));  // busy for 1ms
  EXPECT_FALSE(qs.offer(Timestamp(0), 600, 1e6));
  EXPECT_EQ(qs.dropped(), 1u);
  EXPECT_EQ(qs.dropped_bytes(), 600u);
}

TEST(QueueServer, DrainsAfterServiceCompletes) {
  QueueServer qs(1000, 1e9);  // 1e9 cycles/sec
  // 1e6 cycles = 1 ms of service.
  EXPECT_TRUE(qs.offer(Timestamp(0), 800, 1e6));
  // At t=0.5ms the item is still in service: no room for 800 more bytes.
  EXPECT_FALSE(qs.offer(Timestamp::from_usec(500), 800, 1e6));
  // At t=1.1ms it has drained.
  EXPECT_TRUE(qs.offer(Timestamp::from_usec(1100), 800, 1e6));
}

TEST(QueueServer, CompletionTimesAreFifoAndSequential) {
  QueueServer qs(1 << 20, 2e9);
  qs.offer(Timestamp(0), 100, 2e6);  // 1 ms
  Timestamp first = qs.last_completion();
  EXPECT_EQ(first.usec(), 1000);
  qs.offer(Timestamp(0), 100, 2e6);  // queued behind: completes at 2 ms
  EXPECT_EQ(qs.last_completion().usec(), 2000);
  // Arrival after idle: starts at arrival time.
  qs.offer(Timestamp::from_usec(5000), 100, 2e6);
  EXPECT_EQ(qs.last_completion().usec(), 6000);
}

TEST(QueueServer, UtilizationMatchesLoad) {
  QueueServer qs(1 << 20, 1e9);
  // 10 items of 1e7 cycles each = 0.1 s of work over a 1 s horizon.
  for (int i = 0; i < 10; ++i) {
    qs.offer(Timestamp::from_usec(i * 100000), 100, 1e7);
  }
  EXPECT_NEAR(qs.utilization(Timestamp::from_sec(1.0)), 0.1, 1e-6);
}

TEST(QueueServer, ChargeConsumesCapacityWithoutQueueing) {
  QueueServer qs(100, 1e9);
  qs.charge(Timestamp(0), 5e8);  // 0.5 s of stolen cycles
  // Queue itself is empty...
  EXPECT_EQ(qs.backlog_bytes(Timestamp(0)), 0u);
  // ...but subsequent work starts only after the stolen time.
  qs.offer(Timestamp(0), 50, 1e6);
  EXPECT_GT(qs.last_completion().sec(), 0.5);
  EXPECT_NEAR(qs.utilization(Timestamp::from_sec(1.0)), 0.501, 1e-3);
}

TEST(QueueServer, BacklogReflectsQueuedBytes) {
  QueueServer qs(10000, 1e9);
  qs.offer(Timestamp(0), 1000, 1e6);
  qs.offer(Timestamp(0), 2000, 1e6);
  EXPECT_EQ(qs.backlog_bytes(Timestamp(0)), 3000u);
  EXPECT_EQ(qs.backlog_bytes(Timestamp::from_usec(1500)), 2000u);
  EXPECT_EQ(qs.backlog_bytes(Timestamp::from_usec(2500)), 0u);
}

TEST(QueueServer, SaturationCausesSustainedDrops) {
  // Offered load 2x capacity: about half the items must drop.
  QueueServer qs(8000, 1e9);
  const double cycles_per_item = 1e4;   // 10 us service
  const std::int64_t interval_ns = 5000;  // arrivals every 5 us
  int drops = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (!qs.offer(Timestamp(i * interval_ns), 1000, cycles_per_item)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, 0.5, 0.02);
}

TEST(QueueServer, ResetClearsEverything) {
  QueueServer qs(100, 1e9);
  qs.offer(Timestamp(0), 50, 1e6);
  qs.offer(Timestamp(0), 60, 1e6);  // drop
  qs.reset();
  EXPECT_EQ(qs.admitted(), 0u);
  EXPECT_EQ(qs.dropped(), 0u);
  EXPECT_DOUBLE_EQ(qs.busy_cycles(), 0.0);
  EXPECT_TRUE(qs.offer(Timestamp(0), 100, 1));
}

}  // namespace
}  // namespace scap::sim
