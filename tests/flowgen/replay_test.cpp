#include "flowgen/replay.hpp"

#include <gtest/gtest.h>

#include <set>

namespace scap::flowgen {
namespace {

Trace tiny_trace() {
  WorkloadConfig cfg;
  cfg.flows = 30;
  cfg.seed = 5;
  return build_trace(cfg);
}

TEST(Replayer, RateScalesDuration) {
  Trace t = tiny_trace();
  Replayer slow(t, 0.5);
  Replayer fast(t, 2.0);
  EXPECT_NEAR(slow.duration_sec() / fast.duration_sec(), 4.0, 0.01);

  Timestamp last_slow, last_fast;
  slow.for_each([&](const Packet& p) { last_slow = p.timestamp(); });
  fast.for_each([&](const Packet& p) { last_fast = p.timestamp(); });
  EXPECT_GT(last_slow.sec(), last_fast.sec());
}

TEST(Replayer, AchievedRateMatchesTarget) {
  Trace t = tiny_trace();
  for (double rate : {0.25, 1.0, 4.0}) {
    Replayer r(t, rate);
    std::uint64_t bytes = 0;
    Timestamp last;
    r.for_each([&](const Packet& p) {
      bytes += p.wire_len();
      last = p.timestamp();
    });
    const double achieved = static_cast<double>(bytes) * 8 / last.sec() / 1e9;
    EXPECT_NEAR(achieved, rate, rate * 0.05) << "target " << rate;
  }
}

TEST(Replayer, TimestampsMonotonicAcrossLoops) {
  Trace t = tiny_trace();
  Replayer r(t, 1.0, 3);
  Timestamp prev(-1);
  std::uint64_t count = 0;
  r.for_each([&](const Packet& p) {
    EXPECT_GE(p.timestamp(), prev);
    prev = p.timestamp();
    ++count;
  });
  EXPECT_EQ(count, t.packets.size() * 3);
  EXPECT_EQ(count, r.total_packets());
}

TEST(Replayer, LoopsRemapToDistinctFlows) {
  Trace t = tiny_trace();
  Replayer r(t, 1.0, 2);
  std::set<std::uint32_t> src_ips;
  r.for_each([&](const Packet& p) { src_ips.insert(p.tuple().src_ip); });
  // Every loop shifts IPs into its own /16, so loop 2 contributes new IPs.
  std::set<std::uint32_t> base_ips;
  for (const auto& pkt : t.packets) base_ips.insert(pkt.tuple().src_ip);
  EXPECT_EQ(src_ips.size(), base_ips.size() * 2);
}

TEST(Replayer, FrameBytesSharedAcrossLoops) {
  Trace t = tiny_trace();
  Replayer r(t, 1.0, 2);
  // Collect frame buffer pointers from both loops: identical sets.
  std::set<const void*> loop_frames[2];
  std::uint64_t i = 0;
  const std::uint64_t per_loop = t.packets.size();
  r.for_each([&](const Packet& p) {
    loop_frames[i / per_loop].insert(
        static_cast<const void*>(p.frame_buffer().get()));
    ++i;
  });
  EXPECT_EQ(loop_frames[0], loop_frames[1]);
}

}  // namespace
}  // namespace scap::flowgen
