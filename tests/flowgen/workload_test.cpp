#include "flowgen/workload.hpp"

#include <gtest/gtest.h>

#include <unordered_map>

#include "match/aho_corasick.hpp"
#include "match/corpus.hpp"

namespace scap::flowgen {
namespace {

WorkloadConfig small_config() {
  WorkloadConfig cfg;
  cfg.flows = 200;
  cfg.seed = 99;
  return cfg;
}

TEST(Workload, Deterministic) {
  Trace a = build_trace(small_config());
  Trace b = build_trace(small_config());
  ASSERT_EQ(a.packets.size(), b.packets.size());
  EXPECT_EQ(a.total_wire_bytes, b.total_wire_bytes);
  for (std::size_t i = 0; i < std::min<std::size_t>(100, a.packets.size());
       ++i) {
    EXPECT_EQ(a.packets[i].tuple(), b.packets[i].tuple());
    EXPECT_EQ(a.packets[i].timestamp(), b.packets[i].timestamp());
  }
}

TEST(Workload, TimestampsMonotonic) {
  Trace t = build_trace(small_config());
  for (std::size_t i = 1; i < t.packets.size(); ++i) {
    EXPECT_LE(t.packets[i - 1].timestamp(), t.packets[i].timestamp());
  }
}

TEST(Workload, AllPacketsDecode) {
  Trace t = build_trace(small_config());
  for (const auto& pkt : t.packets) {
    ASSERT_TRUE(pkt.valid());
    ASSERT_TRUE(pkt.is_tcp() || pkt.is_udp());
  }
}

TEST(Workload, TcpFractionRoughlyRespected) {
  WorkloadConfig cfg = small_config();
  cfg.flows = 2000;
  Trace t = build_trace(cfg);
  int tcp = 0;
  for (const auto& flow : t.flows) tcp += flow.tcp ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(tcp) / static_cast<double>(t.flows.size()),
              0.954, 0.03);
}

TEST(Workload, FlowByteAccountingMatchesPackets) {
  WorkloadConfig cfg = small_config();
  cfg.flows = 50;
  Trace t = build_trace(cfg);
  // Sum payload per flow from the packets and compare with ground truth.
  std::unordered_map<std::uint64_t, std::uint64_t> bytes_by_flow;
  auto key = [](const FiveTuple& tup) {
    return (static_cast<std::uint64_t>(tup.src_ip) << 32) ^ tup.dst_ip ^
           (static_cast<std::uint64_t>(tup.src_port) << 16) ^ tup.dst_port;
  };
  for (const auto& pkt : t.packets) {
    const FiveTuple c = pkt.tuple().canonical();
    bytes_by_flow[key(c)] += pkt.payload_len();
  }
  for (const auto& flow : t.flows) {
    const std::uint64_t expect = flow.client_bytes + flow.server_bytes;
    const std::uint64_t got = bytes_by_flow[key(flow.tuple.canonical())];
    EXPECT_EQ(got, expect) << to_string(flow.tuple);
  }
}

TEST(Workload, HeavyTailPresent) {
  WorkloadConfig cfg = small_config();
  cfg.flows = 3000;
  Trace t = build_trace(cfg);
  // Top 10% of flows should carry the majority of bytes.
  std::vector<std::uint64_t> sizes;
  for (const auto& flow : t.flows) {
    sizes.push_back(flow.client_bytes + flow.server_bytes);
  }
  std::sort(sizes.rbegin(), sizes.rend());
  std::uint64_t total = 0, top = 0;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    total += sizes[i];
    if (i < sizes.size() / 10) top += sizes[i];
  }
  EXPECT_GT(static_cast<double>(top) / static_cast<double>(total), 0.5);
}

TEST(Workload, PlantedPatternsAreFoundExactly) {
  WorkloadConfig cfg = small_config();
  cfg.flows = 300;
  cfg.patterns = match::make_corpus({.pattern_count = 50});
  cfg.plant_probability = 0.5;
  Trace t = build_trace(cfg);
  ASSERT_GT(t.planted_matches, 10u);

  // Reassemble every byte naively (per-flow, in order) and scan.
  match::AhoCorasick ac(cfg.patterns);
  std::uint64_t found = 0;
  for (const auto& pkt : t.packets) {
    // Patterns never span segments? They can — so scan per-direction
    // reassembled stream instead.
    (void)pkt;
  }
  std::unordered_map<std::string, std::string> streams;
  for (const auto& pkt : t.packets) {
    if (pkt.payload_len() == 0) continue;
    streams[to_string(pkt.tuple())].append(
        reinterpret_cast<const char*>(pkt.payload().data()),
        pkt.payload_len());
  }
  for (const auto& [k, v] : streams) {
    found += ac.scan(
        {reinterpret_cast<const std::uint8_t*>(v.data()), v.size()});
  }
  EXPECT_EQ(found, t.planted_matches);
}

TEST(Workload, ImpairmentsPreserveBytes) {
  WorkloadConfig cfg = small_config();
  cfg.flows = 100;
  cfg.duplicate_probability = 0.05;
  cfg.reorder_probability = 0.05;
  Trace t = build_trace(cfg);
  // With duplicates, raw packet payload sum >= ground-truth byte sum.
  std::uint64_t raw = 0;
  for (const auto& pkt : t.packets) raw += pkt.payload_len();
  EXPECT_GE(raw, t.total_payload_bytes);
}

TEST(ConcurrentTrace, ShapeAndInterleaving) {
  Trace t = build_concurrent_trace(10, 5, 100);
  // 10 SYNs + 10*5 data + 10 FINs.
  ASSERT_EQ(t.packets.size(), 10u + 50u + 10u);
  // First 10 are SYNs; all 10 streams distinct.
  std::set<std::uint16_t> ports;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(t.packets[i].has_flag(kTcpSyn));
    ports.insert(t.packets[i].tuple().src_port);
  }
  EXPECT_EQ(ports.size(), 10u);
  // Data is round-robin: packets 10..19 hit the 10 distinct streams.
  std::set<std::uint16_t> round_ports;
  for (int i = 10; i < 20; ++i) {
    EXPECT_EQ(t.packets[i].payload_len(), 100u);
    round_ports.insert(t.packets[i].tuple().src_port);
  }
  EXPECT_EQ(round_ports.size(), 10u);
  // Last 10 are FINs.
  for (std::size_t i = t.packets.size() - 10; i < t.packets.size(); ++i) {
    EXPECT_TRUE(t.packets[i].has_flag(kTcpFin));
  }
}

TEST(ConcurrentTrace, SequencesAdvancePerStream) {
  Trace t = build_concurrent_trace(2, 3, 50);
  // Stream 0 data packets: indices 2, 4, 6 (after 2 SYNs, round robin of 2).
  const std::uint32_t s0 = t.packets[2].seq();
  EXPECT_EQ(t.packets[4].seq(), s0 + 50);
  EXPECT_EQ(t.packets[6].seq(), s0 + 100);
}

}  // namespace
}  // namespace scap::flowgen
