#include "match/rules.hpp"

#include <gtest/gtest.h>

#include "match/aho_corasick.hpp"

namespace scap::match {
namespace {

TEST(Rules, ParsesBasicAlertRule) {
  auto set = parse_rules(
      R"(alert tcp any any -> any 80 (msg:"web attack"; content:"/etc/passwd"; sid:1001; rev:2;))");
  ASSERT_TRUE(set.errors.empty());
  ASSERT_EQ(set.rules.size(), 1u);
  const Rule& r = set.rules[0];
  EXPECT_EQ(r.action, "alert");
  EXPECT_EQ(r.protocol, kProtoTcp);
  EXPECT_EQ(r.dport_lo, 80);
  EXPECT_EQ(r.dport_hi, 80);
  EXPECT_EQ(r.msg, "web attack");
  EXPECT_EQ(r.sid, 1001u);
  EXPECT_EQ(r.rev, 2u);
  ASSERT_EQ(r.contents.size(), 1u);
  EXPECT_EQ(r.contents[0].bytes, "/etc/passwd");
}

TEST(Rules, HexContentDecoding) {
  auto set = parse_rules(
      R"(alert tcp any any -> any any (content:"HEAD|0D 0A 0d0a|tail"; sid:2;))");
  ASSERT_EQ(set.rules.size(), 1u);
  EXPECT_EQ(set.rules[0].contents[0].bytes, "HEAD\r\n\r\ntail");
}

TEST(Rules, MultipleContentsAndNocase) {
  auto set = parse_rules(
      R"(alert tcp any any -> any 80 (content:"GET"; content:"cmd.exe"; nocase; sid:3;))");
  ASSERT_EQ(set.rules.size(), 1u);
  ASSERT_EQ(set.rules[0].contents.size(), 2u);
  EXPECT_FALSE(set.rules[0].contents[0].nocase);
  EXPECT_TRUE(set.rules[0].contents[1].nocase);
}

TEST(Rules, HeaderMatching) {
  auto set = parse_rules(
      R"(alert tcp 10.0.0.0/8 any -> 192.168.1.5 1:1024 (content:"x"; sid:4;))");
  ASSERT_EQ(set.rules.size(), 1u);
  const Rule& r = set.rules[0];
  EXPECT_TRUE(r.matches_tuple({0x0a010203, 0xc0a80105, 5555, 80, kProtoTcp}));
  EXPECT_FALSE(r.matches_tuple({0x0b010203, 0xc0a80105, 5555, 80, kProtoTcp}));
  EXPECT_FALSE(r.matches_tuple({0x0a010203, 0xc0a80106, 5555, 80, kProtoTcp}));
  EXPECT_FALSE(
      r.matches_tuple({0x0a010203, 0xc0a80105, 5555, 2000, kProtoTcp}));
  EXPECT_FALSE(r.matches_tuple({0x0a010203, 0xc0a80105, 5555, 80, kProtoUdp}));
}

TEST(Rules, VariablesTreatedAsAny) {
  auto set = parse_rules(
      R"(alert tcp $EXTERNAL_NET any -> $HTTP_SERVERS $HTTP_PORTS (content:"a"; sid:5;))");
  ASSERT_EQ(set.rules.size(), 1u);
  EXPECT_TRUE(set.rules[0].matches_tuple({1, 2, 3, 4, kProtoTcp}));
}

TEST(Rules, CommentsAndBlanksSkipped) {
  auto set = parse_rules(
      "# a comment\n"
      "\n"
      "alert udp any any -> any 53 (content:\"dns\"; sid:6;)\n"
      "   # indented comment\n");
  EXPECT_EQ(set.rules.size(), 1u);
  EXPECT_TRUE(set.errors.empty());
}

TEST(Rules, BadLinesReportedButOthersLoad) {
  auto set = parse_rules(
      "alert tcp any any -> any 80 (content:\"good\"; sid:7;)\n"
      "drop tcp any any -> any 80 (content:\"bad action\"; sid:8;)\n"
      "alert tcp any any <- any 80 (content:\"bad arrow\"; sid:9;)\n"
      "alert tcp any any -> any 80 no options\n"
      "alert tcp any any -> any 80 (content:\"|XY|\"; sid:10;)\n");
  EXPECT_EQ(set.rules.size(), 1u);
  EXPECT_EQ(set.errors.size(), 4u);
  EXPECT_EQ(set.errors[0].line, 2u);
}

TEST(Rules, PatternsFeedAutomatonWithAttribution) {
  auto set = parse_rules(
      "alert tcp any any -> any 80 (msg:\"traversal\"; content:\"../\"; "
      "sid:100;)\n"
      "alert tcp any any -> any 80 (msg:\"shell\"; content:\"/bin/sh\"; "
      "content:\"exec\"; sid:200;)\n");
  ASSERT_EQ(set.rules.size(), 2u);
  const auto patterns = set.patterns();
  const auto owner = set.pattern_owner();
  ASSERT_EQ(patterns.size(), 3u);
  ASSERT_EQ(owner.size(), 3u);
  EXPECT_EQ(owner[0], 0u);
  EXPECT_EQ(owner[2], 1u);

  AhoCorasick ac(patterns);
  std::vector<std::uint32_t> hit_sids;
  const std::string payload = "GET /cgi/exec?cmd=/bin/sh HTTP/1.0";
  ac.scan({reinterpret_cast<const std::uint8_t*>(payload.data()),
           payload.size()},
          [&](std::size_t pattern, std::size_t) {
            hit_sids.push_back(set.rules[owner[pattern]].sid);
          });
  ASSERT_EQ(hit_sids.size(), 2u);
  EXPECT_EQ(hit_sids[0], 200u);  // "exec"
  EXPECT_EQ(hit_sids[1], 200u);  // "/bin/sh"
}

TEST(Rules, RoundTripRendering) {
  auto set = parse_rules(
      R"(alert tcp any any -> any 443 (msg:"tls thing"; content:"abc"; sid:42;))");
  ASSERT_EQ(set.rules.size(), 1u);
  const std::string text = to_string(set.rules[0]);
  EXPECT_NE(text.find("alert tcp"), std::string::npos);
  EXPECT_NE(text.find("sid:42"), std::string::npos);
  // The rendered rule re-parses.
  auto again = parse_rules(text);
  EXPECT_EQ(again.rules.size(), 1u);
  EXPECT_EQ(again.rules[0].sid, 42u);
}

TEST(Rules, PortRanges) {
  auto set = parse_rules(
      R"(alert tcp any 1024: -> any :80 (content:"r"; sid:11;))");
  ASSERT_EQ(set.rules.size(), 1u);
  EXPECT_EQ(set.rules[0].sport_lo, 1024);
  EXPECT_EQ(set.rules[0].sport_hi, 65535);
  EXPECT_EQ(set.rules[0].dport_lo, 0);
  EXPECT_EQ(set.rules[0].dport_hi, 80);
}

}  // namespace
}  // namespace scap::match
