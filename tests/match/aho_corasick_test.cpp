#include "match/aho_corasick.hpp"

#include <gtest/gtest.h>

#include <set>

#include "match/corpus.hpp"

namespace scap::match {
namespace {

std::span<const std::uint8_t> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(AhoCorasick, FindsSimplePatterns) {
  AhoCorasick ac({"he", "she", "his", "hers"});
  // The classic Aho-Corasick example: "ushers" contains she, he, hers.
  EXPECT_EQ(ac.scan(bytes_of("ushers")), 3u);
}

TEST(AhoCorasick, ReportsPatternIndexAndPosition) {
  AhoCorasick ac({"abc", "bcd"});
  std::set<std::pair<std::size_t, std::size_t>> hits;
  ac.scan(bytes_of("xabcdx"),
          [&](std::size_t pat, std::size_t end) { hits.insert({pat, end}); });
  EXPECT_TRUE(hits.contains({0, 4}));  // "abc" ends at 4
  EXPECT_TRUE(hits.contains({1, 5}));  // "bcd" ends at 5
  EXPECT_EQ(hits.size(), 2u);
}

TEST(AhoCorasick, NoFalsePositives) {
  AhoCorasick ac({"needle"});
  EXPECT_EQ(ac.scan(bytes_of("haystack without the n-word")), 0u);
  EXPECT_EQ(ac.scan(bytes_of("needl")), 0u);
  EXPECT_EQ(ac.scan(bytes_of("eedle")), 0u);
}

TEST(AhoCorasick, OverlappingOccurrences) {
  AhoCorasick ac({"aa"});
  EXPECT_EQ(ac.scan(bytes_of("aaaa")), 3u);
}

TEST(AhoCorasick, PatternIsPrefixOfAnother) {
  AhoCorasick ac({"abc", "abcdef"});
  EXPECT_EQ(ac.scan(bytes_of("abcdef")), 2u);
}

TEST(AhoCorasick, EmptyAutomatonAndEmptyInput) {
  AhoCorasick empty;
  EXPECT_EQ(empty.scan(bytes_of("anything")), 0u);
  AhoCorasick ac({"x"});
  EXPECT_EQ(ac.scan({}), 0u);
}

TEST(AhoCorasick, BinaryBytes) {
  std::string pat("\x00\xff\x01", 3);
  AhoCorasick ac({pat});
  std::string hay("zz\x00\xff\x01zz", 7);
  EXPECT_EQ(ac.scan(bytes_of(hay)), 1u);
}

TEST(AhoCorasick, StreamingAcrossChunkBoundary) {
  AhoCorasick ac({"boundary"});
  std::uint32_t state = AhoCorasick::root_state();
  std::uint64_t total = 0;
  total += ac.scan_stream(state, bytes_of("xxxxbou"));
  total += ac.scan_stream(state, bytes_of("ndaryxxx"));
  EXPECT_EQ(total, 1u);
  // A fresh whole-buffer scan of each piece separately misses it.
  EXPECT_EQ(ac.scan(bytes_of("xxxxbou")) + ac.scan(bytes_of("ndaryxxx")), 0u);
}

TEST(AhoCorasick, DuplicatePatternsCountTwice) {
  AhoCorasick ac({"dup", "dup"});
  EXPECT_EQ(ac.scan(bytes_of("a dup here")), 2u);
}

TEST(AhoCorasick, LargeCorpusScan) {
  auto patterns = make_corpus({.pattern_count = 2120});
  AhoCorasick ac(patterns);
  EXPECT_EQ(ac.pattern_count(), 2120u);
  // Plant three patterns in filler.
  std::string hay(50000, 'q');
  hay.replace(100, patterns[0].size(), patterns[0]);
  hay.replace(20000, patterns[500].size(), patterns[500]);
  hay.replace(49000, patterns[2119].size(), patterns[2119]);
  EXPECT_EQ(ac.scan(bytes_of(hay)), 3u);
}

TEST(Corpus, DeterministicAndMarked) {
  auto a = make_corpus({.pattern_count = 100});
  auto b = make_corpus({.pattern_count = 100});
  EXPECT_EQ(a, b);
  for (const auto& pat : a) {
    EXPECT_EQ(pat.front(), kPatternMarker);
    EXPECT_GE(pat.size(), 6u);
  }
  std::set<std::string> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), a.size());
}

}  // namespace
}  // namespace scap::match
