#include "base/clock.hpp"

#include <gtest/gtest.h>

namespace scap {
namespace {

TEST(Timestamp, ConversionsRoundTrip) {
  Timestamp t = Timestamp::from_sec(1.5);
  EXPECT_EQ(t.ns(), 1'500'000'000);
  EXPECT_EQ(t.usec(), 1'500'000);
  EXPECT_DOUBLE_EQ(t.sec(), 1.5);
}

TEST(Timestamp, Arithmetic) {
  Timestamp t(1000);
  Duration d(500);
  EXPECT_EQ((t + d).ns(), 1500);
  EXPECT_EQ((t - d).ns(), 500);
  EXPECT_EQ((Timestamp(2000) - t).ns(), 1000);
}

TEST(Timestamp, Ordering) {
  EXPECT_LT(Timestamp(1), Timestamp(2));
  EXPECT_EQ(Timestamp(5), Timestamp(5));
  EXPECT_GE(Duration(7), Duration(7));
}

TEST(Duration, Factories) {
  EXPECT_EQ(Duration::from_msec(3).ns(), 3'000'000);
  EXPECT_EQ(Duration::from_usec(3).ns(), 3'000);
  EXPECT_DOUBLE_EQ(Duration::from_sec(0.25).sec(), 0.25);
  EXPECT_EQ((Duration(10) * 3).ns(), 30);
}

TEST(VirtualClock, AdvancesMonotonically) {
  VirtualClock clock;
  EXPECT_EQ(clock.now().ns(), 0);
  clock.advance_to(Timestamp(100));
  EXPECT_EQ(clock.now().ns(), 100);
  clock.advance_to(Timestamp(50));  // never goes back
  EXPECT_EQ(clock.now().ns(), 100);
  clock.advance(Duration(25));
  EXPECT_EQ(clock.now().ns(), 125);
  clock.reset();
  EXPECT_EQ(clock.now().ns(), 0);
}

}  // namespace
}  // namespace scap
