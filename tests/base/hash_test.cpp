#include "base/hash.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace scap {
namespace {

std::span<const std::byte> bytes_of(const char* s) {
  return std::as_bytes(std::span<const char>(s, std::strlen(s)));
}

TEST(Fnv1a, KnownValues) {
  // FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a(bytes_of("a")), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a(bytes_of("foobar")), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, SeedChangesHash) {
  EXPECT_NE(fnv1a(bytes_of("abc"), 1), fnv1a(bytes_of("abc"), 2));
}

// Verified against the Microsoft RSS verification suite vectors
// (IPv4, TCP, default key).
TEST(Toeplitz, MicrosoftTestVectors) {
  const RssKey key = default_rss_key();
  struct Vector {
    std::uint32_t src_ip, dst_ip;
    std::uint16_t src_port, dst_port;
    std::uint32_t expected;
  };
  // Input order for the hash: dst_ip, src_ip, dst_port, src_port — as in the
  // Microsoft spec ("source address" first means the remote peer's address;
  // we follow the canonical published vectors).
  const Vector vectors[] = {
      // 66.9.149.187:2794 -> 161.142.100.80:1766 => 0x51ccc178
      {0x420995bb, 0xa18e6450, 2794, 1766, 0x51ccc178},
      // 199.92.111.2:14230 -> 65.69.140.83:4739 => 0xc626b0ea
      {0xc75c6f02, 0x41458c53, 14230, 4739, 0xc626b0ea},
  };
  for (const auto& v : vectors) {
    std::uint8_t input[12];
    // Microsoft spec: input = src_addr | dst_addr | src_port | dst_port,
    // where "src" is the packet's source. In the published vectors the
    // first address listed is the destination of the packet.
    input[0] = static_cast<std::uint8_t>(v.src_ip >> 24);
    input[1] = static_cast<std::uint8_t>(v.src_ip >> 16);
    input[2] = static_cast<std::uint8_t>(v.src_ip >> 8);
    input[3] = static_cast<std::uint8_t>(v.src_ip);
    input[4] = static_cast<std::uint8_t>(v.dst_ip >> 24);
    input[5] = static_cast<std::uint8_t>(v.dst_ip >> 16);
    input[6] = static_cast<std::uint8_t>(v.dst_ip >> 8);
    input[7] = static_cast<std::uint8_t>(v.dst_ip);
    input[8] = static_cast<std::uint8_t>(v.src_port >> 8);
    input[9] = static_cast<std::uint8_t>(v.src_port);
    input[10] = static_cast<std::uint8_t>(v.dst_port >> 8);
    input[11] = static_cast<std::uint8_t>(v.dst_port);
    EXPECT_EQ(toeplitz_hash(key, input), v.expected);
  }
}

TEST(Toeplitz, SymmetricKeyIsDirectionInvariant) {
  const RssKey key = symmetric_rss_key();
  auto hash_of = [&](std::uint32_t sip, std::uint32_t dip, std::uint16_t sp,
                     std::uint16_t dp) {
    std::uint8_t input[12] = {
        static_cast<std::uint8_t>(sip >> 24), static_cast<std::uint8_t>(sip >> 16),
        static_cast<std::uint8_t>(sip >> 8),  static_cast<std::uint8_t>(sip),
        static_cast<std::uint8_t>(dip >> 24), static_cast<std::uint8_t>(dip >> 16),
        static_cast<std::uint8_t>(dip >> 8),  static_cast<std::uint8_t>(dip),
        static_cast<std::uint8_t>(sp >> 8),   static_cast<std::uint8_t>(sp),
        static_cast<std::uint8_t>(dp >> 8),   static_cast<std::uint8_t>(dp)};
    return toeplitz_hash(key, input);
  };
  for (std::uint32_t i = 1; i < 50; ++i) {
    std::uint32_t sip = 0x0a000001 + i * 7;
    std::uint32_t dip = 0xc0a80001 + i * 13;
    std::uint16_t sp = static_cast<std::uint16_t>(1024 + i * 3);
    std::uint16_t dp = static_cast<std::uint16_t>(80 + (i % 5));
    EXPECT_EQ(hash_of(sip, dip, sp, dp), hash_of(dip, sip, dp, sp))
        << "direction asymmetry at i=" << i;
  }
}

TEST(Toeplitz, SpreadsFlowsAcrossQueues) {
  const RssKey key = default_rss_key();
  int counts[8] = {};
  for (std::uint32_t i = 0; i < 4000; ++i) {
    std::uint8_t input[12] = {};
    input[3] = static_cast<std::uint8_t>(i & 0xff);
    input[2] = static_cast<std::uint8_t>((i >> 8) & 0xff);
    input[7] = static_cast<std::uint8_t>(i * 7 & 0xff);
    input[9] = static_cast<std::uint8_t>(i * 13 & 0xff);
    counts[toeplitz_hash(key, input) % 8]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, 4000 / 8 / 2) << "queue badly underloaded";
    EXPECT_LT(c, 4000 / 8 * 2) << "queue badly overloaded";
  }
}

TEST(Mix64, Bijective) {
  EXPECT_NE(mix64(0), mix64(1));
  EXPECT_NE(mix64(1), mix64(2));
  EXPECT_EQ(mix64(12345), mix64(12345));
}

}  // namespace
}  // namespace scap
