#include "base/stats.hpp"

#include <gtest/gtest.h>

namespace scap {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, Reset) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h(100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_EQ(h.total(), 100u);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(Histogram, OverflowGoesToLastBucket) {
  Histogram h(10.0, 10);
  h.add(1e9);
  EXPECT_EQ(h.buckets().back(), 1u);
}

TEST(Pct, SafeOnZeroDenominator) {
  EXPECT_DOUBLE_EQ(pct(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(pct(1, 4), 25.0);
}

}  // namespace
}  // namespace scap
