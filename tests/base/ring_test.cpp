#include "base/ring.hpp"

#include <gtest/gtest.h>

#include <string>

namespace scap {
namespace {

TEST(Ring, PushPopFifoOrder) {
  Ring<int> r(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.push(i));
  for (int i = 0; i < 4; ++i) {
    auto v = r.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(r.pop().has_value());
}

TEST(Ring, DropsWhenFull) {
  Ring<int> r(2);
  EXPECT_TRUE(r.push(1));
  EXPECT_TRUE(r.push(2));
  EXPECT_FALSE(r.push(3));
  EXPECT_EQ(r.drops(), 1u);
  EXPECT_EQ(r.size(), 2u);
}

TEST(Ring, WrapsAround) {
  Ring<int> r(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(r.push(round));
    auto v = r.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
  EXPECT_EQ(r.drops(), 0u);
}

TEST(Ring, HighWaterTracksPeak) {
  Ring<int> r(8);
  r.push(1);
  r.push(2);
  r.push(3);
  r.pop();
  r.pop();
  EXPECT_EQ(r.high_water(), 3u);
}

TEST(Ring, MoveOnlyTypes) {
  Ring<std::unique_ptr<int>> r(2);
  EXPECT_TRUE(r.push(std::make_unique<int>(42)));
  auto v = r.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(Ring, ZeroCapacityClampedToOne) {
  Ring<int> r(0);
  EXPECT_EQ(r.capacity(), 1u);
  EXPECT_TRUE(r.push(1));
  EXPECT_FALSE(r.push(2));
}

TEST(Ring, ClearEmptiesButKeepsCounters) {
  Ring<int> r(2);
  r.push(1);
  r.push(2);
  r.push(3);  // drop
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.drops(), 1u);
  r.reset_counters();
  EXPECT_EQ(r.drops(), 0u);
}

}  // namespace
}  // namespace scap
