#include "base/ring.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace scap {
namespace {

TEST(Ring, PushPopFifoOrder) {
  Ring<int> r(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(r.push(i));
  for (int i = 0; i < 4; ++i) {
    auto v = r.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(r.pop().has_value());
}

TEST(Ring, DropsWhenFull) {
  Ring<int> r(2);
  EXPECT_TRUE(r.push(1));
  EXPECT_TRUE(r.push(2));
  EXPECT_FALSE(r.push(3));
  EXPECT_EQ(r.drops(), 1u);
  EXPECT_EQ(r.size(), 2u);
}

TEST(Ring, WrapsAround) {
  Ring<int> r(3);
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(r.push(round));
    auto v = r.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, round);
  }
  EXPECT_EQ(r.drops(), 0u);
}

TEST(Ring, HighWaterTracksPeak) {
  Ring<int> r(8);
  r.push(1);
  r.push(2);
  r.push(3);
  r.pop();
  r.pop();
  EXPECT_EQ(r.high_water(), 3u);
}

TEST(Ring, MoveOnlyTypes) {
  Ring<std::unique_ptr<int>> r(2);
  EXPECT_TRUE(r.push(std::make_unique<int>(42)));
  auto v = r.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 42);
}

TEST(Ring, ZeroCapacityClampedToOne) {
  Ring<int> r(0);
  EXPECT_EQ(r.capacity(), 1u);
  EXPECT_TRUE(r.push(1));
  EXPECT_FALSE(r.push(2));
}

TEST(Ring, ClearEmptiesButKeepsCounters) {
  Ring<int> r(2);
  r.push(1);
  r.push(2);
  r.push(3);  // drop
  r.clear();
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.drops(), 1u);
  r.reset_counters();
  EXPECT_EQ(r.drops(), 0u);
}

TEST(SpscRing, FifoOrderSingleThread) {
  SpscRing<int> r(8);
  base::SerialGuard prod(r.producer());
  base::SerialGuard cons(r.consumer());
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));  // full
  for (int i = 0; i < 8; ++i) {
    auto v = r.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> r(5);
  EXPECT_EQ(r.capacity(), 8u);
  SpscRing<int> r2(8);
  EXPECT_EQ(r2.capacity(), 8u);
}

TEST(SpscRing, PopBatchDrainsInOrder) {
  SpscRing<int> r(16);
  base::SerialGuard prod(r.producer());
  base::SerialGuard cons(r.consumer());
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(r.try_push(i));
  std::vector<int> out(4);
  EXPECT_EQ(r.pop_batch(out), 4u);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(out[3], 3);
  std::vector<int> rest(16);
  EXPECT_EQ(r.pop_batch(rest), 6u);
  EXPECT_EQ(rest[0], 4);
  EXPECT_EQ(rest[5], 9);
  EXPECT_EQ(r.pop_batch(rest), 0u);
}

TEST(SpscRing, MoveOnlyTypes) {
  SpscRing<std::unique_ptr<int>> r(2);
  base::SerialGuard prod(r.producer());
  base::SerialGuard cons(r.consumer());
  EXPECT_TRUE(r.try_push(std::make_unique<int>(7)));
  auto v = r.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

// Watermark admission keys off exact occupancy (size_from_producer), so the
// full/empty boundary must be exact at every wrap: push to exactly full,
// pop one, push one, repeated across several capacities' worth of traffic
// so both index counters cross the capacity and 2x-capacity wrap points.
TEST(SpscRing, ExactFullBoundaryAcrossWraps) {
  constexpr std::size_t kCap = 8;
  SpscRing<std::uint64_t> r(kCap);
  ASSERT_EQ(r.capacity(), kCap);
  base::SerialGuard prod(r.producer());
  base::SerialGuard cons(r.consumer());

  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  for (; next_push < kCap; ++next_push) ASSERT_TRUE(r.try_push(next_push));
  EXPECT_FALSE(r.try_push(next_push));  // exactly full
  EXPECT_EQ(r.size_from_producer(), kCap);

  // 3x capacity lockstep steps: the head/tail indices cross kCap after the
  // first lap and 2*kCap after the second, so a masking bug at either wrap
  // would surface as a lost/duplicated slot or a wrong size.
  for (std::size_t step = 0; step < 3 * kCap; ++step) {
    auto v = r.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, next_pop++);
    EXPECT_EQ(r.size_from_producer(), kCap - 1);
    ASSERT_TRUE(r.try_push(next_push++));
    EXPECT_FALSE(r.try_push(next_push));  // back to exactly full
    EXPECT_EQ(r.size_from_producer(), kCap);
  }

  while (next_pop < next_push) {
    auto v = r.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, next_pop++);
  }
  EXPECT_FALSE(r.try_pop().has_value());
  EXPECT_EQ(r.size_from_producer(), 0u);
}

// A producer spinning on a full ring must exit as soon as stop is
// requested even though the consumer never drains another item — the
// bounded-teardown guarantee KernelShards::stop() builds on. A hang here
// fails via the test timeout.
TEST(SpscRing, StopRequestWhileProducerBackpressured) {
  SpscRing<int> r(4);
  std::atomic<bool> stop{false};
  std::atomic<bool> blocked{false};

  std::thread producer([&] {
    base::SerialGuard prod(r.producer());
    for (int i = 0;; ++i) {
      while (!r.try_push(i)) {
        blocked.store(true, std::memory_order_release);
        if (stop.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
    }
  });

  while (!blocked.load(std::memory_order_acquire)) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  producer.join();

  // The ring still holds exactly the four items that fit, in order.
  base::SerialGuard cons(r.consumer());
  for (int i = 0; i < 4; ++i) {
    auto v = r.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(r.try_pop().has_value());
}

// Cross-thread stress: one producer pushes a counting sequence through a
// small ring (forcing wrap-arounds and full-ring backoff) while one
// consumer pops in batches; the consumer must observe the exact sequence.
// Run under TSan this also checks the acquire/release protocol.
TEST(SpscRing, ProducerConsumerStressKeepsSequence) {
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> r(64);

  std::thread producer([&] {
    base::SerialGuard prod(r.producer());
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!r.try_push(i)) std::this_thread::yield();
    }
  });

  std::uint64_t expected = 0;
  bool in_order = true;
  {
    base::SerialGuard cons(r.consumer());
    std::vector<std::uint64_t> batch(32);
    while (expected < kItems) {
      const std::size_t n = r.pop_batch(batch);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (batch[i] != expected) in_order = false;
        ++expected;
      }
    }
  }
  producer.join();
  EXPECT_TRUE(in_order);
  EXPECT_EQ(expected, kItems);
  EXPECT_TRUE(r.empty_approx());
}

TEST(MpscQueue, SingleThreadFifo) {
  MpscQueue<int> q(4);
  base::SerialGuard cons(q.consumer());
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_TRUE(q.try_push(4));
  EXPECT_FALSE(q.try_push(5));  // full
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_EQ(q.try_pop().value(), 2);
  EXPECT_TRUE(q.try_push(5));  // slot recycled
  EXPECT_EQ(q.try_pop().value(), 3);
  EXPECT_EQ(q.try_pop().value(), 4);
  EXPECT_EQ(q.try_pop().value(), 5);
  EXPECT_FALSE(q.try_pop().has_value());
}

// Multiple producers hammer the bounded queue while the single consumer
// drains; every pushed element must come out exactly once.
TEST(MpscQueue, MultiProducerDeliversEveryElementOnce) {
  constexpr int kProducers = 4;
  constexpr std::uint64_t kPerProducer = 20000;
  MpscQueue<std::uint64_t> q(256);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint64_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t tagged =
            (static_cast<std::uint64_t>(p) << 32) | i;
        while (!q.try_push(tagged)) std::this_thread::yield();
      }
    });
  }

  std::uint64_t next_expected[kProducers] = {};
  std::uint64_t received = 0;
  bool per_producer_order = true;
  {
    base::SerialGuard cons(q.consumer());
    while (received < kProducers * kPerProducer) {
      auto v = q.try_pop();
      if (!v.has_value()) {
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t p = *v >> 32;
      const std::uint64_t i = *v & 0xffffffffu;
      // Per-producer FIFO: each producer's elements arrive in push order.
      if (i != next_expected[p]) per_producer_order = false;
      next_expected[p] = i + 1;
      ++received;
    }
  }
  for (auto& t : producers) t.join();
  EXPECT_TRUE(per_producer_order);
  EXPECT_EQ(received, kProducers * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer);
  }
}

}  // namespace
}  // namespace scap
