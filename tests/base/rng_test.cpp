#include "base/rng.hpp"

#include <gtest/gtest.h>

namespace scap {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, BoundedStaysInBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
    auto v = rng.range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(Rng, ParetoIsHeavyTailedAboveScale) {
  Rng rng(17);
  int above = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.pareto(10.0, 1.2);
    ASSERT_GE(x, 10.0);
    if (x > 100.0) ++above;
  }
  // P(X > 100) = (10/100)^1.2 ~ 6.3%
  EXPECT_GT(above, 300);
  EXPECT_LT(above, 1300);
}

TEST(Rng, ChanceProbability) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

}  // namespace
}  // namespace scap
