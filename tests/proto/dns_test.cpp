#include "proto/dns.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace scap::proto {
namespace {

/// Hand-assembled DNS query for "www.example.com" (A, IN).
std::vector<std::uint8_t> query_bytes() {
  return {
      0x12, 0x34,              // id
      0x01, 0x00,              // flags: RD
      0x00, 0x01,              // qdcount
      0x00, 0x00,              // ancount
      0x00, 0x00, 0x00, 0x00,  // ns/ar
      3,    'w',  'w',  'w',  7, 'e', 'x', 'a', 'm', 'p', 'l', 'e',
      3,    'c',  'o',  'm',  0,
      0x00, 0x01,              // qtype A
      0x00, 0x01,              // qclass IN
  };
}

/// Response with a compression pointer back to the question name.
std::vector<std::uint8_t> response_bytes() {
  std::vector<std::uint8_t> b = {
      0x12, 0x34,
      0x81, 0x80,              // QR, RD, RA, rcode 0
      0x00, 0x01,              // qdcount
      0x00, 0x01,              // ancount
      0x00, 0x00, 0x00, 0x00,
      3,    'w',  'w',  'w',  7, 'e', 'x', 'a', 'm', 'p', 'l', 'e',
      3,    'c',  'o',  'm',  0,
      0x00, 0x01, 0x00, 0x01,
  };
  // Answer: pointer to offset 12, type A, class IN, TTL 300, rdlen 4.
  const std::uint8_t answer[] = {0xc0, 12,   0x00, 0x01, 0x00, 0x01,
                                 0x00, 0x00, 0x01, 0x2c, 0x00, 0x04,
                                 93,   184,  216,  34};
  b.insert(b.end(), answer, answer + sizeof(answer));
  return b;
}

TEST(Dns, ParsesQuery) {
  auto msg = parse_dns(query_bytes());
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->id, 0x1234);
  EXPECT_FALSE(msg->is_response);
  EXPECT_TRUE(msg->recursion_desired);
  ASSERT_EQ(msg->questions.size(), 1u);
  EXPECT_EQ(msg->questions[0].name, "www.example.com");
  EXPECT_EQ(msg->questions[0].qtype,
            static_cast<std::uint16_t>(DnsType::kA));
}

TEST(Dns, ParsesResponseWithCompression) {
  auto msg = parse_dns(response_bytes());
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->is_response);
  EXPECT_EQ(msg->rcode, 0);
  ASSERT_EQ(msg->answers.size(), 1u);
  EXPECT_EQ(msg->answers[0].name, "www.example.com");  // via pointer
  EXPECT_EQ(msg->answers[0].ttl, 300u);
  EXPECT_EQ(msg->answers[0].a_address(), "93.184.216.34");
}

TEST(Dns, RejectsTruncatedInputs) {
  auto full = response_bytes();
  for (std::size_t len = 0; len < full.size(); ++len) {
    auto msg = parse_dns(std::span<const std::uint8_t>(full.data(), len));
    // Prefixes that cut inside the header or records must fail; prefixes
    // that happen to end exactly after the question also fail because
    // ancount promises an answer.
    EXPECT_FALSE(msg.has_value()) << "prefix " << len;
  }
}

TEST(Dns, RejectsPointerLoop) {
  std::vector<std::uint8_t> evil = {
      0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // Name at offset 12 pointing at itself is a forward/self pointer.
      0xc0, 12, 0x00, 0x01, 0x00, 0x01,
  };
  EXPECT_FALSE(parse_dns(evil).has_value());
}

TEST(Dns, RejectsAbsurdCounts) {
  auto b = query_bytes();
  b[4] = 0xff;  // qdcount = 65281
  b[5] = 0x01;
  EXPECT_FALSE(parse_dns(b).has_value());
}

TEST(Dns, FuzzNeverCrashes) {

  std::uint64_t state = 0x5eed;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint8_t>(state >> 33);
  };
  for (int i = 0; i < 20000; ++i) {
    std::vector<std::uint8_t> junk(12 + (next() % 64));
    for (auto& byte : junk) byte = next();
    (void)parse_dns(junk);  // must not crash or hang
  }
  SUCCEED();
}

}  // namespace
}  // namespace scap::proto
