#include "proto/http.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace scap::proto {
namespace {

std::span<const std::uint8_t> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(HttpRequestParsing, SimpleGet) {
  HttpParser p(HttpParser::Role::kRequests);
  std::vector<HttpRequest> reqs;
  p.on_request([&](const HttpRequest& r) { reqs.push_back(r); });
  p.feed(bytes_of("GET /index.html HTTP/1.1\r\n"
                  "Host: example.com\r\n"
                  "User-Agent: scap-test\r\n"
                  "\r\n"));
  ASSERT_EQ(reqs.size(), 1u);
  EXPECT_EQ(reqs[0].method, "GET");
  EXPECT_EQ(reqs[0].target, "/index.html");
  EXPECT_EQ(reqs[0].version, "HTTP/1.1");
  ASSERT_EQ(reqs[0].headers.size(), 2u);
  ASSERT_NE(reqs[0].header("host"), nullptr);  // case-insensitive
  EXPECT_EQ(*reqs[0].header("host"), "example.com");
  EXPECT_EQ(reqs[0].body_bytes, 0u);
}

TEST(HttpRequestParsing, PostWithContentLength) {
  HttpParser p(HttpParser::Role::kRequests);
  std::vector<HttpRequest> reqs;
  p.on_request([&](const HttpRequest& r) { reqs.push_back(r); });
  p.feed(bytes_of("POST /submit HTTP/1.1\r\n"
                  "Content-Length: 11\r\n"
                  "\r\n"
                  "hello world"
                  "GET /next HTTP/1.1\r\n\r\n"));
  ASSERT_EQ(reqs.size(), 2u);
  EXPECT_EQ(reqs[0].method, "POST");
  EXPECT_EQ(reqs[0].body_bytes, 11u);
  EXPECT_EQ(reqs[1].method, "GET");  // pipelined message boundary respected
}

TEST(HttpRequestParsing, SplitAcrossArbitraryChunks) {
  const std::string wire =
      "GET /split HTTP/1.1\r\nHost: h\r\nContent-Length: 5\r\n\r\nabcde";
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    HttpParser p(HttpParser::Role::kRequests);
    int got = 0;
    p.on_request([&](const HttpRequest& r) {
      ++got;
      EXPECT_EQ(r.target, "/split");
      EXPECT_EQ(r.body_bytes, 5u);
    });
    p.feed(bytes_of(wire.substr(0, cut)));
    p.feed(bytes_of(wire.substr(cut)));
    EXPECT_EQ(got, 1) << "cut at " << cut;
  }
}

TEST(HttpResponseParsing, StatusAndFixedBody) {
  HttpParser p(HttpParser::Role::kResponses);
  std::vector<HttpResponse> resps;
  p.on_response([&](const HttpResponse& r) { resps.push_back(r); });
  p.feed(bytes_of("HTTP/1.1 404 Not Found\r\n"
                  "Content-Length: 9\r\n"
                  "Server: scap\r\n"
                  "\r\n"
                  "not here!"));
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].status_code, 404);
  EXPECT_EQ(resps[0].reason, "Not Found");
  EXPECT_EQ(resps[0].body_bytes, 9u);
}

TEST(HttpResponseParsing, ChunkedTransferEncoding) {
  HttpParser p(HttpParser::Role::kResponses);
  std::vector<HttpResponse> resps;
  p.on_response([&](const HttpResponse& r) { resps.push_back(r); });
  p.feed(bytes_of("HTTP/1.1 200 OK\r\n"
                  "Transfer-Encoding: chunked\r\n"
                  "\r\n"
                  "5\r\nhello\r\n"
                  "6\r\n world\r\n"
                  "0\r\n"
                  "\r\n"));
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].status_code, 200);
  EXPECT_EQ(resps[0].body_bytes, 11u);
}

TEST(HttpResponseParsing, ChunkedWithTrailersAndSplit) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "a\r\n0123456789\r\n0\r\nX-Trailer: v\r\n\r\n";
  for (std::size_t cut = 1; cut < wire.size(); cut += 3) {
    HttpParser p(HttpParser::Role::kResponses);
    int got = 0;
    p.on_response([&](const HttpResponse& r) {
      ++got;
      EXPECT_EQ(r.body_bytes, 10u);
    });
    p.feed(bytes_of(wire.substr(0, cut)));
    p.feed(bytes_of(wire.substr(cut)));
    EXPECT_EQ(got, 1) << "cut at " << cut;
  }
}

TEST(HttpResponseParsing, BodyToEofEmittedOnFinish) {
  HttpParser p(HttpParser::Role::kResponses);
  std::vector<HttpResponse> resps;
  p.on_response([&](const HttpResponse& r) { resps.push_back(r); });
  p.feed(bytes_of("HTTP/1.0 200 OK\r\n\r\nstream until close..."));
  EXPECT_TRUE(resps.empty());
  p.finish();
  ASSERT_EQ(resps.size(), 1u);
  EXPECT_EQ(resps[0].body_bytes, 21u);
}

TEST(HttpParsing, KeepAliveSequenceOfTransactions) {
  HttpParser p(HttpParser::Role::kResponses);
  int got = 0;
  p.on_response([&](const HttpResponse&) { ++got; });
  std::string wire;
  for (int i = 0; i < 5; ++i) {
    wire += "HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nabc";
  }
  p.feed(bytes_of(wire));
  EXPECT_EQ(got, 5);
  EXPECT_EQ(p.stats().responses, 5u);
  EXPECT_EQ(p.stats().body_bytes, 15u);
}

TEST(HttpParsing, MalformedStartLineEntersErrorState) {
  HttpParser p(HttpParser::Role::kRequests);
  int got = 0;
  p.on_request([&](const HttpRequest&) { ++got; });
  p.feed(bytes_of("THIS IS NOT HTTP AT ALL\n"
                  "GET / HTTP/1.1\r\n\r\n"));
  EXPECT_EQ(got, 0);
  EXPECT_TRUE(p.in_error());
  EXPECT_EQ(p.stats().parse_errors, 1u);
}

TEST(HttpParsing, BareLfLineEndingsAccepted) {
  HttpParser p(HttpParser::Role::kRequests);
  int got = 0;
  p.on_request([&](const HttpRequest& r) {
    ++got;
    EXPECT_EQ(*r.header("Host"), "lf.example");
  });
  p.feed(bytes_of("GET / HTTP/1.1\nHost: lf.example\n\n"));
  EXPECT_EQ(got, 1);
}

TEST(HttpParsing, HeaderFloodBounded) {
  HttpParser p(HttpParser::Role::kRequests);
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 100000; ++i) {
    wire += "X-Flood-" + std::to_string(i) + ": v\r\n";
  }
  p.feed(bytes_of(wire));
  EXPECT_TRUE(p.in_error());  // limits tripped, no unbounded growth
}

TEST(HttpParsing, BadContentLengthIsError) {
  HttpParser p(HttpParser::Role::kRequests);
  p.feed(bytes_of("POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\n"));
  EXPECT_TRUE(p.in_error());
}

TEST(HttpParsing, ZeroContentLengthEmitsImmediately) {
  HttpParser p(HttpParser::Role::kRequests);
  int got = 0;
  p.on_request([&](const HttpRequest& r) {
    ++got;
    EXPECT_EQ(r.body_bytes, 0u);
  });
  p.feed(bytes_of("POST /empty HTTP/1.1\r\nContent-Length: 0\r\n\r\n"));
  EXPECT_EQ(got, 1);
}

}  // namespace
}  // namespace scap::proto
