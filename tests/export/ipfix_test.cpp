#include "export/ipfix.hpp"

#include <gtest/gtest.h>

#include "base/bytes.hpp"

namespace scap::exporter {
namespace {

FlowRecord sample(std::uint16_t port) {
  FlowRecord r;
  r.tuple = {0x0a000001, 0xc0a80001, port, 80, kProtoTcp};
  r.bytes = 123456789ull;
  r.packets = 4242;
  r.first_seen = Timestamp::from_sec(100.0);
  r.last_seen = Timestamp::from_sec(101.5);
  return r;
}

TEST(Ipfix, RoundTripSingleRecord) {
  IpfixWriter writer(7);
  IpfixReader reader;
  const FlowRecord rec = sample(1000);
  auto bytes = writer.encode({&rec, 1}, Timestamp::from_sec(1234));
  auto msg = reader.decode(bytes);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->domain, 7u);
  EXPECT_EQ(msg->export_time_sec, 1234u);
  ASSERT_EQ(msg->records.size(), 1u);
  EXPECT_EQ(msg->records[0], rec);
}

TEST(Ipfix, TemplateOnlyInFirstMessage) {
  IpfixWriter writer;
  const FlowRecord rec = sample(1);
  auto first = writer.encode({&rec, 1}, Timestamp(0));
  auto second = writer.encode({&rec, 1}, Timestamp(0));
  EXPECT_GT(first.size(), second.size());  // template set only once

  // A reader that saw the first message can decode the second...
  IpfixReader reader;
  ASSERT_TRUE(reader.decode(first).has_value());
  auto msg2 = reader.decode(second);
  ASSERT_TRUE(msg2.has_value());
  EXPECT_EQ(msg2->records.size(), 1u);
  // ...but a fresh reader cannot (no template yet).
  IpfixReader fresh;
  EXPECT_FALSE(fresh.decode(second).has_value());
}

TEST(Ipfix, SequenceCountsDataRecords) {
  IpfixWriter writer;
  std::vector<FlowRecord> recs = {sample(1), sample(2), sample(3)};
  writer.encode(recs, Timestamp(0));
  EXPECT_EQ(writer.sequence(), 3u);
  auto bytes = writer.encode(recs, Timestamp(0));
  IpfixReader reader;
  // Sequence field of the second message reflects prior records.
  auto tmpl = writer.encode({}, Timestamp(0), /*force_template=*/true);
  ASSERT_TRUE(reader.decode(tmpl).has_value());
  auto msg = reader.decode(bytes);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->sequence, 3u);
  EXPECT_EQ(msg->records.size(), 3u);
}

TEST(Ipfix, EmptyMessageIsValid) {
  IpfixWriter writer;
  auto bytes = writer.encode({}, Timestamp(0));
  IpfixReader reader;
  auto msg = reader.decode(bytes);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->records.empty());
  EXPECT_TRUE(reader.has_template());
}

TEST(Ipfix, MalformedInputsRejected) {
  IpfixReader reader;
  EXPECT_FALSE(reader.decode({}).has_value());
  std::vector<std::uint8_t> junk(64, 0xab);
  EXPECT_FALSE(reader.decode(junk).has_value());

  IpfixWriter writer;
  const FlowRecord rec = sample(1);
  auto bytes = writer.encode({&rec, 1}, Timestamp(0));
  // Corrupt the message length.
  bytes[2] = 0xff;
  bytes[3] = 0xff;
  EXPECT_FALSE(reader.decode(bytes).has_value());
}

TEST(Ipfix, UnknownSetsSkipped) {
  IpfixWriter writer;
  const FlowRecord rec = sample(9);
  auto bytes = writer.encode({&rec, 1}, Timestamp(0));
  // Append an unknown set (id 999, 8 bytes) and patch the message length.
  const std::size_t insert_at = bytes.size();
  bytes.insert(bytes.end(), {0x03, 0xe7, 0x00, 0x08, 0xde, 0xad, 0xbe, 0xef});
  (void)insert_at;
  bytes[2] = static_cast<std::uint8_t>(bytes.size() >> 8);
  bytes[3] = static_cast<std::uint8_t>(bytes.size());
  IpfixReader reader;
  auto msg = reader.decode(bytes);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->records.size(), 1u);
}

TEST(Ipfix, ManyRecordsRoundTrip) {
  IpfixWriter writer;
  std::vector<FlowRecord> recs;
  for (std::uint16_t i = 0; i < 500; ++i) recs.push_back(sample(i));
  auto bytes = writer.encode(recs, Timestamp::from_sec(9));
  IpfixReader reader;
  auto msg = reader.decode(bytes);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->records.size(), 500u);
  for (std::uint16_t i = 0; i < 500; ++i) {
    EXPECT_EQ(msg->records[i].tuple.src_port, i);
  }
}

}  // namespace
}  // namespace scap::exporter
