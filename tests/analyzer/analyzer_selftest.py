#!/usr/bin/env python3
"""Meta-test for tools/scap_analyzer.py over tests/analyzer/fixtures/.

Every fixture encodes its own expected findings:

    foo();  // expect: <rule>           finding on this line
    // expect-next-line: <rule>         finding on the next line
                                        (for lines whose trailing comment
                                        position is already taken, e.g. a
                                        waiver under test)

The analyzer is run once in --fixtures mode and its JSON findings are
compared against the union of all expectations as an exact set of
(file, line, rule) triples — a missing finding, a spurious finding, a
finding on the wrong line, or a finding under the wrong rule all fail.
Two structural invariants are checked on top: every *_bad.cpp fixture
must yield at least one finding, and every *_good.cpp twin must yield
none (good twins must be clean across ALL rules, not just their own).

Exit status: 0 pass, 1 fail, 77 libclang unavailable (skip, matching
the analyzer's own skip code so ctest reports SKIP_RETURN_CODE).
"""

import json
import os
import re
import subprocess
import sys

EXIT_SKIP = 77

EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z-]+)")
EXPECT_NEXT_RE = re.compile(r"//\s*expect-next-line:\s*([a-z-]+)")


def collect_expectations(fixtures_dir):
    """Set of (file, line, rule) parsed from the fixtures themselves."""
    expected = set()
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(".cpp"):
            continue
        path = os.path.join(fixtures_dir, name)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                for m in EXPECT_RE.finditer(line):
                    expected.add((name, lineno, m.group(1)))
                for m in EXPECT_NEXT_RE.finditer(line):
                    expected.add((name, lineno + 1, m.group(1)))
    return expected


def validate_expectations(expected, scap_rules):
    """Harness sanity from the shared registry: an expectation naming an
    unknown rule would silently never match, and an analyzer rule with no
    fixture coverage is a rule the self-test cannot catch regressing."""
    ok = True
    owned = scap_rules.rules_for("analyzer")
    valid = set(owned) | {scap_rules.WAIVER_RULE,
                          scap_rules.STALE_WAIVER_RULE}
    for name, line, rule in sorted(expected):
        if rule not in valid:
            print(f"HARNESS  {name}:{line}: expectation names unknown "
                  f"rule [{rule}] (see tools/scap_rules.py)")
            ok = False
    covered = {rule for _, _, rule in expected}
    for rule in owned:
        if rule not in covered:
            print(f"HARNESS  rule [{rule}] has no fixture expectation — "
                  "the self-test cannot catch it regressing")
            ok = False
    return ok


def main():
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(here))
    analyzer = os.path.join(root, "tools", "scap_analyzer.py")
    fixtures = os.path.join(here, "fixtures")

    sys.path.insert(0, os.path.join(root, "tools"))
    import scap_rules
    expected = collect_expectations(fixtures)
    if not validate_expectations(expected, scap_rules):
        return 1

    proc = subprocess.run(
        [sys.executable, analyzer, "--fixtures", fixtures, "--json"],
        capture_output=True, text=True)
    if proc.returncode == EXIT_SKIP:
        print("analyzer_selftest: libclang unavailable, skipping")
        print(proc.stderr, file=sys.stderr, end="")
        return EXIT_SKIP
    if proc.returncode not in (0, 1):
        print(f"analyzer_selftest: analyzer exited {proc.returncode}",
              file=sys.stderr)
        print(proc.stderr, file=sys.stderr, end="")
        return 1

    try:
        findings = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        print(f"analyzer_selftest: bad JSON from analyzer: {e}",
              file=sys.stderr)
        print(proc.stdout, file=sys.stderr)
        return 1

    actual = {(f["file"], f["line"], f["rule"]) for f in findings}

    ok = True
    for miss in sorted(expected - actual):
        print(f"MISSING  {miss[0]}:{miss[1]}: expected finding "
              f"[{miss[2]}] was not reported")
        ok = False
    for extra in sorted(actual - expected):
        print(f"SPURIOUS {extra[0]}:{extra[1]}: unexpected finding "
              f"[{extra[2]}]")
        ok = False

    # Structural invariants over the fixture naming convention.
    flagged_files = {f for f, _, _ in actual}
    for name in sorted(os.listdir(fixtures)):
        if name.endswith("_bad.cpp") and name not in flagged_files:
            print(f"INVARIANT {name}: bad fixture produced no findings")
            ok = False
        if name.endswith("_good.cpp") and name in flagged_files:
            print(f"INVARIANT {name}: good twin produced findings")
            ok = False

    if not expected:
        print("analyzer_selftest: no expectations found in fixtures "
              "(broken harness)", file=sys.stderr)
        ok = False

    if ok:
        print(f"analyzer_selftest: {len(expected)} expected finding(s) "
              "matched exactly")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
