// Good twin for rule guard-coverage: every field in the pinned capability
// table carries its annotation. Zero findings. events_dispatched_ is a
// plain atomic by design (workers bump it lock-free) and is deliberately
// NOT in the table.
#define SCAP_CAPABILITY(x) __attribute__((capability(x)))
#define SCAP_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define SCAP_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))

namespace scap {

namespace kernel {
class ScapKernel {
 private:
  class SCAP_CAPABILITY("serial domain") SerialDomain {} serial_;
  int* nic_ SCAP_PT_GUARDED_BY(serial_) = nullptr;
  int* tracer_ SCAP_PT_GUARDED_BY(serial_) = nullptr;
};

class KernelShards {
 private:
  struct Shard {
    class SCAP_CAPABILITY("mutex") Mutex {} snap_mu;
    unsigned long snapshot SCAP_GUARDED_BY(snap_mu) = 0;
  };
  class SCAP_CAPABILITY("serial domain") SerialDomain {} producer_;
  unsigned long pushed_ SCAP_GUARDED_BY(producer_) = 0;
  struct WatchdogState {};
  WatchdogState watchdog_ SCAP_GUARDED_BY(producer_);
};
}  // namespace kernel

class Capture {
 private:
  class SCAP_CAPABILITY("mutex") Mutex {} kernel_mutex_;
  Mutex producer_mutex_;
  int* nic_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  int* kernel_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  int* tracer_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  long last_tick_ SCAP_GUARDED_BY(producer_mutex_) = 0;
  int* rx_queues_ SCAP_GUARDED_BY(producer_mutex_) = nullptr;
  struct RingPolicy {};
  RingPolicy ring_policy_ SCAP_GUARDED_BY(producer_mutex_);
  unsigned long events_dispatched_ = 0;  // unannotated atomic: fine
};

}  // namespace scap
