// Good twin for rule guard-coverage: every field in the pinned capability
// table carries its annotation. Zero findings.
#define SCAP_CAPABILITY(x) __attribute__((capability(x)))
#define SCAP_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define SCAP_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))

namespace scap {

namespace kernel {
class ScapKernel {
 private:
  class SCAP_CAPABILITY("serial domain") SerialDomain {} serial_;
  int* nic_ SCAP_PT_GUARDED_BY(serial_) = nullptr;
  int* tracer_ SCAP_PT_GUARDED_BY(serial_) = nullptr;
};
}  // namespace kernel

class Capture {
 private:
  class SCAP_CAPABILITY("mutex") Mutex {} kernel_mutex_;
  int* nic_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  int* kernel_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  int* tracer_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  unsigned long events_dispatched_ SCAP_GUARDED_BY(kernel_mutex_) = 0;
};

}  // namespace scap
