// Good twin for rule nondeterminism: all randomness flows from a seeded
// generator and all time from an injected virtual timestamp — the shapes
// scap::Rng and scap::Timestamp give the real code. Zero findings.
namespace scap {

class Rng {
 public:
  explicit Rng(unsigned long seed) : state_(seed) {}
  unsigned long next() {
    state_ = state_ * 6364136223846793005UL + 1442695040888963407UL;
    return state_;
  }

 private:
  unsigned long state_;
};

struct Timestamp {
  long ns = 0;
};

unsigned long jitter(Rng& rng) { return rng.next(); }

long virtual_now(const Timestamp& ts) { return ts.ns; }

}  // namespace scap
