// Good twin for the waiver discipline: a waiver that says why is honored
// and silences the mutex-discipline finding. Zero findings.
namespace std {
class mutex {};
}  // namespace std

namespace scap {

class Registry {
 private:
  // scap-lint: allow(mutex-discipline) interop shim for a third-party lock
  std::mutex mu_;
};

}  // namespace scap
