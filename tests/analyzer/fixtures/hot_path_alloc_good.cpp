// Good twin for rule hot-path-alloc: fixed-size storage and indices only —
// the shapes RecordPool / ChunkAllocator / the open-addressing FlowTable
// use on the real hot path. Must produce zero findings.
namespace scap::kernel {

struct FlowSlot {
  unsigned long key = 0;
  int value = 0;
};

struct HotPath {
  FlowSlot slots[64];
  int used = 0;
};

int lookup(const HotPath& h, unsigned long key) {
  for (int i = 0; i < h.used; ++i) {
    if (h.slots[i].key == key) return h.slots[i].value;
  }
  return -1;
}

}  // namespace scap::kernel
