// Bad twin for rule stale-waiver: the hot-path allocation this waiver
// once excused was refactored into plain arithmetic, but the waiver line
// outlived it. A waiver that suppresses nothing would silently bless the
// next allocation someone writes on this line — it must be removed.
namespace scap {

class Counters {
 public:
  int bump(int v) {
    // expect-next-line: stale-waiver
    // scap-lint: allow(hot-path-alloc) the bump used to stage into a scratch map
    total_ += v;
    return total_;
  }

 private:
  int total_ = 0;
};

}  // namespace scap
