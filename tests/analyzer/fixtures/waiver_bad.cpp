// Bad twin for the waiver discipline: a waiver with no reason suppresses
// the underlying finding but is itself a finding — waivers are audited,
// and "because I said so" does not survive review.
namespace std {
class mutex {};
}  // namespace std

namespace scap {

class Registry {
 private:
  // expect-next-line: waiver
  std::mutex mu_;  // scap-lint: allow(mutex-discipline)
};

}  // namespace scap
