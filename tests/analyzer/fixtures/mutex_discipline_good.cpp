// Good twin for rule mutex-discipline: annotated wrapper types (modelled
// on base::Mutex / base::MutexLock) carry the capability annotations the
// analysis needs. Zero findings.
namespace scap::base {

class __attribute__((capability("mutex"))) Mutex {
 public:
  void lock() __attribute__((acquire_capability()));
  void unlock() __attribute__((release_capability()));
};

class __attribute__((scoped_lockable)) MutexLock {
 public:
  explicit MutexLock(Mutex& mu) __attribute__((acquire_capability(mu)));
  ~MutexLock() __attribute__((release_capability()));
};

}  // namespace scap::base

namespace scap {

class Registry {
 public:
  void touch() {
    base::MutexLock hold(mu_);
    ++epoch_;
  }

 private:
  base::Mutex mu_;
  unsigned long epoch_ __attribute__((guarded_by(mu_))) = 0;
};

}  // namespace scap
