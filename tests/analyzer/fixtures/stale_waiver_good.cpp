// Good twin for rule stale-waiver: the waiver sits on a live hot-path
// allocation and suppresses it — used waivers are honored, and neither
// the allocation nor the waiver is reported.
namespace scap {

class Staging {
 public:
  int* grow() {
    // scap-lint: allow(hot-path-alloc) one-time staging buffer, recycled for the stream lifetime
    return new int[64];
  }
};

}  // namespace scap
