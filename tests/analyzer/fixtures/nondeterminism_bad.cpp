// Bad twin for rule nondeterminism: libc rand(), a wall-clock read and a
// std::random_device declaration — each resolved through the AST, so a
// using-declaration or alias would not hide them either.
extern "C" int rand(void);
extern "C" long time(long*);

namespace std {
class random_device {
 public:
  unsigned operator()();
};
}  // namespace std

namespace scap {

int jitter() {
  return rand();  // expect: nondeterminism
}

long wall_now() {
  return time(nullptr);  // expect: nondeterminism
}

unsigned seed_from_hardware() {
  std::random_device rd;  // expect: nondeterminism
  (void)rd;
  return 0;
}

}  // namespace scap
