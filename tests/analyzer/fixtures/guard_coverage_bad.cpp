// Bad twin for rule guard-coverage: two fields from the pinned capability
// table (DESIGN.md §11) lost their annotations — exactly what happens when
// someone deletes a SCAP_GUARDED_BY to silence a thread-safety error
// instead of fixing the locking.
#define SCAP_CAPABILITY(x) __attribute__((capability(x)))
#define SCAP_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define SCAP_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))

namespace scap {

namespace kernel {
class ScapKernel {
 private:
  class SCAP_CAPABILITY("serial domain") SerialDomain {} serial_;
  int* nic_ SCAP_PT_GUARDED_BY(serial_) = nullptr;
  int* tracer_ = nullptr;  // expect: guard-coverage
};
}  // namespace kernel

class Capture {
 private:
  class SCAP_CAPABILITY("mutex") Mutex {} kernel_mutex_;
  int* nic_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  int* kernel_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  int* tracer_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  unsigned long events_dispatched_ = 0;  // expect: guard-coverage
};

}  // namespace scap
