// Bad twin for rule guard-coverage: fields from the pinned capability
// table (DESIGN.md §11) lost their annotations — exactly what happens when
// someone deletes a SCAP_GUARDED_BY to silence a thread-safety error
// instead of fixing the locking. The sharded-datapath entries (producer
// tick state, KernelShards push counters, per-shard snapshots) are pinned
// too.
#define SCAP_CAPABILITY(x) __attribute__((capability(x)))
#define SCAP_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define SCAP_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))

namespace scap {

namespace kernel {
class ScapKernel {
 private:
  class SCAP_CAPABILITY("serial domain") SerialDomain {} serial_;
  int* nic_ SCAP_PT_GUARDED_BY(serial_) = nullptr;
  int* tracer_ = nullptr;  // expect: guard-coverage
};

class KernelShards {
 private:
  struct Shard {
    class SCAP_CAPABILITY("mutex") Mutex {} snap_mu;
    unsigned long snapshot = 0;  // expect: guard-coverage
  };
  class SCAP_CAPABILITY("serial domain") SerialDomain {} producer_;
  unsigned long pushed_ = 0;  // expect: guard-coverage
  struct WatchdogState {};
  WatchdogState watchdog_;  // expect: guard-coverage
};
}  // namespace kernel

class Capture {
 private:
  class SCAP_CAPABILITY("mutex") Mutex {} kernel_mutex_;
  Mutex producer_mutex_;
  int* nic_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  int* kernel_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  int* tracer_ SCAP_PT_GUARDED_BY(kernel_mutex_) = nullptr;
  long last_tick_ = 0;  // expect: guard-coverage
  int* rx_queues_ SCAP_GUARDED_BY(producer_mutex_) = nullptr;
  struct RingPolicy {};
  RingPolicy ring_policy_;  // expect: guard-coverage
  unsigned long events_dispatched_ = 0;  // unannotated atomic: fine now
};

}  // namespace scap
