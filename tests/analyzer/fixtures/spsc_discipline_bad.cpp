// Bad twin for rule spsc-discipline: the single-threaded ends of the
// lock-free queues called from functions that neither declare a serial
// capability nor enter one with a SerialGuard. Each call is exactly the
// bug the rule exists for: a second thread could call the same function
// and corrupt the queue's single-producer (or single-consumer) indices.
#define SCAP_CAPABILITY(x) __attribute__((capability(x)))
#define SCAP_REQUIRES(...) \
  __attribute__((requires_capability(__VA_ARGS__)))

namespace scap {

class SCAP_CAPABILITY("serial domain") SerialDomain {};

template <typename T>
class SpscRing {
 public:
  bool try_push(const T& v) SCAP_REQUIRES(producer_) {
    slot_ = v;
    return true;
  }
  bool try_pop(T& out) SCAP_REQUIRES(consumer_) {
    out = slot_;
    return true;
  }
  int pop_batch(T* out, int n) SCAP_REQUIRES(consumer_) {
    out[0] = slot_;
    return n > 0 ? 1 : 0;
  }

 private:
  SerialDomain producer_;
  SerialDomain consumer_;
  T slot_{};
};

template <typename T>
class MpscQueue {
 public:
  bool try_push(const T& v) {  // multi-producer: any thread may call
    slot_ = v;
    return true;
  }
  bool try_pop(T& out) SCAP_REQUIRES(consumer_) {
    out = slot_;
    return true;
  }

 private:
  SerialDomain consumer_;
  T slot_{};
};

void unguarded_produce(SpscRing<int>& ring) {
  ring.try_push(42);  // expect: spsc-discipline
}

void unguarded_consume(SpscRing<int>& ring) {
  int v;
  ring.try_pop(v);  // expect: spsc-discipline
}

class Worker {
 public:
  void drain(SpscRing<int>& ring) {
    int buf[8];
    ring.pop_batch(buf, 8);  // expect: spsc-discipline
  }
  void service(MpscQueue<int>& q) {
    int v;
    q.try_pop(v);  // expect: spsc-discipline
  }
};

void enqueue_command(MpscQueue<int>& q) {
  q.try_push(7);  // MPSC producer side: legal from any thread, no finding
}

}  // namespace scap
