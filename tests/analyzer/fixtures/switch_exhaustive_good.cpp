// Good twin for rule switch-exhaustive: the watched enum is fully
// enumerated with no default, and an unwatched enum may use default freely
// (the rule is scoped to Verdict / TraceEventType / DecodeError).
namespace scap::kernel {

enum class Verdict { kStored, kDropped, kIgnored };
enum class LocalPhase { kWarmup, kSteady, kDrain };

int exhaustive(Verdict v) {
  switch (v) {
    case Verdict::kStored:
      return 1;
    case Verdict::kDropped:
      return 2;
    case Verdict::kIgnored:
      return 3;
  }
  return 0;
}

int unwatched(LocalPhase p) {
  switch (p) {
    case LocalPhase::kSteady:
      return 1;
    default:
      return 0;
  }
}

}  // namespace scap::kernel
