// Bad twin for rule switch-exhaustive: one switch hides future enumerators
// behind default:, the other silently misses a case (and -Wswitch would
// not fire in a build that forgot the flag; the analyzer always does).
namespace scap::kernel {

enum class Verdict { kStored, kDropped, kIgnored };

int with_default(Verdict v) {
  switch (v) {
    case Verdict::kStored:
      return 1;
    case Verdict::kDropped:
      return 2;
    default:  // expect: switch-exhaustive
      return 0;
  }
}

int missing_case(Verdict v) {
  // expect-next-line: switch-exhaustive
  switch (v) {
    case Verdict::kStored:
      return 1;
    case Verdict::kDropped:
      return 2;
  }
  return 0;
}

}  // namespace scap::kernel
