// Bad twin for rule mutex-discipline: a raw std::mutex smuggled behind a
// type alias plus a std::lock_guard local. Raw primitives are invisible to
// the clang thread-safety analysis — nothing can be SCAP_GUARDED_BY them —
// so only the annotated wrappers in src/base/mutex.hpp are allowed.
namespace std {
class mutex {
 public:
  void lock();
  void unlock();
};
template <class M>
class lock_guard {
 public:
  explicit lock_guard(M& m);
};
}  // namespace std

namespace scap {

using Lock = std::mutex;  // the alias does not hide it from the AST

class Registry {
 public:
  void touch() {
    std::lock_guard<std::mutex> hold(mu_);  // expect: mutex-discipline
    ++epoch_;
  }

 private:
  Lock mu_;  // expect: mutex-discipline
  unsigned long epoch_ = 0;
};

}  // namespace scap
