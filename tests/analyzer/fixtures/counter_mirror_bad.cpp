// Bad twin for rule counter-mirror: KernelStats grows a counter that the
// mirror function never touches — the exact bug class where a counter is
// added on the hot path but silently vanishes from every report. In
// fixture mode the rule checks member references within this file.
namespace scap::kernel {

struct KernelStats {
  unsigned long pkts_seen = 0;
  unsigned long bytes_seen = 0;
  unsigned long orphan_counter = 0;  // expect: counter-mirror
};

struct ApiStats {
  unsigned long pkts_seen;
  unsigned long bytes_seen;
};

void mirror(const KernelStats& k, ApiStats& out) {
  out.pkts_seen = k.pkts_seen;
  out.bytes_seen = k.bytes_seen;
}

}  // namespace scap::kernel
