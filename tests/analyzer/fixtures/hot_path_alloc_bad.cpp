// Bad twin for rule hot-path-alloc. Every allocation here is one the old
// token-regex lint could not see: the container hides behind a type alias
// and an auto-deduced local, and the operator new sits in plain code the
// AST walks regardless of formatting. Fixture files are hermetic (fake std
// declarations, no includes) and are all treated as hot-path files.
namespace std {
template <class K, class V>
class unordered_map {
 public:
  unordered_map() {}
};
}  // namespace std

namespace scap::kernel {

using FlowMap = std::unordered_map<int, int>;  // the alias itself is fine

struct HotPath {
  FlowMap flows;  // expect: hot-path-alloc
};

int sum_lookup() {
  auto scratch = FlowMap();  // expect: hot-path-alloc
  (void)scratch;
  return 0;
}

int* grow_table() {
  return new int[64];  // expect: hot-path-alloc
}

}  // namespace scap::kernel
