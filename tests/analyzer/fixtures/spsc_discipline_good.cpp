// Good twin for rule spsc-discipline: every single-threaded queue end is
// reached either from a function annotated with the owning SerialDomain
// capability or after entering the domain with a SerialGuard. Zero
// findings.
#define SCAP_CAPABILITY(x) __attribute__((capability(x)))
#define SCAP_REQUIRES(...) \
  __attribute__((requires_capability(__VA_ARGS__)))
#define SCAP_SCOPED_CAPABILITY __attribute__((scoped_lockable))

namespace scap {

class SCAP_CAPABILITY("serial domain") SerialDomain {};

class SCAP_SCOPED_CAPABILITY SerialGuard {
 public:
  explicit SerialGuard(SerialDomain&) {}
};

template <typename T>
class SpscRing {
 public:
  bool try_push(const T& v) SCAP_REQUIRES(producer_) {
    slot_ = v;
    return true;
  }
  bool try_pop(T& out) SCAP_REQUIRES(consumer_) {
    out = slot_;
    return true;
  }
  int pop_batch(T* out, int n) SCAP_REQUIRES(consumer_) {
    out[0] = slot_;
    return n > 0 ? 1 : 0;
  }
  SerialDomain& producer() { return producer_; }
  SerialDomain& consumer() { return consumer_; }

 private:
  SerialDomain producer_;
  SerialDomain consumer_;
  T slot_{};
};

template <typename T>
class MpscQueue {
 public:
  bool try_push(const T& v) {  // multi-producer: any thread may call
    slot_ = v;
    return true;
  }
  bool try_pop(T& out) SCAP_REQUIRES(consumer_) {
    out = slot_;
    return true;
  }
  SerialDomain& consumer() { return consumer_; }

 private:
  SerialDomain consumer_;
  T slot_{};
};

// Evidence form 1: the function itself declares the capability.
void annotated_produce(SpscRing<int>& ring, SerialDomain& producer)
    SCAP_REQUIRES(producer) {
  ring.try_push(42);
}

// Evidence form 2: the function enters the domain with a SerialGuard.
void guarded_consume(SpscRing<int>& ring) {
  SerialGuard serial(ring.consumer());
  int v;
  ring.try_pop(v);
}

class Worker {
 public:
  void drain(SpscRing<int>& ring) {
    SerialGuard serial(ring.consumer());
    int buf[8];
    ring.pop_batch(buf, 8);
  }
  void service(MpscQueue<int>& q) {
    SerialGuard serial(q.consumer());
    int v;
    q.try_pop(v);
  }
};

void enqueue_command(MpscQueue<int>& q) {
  q.try_push(7);  // MPSC producer side needs no domain
}

}  // namespace scap
