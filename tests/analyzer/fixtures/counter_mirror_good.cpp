// Good twin for rule counter-mirror: every KernelStats field is mirrored.
namespace scap::kernel {

struct KernelStats {
  unsigned long pkts_seen = 0;
  unsigned long bytes_seen = 0;
};

struct ApiStats {
  unsigned long pkts_seen;
  unsigned long bytes_seen;
};

void mirror(const KernelStats& k, ApiStats& out) {
  out.pkts_seen = k.pkts_seen;
  out.bytes_seen = k.bytes_seen;
}

}  // namespace scap::kernel
