// Bad twin for taint-ambient: getenv-derived config reaching a trace
// event. The macro stands in for the real SCAP_TRACE_EVENT; the taint
// arrives through an ordinary call so both frontends see the same edge.
#define SCAP_TRACE_EVENT(...) (void)0

extern "C" char* getenv(const char*);

namespace scap::trace {

inline int cfg_level() {
  return getenv("SCAP_LEVEL") != nullptr ? 2 : 1;
}

inline void tick(long now) {
  const int level = cfg_level();
  SCAP_TRACE_EVENT(level, now);  // expect-chain: taint-ambient: src:getenv() -> trace::cfg_level -> trace::tick -> sink:SCAP_TRACE_EVENT
}

}  // namespace scap::trace
