// Bad twin for taint-wallclock: the wall-clock read sits two calls below
// the function that publishes stats — only transitive propagation connects
// them. The finding must land on the *sink* line (the stats write) with
// the full source->sink chain.
typedef unsigned long uint64_t;

extern "C" long time(long*);

namespace scap::kernel {

struct KernelStats {
  uint64_t pkts_seen = 0;
};

inline long now_secs() {
  return time(nullptr);
}

inline long stamp() {
  return now_secs() + 1;
}

inline void publish(KernelStats& k) {
  k.pkts_seen += static_cast<uint64_t>(stamp());  // expect-chain: taint-wallclock: src:time() -> kernel::now_secs -> kernel::stamp -> kernel::publish -> sink:KernelStats.pkts_seen
}

}  // namespace scap::kernel
