// Good twin for taint-wallclock: the datapath consumes *virtual* time
// passed in by the caller, and the one real clock read is a bench-only
// anchor excused by a reasoned source waiver (which cuts propagation and
// must therefore not be reported stale).
typedef unsigned long uint64_t;

extern "C" long time(long*);

namespace scap::kernel {

struct KernelStats {
  uint64_t pkts_seen = 0;
};

inline void publish(KernelStats& k, long virtual_now) {
  k.pkts_seen += static_cast<uint64_t>(virtual_now);
}

inline long bench_anchor() {
  // scap-lint: allow(taint-wallclock) bench-only anchor: printed by the harness banner, never folded into kernel output
  return time(nullptr);
}

}  // namespace scap::kernel
