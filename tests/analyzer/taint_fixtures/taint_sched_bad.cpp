// Bad twin for taint-sched: both pinned channel shapes — the SPSC
// occupancy probe size_from_producer() and the producer-observed
// occupancy_peak atomic — reaching a stats write and a metric sample.
typedef unsigned long uint64_t;

namespace scap::kernel {

struct KernelStats {
  uint64_t pkts_seen = 0;
};

struct Log2Histogram {
  void add(uint64_t) {}
};

struct MetricsRegistry {
  Log2Histogram queue_depth;
};

inline MetricsRegistry& metrics() {
  static MetricsRegistry m;
  return m;
}

struct Cell {
  uint64_t v = 0;
  uint64_t load() const {
    return v;
  }
};

class Ring {
 public:
  uint64_t size_from_producer() {
    return head_ - tail_;
  }

 private:
  uint64_t head_ = 0;
  uint64_t tail_ = 0;
};

class Shard {
 public:
  bool push() {
    return ring_.size_from_producer() < 8;
  }
  uint64_t peak() {
    return occupancy_peak.load();
  }

 private:
  Ring ring_;
  Cell occupancy_peak;
};

class Pipeline {
 public:
  void admit(KernelStats& k) {
    if (shard_.push()) k.pkts_seen += 1;  // expect-chain: taint-sched: src:size_from_producer() -> kernel::Shard::push -> kernel::Pipeline::admit -> sink:KernelStats.pkts_seen
  }
  void snapshot(KernelStats& k) {
    const uint64_t p = shard_.peak();
    k.pkts_seen += p;  // expect-chain: taint-sched: src:occupancy_peak.load() -> kernel::Shard::peak -> kernel::Pipeline::snapshot -> sink:KernelStats.pkts_seen
    metrics().queue_depth.add(p);  // expect-chain: taint-sched: src:occupancy_peak.load() -> kernel::Shard::peak -> kernel::Pipeline::snapshot -> sink:metric(queue_depth)
  }

 private:
  Shard shard_;
};

}  // namespace scap::kernel
