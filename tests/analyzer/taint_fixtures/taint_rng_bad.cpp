// Bad twin for taint-rng: C-library rand() feeding a KernelStats counter
// through an intermediate helper.
typedef unsigned long uint64_t;

extern "C" int rand();

namespace scap::kernel {

struct KernelStats {
  uint64_t pkts_dup = 0;
};

inline int jitter() {
  return rand();
}

inline void publish(KernelStats& k) {
  k.pkts_dup += static_cast<uint64_t>(jitter() & 1);  // expect-chain: taint-rng: src:rand() -> kernel::jitter -> kernel::publish -> sink:KernelStats.pkts_dup
}

}  // namespace scap::kernel
