// Good twin for stats-registry: struct and registry agree exactly —
// every field classified once with the right macro, the geometry field
// needs no witness, and the histogram is covered.
typedef unsigned long uint64_t;

namespace scap::kernel {

struct KernelStats {
  uint64_t seen = 0;
  uint64_t held[4] = {};
  uint64_t pool_cap = 0;
};

struct Log2Histogram {
  void add(uint64_t) {}
};

struct MetricsRegistry {
  Log2Histogram latency;
};

inline void touch(KernelStats& k) {
  k.seen += 1;
}

}  // namespace scap::kernel
