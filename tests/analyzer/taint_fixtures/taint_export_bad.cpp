// Bad twin for the exporter sink: tainted data handed to an exporter
// entry point (the `exporter` namespace stands in for
// src/trace/export.cpp / src/export/ipfix.cpp in fixture mode). The
// finding lands on the call edge into the exporter.
extern "C" long time(long*);

namespace scap::trace {

namespace exporter {
inline void write_record(long stamp) {
  (void)stamp;
}
}  // namespace exporter

inline long stamp_now() {
  return time(nullptr);
}

inline void flush() {
  exporter::write_record(stamp_now());  // expect-chain: taint-wallclock: src:time() -> trace::stamp_now -> trace::flush -> sink:exporter-call(write_record)
}

}  // namespace scap::trace
