// Good twin for taint-addr-order: the one pointer cast is excused by a
// reasoned source waiver (synthetic, reproducible addresses), which cuts
// propagation before it can reach the Verdict sink.
typedef unsigned long uint64_t;

namespace scap::kernel {

enum class Verdict { kStored, kDropped };

class FlowCache {
 public:
  uint64_t key_of(const void* p) {
    // scap-lint: allow(taint-addr-order) keys are slot indices off a bump-allocator base; identical runs place slots identically
    return reinterpret_cast<uint64_t>(p);
  }
  Verdict classify(const void* p) {
    if (key_of(p) & 1) return Verdict::kDropped;
    return Verdict::kStored;
  }
};

}  // namespace scap::kernel
