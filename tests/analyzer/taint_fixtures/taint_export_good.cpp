// Good twin for the exporter sink: the exporter only ever receives
// virtual time supplied by the caller, so no taint reaches the call.
namespace scap::trace {

namespace exporter {
inline void write_record(long stamp) {
  (void)stamp;
}
}  // namespace exporter

inline void flush(long virtual_now) {
  exporter::write_record(virtual_now);
}

}  // namespace scap::trace
