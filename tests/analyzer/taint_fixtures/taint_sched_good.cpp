// Good twin for taint-sched — the discharge pattern from the real fold
// path. fold_peak drains occupancy taint entirely into a field the
// sibling registry (.inc) classifies kSchedulingDependent: the write is
// the *witness* for that classification, not a finding, and the reasoned
// waiver on the call edge stops the taint from leaking into the caller's
// deterministic writes. The scheduling-dependent histogram sample is
// likewise permitted by its registry class.
typedef unsigned long uint64_t;

namespace scap::kernel {

struct KernelStats {
  uint64_t pkts_seen = 0;
  uint64_t peak_depth = 0;
};

struct Log2Histogram {
  void add(uint64_t) {}
};

struct MetricsRegistry {
  Log2Histogram depth_hist;
};

inline MetricsRegistry& metrics() {
  static MetricsRegistry m;
  return m;
}

struct Cell {
  uint64_t v = 0;
  uint64_t load() const {
    return v;
  }
};

class Shard {
 public:
  void fold_peak(KernelStats& k) {
    const uint64_t d = occupancy_peak.load();
    if (d > k.peak_depth) k.peak_depth = d;
    metrics().depth_hist.add(d);
  }
  void fold(KernelStats& k) {
    k.pkts_seen += 1;
    // scap-lint: allow(taint-sched) discharged: fold_peak drains only into peak_depth, registry-classified kSchedulingDependent
    fold_peak(k);
  }

 private:
  Cell occupancy_peak;
};

}  // namespace scap::kernel
