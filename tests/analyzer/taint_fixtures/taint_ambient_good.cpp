// Good twin for taint-ambient: configuration is parsed once by the
// harness and passed in as plain data — the datapath never consults
// ambient process state itself.
#define SCAP_TRACE_EVENT(...) (void)0

namespace scap::trace {

inline void tick(long now, int level) {
  SCAP_TRACE_EVENT(level, now);
}

}  // namespace scap::trace
