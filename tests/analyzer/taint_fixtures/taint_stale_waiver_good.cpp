// Good twin for waiver hygiene: a reasoned waiver that actually
// suppresses a live source is used, so it is neither stale nor
// reasonless.
extern "C" int rand();

namespace scap {

inline int jitter() {
  // scap-lint: allow(taint-rng) load-generator jitter: shapes synthetic traffic timing, never kernel output
  return rand();
}

}  // namespace scap
