// Bad twin for taint-addr-order: both source shapes — a pointer->integer
// cast and std::unordered_* iteration — reaching Verdict production. The
// std stub keeps the fixture hermetic for the clang frontend.
typedef unsigned long uint64_t;

namespace std {
template <typename K, typename V>
struct unordered_map {
  struct value_type {
    K first;
    V second;
  };
  value_type* begin() { return &item; }
  value_type* end() { return &item; }
  value_type item;
};
}  // namespace std

namespace scap::kernel {

enum class Verdict { kStored, kDropped };

class FlowCache {
 public:
  uint64_t key_of(const void* p) {
    return reinterpret_cast<uint64_t>(p);
  }
  Verdict classify(const void* p) {
    if (key_of(p) & 1) return Verdict::kDropped;  // expect-chain: taint-addr-order: src:reinterpret_cast<uint64_t> -> kernel::FlowCache::key_of -> kernel::FlowCache::classify -> sink:Verdict
    return Verdict::kStored;  // expect-chain: taint-addr-order: src:reinterpret_cast<uint64_t> -> kernel::FlowCache::key_of -> kernel::FlowCache::classify -> sink:Verdict
  }
  int pending() {
    int n = 0;
    for (auto& kv : table_) n += kv.second;
    return n;
  }
  Verdict sweep() {
    if (pending() > 0) return Verdict::kDropped;  // expect-chain: taint-addr-order: src:unordered-iteration(table_) -> kernel::FlowCache::pending -> kernel::FlowCache::sweep -> sink:Verdict
    return Verdict::kStored;  // expect-chain: taint-addr-order: src:unordered-iteration(table_) -> kernel::FlowCache::pending -> kernel::FlowCache::sweep -> sink:Verdict
  }

 private:
  std::unordered_map<int, int> table_;
};

}  // namespace scap::kernel
