// Bad twin for waiver hygiene on taint rules: a waiver whose finding is
// long gone must be reported stale, and a waiver that does suppress a
// source but gives no reason is itself a finding.
extern "C" int rand();

namespace scap {

inline int fixed_seed() {
  // scap-lint: allow(taint-rng) retired: the rand() call this excused is gone  // expect-chain: stale-waiver: -
  return 7;
}

inline int noisy() {
  // expect-chain-next-line: waiver: -
  // scap-lint: allow(taint-rng)
  return rand();
}

}  // namespace scap
