// Good twin for taint-rng: a seeded xorshift generator (the base::Rng
// pattern) is deterministic — same seed, same sequence — so nothing here
// is a source.
typedef unsigned long uint64_t;

namespace scap::kernel {

struct KernelStats {
  uint64_t pkts_dup = 0;
};

class Rng {
 public:
  explicit Rng(uint64_t seed) : s_(seed) {}
  uint64_t next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }

 private:
  uint64_t s_;
};

inline void publish(KernelStats& k, Rng& rng) {
  k.pkts_dup += rng.next() & 1;
}

}  // namespace scap::kernel
