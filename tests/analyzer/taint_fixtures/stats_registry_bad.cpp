// Bad twin for stats-registry: every way the registry can drift from the
// structs it classifies. The sibling .inc carries the row-level
// expectations; this file carries the unclassified-member ones.
typedef unsigned long uint64_t;

namespace scap::kernel {

struct KernelStats {
  uint64_t seen = 0;
  uint64_t dropped = 0;  // expect-chain: stats-registry: -
  uint64_t held[4] = {};
  uint64_t peak = 0;
};

struct Log2Histogram {
  void add(uint64_t) {}
};

struct MetricsRegistry {
  Log2Histogram latency;  // expect-chain: stats-registry: -
};

inline void touch(KernelStats& k) {
  k.seen += 1;
}

}  // namespace scap::kernel
