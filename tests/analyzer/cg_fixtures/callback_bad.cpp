// Bad twin for callback-edge tracking: the hot dispatcher invokes a
// FunctionRef field, and a named handler's address is taken at
// registration time. The analyzer must fan the indirect call out to the
// registered-callable pool and keep walking — the allocation hides inside
// the handler, two indirections away from the SCAP_HOT root.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap {

template <class Sig>
class FunctionRef;

template <class R, class A>
class FunctionRef<R(A)> {
 public:
  R operator()(A arg) const;
};

struct Event {
  unsigned long id;
};

inline void log_event(const Event& ev) {
  unsigned char* copy = new unsigned char[ev.id];  // expect-chain: hot-alloc: Dispatcher::deliver -> log_event -> operator new
  copy[0] = 1;
}

class Dispatcher {
 public:
  void set_handler(FunctionRef<void(const Event&)> h);

  SCAP_HOT void deliver(const Event& ev) { handler_(ev); }

 private:
  FunctionRef<void(const Event&)> handler_;
};

inline void wire(Dispatcher& d) { d.set_handler(&log_event); }

}  // namespace scap
