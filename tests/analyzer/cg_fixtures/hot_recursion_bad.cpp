// Bad twin for rule hot-recursion: mutual recursion between two members of
// the hot closure. Unbounded stack depth is as fatal to the datapath as an
// allocation; the finding anchors on the back edge that closes the cycle.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap {

class Walker {
 public:
  SCAP_HOT unsigned long descend(const unsigned char* p, unsigned long depth) {
    if (depth == 0) return 0;
    return visit(p, depth - 1);
  }

  unsigned long visit(const unsigned char* p, unsigned long depth) {
    if (p[0] == 0) return depth;
    return descend(p + 1, depth);  // expect-chain: hot-recursion: Walker::descend -> Walker::visit -> Walker::descend
  }
};

}  // namespace scap
