// Good twin for rule hot-syscall: the backoff spins on a counter the
// compiler must keep (volatile), never entering the kernel — the closure
// from the hot root contains no syscall.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap {

inline void backoff(unsigned attempt) {
  volatile unsigned spin = 0;
  for (unsigned i = 0; i < attempt * 64u; ++i) {
    spin = spin + 1;
  }
}

SCAP_HOT inline bool push_item(unsigned long item, unsigned attempt) {
  if (item == 0) {
    backoff(attempt);
    return false;
  }
  return true;
}

}  // namespace scap
