// Good twin for rule hot-recursion: the same traversal expressed as a
// bounded loop — constant stack depth, no cycle in the call graph.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap {

class Walker {
 public:
  SCAP_HOT unsigned long descend(const unsigned char* p, unsigned long depth) {
    while (depth > 0 && p[0] != 0) {
      ++p;
      --depth;
    }
    return depth;
  }
};

}  // namespace scap
