// Good twin for rule stale-waiver: the waiver sits directly above a live
// hot-alloc finding and suppresses it, so it is *used* — neither the
// allocation nor the waiver is reported.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap {

SCAP_HOT inline unsigned char* stage_bytes(unsigned long n) {
  // scap-lint: allow(hot-alloc) one-time staging buffer, recycled by the caller for the connection lifetime
  return new unsigned char[n];
}

}  // namespace scap
