// Good twin for callback-edge tracking: same registration and indirect
// invocation, but the handler only folds the event into a counter — the
// pool is walked and found pure, so the closure stays clean.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap {

template <class Sig>
class FunctionRef;

template <class R, class A>
class FunctionRef<R(A)> {
 public:
  R operator()(A arg) const;
};

struct Event {
  unsigned long id;
};

inline unsigned long g_event_total = 0;

inline void count_event(const Event& ev) { g_event_total += ev.id; }

class Dispatcher {
 public:
  void set_handler(FunctionRef<void(const Event&)> h);

  SCAP_HOT void deliver(const Event& ev) { handler_(ev); }

 private:
  FunctionRef<void(const Event&)> handler_;
};

inline void wire(Dispatcher& d) { d.set_handler(&count_event); }

}  // namespace scap
