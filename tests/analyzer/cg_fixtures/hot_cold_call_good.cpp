// Good twin for rule hot-cold-call: the same hot-to-cold edge, made
// legitimate by a reasoned waiver on the call line — this is exactly how
// amortized maintenance ticks are blessed in the real tree. The waiver is
// *used* (it suppresses a live finding), so it is not stale either.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap::kernel {

class Engine {
 public:
  SCAP_HOT void handle_packet(unsigned long now) {
    if (now - last_maintenance_ > 1000) {
      // scap-lint: allow(hot-cold-call) amortized maintenance tick: at most once per interval, not per packet
      run_maintenance(now);
    }
    ++pkts_seen_;
  }

  SCAP_COLD void run_maintenance(unsigned long now) {
    last_maintenance_ = now;
    expired_ = 0;
  }

 private:
  unsigned long pkts_seen_ = 0;
  unsigned long last_maintenance_ = 0;
  unsigned long expired_ = 0;
};

}  // namespace scap::kernel
