// Bad twin for rule stale-waiver: the hot-alloc this waiver once excused
// was rewritten away (the loop sums in place now), but the waiver line
// survived the refactor. A waiver that suppresses nothing is dead weight
// that would silently bless a future regression — it must be removed.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap {

SCAP_HOT inline unsigned long checksum(const unsigned char* p,
                                       unsigned long n) {
  unsigned long total = 0;
  // expect-chain-next-line: stale-waiver: -
  // scap-lint: allow(hot-alloc) summing used to stage bytes in a scratch vector
  for (unsigned long i = 0; i < n; ++i) total += p[i];
  return total;
}

}  // namespace scap
