// Bad twin for rule hot-mutex: the hot worker takes a scoped guard whose
// constructor bottoms out in std::mutex::lock — two project frames deep.
// The witness chain must thread through the guard constructor, not just
// flag the lock() wrapper in isolation.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace std {
class mutex {
 public:
  void lock();
  void unlock();
};
}  // namespace std

namespace scap {
namespace base {

class Mutex {
 public:
  void lock() { mu_.lock(); }  // expect-chain: hot-mutex: Worker::process -> base::MutexLock::MutexLock -> base::Mutex::lock -> std::mutex::lock
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace base

class Worker {
 public:
  SCAP_HOT void process(unsigned long item) {
    base::MutexLock lock(mu_);
    total_ += item;
  }

 private:
  base::Mutex mu_;
  unsigned long total_ = 0;
};

}  // namespace scap
