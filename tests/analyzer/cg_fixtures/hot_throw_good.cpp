// Good twin for rule hot-throw: the malformed-packet case comes back as a
// sentinel value the caller folds into a verdict counter — no unwind
// machinery anywhere in the hot closure.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap {

class Decoder {
 public:
  SCAP_HOT int decode(const unsigned char* p, unsigned long len) {
    if (len < 14) {
      return -1;  // malformed: caller counts it under verdicts[invalid]
    }
    return p[12] << 8 | p[13];
  }
};

}  // namespace scap
