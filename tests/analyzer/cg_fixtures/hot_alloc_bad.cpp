// Bad twin for rule hot-alloc: the allocation is three calls below the
// SCAP_HOT root, invisible to any single-function lint — only the
// transitive closure walk sees it. Mirrors the real shape that motivated
// the analyzer: handle_batch -> SegmentStore::insert ->
// ChunkAllocator::allocate -> operator new. Fixtures are hermetic (no
// includes) and parsed standalone by both frontends.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap::kernel {

class ChunkAllocator {
 public:
  unsigned char* allocate(unsigned long size) {
    return new unsigned char[size];  // expect-chain: hot-alloc: kernel::Ingest::handle_batch -> kernel::SegmentStore::insert -> kernel::ChunkAllocator::allocate -> operator new
  }
};

class SegmentStore {
 public:
  void insert(const unsigned char* data, unsigned long len) {
    unsigned char* chunk = alloc_.allocate(len);
    for (unsigned long i = 0; i < len; ++i) chunk[i] = data[i];
  }

 private:
  ChunkAllocator alloc_;
};

class Ingest {
 public:
  SCAP_HOT void handle_batch(const unsigned char* data, unsigned long len) {
    store_.insert(data, len);
  }

 private:
  SegmentStore store_;
};

}  // namespace scap::kernel
