// Good twin for rule hot-mutex: the mutex and guard still exist, but only
// the (unannotated) control-plane path takes them — the SCAP_HOT worker
// touches nothing but its own fields, so the closure from the root never
// reaches std::mutex::lock.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace std {
class mutex {
 public:
  void lock();
  void unlock();
};
}  // namespace std

namespace scap {
namespace base {

class Mutex {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

class MutexLock {
 public:
  explicit MutexLock(Mutex& mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() { mu_.unlock(); }

 private:
  Mutex& mu_;
};

}  // namespace base

class Worker {
 public:
  SCAP_HOT void process(unsigned long item) { total_ += item; }

  // Control plane: quiescent callers only, never on the packet path.
  unsigned long drain() {
    base::MutexLock lock(mu_);
    const unsigned long out = total_;
    total_ = 0;
    return out;
  }

 private:
  base::Mutex mu_;
  unsigned long total_ = 0;
};

}  // namespace scap
