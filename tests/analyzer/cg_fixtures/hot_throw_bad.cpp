// Bad twin for rule hot-throw: a parse failure raised as an exception on
// the decode path — stack unwind on the per-packet path is forbidden; the
// kernel reports malformed packets through verdicts, never throws.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap {

struct ParseError {};

class Decoder {
 public:
  SCAP_HOT int decode(const unsigned char* p, unsigned long len) {
    if (len < 14) {
      throw ParseError{};  // expect-chain: hot-throw: Decoder::decode -> throw
    }
    return p[12] << 8 | p[13];
  }
};

}  // namespace scap
