// Bad twin for rule hot-syscall: a libc sleep buried in a helper the hot
// root calls. Fixtures may *declare* libc symbols locally; the analyzer
// must still classify them as external syscalls, not project edges.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

extern "C" int usleep(unsigned usec);

namespace scap {

inline void backoff(unsigned attempt) {
  if (attempt > 3) {
    usleep(10);  // expect-chain: hot-syscall: push_item -> backoff -> usleep
  }
}

SCAP_HOT inline bool push_item(unsigned long item, unsigned attempt) {
  if (item == 0) {
    backoff(attempt);
    return false;
  }
  return true;
}

}  // namespace scap
