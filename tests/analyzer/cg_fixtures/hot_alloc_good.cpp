// Good twin for rule hot-alloc: the same three-level call shape, but the
// leaf carves chunks out of a preallocated arena with pointer arithmetic —
// nothing on the path allocates, so the closure walk stays silent.
#if defined(__clang__)
#define SCAP_HOT [[clang::annotate("scap_hot")]]
#define SCAP_COLD [[clang::annotate("scap_cold")]]
#else
#define SCAP_HOT
#define SCAP_COLD
#endif

namespace scap::kernel {

class ChunkAllocator {
 public:
  unsigned char* allocate(unsigned long size) {
    if (used_ + size > sizeof(arena_)) return nullptr;
    unsigned char* chunk = arena_ + used_;
    used_ += size;
    return chunk;
  }

 private:
  unsigned char arena_[4096];
  unsigned long used_ = 0;
};

class SegmentStore {
 public:
  void insert(const unsigned char* data, unsigned long len) {
    unsigned char* chunk = alloc_.allocate(len);
    if (chunk == nullptr) return;
    for (unsigned long i = 0; i < len; ++i) chunk[i] = data[i];
  }

 private:
  ChunkAllocator alloc_;
};

class Ingest {
 public:
  SCAP_HOT void handle_batch(const unsigned char* data, unsigned long len) {
    store_.insert(data, len);
  }

 private:
  SegmentStore store_;
};

}  // namespace scap::kernel
